#include "core/format_traits.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nga::core {
namespace {

TEST(FormatTraits, NamesAndBits) {
  EXPECT_EQ(format_traits<ps::posit16>::name(), "posit<16,1>");
  EXPECT_EQ(format_traits<sf::half>::name(), "float<1,5,10>");
  EXPECT_EQ(format_traits<sf::half_ftz>::name(), "float<1,5,10> (FTZ)");
  EXPECT_EQ((format_traits<fx::fixed16>::name()), "fixed<16,8>");
  EXPECT_EQ(format_traits<ps::posit16>::bits(), 16u);
  EXPECT_EQ(format_traits<sf::fp32>::bits(), 32u);
}

TEST(FormatTraits, RoundTripThroughEveryFormat) {
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-10.0, 10.0);
    auto check = [&](auto tag, double tol) {
      using F = decltype(tag);
      const double back = format_traits<F>::to_double(
          format_traits<F>::from_double(v));
      EXPECT_NEAR(back, v, tol) << format_traits<F>::name();
    };
    check(ps::posit16{}, 0.01);
    check(sf::half{}, 0.02);
    check(fx::fixed16{}, 0.005);
  }
}

TEST(FormatTraits, DotErrorOrderingOnUnitScaleData) {
  util::Xoshiro256 rng(4);
  std::vector<double> x(128), y(128);
  for (auto& v : x) v = rng.uniform(0.2, 1.0);
  for (auto& v : y) v = rng.uniform(0.2, 1.0);
  // All positive -> no cancellation; posit16 must beat bfloat16 and be
  // competitive with half.
  const double ep = dot_error<ps::posit16>(x, y);
  const double eh = dot_error<sf::half>(x, y);
  const double eb = dot_error<sf::bfloat16_t>(x, y);
  EXPECT_LT(ep, eb);
  EXPECT_LT(ep, eh * 3);
  const double e32 = dot_error<sf::fp32>(x, y);
  EXPECT_LT(e32, ep);
}

TEST(FormatTraits, FirErrorFiniteAndOrdered) {
  util::Xoshiro256 rng(5);
  std::vector<double> taps{0.1, 0.2, 0.4, 0.2, 0.1};
  std::vector<double> sig(256);
  for (auto& v : sig) v = rng.uniform(-1.0, 1.0);
  const double ep = fir_error<ps::posit16>(taps, sig);
  const double eb = fir_error<sf::bfloat16_t>(taps, sig);
  EXPECT_GT(ep, 0.0);
  EXPECT_LT(ep, eb);
}

}  // namespace
}  // namespace nga::core
