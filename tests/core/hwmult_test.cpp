// Fig. 8: gate-level posit and float multipliers, verified exhaustively
// against their behavioural models, and the hardware-cost ordering the
// paper claims.
#include "core/hwmult.hpp"

#include <gtest/gtest.h>

namespace nga::core {
namespace {

using util::u64;
using util::u8;

TEST(PositHw, MultiplierExhaustivelyMatchesLibrary) {
  const auto nl = build_posit8_multiplier();
  using P = ps::posit<8, 0>;
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      const u64 out = nl.eval_word(a | (b << 8));
      const P ref = P::mul(P::from_bits(u8(a)), P::from_bits(u8(b)));
      ASSERT_EQ(out, u64(ref.bits()))
          << "a=" << a << " b=" << b << " ref=" << ref.to_double();
    }
}

TEST(FloatHw, NormalsOnlyExhaustivelyMatchesModel) {
  const auto nl = build_float8_multiplier(FloatHw::kNormalsOnly);
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      const u64 out = nl.eval_word(a | (b << 8));
      ASSERT_EQ(out, u64(float8_normals_only_mul(u8(a), u8(b))))
          << "a=" << a << " b=" << b;
    }
}

TEST(FloatHw, FullIeeeExhaustivelyMatchesFloatmp) {
  const auto nl = build_float8_multiplier(FloatHw::kFullIEEE);
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      const u64 out = nl.eval_word(a | (b << 8));
      ASSERT_EQ(out, u64(float8_ieee_mul(u8(a), u8(b))))
          << "a=" << a << " b=" << b;
    }
}

TEST(HwCost, PaperOrderingPositBetweenFloatTiers) {
  // Section V's summary: "Posit hardware is slightly more expensive
  // than normals-only float hardware, but substantially simpler ...
  // than hardware that fully supports ... IEEE 754."
  const auto posit_cost = build_posit8_multiplier().cost();
  const auto ftz_cost = build_float8_multiplier(FloatHw::kNormalsOnly).cost();
  const auto ieee_cost = build_float8_multiplier(FloatHw::kFullIEEE).cost();
  EXPECT_GT(posit_cost.nand2_area, ftz_cost.nand2_area);
  // At 8 bits the posit carries up to 5 fraction bits vs the float's
  // fixed 3, so compare both raw and per-significand-bit (EXPERIMENTS.md
  // discusses the width effect).
  EXPECT_LT(posit_cost.nand2_area, ieee_cost.nand2_area * 1.25)
      << "posit must not dwarf even full IEEE";
  EXPECT_LT(posit_cost.nand2_area / 6.0, ieee_cost.nand2_area / 4.0)
      << "per significand bit, posit should beat full IEEE";
  EXPECT_GT(ieee_cost.nand2_area, ftz_cost.nand2_area * 1.5)
      << "full IEEE support must cost substantially more than FTZ";
}

TEST(HwCost, ComparatorEconomy) {
  // Posit comparison is the integer comparator; IEEE needs NaN/-0
  // special cases on top of sign-magnitude handling.
  const auto pl = build_posit8_less();
  const auto fl = build_float8_less();
  EXPECT_LT(pl.cost().nand2_area, fl.cost().nand2_area);
}

TEST(PositHwLess, MatchesLibraryOrderExhaustively) {
  const auto nl = build_posit8_less();
  using P = ps::posit<8, 0>;
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      const P pa = P::from_bits(u8(a)), pb = P::from_bits(u8(b));
      ASSERT_EQ(nl.eval_word(a | (b << 8)), u64(pa < pb))
          << "a=" << a << " b=" << b;
    }
}

TEST(FloatHwLess, IeeeSemanticsExhaustively) {
  const auto nl = build_float8_less();
  using F = sf::floatmp<4, 3>;
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      const F fa = F::from_bits(u8(a)), fb = F::from_bits(u8(b));
      const bool ref = (fa <=> fb) == std::partial_ordering::less;
      ASSERT_EQ(nl.eval_word(a | (b << 8)), u64(ref))
          << "a=" << a << " b=" << b;
    }
}

TEST(FloatHw, NormalsOnlySemantics) {
  // Spot checks of the documented FTZ behaviour.
  EXPECT_EQ(float8_normals_only_mul(0x01, 0x38), 0u);  // subnormal in -> 0
  // 1.0 (0x38) * 1.0 = 1.0.
  EXPECT_EQ(float8_normals_only_mul(0x38, 0x38), 0x38u);
  // Saturation instead of inf.
  EXPECT_EQ(float8_normals_only_mul(0x77, 0x77), 0x7fu);
  // Sign.
  EXPECT_EQ(float8_normals_only_mul(0xb8, 0x38), 0xb8u);
}

}  // namespace
}  // namespace nga::core
