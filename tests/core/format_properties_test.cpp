// Parameterized property sweep over ALL the library's number formats:
// the same algebraic invariants checked against every format through a
// type-erased driver (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "core/format_traits.hpp"
#include "util/rng.hpp"

namespace nga::core {
namespace {

struct FormatDriver {
  std::string name;
  unsigned bits;
  // All values ferried as doubles; ops round in-format.
  std::function<double(double)> quantize;           // round to format
  std::function<double(double, double)> add, mul;
  double max_magnitude;   // largest finite positive value
  double min_positive;    // smallest positive value
  bool saturates;         // posit/fixed saturate; floats overflow to inf
  double faithful_rel;    // worst relative rounding error over [0.1, 50]
};

template <class F>
FormatDriver make_driver(double maxv, double minv, bool saturates,
                         double faithful_rel = 0.01) {
  using T = format_traits<F>;
  FormatDriver d;
  d.name = T::name();
  d.bits = T::bits();
  d.quantize = [](double v) { return T::to_double(T::from_double(v)); };
  d.add = [](double a, double b) {
    return T::to_double(T::add(T::from_double(a), T::from_double(b)));
  };
  d.mul = [](double a, double b) {
    return T::to_double(T::mul(T::from_double(a), T::from_double(b)));
  };
  d.max_magnitude = maxv;
  d.min_positive = minv;
  d.saturates = saturates;
  d.faithful_rel = faithful_rel;
  return d;
}

class FormatProperty : public ::testing::TestWithParam<FormatDriver> {};

TEST_P(FormatProperty, QuantizationIsIdempotent) {
  const auto& d = GetParam();
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(-d.max_magnitude / 4, d.max_magnitude / 4);
    const double q = d.quantize(v);
    ASSERT_EQ(d.quantize(q), q) << d.name << " v=" << v;
  }
}

TEST_P(FormatProperty, QuantizationIsMonotone) {
  const auto& d = GetParam();
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.uniform(-100.0, 100.0);
    const double b = rng.uniform(-100.0, 100.0);
    if (a <= b) {
      ASSERT_LE(d.quantize(a), d.quantize(b)) << d.name;
    } else {
      ASSERT_GE(d.quantize(a), d.quantize(b)) << d.name;
    }
  }
}

TEST_P(FormatProperty, AddIsCommutative) {
  const auto& d = GetParam();
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.uniform(-50.0, 50.0);
    const double b = rng.uniform(-50.0, 50.0);
    ASSERT_EQ(d.add(a, b), d.add(b, a)) << d.name;
  }
}

TEST_P(FormatProperty, MulIsCommutativeWithExactIdentity) {
  const auto& d = GetParam();
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.uniform(-50.0, 50.0);
    const double b = rng.uniform(-50.0, 50.0);
    ASSERT_EQ(d.mul(a, b), d.mul(b, a)) << d.name;
    const double q = d.quantize(a);
    ASSERT_EQ(d.mul(q, 1.0), q) << d.name;
    ASSERT_EQ(d.mul(q, 0.0), 0.0) << d.name;
  }
}

TEST_P(FormatProperty, AdditionWithZeroIsIdentity) {
  const auto& d = GetParam();
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double q = d.quantize(rng.uniform(-50.0, 50.0));
    ASSERT_EQ(d.add(q, 0.0), q) << d.name;
    // x + (-x) == 0 exactly (negation is exact in all these formats).
    ASSERT_EQ(d.add(q, -q), 0.0) << d.name;
  }
}

TEST_P(FormatProperty, RoundingIsFaithful) {
  // The quantization of v lies within one representable step of v.
  const auto& d = GetParam();
  util::Xoshiro256 rng(6);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(0.1, 50.0);
    const double q = d.quantize(v);
    const double rel = std::fabs(q - v) / v;
    ASSERT_LT(rel, d.faithful_rel) << d.name << " v=" << v;
  }
}

TEST_P(FormatProperty, SaturationOrOverflowAtTheTop) {
  const auto& d = GetParam();
  const double big = d.max_magnitude;
  const double r = d.mul(big, 4.0);
  if (d.saturates) {
    ASSERT_LE(r, big) << d.name;        // clamps
    ASSERT_GT(r, 0.0) << d.name;        // never wraps to zero/negative
  } else {
    ASSERT_TRUE(std::isinf(r)) << d.name;  // IEEE overflow
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatProperty,
    ::testing::Values(
        make_driver<ps::posit<8, 0>>(64.0, 1.0 / 64, true, 0.35),
        make_driver<ps::posit16>(std::ldexp(1.0, 28), std::ldexp(1.0, -28),
                                 true),
        make_driver<ps::posit32>(std::ldexp(1.0, 120), std::ldexp(1.0, -120),
                                 true),
        make_driver<ps::posit<16, 2>>(std::ldexp(1.0, 56),
                                      std::ldexp(1.0, -56), true),
        make_driver<sf::half>(65504.0, std::ldexp(1.0, -24), false),
        make_driver<sf::bfloat16_t>(3.3895e38, 1e-41, false),
        make_driver<sf::fp19>(3.3895e38, std::ldexp(1.0, -136), false),
        make_driver<fx::fixed16>(127.99609375, 1.0 / 256, true, 0.02)),
    [](const ::testing::TestParamInfo<FormatDriver>& info) {
      std::string n = info.param.name;
      for (auto& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

}  // namespace
}  // namespace nga::core
