#include "fixedpoint/fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nga::fx {
namespace {

using F16 = fixed<16, 8>;  // Q7.8 saturating, RNE
using W = fixed<8, 4, Overflow::kWrap>;

TEST(Fixed, QuantizeAndRoundTrip) {
  EXPECT_EQ(F16(1.0).raw(), 256);
  EXPECT_EQ(F16(-1.0).raw(), -256);
  EXPECT_EQ(F16(0.5).raw(), 128);
  EXPECT_DOUBLE_EQ(F16(3.14159).to_double(), 804.0 / 256.0);
  // RNE at the half-ulp boundary: 1/512 is exactly half an ulp.
  EXPECT_EQ(F16(1.0 / 512.0).raw(), 0);      // ties to even (0)
  EXPECT_EQ(F16(3.0 / 512.0).raw(), 2);      // ties to even (2)
  EXPECT_EQ(F16(std::nan("")).raw(), 0);
}

TEST(Fixed, SaturationAtExtremes) {
  EXPECT_EQ(F16(1000.0).raw(), F16::kRawMax);
  EXPECT_EQ(F16(-1000.0).raw(), F16::kRawMin);
  EXPECT_EQ((F16::max() + F16(1.0)).raw(), F16::kRawMax);
  EXPECT_EQ((F16::min() - F16(1.0)).raw(), F16::kRawMin);
  EXPECT_EQ((F16::max() * F16::max()).raw(), F16::kRawMax);
  EXPECT_EQ((F16::min() * F16::max()).raw(), F16::kRawMin);
}

TEST(Fixed, WrappingPolicy) {
  const W a = W::from_raw(W::kRawMax);
  const W b = a + W::from_raw(1);
  EXPECT_EQ(b.raw(), W::kRawMin);  // two's-complement wrap
}

TEST(Fixed, ArithmeticMatchesDoubleWithinUlp) {
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    const double y = rng.uniform(-100.0, 100.0);
    const F16 a(x), b(y);
    const double ulp = F16::ulp().to_double();
    EXPECT_NEAR((a + b).to_double(),
                std::clamp(a.to_double() + b.to_double(), -128.0, 128.0),
                ulp);
    const double prod = a.to_double() * b.to_double();
    if (std::fabs(prod) < 127.0) {
      EXPECT_NEAR((a * b).to_double(), prod, ulp);
    }
    if (std::fabs(b.to_double()) > 1.0) {
      const double quot = a.to_double() / b.to_double();
      EXPECT_NEAR((a / b).to_double(), quot, ulp) << x << " " << y;
    }
  }
}

TEST(Fixed, MultiplicationRoundsToNearestEven) {
  // 0.5 * (1/256) = 1/512 exactly: half an ulp -> ties to even (0).
  const F16 half(0.5), ulp1 = F16::from_raw(1);
  EXPECT_EQ((half * ulp1).raw(), 0);
  // 0.5 * (3/256) = 3/512: ties to even -> 2/256.
  EXPECT_EQ((half * F16::from_raw(3)).raw(), 2);
  // 0.75 * (1/256) = 3/1024: rounds to 1/256.
  EXPECT_EQ((F16(0.75) * ulp1).raw(), 1);
}

TEST(Fixed, DivisionBasics) {
  EXPECT_DOUBLE_EQ((F16(10.0) / F16(4.0)).to_double(), 2.5);
  EXPECT_DOUBLE_EQ((F16(-10.0) / F16(4.0)).to_double(), -2.5);
  EXPECT_EQ((F16(1.0) / F16(0.0)).raw(), F16::kRawMax);   // sat, not trap
  EXPECT_EQ((F16(-1.0) / F16(0.0)).raw(), F16::kRawMin);
}

TEST(Fixed, ComparisonIsRawOrder) {
  EXPECT_LT(F16(-3.5), F16(-3.25));
  EXPECT_LT(F16(-0.25), F16(0.0));
  EXPECT_GT(F16(7.0), F16(6.5));
  EXPECT_LT(F16::from_raw(-1), F16::from_raw(0));
  EXPECT_EQ(F16(2.5), F16(2.5));
}

TEST(Fixed, TruncationPolicy) {
  using T = fixed<16, 8, Overflow::kSaturate, Rounding::kTruncate>;
  // Truncation rounds toward -inf on the raw lattice (arithmetic shift).
  EXPECT_EQ((T(0.5) * T::from_raw(1)).raw(), 0);
  EXPECT_EQ((T(-0.5) * T::from_raw(1)).raw(), -1);
}

TEST(FixFormat, RuntimeDescriptor) {
  const FixFormat f{-1, -12, false};
  EXPECT_EQ(f.width(), 12);
  EXPECT_DOUBLE_EQ(f.ulp(), std::ldexp(1.0, -12));
  EXPECT_DOUBLE_EQ(f.max_value(), 1.0 - std::ldexp(1.0, -12));
  const FixFormat s{3, -4, true};
  EXPECT_EQ(s.width(), 8);
  EXPECT_DOUBLE_EQ(s.min_value(), -8.0);
}

TEST(FixFormat, QuantizeClampsAndRounds) {
  const FixFormat f{-1, -8, false};
  EXPECT_EQ(FixValue::quantize(0.5, f).mantissa, 128);
  EXPECT_EQ(FixValue::quantize(2.0, f).mantissa, 255);   // clamp high
  EXPECT_EQ(FixValue::quantize(-1.0, f).mantissa, 0);    // clamp low
  const FixFormat s{0, -4, true};
  EXPECT_EQ(FixValue::quantize(-0.5, s).mantissa, -8);
  EXPECT_DOUBLE_EQ((FixValue{-8, s}.to_double()), -0.5);
}

}  // namespace
}  // namespace nga::fx
