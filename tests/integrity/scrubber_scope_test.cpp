// Scope-tagged scrub registrations (ISSUE 10 satellite): a fault
// domain registers its tables under one scope and unregister_scope()
// purges them wholesale — the shard-failover teardown primitive.
#include <gtest/gtest.h>

#include "integrity/scrubber.hpp"

namespace nga::integrity {
namespace {

TEST(IntegrityScope, UnregisterScopePurgesExactlyThatScope) {
  auto& s = Scrubber::instance();
  const std::size_t baseline = s.table_count();

  const nn::MulTable a, b, c, d;
  s.register_unowned(&a, "scope-test.a", "domA");
  s.register_unowned(&b, "scope-test.b", "domA");
  s.register_unowned(&c, "scope-test.c", "domB");
  s.register_unowned(&d, "scope-test.d");  // unscoped
  EXPECT_EQ(s.table_count(), baseline + 4);
  EXPECT_EQ(s.scope_count("domA"), 2u);
  EXPECT_EQ(s.scope_count("domB"), 1u);

  // "" is never a purgeable scope: unscoped registrations belong to
  // their individual registrants.
  EXPECT_EQ(s.unregister_scope(""), 0u);
  EXPECT_EQ(s.table_count(), baseline + 4);

  EXPECT_EQ(s.unregister_scope("domA"), 2u);
  EXPECT_EQ(s.table_count(), baseline + 2);
  EXPECT_EQ(s.scope_count("domA"), 0u);
  EXPECT_EQ(s.scope_count("domB"), 1u);
  // Idempotent: a second purge finds nothing.
  EXPECT_EQ(s.unregister_scope("domA"), 0u);

  // Scanning still works against the survivors after the purge (the
  // round-robin cursor was clamped).
  s.scan_pages(4);

  EXPECT_EQ(s.unregister_scope("domB"), 1u);
  s.unregister_table(&d);
  EXPECT_EQ(s.table_count(), baseline);
}

TEST(IntegrityScope, ReregistrationAfterPurgeIsClean) {
  auto& s = Scrubber::instance();
  const std::size_t baseline = s.table_count();
  const nn::MulTable t;
  s.register_unowned(&t, "scope-test.re", "domR");
  EXPECT_EQ(s.unregister_scope("domR"), 1u);
  // The same table can re-register under a new incarnation's scope —
  // the dedup-by-pointer check must not see a stale entry.
  s.register_unowned(&t, "scope-test.re2", "domR2");
  EXPECT_EQ(s.scope_count("domR2"), 1u);
  EXPECT_EQ(s.unregister_scope("domR2"), 1u);
  EXPECT_EQ(s.table_count(), baseline);
}

}  // namespace
}  // namespace nga::integrity
