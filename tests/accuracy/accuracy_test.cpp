#include "accuracy/accuracy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace nga::acc {
namespace {

TEST(DecimalAccuracy, PairwiseDefinition) {
  // One part per thousand relative error ~= 3 decimals.
  EXPECT_NEAR(decimal_accuracy(1.001, 1.0), 3.36, 0.01);
  EXPECT_NEAR(decimal_accuracy(1.1, 1.0), 1.38, 0.01);
  EXPECT_TRUE(std::isinf(decimal_accuracy(2.0, 2.0)));
}

TEST(AccuracyCurves, SizesMatchPositiveCodeCounts) {
  EXPECT_EQ((accuracy_curve_posit<16, 1>().size()), 32767u);
  EXPECT_EQ(accuracy_curve_fixed(16, 8).size(), 32767u);
  // half: positive finite codes 1..0x7bff.
  EXPECT_EQ((accuracy_curve_float<5, 10>().size()), 0x7bffu);
  EXPECT_EQ((accuracy_curve_float<8, 7>().size()), 0x7f7fu);
}

TEST(AccuracyCurves, CurvesAreAscendingInValue) {
  for (const auto& curve :
       {accuracy_curve_posit<16, 1>(), accuracy_curve_float<5, 10>()}) {
    for (std::size_t i = 1; i < curve.size(); ++i)
      ASSERT_GT(curve[i].value, curve[i - 1].value) << i;
  }
}

TEST(AccuracyCurves, DynamicRangeOrdersMatchPaper) {
  // Section V: posit16 ~17 orders, float16 normals ~9 (12 with
  // subnormals), bfloat16 ~76, fixed16 < 5.
  EXPECT_NEAR(dynamic_range_orders(accuracy_curve_posit<16, 1>()), 16.9, 0.1);
  const auto halfc = accuracy_curve_float<5, 10>();
  // Normal-range-only slice (paper quotes 9 orders for normals):
  std::vector<AccuracyPoint> normals(halfc.begin() + 0x3ff, halfc.end());
  EXPECT_NEAR(dynamic_range_orders(normals), 9.0, 0.2);
  // bfloat16 normals only (the paper's ~76 orders; subnormals add ~2).
  const auto bfc = accuracy_curve_float<8, 7>();
  std::vector<AccuracyPoint> bf_normals(bfc.begin() + 0x7f, bfc.end());
  EXPECT_NEAR(dynamic_range_orders(bf_normals), 76.6, 0.5);
  EXPECT_LT(dynamic_range_orders(accuracy_curve_fixed(16, 8)), 5.0);
}

TEST(AccuracyCurves, PositTriangleFloatTrapezoidFixedRamp) {
  // Shape assertions for Fig. 9/10.
  const auto pc = accuracy_curve_posit<16, 1>();
  // Posit: peak accuracy at |x| ~ 1 (code in the middle), tapering to
  // both ends roughly symmetrically.
  const auto peak = std::max_element(
      pc.begin(), pc.end(),
      [](const auto& a, const auto& b) { return a.accuracy < b.accuracy; });
  EXPECT_GT(peak->value, 0.2);
  EXPECT_LT(peak->value, 4.0);
  EXPECT_LT(pc.front().accuracy, peak->accuracy - 2.0);
  EXPECT_LT(pc.back().accuracy, peak->accuracy - 2.0);
  // Symmetry: accuracy at value v roughly equals accuracy at 1/v.
  EXPECT_NEAR(pc.front().accuracy, pc.back().accuracy, 0.35);

  // Float: flat accuracy across the normal range (trapezoid top).
  const auto fc = accuracy_curve_float<5, 10>();
  const double at_1 = fc[0x3c00 - 1].accuracy;   // around 1.0
  const double at_64 = fc[0x5400 - 1].accuracy;  // around 64.0
  EXPECT_NEAR(at_1, at_64, 0.05);
  // Subnormal ramp: accuracy decays toward the smallest subnormal.
  EXPECT_LT(fc.front().accuracy, at_1 - 2.0);

  // Posit beats float16 and bfloat16 near 1.0 (the paper's
  // "0.01..100" claim).
  const auto bc = accuracy_curve_float<8, 7>();
  auto acc_near = [](const std::vector<AccuracyPoint>& c, double v) {
    const auto it = std::lower_bound(
        c.begin(), c.end(), v,
        [](const AccuracyPoint& p, double x) { return p.value < x; });
    return it == c.end() ? c.back().accuracy : it->accuracy;
  };
  // posit<16,1> has more fraction bits than binary16 within
  // [1/16, 16] (regimes of <= 3 bits) and always beats bfloat16's
  // 7 fraction bits over the common range.
  for (double v : {0.1, 1.0, 10.0}) {
    EXPECT_GT(acc_near(pc, v), acc_near(fc, v) - 0.01) << v;
  }
  for (double v : {0.02, 0.1, 1.0, 10.0, 90.0}) {
    EXPECT_GT(acc_near(pc, v), acc_near(bc, v) + 0.5) << v;
  }
  // ...but loses outside its hump, e.g. near 2^20.
  EXPECT_LT(acc_near(pc, std::ldexp(1.0, 24)),
            acc_near(fc, std::ldexp(1.0, 10)));
}

TEST(RingCensus, FloatTrapFractions) {
  const auto census = float_ring_census<5, 10>();
  // By construction: exponent all-0s and all-1s are 2 of 32 exponent
  // codes -> 6.25% of the ring ("about 6 percent" in the paper).
  const auto& trap = census[4];
  EXPECT_EQ(trap.name, "trap total (exp all-0s/1s)");
  EXPECT_NEAR(trap.fraction, 0.0625, 1e-12);
  // The theorems-valid arc covers less than half the ring.
  const auto& thm = census[5];
  EXPECT_LT(thm.fraction, 0.5);
  EXPECT_GT(thm.fraction, 0.3);
}

TEST(RingCensus, PositExceptionsAndArcs) {
  const auto census = posit_ring_census<16, 1>();
  EXPECT_EQ(census[0].codes, 2u);  // exactly 0 and NaR
  // Fixed-field arcs: regime "10" or "01" covers half of all magnitudes.
  EXPECT_NEAR(census[1].fraction, 0.5, 0.001);
  // Every real code is in the "theorems valid" region.
  EXPECT_NEAR(census[3].fraction, 1.0 - 2.0 / 65536.0, 1e-12);
}

TEST(RingCensus, CountsSumToRingSize) {
  const auto census = float_ring_census<5, 10>();
  EXPECT_EQ(census[0].codes + census[1].codes + census[2].codes +
                census[3].codes,
            util::u64{1} << 16);
}

}  // namespace
}  // namespace nga::acc
