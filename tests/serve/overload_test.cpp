// OverloadController ladder mechanics: escalation order, hysteresis,
// dwell-bounded rate of change (no flapping), deterministic shedding.
// All with injected time — no sleeps, no wall-clock dependence.
#include "serve/overload.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace nga::serve {
namespace {

using Clock = OverloadController::Clock;
using std::chrono::milliseconds;

OverloadConfig base_cfg() {
  OverloadConfig cfg;
  cfg.enabled = true;
  cfg.enter_ms = 5.0;
  cfg.exit_ms = 1.0;
  cfg.dwell = milliseconds(100);
  cfg.ewma_alpha = 0.5;
  cfg.shed_fraction = 0.25;
  return cfg;
}

Clock::time_point t0() { return Clock::time_point{} + milliseconds(1000); }

TEST(OverloadController, DisabledNeverMoves) {
  OverloadConfig cfg = base_cfg();
  cfg.enabled = false;
  OverloadController c(cfg, 2);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(c.observe(1000.0, t0() + milliseconds(200 * i)), 0);
  EXPECT_FALSE(c.engaged());
}

TEST(OverloadController, EscalatesOneRungPerDwellUpToShed) {
  OverloadController c(base_cfg(), 2);  // ladder: 0,1,2,3,shed=4
  EXPECT_EQ(c.max_tier(), 4);
  auto now = t0();
  // Sustained high sojourn: one rung per dwell, never a jump.
  int prev = c.tier();
  for (int step = 0; step < 12; ++step) {
    now += milliseconds(110);
    const int t = c.observe(50.0, now);
    EXPECT_LE(t - prev, 1) << "at most one rung per dwell";
    prev = t;
  }
  EXPECT_EQ(c.tier(), 4);
  EXPECT_TRUE(c.at_shed());
  EXPECT_TRUE(c.engaged());
  const auto st = c.stats();
  EXPECT_EQ(st.escalations, 4u);
  EXPECT_EQ(st.deescalations, 0u);
}

TEST(OverloadController, DwellBlocksBackToBackChanges) {
  OverloadController c(base_cfg(), 0);
  auto now = t0();
  EXPECT_EQ(c.observe(50.0, now), 1) << "first change needs no dwell history";
  // A storm of high samples inside the dwell window moves nothing.
  for (int i = 1; i <= 9; ++i)
    EXPECT_EQ(c.observe(50.0, now + milliseconds(10 * i)), 1);
  EXPECT_EQ(c.observe(50.0, now + milliseconds(101)), 2);
}

TEST(OverloadController, HysteresisBandHoldsTierSteady) {
  OverloadController c(base_cfg(), 1);
  auto now = t0();
  now += milliseconds(110);
  // Engage with a sample just past the threshold, so the EWMA sits
  // near the top of the band rather than far above it.
  ASSERT_EQ(c.observe(6.0, now), 1);
  // Sojourn settles INSIDE the band (exit 1.0 < x < enter 5.0): the
  // ladder must hold, not flap, no matter how long this lasts.
  for (int i = 0; i < 50; ++i) {
    now += milliseconds(110);
    EXPECT_EQ(c.observe(3.0, now), 1);
  }
  const auto st = c.stats();
  EXPECT_EQ(st.escalations, 1u);
  EXPECT_EQ(st.deescalations, 0u);
}

TEST(OverloadController, NoFlappingUnderOscillatingLoad) {
  // Raw samples oscillate wildly every observe; EWMA + dwell +
  // hysteresis must bound tier changes to at most one per dwell, and
  // far fewer in practice.
  OverloadConfig cfg = base_cfg();
  cfg.ewma_alpha = 0.2;
  OverloadController c(cfg, 2);
  auto now = t0();
  int changes = 0;
  int prev = c.tier();
  const int kSteps = 400;
  const auto kGap = milliseconds(10);  // samples 10x faster than dwell
  for (int i = 0; i < kSteps; ++i) {
    now += kGap;
    const double sojourn = (i % 2 == 0) ? 20.0 : 0.0;  // violent oscillation
    const int t = c.observe(sojourn, now);
    if (t != prev) ++changes;
    prev = t;
  }
  const int elapsed_dwells =
      int((kGap * kSteps) / base_cfg().dwell);  // = 40
  EXPECT_LE(changes, elapsed_dwells)
      << "dwell must bound the rate of tier changes";
  // The EWMA of the oscillation sits around 10 ms — above enter — so
  // the ladder should settle high and mostly stay, not ping-pong.
  const auto st = c.stats();
  EXPECT_LE(st.escalations + st.deescalations, util::u64(elapsed_dwells));
  EXPECT_GE(c.tier(), 1) << "sustained mean overload must engage the ladder";
}

TEST(OverloadController, DeescalatesBackToNormalWhenLoadClears) {
  OverloadController c(base_cfg(), 1);  // max_tier = 3
  auto now = t0();
  for (int i = 0; i < 5; ++i) now += milliseconds(110), c.observe(50.0, now);
  ASSERT_EQ(c.tier(), 3);
  for (int i = 0; i < 20 && c.tier() > 0; ++i)
    now += milliseconds(110), c.observe(0.0, now);
  EXPECT_EQ(c.tier(), 0);
  EXPECT_FALSE(c.engaged());
  const auto st = c.stats();
  EXPECT_EQ(st.deescalations, 3u);
}

TEST(OverloadController, BrownoutIndexMapsTiersToTables) {
  OverloadController c(base_cfg(), 2);  // tiers 0,1 run normal; 2,3 brown; 4 shed
  EXPECT_EQ(c.brownout_index(0), -1);
  EXPECT_EQ(c.brownout_index(1), -1);
  EXPECT_EQ(c.brownout_index(2), 0);
  EXPECT_EQ(c.brownout_index(3), 1);
  EXPECT_EQ(c.brownout_index(4), 1) << "Shed keeps the cheapest table";
  OverloadController none(base_cfg(), 0);  // 0,1,shed=2
  EXPECT_EQ(none.max_tier(), 2);
  EXPECT_EQ(none.brownout_index(2), -1) << "no tables configured";
}

TEST(OverloadController, ShedFractionIsExactOverAWindow) {
  OverloadController c(base_cfg(), 0);  // shed_fraction 0.25
  int shed = 0;
  for (int i = 0; i < 1000; ++i) shed += c.shed_due() ? 1 : 0;
  EXPECT_EQ(shed, 250) << "fixed-point accumulator: exact, not stochastic";
}

}  // namespace
}  // namespace nga::serve
