// Token-bucket retry budget: unit mechanics, and the regression the
// satellite fix exists for — a sustained fault storm must no longer
// multiply the exec/queue load by max_attempts.
#include "serve/retry_budget.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "approx/multipliers.hpp"
#include "fault/fault.hpp"
#include "nn/layers.hpp"
#include "serve/serve.hpp"

namespace nga::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

TEST(RetryBudget, BurstSpendsDownThenRefuses) {
  RetryBudgetConfig cfg;
  cfg.tokens_per_success = 0.1;
  cfg.burst = 3.0;
  RetryBudget b(cfg);
  EXPECT_TRUE(b.try_spend());
  EXPECT_TRUE(b.try_spend());
  EXPECT_TRUE(b.try_spend());
  EXPECT_FALSE(b.try_spend()) << "burst exhausted, no successes yet";
  EXPECT_DOUBLE_EQ(b.tokens(), 0.0);
}

TEST(RetryBudget, SuccessesFundRetriesAtTheConfiguredRatio) {
  RetryBudgetConfig cfg;
  cfg.tokens_per_success = 0.1;
  cfg.burst = 1.0;
  RetryBudget b(cfg);
  ASSERT_TRUE(b.try_spend());
  ASSERT_FALSE(b.try_spend());
  b.on_success(9);  // 0.9 tokens: still short of one retry
  EXPECT_FALSE(b.try_spend());
  b.on_success();  // the 10th success buys the retry
  EXPECT_TRUE(b.try_spend());
  EXPECT_FALSE(b.try_spend()) << "one retry per ten successes, exactly";
}

TEST(RetryBudget, BucketCapsAtBurst) {
  RetryBudgetConfig cfg;
  cfg.tokens_per_success = 1.0;
  cfg.burst = 2.0;
  RetryBudget b(cfg);
  b.on_success(100);  // cannot hoard beyond the burst
  EXPECT_DOUBLE_EQ(b.tokens(), 2.0);
}

TEST(RetryBudget, DisabledAlwaysAllows) {
  RetryBudgetConfig cfg;
  cfg.enabled = false;
  cfg.burst = 0.0;
  RetryBudget b(cfg);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(b.try_spend());
}

#if NGA_FAULT

constexpr int kC = 1, kH = 4, kW = 4;

nn::Tensor make_input(int i) {
  nn::Tensor x(kC, kH, kW);
  for (std::size_t j = 0; j < x.v.size(); ++j)
    x.v[j] = float((i * 31 + int(j) * 7) % 17) / 17.f;
  return x;
}

std::unique_ptr<nn::Model> make_model() {
  util::Xoshiro256 rng(7);
  auto m = std::make_unique<nn::Model>("retry-budget-test");
  m->add(std::make_unique<nn::Dense>(kC * kH * kW, 10, rng));
  return m;
}

// Regression for the retry-storm amplification bug: before the budget,
// a sustained fault plan made EVERY batch retry max_attempts times —
// the server multiplied its own load exactly when it had no capacity
// to spare. With the budget (and no failover table to repair onto),
// speculative retries are capped at burst + ratio * successes, the
// rest fail fast, and the queue never holds the storm's amplification.
TEST(RetryBudgetStorm, StormNoLongerMultipliesExecLoad) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());

  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 0.25);
  fault::Injector::instance().arm(plan, 99);

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 128;
  cfg.max_batch = 4;
  cfg.batch_linger = microseconds(100);
  cfg.in_c = kC;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.mode = nn::Mode::kQuantApprox;
  cfg.mul = &approx;
  cfg.model_factory = make_model;
  cfg.max_attempts = 5;            // plenty of rope for a storm...
  cfg.retry_exact_failover = false;  // ...and no golden unit to save it
  cfg.backoff.base = microseconds(50);
  cfg.backoff.cap = microseconds(500);
  cfg.retry_budget.tokens_per_success = 0.1;
  cfg.retry_budget.burst = 4.0;

  Server srv(cfg);
  srv.start();
  std::vector<std::future<Response>> futs;
  const int kRequests = 60;
  for (int i = 0; i < kRequests; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(5000)));
  for (auto& f : futs) f.get();
  srv.drain();
  fault::Injector::instance().disarm();

  const auto st = srv.stats();
  EXPECT_EQ(st.served + st.rejected + st.shed, st.submitted)
      << "drain invariant";
  EXPECT_GT(st.budget_exhausted, 0u)
      << "a sustained storm must run the bucket dry";
  // The cap itself: every retry spent a token, tokens come only from
  // the burst and from successes.
  EXPECT_LE(double(st.retries),
            cfg.retry_budget.burst +
                cfg.retry_budget.tokens_per_success * double(st.served))
      << "retries bounded by the budget, not by max_attempts";
  // Amplification bound: without the budget this workload executes
  // ~max_attempts batches per popped batch; with it, total execs stay
  // within one extra attempt's worth of the batch count.
  const util::u64 first_attempts = st.batches - st.retries;
  EXPECT_LT(st.batches, 2 * first_attempts + util::u64(cfg.max_attempts))
      << "exec load must not multiply under the storm";
}

#endif  // NGA_FAULT

}  // namespace
}  // namespace nga::serve
