// nga::guard woven into the server, end to end:
//   * a wedged worker is detected, cancelled, and replaced; its
//     in-flight batch is redelivered and the drain invariant holds;
//   * redelivery is bounded — a poisoned request that hangs every
//     replica is eventually rejected with kRedeliveryLimit;
//   * AIMD admission rejects over-limit submits with typed reasons;
//   * (NGA_FAULT) a persistently-bad replica trips its breaker, is
//     quarantined onto the exact table, and the revalidation probe
//     retires or reinstates it through the real server plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "approx/multipliers.hpp"
#include "fault/fault.hpp"
#include "nn/layers.hpp"
#include "serve/serve.hpp"

namespace nga::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr int kC = 1, kH = 4, kW = 4;

nn::Tensor make_input(int i) {
  nn::Tensor x(kC, kH, kW);
  for (std::size_t j = 0; j < x.v.size(); ++j)
    x.v[j] = float((i * 31 + int(j) * 7) % 17) / 17.f;
  return x;
}

std::unique_ptr<nn::Model> make_float_model() {
  util::Xoshiro256 rng(7);
  auto m = std::make_unique<nn::Model>("guard-test");
  m->add(std::make_unique<nn::Dense>(kC * kH * kW, 10, rng));
  return m;
}

// Burns wall time without ticking the heartbeat — from the watchdog's
// point of view this is exactly a wedged MAC loop. `armed` lets tests
// wedge only the first execution (one bad batch, then healthy).
class WedgeLayer final : public nn::Layer {
 public:
  WedgeLayer(milliseconds d, std::atomic<int>* armed)
      : d_(d), armed_(armed) {}
  nn::Tensor forward(const nn::Tensor& x, const nn::Exec&) override {
    if (!armed_ || armed_->fetch_sub(1) > 0) std::this_thread::sleep_for(d_);
    return x;
  }
  nn::Tensor backward(const nn::Tensor& dy) override { return dy; }
  std::string name() const override { return "wedge"; }

 private:
  milliseconds d_;
  std::atomic<int>* armed_;  // nullptr => wedge every time
};

ServerConfig base_config() {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.max_batch = 4;
  cfg.batch_linger = microseconds(100);
  cfg.in_c = kC;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.mode = nn::Mode::kFloat;
  cfg.model_factory = make_float_model;
  return cfg;
}

SupervisionConfig fast_supervision() {
  SupervisionConfig sup;
  sup.supervise = true;
  sup.watchdog.check_interval = milliseconds(10);
  sup.watchdog.max_exec = milliseconds(40);  // absolute, for test speed
  sup.watchdog.min_timeout = milliseconds(1);
  sup.watchdog.max_redeliveries = 2;
  return sup;
}

void expect_invariant(const Server::Stats& st) {
  EXPECT_EQ(st.served + st.rejected + st.shed, st.submitted)
      << "served=" << st.served << " rejected=" << st.rejected
      << " shed=" << st.shed << " submitted=" << st.submitted;
}

TEST(GuardServer, HungWorkerIsReplacedAndItsBatchRedelivered) {
  std::atomic<int> wedge_once{1};  // only the first batch wedges
  auto cfg = base_config();
  cfg.supervision = fast_supervision();
  cfg.model_factory = [&] {
    auto m = make_float_model();
    m->add(std::make_unique<WedgeLayer>(milliseconds(250), &wedge_once));
    return m;
  };

  Server srv(cfg);
  srv.start();
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 12; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(10000)));
  for (auto& f : futs)
    EXPECT_EQ(f.get().outcome, Outcome::kServed)
        << "the wedged batch must be redelivered to the replacement "
           "worker, not lost";
  srv.drain();

  const auto gs = srv.guard_stats();
  EXPECT_GE(gs.hangs_detected, 1u);
  EXPECT_GE(gs.workers_replaced, 1u);
  EXPECT_GE(gs.requeues, 1u) << "the in-flight batch rode back in";
  EXPECT_EQ(gs.redelivery_rejects, 0u);
  const auto st = srv.stats();
  EXPECT_EQ(st.served, 12u);
  expect_invariant(st);
}

TEST(GuardServer, RedeliveryIsBoundedForAPoisonedRequest) {
  // Every replica wedges on every batch: the request can never serve.
  auto cfg = base_config();
  cfg.supervision = fast_supervision();
  cfg.supervision.watchdog.max_redeliveries = 1;
  cfg.model_factory = [] {
    auto m = make_float_model();
    m->add(std::make_unique<WedgeLayer>(milliseconds(120), nullptr));
    return m;
  };

  Server srv(cfg);
  srv.start();
  auto r = srv.submit(make_input(0), milliseconds(30000)).get();
  EXPECT_EQ(r.outcome, Outcome::kRejected);
  EXPECT_EQ(r.reason, RejectReason::kRedeliveryLimit);
  srv.drain();

  const auto gs = srv.guard_stats();
  EXPECT_GE(gs.hangs_detected, 2u) << "initial delivery plus redelivery";
  EXPECT_EQ(gs.requeues, 1u) << "one redelivery allowed, then the cap";
  EXPECT_EQ(gs.redelivery_rejects, 1u);
  expect_invariant(srv.stats());
}

TEST(GuardServer, AdmissionLimiterRejectsOverLimitSubmits) {
  auto cfg = base_config();
  cfg.supervision.admission.enabled = true;  // usable without supervise
  cfg.supervision.admission.min_limit = 2;
  cfg.supervision.admission.initial_limit = 2;
  cfg.supervision.admission.max_limit = 2;
  cfg.model_factory = [] {
    auto m = make_float_model();
    m->add(std::make_unique<WedgeLayer>(milliseconds(5), nullptr));
    return m;
  };

  Server srv(cfg);
  srv.start();
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 24; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(10000)));

  std::size_t limited = 0, served = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    if (r.outcome == Outcome::kRejected) {
      EXPECT_EQ(r.reason, RejectReason::kAdmissionLimited);
      ++limited;
    } else if (r.outcome == Outcome::kServed) {
      ++served;
    }
  }
  srv.drain();
  EXPECT_GT(limited, 0u) << "a 24-deep burst through a 2-token limiter "
                            "must shed load at admission";
  EXPECT_GT(served, 0u) << "admitted requests still serve";
  const auto gs = srv.guard_stats();
  EXPECT_EQ(gs.admission_rejects, limited);
  EXPECT_EQ(gs.admission_limit, 2u);
  expect_invariant(srv.stats());
}

#if NGA_FAULT

// Drive traffic until pred() is true or `rounds` requests have been
// served; returns the number submitted.
template <class Pred>
int pump_until(Server& srv, Pred pred, int rounds,
               milliseconds gap = milliseconds(5)) {
  int n = 0;
  for (; n < rounds && !pred(); ++n) {
    (void)srv.submit(make_input(n), milliseconds(5000)).get();
    std::this_thread::sleep_for(gap);
  }
  return n;
}

ServerConfig quant_config(const nn::MulTable* approx,
                          const nn::MulTable* exact) {
  auto cfg = base_config();
  cfg.mode = nn::Mode::kQuantApprox;
  cfg.mul = approx;
  cfg.exact_fallback = exact;
  cfg.max_attempts = 2;
  cfg.retry_exact_failover = true;
  cfg.backoff.base = microseconds(50);
  cfg.backoff.cap = microseconds(500);
  cfg.supervision.supervise = true;
  cfg.supervision.breaker.window = 8;
  cfg.supervision.breaker.min_samples = 4;
  cfg.supervision.breaker.trip_failure_rate = 0.5;
  cfg.supervision.breaker.cooldown = milliseconds(30);
  cfg.supervision.breaker.max_probe_failures = 2;
  cfg.supervision.probe_samples = 6;
  return cfg;
}

TEST(GuardServer, BadReplicaIsQuarantinedProbedAndRetired) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  // Every approximate MAC is corrupted: the replica is persistently
  // bad, so the revalidation probe must keep failing until the breaker
  // permanently retires it.
  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 1.0);
  fault::Injector::instance().arm(plan, 1234);

  auto cfg = quant_config(&approx, &exact);
  cfg.supervision.probe_tolerance = 0;
  Server srv(cfg);
  srv.start();

  pump_until(srv, [&] { return srv.guard_stats().breaker_trips >= 1; }, 60);
  EXPECT_GE(srv.guard_stats().breaker_trips, 1u)
      << "an all-MACs-corrupted replica must trip its breaker";
  pump_until(srv, [&] { return srv.guard_stats().breaker_retired >= 1; }, 120,
             milliseconds(10));
  srv.drain();
  fault::Injector::instance().disarm();

  const auto gs = srv.guard_stats();
  EXPECT_GE(gs.breaker_retired, 1u)
      << "probes against the still-faulty path must exhaust "
         "max_probe_failures";
  EXPECT_GE(gs.breaker_probes, 2u);
  EXPECT_GE(gs.breaker_probe_failures, 2u);
  EXPECT_GT(gs.quarantined_batches, 0u)
      << "post-trip batches ride the exact table";
  EXPECT_EQ(gs.breaker_reinstated, 0u);
  // Quarantine means the requests themselves keep succeeding.
  const auto st = srv.stats();
  EXPECT_GT(st.served, 0u);
  EXPECT_EQ(st.rejected + st.shed, 0u);
  expect_invariant(st);
}

TEST(GuardServer, RevalidationPassReinstatesTheReplica) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 1.0);
  fault::Injector::instance().arm(plan, 99);

  auto cfg = quant_config(&approx, &exact);
  cfg.supervision.probe_tolerance = 0;
  Server srv(cfg);
  srv.start();

  pump_until(srv, [&] { return srv.guard_stats().breaker_trips >= 1; }, 60);
  ASSERT_GE(srv.guard_stats().breaker_trips, 1u);
  // The fault was transient: it clears before revalidation, so the
  // HalfOpen probe replays the golden set against a healthy path — no
  // mismatches, no plausibility detections — and the server walks
  // HalfOpen -> Closed, reinstating the replica (the probes-keep-
  // failing retire path is covered above).
  fault::Injector::instance().disarm();
  pump_until(srv, [&] { return srv.guard_stats().breaker_reinstated >= 1; },
             120, milliseconds(10));
  srv.drain();

  const auto gs = srv.guard_stats();
  EXPECT_GE(gs.breaker_reinstated, 1u);
  EXPECT_GE(gs.breaker_probes, 1u);
  EXPECT_EQ(gs.breaker_retired, 0u);
  expect_invariant(srv.stats());
}

#endif  // NGA_FAULT

}  // namespace
}  // namespace nga::serve
