#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace nga::serve {
namespace {

using Q = BoundedQueue<int>;

TEST(BoundedQueue, BackpressureRejectsWhenFull) {
  Q q(2);
  EXPECT_EQ(q.try_push(1), Q::Push::kOk);
  EXPECT_EQ(q.try_push(2), Q::Push::kOk);
  EXPECT_EQ(q.try_push(3), Q::Push::kFull);  // rejected, not buffered
  EXPECT_EQ(q.size(), 2u);

  std::vector<int> out;
  ASSERT_TRUE(q.pop_batch(8, std::chrono::microseconds(0), out));
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.try_push(3), Q::Push::kOk);  // space again
}

TEST(BoundedQueue, PopBatchCoalescesUpToMax) {
  Q q(8);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(q.try_push(int(i)), Q::Push::kOk);
  std::vector<int> out;
  ASSERT_TRUE(q.pop_batch(3, std::chrono::microseconds(0), out));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  ASSERT_TRUE(q.pop_batch(3, std::chrono::microseconds(0), out));
  EXPECT_EQ(out, (std::vector<int>{3, 4}));
}

TEST(BoundedQueue, CloseDrainsRemainingThenSignalsEnd) {
  Q q(8);
  for (int i = 0; i < 3; ++i) ASSERT_EQ(q.try_push(int(i)), Q::Push::kOk);
  q.close();
  EXPECT_EQ(q.try_push(9), Q::Push::kClosed);  // admission stopped...
  std::vector<int> out;
  ASSERT_TRUE(q.pop_batch(8, std::chrono::microseconds(0), out));
  EXPECT_EQ(out.size(), 3u);  // ...but the backlog still drains
  EXPECT_FALSE(q.pop_batch(8, std::chrono::microseconds(0), out));
}

TEST(BoundedQueue, PopBlocksUntilCloseWhenEmpty) {
  Q q(4);
  std::vector<int> out;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  // Blocks (no data) until close, then reports end-of-work.
  EXPECT_FALSE(q.pop_batch(4, std::chrono::microseconds(0), out));
  closer.join();
}

TEST(BoundedQueue, MpmcPreservesEveryItemExactlyOnce) {
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 2000;
  Q q(16);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int cth = 0; cth < kConsumers; ++cth)
    consumers.emplace_back([&] {
      std::vector<int> out;
      while (q.pop_batch(4, std::chrono::microseconds(50), out)) {
        long local = 0;
        for (int v : out) local += v;
        sum.fetch_add(local, std::memory_order_relaxed);
        popped.fetch_add(int(out.size()), std::memory_order_relaxed);
      }
    });

  std::vector<std::thread> producers;
  for (int pth = 0; pth < kProducers; ++pth)
    producers.emplace_back([&, pth] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = pth * kPerProducer + i;
        while (q.try_push(int(v)) != Q::Push::kOk)
          std::this_thread::yield();  // full queue: caller's problem
      }
    });

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace nga::serve
