#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace nga::serve {
namespace {

using Q = BoundedQueue<int>;

TEST(BoundedQueue, BackpressureRejectsWhenFull) {
  Q q(2);
  EXPECT_EQ(q.try_push(1), Q::Push::kOk);
  EXPECT_EQ(q.try_push(2), Q::Push::kOk);
  EXPECT_EQ(q.try_push(3), Q::Push::kFull);  // rejected, not buffered
  EXPECT_EQ(q.size(), 2u);

  std::vector<int> out;
  ASSERT_TRUE(q.pop_batch(8, std::chrono::microseconds(0), out));
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.try_push(3), Q::Push::kOk);  // space again
}

TEST(BoundedQueue, PopBatchCoalescesUpToMax) {
  Q q(8);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(q.try_push(int(i)), Q::Push::kOk);
  std::vector<int> out;
  ASSERT_TRUE(q.pop_batch(3, std::chrono::microseconds(0), out));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  ASSERT_TRUE(q.pop_batch(3, std::chrono::microseconds(0), out));
  EXPECT_EQ(out, (std::vector<int>{3, 4}));
}

TEST(BoundedQueue, CloseDrainsRemainingThenSignalsEnd) {
  Q q(8);
  for (int i = 0; i < 3; ++i) ASSERT_EQ(q.try_push(int(i)), Q::Push::kOk);
  q.close();
  EXPECT_EQ(q.try_push(9), Q::Push::kClosed);  // admission stopped...
  std::vector<int> out;
  ASSERT_TRUE(q.pop_batch(8, std::chrono::microseconds(0), out));
  EXPECT_EQ(out.size(), 3u);  // ...but the backlog still drains
  EXPECT_FALSE(q.pop_batch(8, std::chrono::microseconds(0), out));
}

TEST(BoundedQueue, PopBlocksUntilCloseWhenEmpty) {
  Q q(4);
  std::vector<int> out;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  // Blocks (no data) until close, then reports end-of-work.
  EXPECT_FALSE(q.pop_batch(4, std::chrono::microseconds(0), out));
  closer.join();
}

TEST(BoundedQueue, MpmcPreservesEveryItemExactlyOnce) {
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 2000;
  Q q(16);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int cth = 0; cth < kConsumers; ++cth)
    consumers.emplace_back([&] {
      std::vector<int> out;
      while (q.pop_batch(4, std::chrono::microseconds(50), out)) {
        long local = 0;
        for (int v : out) local += v;
        sum.fetch_add(local, std::memory_order_relaxed);
        popped.fetch_add(int(out.size()), std::memory_order_relaxed);
      }
    });

  std::vector<std::thread> producers;
  for (int pth = 0; pth < kProducers; ++pth)
    producers.emplace_back([&, pth] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = pth * kPerProducer + i;
        while (q.try_push(int(v)) != Q::Push::kOk)
          std::this_thread::yield();  // full queue: caller's problem
      }
    });

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ------------------------------------------------ CoDel sojourn control

TEST(BoundedQueue, CoDelDropsOldestFromStandingQueue) {
  CoDelConfig codel;
  codel.enabled = true;
  codel.target = std::chrono::microseconds(1000);
  codel.interval = std::chrono::microseconds(3000);
  Q q(128, codel);
  for (int i = 0; i < 60; ++i) ASSERT_EQ(q.try_push(int(i)), Q::Push::kOk);
  // Let every queued item age past target: this is a STANDING queue,
  // the case CoDel exists for.
  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  std::vector<int> served, dropped;
  std::vector<int> out, drops;
  while (q.size() > 0) {
    out.clear();
    drops.clear();
    ASSERT_TRUE(
        q.pop_batch(1, std::chrono::microseconds(0), out, nullptr, &drops));
    served.insert(served.end(), out.begin(), out.end());
    dropped.insert(dropped.end(), drops.begin(), drops.end());
    // Spread the pops past codel.interval so min-sojourn stays above
    // target for a full interval and the dropping state engages.
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  EXPECT_GT(dropped.size(), 0u) << "a standing queue must be cut";
  EXPECT_GT(served.size(), 0u) << "CoDel trims the queue, never empties it";
  EXPECT_EQ(served.size() + dropped.size(), 60u) << "nothing vanishes";
  // Drop-from-front: every dropped item is older (smaller) than the
  // newest item that still got served.
  EXPECT_LT(*std::min_element(dropped.begin(), dropped.end()),
            *std::max_element(served.begin(), served.end()));
}

TEST(BoundedQueue, CoDelLeavesShortBurstsAlone) {
  // Sojourn above target but shorter than a full interval: burst
  // tolerance — nothing may be dropped.
  CoDelConfig codel;
  codel.enabled = true;
  codel.target = std::chrono::microseconds(1000);
  codel.interval = std::chrono::seconds(10);
  Q q(64, codel);
  for (int i = 0; i < 20; ++i) ASSERT_EQ(q.try_push(int(i)), Q::Push::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::vector<int> out, drops;
  std::size_t got = 0;
  while (q.size() > 0) {
    out.clear();
    ASSERT_TRUE(
        q.pop_batch(1, std::chrono::microseconds(0), out, nullptr, &drops));
    got += out.size();
  }
  EXPECT_TRUE(drops.empty());
  EXPECT_EQ(got, 20u);
}

TEST(BoundedQueue, CoDelNeedsADropSink) {
  // Passing no `dropped` vector disables dropping even when CoDel is
  // configured — the caller owns the accounting, so without a sink the
  // queue must not destroy items.
  CoDelConfig codel;
  codel.enabled = true;
  codel.target = std::chrono::microseconds(100);
  codel.interval = std::chrono::microseconds(200);
  Q q(64, codel);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(q.try_push(int(i)), Q::Push::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  std::vector<int> out;
  std::size_t got = 0;
  while (q.size() > 0) {
    out.clear();
    ASSERT_TRUE(q.pop_batch(1, std::chrono::microseconds(0), out));
    got += out.size();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(got, 10u);
}

// ------------------------------------------- deadline-aware linger fix

TEST(BoundedQueue, LingerStopsEarlyWhenDeadlineWouldExpireInside) {
  // Regression: a deadline tighter than batch_linger. The old queue
  // lingered the full window regardless, turning a servable request
  // into a shed one; now the linger is clamped to the deadline slack.
  Q q(8);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
  q.set_deadline_of(
      [deadline](const int&) { return deadline; });
  ASSERT_EQ(q.try_push(1), Q::Push::kOk);
  std::vector<int> out;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(q.pop_batch(8, std::chrono::milliseconds(500), out));
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(waited, std::chrono::milliseconds(250))
      << "coalescing must stop at the deadline, not out-wait it";
  EXPECT_LT(std::chrono::steady_clock::now(),
            deadline + std::chrono::milliseconds(200))
      << "the request must still be servable when handed over";
}

TEST(BoundedQueue, LingerStillCoalescesWhenDeadlinesAreSlack) {
  Q q(8);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  q.set_deadline_of([deadline](const int&) { return deadline; });
  ASSERT_EQ(q.try_push(1), Q::Push::kOk);
  std::thread filler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(q.try_push(2), Q::Push::kOk);
  });
  std::vector<int> out;
  // Ample slack: the linger window stays open and the second item
  // coalesces into the batch.
  ASSERT_TRUE(q.pop_batch(2, std::chrono::milliseconds(300), out));
  filler.join();
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace nga::serve
