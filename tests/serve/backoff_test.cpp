#include "serve/backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nga::serve {
namespace {

using std::chrono::microseconds;

TEST(Backoff, StaysWithinBaseAndCap) {
  BackoffConfig cfg;
  cfg.base = microseconds(100);
  cfg.cap = microseconds(1000);
  DecorrelatedBackoff b(cfg, 42);
  for (int i = 0; i < 200; ++i) {
    const auto d = b.next();
    EXPECT_GE(d, cfg.base) << "draw " << i;
    EXPECT_LE(d, cfg.cap) << "draw " << i;
  }
}

TEST(Backoff, DeterministicPerSeed) {
  BackoffConfig cfg;
  cfg.base = microseconds(50);
  cfg.cap = microseconds(5000);
  DecorrelatedBackoff a(cfg, 7), b(cfg, 7), c(cfg, 8);
  std::vector<long long> sa, sb, sc;
  for (int i = 0; i < 32; ++i) {
    sa.push_back(a.next().count());
    sb.push_back(b.next().count());
    sc.push_back(c.next().count());
  }
  EXPECT_EQ(sa, sb);   // same seed, same schedule
  EXPECT_NE(sa, sc);   // different seed decorrelates workers
}

TEST(Backoff, GrowsUnderRepeatedFailureAndResets) {
  BackoffConfig cfg;
  cfg.base = microseconds(100);
  cfg.cap = microseconds(100000);
  DecorrelatedBackoff b(cfg, 3);
  long long mx = 0;
  for (int i = 0; i < 64; ++i)
    mx = std::max<long long>(mx, b.next().count());
  // Decorrelated jitter escalates well past the first-step range
  // [base, 3*base) when failures persist.
  EXPECT_GT(mx, 3 * cfg.base.count());

  b.reset();
  // First draw after reset is back in the first-step range.
  EXPECT_LT(b.next().count(), 3 * cfg.base.count());
}

}  // namespace
}  // namespace nga::serve
