// nga::integrity woven into the server, end to end (NGA_FAULT builds):
//   * persistent LUT corruption (memflip) trips the replica's breaker,
//     the trip scrub repairs the table from its retained generator, and
//     the HalfOpen probe REINSTATES the replica — the loop a failover-
//     only strategy can never close;
//   * a replica whose table kept no generator cannot be repaired: the
//     trip scrub reports unreproducible pages, every probe is forced to
//     fail, and the breaker retires the replica for good;
//   * the background scrubber, trip-time deep scrubs, watchdog worker
//     replacement, and MAC readers all race without corrupting the
//     accounting (the TSan leg runs these suites under the detector —
//     which is why every suite here is named Integrity*).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "approx/multipliers.hpp"
#include "fault/fault.hpp"
#include "integrity/integrity.hpp"
#include "nn/layers.hpp"
#include "serve/serve.hpp"

#if NGA_FAULT

namespace nga::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr int kC = 1, kH = 4, kW = 4;

nn::Tensor make_input(int i) {
  nn::Tensor x(kC, kH, kW);
  for (std::size_t j = 0; j < x.v.size(); ++j)
    x.v[j] = float((i * 31 + int(j) * 7) % 17) / 17.f;
  return x;
}

std::unique_ptr<nn::Model> make_model() {
  util::Xoshiro256 rng(7);
  auto m = std::make_unique<nn::Model>("integrity-test");
  m->add(std::make_unique<nn::Dense>(kC * kH * kW, 10, rng));
  return m;
}

// Drive traffic until pred() is true or `rounds` requests served.
template <class Pred>
void pump_until(Server& srv, Pred pred, int rounds,
                milliseconds gap = milliseconds(5)) {
  for (int n = 0; n < rounds && !pred(); ++n) {
    (void)srv.submit(make_input(n), milliseconds(5000)).get();
    std::this_thread::sleep_for(gap);
  }
}

ServerConfig integrity_config(const nn::MulTable* exact) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.max_batch = 4;
  cfg.batch_linger = microseconds(100);
  cfg.in_c = kC;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.mode = nn::Mode::kQuantApprox;
  cfg.exact_fallback = exact;
  cfg.model_factory = make_model;
  cfg.max_attempts = 2;
  cfg.retry_exact_failover = true;
  cfg.backoff.base = microseconds(50);
  cfg.backoff.cap = microseconds(500);
  cfg.supervision.supervise = true;
  cfg.supervision.breaker.window = 8;
  cfg.supervision.breaker.min_samples = 4;
  cfg.supervision.breaker.trip_failure_rate = 0.5;
  cfg.supervision.breaker.cooldown = milliseconds(30);
  cfg.supervision.probe_samples = 6;
  cfg.supervision.probe_tolerance = 0;
  // Reinstatement at tolerance 0 needs the replica's own clean
  // predictions as the reference, not the exact table's.
  cfg.supervision.probe_self_reference = true;
  cfg.integrity.enabled = true;
  cfg.integrity.scrub_on_trip = true;
  cfg.integrity.pages_per_sec = 0.0;  // no background thread: every
                                      // repair is attributable to the
                                      // trip scrub under test
  return cfg;
}

// Saturating memflip: every approximate MAC flips one random bit of
// the live table, so corruption accumulates fast enough that the
// plausibility detector (p > pmax) makes batches suspect within a
// handful of requests.
void arm_memflip(util::u64 seed) {
  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kMemFlip, 1.0);
  fault::Injector::instance().arm(plan, seed);
}

void expect_invariant(const Server::Stats& st) {
  EXPECT_EQ(st.served + st.rejected + st.shed, st.submitted)
      << "served=" << st.served << " rejected=" << st.rejected
      << " shed=" << st.shed << " submitted=" << st.submitted;
}

TEST(IntegrityServe, TripScrubRepairsAndReinstatesCorruptedReplica) {
  std::shared_ptr<const ax::ApproxMult8> gen =
      std::move(ax::table2_multipliers().front());
  const nn::MulTable exact;

  auto cfg = integrity_config(&exact);
  // Retained generator => regenerable replica, the repair-driven path.
  cfg.mul_factory = [gen] { return std::make_shared<const nn::MulTable>(gen); };
  // Reinstatement is the assertion; make retirement unreachable so a
  // probe unlucky enough to race fresh corruption only reopens.
  cfg.supervision.breaker.max_probe_failures = 1000;

  Server srv(cfg);
  srv.start();
  // Clean warmup FIRST: the worker captures its self-reference before
  // any flip can land.
  pump_until(srv, [] { return false; }, 3);

  arm_memflip(4242);
  pump_until(srv, [&] { return srv.guard_stats().breaker_trips >= 1; }, 200);
  ASSERT_GE(srv.guard_stats().breaker_trips, 1u)
      << "persistent LUT corruption must trip the breaker";
  // Stop corrupting; the accumulated damage is still in the table, and
  // only the trip scrub can clear it for the probe.
  fault::Injector::instance().disarm();
  pump_until(srv, [&] { return srv.guard_stats().breaker_reinstated >= 1; },
             200, milliseconds(10));
  srv.drain();

  const auto gs = srv.guard_stats();
  EXPECT_GE(gs.trip_scrubs, 1u);
  EXPECT_GE(gs.scrub_repaired, 1u)
      << "the deep scrub must have regenerated corrupted pages";
  EXPECT_GE(gs.breaker_reinstated, 1u)
      << "a repaired replica must probe clean and return to service";
  EXPECT_EQ(gs.scrub_unreproducible, 0u);
  EXPECT_FALSE(gs.breaker_retired);
  expect_invariant(srv.stats());
}

TEST(IntegrityServe, UnrepairableReplicaIsRetiredNotReinstated) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable exact;

  auto cfg = integrity_config(&exact);
  // Borrowed-generator tables retain nothing: corrupt pages are
  // kNoGenerator, the trip scrub cannot restore them, and kRetired is
  // exactly the state reserved for unreproducible corruption.
  const ax::ApproxMult8* borrowed = mults.front().get();
  cfg.mul_factory = [borrowed] {
    return std::make_shared<const nn::MulTable>(*borrowed);
  };
  cfg.supervision.breaker.max_probe_failures = 2;

  Server srv(cfg);
  srv.start();
  pump_until(srv, [] { return false; }, 3);

  arm_memflip(99);
  pump_until(srv, [&] { return srv.guard_stats().breaker_trips >= 1; }, 200);
  ASSERT_GE(srv.guard_stats().breaker_trips, 1u);
  fault::Injector::instance().disarm();
  pump_until(srv, [&] { return srv.guard_stats().breaker_retired >= 1; }, 200,
             milliseconds(10));
  srv.drain();

  const auto gs = srv.guard_stats();
  EXPECT_GE(gs.trip_scrubs, 2u) << "each probe attempt deep-scrubs first";
  EXPECT_GE(gs.scrub_unreproducible, 1u);
  EXPECT_EQ(gs.scrub_repaired, 0u) << "nothing is repairable without a "
                                      "generator";
  EXPECT_GE(gs.breaker_retired, 1u);
  EXPECT_EQ(gs.breaker_reinstated, 0u);
  // Retired = permanent exact path; requests keep being served.
  const auto st = srv.stats();
  EXPECT_GT(st.served, 0u);
  expect_invariant(st);
}

// The probe's trip scrub (worker thread) racing the background scrub
// rotation (scrubber thread) racing MAC readers and fresh corruption:
// the TSan leg runs this to prove the whole integrity path is
// data-race-free under live traffic.
TEST(IntegrityProbeRace, DeepScrubRacesBackgroundScrubberUnderTraffic) {
  std::shared_ptr<const ax::ApproxMult8> gen =
      std::move(ax::table2_multipliers().front());
  const nn::MulTable exact;

  auto cfg = integrity_config(&exact);
  cfg.workers = 2;
  cfg.mul_factory = [gen] { return std::make_shared<const nn::MulTable>(gen); };
  cfg.supervision.breaker.max_probe_failures = 1000;
  cfg.integrity.pages_per_sec = 50000.0;  // background thread ON, hot

  Server srv(cfg);
  srv.start();
  pump_until(srv, [] { return false; }, 3);
  arm_memflip(7);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 60; ++i) {
    futs.push_back(srv.submit(make_input(i), milliseconds(5000)));
    if (i % 8 == 7) std::this_thread::sleep_for(milliseconds(5));
  }
  for (auto& f : futs) (void)f.get();
  fault::Injector::instance().disarm();
  srv.drain();

  expect_invariant(srv.stats());
  EXPECT_FALSE(integrity::Scrubber::instance().running())
      << "drain must stop the scrubber thread the server started";
}

// Watchdog replacement mid-corruption: the wedged victim's table is
// unregistered with its worker, the replacement registers a fresh one,
// and the redelivered batch keeps the drain invariant exact.
TEST(IntegrityServe, WorkerReplacementMidScrubKeepsAccounting) {
  std::shared_ptr<const ax::ApproxMult8> gen =
      std::move(ax::table2_multipliers().front());
  const nn::MulTable exact;

  auto cfg = integrity_config(&exact);
  cfg.mul_factory = [gen] { return std::make_shared<const nn::MulTable>(gen); };
  cfg.supervision.breaker.max_probe_failures = 1000;
  cfg.supervision.watchdog.check_interval = milliseconds(10);
  cfg.supervision.watchdog.max_exec = milliseconds(60);
  cfg.supervision.watchdog.min_timeout = milliseconds(1);
  const auto count0 = integrity::Scrubber::instance().table_count();

  Server srv(cfg);
  srv.start();
  pump_until(srv, [] { return false; }, 2);
  // Wedge the single worker with an injected hang long enough for the
  // watchdog to cancel + replace it while memflips are landing.
  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kMemFlip, 0.5);
  plan.inject(fault::Site::kNnExec, fault::Model::kHang, 0.05);
  plan.with_delay(fault::Site::kNnExec, 400.0);
  fault::Injector::instance().arm(plan, 31);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 40; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(8000)));
  for (auto& f : futs) (void)f.get();
  fault::Injector::instance().disarm();
  srv.drain();

  expect_invariant(srv.stats());
  EXPECT_EQ(integrity::Scrubber::instance().table_count(), count0)
      << "every worker generation must unregister its table on exit";
}

}  // namespace
}  // namespace nga::serve

#endif  // NGA_FAULT
