#include "serve/health.hpp"

#include <gtest/gtest.h>

namespace nga::serve {
namespace {

HealthConfig small_window() {
  HealthConfig cfg;
  cfg.window = 10;
  cfg.min_samples = 5;
  cfg.degrade_error_rate = 0.30;
  cfg.recover_error_rate = 0.05;
  return cfg;
}

TEST(Health, NoJudgementBeforeMinSamples) {
  HealthTracker h(small_window());
  for (int i = 0; i < 4; ++i) h.record(false, 1.0);  // 100% errors...
  EXPECT_FALSE(h.degraded());  // ...but not enough evidence yet
}

TEST(Health, DegradesOnErrorBurstAndRecoversWithHysteresis) {
  HealthTracker h(small_window());
  for (int i = 0; i < 10; ++i) h.record(true, 1.0);
  EXPECT_FALSE(h.degraded());

  for (int i = 0; i < 4; ++i) h.record(false, 1.0);  // 4/10 >= 0.30
  EXPECT_TRUE(h.degraded());

  // One good batch is not recovery: hysteresis holds Degraded until the
  // window error rate falls to <= recover_error_rate.
  h.record(true, 1.0);
  EXPECT_TRUE(h.degraded());
  for (int i = 0; i < 10; ++i) h.record(true, 1.0);  // errors age out
  EXPECT_FALSE(h.degraded());
}

TEST(Health, SnapshotReportsWindowStats) {
  HealthTracker h(small_window());
  for (int i = 0; i < 8; ++i) h.record(i % 4 != 0, double(i + 1));
  const auto s = h.snapshot();
  EXPECT_EQ(s.samples, 8u);
  EXPECT_NEAR(s.error_rate, 2.0 / 8.0, 1e-12);
  EXPECT_GE(s.latency_p99_ms, 7.0);  // p99 of {1..8} is the top sample
  EXPECT_LE(s.latency_p99_ms, 8.0);
}

TEST(Health, StateNamesAreStable) {
  EXPECT_EQ(state_name(State::kStarting), "starting");
  EXPECT_EQ(state_name(State::kServing), "serving");
  EXPECT_EQ(state_name(State::kDegraded), "degraded");
  EXPECT_EQ(state_name(State::kDraining), "draining");
  EXPECT_EQ(state_name(State::kStopped), "stopped");
}

}  // namespace
}  // namespace nga::serve
