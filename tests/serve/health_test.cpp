#include "serve/health.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nga::serve {
namespace {

HealthConfig small_window() {
  HealthConfig cfg;
  cfg.window = 10;
  cfg.min_samples = 5;
  cfg.degrade_error_rate = 0.30;
  cfg.recover_error_rate = 0.05;
  return cfg;
}

TEST(Health, NoJudgementBeforeMinSamples) {
  HealthTracker h(small_window());
  for (int i = 0; i < 4; ++i) h.record(false, 1.0);  // 100% errors...
  EXPECT_FALSE(h.degraded());  // ...but not enough evidence yet
}

TEST(Health, DegradesOnErrorBurstAndRecoversWithHysteresis) {
  HealthTracker h(small_window());
  for (int i = 0; i < 10; ++i) h.record(true, 1.0);
  EXPECT_FALSE(h.degraded());

  for (int i = 0; i < 4; ++i) h.record(false, 1.0);  // 4/10 >= 0.30
  EXPECT_TRUE(h.degraded());

  // One good batch is not recovery: hysteresis holds Degraded until the
  // window error rate falls to <= recover_error_rate.
  h.record(true, 1.0);
  EXPECT_TRUE(h.degraded());
  for (int i = 0; i < 10; ++i) h.record(true, 1.0);  // errors age out
  EXPECT_FALSE(h.degraded());
}

TEST(Health, SnapshotReportsWindowStats) {
  HealthTracker h(small_window());
  for (int i = 0; i < 8; ++i) h.record(i % 4 != 0, double(i + 1));
  const auto s = h.snapshot();
  EXPECT_EQ(s.samples, 8u);
  EXPECT_NEAR(s.error_rate, 2.0 / 8.0, 1e-12);
  EXPECT_GE(s.latency_p99_ms, 7.0);  // p99 of {1..8} is the top sample
  EXPECT_LE(s.latency_p99_ms, 8.0);
}

// -- numeric-health channel --------------------------------------------

HealthConfig numeric_window() {
  HealthConfig cfg = small_window();
  cfg.degrade_numeric_rate = 0.10;  // windowed-mean bad-events-per-MAC
  cfg.recover_numeric_rate = 0.02;
  return cfg;
}

TEST(Health, NumericChannelDisabledByDefault) {
  HealthTracker h(small_window());  // degrade_numeric_rate == 0
  for (int i = 0; i < 10; ++i) h.record(true, 1.0, /*numeric_rate=*/0.9);
  EXPECT_FALSE(h.degraded());  // requests all succeed; channel is off
  EXPECT_FALSE(h.snapshot().numeric_degraded);
  EXPECT_NEAR(h.snapshot().numeric_rate, 0.9, 1e-12);  // still reported
}

TEST(Health, SustainedNumericRateDegradesEvenWhenEveryRequestSucceeds) {
  HealthTracker h(numeric_window());
  for (int i = 0; i < 10; ++i) h.record(true, 1.0, 0.01);
  EXPECT_FALSE(h.degraded());

  // Sustained numeric degradation with ok batches: window mean climbs
  // past degrade_numeric_rate while the error channel stays clean.
  for (int i = 0; i < 10; ++i) h.record(true, 1.0, 0.25);
  EXPECT_TRUE(h.degraded());
  const auto s = h.snapshot();
  EXPECT_TRUE(s.numeric_degraded);
  EXPECT_FALSE(s.error_degraded);
  EXPECT_NEAR(s.numeric_rate, 0.25, 1e-12);
}

TEST(Health, NumericChannelRecoversWithItsOwnHysteresis) {
  HealthTracker h(numeric_window());
  for (int i = 0; i < 10; ++i) h.record(true, 1.0, 0.25);
  ASSERT_TRUE(h.degraded());

  // Dropping below the degrade threshold is not recovery: the mean must
  // fall to <= recover_numeric_rate (0.02) before Serving resumes.
  for (int i = 0; i < 10; ++i) h.record(true, 1.0, 0.05);
  EXPECT_TRUE(h.degraded()) << "mean 0.05 is inside the hysteresis band";
  for (int i = 0; i < 10; ++i) h.record(true, 1.0, 0.0);
  EXPECT_FALSE(h.degraded());
}

TEST(Health, VerdictIsTheOrOfBothChannels) {
  HealthTracker h(numeric_window());
  for (int i = 0; i < 10; ++i) h.record(true, 1.0, 0.25);
  ASSERT_TRUE(h.snapshot().numeric_degraded);

  // Clear the numeric channel but fail requests: still degraded, now on
  // the error channel alone.
  for (int i = 0; i < 10; ++i) h.record(false, 1.0, 0.0);
  const auto s = h.snapshot();
  EXPECT_TRUE(s.error_degraded);
  EXPECT_FALSE(s.numeric_degraded);
  EXPECT_TRUE(h.degraded());
}

TEST(Health, NegativeOrNanNumericRatesAreScrubbedToZero) {
  HealthTracker h(numeric_window());
  for (int i = 0; i < 10; ++i)
    h.record(true, 1.0, i % 2 ? -1.0 : std::nan(""));
  EXPECT_FALSE(h.degraded());
  EXPECT_NEAR(h.snapshot().numeric_rate, 0.0, 1e-12);
}

TEST(Health, StateNamesAreStable) {
  EXPECT_EQ(state_name(State::kStarting), "starting");
  EXPECT_EQ(state_name(State::kServing), "serving");
  EXPECT_EQ(state_name(State::kDegraded), "degraded");
  EXPECT_EQ(state_name(State::kDraining), "draining");
  EXPECT_EQ(state_name(State::kStopped), "stopped");
}

}  // namespace
}  // namespace nga::serve
