// Drain racing admission, hammered for the TSan CI leg.
//
// The contract under attack: close()/drain() may land at ANY point in a
// storm of submit()/try_push()/requeue() calls, and every single item
// must still be accounted for exactly once — consumed by a worker, or
// bounced back to its producer as kFull/kClosed. Nothing is dropped,
// nothing is double-delivered, and served + rejected + shed ==
// submitted holds at the server level.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/serve.hpp"

namespace nga::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

TEST(DrainRace, QueueCloseMidStormLosesAndDuplicatesNothing) {
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 3000;
  for (int round = 0; round < 8; ++round) {
    BoundedQueue<int> q(16);
    std::atomic<long> pushed{0}, bounced{0}, popped{0};
    std::atomic<long> value_sum_in{0}, value_sum_out{0};

    std::vector<std::thread> producers, consumers;
    for (int p = 0; p < kProducers; ++p)
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const int v = p * kPerProducer + i;
          // Exercise both admission paths under the race.
          const auto res = (i % 7 == 0) ? q.requeue(int(v)) : q.try_push(int(v));
          if (res == BoundedQueue<int>::Push::kOk) {
            pushed.fetch_add(1, std::memory_order_relaxed);
            value_sum_in.fetch_add(v, std::memory_order_relaxed);
          } else {
            bounced.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    for (int c = 0; c < kConsumers; ++c)
      consumers.emplace_back([&] {
        std::vector<int> batch;
        while (q.pop_batch(4, microseconds(20), batch)) {
          popped.fetch_add(long(batch.size()), std::memory_order_relaxed);
          for (int v : batch)
            value_sum_out.fetch_add(v, std::memory_order_relaxed);
        }
      });

    // Close somewhere in the middle of the storm.
    std::this_thread::sleep_for(microseconds(200 + round * 300));
    q.close();
    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();

    EXPECT_EQ(pushed.load() + bounced.load(),
              long(kProducers) * kPerProducer);
    EXPECT_EQ(popped.load(), pushed.load())
        << "every admitted item is consumed, even after close()";
    EXPECT_EQ(value_sum_out.load(), value_sum_in.load())
        << "items arrive exactly once, unmodified";
    EXPECT_EQ(q.size(), 0u);
  }
}

TEST(DrainRace, FailedPushLeavesTheItemWithTheCaller) {
  // kClosed/kFull must not consume the moved-from operand: the server
  // finishes such a request (kDraining / kOverloaded) from the
  // still-live object after the push fails.
  using Q = BoundedQueue<std::vector<int>>;
  Q full(1);
  ASSERT_EQ(full.try_push(std::vector<int>{1}), Q::Push::kOk);
  std::vector<int> item{4, 2};
  EXPECT_EQ(full.try_push(std::move(item)), Q::Push::kFull);
  EXPECT_EQ(item.size(), 2u) << "kFull left the operand intact";

  Q closed(4);
  closed.close();
  EXPECT_EQ(closed.try_push(std::move(item)), Q::Push::kClosed);
  EXPECT_EQ(item.size(), 2u) << "kClosed left the operand intact";
  EXPECT_EQ(closed.requeue(std::move(item)), Q::Push::kClosed);
  EXPECT_EQ(item.size(), 2u) << "requeue kClosed left the operand intact";
  EXPECT_EQ(closed.size(), 0u);
}

// Submitters racing drain() through the full server stack: the single
// finish() choke point keeps the invariant exact whatever interleaving
// the scheduler produces. This is the server-level twin of the raw
// queue test above (the TSan leg runs both).
TEST(DrainRace, ServerDrainRacingSubmittersKeepsExactAccounting) {
  constexpr int kC = 1, kH = 2, kW = 2;
  for (int round = 0; round < 4; ++round) {
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 8;
    cfg.max_batch = 4;
    cfg.batch_linger = microseconds(50);
    cfg.in_c = kC;
    cfg.in_h = kH;
    cfg.in_w = kW;
    cfg.mode = nn::Mode::kFloat;
    cfg.model_factory = [] {
      util::Xoshiro256 rng(3);
      auto m = std::make_unique<nn::Model>("drain-race");
      m->add(std::make_unique<nn::Dense>(kC * kH * kW, 4, rng));
      return m;
    };

    Server srv(cfg);
    srv.start();

    constexpr int kThreads = 4, kPer = 200;
    std::vector<std::future<Response>> futs[kThreads];
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t)
      submitters.emplace_back([&, t] {
        nn::Tensor x(kC, kH, kW);
        for (int i = 0; i < kPer; ++i) {
          for (auto& f : x.v) f = float((t + i) % 5) / 5.f;
          futs[t].push_back(srv.submit(x, milliseconds(200)));
        }
      });
    // Drain while the submitters are mid-burst.
    std::this_thread::sleep_for(microseconds(300 + round * 500));
    srv.drain();
    for (auto& t : submitters) t.join();

    u64 resolved = 0;
    for (auto& tf : futs)
      for (auto& f : tf) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "drain() must resolve every outstanding future";
        (void)f.get();
        ++resolved;
      }
    const auto st = srv.stats();
    EXPECT_EQ(st.submitted, resolved);
    EXPECT_EQ(st.served + st.rejected + st.shed, st.submitted)
        << "served=" << st.served << " rejected=" << st.rejected
        << " shed=" << st.shed << " submitted=" << st.submitted;
    for (int t = 0; t < kThreads; ++t) futs[t].clear();
  }
}

}  // namespace
}  // namespace nga::serve
