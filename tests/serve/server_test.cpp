// Server robustness contract:
//   * typed validation rejects, backpressure rejects, deadline sheds;
//   * every future resolves;
//   * served + rejected + shed == submitted after drain() — no request
//     is ever silently dropped, under concurrency and fault injection.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "approx/multipliers.hpp"
#include "fault/fault.hpp"
#include "nn/layers.hpp"
#include "obs/obs.hpp"

namespace nga::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// A layer that burns wall time: lets tests make workers slow enough to
// provoke backpressure and deadline shedding deterministically.
class SleepLayer final : public nn::Layer {
 public:
  explicit SleepLayer(microseconds d) : d_(d) {}
  nn::Tensor forward(const nn::Tensor& x, const nn::Exec&) override {
    std::this_thread::sleep_for(d_);
    return x;
  }
  nn::Tensor backward(const nn::Tensor& dy) override { return dy; }
  std::string name() const override { return "sleep"; }

 private:
  microseconds d_;
};

constexpr int kC = 1, kH = 4, kW = 4;

nn::Tensor make_input(int i) {
  nn::Tensor x(kC, kH, kW);
  for (std::size_t j = 0; j < x.v.size(); ++j)
    x.v[j] = float((i * 31 + int(j) * 7) % 17) / 17.f;
  return x;
}

// All replicas share the seed, so every worker computes the same
// function.
std::unique_ptr<nn::Model> make_float_model() {
  util::Xoshiro256 rng(7);
  auto m = std::make_unique<nn::Model>("serve-test");
  m->add(std::make_unique<nn::Dense>(kC * kH * kW, 10, rng));
  return m;
}

ServerConfig float_config() {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  cfg.max_batch = 4;
  cfg.batch_linger = microseconds(100);
  cfg.in_c = kC;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.mode = nn::Mode::kFloat;
  cfg.model_factory = make_float_model;
  return cfg;
}

void expect_invariant(const Server::Stats& st) {
  EXPECT_EQ(st.served + st.rejected + st.shed, st.submitted)
      << "served=" << st.served << " rejected=" << st.rejected
      << " shed=" << st.shed << " submitted=" << st.submitted;
}

TEST(Server, RejectsBeforeStartAfterDrainAndOnBadInput) {
  Server srv(float_config());
  EXPECT_EQ(srv.state(), State::kStarting);

  auto f0 = srv.submit(make_input(0), milliseconds(100));
  auto r0 = f0.get();
  EXPECT_EQ(r0.outcome, Outcome::kRejected);
  EXPECT_EQ(r0.reason, RejectReason::kNotServing);

  srv.start();
  EXPECT_EQ(srv.state(), State::kServing);

  nn::Tensor bad(kC, kH + 1, kW);
  auto r1 = srv.submit(std::move(bad), milliseconds(100)).get();
  EXPECT_EQ(r1.outcome, Outcome::kRejected);
  EXPECT_EQ(r1.reason, RejectReason::kBadShape);

  nn::Tensor nan_in = make_input(1);
  nan_in.v[3] = std::nanf("");
  auto r2 = srv.submit(std::move(nan_in), milliseconds(100)).get();
  EXPECT_EQ(r2.outcome, Outcome::kRejected);
  EXPECT_EQ(r2.reason, RejectReason::kNonFinite);

  srv.drain();
  EXPECT_EQ(srv.state(), State::kStopped);
  auto r3 = srv.submit(make_input(2), milliseconds(100)).get();
  EXPECT_EQ(r3.outcome, Outcome::kRejected);
  EXPECT_EQ(r3.reason, RejectReason::kDraining);
  expect_invariant(srv.stats());
}

TEST(Server, ServesAndMatchesDirectForward) {
  auto reference = make_float_model();
  nn::Exec ex;  // float mode

  Server srv(float_config());
  srv.start();
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(2000)));

  for (int i = 0; i < 32; ++i) {
    auto r = futs[std::size_t(i)].get();
    ASSERT_EQ(r.outcome, Outcome::kServed) << "request " << i;
    const nn::Tensor logits = reference->forward(make_input(i), ex);
    const int want =
        int(std::max_element(logits.v.begin(), logits.v.end()) -
            logits.v.begin());
    EXPECT_EQ(r.predicted, want) << "request " << i;
    EXPECT_GE(r.attempts, 1);
    EXPECT_GT(r.latency_ms, 0.0);
  }
  srv.drain();
  const auto st = srv.stats();
  EXPECT_EQ(st.served, 32u);
  expect_invariant(st);
}

TEST(Server, ShedsExpiredDeadlineAtSubmit) {
  Server srv(float_config());
  srv.start();
  auto r = srv.submit(make_input(0), Clock::now() - milliseconds(1)).get();
  EXPECT_EQ(r.outcome, Outcome::kShed);
  srv.drain();
  expect_invariant(srv.stats());
}

TEST(Server, ShedsBeforeExecutionWhenDeadlinePassesInQueue) {
  auto cfg = float_config();
  cfg.workers = 1;
  cfg.max_batch = 16;                     // batch never fills...
  cfg.batch_linger = milliseconds(50);    // ...so the worker lingers
  Server srv(cfg);
  srv.start();
  auto f0 = srv.submit(make_input(0), milliseconds(2));
  auto f1 = srv.submit(make_input(1), milliseconds(2));
  EXPECT_EQ(f0.get().outcome, Outcome::kShed);
  EXPECT_EQ(f1.get().outcome, Outcome::kShed);
  srv.drain();
  expect_invariant(srv.stats());
}

TEST(Server, OverloadRejectsWithBackpressure) {
  auto cfg = float_config();
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.max_batch = 1;
  cfg.batch_linger = microseconds(0);
  cfg.model_factory = [] {
    auto m = make_float_model();
    m->add(std::make_unique<SleepLayer>(milliseconds(3)));
    return m;
  };
  Server srv(cfg);
  srv.start();

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 30; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(10000)));

  std::size_t overloaded = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    if (r.outcome == Outcome::kRejected) {
      EXPECT_EQ(r.reason, RejectReason::kOverloaded);
      ++overloaded;
    }
  }
  EXPECT_GT(overloaded, 0u) << "a 2-deep queue fed 30 requests at once "
                               "must reject some";
  srv.drain();
  expect_invariant(srv.stats());
}

// The acceptance-criteria test: saturating concurrent load, drain in
// the middle of it, and zero silently dropped requests.
TEST(Server, DrainInvariantUnderSaturatingConcurrentLoad) {
  auto cfg = float_config();
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.max_batch = 4;
  cfg.model_factory = [] {
    auto m = make_float_model();
    m->add(std::make_unique<SleepLayer>(microseconds(200)));
    return m;
  };
#if NGA_FAULT
  // Chaos on top: the armed MAC site never fires on the float path, but
  // arming while the pool serves proves arm()/hot-path concurrency is
  // safe (the TSan CI leg runs this test).
  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 0.02);
  fault::Injector::instance().arm(plan, 99);
#endif

  Server srv(cfg);
  srv.start();

  constexpr int kThreads = 4, kPerThread = 100;
  std::vector<std::future<Response>> futs[kThreads];
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t)
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        futs[t].push_back(srv.submit(make_input(t * kPerThread + i),
                                     milliseconds(i % 3 == 0 ? 1 : 50)));
    });
  for (auto& p : producers) p.join();
  srv.drain();

#if NGA_FAULT
  fault::Injector::instance().disarm();
#endif

  u64 served = 0, rejected = 0, shed = 0;
  for (auto& tf : futs)
    for (auto& f : tf) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "a future was left unresolved after drain()";
      const auto r = f.get();
      served += r.outcome == Outcome::kServed;
      rejected += r.outcome == Outcome::kRejected;
      shed += r.outcome == Outcome::kShed;
    }
  const auto st = srv.stats();
  EXPECT_EQ(st.submitted, u64(kThreads * kPerThread));
  EXPECT_EQ(st.served, served);
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.shed, shed);
  expect_invariant(st);
  EXPECT_EQ(srv.state(), State::kStopped);
}

// -- observability v2: tracing, numeric health, exposition -------------

// Spans recorded for one trace id, by name.
std::map<std::string, obs::TraceEvent> spans_of(u64 trace_id) {
  std::map<std::string, obs::TraceEvent> out;
  for (auto& ev : obs::TraceBuffer::instance().snapshot())
    if (ev.trace_id == trace_id) out[ev.name] = ev;
  return out;
}

TEST(Server, SampledRequestsShareOneTraceWithStageAncestry) {
  obs::TraceBuffer::instance().clear();
  auto cfg = float_config();
  cfg.trace_sample_rate = 1.0;  // trace every request
  Server srv(cfg);
  srv.start();
  auto r = srv.submit(make_input(0), milliseconds(2000)).get();
  ASSERT_EQ(r.outcome, Outcome::kServed);
  EXPECT_NE(r.trace_id, 0u) << "sampled requests expose their trace id";
  srv.drain();

  const auto spans = spans_of(r.trace_id);
  ASSERT_TRUE(spans.count("request.served")) << "root span closes at reply";
  ASSERT_TRUE(spans.count("queue_wait"));
  ASSERT_TRUE(spans.count("batch_fill"));
  ASSERT_TRUE(spans.count("exec"));

  // One stacked timeline: every stage is a child of the request root.
  const auto& root = spans.at("request.served");
  EXPECT_EQ(root.parent_span, 0u);
  EXPECT_NE(root.span_id, 0u);
  for (const char* stage : {"queue_wait", "batch_fill", "exec"}) {
    const auto& sp = spans.at(stage);
    EXPECT_EQ(sp.parent_span, root.span_id) << stage;
    EXPECT_EQ(sp.trace_id, r.trace_id) << stage;
  }
  // Stage spans nest inside the root's [start, start+dur] envelope.
  EXPECT_GE(spans.at("queue_wait").start_ns, root.start_ns);
  EXPECT_LE(spans.at("exec").start_ns + spans.at("exec").dur_ns,
            root.start_ns + root.dur_ns + 1'000'000 /*1ms clock slack*/);
  obs::TraceBuffer::instance().clear();
}

TEST(Server, UnsampledRequestsRecordNoSpans) {
  obs::TraceBuffer::instance().clear();
  Server srv(float_config());  // trace_sample_rate defaults to 0
  srv.start();
  auto r = srv.submit(make_input(0), milliseconds(2000)).get();
  ASSERT_EQ(r.outcome, Outcome::kServed);
  EXPECT_EQ(r.trace_id, 0u);
  srv.drain();
  for (const auto& ev : obs::TraceBuffer::instance().snapshot())
    EXPECT_EQ(ev.trace_id, 0u) << ev.name;
  obs::TraceBuffer::instance().clear();
}

TEST(Server, DrainWritesTextExpositionWhenConfigured) {
  const std::string path = ::testing::TempDir() + "nga_serve_expo.prom";
  auto cfg = float_config();
  cfg.exposition_path = path;
  Server srv(cfg);
  srv.start();
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(srv.submit(make_input(i), milliseconds(2000)).get().outcome,
              Outcome::kServed);
  srv.drain();

  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << path;
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string text = ss.str();
#if NGA_OBS
  EXPECT_NE(text.find("nga_serve_submitted_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
#else
  // With instrumentation compiled out, the file still exists (possibly
  // sparse) — the exposition path itself must not depend on NGA_OBS.
  (void)text;
#endif
  std::remove(path.c_str());
}

TEST(Server, NumericHealthAggregatesPerLayerAcrossWorkers) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());

  auto cfg = float_config();
  cfg.mode = nn::Mode::kQuantApprox;  // the quant path counts MACs
  cfg.mul = &approx;
  Server srv(cfg);
  srv.start();
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(srv.submit(make_input(i), milliseconds(2000)).get().outcome,
              Outcome::kServed);
  srv.drain();

  const auto nh = srv.numeric_health();
  EXPECT_GT(nh.batches, 0u);
  ASSERT_EQ(nh.layers.size(), 1u) << "one Dense layer in the test model";
  EXPECT_EQ(nh.layers[0].name, "0.dense");
#if NGA_OBS
  EXPECT_GT(nh.total().macs, 0u)
      << "every quant MAC lands in the per-layer attribution";
  EXPECT_GT(nh.layers[0].counts.macs, 0u);
#endif
}

#if NGA_OBS
TEST(Server, StageLatencySeriesPopulatePerRequest) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  Server srv(float_config());
  srv.start();
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(srv.submit(make_input(i), milliseconds(2000)).get().outcome,
              Outcome::kServed);
  srv.drain();

  const auto series = reg.series_snapshot();
  for (const char* key :
       {"serve.stage.queue_wait_ms", "serve.stage.batch_fill_ms",
        "serve.stage.exec_ms"}) {
    ASSERT_TRUE(series.count(key)) << key;
    EXPECT_EQ(series.at(key).count, 8u) << key << ": one sample/request";
    EXPECT_GE(series.at(key).min, 0.0) << key;
  }
}
#endif  // NGA_OBS

#if NGA_FAULT

std::unique_ptr<nn::Model> make_quant_model() { return make_float_model(); }

TEST(Server, RetryWithExactFailoverRecoversFromInjectedFaults) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 0.25);
  fault::Injector::instance().arm(plan, 4321);

  auto cfg = float_config();
  cfg.workers = 2;
  cfg.queue_capacity = 64;  // hold the whole burst: retries are slow
  cfg.mode = nn::Mode::kQuantApprox;
  cfg.mul = &approx;
  cfg.exact_fallback = &exact;
  cfg.max_attempts = 3;
  cfg.retry_exact_failover = true;
  cfg.backoff.base = microseconds(50);
  cfg.backoff.cap = microseconds(500);
  cfg.model_factory = make_quant_model;

  Server srv(cfg);
  srv.start();
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 40; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(5000)));
  for (auto& f : futs)
    EXPECT_EQ(f.get().outcome, Outcome::kServed)
        << "the final attempt fails over to the fault-free exact table, "
           "so every request must eventually serve";
  srv.drain();
  fault::Injector::instance().disarm();

  const auto st = srv.stats();
  EXPECT_EQ(st.served, 40u);
  EXPECT_GT(st.retries, 0u) << "a 25% MAC fault rate must trip retries";
  expect_invariant(st);
}

TEST(Server, NoRetryRejectsTransientsAndDegradesThenRecovers) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 0.5);
  fault::Injector::instance().arm(plan, 77);

  auto cfg = float_config();
  cfg.workers = 1;
  cfg.mode = nn::Mode::kQuantApprox;
  cfg.mul = &approx;
  cfg.exact_fallback = &exact;
  cfg.max_attempts = 1;  // no retry: transients become typed rejects
  cfg.health.window = 16;
  cfg.health.min_samples = 4;
  cfg.health.degrade_error_rate = 0.5;
  cfg.health.recover_error_rate = 0.05;
  cfg.model_factory = make_quant_model;

  Server srv(cfg);
  srv.start();
  std::size_t exhausted = 0;
  for (int i = 0; i < 24; ++i) {
    const auto r = srv.submit(make_input(i), milliseconds(5000)).get();
    if (r.outcome == Outcome::kRejected) {
      EXPECT_EQ(r.reason, RejectReason::kRetriesExhausted);
      ++exhausted;
    }
  }
  EXPECT_GT(exhausted, 4u);
  EXPECT_EQ(srv.state(), State::kDegraded)
      << "a sustained transient-failure burst must degrade health";

  // Faults stop; clean batches age the errors out of the window and the
  // server recovers to Serving on its own.
  fault::Injector::instance().disarm();
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(srv.submit(make_input(i), milliseconds(5000)).get().outcome,
              Outcome::kServed);
  EXPECT_EQ(srv.state(), State::kServing);
  srv.drain();
  expect_invariant(srv.stats());
}

TEST(Server, GuardRecoveryCountsAsCleanAttempt) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 0.25);
  fault::Injector::instance().arm(plan, 5);

  auto cfg = float_config();
  cfg.workers = 1;
  cfg.mode = nn::Mode::kQuantApprox;
  cfg.mul = &approx;
  cfg.exact_fallback = &exact;
  cfg.use_guard = true;  // PR 2 layer-level recovery inside the worker
  cfg.max_attempts = 2;
  cfg.model_factory = make_quant_model;

  Server srv(cfg);
  srv.start();
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 20; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(5000)));
  for (auto& f : futs) EXPECT_EQ(f.get().outcome, Outcome::kServed);
  srv.drain();
  fault::Injector::instance().disarm();

  const auto st = srv.stats();
  EXPECT_EQ(st.served, 20u);
  expect_invariant(st);
}

TEST(Server, RetryTimelineCarriesBackoffAndFailoverSpans) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 0.25);
  fault::Injector::instance().arm(plan, 4321);
  obs::TraceBuffer::instance().clear();

  auto cfg = float_config();
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.mode = nn::Mode::kQuantApprox;
  cfg.mul = &approx;
  cfg.exact_fallback = &exact;
  cfg.max_attempts = 3;
  cfg.retry_exact_failover = true;
  cfg.backoff.base = microseconds(50);
  cfg.backoff.cap = microseconds(500);
  cfg.trace_sample_rate = 1.0;
  cfg.model_factory = make_quant_model;

  Server srv(cfg);
  srv.start();
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 40; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(5000)));
  for (auto& f : futs) ASSERT_EQ(f.get().outcome, Outcome::kServed);
  srv.drain();
  fault::Injector::instance().disarm();

  // The numeric-health channel saw the injected faults, and the final
  // attempts that ran on the exact table were counted as failovers.
  const auto nh = srv.numeric_health();
  EXPECT_GT(nh.total().fault_detected, 0u);
  EXPECT_GT(nh.failovers, 0u);

  // At least one request's sampled timeline shows the full
  // retry-with-failover story: exec -> retry_backoff -> exec.failover,
  // all children of that request's root span.
  bool found_failover_timeline = false;
  std::map<u64, std::map<std::string, obs::TraceEvent>> by_trace;
  for (auto& ev : obs::TraceBuffer::instance().snapshot())
    if (ev.trace_id != 0) by_trace[ev.trace_id][ev.name] = ev;
  for (const auto& [tid, spans] : by_trace) {
    if (!spans.count("exec.failover")) continue;
    ASSERT_TRUE(spans.count("retry_backoff")) << "trace " << tid;
    ASSERT_TRUE(spans.count("request.served")) << "trace " << tid;
    const u64 root = spans.at("request.served").span_id;
    EXPECT_EQ(spans.at("exec.failover").parent_span, root);
    EXPECT_EQ(spans.at("retry_backoff").parent_span, root);
    EXPECT_GE(spans.at("exec.failover").start_ns,
              spans.at("retry_backoff").start_ns);
    found_failover_timeline = true;
  }
  EXPECT_TRUE(found_failover_timeline)
      << "a 25% fault rate over 40 requests must drive at least one "
         "request through backoff into exact failover";
  obs::TraceBuffer::instance().clear();
}

#endif  // NGA_FAULT

}  // namespace
}  // namespace nga::serve
