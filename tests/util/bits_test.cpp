#include "util/bits.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nga::util {
namespace {

TEST(Bits, Mask64) {
  EXPECT_EQ(mask64(0), 0u);
  EXPECT_EQ(mask64(1), 1u);
  EXPECT_EQ(mask64(8), 0xffu);
  EXPECT_EQ(mask64(63), 0x7fffffffffffffffull);
  EXPECT_EQ(mask64(64), ~u64{0});
  EXPECT_EQ(mask64(99), ~u64{0});
}

TEST(Bits, Mask128) {
  EXPECT_EQ(mask128(0), u128{0});
  EXPECT_EQ(u64(mask128(64)), ~u64{0});
  EXPECT_EQ(u64(mask128(65) >> 64), 1u);
  EXPECT_EQ(mask128(128), ~u128{0});
}

TEST(Bits, MsbIndex) {
  EXPECT_EQ(msb_index(0), -1);
  EXPECT_EQ(msb_index(1), 0);
  EXPECT_EQ(msb_index(0x8000000000000000ull), 63);
  EXPECT_EQ(msb_index128(u128{1} << 100), 100);
  EXPECT_EQ(msb_index128(0), -1);
}

TEST(Bits, ShrSticky) {
  bool st = false;
  EXPECT_EQ(shr_sticky(0b1011, 2, st), 0b10u);
  EXPECT_TRUE(st);
  st = false;
  EXPECT_EQ(shr_sticky(0b1000, 3, st), 1u);
  EXPECT_FALSE(st);
  st = false;
  EXPECT_EQ(shr_sticky(42, 64, st), 0u);
  EXPECT_TRUE(st);
  st = false;
  EXPECT_EQ(shr_sticky(0, 70, st), 0u);
  EXPECT_FALSE(st);
}

TEST(Bits, RoundNearestEvenBasics) {
  // 0b101.1 -> ties to even -> 0b110
  EXPECT_EQ(round_nearest_even(0b1011, 1, false), 0b110u);
  // 0b100.1 -> tie -> stays at even 0b100
  EXPECT_EQ(round_nearest_even(0b1001, 1, false), 0b100u);
  // 0b100.1 with sticky -> above tie -> rounds up
  EXPECT_EQ(round_nearest_even(0b1001, 1, true), 0b101u);
  // 0b100.0 with sticky -> below half -> rounds down
  EXPECT_EQ(round_nearest_even(0b1000, 1, true), 0b100u);
  // drop == 0: sticky alone never rounds
  EXPECT_EQ(round_nearest_even(7, 0, true), 7u);
}

TEST(Bits, RoundNearestEvenFullDrop) {
  // Dropping all 64 bits: only values > 2^63 (or == with odd... kept=0)
  // can round up to 1.
  EXPECT_EQ(round_nearest_even(u64{1} << 63, 64, false), 0u);  // exact tie
  EXPECT_EQ(round_nearest_even((u64{1} << 63) | 1, 64, false), 1u);
  EXPECT_EQ(round_nearest_even(u64{1} << 63, 64, true), 1u);
  EXPECT_EQ(round_nearest_even((u64{1} << 63) - 1, 64, false), 0u);
}

TEST(Bits, RoundNearestEvenMatchesReference) {
  // Property: for random v and drop, RNE equals computing in double
  // when the value fits exactly.
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const u64 v = rng() >> (rng.below(32) + 16);  // keep it small enough
    const unsigned drop = unsigned(rng.below(12)) + 1;
    const double exact = double(v) / double(u64{1} << drop);
    const double expect = std::nearbyint(exact);  // RNE by default
    // Skip cases where double can't hold v exactly (v < 2^48 ensured).
    ASSERT_EQ(round_nearest_even(v, drop, false), u64(expect))
        << "v=" << v << " drop=" << drop;
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0b0111, 4), 7);
  EXPECT_EQ(sign_extend(0b1000, 4), -8);
  EXPECT_EQ(sign_extend(0b1111, 4), -1);
  EXPECT_EQ(sign_extend(0xff, 16), 255);
}

TEST(Bits, TwosComplement) {
  EXPECT_EQ(twos_complement(1, 8), 0xffu);
  EXPECT_EQ(twos_complement(0, 8), 0u);
  EXPECT_EQ(twos_complement(0x80, 8), 0x80u);  // most-negative fixed point
  EXPECT_EQ(twos_complement(5, 4), 11u);
}

TEST(Bits, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng() & mask64(17);
    EXPECT_EQ(bit_reverse(bit_reverse(v, 17), 17), v);
  }
}

}  // namespace
}  // namespace nga::util
