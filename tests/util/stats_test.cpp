// Histogram non-finite routing (regression: casting NaN to an integer
// bin index is UB) and RunningStats parallel merge.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace nga::util {
namespace {

TEST(Histogram, NonFiniteSamplesNeverReachTheBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  h.add(std::nan(""));
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::nan("2"));

  EXPECT_EQ(h.nonfinite(), 4u);
  // total() keeps meaning "binned samples" so bin/total normalisation
  // is unaffected by junk input.
  EXPECT_EQ(h.total(), 1u);
  std::size_t binned = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) binned += h.count(b);
  EXPECT_EQ(binned, 1u);

  h.add(7.0);  // still works after non-finite input
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, NonFiniteOnDegenerateRangeIsAlsoSafe) {
  Histogram h(5.0, 5.0, 4);  // lo == hi: every finite sample -> bin 0
  h.add(std::nan(""));
  EXPECT_EQ(h.nonfinite(), 1u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(0), 0u);
}

TEST(RunningStats, MergeOfEmptiesAndIntoEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);

  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty += non-empty adopts the shard wholesale
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);

  RunningStats c;
  a.merge(c);  // non-empty += empty is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(RunningStats, MergeEqualsSingleStreamOnRandomSplits) {
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 200 + std::size_t(rng.below(800));
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.normal() * rng.uniform(0.5, 50.0);

    RunningStats whole;
    for (double x : xs) whole.add(x);

    // Split into 1..6 contiguous shards at random cut points, fill one
    // accumulator per shard, then fold them together.
    const std::size_t shards = 1 + std::size_t(rng.below(6));
    std::vector<std::size_t> cuts{0, n};
    for (std::size_t s = 1; s < shards; ++s) cuts.push_back(rng.below(n));
    std::sort(cuts.begin(), cuts.end());

    RunningStats merged;
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      RunningStats shard;
      for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) shard.add(xs[i]);
      merged.merge(shard);
    }

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(),
                1e-9 * (1.0 + std::abs(whole.mean())));
    EXPECT_NEAR(merged.variance(), whole.variance(),
                1e-9 * (1.0 + whole.variance()));
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  }
}

}  // namespace
}  // namespace nga::util
