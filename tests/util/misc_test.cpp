#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nga::util {
namespace {

TEST(Rng, DeterministicBySeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2() != c();
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const u64 v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[std::size_t(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformAndNormalMoments) {
  Xoshiro256 rng(8);
  RunningStats u, n;
  for (int i = 0; i < 200000; ++i) {
    u.add(rng.uniform());
    n.add(rng.normal());
  }
  EXPECT_NEAR(u.mean(), 0.5, 0.01);
  EXPECT_NEAR(u.variance(), 1.0 / 12.0, 0.005);
  EXPECT_NEAR(n.mean(), 0.0, 0.01);
  EXPECT_NEAR(n.stddev(), 1.0, 0.01);
  EXPECT_GE(u.min(), 0.0);
  EXPECT_LT(u.max(), 1.0);
}

TEST(Stats, RunningStatsExactOnSmallSet) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(Stats, Histogram) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(double(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < h.bins(); ++b) EXPECT_EQ(h.count(b), 10u);
  h.add(-5.0);   // clamps to first bin
  h.add(50.0);   // clamps to last bin
  EXPECT_EQ(h.count(0), 11u);
  EXPECT_EQ(h.count(9), 11u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
}

TEST(Stats, HistogramDegenerateRangeDoesNotDivideByZero) {
  // Regression: lo == hi used to divide by zero in add(); now every
  // sample lands in bin 0.
  Histogram h(5.0, 5.0, 4);
  h.add(5.0);
  h.add(7.0);
  h.add(-3.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 3u);
  for (std::size_t b = 1; b < h.bins(); ++b) EXPECT_EQ(h.count(b), 0u);

  // An inverted range behaves like a degenerate one (no UB, all bin 0).
  Histogram inv(10.0, 0.0, 4);
  inv.add(5.0);
  EXPECT_EQ(inv.count(0), 1u);

  // bins == 0 clamps to a single bin instead of clamping into nothing.
  Histogram none(0.0, 1.0, 0);
  none.add(0.5);
  EXPECT_EQ(none.bins(), 1u);
  EXPECT_EQ(none.total(), 1u);
  EXPECT_EQ(none.count(0), 1u);
}

TEST(Table, AlignmentAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", cell(1.5, 1)});
  t.add_row({"b", cell(42)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| alpha | 1.5   |"), std::string::npos) << s;
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.5\nb,42\n");
}

TEST(Table, PctCell) {
  EXPECT_EQ(pct_cell(0.1549), "15.49");
  EXPECT_EQ(pct_cell(1.0, 0), "100");
}

}  // namespace
}  // namespace nga::util
