#include "util/wideint.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nga::util {
namespace {

using W2 = WideInt<2>;  // 128 bits: directly comparable against __int128
using W4 = WideInt<4>;

i128 to_i128(const W2& w) {
  return i128((u128(w.word(1)) << 64) | w.word(0));
}

W2 from_i128(i128 v) { return W2::from_i128(v); }

TEST(WideInt, RoundTrip128) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 20000; ++i) {
    const i128 v = i128((u128(rng()) << 64) | rng());
    EXPECT_EQ(to_i128(from_i128(v)), v);
  }
}

TEST(WideInt, AddSubNegMatch128) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 20000; ++i) {
    const i128 a = i128((u128(rng()) << 64) | rng());
    const i128 b = i128((u128(rng()) << 64) | rng());
    EXPECT_EQ(to_i128(from_i128(a) + from_i128(b)), i128(u128(a) + u128(b)));
    EXPECT_EQ(to_i128(from_i128(a) - from_i128(b)), i128(u128(a) - u128(b)));
    EXPECT_EQ(to_i128(-from_i128(a)), i128(0 - u128(a)));
  }
}

TEST(WideInt, ShiftsMatch128) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 20000; ++i) {
    const i128 a = i128((u128(rng()) << 64) | rng());
    const unsigned s = unsigned(rng.below(130));
    const i128 shl = s >= 128 ? 0 : i128(u128(a) << s);
    EXPECT_EQ(to_i128(from_i128(a) << s), shl) << "s=" << s;
    const i128 asr = s >= 128 ? (a < 0 ? -1 : 0) : (a >> s);
    EXPECT_EQ(to_i128(from_i128(a).asr(s)), asr) << "s=" << s;
  }
}

TEST(WideInt, CompareMatches128) {
  Xoshiro256 rng(14);
  for (int i = 0; i < 20000; ++i) {
    const i128 a = i128((u128(rng()) << 64) | rng());
    const i128 b = i128((u128(rng()) << 64) | rng());
    EXPECT_EQ(from_i128(a) < from_i128(b), a < b);
    EXPECT_EQ(from_i128(a) == from_i128(b), a == b);
    EXPECT_EQ(from_i128(a) > from_i128(b), a > b);
  }
}

TEST(WideInt, BitProbes) {
  W4 w;
  w.set_bit(0, true);
  w.set_bit(100, true);
  w.set_bit(255, true);
  EXPECT_EQ(w.bit(0), 1u);
  EXPECT_EQ(w.bit(1), 0u);
  EXPECT_EQ(w.bit(100), 1u);
  EXPECT_EQ(w.bit(255), 1u);
  EXPECT_TRUE(w.is_negative());
  EXPECT_EQ(w.msb(), 255);
  EXPECT_TRUE(w.any_below(1));
  w.set_bit(0, false);
  EXPECT_FALSE(w.any_below(100));
  EXPECT_TRUE(w.any_below(101));
}

TEST(WideInt, MsbMagnitude) {
  EXPECT_EQ(W4(i64{0}).msb_magnitude(), -1);
  EXPECT_EQ(W4(i64{-1}).msb_magnitude(), -1);
  EXPECT_EQ(W4(i64{1}).msb_magnitude(), 0);
  EXPECT_EQ(W4(i64{-2}).msb_magnitude(), 0);  // ...11110: bit 0 differs
  EXPECT_EQ(W4(i64{5}).msb_magnitude(), 2);
}

TEST(WideInt, Extract64) {
  W4 w;
  w.set_word(1, 0xdeadbeefcafebabeull);
  EXPECT_EQ(w.extract64(64), 0xdeadbeefcafebabeull);
  EXPECT_EQ(w.extract64(68), 0x0deadbeefcafebabull);
  // Beyond the top the value sign-extends (positive here -> zeros).
  EXPECT_EQ(w.extract64(250), 0u);
}

TEST(WideInt, SignExtension64Construction) {
  EXPECT_EQ(W4(i64{-5}).word(3), ~u64{0});
  EXPECT_TRUE(W4(i64{-5}).is_negative());
  EXPECT_EQ((-W4(i64{-5})).word(0), 5u);
}

TEST(WideInt, HexString) {
  W2 w;
  w.set_word(0, 0xabcull);
  EXPECT_EQ(w.to_hex(), "00000000000000000000000000000abc");
}

}  // namespace
}  // namespace nga::util
