#include "opgen/sincos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace nga::og {
namespace {

TEST(SinCos, GeneratedInstanceIsFaithful) {
  for (unsigned w : {8u, 10u, 12u, 14u}) {
    const auto op = SinCosOperator::generate(w);
    EXPECT_LT(op.max_error_ulp(), 1.0) << "w=" << w;
    EXPECT_EQ(op.w(), w);
  }
}

TEST(SinCos, PythagoreanIdentityHolds) {
  const auto op = SinCosOperator::generate(12);
  const double ulp = std::ldexp(1.0, -12);
  for (util::u64 x = 0; x < (util::u64{1} << 12); x += 7) {
    const auto r = op.evaluate(x);
    const double s = double(r.sin_mant) * ulp;
    const double c = double(r.cos_mant) * ulp;
    EXPECT_NEAR(s * s + c * c, 1.0, 8 * ulp) << x;
  }
}

TEST(SinCos, MonotonicOverTheOctant) {
  const auto op = SinCosOperator::generate(10);
  auto prev = op.evaluate(0);
  EXPECT_EQ(prev.sin_mant, 0);
  for (util::u64 x = 1; x < 1024; ++x) {
    const auto r = op.evaluate(x);
    EXPECT_GE(r.sin_mant, prev.sin_mant) << x;  // sin rises on [0, pi/4)
    EXPECT_LE(r.cos_mant, prev.cos_mant) << x;  // cos falls
    prev = r;
  }
}

TEST(SinCos, TableVsMultiplierTradeoff) {
  // The Fig. 1 knob: growing the sub-word A grows the tables and
  // shrinks the residual-polynomial burden. Verify the trade-off is
  // real: larger a => more table bits, and the generator's pick is
  // cheaper than the largest-table faithful instance.
  const unsigned w = 12;
  const SinCosOperator big_table(w, 10, 3);
  const SinCosOperator small_table(w, 5, 3);
  EXPECT_GT(big_table.cost().table_bits, small_table.cost().table_bits);
  const auto gen = SinCosOperator::generate(w);
  EXPECT_LE(gen.cost().lut6, SinCosOperator(w, 10, 4).cost().lut6);
}

TEST(SinCos, GuardBitsControlAccuracy) {
  // More guard bits must not hurt; a very small table with few guard
  // bits should fail faithfulness (this is what the explorer rejects).
  const unsigned w = 12;
  double worst_small = SinCosOperator(w, 3, 2).max_error_ulp();
  double worst_big = SinCosOperator(w, 8, 5).max_error_ulp();
  EXPECT_LT(worst_big, worst_small);
  EXPECT_LT(worst_big, 1.0);
}

}  // namespace
}  // namespace nga::og
