#include "opgen/constmult.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nga::og {
namespace {

using util::i64;
using util::u64;

i64 csd_value_of(const std::vector<CsdDigit>& d) {
  i64 v = 0;
  for (const auto& x : d) v += x.negative ? -(i64{1} << x.shift) : (i64{1} << x.shift);
  return v;
}

TEST(Csd, RecodingIsExactAndCanonical) {
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 50000; ++i) {
    const u64 c = (rng() & util::mask64(40)) + 1;
    const auto d = csd_recode(c);
    ASSERT_EQ(u64(csd_value_of(d)), c) << c;
    // Canonical: no two adjacent nonzero digits.
    for (std::size_t j = 1; j < d.size(); ++j)
      ASSERT_GE(d[j - 1].shift - d[j].shift, 2) << c;
  }
}

TEST(Csd, KnownRecodings) {
  // 15 = 16 - 1: two digits, one adder.
  EXPECT_EQ(csd_recode(15).size(), 2u);
  EXPECT_EQ(csd_adder_count(15), 1);
  // 255 = 256 - 1.
  EXPECT_EQ(csd_adder_count(255), 1);
  // Powers of two are free.
  EXPECT_EQ(csd_adder_count(64), 0);
  // 45 = 32+16-4+1 -> wait: CSD(45) = 64-16-4+1: 4 digits, 3 adders.
  EXPECT_LE(csd_recode(45).size(), 4u);
}

TEST(Csd, BeatsOrMatchesBinaryDigitCount) {
  for (u64 c = 1; c < 4096; ++c) {
    const auto nz = csd_recode(c).size();
    ASSERT_LE(nz, std::size_t(std::popcount(c)) + 1) << c;
  }
}

TEST(ConstMult, EvaluatesExactly) {
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    const u64 c = (rng() & util::mask64(20)) + 1;
    const ConstMult m(c, 16);
    for (int j = 0; j < 50; ++j) {
      const u64 x = rng() & util::mask64(16);
      ASSERT_EQ(m.evaluate(x), x * c) << c << " " << x;
    }
    EXPECT_EQ(m.adders(), csd_adder_count(c));
    EXPECT_GE(m.lut_cost(), 0);
  }
}

TEST(ConstMult, SpecializationBeatsGenericMultiplier) {
  // A 16-bit generic soft multiplier costs roughly w*w/2 = 128 LUTs;
  // typical constants cost far fewer (the Section II specialization
  // argument). Check a representative sample.
  int cheaper = 0, total = 0;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    const u64 c = (rng() & util::mask64(16)) + 1;
    const ConstMult m(c, 16);
    ++total;
    if (m.lut_cost() < 128) ++cheaper;
  }
  EXPECT_GT(cheaper, total * 3 / 4);
}

TEST(MultiConstMult, SharedEvaluationExact) {
  util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<u64> cs;
    for (int i = 0; i < 6; ++i) cs.push_back((rng() & util::mask64(14)) + 1);
    const MultiConstMult mcm(cs, 12);
    for (int j = 0; j < 30; ++j) {
      const u64 x = rng() & util::mask64(12);
      const auto out = mcm.evaluate(x);
      ASSERT_EQ(out.size(), cs.size());
      for (std::size_t k = 0; k < cs.size(); ++k)
        ASSERT_EQ(out[k], x * cs[k]) << cs[k];
    }
  }
}

TEST(MultiConstMult, SharingSavesAdders) {
  // The multiple-constant-multiplication problem (Section II's operator
  // sharing): shared fundamentals must not exceed, and usually beat,
  // independent CSD chains. Classic FIR-like constant sets share a lot.
  const MultiConstMult mcm({105, 210, 420, 815, 105 * 3, 51}, 16);
  EXPECT_LE(mcm.shared_adders(), mcm.unshared_adders());
  // Identical odd parts must be built exactly once: 105, 210, 420 share.
  const MultiConstMult dup({7, 14, 28, 56}, 16);
  EXPECT_EQ(dup.shared_adders(), 1);  // one adder builds 7 = 8-1
  EXPECT_EQ(dup.unshared_adders(), 4);
}

TEST(MultiConstMult, HandlesZeroAndPowersOfTwo) {
  const MultiConstMult mcm({0, 1, 2, 64}, 8);
  EXPECT_EQ(mcm.shared_adders(), 0);
  const auto out = mcm.evaluate(5);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 5u);
  EXPECT_EQ(out[2], 10u);
  EXPECT_EQ(out[3], 320u);
}

}  // namespace
}  // namespace nga::og
