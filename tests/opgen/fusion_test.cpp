// Operator fusion: the paper's x/sqrt(x^2+y^2) example.
#include "opgen/fusion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nga::og {
namespace {

TEST(FusedNorm, OutputsStayInUnitRange) {
  const FusedNorm op(10, 4);
  util::Xoshiro256 rng(1);
  const util::i64 lim = 1 << 10;
  for (int i = 0; i < 50000; ++i) {
    const util::i64 x = util::i64(rng.below(2 * u64(lim) - 1)) - lim + 1;
    const util::i64 y = util::i64(rng.below(2 * u64(lim) - 1)) - lim + 1;
    const util::i64 q = op.evaluate(x, y);
    ASSERT_LE(q, lim);
    ASSERT_GE(q, -lim);
    // Sign follows x.
    if (x > 0) ASSERT_GE(q, 0);
    if (x < 0) ASSERT_LE(q, 0);
  }
}

TEST(FusedNorm, ExactOnAxes) {
  const FusedNorm op(12, 4);
  const util::i64 one = 1 << 12;
  // y = 0: f = sign(x) exactly.
  EXPECT_EQ(op.evaluate(100, 0), one);
  EXPECT_EQ(op.evaluate(-3, 0), -one);
  // x = 0: f = 0.
  EXPECT_EQ(op.evaluate(0, 555), 0);
  EXPECT_EQ(op.evaluate(0, 0), 0);
  // x == y: f = 1/sqrt(2).
  const double got = double(op.evaluate(1000, 1000)) / double(one);
  EXPECT_NEAR(got, 1.0 / std::sqrt(2.0), std::ldexp(1.0, -12));
}

TEST(FusedNorm, FusedIsFaithfulWithGuardBits) {
  for (unsigned w : {6u, 8u, 10u}) {
    const FusedNorm op(w, 4);
    EXPECT_LT(op.max_error_ulp(true), 1.0) << w;
  }
}

TEST(FusedNorm, FusionBeatsComposedOperators) {
  // The Section II claim: one rounding beats four. The composed chain
  // loses accuracy it can never recover.
  for (unsigned w : {6u, 8u, 10u}) {
    const FusedNorm op(w, 4);
    const double fused = op.max_error_ulp(true);
    const double composed = op.max_error_ulp(false);
    EXPECT_LT(fused, composed) << w;
    EXPECT_GT(composed, 1.0) << w << ": composed cannot stay faithful";
  }
}

TEST(FusedNorm, MoreGuardBitsNeverWorse) {
  const FusedNorm g2(8, 2), g6(8, 6);
  EXPECT_LE(g6.max_error_ulp(true), g2.max_error_ulp(true) + 1e-12);
}

}  // namespace
}  // namespace nga::og
