#include "opgen/funcapprox.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace nga::og {
namespace {

const std::function<double(double)> kSin = [](double x) {
  return std::sin(x * std::numbers::pi / 4);
};
const std::function<double(double)> kLog2p1 = [](double x) {
  return std::log2(1.0 + x);
};
const std::function<double(double)> kRecip = [](double x) {
  return 1.0 / (1.0 + x);  // in (0.5, 1]
};

TEST(PlainTable, CorrectlyRoundedByConstruction) {
  const fx::FixFormat out{-1, -12, false};
  const PlainTable t(kLog2p1, 10, out);
  EXPECT_LE(t.max_error_ulp(kLog2p1), 0.5 + 1e-9);
  EXPECT_EQ(t.cost().table_bits, u64(1024) * 12);
}

TEST(PlainTable, LookupMatchesQuantizedFunction) {
  const fx::FixFormat out{-1, -10, false};
  const PlainTable t(kSin, 8, out);
  for (u64 i = 0; i < 256; ++i) {
    const double x = double(i) / 256.0;
    EXPECT_NEAR(double(t.lookup(i)) * out.ulp(), kSin(x), out.ulp());
  }
}

TEST(Bipartite, FaithfulAndSmallerThanPlain) {
  const unsigned win = 12;
  const fx::FixFormat out{-1, -12, false};
  const auto bt = BipartiteTable::explore(kLog2p1, win, out);
  EXPECT_LT(bt.max_error_ulp(kLog2p1), 1.0);
  const auto plain_bits = PlainTable(kLog2p1, win, out).cost().table_bits;
  EXPECT_LT(bt.cost().table_bits, plain_bits / 2)
      << "bipartite must beat plain tabulation on smooth functions";
}

TEST(Bipartite, WorksAcrossFunctions) {
  const unsigned win = 10;
  const fx::FixFormat out{-1, -10, false};
  for (const auto& f : {kSin, kLog2p1, kRecip}) {
    const auto bt = BipartiteTable::explore(f, win, out);
    EXPECT_LT(bt.max_error_ulp(f), 1.0);
    EXPECT_EQ(bt.a() + bt.b() + bt.c(), win);
  }
}

TEST(Bipartite, ErrorGrowsWhenSplitTooAggressive) {
  // A tiny TIV cannot stay faithful: the generator must be able to
  // detect that through its error analysis.
  const fx::FixFormat out{-1, -12, false};
  const BipartiteTable bad(kLog2p1, 12, out, 1, 1, 10);
  EXPECT_GT(bad.max_error_ulp(kLog2p1), 1.0);
}

TEST(PiecewisePoly, FaithfulWithModestSegments) {
  const unsigned win = 12;
  const fx::FixFormat out{-1, -12, false};
  const PiecewisePoly pp(kSin, win, out, 4, 18);
  EXPECT_LT(pp.max_error_ulp(kSin), 1.5);
  EXPECT_EQ(pp.segments(), 16u);
  // Far fewer table bits than plain tabulation.
  EXPECT_LT(pp.cost().table_bits,
            PlainTable(kSin, win, out).cost().table_bits / 8);
}

TEST(PiecewisePoly, MoreSegmentsMoreAccuracy) {
  const unsigned win = 12;
  const fx::FixFormat out{-1, -12, false};
  const PiecewisePoly coarse(kLog2p1, win, out, 2, 18);
  const PiecewisePoly fine(kLog2p1, win, out, 6, 18);
  EXPECT_LT(fine.max_error_ulp(kLog2p1), coarse.max_error_ulp(kLog2p1));
}

TEST(RomCost, Lut6Model) {
  EXPECT_EQ(rom_lut6_cost(6, 8), 8);
  EXPECT_EQ(rom_lut6_cost(8, 8), 32);
  EXPECT_EQ(rom_lut6_cost(4, 8), 8);
}

}  // namespace
}  // namespace nga::og
