#include "softfloat/predicates.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nga::sf {
namespace {

TEST(Predicates, ExactlyTwentyTwoAndDistinct) {
  const auto preds = ieee_predicates();
  EXPECT_EQ(preds.size(), 22u);  // the paper's count
  std::set<std::string> names;
  std::set<std::tuple<bool, bool, bool, bool, bool>> tables;
  for (const auto& p : preds) {
    names.insert(p.name);
    tables.insert({p.signaling, p.on_less, p.on_equal, p.on_greater,
                   p.on_unordered});
  }
  EXPECT_EQ(names.size(), 22u);
  EXPECT_EQ(tables.size(), 22u);  // no duplicated semantics
}

TEST(Predicates, QuietEqualSemantics) {
  const auto preds = ieee_predicates();
  const auto& eq = preds[0];
  ASSERT_EQ(eq.name, "compareQuietEqual");
  bool invalid = false;
  EXPECT_TRUE(eq.evaluate(Relation::kEqual, &invalid));
  EXPECT_FALSE(eq.evaluate(Relation::kUnordered, &invalid));
  EXPECT_FALSE(invalid);  // quiet: no signal on NaN
}

TEST(Predicates, SignalingRaisesInvalidOnUnordered) {
  for (const auto& p : ieee_predicates()) {
    bool invalid = false;
    p.evaluate(Relation::kUnordered, &invalid);
    EXPECT_EQ(invalid, p.signaling) << p.name;
  }
}

TEST(Predicates, NotEqualIncludesUnordered) {
  // NaN != x must be TRUE (the quirk the paper highlights).
  for (const auto& p : ieee_predicates()) {
    if (p.name == "compareQuietNotEqual") {
      bool inv = false;
      EXPECT_TRUE(p.evaluate(Relation::kUnordered, &inv));
      EXPECT_FALSE(p.evaluate(Relation::kEqual, &inv));
    }
  }
}

TEST(Predicates, CompareFunctionMatchesOperators) {
  const half one = half::one(), two(2.0), nan = half::nan();
  EXPECT_EQ(compare(one, two), Relation::kLess);
  EXPECT_EQ(compare(two, one), Relation::kGreater);
  EXPECT_EQ(compare(one, one), Relation::kEqual);
  EXPECT_EQ(compare(nan, one), Relation::kUnordered);
  EXPECT_EQ(compare(nan, nan), Relation::kUnordered);
  EXPECT_EQ(compare(half::zero(), half::zero(true)), Relation::kEqual);
}

TEST(Predicates, PositNeedsOnlyThree) {
  EXPECT_EQ(posit_predicates().size(), 3u);
}

}  // namespace
}  // namespace nga::sf
