// Exception-flag edges at the single rounding point (pack) and the
// invalid-operation cases above it: overflow to inf, gradual vs
// flush-to-zero underflow, and every quiet-NaN source raising
// `invalid` exactly when IEEE 754 says so.
#include <gtest/gtest.h>

#include "softfloat/floatmp.hpp"

namespace nga::sf {
namespace {

TEST(PackFlags, OverflowRaisesOverflowAndInexactAndReturnsInf) {
  Flags f;
  const half r = half::mul(half::max_normal(), half::max_normal(), &f);
  EXPECT_TRUE(r.is_inf());
  EXPECT_FALSE(r.sign());
  EXPECT_TRUE(f.overflow);
  EXPECT_TRUE(f.inexact);
  EXPECT_FALSE(f.invalid);

  Flags g;
  const half n =
      half::mul(half::max_normal(true), half::max_normal(), &g);
  EXPECT_TRUE(n.is_inf());
  EXPECT_TRUE(n.sign());
  EXPECT_TRUE(g.overflow);
}

TEST(PackFlags, RoundingCarryAcrossTheOverflowBoundary) {
  // An all-ones significand at the max exponent rounds up, carries out
  // of the fraction, and lands on inf — the carry path must still set
  // overflow, not silently wrap the exponent.
  Flags f;
  const half r =
      half::pack(false, half::kEmax, ~util::u64{0}, /*sticky=*/true, &f);
  EXPECT_TRUE(r.is_inf());
  EXPECT_TRUE(f.overflow);
  EXPECT_TRUE(f.inexact);

  // The same significand truncated to representable bits stays finite.
  Flags g;
  const half m = half::pack(false, half::kEmax,
                            half::max_normal().unpack().sig,
                            /*sticky=*/false, &g);
  EXPECT_EQ(m.bits(), half::max_normal().bits());
  EXPECT_FALSE(g.overflow);
  EXPECT_FALSE(g.inexact);
}

TEST(PackFlags, GradualUnderflowKeepsSubnormalsAndFlagsTininess) {
  Flags f;
  const half r = half::mul(half::min_normal(), half(0.5), &f);
  EXPECT_TRUE(r.is_subnormal());
  EXPECT_GT(r.to_double(), 0.0);
  // Exactly representable subnormal halving: IEEE's underflow-after-
  // rounding with exact result raises nothing here; our model flags
  // tininess via the subnormal path conservatively.
  EXPECT_FALSE(f.overflow);
  EXPECT_FALSE(f.invalid);
}

TEST(PackFlags, FtzPolicyFlushesAndRaisesUnderflow) {
  using H = half_ftz;
  Flags f;
  const H r = H::mul(H::min_normal(), H(0.5), &f);
  EXPECT_TRUE(r.is_finite());
  EXPECT_EQ(r.to_double(), 0.0);
  EXPECT_TRUE(f.underflow);
  EXPECT_TRUE(f.inexact);

  // Subnormal *inputs* are flushed too: they read back as zero.
  Flags g;
  const H sub = H::from_bits(1);
  const H s = H::add(sub, sub, &g);
  EXPECT_EQ(s.to_double(), 0.0);
}

TEST(PackFlags, BelowHalfMinSubnormalRoundsToZero) {
  Flags f;
  const half tiny = half::min_subnormal();
  const half r = half::mul(tiny, half(0.25), &f);
  EXPECT_EQ(r.to_double(), 0.0);
  EXPECT_TRUE(f.underflow);
  EXPECT_TRUE(f.inexact);
}

TEST(PackFlags, InvalidOperationsRaiseInvalidAndReturnQuietNan) {
  struct Case {
    const char* name;
    half result;
    Flags flags;
  };
  auto run = [](const char* name, half a, half b,
                half (*op)(half, half, Flags*)) {
    Flags f;
    return Case{name, op(a, b, &f), f};
  };
  const half inf = half::inf(), ninf = half::inf(true);
  const Case cases[] = {
      run("inf - inf", inf, inf, &half::sub),
      run("(-inf) + inf", ninf, inf, &half::add),
      run("0 * inf", half::zero(), inf, &half::mul),
      run("inf / inf", inf, inf, &half::div),
      run("0 / 0", half::zero(), half::zero(), &half::div),
  };
  for (const Case& c : cases) {
    EXPECT_TRUE(c.result.is_nan()) << c.name;
    EXPECT_TRUE(c.flags.invalid) << c.name;
    EXPECT_FALSE(c.flags.overflow) << c.name;
  }
  Flags f;
  EXPECT_TRUE(half::sqrt(half(-1.0), &f).is_nan());
  EXPECT_TRUE(f.invalid);
}

TEST(PackFlags, NanPropagationDoesNotRaiseInvalid) {
  // A quiet NaN flowing through is NOT a new invalid operation.
  Flags f;
  const half r = half::add(half::nan(), half::one(), &f);
  EXPECT_TRUE(r.is_nan());
  EXPECT_FALSE(f.invalid);
}

TEST(PackFlags, DivByZeroIsItsOwnFlagNotInvalid) {
  Flags f;
  const half r = half::div(half::one(), half::zero(), &f);
  EXPECT_TRUE(r.is_inf());
  EXPECT_TRUE(f.div_by_zero);
  EXPECT_FALSE(f.invalid);
  EXPECT_FALSE(f.overflow);
}

TEST(PackFlags, ExactOperationsRaiseNothing) {
  Flags f;
  const half r = half::add(half(1.5), half(2.25), &f);
  EXPECT_DOUBLE_EQ(r.to_double(), 3.75);
  EXPECT_FALSE(f.invalid || f.div_by_zero || f.overflow || f.underflow ||
               f.inexact);
}

}  // namespace
}  // namespace nga::sf
