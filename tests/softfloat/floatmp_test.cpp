// floatmp<E,M> correctness.
//
// Oracle strategy: on x86-64 GCC provides _Float16 with correctly
// rounded (RNE) double<->binary16 conversions, giving a reference that
// shares zero code with src/softfloat. Every intermediate used here
// (half x half products, aligned sums) is exact in double, so
// "convert the exact double result" is the correctly rounded answer.
// Division and square root avoid reference division via exact
// cross-multiplied rounding-interval checks in __float128.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "softfloat/floatmp.hpp"
#include "util/rng.hpp"

namespace nga::sf {
namespace {

using util::u64;
using quad = __float128;

#ifdef __FLT16_MANT_DIG__
#define NGA_HAVE_FLOAT16 1
/// Independent reference: correctly rounded double -> binary16 via the
/// compiler's _Float16 support.
util::u16 ref_half_bits(double v) {
  const _Float16 h = _Float16(v);
  util::u16 bits;
  static_assert(sizeof(h) == sizeof(bits));
  std::memcpy(&bits, &h, sizeof(bits));
  return bits;
}
#endif

/// half-lattice neighbours by bit stepping on the magnitude.
half next_up_half(half h) {  // toward +inf on the real line
  if (h.is_zero()) return half::min_subnormal();
  if (!h.sign()) return half::from_bits(util::u16(h.bits() + 1));
  return half::from_bits(util::u16(h.bits() - 1));
}
half next_down_half(half h) {
  if (h.is_zero()) return half::min_subnormal().negated();
  if (!h.sign()) return half::from_bits(util::u16(h.bits() - 1));
  return half::from_bits(util::u16(h.bits() + 1));
}

TEST(Floatmp, HalfEncodingGolden) {
  EXPECT_EQ(half::one().bits(), 0x3c00u);
  EXPECT_EQ(half(2.0).bits(), 0x4000u);
  EXPECT_EQ(half(-2.0).bits(), 0xc000u);
  EXPECT_EQ(half(65504.0).bits(), 0x7bffu);  // max normal
  EXPECT_EQ(half::inf().bits(), 0x7c00u);
  EXPECT_EQ(half::inf(true).bits(), 0xfc00u);
  EXPECT_EQ(half(std::ldexp(1.0, -24)).bits(), 0x0001u);  // min subnormal
  EXPECT_EQ(half(std::ldexp(1.0, -14)).bits(), 0x0400u);  // min normal
  EXPECT_EQ(half(0.333251953125).bits(), 0x3555u);
}

#ifdef NGA_HAVE_FLOAT16
TEST(Floatmp, FromDoubleMatchesHardwareExhaustiveMidpoints) {
  // Sweep all half values plus perturbed neighbourhoods of every
  // rounding boundary; from_double must agree with the hardware
  // conversion everywhere.
  for (u64 bits = 0; bits < (u64{1} << 16); ++bits) {
    const half h = half::from_bits(util::u16(bits));
    if (h.is_nan() || h.is_inf()) continue;
    const double v = h.to_double();
    const double hi = next_up_half(h).is_inf()
                          ? v * 1.001
                          : next_up_half(h).to_double();
    for (const double probe :
         {v, (v + hi) / 2, std::nextafter((v + hi) / 2, v),
          std::nextafter((v + hi) / 2, hi), v + (hi - v) * 0.25,
          v + (hi - v) * 0.75}) {
      const half mine = half::from_double(probe);
      const util::u16 ref = ref_half_bits(probe);
      const half refh = half::from_bits(ref);
      if (mine.is_nan() || refh.is_nan()) {
        EXPECT_EQ(mine.is_nan(), refh.is_nan());
        continue;
      }
      ASSERT_EQ(mine.bits(), ref) << "probe=" << probe;
    }
  }
}

TEST(Floatmp, HalfAddMatchesHardwareSweep) {
  for (u64 x = 0; x < (u64{1} << 16); x += 7) {
    const half a = half::from_bits(util::u16(x));
    for (u64 y = 0; y < (u64{1} << 16); y += 13) {
      const half b = half::from_bits(util::u16(y));
      const half s = a + b;
      if (a.is_nan() || b.is_nan()) {
        EXPECT_TRUE(s.is_nan());
        continue;
      }
      if (a.is_inf() && b.is_inf() && a.sign() != b.sign()) {
        EXPECT_TRUE(s.is_nan());
        continue;
      }
      // Exact in double; single rounding by the hardware conversion.
      const util::u16 ref = ref_half_bits(a.to_double() + b.to_double());
      ASSERT_EQ(s.bits(), ref)
          << a.to_double() << " + " << b.to_double() << " got "
          << s.to_double();
    }
  }
}

TEST(Floatmp, HalfMulMatchesHardwareRandom) {
  util::Xoshiro256 rng(42);
  for (int i = 0; i < 500000; ++i) {
    const half a = half::from_bits(util::u16(rng()));
    const half b = half::from_bits(util::u16(rng()));
    if (a.is_nan() || b.is_nan()) continue;
    if ((a.is_inf() && b.is_zero()) || (a.is_zero() && b.is_inf())) continue;
    const half p = a * b;
    const util::u16 ref = ref_half_bits(a.to_double() * b.to_double());
    ASSERT_EQ(p.bits(), ref) << a.to_double() << " * " << b.to_double();
  }
}

TEST(Floatmp, HalfFmaMatchesHardwareRandom) {
  util::Xoshiro256 rng(45);
  int differs = 0;
  for (int i = 0; i < 300000; ++i) {
    const half a = half::from_bits(util::u16(rng()));
    const half b = half::from_bits(util::u16(rng()));
    const half c = half::from_bits(util::u16(rng()));
    if (!a.is_finite() || !b.is_finite() || !c.is_finite()) continue;
    if (a.is_nan() || b.is_nan() || c.is_nan()) continue;
    const half f = half::fma(a, b, c);
    // a*b (22 bits) and the aligned sum are exact in double.
    const double exact = a.to_double() * b.to_double() + c.to_double();
    if (exact == 0.0 && !(a.is_zero() || b.is_zero())) {
      ASSERT_TRUE(f.is_zero() && !f.sign())
          << a.to_double() << "*" << b.to_double() << "+" << c.to_double();
      continue;
    }
    const util::u16 ref = ref_half_bits(exact);
    ASSERT_EQ(f.bits(), ref)
        << a.to_double() << "*" << b.to_double() << "+" << c.to_double()
        << " got " << f.to_double();
    if (f.bits() != (a * b + c).bits()) ++differs;
  }
  EXPECT_GT(differs, 50);  // fusion must change results sometimes
}
#endif  // NGA_HAVE_FLOAT16

TEST(Floatmp, BfloatTruncationOfFloat) {
  // bfloat16 rounds the upper 16 bits of the binary32 pattern (RNE).
  for (const float f : {3.14159265f, -0.001f, 1e30f, 65504.0f, 1.0f}) {
    const bfloat16_t b{double(f)};
    util::u32 fb;
    std::memcpy(&fb, &f, 4);
    const util::u32 rounded = (fb + 0x7fff + ((fb >> 16) & 1)) >> 16;
    EXPECT_EQ(b.bits(), rounded) << f;
  }
}

TEST(Floatmp, DoubleRoundTripAllHalf) {
  for (u64 bits = 0; bits < (u64{1} << 16); ++bits) {
    const half h = half::from_bits(util::u16(bits));
    if (h.is_nan()) {
      EXPECT_TRUE(std::isnan(h.to_double()));
      EXPECT_TRUE(half::from_double(h.to_double()).is_nan());
      continue;
    }
    EXPECT_EQ(half::from_double(h.to_double()).bits(), h.bits())
        << "bits=" << bits;
  }
}

TEST(Floatmp, DoubleRoundTripAllBfloat) {
  for (u64 bits = 0; bits < (u64{1} << 16); ++bits) {
    const bfloat16_t h = bfloat16_t::from_bits(util::u16(bits));
    if (h.is_nan()) continue;
    EXPECT_EQ(bfloat16_t::from_double(h.to_double()).bits(), h.bits());
  }
}

TEST(Floatmp, HalfDivCorrectlyRoundedRandom) {
  util::Xoshiro256 rng(44);
  for (int i = 0; i < 300000; ++i) {
    const half a = half::from_bits(util::u16(rng()));
    const half b = half::from_bits(util::u16(rng()));
    if (!a.is_finite() || !b.is_finite() || a.is_nan() || b.is_nan() ||
        a.is_zero() || b.is_zero())
      continue;
    const half q = a / b;
    const quad av = quad(a.to_double());
    const quad bv = quad(b.to_double());
    const quad babs = bv < 0 ? -bv : bv;
    auto err_of = [&](double cand) {
      const quad e = av - quad(cand) * bv;  // exact: 11+12-bit product
      return e < 0 ? -e : e;
    };
    if (q.is_inf()) {
      // Overflow threshold: max_normal + 1/2 ulp = 65520.
      EXPECT_GE(err_of(0.0), quad(65520.0) * babs);
      continue;
    }
    const quad eq = err_of(q.to_double());
    const quad elo = err_of(next_down_half(q).to_double());
    const quad ehi = next_up_half(q).is_inf()
                         ? eq + 1
                         : err_of(next_up_half(q).to_double());
    ASSERT_LE(eq, elo) << a.to_double() << "/" << b.to_double();
    ASSERT_LE(eq, ehi) << a.to_double() << "/" << b.to_double();
    if (eq == elo || eq == ehi) {  // tie -> even significand required
      ASSERT_EQ(q.bits() & 1, 0u) << a.to_double() << "/" << b.to_double();
    }
  }
}

TEST(Floatmp, SqrtCorrectlyRoundedExhaustiveHalf) {
  for (u64 bits = 0; bits < (u64{1} << 16); ++bits) {
    const half a = half::from_bits(util::u16(bits));
    const half r = half::sqrt(a);
    if (a.is_nan() || (a.sign() && !a.is_zero())) {
      EXPECT_TRUE(r.is_nan()) << bits;
      continue;
    }
    if (a.is_zero()) {
      EXPECT_TRUE(r.is_zero());
      EXPECT_EQ(r.sign(), a.sign());
      continue;
    }
    if (a.is_inf()) {
      EXPECT_TRUE(r.is_inf());
      continue;
    }
    // sqrt(a) in [mid(prior,r), mid(r,next)] <=> squares bracket a.
    // (No exact ties exist for binary16 square roots.)
    const quad av = quad(a.to_double());
    const quad rv = quad(r.to_double());
    const quad lo = (rv + quad(next_down_half(r).to_double())) / 2;
    const half up = next_up_half(r);
    EXPECT_GE(av, lo * lo) << "bits=" << bits;
    if (!up.is_inf()) {
      const quad hi = (rv + quad(up.to_double())) / 2;
      EXPECT_LE(av, hi * hi) << "bits=" << bits;
    }
  }
}

TEST(Floatmp, SpecialValueSemantics) {
  const half nan = half::nan();
  const half inf = half::inf();
  const half one = half::one();
  EXPECT_TRUE((nan + one).is_nan());
  EXPECT_TRUE((inf - inf).is_nan());
  EXPECT_TRUE((half::zero() * inf).is_nan());
  EXPECT_TRUE((inf / inf).is_nan());
  EXPECT_TRUE((half::zero() / half::zero()).is_nan());
  EXPECT_TRUE((one / half::zero()).is_inf());
  EXPECT_TRUE((one / half::zero(true)).sign());
  EXPECT_EQ((inf + inf).bits(), inf.bits());
  EXPECT_FALSE((half::zero() + half::zero()).sign());
  EXPECT_TRUE((half::zero(true) + half::zero(true)).sign());
  EXPECT_FALSE((half::zero(true) + half::zero()).sign());
  EXPECT_TRUE((one - one).is_zero());
  EXPECT_FALSE((one - one).sign());
  EXPECT_TRUE(half::sqrt(half::from_double(-4.0)).is_nan());
}

TEST(Floatmp, IeeeComparisonQuirks) {
  const half nan = half::nan();
  const half one = half::one();
  EXPECT_FALSE(nan == nan);  // NaN unordered with itself
  EXPECT_TRUE((nan <=> one) == std::partial_ordering::unordered);
  EXPECT_TRUE(half::zero() == half::zero(true));  // -0 == +0
  EXPECT_NE(half::zero().bits(), half::zero(true).bits());
  EXPECT_TRUE(half(1.0) < half(2.0));
  EXPECT_TRUE(half(-2.0) < half(-1.0));
}

TEST(Floatmp, ExceptionFlags) {
  Flags f;
  half::div(half::one(), half::zero(), &f);
  EXPECT_TRUE(f.div_by_zero);
  f = {};
  half::mul(half::max_normal(), half::max_normal(), &f);
  EXPECT_TRUE(f.overflow);
  EXPECT_TRUE(f.inexact);
  f = {};
  half::mul(half::min_subnormal(), half::from_double(0.25), &f);
  EXPECT_TRUE(f.underflow);
  f = {};
  half::mul(half::zero(), half::inf(), &f);
  EXPECT_TRUE(f.invalid);
}

TEST(Floatmp, NormalsOnlyPolicyFlushesToZero) {
  using F = half_ftz;
  const F tiny = F::from_double(std::ldexp(1.0, -14));  // min normal
  EXPECT_TRUE(F::div(tiny, F::from_double(4.0), nullptr).is_zero());
  const F sub = F::from_bits(0x0001);  // subnormal input -> treated as 0
  EXPECT_EQ(F::add(sub, sub, nullptr).bits(), 0u);
  const half sub_ieee = half::from_bits(0x0001);
  EXPECT_EQ((sub_ieee + sub_ieee).bits(), 0x0002u);
}

TEST(Floatmp, GradualUnderflowVsAbruptLoss) {
  // a != b but a - b == 0: impossible with gradual underflow, routine
  // under FTZ.
  const half a = half::from_bits(0x0402);
  const half b = half::from_bits(0x0401);
  EXPECT_FALSE((a - b).is_zero());
  const half_ftz af = half_ftz::from_bits(0x0402);
  const half_ftz bf = half_ftz::from_bits(0x0401);
  EXPECT_TRUE(half_ftz::sub(af, bf, nullptr).is_zero());
}

TEST(Floatmp, FormatConversionRoundTrip) {
  for (u64 bits = 0; bits < (u64{1} << 16); ++bits) {
    const half h = half::from_bits(util::u16(bits));
    if (h.is_nan()) continue;
    const fp32 w = fp32::convert_from(h);  // exact widening
    EXPECT_EQ(w.to_double(), h.to_double());
    EXPECT_EQ(half::convert_from(w).bits(), h.bits());
  }
}

TEST(Floatmp, Fp19HoldsHalfAndBfloatExactly) {
  // The Agilex FP19 {1,8,10} format: bfloat16's range with half's
  // fraction — every half normal and every bfloat16 value embeds
  // exactly (the paper's "used for both training and inference").
  for (u64 bits = 0; bits < (u64{1} << 16); ++bits) {
    const bfloat16_t b = bfloat16_t::from_bits(util::u16(bits));
    if (b.is_nan()) continue;
    EXPECT_EQ(fp19::convert_from(b).to_double(), b.to_double());
    const half h = half::from_bits(util::u16(bits));
    if (h.is_nan() || h.is_subnormal()) continue;
    EXPECT_EQ(fp19::convert_from(h).to_double(), h.to_double());
  }
}

TEST(Floatmp, TrapRegionCensus) {
  // Fig. 6: exponent all-0s or all-1s codes ("trap to software") are
  // 2/32 = 6.25% of the ring for any float format.
  int trap = 0;
  for (u64 bits = 0; bits < (u64{1} << 16); ++bits) {
    const half h = half::from_bits(util::u16(bits));
    if (!h.is_normal()) ++trap;
  }
  EXPECT_NEAR(double(trap) / 65536.0, 0.0625, 1e-9);
}

}  // namespace
}  // namespace nga::sf
