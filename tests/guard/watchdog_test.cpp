// Watchdog: hung-slot detection, heartbeat-progress exemption,
// exactly-once on_hang, and clean stop semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "guard/watchdog.hpp"

namespace nga::guard {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

util::u64 now_ns() {
  return util::u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       steady_clock::now().time_since_epoch())
                       .count());
}

WatchdogConfig fast_cfg() {
  WatchdogConfig cfg;
  cfg.check_interval = milliseconds(5);
  cfg.max_exec = milliseconds(30);  // absolute threshold for test speed
  cfg.min_timeout = milliseconds(1);
  return cfg;
}

// Wait until pred() or the deadline; returns pred()'s final value.
template <class Pred>
bool eventually(Pred pred, milliseconds budget = milliseconds(2000)) {
  const auto until = steady_clock::now() + budget;
  while (steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return pred();
}

TEST(GuardWatchdog, DetectsFrozenBusySlotAndCancelsOnce) {
  std::atomic<int> hangs{0};
  Watchdog wd(fast_cfg(), [&](const std::shared_ptr<WorkerSlot>& s) {
    hangs.fetch_add(1);
    EXPECT_TRUE(s->cancel.cancelled());
    EXPECT_TRUE(s->replaced.load());
  });
  auto slot = wd.make_slot(/*id=*/0, /*generation=*/0);
  wd.start();
  // Simulate a worker wedged mid-batch: busy, heartbeat frozen.
  slot->budget_ns.store(1, std::memory_order_relaxed);
  slot->busy_since_ns.store(now_ns(), std::memory_order_release);
  ASSERT_TRUE(eventually([&] { return hangs.load() >= 1; }));
  EXPECT_TRUE(slot->cancel.cancelled());
  EXPECT_TRUE(slot->replaced.load());
  // A replaced slot is never flagged twice, however long it stays busy.
  std::this_thread::sleep_for(milliseconds(60));
  EXPECT_EQ(hangs.load(), 1);
  EXPECT_GE(wd.stats().hangs_detected, 1u);
  wd.stop();
}

TEST(GuardWatchdog, ProgressingHeartbeatIsNotHung) {
  std::atomic<int> hangs{0};
  Watchdog wd(fast_cfg(), [&](const std::shared_ptr<WorkerSlot>&) {
    hangs.fetch_add(1);
  });
  auto slot = wd.make_slot(0, 0);
  wd.start();
  slot->busy_since_ns.store(now_ns(), std::memory_order_release);
  // Slow but alive: tick the heartbeat well past the 30 ms threshold.
  const auto until = steady_clock::now() + milliseconds(120);
  while (steady_clock::now() < until) {
    slot->heartbeat.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_EQ(hangs.load(), 0);
  EXPECT_FALSE(slot->cancel.cancelled());
  wd.stop();
}

TEST(GuardWatchdog, IdleSlotIsNeverHung) {
  std::atomic<int> hangs{0};
  Watchdog wd(fast_cfg(), [&](const std::shared_ptr<WorkerSlot>&) {
    hangs.fetch_add(1);
  });
  auto slot = wd.make_slot(0, 0);
  (void)slot;  // busy_since stays 0
  wd.start();
  std::this_thread::sleep_for(milliseconds(80));
  EXPECT_EQ(hangs.load(), 0);
  wd.stop();
}

TEST(GuardWatchdog, DerivedThresholdScalesWithBudget) {
  // No absolute max_exec: threshold = deadline_factor x budget.
  WatchdogConfig cfg;
  cfg.check_interval = milliseconds(5);
  cfg.deadline_factor = 2.0;
  cfg.min_timeout = milliseconds(1);
  std::atomic<int> hangs{0};
  Watchdog wd(cfg, [&](const std::shared_ptr<WorkerSlot>&) {
    hangs.fetch_add(1);
  });
  auto generous = wd.make_slot(0, 0);
  auto tight = wd.make_slot(1, 0);
  wd.start();
  // Same frozen busy time; only the tight budget (2 x 10ms = 20ms
  // threshold) should be flagged within the test window, the generous
  // one (2 x 10s) never.
  generous->budget_ns.store(util::u64(10e9), std::memory_order_relaxed);
  tight->budget_ns.store(util::u64(10e6), std::memory_order_relaxed);
  const util::u64 t = now_ns();
  generous->busy_since_ns.store(t, std::memory_order_release);
  tight->busy_since_ns.store(t, std::memory_order_release);
  ASSERT_TRUE(eventually([&] { return hangs.load() >= 1; }));
  EXPECT_EQ(hangs.load(), 1);
  EXPECT_TRUE(tight->replaced.load());
  EXPECT_FALSE(generous->replaced.load());
  wd.stop();
}

TEST(GuardWatchdog, StopJoinsAndSilencesCallbacks) {
  std::atomic<int> hangs{0};
  Watchdog wd(fast_cfg(), [&](const std::shared_ptr<WorkerSlot>&) {
    hangs.fetch_add(1);
  });
  auto slot = wd.make_slot(0, 0);
  wd.start();
  wd.stop();
  wd.stop();  // idempotent
  // Going busy AFTER stop: nobody is watching, nothing fires.
  slot->busy_since_ns.store(now_ns(), std::memory_order_release);
  std::this_thread::sleep_for(milliseconds(80));
  EXPECT_EQ(hangs.load(), 0);
}

}  // namespace
}  // namespace nga::guard
