// CircuitBreaker state machine: Closed -> Open -> HalfOpen ->
// Closed / Retired, with rolling-window semantics and cooldown gating.
#include <gtest/gtest.h>

#include "guard/breaker.hpp"

namespace nga::guard {
namespace {

using Clock = CircuitBreaker::Clock;
using std::chrono::milliseconds;

BreakerConfig small_cfg() {
  BreakerConfig cfg;
  cfg.window = 8;
  cfg.min_samples = 4;
  cfg.trip_failure_rate = 0.5;
  cfg.cooldown = milliseconds(10);
  cfg.max_probe_failures = 2;
  return cfg;
}

TEST(GuardBreaker, StartsClosedWithCleanWindow) {
  CircuitBreaker b(small_cfg());
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(b.failure_rate(), 0.0);
  EXPECT_EQ(b.stats().trips, 0u);
}

TEST(GuardBreaker, NoTripBeforeMinSamples) {
  CircuitBreaker b(small_cfg());
  const auto t = Clock::now();
  // Three straight failures: 100% failure rate but below min_samples.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(b.record(false, t));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  // The fourth reaches min_samples and rate >= 0.5: trips.
  EXPECT_TRUE(b.record(false, t));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.stats().trips, 1u);
}

TEST(GuardBreaker, HealthyWindowNeverTrips) {
  CircuitBreaker b(small_cfg());
  const auto t = Clock::now();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(b.record(true, t));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(b.failure_rate(), 0.0);
}

TEST(GuardBreaker, WindowEvictsOldVerdicts) {
  CircuitBreaker b(small_cfg());
  const auto t = Clock::now();
  // Failures paced to stay under the 0.5 trip rate at every prefix:
  // f t t t f t t t -> 2/8 once the window fills.
  for (int i = 0; i < 8; ++i) b.record(i % 4 != 0, t);
  EXPECT_DOUBLE_EQ(b.failure_rate(), 0.25);
  ASSERT_EQ(b.state(), BreakerState::kClosed);
  // Eight more successes wash both failures out of the 8-slot window.
  for (int i = 0; i < 8; ++i) b.record(true, t);
  EXPECT_DOUBLE_EQ(b.failure_rate(), 0.0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(GuardBreaker, RecordIgnoredWhileOpen) {
  CircuitBreaker b(small_cfg());
  const auto t = Clock::now();
  for (int i = 0; i < 4; ++i) b.record(false, t);
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  // Quarantined-era verdicts (exact table) must not feed the window.
  EXPECT_FALSE(b.record(true, t));
  EXPECT_FALSE(b.record(false, t));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.stats().trips, 1u);
}

TEST(GuardBreaker, ProbeGatedByCooldown) {
  CircuitBreaker b(small_cfg());
  const auto t = Clock::now();
  for (int i = 0; i < 4; ++i) b.record(false, t);
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.probe_due(t));
  EXPECT_FALSE(b.probe_due(t + milliseconds(9)));
  EXPECT_TRUE(b.probe_due(t + milliseconds(10)));
  // begin_probe is a no-op outside Open.
  CircuitBreaker closed(small_cfg());
  EXPECT_FALSE(closed.begin_probe(t));
}

TEST(GuardBreaker, RevalidationPassReinstates) {
  CircuitBreaker b(small_cfg());
  auto t = Clock::now();
  for (int i = 0; i < 4; ++i) b.record(false, t);
  t += milliseconds(11);
  ASSERT_TRUE(b.begin_probe(t));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(b.end_probe(true, t), CircuitBreaker::ProbeResult::kReinstated);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  // The reinstated replica starts with a CLEAN window: the pre-trip
  // failures must not immediately re-trip it.
  EXPECT_DOUBLE_EQ(b.failure_rate(), 0.0);
  EXPECT_FALSE(b.record(false, t));  // 1 of min 4: no trip
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  const auto st = b.stats();
  EXPECT_EQ(st.trips, 1u);
  EXPECT_EQ(st.probes, 1u);
  EXPECT_EQ(st.probe_failures, 0u);
  EXPECT_EQ(st.reinstated, 1u);
  EXPECT_FALSE(st.retired);
}

TEST(GuardBreaker, ConsecutiveProbeFailuresRetire) {
  CircuitBreaker b(small_cfg());  // max_probe_failures = 2
  auto t = Clock::now();
  for (int i = 0; i < 4; ++i) b.record(false, t);
  // First failed probe: back to Open, cooldown restarts.
  t += milliseconds(11);
  ASSERT_TRUE(b.begin_probe(t));
  EXPECT_EQ(b.end_probe(false, t), CircuitBreaker::ProbeResult::kReopened);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.probe_due(t + milliseconds(5)));  // cooldown restarted
  // Second consecutive failure: permanently retired.
  t += milliseconds(11);
  ASSERT_TRUE(b.begin_probe(t));
  EXPECT_EQ(b.end_probe(false, t), CircuitBreaker::ProbeResult::kRetired);
  EXPECT_EQ(b.state(), BreakerState::kRetired);
  // Terminal: no more probes, no more trips, records ignored.
  EXPECT_FALSE(b.probe_due(t + milliseconds(100)));
  EXPECT_FALSE(b.begin_probe(t + milliseconds(100)));
  EXPECT_FALSE(b.record(true, t));
  const auto st = b.stats();
  EXPECT_TRUE(st.retired);
  EXPECT_EQ(st.probes, 2u);
  EXPECT_EQ(st.probe_failures, 2u);
}

TEST(GuardBreaker, PassingProbeResetsTheRetireCountdown) {
  CircuitBreaker b(small_cfg());  // retire after 2 CONSECUTIVE failures
  auto t = Clock::now();
  auto reopen_and_probe = [&](bool pass) {
    for (int i = 0; i < 4; ++i) b.record(false, t);
    t += milliseconds(11);
    EXPECT_TRUE(b.begin_probe(t));
    return b.end_probe(pass, t);
  };
  EXPECT_EQ(reopen_and_probe(false), CircuitBreaker::ProbeResult::kReopened);
  t += milliseconds(11);
  ASSERT_TRUE(b.begin_probe(t));
  EXPECT_EQ(b.end_probe(true, t), CircuitBreaker::ProbeResult::kReinstated);
  // One more failed probe after the pass: count restarted at 1, so
  // still Reopened, not Retired.
  EXPECT_EQ(reopen_and_probe(false), CircuitBreaker::ProbeResult::kReopened);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
}

TEST(GuardBreaker, EndProbeOutsideHalfOpenIsIgnored) {
  CircuitBreaker b(small_cfg());
  EXPECT_EQ(b.end_probe(true), CircuitBreaker::ProbeResult::kIgnored);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(GuardBreaker, StateNames) {
  EXPECT_EQ(breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_EQ(breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_EQ(breaker_state_name(BreakerState::kHalfOpen), "half_open");
  EXPECT_EQ(breaker_state_name(BreakerState::kRetired), "retired");
}

}  // namespace
}  // namespace nga::guard
