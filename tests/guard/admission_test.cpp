// AimdLimiter: token accounting, additive increase, multiplicative
// decrease on p99/shed breaches, and clamping.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "guard/admission.hpp"

namespace nga::guard {
namespace {

AdmissionConfig cfg(std::size_t initial, std::size_t adjust_every = 8) {
  AdmissionConfig c;
  c.enabled = true;
  c.min_limit = 2;
  c.max_limit = 64;
  c.initial_limit = initial;
  c.increase = 1.0;
  c.decrease = 0.5;
  c.target_p99_ms = 100.0;
  c.max_shed_rate = 0.25;
  c.adjust_every = adjust_every;
  return c;
}

TEST(GuardAdmission, EnforcesTheInFlightLimit) {
  AimdLimiter lim(cfg(4));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(lim.try_acquire());
  EXPECT_EQ(lim.in_flight(), 4u);
  EXPECT_FALSE(lim.try_acquire());  // over the limit
  EXPECT_EQ(lim.stats().rejected, 1u);
  lim.release(/*latency_ms=*/10.0, /*shed=*/false);
  EXPECT_EQ(lim.in_flight(), 3u);
  EXPECT_TRUE(lim.try_acquire());
}

TEST(GuardAdmission, HealthyWindowGrowsAdditively) {
  AimdLimiter lim(cfg(4, /*adjust_every=*/4));
  for (int round = 0; round < 3; ++round)
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(lim.try_acquire());
      lim.release(10.0, false);  // fast, no shedding
    }
  // Three adjustment windows, +1 each: 4 -> 7.
  EXPECT_EQ(lim.limit(), 7u);
  EXPECT_EQ(lim.stats().increases, 3u);
  EXPECT_EQ(lim.stats().decreases, 0u);
}

TEST(GuardAdmission, LatencyBreachCutsMultiplicatively) {
  AimdLimiter lim(cfg(32, 8));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(lim.try_acquire());
    lim.release(500.0, false);  // p99 far over the 100 ms target
  }
  EXPECT_EQ(lim.limit(), 16u);  // 32 x 0.5
  EXPECT_EQ(lim.stats().decreases, 1u);
  EXPECT_GT(lim.stats().last_p99_ms, 100.0);
}

TEST(GuardAdmission, ShedBreachCutsEvenWhenFast) {
  AimdLimiter lim(cfg(32, 8));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(lim.try_acquire());
    lim.release(1.0, /*shed=*/i < 4);  // 50% shed >> 25% tolerated
  }
  EXPECT_EQ(lim.limit(), 16u);
  EXPECT_DOUBLE_EQ(lim.stats().last_shed_rate, 0.5);
}

TEST(GuardAdmission, LimitClampsToConfiguredRange) {
  AimdLimiter lim(cfg(4, 4));
  // Repeated breaches can never push the limit under min_limit...
  for (int round = 0; round < 10; ++round)
    for (int i = 0; i < 4; ++i) {
      (void)lim.try_acquire();
      lim.release(500.0, true);
    }
  EXPECT_EQ(lim.limit(), 2u);
  // ...and sustained health can never push it over max_limit.
  AimdLimiter lim2(cfg(63, 4));
  for (int round = 0; round < 10; ++round)
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(lim2.try_acquire());
      lim2.release(1.0, false);
    }
  EXPECT_EQ(lim2.limit(), 64u);
}

TEST(GuardAdmission, SawtoothRecoversAfterOverloadClears) {
  AimdLimiter lim(cfg(32, 8));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(lim.try_acquire());
    lim.release(500.0, false);
  }
  ASSERT_EQ(lim.limit(), 16u);
  // Load clears: additive reclaim, one step per window.
  for (int round = 0; round < 4; ++round)
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(lim.try_acquire());
      lim.release(5.0, false);
    }
  EXPECT_EQ(lim.limit(), 20u);  // 16 + 4x1
}

TEST(GuardAdmission, ConcurrentAcquireReleaseKeepsTokensConserved) {
  AimdLimiter lim(cfg(16, 32));
  std::atomic<long> net{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (lim.try_acquire()) {
          net.fetch_add(1);
          lim.release(1.0, false);
          net.fetch_sub(1);
        }
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(net.load(), 0);
  EXPECT_EQ(lim.in_flight(), 0u);
  EXPECT_GE(lim.limit(), 2u);
  EXPECT_LE(lim.limit(), 64u);
}

}  // namespace
}  // namespace nga::guard
