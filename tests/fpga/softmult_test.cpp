#include "fpga/softmult.hpp"

#include <gtest/gtest.h>

namespace nga::fpga {
namespace {

TEST(SoftMult, Naive3x3Exhaustive) {
  const auto nl = build_naive_3x3();
  for (u64 a = 0; a < 8; ++a)
    for (u64 b = 0; b < 8; ++b)
      EXPECT_EQ(nl.eval_word(a | (b << 3)), a * b) << a << "*" << b;
}

TEST(SoftMult, Regularized3x3Exhaustive) {
  // The Fig. 4 refactoring must be functionally identical to Fig. 3.
  const auto nl = build_regularized_3x3();
  for (u64 a = 0; a < 8; ++a)
    for (u64 b = 0; b < 8; ++b)
      EXPECT_EQ(nl.eval_word(a | (b << 3)), a * b) << a << "*" << b;
}

TEST(SoftMult, NaiveHasThreeInputColumn) {
  // Fig. 3's problem: column 2 holds three partial products, and the
  // independent inputs per column vary from two to six.
  const auto r = naive_3x3_report();
  EXPECT_EQ(r.max_rows_in_column, 3);
  EXPECT_EQ(r.max_independent_inputs, 6);
  EXPECT_EQ(r.min_independent_inputs, 2);
}

TEST(SoftMult, RegularizedIsTwoRowsOnOneChain) {
  const auto r = regularized_3x3_report();
  EXPECT_EQ(r.max_rows_in_column, 2);
  EXPECT_EQ(r.chain_alms, 3);
  EXPECT_EQ(r.out_of_band_alms, 1);
  EXPECT_EQ(r.total_alms(), 4);  // "6 independent inputs over the 4 ALMs"
  EXPECT_EQ(r.max_independent_inputs, 6);
}

TEST(SoftMult, RegularizedUsesFewerAlmsThanNaive) {
  EXPECT_LT(regularized_3x3_report().total_alms(),
            naive_3x3_report().total_alms());
}

TEST(SoftMult, GeneralizedRegularizationCorrect) {
  for (unsigned n : {2u, 4u, 5u, 6u}) {
    MappingReport rep;
    const auto nl = build_regularized(n, &rep);
    EXPECT_EQ(rep.max_rows_in_column, 2);
    EXPECT_GT(rep.chain_alms, 0);
    const u64 lim = u64{1} << n;
    for (u64 a = 0; a < lim; ++a)
      for (u64 b = 0; b < lim; ++b)
        ASSERT_EQ(nl.eval_word(a | (b << n)), a * b) << n;
  }
}

TEST(SoftMult, ImbalanceGrowsWithNaiveWidth) {
  // The paper's motivation scales: bigger naive arrays get taller
  // columns and wider input imbalance.
  const auto r4 = naive_report(4);
  const auto r8 = naive_report(8);
  EXPECT_GT(r8.max_rows_in_column, r4.max_rows_in_column);
  EXPECT_GT(r8.max_independent_inputs - r8.min_independent_inputs,
            r4.max_independent_inputs - r4.min_independent_inputs);
}

}  // namespace
}  // namespace nga::fpga
