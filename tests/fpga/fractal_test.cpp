#include "fpga/fractal.hpp"

#include <gtest/gtest.h>

namespace nga::fpga {
namespace {

TEST(Fractal, FirstFitPlacesEverythingOnABigDevice) {
  const auto segs = ai_datapath_segments(200, 1);
  const auto r = pack_first_fit(segs, 10, 400);
  EXPECT_EQ(r.failed_segments, 0);
  EXPECT_EQ(r.placed_segments, 200);
  EXPECT_GT(r.functional_alms, 0);
  EXPECT_GT(r.utilization(), 0.4);
  EXPECT_LT(r.utilization(), 0.85);  // gaps + fragmentation bite
}

TEST(Fractal, FractalBeatsFirstFitUtilization) {
  // The headline: soft arithmetic at 60-70% with standard fitting vs
  // near-100% with fractal synthesis, same workload, same device.
  const auto segs = ai_datapath_segments(500, 2);
  const int labs = 400;
  const auto ff = pack_first_fit(segs, 10, labs);
  const auto fr = pack_fractal(segs, 10, labs, 16);
  EXPECT_EQ(fr.failed_segments, 0);
  EXPECT_GT(fr.utilization(), ff.utilization() + 0.1);
  EXPECT_GT(fr.utilization(), 0.95);            // "near 100% logic use"
  EXPECT_GT(fr.functional_density(), 0.75);
  EXPECT_LT(ff.utilization(), 0.8);             // the 60-70% regime
}

TEST(Fractal, TightDeviceNeedsDecomposition) {
  // Make the device just big enough that whole-segment placement must
  // fail but decomposition succeeds.
  const auto segs = ai_datapath_segments(300, 3);
  int total = 0;
  for (const auto& s : segs) total += s.len;
  const int labs = total / 8;  // needs ~80% fill: baseline can't, fractal can
  const auto ff = pack_first_fit(segs, 10, labs);
  const auto fr = pack_fractal(segs, 10, labs, 32);
  EXPECT_GT(ff.failed_segments, 0);
  EXPECT_LT(fr.failed_segments, ff.failed_segments);
  EXPECT_GT(fr.splits, 0);
}

TEST(Fractal, DeterministicAndSeedReproducible) {
  const auto segs = ai_datapath_segments(100, 4);
  const auto a = pack_fractal(segs, 10, 100, 8);
  const auto b = pack_fractal(segs, 10, 100, 8);
  EXPECT_EQ(a.functional_alms, b.functional_alms);
  EXPECT_EQ(a.best_seed, b.best_seed);
  EXPECT_EQ(a.utilization(), b.utilization());
}

TEST(Fractal, MoreSeedsNeverWorse) {
  const auto segs = ai_datapath_segments(300, 5);
  int total = 0;
  for (const auto& s : segs) total += s.len;
  const int labs = (total + 30) / 10;
  const auto few = pack_fractal(segs, 10, labs, 2);
  const auto many = pack_fractal(segs, 10, labs, 24);
  EXPECT_LE(many.failed_segments, few.failed_segments);
}

TEST(Fractal, ConservationOfAlms) {
  const auto segs = ai_datapath_segments(120, 6);
  const auto r = pack_fractal(segs, 10, 200, 4);
  int total_len = 0;
  for (const auto& s : segs) total_len += s.len;
  // Every placed ALM is functional exactly once.
  EXPECT_EQ(r.functional_alms, total_len);
  EXPECT_LE(r.functional_alms + r.overhead_alms, r.labs_used * r.lab_size);
}

TEST(Fractal, BrainwaveComposite) {
  // 20% control at ~80% + 80% datapath at ~97% -> ~93.6% ("92% achieved").
  EXPECT_NEAR(brainwave_composite(), 0.936, 1e-9);
  EXPECT_GT(brainwave_composite(), 0.92);
}

TEST(Fractal, RandomLogicBaselineContrast) {
  // "Random logic tops 80%": model random logic as 1-ALM segments with
  // no separation need... approximated here by len-1 segments (gap rule
  // still applies, so first-fit reaches ~50%; fractal gets ~100% on
  // pure arithmetic). The contrast quoted in the paper is between
  // 60-70% (naive arithmetic) and ~100% (fractal), asserted above; this
  // test just pins the numbers used in the bench table.
  const auto segs = ai_datapath_segments(400, 7);
  const auto fr = pack_fractal(segs, 10, 300, 16);
  EXPECT_GT(fr.utilization(), 0.95);
  EXPECT_GT(fr.functional_density(), 0.75);
}

}  // namespace
}  // namespace nga::fpga
