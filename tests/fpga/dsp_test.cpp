#include "fpga/dsp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nga::fpga {
namespace {

TEST(Dsp, PeakTflopsMatchesPaperClaim) {
  // "almost 9000 DSPs at 750MHz provides up to 25 TFLOPs" (decomposed
  // small-precision modes: 2 pairs x 2 flops per block per cycle).
  const DspDevice dev;
  EXPECT_NEAR(peak_tflops(dev, DspMode::kFp16), 26.9, 0.3);
  EXPECT_GT(peak_tflops(dev, DspMode::kFp16), 25.0);
  EXPECT_NEAR(peak_tflops(dev, DspMode::kFp32),
              peak_tflops(dev, DspMode::kFp16) / 2, 1e-9);
  EXPECT_EQ(peak_tflops(dev, DspMode::kBfloat16),
            peak_tflops(dev, DspMode::kFp19));
}

TEST(Dsp, BlockCountsForDotProducts) {
  EXPECT_EQ(dsp_blocks_for_dot(128, DspMode::kFp32), 128);
  EXPECT_EQ(dsp_blocks_for_dot(128, DspMode::kFp16), 64);
  EXPECT_EQ(dsp_blocks_for_dot(129, DspMode::kFp19), 65);
}

TEST(Dsp, MultAddNumericsPerMode) {
  // 1.5*2.5 + 1 = 4.75 is exact in every mode.
  for (const auto m :
       {DspMode::kFp32, DspMode::kFp16, DspMode::kBfloat16, DspMode::kFp19}) {
    EXPECT_EQ(dsp_mult_add(m, 1.0, 1.5, 2.5), 4.75) << int(m);
  }
  // bfloat16 keeps huge ranges where fp16 overflows.
  EXPECT_TRUE(std::isinf(dsp_mult_add(DspMode::kFp16, 0.0, 60000.0, 2.0)));
  EXPECT_FALSE(std::isinf(dsp_mult_add(DspMode::kBfloat16, 0.0, 60000.0, 2.0)));
  // ...but fp16/fp19 carry more fraction bits than bfloat16.
  const double v = 1.0 + 1.0 / 512.0;  // needs 9 fraction bits
  EXPECT_EQ(dsp_mult_add(DspMode::kFp16, 0.0, v, 1.0), v);
  EXPECT_EQ(dsp_mult_add(DspMode::kFp19, 0.0, v, 1.0), v);
  EXPECT_NE(dsp_mult_add(DspMode::kBfloat16, 0.0, v, 1.0), v);
}

TEST(Dsp, DotProductErrorOrdering) {
  // On a well-scaled dot product, FP32 < FP19 ~ FP16 < bfloat16 error.
  util::Xoshiro256 rng(9);
  std::vector<double> x(256), y(256);
  for (auto& v : x) v = rng.uniform(0.5, 1.5);
  for (auto& v : y) v = rng.uniform(0.5, 1.5);
  const double e32 = dot_product_rel_error(DspMode::kFp32, x, y);
  const double e16 = dot_product_rel_error(DspMode::kFp16, x, y);
  const double e19 = dot_product_rel_error(DspMode::kFp19, x, y);
  const double ebf = dot_product_rel_error(DspMode::kBfloat16, x, y);
  EXPECT_LT(e32, e16);
  EXPECT_LT(e19, ebf);
  EXPECT_LT(e16, ebf);
  // FP19 ~ FP16 fraction width: same order of magnitude.
  EXPECT_LT(e19, e16 * 4 + 1e-12);
}

}  // namespace
}  // namespace nga::fpga
