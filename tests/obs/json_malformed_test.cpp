// Adversarial regression table for the hand-rolled JSON parser: every
// malformed, truncated, or hostile input must produce `false` plus a
// clear error message — never a crash, hang, or sanitizer report.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace nga::obs::json {
namespace {

TEST(JsonMalformed, RejectsWithClearError) {
  // {input, expected error fragment}
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"", "unexpected end of input"},
      {"   \t\r\n", "unexpected end of input"},
      {"{", "truncated object"},
      {"[", "unexpected end of input"},
      {"[1,", "unexpected end of input"},
      {"[1", "truncated array"},
      {"{\"a\"", "expected ':'"},
      {"{\"a\":", "unexpected end of input"},
      {"{\"a\":1", "truncated object"},
      {"{\"a\":1,", "truncated object"},
      {"{a:1}", "expected object key"},
      {"{\"a\" 1}", "expected ':'"},
      {"{\"a\":1 \"b\":2}", "expected ',' or '}'"},
      {"[1 2]", "expected ',' or ']'"},
      {"\"abc", "unterminated string"},
      {"\"\\", "truncated escape"},
      {"\"\\q\"", "bad escape"},
      {"\"\\u12", "truncated \\u escape"},
      {"\"\\uZZZZ\"", "bad \\u escape"},
      {std::string("\"a\x01b\""), "raw control character"},
      {"tru", "bad literal"},
      {"falze", "bad literal"},
      {"nul", "bad literal"},
      {"-", "bad number"},
      {"+1", "bad number"},  // JSON forbids a leading '+'
      {"1.2.3", "bad number"},
      {"1e", "bad number"},
      {"0x10", "trailing characters"},
      {"--5", "bad number"},
      {"1 2", "trailing characters"},
      {"{} []", "trailing characters"},
      {"}", "expected value"},
      {"]", "expected value"},
      {",", "expected value"},
  };
  for (const auto& [input, fragment] : cases) {
    Value v;
    std::string err;
    EXPECT_FALSE(parse(input, v, &err)) << "input: " << input;
    EXPECT_NE(err.find(fragment), std::string::npos)
        << "input: " << input << "\nerror: " << err
        << "\nexpected fragment: " << fragment;
    EXPECT_NE(err.find("at byte"), std::string::npos)
        << "error lacks offset: " << err;
  }
}

TEST(JsonMalformed, DeepNestingFailsCleanly) {
  // Well past the limit: without the depth guard these would overflow
  // the stack long before returning an error.
  const std::string deep_array(100000, '[');
  const std::string deep_mixed = [] {
    std::string s;
    for (int i = 0; i < 50000; ++i) s += "{\"k\":[";
    return s;
  }();
  for (const std::string& input : {deep_array, deep_mixed}) {
    Value v;
    std::string err;
    EXPECT_FALSE(parse(input, v, &err));
    EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;
  }
}

TEST(JsonMalformed, DepthLimitBoundaryIsExact) {
  auto nested = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  Value v;
  std::string err;
  EXPECT_TRUE(parse(nested(kMaxParseDepth), v, &err)) << err;
  EXPECT_FALSE(parse(nested(kMaxParseDepth + 1), v, &err));
  EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;

  // Sibling containers at the limit are fine: depth is released on the
  // way out, not consumed per container.
  std::string siblings = "[" + nested(kMaxParseDepth - 1) + "," +
                         nested(kMaxParseDepth - 1) + "]";
  EXPECT_TRUE(parse(siblings, v, &err)) << err;
}

TEST(JsonMalformed, AdversarialBytesNeverCrash) {
  // Pseudo-random byte soup: outcome (accept/reject) is unspecified,
  // but the parser must return and never trip ASan/UBSan.
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int round = 0; round < 200; ++round) {
    std::string input;
    const std::size_t len = next() % 64;
    for (std::size_t i = 0; i < len; ++i)
      input += char("{}[]\",:\\u123abtrufalsn \n\x01\xff"[next() % 24]);
    Value v;
    std::string err;
    (void)parse(input, v, &err);
  }
  SUCCEED();
}

}  // namespace
}  // namespace nga::obs::json
