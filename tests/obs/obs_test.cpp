#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "posit/posit.hpp"

namespace nga::obs {
namespace {

// -- registry ----------------------------------------------------------

TEST(Registry, LookupIsStableAndSharedByName) {
  auto& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("test.reg.stable");
  Counter& b = reg.counter("test.reg.stable");
  EXPECT_EQ(&a, &b);  // one object per name
  Counter& c = reg.counter("test.reg.other");
  EXPECT_NE(&a, &c);

  const u64 before = a.value();
  b.inc(3);
  EXPECT_EQ(a.value(), before + 3);

  const auto snap = reg.counters_snapshot();
  ASSERT_TRUE(snap.count("test.reg.stable"));
  EXPECT_EQ(snap.at("test.reg.stable"), a.value());
}

TEST(Registry, ResetZeroesButKeepsReferencesValid) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.reg.reset");
  c.inc(7);
  EXPECT_GE(c.value(), 7u);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();  // the cached reference must still be live after reset()
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &reg.counter("test.reg.reset"));
}

TEST(Registry, GaugeAndSeries) {
  auto& reg = MetricsRegistry::instance();
  reg.gauge("test.reg.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauges_snapshot().at("test.reg.gauge"), 2.5);

  ValueSeries& s = reg.series("test.reg.series");
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  const SeriesSnapshot snap = s.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.mean, 2.5);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
}

TEST(Registry, CounterAtomicUnderThreadFanOut) {
  Counter& c = MetricsRegistry::instance().counter("test.reg.atomic");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i)
        NGA_OBS_COUNT("test.reg.atomic");
    });
  for (auto& w : workers) w.join();
#if NGA_OBS
  EXPECT_EQ(c.value(), u64(kThreads) * kPerThread);
#else
  EXPECT_EQ(c.value(), 0u);  // macros elided
#endif
}

// -- timers ------------------------------------------------------------

TEST(Timer, NowNsIsMonotonic) {
  u64 prev = now_ns();
  for (int i = 0; i < 1000; ++i) {
    const u64 t = now_ns();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(Timer, ScopedTimerAccumulatesElapsedTime) {
  Counter& sink = MetricsRegistry::instance().section("test.timer.scoped");
  sink.reset();
  {
    ScopedTimer t(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GT(t.elapsed_ns(), 0u);
  }
  EXPECT_GE(sink.value(), u64(4) * 1000 * 1000);  // >= ~4ms recorded
  const u64 once = sink.value();
  { ScopedTimer t(sink); }
  EXPECT_GE(sink.value(), once);  // accumulates, never resets
}

TEST(Timer, TimedSectionRecordsSpanAndSection) {
  auto& buf = TraceBuffer::instance();
  const std::size_t before = buf.size();
  Counter& sink = MetricsRegistry::instance().section("test.timer.span");
  sink.reset();
  {
    TimedSection outer("test.timer.span");
    TimedSection inner("test.timer.span.nested");
    (void)inner;
  }
  EXPECT_GT(sink.value(), 0u);
  ASSERT_GE(buf.size(), before + 2);
  const auto events = buf.snapshot();
  // Destruction order closes the inner span first.
  const auto& inner_ev = events[events.size() - 2];
  const auto& outer_ev = events[events.size() - 1];
  EXPECT_EQ(inner_ev.name, "test.timer.span.nested");
  EXPECT_EQ(outer_ev.name, "test.timer.span");
  EXPECT_GE(inner_ev.start_ns, outer_ev.start_ns);
  EXPECT_LE(inner_ev.start_ns + inner_ev.dur_ns,
            outer_ev.start_ns + outer_ev.dur_ns);
  EXPECT_EQ(inner_ev.tid, outer_ev.tid);
}

// -- JSON parser -------------------------------------------------------

TEST(Json, ParsesScalarsAndNesting) {
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(
      R"({"a": 1.5, "b": [true, null, "x"], "c": {"d": -2e3}})", v, &err))
      << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v["a"].number, 1.5);
  ASSERT_TRUE(v["b"].is_array());
  ASSERT_EQ(v["b"].array.size(), 3u);
  EXPECT_TRUE(v["b"].array[0].boolean);
  EXPECT_TRUE(v["b"].array[1].is_null());
  EXPECT_EQ(v["b"].array[2].str, "x");
  EXPECT_DOUBLE_EQ(v["c"]["d"].number, -2000.0);
  EXPECT_TRUE(v["missing"]["deep"].is_null());  // safe chained miss
}

TEST(Json, RejectsMalformedInput) {
  json::Value v;
  for (const char* bad :
       {"{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2", ""}) {
    std::string err;
    EXPECT_FALSE(json::parse(bad, v, &err)) << bad;
    EXPECT_FALSE(err.empty());
  }
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "quote\" back\\slash \n\t ctrl\x01 end";
  json::Value v;
  std::string err;
  ASSERT_TRUE(
      json::parse("{\"k\":\"" + json::escape(nasty) + "\"}", v, &err))
      << err;
  EXPECT_EQ(v["k"].str, nasty);
}

// -- chrome trace export ----------------------------------------------

TEST(Trace, ChromeTraceIsWellFormedJson) {
  auto& buf = TraceBuffer::instance();
  buf.clear();
  {
    TimedSection a("trace.outer");
    TimedSection b("trace \"quoted\" name");
    (void)a;
    (void)b;
  }
  std::ostringstream os;
  buf.write_chrome_trace(os);

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), v, &err)) << err << "\n" << os.str();
  ASSERT_TRUE(v["traceEvents"].is_array());

  // Complete ("X") spans carry the recorded events; metadata ("M")
  // events label the processes/threads and report the dropped count.
  std::vector<const json::Value*> spans;
  bool saw_dropped_meta = false;
  for (const auto& ev : v["traceEvents"].array) {
    if (ev["ph"].str == "X") {
      spans.push_back(&ev);
      EXPECT_TRUE(ev["ts"].is_number());
      EXPECT_TRUE(ev["dur"].is_number());
      EXPECT_GE(ev["dur"].number, 0.0);
      EXPECT_DOUBLE_EQ(ev["pid"].number, 1.0);
      EXPECT_TRUE(ev["tid"].is_number());
      EXPECT_FALSE(ev["name"].str.empty());
    } else {
      EXPECT_EQ(ev["ph"].str, "M");
      if (ev["name"].str == "nga_trace_dropped") {
        saw_dropped_meta = true;
        EXPECT_DOUBLE_EQ(ev["args"]["dropped_spans"].number, 0.0);
      }
    }
  }
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0]->object.at("name").str, "trace \"quoted\" name");
  EXPECT_TRUE(saw_dropped_meta);
}

TEST(Trace, RequestSpansExportOnPerRequestLanesWithAncestry) {
  auto& buf = TraceBuffer::instance();
  buf.clear();

  const TraceContext ctx = start_trace(1.0);
  ASSERT_TRUE(ctx.sampled);
  ASSERT_NE(ctx.trace_id, 0u);
  ASSERT_NE(ctx.root_span, 0u);
  buf.record_span(ctx, "queue_wait", 1000, 500, ctx.root_span);
  buf.record_span(ctx, "request.served", 1000, 2000, 0, ctx.root_span);

  std::ostringstream os;
  buf.write_chrome_trace(os);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), v, &err)) << err << "\n" << os.str();

  const json::Value* child = nullptr;
  const json::Value* root = nullptr;
  for (const auto& ev : v["traceEvents"].array) {
    if (ev["ph"].str != "X") continue;
    if (ev["name"].str == "queue_wait") child = &ev;
    if (ev["name"].str == "request.served") root = &ev;
  }
  ASSERT_NE(child, nullptr);
  ASSERT_NE(root, nullptr);
  for (const json::Value* ev : {child, root}) {
    EXPECT_DOUBLE_EQ((*ev)["pid"].number, 2.0);  // the requests process
    EXPECT_DOUBLE_EQ((*ev)["tid"].number, double(ctx.trace_id));
    EXPECT_DOUBLE_EQ((*ev)["args"]["trace_id"].number, double(ctx.trace_id));
  }
  EXPECT_DOUBLE_EQ((*root)["args"]["span_id"].number, double(ctx.root_span));
  EXPECT_DOUBLE_EQ((*root)["args"]["parent_span_id"].number, 0.0);
  EXPECT_DOUBLE_EQ((*child)["args"]["parent_span_id"].number,
                   double(ctx.root_span));
}

TEST(Trace, ThreadNameMetadataLabelsTheLane) {
  auto& buf = TraceBuffer::instance();
  buf.clear();
  buf.set_thread_name("unit.test.thread");
  { TimedSection a("trace.named"); }

  std::ostringstream os;
  buf.write_chrome_trace(os);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;

  bool found = false;
  for (const auto& ev : v["traceEvents"].array) {
    if (ev["ph"].str == "M" && ev["name"].str == "thread_name" &&
        ev["args"]["name"].str == "unit.test.thread") {
      found = true;
      EXPECT_DOUBLE_EQ(ev["tid"].number, double(this_thread_trace_id()));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, SamplingRateZeroAndOneAreDeterministic) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(start_trace(0.0).sampled);
    EXPECT_TRUE(start_trace(1.0).sampled);
  }
  // Unsampled contexts are inert: record_span is a no-op.
  auto& buf = TraceBuffer::instance();
  buf.clear();
  buf.record_span(start_trace(0.0), "never", 0, 1, 0);
  EXPECT_EQ(buf.size(), 0u);
}

// -- metrics export ----------------------------------------------------

TEST(Export, MetricsJsonMatchesSchema) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.export.counter").inc(42);
  reg.section("test.export.section").inc(1234);
  reg.gauge("test.export.gauge").set(-1.25);
  reg.series("test.export.series").add(2.0);
  reg.series("test.export.series").add(4.0);

  std::ostringstream os;
  write_metrics_json(os, "unit_test_bench");

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), v, &err)) << err << "\n" << os.str();
  EXPECT_EQ(v["schema"].str, std::string(kBenchSchema));
  EXPECT_EQ(v["bench"].str, "unit_test_bench");
  for (const char* key : {"wall_ns", "counters", "gauges", "metrics"})
    EXPECT_TRUE(v[key].is_object()) << key;
  EXPECT_GE(v["counters"]["test.export.counter"].number, 42.0);
  EXPECT_GE(v["wall_ns"]["test.export.section"].number, 1234.0);
  EXPECT_DOUBLE_EQ(v["gauges"]["test.export.gauge"].number, -1.25);
  const auto& series = v["metrics"]["test.export.series"];
  EXPECT_GE(series["count"].number, 2.0);
  EXPECT_TRUE(series["mean"].is_number());
  EXPECT_TRUE(series["stddev"].is_number());
  EXPECT_TRUE(series["min"].is_number());
  EXPECT_TRUE(series["max"].is_number());
}

// -- hot-path instrumentation (only when compiled in) ------------------

#if NGA_OBS
TEST(Instrumentation, PositRoundingEventsFire) {
  auto& reg = MetricsRegistry::instance();
  const auto before = reg.counters_snapshot();
  const auto get = [](const std::map<std::string, u64>& m, const char* k) {
    const auto it = m.find(k);
    return it == m.end() ? u64{0} : it->second;
  };

  using P = ps::posit16;
  // 1/3 is inexact on the posit lattice; maxpos*maxpos saturates.
  (void)(P(1.0) / P(3.0));
  (void)(P::mul(P::maxpos(), P::maxpos()));
  (void)(P::add(P::nar(), P::one()));
  ps::quire<16, 1> q;
  q.add_product(P(0.5), P(0.5));
  (void)q.to_posit();

  const auto after = reg.counters_snapshot();
  EXPECT_GT(get(after, "posit.round"), get(before, "posit.round"));
  EXPECT_GT(get(after, "posit.round.inexact"),
            get(before, "posit.round.inexact"));
  EXPECT_GT(get(after, "posit.round.saturate"),
            get(before, "posit.round.saturate"));
  EXPECT_GT(get(after, "posit.nar"), get(before, "posit.nar"));
  EXPECT_GT(get(after, "posit.quire.accumulate"),
            get(before, "posit.quire.accumulate"));
}
#endif  // NGA_OBS

}  // namespace
}  // namespace nga::obs
