// Prometheus-style text exposition (obs/exposition.hpp): metric name
// sanitization, TYPE lines, and one family per registry entry kind.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/obs.hpp"

namespace nga::obs {
namespace {

TEST(Exposition, NameSanitizationKeepsLegalCharsOnly) {
  EXPECT_EQ(exposition_name("serve.latency_ms"), "nga_serve_latency_ms");
  EXPECT_EQ(exposition_name("posit.nar"), "nga_posit_nar");
  EXPECT_EQ(exposition_name("a-b c/d"), "nga_a_b_c_d");
  EXPECT_EQ(exposition_name("colon:ok_9"), "nga_colon:ok_9");
  EXPECT_EQ(exposition_name(""), "nga_");
}

TEST(Exposition, EmitsTypedFamiliesForEveryRegistryKind) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("expo.test.hits").inc(42);
  reg.gauge("expo.test.depth").set(2.5);
  auto& series = reg.series("expo.test.lat_ms");
  series.add(1.0);
  series.add(3.0);

  std::ostringstream os;
  write_text_exposition(os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE nga_expo_test_hits_total counter\n"
                      "nga_expo_test_hits_total 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE nga_expo_test_depth gauge\n"
                      "nga_expo_test_depth 2.5\n"),
            std::string::npos)
      << text;
  for (const char* suffix : {"_count", "_mean", "_stddev", "_min", "_max"})
    EXPECT_NE(text.find("nga_expo_test_lat_ms" + std::string(suffix) + " "),
              std::string::npos)
        << suffix << "\n" << text;
  EXPECT_NE(text.find("nga_expo_test_lat_ms_mean 2\n"), std::string::npos)
      << text;
  reg.reset();
}

TEST(Exposition, EveryMetricLineFollowsItsTypeLine) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("expo.pairing").inc();
  reg.counter("expo.pairing.helped", "A described counter.").inc();
  std::ostringstream os;
  write_text_exposition(os);

  // Family grammar: optional `# HELP m ...`, then `# TYPE m ...`, then
  // the `m ...` sample — HELP always immediately before its TYPE.
  std::istringstream is(os.str());
  std::string line, pending_metric, pending_help;
  while (std::getline(is, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      EXPECT_TRUE(pending_help.empty()) << "HELP without TYPE: " << line;
      EXPECT_TRUE(pending_metric.empty()) << "HELP after TYPE: " << line;
      pending_help = line.substr(7, line.find(' ', 7) - 7);
    } else if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_TRUE(pending_metric.empty()) << "TYPE without sample: " << line;
      pending_metric = line.substr(7, line.find(' ', 7) - 7);
      if (!pending_help.empty()) {
        EXPECT_EQ(pending_help, pending_metric) << line;
        pending_help.clear();
      }
    } else {
      ASSERT_FALSE(pending_metric.empty()) << "sample without TYPE: " << line;
      EXPECT_EQ(line.rfind(pending_metric + " ", 0), 0u) << line;
      pending_metric.clear();
    }
  }
  EXPECT_TRUE(pending_metric.empty());
  EXPECT_TRUE(pending_help.empty());
  reg.reset();
}

TEST(Exposition, HelpTextPrecedesTypeAndEscapes) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("expo.doc.hits", "Total hits.\nSecond line with \\ slash.")
      .inc(3);
  reg.gauge("expo.doc.depth", "Current depth.").set(1.5);
  reg.series("expo.doc.lat_ms", "Latency per request.").add(2.0);
  reg.counter("expo.doc.bare").inc();  // undescribed: no HELP line

  std::ostringstream os;
  write_text_exposition(os);
  const std::string text = os.str();

  // HELP immediately before TYPE, newline and backslash escaped.
  EXPECT_NE(
      text.find("# HELP nga_expo_doc_hits_total Total hits.\\nSecond line "
                "with \\\\ slash.\n"
                "# TYPE nga_expo_doc_hits_total counter\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP nga_expo_doc_depth Current depth.\n"
                      "# TYPE nga_expo_doc_depth gauge\n"),
            std::string::npos)
      << text;
  // All five series-derived families inherit the series' help text.
  for (const char* suffix : {"_count", "_mean", "_stddev", "_min", "_max"})
    EXPECT_NE(text.find("# HELP nga_expo_doc_lat_ms" + std::string(suffix) +
                        " Latency per request.\n"),
              std::string::npos)
        << suffix << "\n" << text;
  EXPECT_EQ(text.find("# HELP nga_expo_doc_bare_total"), std::string::npos)
      << text;
  reg.reset();
}

}  // namespace
}  // namespace nga::obs
