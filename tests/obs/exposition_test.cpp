// Prometheus-style text exposition (obs/exposition.hpp): metric name
// sanitization, TYPE lines, and one family per registry entry kind.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/obs.hpp"

namespace nga::obs {
namespace {

TEST(Exposition, NameSanitizationKeepsLegalCharsOnly) {
  EXPECT_EQ(exposition_name("serve.latency_ms"), "nga_serve_latency_ms");
  EXPECT_EQ(exposition_name("posit.nar"), "nga_posit_nar");
  EXPECT_EQ(exposition_name("a-b c/d"), "nga_a_b_c_d");
  EXPECT_EQ(exposition_name("colon:ok_9"), "nga_colon:ok_9");
  EXPECT_EQ(exposition_name(""), "nga_");
}

TEST(Exposition, EmitsTypedFamiliesForEveryRegistryKind) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("expo.test.hits").inc(42);
  reg.gauge("expo.test.depth").set(2.5);
  auto& series = reg.series("expo.test.lat_ms");
  series.add(1.0);
  series.add(3.0);

  std::ostringstream os;
  write_text_exposition(os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE nga_expo_test_hits_total counter\n"
                      "nga_expo_test_hits_total 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE nga_expo_test_depth gauge\n"
                      "nga_expo_test_depth 2.5\n"),
            std::string::npos)
      << text;
  for (const char* suffix : {"_count", "_mean", "_stddev", "_min", "_max"})
    EXPECT_NE(text.find("nga_expo_test_lat_ms" + std::string(suffix) + " "),
              std::string::npos)
        << suffix << "\n" << text;
  EXPECT_NE(text.find("nga_expo_test_lat_ms_mean 2\n"), std::string::npos)
      << text;
  reg.reset();
}

TEST(Exposition, EveryMetricLineFollowsItsTypeLine) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("expo.pairing").inc();
  std::ostringstream os;
  write_text_exposition(os);

  std::istringstream is(os.str());
  std::string line, pending_metric;
  while (std::getline(is, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_TRUE(pending_metric.empty()) << "TYPE without sample: " << line;
      pending_metric = line.substr(7, line.find(' ', 7) - 7);
    } else {
      ASSERT_FALSE(pending_metric.empty()) << "sample without TYPE: " << line;
      EXPECT_EQ(line.rfind(pending_metric + " ", 0), 0u) << line;
      pending_metric.clear();
    }
  }
  EXPECT_TRUE(pending_metric.empty());
  reg.reset();
}

}  // namespace
}  // namespace nga::obs
