// Regression tests for JSON string escaping in the trace export: span
// and thread names with quotes, backslashes, control characters, and
// non-ASCII UTF-8 must survive the chrome-trace writer and come back
// byte-identical through the obs JSON parser.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace nga::obs {
namespace {

const std::vector<std::string>& nasty_names() {
  static const std::vector<std::string> names = {
      "plain",
      "with \"double quotes\"",
      "back\\slash and \\\" mix",
      "tab\there\nnewline\rreturn",
      "control \x01\x02\x1f chars",
      "non-ascii: émigré Größe Δt λ→∞ 小数",  // UTF-8 passes through raw
      "emoji \xF0\x9F\x94\xA5 done",
      "trailing backslash \\",
  };
  return names;
}

TEST(Escaping, ChromeTraceRoundTripsNastySpanNames) {
  auto& buf = TraceBuffer::instance();
  buf.clear();
  for (std::size_t i = 0; i < nasty_names().size(); ++i) {
    TraceEvent ev;
    ev.name = nasty_names()[i];
    ev.start_ns = i * 1000;
    ev.dur_ns = 10;
    buf.record(std::move(ev));
  }

  std::ostringstream os;
  buf.write_chrome_trace(os);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), v, &err)) << err << "\n" << os.str();

  std::vector<std::string> decoded;
  for (const auto& ev : v["traceEvents"].array)
    if (ev["ph"].str == "X") decoded.push_back(ev["name"].str);
  ASSERT_EQ(decoded.size(), nasty_names().size());
  for (std::size_t i = 0; i < decoded.size(); ++i)
    EXPECT_EQ(decoded[i], nasty_names()[i]) << "name " << i;
  buf.clear();
}

TEST(Escaping, ThreadNameMetadataRoundTripsNastyNames) {
  auto& buf = TraceBuffer::instance();
  buf.clear();
  const std::string name = "worker \"Δ\" \\ tab\t火";
  buf.set_thread_name(name);
  { TimedSection s("escape.thread"); }

  std::ostringstream os;
  buf.write_chrome_trace(os);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;

  bool found = false;
  for (const auto& ev : v["traceEvents"].array)
    if (ev["ph"].str == "M" && ev["name"].str == "thread_name" &&
        ev["args"]["name"].str == name)
      found = true;
  EXPECT_TRUE(found);
  buf.clear();
  buf.set_thread_name("");  // un-label the test thread for later tests
}

TEST(Escaping, EscapeEncodesControlCharsParserDecodesThem) {
  for (const auto& s : nasty_names()) {
    const std::string doc = "{\"k\":\"" + json::escape(s) + "\"}";
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(doc, v, &err)) << err << "\n" << doc;
    EXPECT_EQ(v["k"].str, s);
  }
}

}  // namespace
}  // namespace nga::obs
