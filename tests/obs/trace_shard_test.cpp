// Hammers the per-thread SPSC trace ring shards from many threads while
// a drainer runs concurrently — the suite name (TraceShards) is matched
// by the CI TSan leg's test regex, so these run under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace nga::obs {
namespace {

TEST(TraceShards, OverflowCountsDropsInsteadOfBlocking) {
  auto& buf = TraceBuffer::instance();
  buf.clear();

  // Fill this thread's ring three times over without draining: the ring
  // retains its capacity, everything else lands in the dropped counter.
  const std::size_t total = 3 * TraceShard::kCapacity;
  for (std::size_t i = 0; i < total; ++i) {
    TraceEvent ev;
    ev.name = "shard.fill";
    ev.start_ns = i;
    ev.dur_ns = 1;
    buf.record(std::move(ev));
  }
  EXPECT_EQ(buf.size(), TraceShard::kCapacity);
  EXPECT_EQ(buf.dropped(), total - TraceShard::kCapacity);

  // The chrome export reports the loss instead of hiding it.
  std::ostringstream os;
  buf.write_chrome_trace(os);
  EXPECT_NE(os.str().find("nga_trace_dropped"), std::string::npos);
  buf.clear();
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceShards, ConcurrentRecordAndDrainLoseNothingUnaccounted) {
  auto& buf = TraceBuffer::instance();
  buf.clear();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const TraceContext ctx = start_trace(1.0);
      for (int i = 0; i < kPerThread; ++i)
        buf.record_span(ctx, "shard.hammer", u64(i), 1, ctx.root_span);
    });
  }
  go.store(true, std::memory_order_release);

  // Drain concurrently with the producers: the consumer side of every
  // shard, serialized by the buffer mutex, racing the lock-free pushes.
  for (int i = 0; i < 200; ++i) {
    (void)buf.size();
    (void)buf.dropped();
  }
  for (auto& th : producers) th.join();

  // Every push either landed in a ring or bumped a dropped counter —
  // the two must account for the exact total.
  const std::size_t total = std::size_t(kThreads) * kPerThread;
  EXPECT_EQ(buf.size() + buf.dropped(), total);
  buf.clear();
}

TEST(TraceShards, ConcurrentExportIsWellFormed) {
  auto& buf = TraceBuffer::instance();
  buf.clear();

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    u64 i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      TraceEvent ev;
      ev.name = "export.race";
      ev.start_ns = ++i;
      ev.dur_ns = 1;
      buf.record(std::move(ev));
    }
  });

  for (int i = 0; i < 20; ++i) {
    std::ostringstream os;
    buf.write_chrome_trace(os);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;
    ASSERT_TRUE(v["traceEvents"].is_array());
  }
  stop.store(true, std::memory_order_release);
  producer.join();
  buf.clear();
}

}  // namespace
}  // namespace nga::obs
