// Multi-threaded hammer for the MetricsRegistry concurrency contract
// (see the header comment in obs/registry.hpp): concurrent lookups,
// counter/gauge/series mutation, snapshots, and reset must be exact
// where promised and crash/race-free everywhere. The TSan CI leg runs
// this test under -fsanitize=thread.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace nga::obs {
namespace {

TEST(RegistryHammer, ConcurrentCounterIncrementsAreExact) {
  auto& reg = MetricsRegistry::instance();
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 100000;
  Counter& shared = reg.counter("hammer.counter.shared");
  shared.reset();

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      // Half the increments go through a fresh lookup each time: the
      // lookup path must be as safe as the cached-reference path.
      Counter& own =
          reg.counter("hammer.counter.t" + std::to_string(t));
      own.reset();
      for (u64 i = 0; i < kPerThread; ++i) {
        shared.inc();
        reg.counter("hammer.counter.shared").inc();
        own.inc(2);
      }
    });
  for (auto& t : ts) t.join();

  EXPECT_EQ(shared.value(), u64(2 * kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("hammer.counter.t" + std::to_string(t)).value(),
              2 * kPerThread);
}

TEST(RegistryHammer, LookupReturnsOneStableNodePerName) {
  auto& reg = MetricsRegistry::instance();
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back(
        [&, t] { seen[std::size_t(t)] = &reg.counter("hammer.stable"); });
  for (auto& t : ts) t.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(seen[std::size_t(t)], seen[0])
        << "racing lookups of one name must resolve to one node";
}

TEST(RegistryHammer, SeriesGaugesSnapshotsAndResetUnderContention) {
  auto& reg = MetricsRegistry::instance();
  reg.series("hammer.series").reset();
  constexpr int kThreads = 6;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      ValueSeries& vs = reg.series("hammer.series");
      Gauge& gg = reg.gauge("hammer.gauge");
      for (int i = 0; i < kPerThread; ++i) {
        vs.add(double(t));
        gg.set(double(t));
      }
    });
  // A reader thread takes snapshots while the writers hammer; each
  // snapshot must be internally consistent (count matches what the
  // merged moments were computed from — RunningStats under the series
  // mutex), though not a cross-metric atomic cut.
  std::thread reader([&] {
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 200; ++i) {
      const auto snap = reg.series_snapshot().at("hammer.series");
      EXPECT_LE(snap.count, std::size_t(kThreads) * kPerThread);
      if (snap.count > 0) {
        EXPECT_GE(snap.mean, 0.0);
        EXPECT_LE(snap.mean, double(kThreads - 1));
      }
      (void)reg.gauges_snapshot();
      (void)reg.counters_snapshot();
    }
  });
  go.store(true);
  for (auto& t : writers) t.join();
  reader.join();

  const auto snap = reg.series_snapshot().at("hammer.series");
  EXPECT_EQ(snap.count, std::size_t(kThreads) * kPerThread);
  const double g = reg.gauge("hammer.gauge").value();
  EXPECT_GE(g, 0.0);
  EXPECT_LE(g, double(kThreads - 1));  // last write wins, whoever it was

  // reset() during (single-threaded, here) quiet time zeroes state but
  // keeps every node alive — cached references stay valid.
  ValueSeries* before = &reg.series("hammer.series");
  reg.reset();
  EXPECT_EQ(before, &reg.series("hammer.series"));
  EXPECT_EQ(reg.series_snapshot().at("hammer.series").count, 0u);
}

TEST(RegistryHammer, ResetRacesWritersWithoutCorruption) {
  auto& reg = MetricsRegistry::instance();
  Counter& cnt = reg.counter("hammer.reset.counter");
  cnt.reset();
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load()) reg.reset();
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        cnt.inc();
        reg.series("hammer.reset.series").add(1.0);
      }
    });
  for (auto& t : writers) t.join();
  stop.store(true);
  resetter.join();
  // No exact totals to claim (resets raced the writers) — the contract
  // is absence of crashes/races and a readable final state.
  EXPECT_LE(cnt.value(), u64(4) * 50000);
}

}  // namespace
}  // namespace nga::obs
