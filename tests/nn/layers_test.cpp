// Gradient checks and layer semantics for the DNN substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/data.hpp"
#include "nn/model.hpp"

namespace nga::nn {
namespace {

TEST(Layers, DenseGradientMatchesFiniteDifference) {
  util::Xoshiro256 rng(1);
  Dense d(6, 4, rng);
  Tensor x(6, 1, 1);
  for (auto& v : x.v) v = float(rng.normal());
  Exec ex;
  const int label = 2;

  // Analytic gradient of loss w.r.t. input.
  Tensor logits = d.forward(x, ex);
  Tensor dlogits;
  softmax_xent(logits, label, &dlogits);
  const Tensor dx = d.backward(dlogits);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.v.size(); ++i) {
    Tensor xp = x, xm = x;
    xp.v[i] += eps;
    xm.v[i] -= eps;
    const float lp = softmax_xent(d.forward(xp, ex), label, nullptr);
    const float lm = softmax_xent(d.forward(xm, ex), label, nullptr);
    const float num = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx.v[i], num, 2e-3) << i;
  }
}

TEST(Layers, ConvGradientMatchesFiniteDifference) {
  util::Xoshiro256 rng(2);
  Conv2D conv(2, 3, 3, 1, rng);
  GlobalAvgPool gap;
  Dense head(3, 3, rng);
  Tensor x(2, 5, 5);
  for (auto& v : x.v) v = float(rng.normal());
  Exec ex;
  const int label = 1;
  auto loss_of = [&](const Tensor& in) {
    return softmax_xent(
        head.forward(gap.forward(conv.forward(in, ex), ex), ex), label,
        nullptr);
  };
  // Analytic input gradient.
  Tensor logits = head.forward(gap.forward(conv.forward(x, ex), ex), ex);
  Tensor dlogits;
  softmax_xent(logits, label, &dlogits);
  const Tensor dx = conv.backward(gap.backward(head.backward(dlogits)));

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.v.size(); i += 7) {
    Tensor xp = x, xm = x;
    xp.v[i] += eps;
    xm.v[i] -= eps;
    const float num = (loss_of(xp) - loss_of(xm)) / (2 * eps);
    EXPECT_NEAR(dx.v[i], num, 2e-3) << i;
  }
}

TEST(Layers, ConvStrideAndPaddingShapes) {
  util::Xoshiro256 rng(3);
  Conv2D c1(3, 4, 3, 1, rng);
  Conv2D c2(3, 4, 3, 2, rng);
  Tensor x(3, 12, 12);
  Exec ex;
  const Tensor y1 = c1.forward(x, ex);
  EXPECT_EQ(y1.c, 4);
  EXPECT_EQ(y1.h, 12);
  EXPECT_EQ(y1.w, 12);
  const Tensor y2 = c2.forward(x, ex);
  EXPECT_EQ(y2.h, 6);
  EXPECT_EQ(y2.w, 6);
  EXPECT_EQ(c1.macs(), util::u64(4) * 12 * 12 * 3 * 9);
}

TEST(Layers, ResidualBlockGradientFlowsThroughSkip) {
  util::Xoshiro256 rng(4);
  ResidualBlock block(3, 3, 1, rng);
  Tensor x(3, 6, 6);
  for (auto& v : x.v) v = std::fabs(float(rng.normal()));
  Exec ex;
  const Tensor y = block.forward(x, ex);
  EXPECT_EQ(y.c, 3);
  Tensor dy = y;
  for (auto& v : dy.v) v = 1.f;
  const Tensor dx = block.backward(dy);
  // The identity skip guarantees nonzero input gradient even if the
  // convs were zero.
  double mag = 0;
  for (float v : dx.v) mag += std::fabs(v);
  EXPECT_GT(mag, 0.1);
}

TEST(Layers, MaxPoolRoutesGradientToArgmax) {
  MaxPool2 pool;
  Tensor x(1, 4, 4);
  for (int i = 0; i < 16; ++i) x.v[std::size_t(i)] = float(i);
  Exec ex;
  const Tensor y = pool.forward(x, ex);
  EXPECT_EQ(y.h, 2);
  EXPECT_EQ(y.at(0, 0, 0), 5.f);
  EXPECT_EQ(y.at(0, 1, 1), 15.f);
  Tensor dy(1, 2, 2);
  for (auto& v : dy.v) v = 1.f;
  const Tensor dx = pool.backward(dy);
  EXPECT_EQ(dx.at(0, 1, 1), 1.f);  // argmax of the first window
  EXPECT_EQ(dx.at(0, 0, 0), 0.f);
}

TEST(Layers, QuantExactCloseToFloat) {
  // After calibration, the 8-bit exact-MAC path must track the float
  // path within quantization noise.
  util::Xoshiro256 rng(5);
  Conv2D conv(3, 4, 3, 1, rng);
  Tensor x(3, 8, 8);
  for (auto& v : x.v) v = std::fabs(float(rng.normal())) * 0.3f;
  Exec fl;
  fl.calibrate = true;
  const Tensor yf = conv.forward(x, fl);
  MulTable exact;
  Exec qx;
  qx.mode = Mode::kQuantExact;
  qx.mul = &exact;
  const Tensor yq = conv.forward(x, qx);
  double max_rel = 0;
  float max_abs_y = 0;
  for (float v : yf.v) max_abs_y = std::max(max_abs_y, std::fabs(v));
  for (std::size_t i = 0; i < yf.v.size(); ++i)
    max_rel = std::max(max_rel,
                       double(std::fabs(yf.v[i] - yq.v[i])) / max_abs_y);
  EXPECT_LT(max_rel, 0.05);
}

TEST(Layers, QuantApproxDegradesWithWorseMultiplier) {
  util::Xoshiro256 rng(6);
  Conv2D conv(3, 4, 3, 1, rng);
  Tensor x(3, 8, 8);
  for (auto& v : x.v) v = std::fabs(float(rng.normal())) * 0.3f;
  Exec fl;
  fl.calibrate = true;
  const Tensor yf = conv.forward(x, fl);
  auto err_with = [&](const MulTable& t) {
    Exec q;
    q.mode = Mode::kQuantApprox;
    q.mul = &t;
    const Tensor y = conv.forward(x, q);
    double e = 0;
    for (std::size_t i = 0; i < y.v.size(); ++i)
      e += std::fabs(y.v[i] - yf.v[i]);
    return e;
  };
  const MulTable good(*ax::make_truncated(2));
  const MulTable bad(*ax::make_truncated_mitchell(1));
  EXPECT_LT(err_with(good), err_with(bad));
}

TEST(Layers, ParamCountsAndMacsForTableI) {
  Model r = make_resnet_mini(12, 7);
  Model k1 = make_kws_cnn1(16, 12, 7);
  Model k2 = make_kws_cnn2(16, 12, 7);
  // Table I ordering: ResNet > KWS-CNN2 > KWS-CNN1 in params and MACs.
  EXPECT_GT(r.param_count(), k2.param_count());
  EXPECT_GT(k2.param_count(), k1.param_count());
  // MACs are counted during forward.
  Exec ex;
  Tensor img(3, 12, 12), kws(1, 16, 12);
  r.forward(img, ex);
  k1.forward(kws, ex);
  k2.forward(kws, ex);
  EXPECT_GT(r.macs(), k2.macs());
  EXPECT_GT(k2.macs(), k1.macs());
  // KWS-CNN2 / KWS-CNN1 params ratio ~2.5x like the paper's 179k/70k.
  const double ratio = double(k2.param_count()) / double(k1.param_count());
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 4.0);
}

}  // namespace
}  // namespace nga::nn
