// Snapshot/restore round-trip and — the regression this pins — the
// corrupted-snapshot diagnostics: a mismatched snapshot must throw an
// error naming the model, layer, and buffer, and must not leave the
// model half-restored.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "nn/data.hpp"
#include "nn/model.hpp"

namespace nga::nn {
namespace {

Model tiny() { return make_resnet_mini(8, 3); }

TEST(Snapshot, RoundTripRestoresExactWeights) {
  Model a = tiny();
  Dataset d = make_synth_images(32, 8, 1);
  TrainConfig cfg;
  cfg.epochs = 1;
  train(a, d, cfg);
  const auto snap = a.snapshot();

  train(a, d, cfg);  // diverge
  EXPECT_NE(a.snapshot(), snap);
  a.restore(snap);
  EXPECT_EQ(a.snapshot(), snap);
}

TEST(Snapshot, WrongBufferCountNamesModelAndCounts) {
  Model a = tiny();
  auto snap = a.snapshot();
  snap.pop_back();
  try {
    a.restore(snap);
    FAIL() << "restore accepted a truncated snapshot";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(a.name()), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(snap.size() + 1)), std::string::npos)
        << msg;
    EXPECT_NE(msg.find(std::to_string(snap.size())), std::string::npos)
        << msg;
  }
}

TEST(Snapshot, WrongBufferShapeNamesLayerAndBuffer) {
  Model a = tiny();
  auto snap = a.snapshot();
  ASSERT_GT(snap.size(), 2u);
  const std::size_t victim = 2;
  snap[victim].push_back(0.f);  // corrupt one buffer's shape
  try {
    a.restore(snap);
    FAIL() << "restore accepted a resized buffer";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("layer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("buffer"), std::string::npos) << msg;
    EXPECT_NE(msg.find(a.name()), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(snap[victim].size())),
              std::string::npos)
        << msg;
  }
}

TEST(Snapshot, FailedRestoreLeavesModelUntouched) {
  Model a = tiny();
  const auto before = a.snapshot();
  auto bad = before;
  bad.back().pop_back();  // last buffer short by one float
  EXPECT_THROW(a.restore(bad), std::invalid_argument);
  // Validation happens before any mutation: weights are intact even
  // though only the *last* buffer was corrupt.
  EXPECT_EQ(a.snapshot(), before);
}

}  // namespace
}  // namespace nga::nn
