// LayerHealthRecorder: per-layer attribution of the numeric-health
// counters across a Model::forward with Exec::health set.
#include "nn/health.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/model.hpp"
#include "obs/obs.hpp"

namespace nga::nn {
namespace {

Model make_model() {
  util::Xoshiro256 rng(11);
  Model m("health-test");
  m.add(std::make_unique<Dense>(3 * 4 * 4, 8, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(8, 4, rng));
  return m;
}

Tensor make_input() {
  Tensor x(3, 4, 4);
  util::Xoshiro256 rng(13);
  for (auto& v : x.v) v = std::fabs(float(rng.normal())) * 0.3f;
  return x;
}

TEST(LayerHealth, LayersTrackForwardTopologyInOrder) {
  Model m = make_model();
  const Tensor x = make_input();
  Exec fl;
  fl.calibrate = true;
  (void)m.forward(x, fl);

  MulTable exact;
  LayerHealthRecorder rec;
  Exec q;
  q.mode = Mode::kQuantExact;
  q.mul = &exact;
  q.health = &rec;
  (void)m.forward(x, q);

  ASSERT_EQ(rec.layers().size(), 3u);
  EXPECT_EQ(rec.layers()[0].first, "0.dense");
  EXPECT_EQ(rec.layers()[1].first, "1.relu");
  EXPECT_EQ(rec.layers()[2].first, "2.dense");
}

#if NGA_OBS
TEST(LayerHealth, QuantMacsAttributeToTheLayersThatRanThem) {
  Model m = make_model();
  const Tensor x = make_input();
  Exec fl;
  fl.calibrate = true;
  (void)m.forward(x, fl);

  MulTable exact;
  LayerHealthRecorder rec;
  Exec q;
  q.mode = Mode::kQuantExact;
  q.mul = &exact;
  q.health = &rec;
  (void)m.forward(x, q);

  // Dense(48->8) runs 48*8 MACs, Dense(8->4) runs 8*4; ReLU runs none.
  EXPECT_EQ(rec.layers()[0].second.macs, 48u * 8u);
  EXPECT_EQ(rec.layers()[1].second.macs, 0u);
  EXPECT_EQ(rec.layers()[2].second.macs, 8u * 4u);
  EXPECT_EQ(rec.total().macs, 48u * 8u + 8u * 4u);

  // A second forward accumulates into the same slots; reset() zeroes
  // the counts but keeps the topology.
  (void)m.forward(x, q);
  EXPECT_EQ(rec.total().macs, 2u * (48u * 8u + 8u * 4u));
  rec.reset();
  EXPECT_EQ(rec.layers().size(), 3u);
  EXPECT_EQ(rec.total().macs, 0u);
}
#endif  // NGA_OBS

TEST(LayerHealth, NullHealthPointerIsANoOp) {
  Model m = make_model();
  const Tensor x = make_input();
  Exec fl;
  fl.calibrate = true;
  (void)m.forward(x, fl);  // Exec::health defaults to nullptr
  SUCCEED();
}

}  // namespace
}  // namespace nga::nn
