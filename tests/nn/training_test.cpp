// End-to-end training behaviour: float convergence, quantized accuracy
// drop, approximate-multiplier degradation and recovery (the Fig. 5
// mechanics, at test scale).
#include <gtest/gtest.h>

#include "nn/data.hpp"
#include "nn/model.hpp"

namespace nga::nn {
namespace {

TEST(Training, KwsCnnLearnsSyntheticKeywords) {
  const auto train_set = make_synth_kws(300, 16, 12, 1);
  const auto test_set = make_synth_kws(150, 16, 12, 2);
  Model m = make_kws_cnn1(16, 12, 3);
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.lr = 0.08f;
  cfg.lr_late = 0.03f;
  cfg.seed = 4;
  train(m, train_set, cfg);
  const auto r = evaluate(m, test_set, Mode::kFloat);
  EXPECT_GT(r.accuracy, 0.8) << "float training should master the task";
}

TEST(Training, ResnetMiniLearnsSyntheticImages) {
  const auto train_set = make_synth_images(240, 12, 5);
  const auto test_set = make_synth_images(120, 12, 6);
  Model m = make_resnet_mini(12, 7);
  TrainConfig cfg;
  cfg.epochs = 16;
  cfg.lr = 0.04f;
  cfg.lr_late = 0.015f;
  cfg.seed = 8;
  train(m, train_set, cfg);
  const auto r = evaluate(m, test_set, Mode::kFloat);
  EXPECT_GT(r.accuracy, 0.75);
}

TEST(Training, QuantizationCostsLittleAccuracy) {
  const auto train_set = make_synth_kws(300, 16, 12, 10);
  const auto test_set = make_synth_kws(150, 16, 12, 11);
  Model m = make_kws_cnn1(16, 12, 12);
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.lr = 0.08f;
  cfg.lr_late = 0.03f;
  cfg.seed = 13;
  train(m, train_set, cfg);
  calibrate(m, train_set, 64);
  const auto rf = evaluate(m, test_set, Mode::kFloat);
  MulTable exact;
  const auto rq = evaluate(m, test_set, Mode::kQuantExact, &exact);
  // Table I: 8-bit accuracy within ~1 point of float.
  EXPECT_GT(rq.accuracy, rf.accuracy - 0.05);
}

TEST(Training, ApproximateMultiplierDegradesThenRecovers) {
  // The Fig. 5 mechanism in miniature: a high-MRE multiplier knocks
  // accuracy down; approximate retraining (approx forward, accurate
  // gradients) recovers much of it.
  const auto train_set = make_synth_kws(300, 16, 12, 20);
  const auto test_set = make_synth_kws(150, 16, 12, 21);
  Model m = make_kws_cnn1(16, 12, 22);
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.lr = 0.08f;
  cfg.lr_late = 0.03f;
  cfg.seed = 23;
  train(m, train_set, cfg);
  calibrate(m, train_set, 64);
  MulTable exact;
  const double q_acc = evaluate(m, test_set, Mode::kQuantExact, &exact).accuracy;

  const MulTable rough(*ax::make_truncated_mitchell(1));
  const double approx_acc =
      evaluate(m, test_set, Mode::kQuantApprox, &rough).accuracy;
  EXPECT_LT(approx_acc, q_acc + 0.01);

  TrainConfig re;
  re.epochs = 4;
  re.lr = 0.03f;
  re.seed = 24;
  re.mode = Mode::kQuantApprox;
  re.mul = &rough;
  train(m, train_set, re);
  const double recovered =
      evaluate(m, test_set, Mode::kQuantApprox, &rough).accuracy;
  EXPECT_GT(recovered, approx_acc - 0.02);
  EXPECT_GT(recovered, 0.5);
}

TEST(Training, AugmentationFunctionsPreserveShape) {
  util::Xoshiro256 rng(30);
  Tensor img(3, 8, 8);
  for (auto& v : img.v) v = rng.uniform();
  Tensor copy = img;
  augment_flip(img, rng);
  EXPECT_EQ(img.v.size(), copy.v.size());
  Tensor kws(1, 16, 12);
  for (auto& v : kws.v) v = rng.uniform();
  Tensor kcopy = kws;
  augment_background_noise(kws, rng);
  // Bounded perturbation: 10% volume.
  float maxd = 0;
  for (std::size_t i = 0; i < kws.v.size(); ++i)
    maxd = std::max(maxd, std::fabs(kws.v[i] - kcopy.v[i]));
  EXPECT_GT(maxd, 0.0f);
  EXPECT_LT(maxd, 0.5f);
}

TEST(Training, DatasetsAreDeterministicBySeed) {
  const auto a = make_synth_images(10, 12, 42);
  const auto b = make_synth_images(10, 12, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].x.v, b[i].x.v);
  }
}

TEST(Training, SoftmaxXentBasics) {
  Tensor logits(3, 1, 1);
  logits.v = {0.f, 10.f, 0.f};
  Tensor d;
  const float loss_good = softmax_xent(logits, 1, &d);
  EXPECT_LT(loss_good, 0.01f);
  EXPECT_LT(d.v[1], 0.f);  // pushes the true class up
  const float loss_bad = softmax_xent(logits, 0, nullptr);
  EXPECT_GT(loss_bad, 5.f);
}

}  // namespace
}  // namespace nga::nn
