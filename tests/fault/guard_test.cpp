// End-to-end fault flow: injected faults traversing the real arithmetic
// paths, the detectors catching them, and ResilienceGuard degrading a
// guarded inference run onto the exact multiplier.
//
// The arithmetic-path cases need the NGA_FAULT hooks compiled in and
// skip themselves in NGA_FAULT=OFF builds; the guard state-machine
// cases drive the counters directly and run everywhere.
#include <gtest/gtest.h>

#include <span>

#include "fault/fault.hpp"
#include "nn/data.hpp"
#include "nn/model.hpp"
#include "nn/resilience.hpp"
#include "posit/posit.hpp"
#include "posit/resilient.hpp"

namespace nga {
namespace {

using fault::FaultPlan;
using fault::Injector;
using fault::Model;
using fault::Site;
using ps::posit16;
using util::u64;

class FaultScope {
 public:
  FaultScope(const FaultPlan& plan, u64 seed) {
    Injector::instance().arm(plan, seed);
  }
  ~FaultScope() { Injector::instance().disarm(); }
};

TEST(GuardStateMachine, TripsOnDetectedThresholdAndStaysDegraded) {
  nn::GuardThresholds thr;
  thr.detected = 3;
  nn::ResilienceGuard g(nullptr, thr);
  auto& det = obs::MetricsRegistry::instance().counter("fault.detected");

  g.begin_layer();
  det.inc(2);
  EXPECT_FALSE(g.layer_tripped());  // below threshold

  g.begin_layer();
  det.inc(3);
  EXPECT_TRUE(g.layer_tripped());
  g.enter_degraded("conv");
  EXPECT_TRUE(g.degraded());
  EXPECT_EQ(g.report().trips, 1u);
  EXPECT_EQ(g.report().first_tripped_layer, "conv");

  // Degraded mode is sticky and stops watching.
  g.begin_layer();
  det.inc(100);
  EXPECT_FALSE(g.layer_tripped());

  g.reset();
  EXPECT_FALSE(g.degraded());
  EXPECT_EQ(g.report().trips, 0u);
}

TEST(GuardStateMachine, NarThresholdTripsToo) {
  nn::GuardThresholds thr;
  thr.detected = 0;  // disabled
  thr.nar = 2;
  nn::ResilienceGuard g(nullptr, thr);
  auto& nar = obs::MetricsRegistry::instance().counter("posit.nar");
  g.begin_layer();
  nar.inc(1);
  EXPECT_FALSE(g.layer_tripped());
  g.begin_layer();
  nar.inc(2);
  EXPECT_TRUE(g.layer_tripped());
}

TEST(ResilientDot, FallsBackOnNarPoisonAndSkipsNarTerms) {
  std::vector<posit16> a, b;
  for (int i = 1; i <= 8; ++i) {
    a.push_back(posit16(double(i)));
    b.push_back(posit16(1.0));
  }
  ps::ResilientDotStats st;
  const posit16 clean = ps::resilient_dot<16, 1>(a, b, &st);
  EXPECT_FALSE(st.fell_back);
  EXPECT_DOUBLE_EQ(clean.to_double(), 36.0);

  a[3] = posit16::nar();  // poisoned term
  const posit16 recovered = ps::resilient_dot<16, 1>(a, b, &st);
  EXPECT_TRUE(st.fell_back);
  EXPECT_EQ(st.skipped, 1u);
  EXPECT_FALSE(recovered.is_nar());
  EXPECT_DOUBLE_EQ(recovered.to_double(), 32.0);  // 36 - the dropped 4
}

#if NGA_FAULT

TEST(FaultFlow, PositEncodeBitflipChangesResults) {
  FaultPlan p;
  p.inject(Site::kPositEncode, Model::kBitFlip, 1.0);
  FaultScope scope(p, 42);
  // Every rounding now takes a bit flip; the sum of two representable
  // values must come back corrupted (flips always change the encoding).
  const posit16 x = posit16::from_bits(0x1234);
  const posit16 faulty = x + x;
  Injector::instance().disarm();
  const posit16 exact = x + x;
  EXPECT_NE(faulty.bits(), exact.bits());
  EXPECT_GT(Injector::instance().totals(Site::kPositEncode).injected, 0u);
}

TEST(FaultFlow, QuireOpSkipDropsAccumulations) {
  FaultPlan p;
  p.inject(Site::kQuireAccumulate, Model::kOpSkip, 1.0);
  FaultScope scope(p, 7);
  ps::quire<16, 1> q;
  for (int i = 0; i < 16; ++i)
    q.add_product(posit16(1.0), posit16(1.0));
  EXPECT_TRUE(q.is_zero());  // every accumulate was skipped
  EXPECT_EQ(Injector::instance().totals(Site::kQuireAccumulate).injected,
            16u);
}

TEST(FaultFlow, ExactMulTableIsTheGoldenUnit) {
  FaultPlan p;
  p.inject(Site::kNnMul, Model::kBitFlip, 1.0);
  FaultScope scope(p, 3);
  const nn::MulTable exact;
  // Faults model the approximate multiplier unit; the exact table is
  // the fallback hardware and must stay clean.
  for (unsigned a = 0; a < 256; a += 17)
    for (unsigned b = 0; b < 128; b += 11)
      EXPECT_EQ(exact.mul(nn::u8(a), nn::u8(b)), a * b);
  EXPECT_EQ(Injector::instance().totals(Site::kNnMul).injected, 0u);

  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  for (unsigned a = 0; a < 256; a += 17)
    for (unsigned b = 0; b < 128; b += 11)
      (void)approx.mul(nn::u8(a), nn::u8(b));
  EXPECT_GT(Injector::instance().totals(Site::kNnMul).injected, 0u);
}

TEST(FaultFlow, GuardedInferenceRecoversAccuracy) {
  // A small trained net, an aggressive MAC fault rate: unguarded
  // accuracy collapses, the guarded run degrades onto the exact table
  // and lands near the fault-free result. (The full curve is
  // bench/fault_sweep.cpp; this is the smoke version.)
  nn::Dataset train = nn::make_synth_images(160, 10, 1);
  nn::Dataset test = nn::make_synth_images(80, 10, 2);
  nn::Model m = nn::make_resnet_mini(10, 5);
  nn::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.seed = 9;
  nn::train(m, train, cfg);
  nn::calibrate(m, train, 64);

  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());  // lowest-MRE stand-in
  const nn::MulTable exact;

  const double clean =
      nn::evaluate(m, test, nn::Mode::kQuantApprox, &approx).accuracy;

  FaultPlan p;
  p.inject(Site::kNnMul, Model::kBitFlip, 0.02);
  const double faulty = [&] {
    FaultScope scope(p, 77);
    return nn::evaluate(m, test, nn::Mode::kQuantApprox, &approx).accuracy;
  }();

  const auto [guarded, report] = [&] {
    FaultScope scope(p, 77);
    nn::ResilienceGuard g(&exact);
    const double acc =
        nn::evaluate(m, test, nn::Mode::kQuantApprox, &approx, &g).accuracy;
    return std::make_pair(acc, g.report());
  }();

  EXPECT_LT(faulty, clean - 0.04) << "fault rate too gentle for the test";
  EXPECT_TRUE(report.degraded);
  EXPECT_GE(report.recovered_layers, 1u);
  EXPECT_GT(guarded, faulty);
  EXPECT_NEAR(guarded, clean, 0.02);
}

#else  // !NGA_FAULT

TEST(FaultFlow, HooksCompiledOut) {
  GTEST_SKIP() << "NGA_FAULT=OFF: arithmetic-path hooks are compiled out";
}

#endif  // NGA_FAULT

}  // namespace
}  // namespace nga
