// nga::fault unit tests: plan parsing, fault models, and — the load-
// bearing property — determinism: same (plan, seed) => bit-identical
// fault sequence and identical counter totals, run after run.
//
// These tests drive the Injector class directly, so they hold in both
// NGA_FAULT=ON and OFF builds (the build option gates only the hooks
// compiled into the arithmetic kernels).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/registry.hpp"

namespace nga::fault {
namespace {

FaultPlan nnmul_plan(Model m, double rate) {
  FaultPlan p;
  p.inject(Site::kNnMul, m, rate);
  return p;
}

TEST(FaultPlan, ParseRoundTrip) {
  FaultPlan p;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "nn.mul:bitflip:0.001,quire.accumulate:opskip:0.5", p, &err))
      << err;
  EXPECT_TRUE(p.spec(Site::kNnMul).enabled);
  EXPECT_EQ(p.spec(Site::kNnMul).model, Model::kBitFlip);
  EXPECT_DOUBLE_EQ(p.spec(Site::kNnMul).rate, 0.001);
  EXPECT_TRUE(p.spec(Site::kQuireAccumulate).enabled);
  EXPECT_EQ(p.spec(Site::kQuireAccumulate).model, Model::kOpSkip);
  EXPECT_FALSE(p.spec(Site::kPositDecode).enabled);

  FaultPlan q;
  ASSERT_TRUE(FaultPlan::parse(p.describe(), q, &err)) << err;
  EXPECT_EQ(p.describe(), q.describe());
}

TEST(FaultPlan, MemflipDescribeParseRoundTrip) {
  // Bare memflip (random page/bit per fire), with the sticky-victim
  // suffix the soak bench uses.
  FaultPlan p;
  p.inject(Site::kNnMul, Model::kMemFlip, 0.0);
  p.with_sticky(Site::kNnMul, 1e-4);
  FaultPlan q;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(p.describe(), q, &err)) << p.describe()
                                                       << ": " << err;
  EXPECT_EQ(p.describe(), q.describe());
  EXPECT_EQ(q.spec(Site::kNnMul).model, Model::kMemFlip);
  EXPECT_EQ(q.spec(Site::kNnMul).mem_page, -1);
  EXPECT_EQ(q.spec(Site::kNnMul).mem_bit, -1);
  EXPECT_TRUE(q.spec(Site::kNnMul).sticky);
  EXPECT_DOUBLE_EQ(q.spec(Site::kNnMul).sticky_rate, 1e-4);

  // Pinned target memflip(PAGE,BIT): a single stuck cell.
  FaultPlan r;
  ASSERT_TRUE(FaultPlan::parse("nn.mul:memflip(7,513):0.001", r, &err)) << err;
  EXPECT_EQ(r.spec(Site::kNnMul).model, Model::kMemFlip);
  EXPECT_EQ(r.spec(Site::kNnMul).mem_page, 7);
  EXPECT_EQ(r.spec(Site::kNnMul).mem_bit, 513);
  FaultPlan r2;
  ASSERT_TRUE(FaultPlan::parse(r.describe(), r2, &err)) << r.describe()
                                                        << ": " << err;
  EXPECT_EQ(r.describe(), r2.describe());
  EXPECT_EQ(r2.spec(Site::kNnMul).mem_page, 7);
  EXPECT_EQ(r2.spec(Site::kNnMul).mem_bit, 513);
}

TEST(FaultPlan, MemflipParseRejectsMalformed) {
  FaultPlan p;
  std::string err;
  for (const char* bad :
       {"nn.mul:memflip(7:0.001", "nn.mul:memflip(7,):0.001",
        "nn.mul:memflip(,3):0.001", "nn.mul:memflip(-1,3):0.001",
        "nn.mul:memflip(a,b):0.001", "nn.mul:memflip(1,2,3):0.001"}) {
    EXPECT_FALSE(FaultPlan::parse(bad, p, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlan, ParseRejectsMalformed) {
  FaultPlan p;
  std::string err;
  for (const char* bad :
       {"nn.mul", "nn.mul:bitflip", "bogus.site:bitflip:0.1",
        "nn.mul:bogus:0.1", "nn.mul:bitflip:nope", "nn.mul:bitflip:1.5",
        "nn.mul:bitflip:-0.1"}) {
    EXPECT_FALSE(FaultPlan::parse(bad, p, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
  // Empty spec = valid, empty plan.
  EXPECT_TRUE(FaultPlan::parse("", p, &err));
  EXPECT_FALSE(p.any_enabled());
}

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kSiteCount; ++i)
    EXPECT_EQ(site_from_name(site_name(Site(i))), Site(i));
  EXPECT_EQ(site_from_name("not.a.site"), Site::kCount);
}

TEST(Injector, DisarmedIsIdentity) {
  auto& inj = Injector::instance();
  inj.disarm();
  for (u64 v : {u64{0}, u64{0xdeadbeef}, ~u64{0}}) {
    EXPECT_EQ(inj.filter_bits(Site::kNnMul, 16, v), v);
    EXPECT_FALSE(inj.filter_skip(Site::kQuireAccumulate));
  }
}

TEST(Injector, ZeroRateNeverFires) {
  auto& inj = Injector::instance();
  inj.arm(nnmul_plan(Model::kBitFlip, 0.0), 1);
  EXPECT_FALSE(inj.armed());  // a zero-rate plan never needs arming
  inj.disarm();
}

TEST(Injector, RateOneAlwaysFires) {
  auto& inj = Injector::instance();
  inj.arm(nnmul_plan(Model::kBitFlip, 1.0), 7);
  for (int i = 0; i < 100; ++i) {
    const u64 out = inj.filter_bits(Site::kNnMul, 16, 0x1234);
    EXPECT_NE(out, u64{0x1234});  // a bit flip always changes the value
    EXPECT_LT(out, u64{1} << 16);  // and stays inside the declared width
  }
  EXPECT_EQ(inj.totals(Site::kNnMul).injected, 100u);
  EXPECT_EQ(inj.totals(Site::kNnMul).masked, 0u);
  inj.disarm();
}

TEST(Injector, StuckAtModelsMaskWhenBitAlreadyThere) {
  auto& inj = Injector::instance();
  inj.arm(nnmul_plan(Model::kStuckAt0, 1.0), 3);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(inj.filter_bits(Site::kNnMul, 16, 0), u64{0});
  auto t0 = inj.totals(Site::kNnMul);
  EXPECT_EQ(t0.injected, 64u);
  EXPECT_EQ(t0.masked, 64u);  // clearing a zero bit changes nothing

  inj.arm(nnmul_plan(Model::kStuckAt1, 1.0), 3);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(inj.filter_bits(Site::kNnMul, 16, 0xffff), u64{0xffff});
  auto t1 = inj.totals(Site::kNnMul);
  EXPECT_EQ(t1.injected, 64u);
  EXPECT_EQ(t1.masked, 64u);  // setting a one bit changes nothing
  inj.disarm();
}

TEST(Injector, OpSkipOnlyAffectsSkipFilter) {
  auto& inj = Injector::instance();
  FaultPlan p;
  p.inject(Site::kQuireAccumulate, Model::kOpSkip, 1.0);
  inj.arm(p, 11);
  EXPECT_TRUE(inj.filter_skip(Site::kQuireAccumulate));
  // A bits filter at an op-skip site is a no-op, and other sites are
  // untouched entirely.
  EXPECT_EQ(inj.filter_bits(Site::kQuireAccumulate, 16, 0xabc), u64{0xabc});
  EXPECT_EQ(inj.filter_bits(Site::kNnMul, 16, 0xabc), u64{0xabc});
  EXPECT_FALSE(inj.filter_skip(Site::kNnMul));
  inj.disarm();
}

// The determinism contract (ISSUE acceptance): same seed + same plan
// => bit-identical fault sequence and identical counters.
TEST(InjectorDeterminism, SameSeedSamePlanSameSequence) {
  auto& inj = Injector::instance();
  const FaultPlan plan = nnmul_plan(Model::kBitFlip, 0.37);

  auto run = [&](u64 seed) {
    inj.arm(plan, seed);
    std::vector<u64> seq;
    for (u64 i = 0; i < 4096; ++i)
      seq.push_back(inj.filter_bits(Site::kNnMul, 16, i & 0xffff));
    auto t = inj.totals(Site::kNnMul);
    inj.disarm();
    return std::make_pair(seq, t);
  };

  const auto [seq_a, tot_a] = run(12345);
  const auto [seq_b, tot_b] = run(12345);
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_EQ(tot_a.injected, tot_b.injected);
  EXPECT_EQ(tot_a.masked, tot_b.masked);
  EXPECT_EQ(tot_a.events, tot_b.events);
  EXPECT_GT(tot_a.injected, 0u);

  const auto [seq_c, tot_c] = run(54321);
  EXPECT_NE(seq_a, seq_c);  // different seed, different faults
}

TEST(InjectorDeterminism, SitesDrawIndependentStreams) {
  // Interleaving events from a second site must not perturb the first
  // site's sequence: per-site RNG streams are independent.
  auto& inj = Injector::instance();
  FaultPlan two;
  two.inject(Site::kNnMul, Model::kBitFlip, 0.25);
  two.inject(Site::kSoftfloatPack, Model::kBitFlip, 0.25);

  inj.arm(two, 99);
  std::vector<u64> solo;
  for (u64 i = 0; i < 512; ++i)
    solo.push_back(inj.filter_bits(Site::kNnMul, 16, 0x00ff));

  inj.arm(two, 99);
  std::vector<u64> interleaved;
  for (u64 i = 0; i < 512; ++i) {
    (void)inj.filter_bits(Site::kSoftfloatPack, 16, 0xf0f0);
    interleaved.push_back(inj.filter_bits(Site::kNnMul, 16, 0x00ff));
  }
  inj.disarm();
  EXPECT_EQ(solo, interleaved);
}

TEST(InjectorDeterminism, CountersMirrorIntoObsRegistry) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& inj = Injector::instance();
  const u64 before = reg.counter("fault.nn.mul.injected").value();
  const u64 before_all = reg.counter("fault.injected").value();
  inj.arm(nnmul_plan(Model::kBitFlip, 1.0), 5);
  for (int i = 0; i < 10; ++i) (void)inj.filter_bits(Site::kNnMul, 16, 1);
  inj.disarm();
  EXPECT_EQ(reg.counter("fault.nn.mul.injected").value(), before + 10);
  EXPECT_EQ(reg.counter("fault.injected").value(), before_all + 10);
}

TEST(Injector, RatesAreApproximatelyHonoured) {
  auto& inj = Injector::instance();
  inj.arm(nnmul_plan(Model::kBitFlip, 0.01), 2024);
  const u64 n = 200000;
  for (u64 i = 0; i < n; ++i) (void)inj.filter_bits(Site::kNnMul, 16, 7);
  const double observed =
      double(inj.totals(Site::kNnMul).injected) / double(n);
  inj.disarm();
  EXPECT_NEAR(observed, 0.01, 0.002);
}

}  // namespace
}  // namespace nga::fault
