#include "intformats/intformats.hpp"

#include <gtest/gtest.h>

namespace nga::intf {
namespace {

using util::i64;
using util::u64;

TEST(SignMagnitude, EncodeDecode) {
  EXPECT_EQ(SignMagnitude::encode(5, 8).bits, 0x05u);
  EXPECT_EQ(SignMagnitude::encode(-5, 8).bits, 0x85u);
  EXPECT_EQ(SignMagnitude::encode(5, 8).value(), 5);
  EXPECT_EQ(SignMagnitude::encode(-5, 8).value(), -5);
  // The paper's example: -5 is human-readable 1000_0101 in SM but
  // 1111_1011 in 2C.
  EXPECT_EQ(SignMagnitude::encode(-5, 8).bits, 0b10000101u);
  EXPECT_EQ(u64(util::twos_complement(5, 8)), 0b11111011u);
}

TEST(SignMagnitude, RedundantZero) {
  const SignMagnitude pz{0x00, 8}, nz{0x80, 8};
  EXPECT_EQ(pz.value(), 0);
  EXPECT_EQ(nz.value(), 0);
  EXPECT_TRUE(nz.is_negative_zero());
  EXPECT_NE(pz.bits, nz.bits);
  EXPECT_TRUE(sm_equal(pz, nz));  // requires the special case
  EXPECT_FALSE(sm_less(pz, nz));
  EXPECT_FALSE(sm_less(nz, pz));
  EXPECT_EQ(sm_distinct_values(8), 255u);
  EXPECT_EQ(tc_distinct_values(8), 256u);
}

TEST(SignMagnitude, AddAlgorithmExhaustive8) {
  // The paper's branchy algorithm must be value-correct wherever the
  // magnitude doesn't overflow.
  for (u64 x = 0; x < 256; ++x)
    for (u64 y = 0; y < 256; ++y) {
      const SignMagnitude a{x, 8}, b{y, 8};
      const auto r = sm_add(a, b);
      if (r.overflow) continue;
      EXPECT_EQ(r.sum.value(), a.value() + b.value())
          << a.value() << "+" << b.value();
      EXPECT_GE(r.branches_taken, 1);
    }
}

TEST(SignMagnitude, TwosComplementAddIsOneLine) {
  for (i64 x = -128; x < 128; ++x)
    for (i64 y = -128; y < 128; ++y) {
      const u64 k = tc_add(u64(x) & 0xff, u64(y) & 0xff, 8);
      const i64 expect = util::sign_extend(u64(x + y) & 0xff, 8);
      EXPECT_EQ(util::sign_extend(k, 8), expect);
    }
}

TEST(IntAdders, TcAdderExhaustive) {
  const auto nl = build_tc_adder(6);
  for (u64 x = 0; x < 64; ++x)
    for (u64 y = 0; y < 64; ++y)
      EXPECT_EQ(nl.eval_word(x | (y << 6)), (x + y) & 63);
}

TEST(IntAdders, SmAdderExhaustive) {
  const unsigned n = 6;
  const auto nl = build_sm_adder(n);
  for (u64 x = 0; x < 64; ++x)
    for (u64 y = 0; y < 64; ++y) {
      const SignMagnitude a{x, n}, b{y, n};
      const u64 out = nl.eval_word(x | (y << n));
      const bool overflow = (out >> n) & 1;
      const auto ref = sm_add(a, b);
      EXPECT_EQ(overflow, ref.overflow) << x << " " << y;
      if (overflow) continue;
      const SignMagnitude got{out & util::mask64(n), n};
      EXPECT_EQ(got.value(), a.value() + b.value()) << x << " " << y;
      // Canonical zero: never -0 out of the adder.
      EXPECT_FALSE(got.is_negative_zero()) << x << " " << y;
    }
}

TEST(IntAdders, SmAdderCostExceedsTcAdder) {
  // The paper's point: SM addition needs a comparator, operand steering
  // and sign logic on top of the adder. 2C needs the adder only.
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const auto tc = build_tc_adder(n).cost();
    const auto sm = build_sm_adder(n).cost();
    EXPECT_GT(sm.nand2_area, 2.0 * tc.nand2_area) << n;
    EXPECT_GE(sm.depth, tc.depth) << n;
  }
}

TEST(IntComparators, TcLessExhaustive) {
  const unsigned n = 6;
  const auto nl = build_tc_less(n);
  for (u64 x = 0; x < 64; ++x)
    for (u64 y = 0; y < 64; ++y) {
      const i64 a = util::sign_extend(x, n), b = util::sign_extend(y, n);
      EXPECT_EQ(nl.eval_word(x | (y << n)), u64(a < b)) << a << " " << b;
    }
}

TEST(IntComparators, SmLessExhaustive) {
  const unsigned n = 6;
  const auto nl = build_sm_less(n);
  for (u64 x = 0; x < 64; ++x)
    for (u64 y = 0; y < 64; ++y) {
      const SignMagnitude a{x, n}, b{y, n};
      EXPECT_EQ(nl.eval_word(x | (y << n)), u64(sm_less(a, b)))
          << a.value() << " " << b.value();
    }
}

TEST(IntComparators, SmComparatorCostsMore) {
  for (unsigned n : {8u, 16u}) {
    const auto tc = build_tc_less(n).cost();
    const auto sm = build_sm_less(n).cost();
    EXPECT_GT(sm.nand2_area, tc.nand2_area) << n;
  }
}

}  // namespace
}  // namespace nga::intf
