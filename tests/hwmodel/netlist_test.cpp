#include "hwmodel/netlist.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nga::hw {
namespace {

using util::u64;

TEST(Netlist, BasicGates) {
  Netlist nl;
  const int a = nl.add_input();
  const int b = nl.add_input();
  nl.mark_output(nl.and_(a, b));
  nl.mark_output(nl.or_(a, b));
  nl.mark_output(nl.xor_(a, b));
  nl.mark_output(nl.nand_(a, b));
  nl.mark_output(nl.andnot_(a, b));
  for (u64 in = 0; in < 4; ++in) {
    const u64 out = nl.eval_word(in);
    const bool x = in & 1, y = (in >> 1) & 1;
    EXPECT_EQ(out & 1, u64(x && y));
    EXPECT_EQ((out >> 1) & 1, u64(x || y));
    EXPECT_EQ((out >> 2) & 1, u64(x != y));
    EXPECT_EQ((out >> 3) & 1, u64(!(x && y)));
    EXPECT_EQ((out >> 4) & 1, u64(x && !y));
  }
}

TEST(Netlist, MuxAndMajority) {
  Netlist nl;
  const int a = nl.add_input(), b = nl.add_input(), s = nl.add_input();
  nl.mark_output(nl.mux(a, b, s));
  nl.mark_output(nl.maj(a, b, s));
  for (u64 in = 0; in < 8; ++in) {
    const bool x = in & 1, y = (in >> 1) & 1, z = (in >> 2) & 1;
    const u64 out = nl.eval_word(in);
    EXPECT_EQ(out & 1, u64(z ? y : x));
    EXPECT_EQ((out >> 1) & 1, u64(int(x) + int(y) + int(z) >= 2));
  }
}

TEST(Netlist, RippleAdderExhaustive6Bit) {
  Netlist nl;
  std::vector<int> a(6), b(6);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  const auto sum = nl.ripple_add(a, b);
  ASSERT_EQ(sum.size(), 7u);
  for (int bit : sum) nl.mark_output(bit);
  for (u64 x = 0; x < 64; ++x)
    for (u64 y = 0; y < 64; ++y) {
      const u64 out = nl.eval_word(x | (y << 6));
      EXPECT_EQ(out, x + y);
    }
}

TEST(Netlist, NegateExhaustive) {
  Netlist nl;
  std::vector<int> a(5);
  for (auto& x : a) x = nl.add_input();
  for (int bit : nl.negate(a)) nl.mark_output(bit);
  for (u64 x = 0; x < 32; ++x)
    EXPECT_EQ(nl.eval_word(x), util::twos_complement(x, 5));
}

TEST(Netlist, ArrayMultiplierExhaustive4x4) {
  Netlist nl;
  std::vector<int> a(4), b(4);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  const auto p = nl.array_multiply(a, b);
  ASSERT_EQ(p.size(), 8u);
  for (int bit : p) nl.mark_output(bit);
  for (u64 x = 0; x < 16; ++x)
    for (u64 y = 0; y < 16; ++y)
      EXPECT_EQ(nl.eval_word(x | (y << 4)), x * y) << x << "*" << y;
}

TEST(Netlist, ArrayMultiplierAsymmetric) {
  Netlist nl;
  std::vector<int> a(3), b(5);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  const auto p = nl.array_multiply(a, b);
  ASSERT_EQ(p.size(), 8u);
  for (int bit : p) nl.mark_output(bit);
  for (u64 x = 0; x < 8; ++x)
    for (u64 y = 0; y < 32; ++y)
      EXPECT_EQ(nl.eval_word(x | (y << 3)), x * y);
}

TEST(Netlist, WidthOneMultiplier) {
  Netlist nl;
  std::vector<int> a{nl.add_input()}, b{nl.add_input()};
  const auto p = nl.array_multiply(a, b);
  ASSERT_EQ(p.size(), 2u);
  for (int bit : p) nl.mark_output(bit);
  for (u64 in = 0; in < 4; ++in)
    EXPECT_EQ(nl.eval_word(in), (in & 1) * ((in >> 1) & 1));
}

TEST(Netlist, CostGrowsWithWidth) {
  auto mult_cost = [](std::size_t w) {
    Netlist nl;
    std::vector<int> a(w), b(w);
    for (auto& x : a) x = nl.add_input();
    for (auto& x : b) x = nl.add_input();
    for (int bit : nl.array_multiply(a, b)) nl.mark_output(bit);
    return nl.cost();
  };
  const auto c4 = mult_cost(4), c8 = mult_cost(8);
  EXPECT_GT(c8.nand2_area, 3.0 * c4.nand2_area);  // ~quadratic growth
  EXPECT_GT(c8.depth, c4.depth);
  EXPECT_EQ(c4.input_count, 8u);
  EXPECT_EQ(c4.output_count, 8u);
}

TEST(Netlist, DepthOfChainIsLinear) {
  Netlist nl;
  int x = nl.add_input();
  const int y = nl.add_input();
  for (int i = 0; i < 10; ++i) x = nl.xor_(x, y);
  nl.mark_output(x);
  EXPECT_EQ(nl.cost().depth, 10);
}

TEST(Netlist, OperandOrderingEnforced) {
  Netlist nl;
  const int a = nl.add_input();
  EXPECT_THROW(nl.gate(GateOp::kAnd, a, 99), std::invalid_argument);
  EXPECT_THROW(nl.gate(GateOp::kNot, -1), std::invalid_argument);
}

TEST(Netlist, SwitchingEnergyScalesWithSize) {
  auto build = [](std::size_t w) {
    Netlist nl;
    std::vector<int> a(w), b(w);
    for (auto& x : a) x = nl.add_input();
    for (auto& x : b) x = nl.add_input();
    for (int bit : nl.array_multiply(a, b)) nl.mark_output(bit);
    return nl;
  };
  const auto small = build(4);
  const auto big = build(8);
  const double es = switching_energy(small, 500);
  const double eb = switching_energy(big, 500);
  EXPECT_GT(eb, 2.0 * es);
  EXPECT_GT(es, 0.0);
}

}  // namespace
}  // namespace nga::hw
