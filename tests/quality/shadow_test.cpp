// ShadowLane / server-integration contract:
//   * the lane never blocks a producer — at capacity it drops the
//     OLDEST job and says so in quality.shadow.dropped;
//   * shadow comparisons land in the per-tier bins and the attribution
//     dual-run charges error to named layers;
//   * the shadowed set is a pure function of (seed, id): two identical
//     runs produce byte-identical "quality" sections;
//   * exact-failover replies are never attributed to approximate-tier
//     quality bins (they would inflate agreement);
//   * sample_rate 0 leaves the quality namespace untouched — the
//     serving path must be provably unshadowed by default.
#include "quality/shadow.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "approx/multipliers.hpp"
#include "fault/fault.hpp"
#include "nn/layers.hpp"
#include "obs/obs.hpp"
#include "serve/serve.hpp"

namespace nga::quality {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr int kC = 1, kH = 4, kW = 4;

nn::Tensor make_input(int i) {
  nn::Tensor x(kC, kH, kW);
  for (std::size_t j = 0; j < x.v.size(); ++j)
    x.v[j] = float((i * 31 + int(j) * 7) % 17) / 17.f;
  return x;
}

// Same seed everywhere: the lane's replica computes the same function
// as the reference model built here.
std::unique_ptr<nn::Model> make_model() {
  util::Xoshiro256 rng(7);
  auto m = std::make_unique<nn::Model>("quality-test");
  m->add(std::make_unique<nn::Dense>(kC * kH * kW, 10, rng));
  return m;
}

std::vector<float> forward_logits(const nn::MulTable& mul, int i) {
  auto m = make_model();
  nn::Exec ex;
  ex.mode = nn::Mode::kQuantApprox;
  ex.mul = &mul;
  return m->forward(make_input(i), ex).v;
}

ShadowLaneConfig lane_config(const nn::MulTable& exact) {
  ShadowLaneConfig lc;
  lc.mode = nn::Mode::kQuantApprox;
  lc.model_factory = make_model;
  lc.exact = &exact;
  lc.quality.sample_rate = 1.0;
  lc.quality.attribution_every = 0;  // off unless a test opts in
  return lc;
}

ShadowJob make_job(int i, int tier, std::vector<float> approx_logits) {
  ShadowJob job;
  job.id = util::u64(i) + 1;
  job.x = make_input(i);
  job.approx_logits = std::move(approx_logits);
  job.tier = tier;
  return job;
}

// ------------------------------------------------------------- lane

TEST(ShadowLane, RejectsUnshadowableConfig) {
  const nn::MulTable exact;
  ShadowLaneConfig no_model = lane_config(exact);
  no_model.model_factory = nullptr;
  EXPECT_THROW(ShadowLane{std::move(no_model)}, std::invalid_argument);

  ShadowLaneConfig no_exact = lane_config(exact);
  no_exact.exact = nullptr;
  EXPECT_THROW(ShadowLane{std::move(no_exact)}, std::invalid_argument);
}

TEST(ShadowLane, DropOldestKeepsTheFreshestJobs) {
  obs::MetricsRegistry::instance().reset();
  const nn::MulTable exact;
  ShadowLaneConfig lc = lane_config(exact);
  lc.quality.queue_capacity = 4;
  ShadowLane lane(std::move(lc));

  // Enqueue BEFORE start: the queue fills deterministically. Jobs 0-5
  // (tier 0) must be displaced by jobs 6-9 (tier 1) — drop-oldest.
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(
        lane.enqueue(make_job(i, i < 6 ? 0 : 1, forward_logits(exact, i))));
  lane.start();
  lane.drain_and_stop();

  const auto st = lane.stats();
  EXPECT_EQ(st.enqueued, 10u);
  EXPECT_EQ(st.dropped, 6u);
  EXPECT_EQ(st.compared, 4u);
  EXPECT_EQ(st.queue_depth, 0u);

  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("quality.shadow.dropped").value(), 6u);
  EXPECT_EQ(reg.counter("quality.tier.1.compared").value(), 4u)
      << "the four surviving jobs are the NEWEST four";
  EXPECT_EQ(reg.counter("quality.tier.0.compared").value(), 0u)
      << "displaced jobs must not be compared";
  // The approx logits handed in WERE the exact logits: perfect
  // agreement, zero flips.
  EXPECT_EQ(reg.counter("quality.tier.1.agree").value(), 4u);
  EXPECT_EQ(reg.counter("quality.shadow.flips").value(), 0u);
  EXPECT_FALSE(lane.enqueue(make_job(11, 0, {}))) << "closed after drain";
}

TEST(ShadowLane, AttributionChargesErrorToNamedLayers) {
  obs::MetricsRegistry::instance().reset();
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  ShadowLaneConfig lc = lane_config(exact);
  lc.quality.attribution_every = 2;  // jobs 1 and 3 of 4
  lc.tier_table = [&approx](int) { return &approx; };
  ShadowLane lane(std::move(lc));
  lane.start();
  for (int i = 0; i < 4; ++i)
    lane.enqueue(make_job(i, 0, forward_logits(approx, i)));
  lane.drain_and_stop();

  const auto st = lane.stats();
  EXPECT_EQ(st.compared, 4u);
  EXPECT_EQ(st.attribution_runs, 2u) << "every 2nd comparison attributes";
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("quality.attribution.runs").value(), 2u);
  // The model is a single Dense layer: error lands on "0.dense".
  const auto s = reg.series("quality.tier.0.layer.0.dense.mre").snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_GE(s.mean, 0.0);
  // The lane timed its work: shadow spans exist for the trace export.
  EXPECT_GT(reg.section("quality.shadow.exec").value(), 0u);
  EXPECT_GT(reg.section("quality.shadow.attribution").value(), 0u);
}

// ------------------------------------------------- server integration

serve::ServerConfig shadow_server_config(const nn::MulTable& approx,
                                         const nn::MulTable& exact) {
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.max_batch = 4;
  cfg.batch_linger = microseconds(100);
  cfg.in_c = kC;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.mode = nn::Mode::kQuantApprox;
  cfg.mul = &approx;
  cfg.exact_fallback = &exact;
  cfg.model_factory = make_model;
  cfg.quality.sample_rate = 1.0;
  cfg.quality.seed = 9;
  return cfg;
}

TEST(ShadowServe, RequiresQuantModeAndExactFallback) {
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;
  auto cfg = shadow_server_config(approx, exact);
  cfg.exact_fallback = nullptr;
  EXPECT_THROW(serve::Server{cfg}, std::invalid_argument);
  cfg = shadow_server_config(approx, exact);
  cfg.mode = nn::Mode::kFloat;
  cfg.mul = nullptr;
  EXPECT_THROW(serve::Server{cfg}, std::invalid_argument);
}

TEST(ShadowServe, EveryServedRequestIsShadowedAtRateOne) {
  obs::MetricsRegistry::instance().reset();
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  serve::Server srv(shadow_server_config(approx, exact));
  srv.start();
  for (int i = 0; i < 24; ++i) {
    const auto r = srv.submit(make_input(i), milliseconds(2000)).get();
    ASSERT_EQ(r.outcome, serve::Outcome::kServed);
    EXPECT_FALSE(r.exact_path) << "no faults armed: the approx path serves";
  }
  srv.drain();

  const auto qs = srv.quality_stats();
  EXPECT_EQ(qs.enqueued, 24u);
  EXPECT_EQ(qs.dropped, 0u);
  EXPECT_EQ(qs.compared, 24u) << "drain() finishes the shadow backlog";
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("quality.shadow.sampled").value(), 24u);
  EXPECT_EQ(reg.counter("quality.shadow.skipped_exact").value(), 0u);
  EXPECT_EQ(reg.counter("quality.tier.0.compared").value(), 24u);
  EXPECT_EQ(srv.quality_slo().samples, 24u);

  // The "quality" section rides the nga-bench-v1 exposition.
  std::ostringstream ss;
  obs::write_metrics_json(ss, "shadow-test");
  EXPECT_NE(ss.str().find("\"quality\":{\"sampled\":24"), std::string::npos)
      << ss.str();
}

// Satellite: seeded determinism. The shadow sampler has no hidden
// state, the lane is a single FIFO thread, and drain() completes the
// backlog — so one (seed, id-stream) pins the entire "quality" section.
std::string quality_section_for_run(util::u64 seed) {
  obs::MetricsRegistry::instance().reset();
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  auto cfg = shadow_server_config(approx, exact);
  cfg.workers = 1;  // single worker: submission order IS service order
  cfg.quality.sample_rate = 0.5;
  cfg.quality.seed = seed;
  cfg.quality.attribution_every = 4;
  serve::Server srv(cfg);
  srv.start();
  for (int i = 0; i < 30; ++i) {
    const auto r = srv.submit(make_input(i), milliseconds(2000)).get();
    EXPECT_EQ(r.outcome, serve::Outcome::kServed);
  }
  srv.drain();
  std::ostringstream ss;
  QualityTelemetry::instance().write_json(ss);
  return ss.str();
}

TEST(ShadowServe, SeededShadowSetIsDeterministicAcrossRuns) {
  const std::string a = quality_section_for_run(42);
  const std::string b = quality_section_for_run(42);
  EXPECT_EQ(a, b) << "same seed + same id stream => byte-identical "
                     "quality section";
  const std::string c = quality_section_for_run(43);
  EXPECT_NE(a, c) << "a different seed shadows a different subset";
  // Rate 0.5 over 30 ids: some but not all shadowed. The section opens
  // with {"sampled":N, — read N back out.
  const std::string prefix = "{\"sampled\":";
  ASSERT_EQ(a.rfind(prefix, 0), 0u) << a;
  const int sampled = std::stoi(a.substr(prefix.size()));
  EXPECT_GT(sampled, 0) << a;
  EXPECT_LT(sampled, 30) << a;
}

TEST(ShadowServe, RateZeroLeavesTheQualityNamespaceUntouched) {
  auto& reg = obs::MetricsRegistry::instance();
  const auto counters_before = reg.counters_snapshot();
  const auto gauges_before = reg.gauges_snapshot();
  const auto series_before = reg.series_snapshot();

  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;
  auto cfg = shadow_server_config(approx, exact);
  cfg.quality = QualityConfig{};  // default: sample_rate 0
  serve::Server srv(cfg);
  srv.start();
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(srv.submit(make_input(i), milliseconds(2000)).get().outcome,
              serve::Outcome::kServed);
  srv.drain();

  const auto qs = srv.quality_stats();
  EXPECT_EQ(qs.enqueued + qs.dropped + qs.compared, 0u);
  // No quality.* family appeared and none moved: byte-for-byte the same
  // counters, gauges and series as before the server existed.
  const auto counters_after = reg.counters_snapshot();
  const auto gauges_after = reg.gauges_snapshot();
  const auto series_after = reg.series_snapshot();
  const auto only_quality = [](const auto& m) {
    std::map<std::string, std::string> out;
    for (const auto& [k, v] : m)
      if (k.rfind("quality.", 0) == 0) {
        std::ostringstream os;
        if constexpr (std::is_same_v<std::decay_t<decltype(v)>,
                                     obs::SeriesSnapshot>)
          os << v.count << ":" << v.mean << ":" << v.max;
        else
          os << v;
        out[k] = os.str();
      }
    return out;
  };
  EXPECT_EQ(only_quality(counters_before), only_quality(counters_after));
  EXPECT_EQ(only_quality(gauges_before), only_quality(gauges_after));
  EXPECT_EQ(only_quality(series_before), only_quality(series_after));
}

#if NGA_FAULT

// Satellite: replies that failed over to the golden exact table are
// NOT quality samples for the approximate tier — counting them would
// inflate per-tier agreement with comparisons of exact against exact.
TEST(ShadowServe, ExactFailoverIsExcludedFromTierBins) {
  obs::MetricsRegistry::instance().reset();
  const auto mults = ax::table2_multipliers();
  const nn::MulTable approx(*mults.front());
  const nn::MulTable exact;

  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 0.25);
  fault::Injector::instance().arm(plan, 4321);

  auto cfg = shadow_server_config(approx, exact);
  cfg.max_attempts = 3;
  cfg.retry_exact_failover = true;
  cfg.backoff.base = microseconds(50);
  cfg.backoff.cap = microseconds(500);
  serve::Server srv(cfg);
  srv.start();
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 40; ++i)
    futs.push_back(srv.submit(make_input(i), milliseconds(5000)));
  util::u64 exact_served = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    ASSERT_EQ(r.outcome, serve::Outcome::kServed);
    if (r.exact_path) ++exact_served;
  }
  fault::Injector::instance().disarm();
  srv.drain();

  ASSERT_GT(exact_served, 0u) << "a 25% MAC fault rate must force failovers";
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("quality.shadow.sampled").value(), 40u);
  EXPECT_EQ(reg.counter("quality.shadow.skipped_exact").value(), exact_served);
  EXPECT_EQ(srv.quality_stats().compared, 40u - exact_served);
  EXPECT_EQ(reg.counter("quality.tier.0.compared").value(),
            40u - exact_served)
      << "only genuinely approximate replies land in the tier bin";
}

#endif  // NGA_FAULT

}  // namespace
}  // namespace nga::quality
