// nga::quality unit contract:
//   * the shadow head-sampler is a pure function of (seed, id) — the
//     shadowed set is identical across runs and thread interleavings;
//   * logit comparison math is exact on known vectors;
//   * the SLO tracker breaches below its floors, with hysteresis, and
//     never judges before min_samples;
//   * the "quality" JSON section reports empty per-tier bins as null,
//     never as a fake agreement value.
#include "quality/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace nga::quality {
namespace {

// ------------------------------------------------------------ sampler

TEST(QualitySampler, PureFunctionOfSeedAndId) {
  std::set<util::u64> first, second;
  for (util::u64 id = 1; id <= 5000; ++id) {
    if (shadow_sampled(42, id, 0.3)) first.insert(id);
    if (shadow_sampled(42, id, 0.3)) second.insert(id);
  }
  EXPECT_EQ(first, second) << "no hidden RNG state: the decision must "
                              "depend on (seed, id) alone";
  EXPECT_FALSE(first.empty());
}

TEST(QualitySampler, DifferentSeedsShadowDifferentSets) {
  std::set<util::u64> a, b;
  for (util::u64 id = 1; id <= 2000; ++id) {
    if (shadow_sampled(1, id, 0.3)) a.insert(id);
    if (shadow_sampled(2, id, 0.3)) b.insert(id);
  }
  EXPECT_NE(a, b);
}

TEST(QualitySampler, RateEdgesAndFraction) {
  int hits = 0;
  for (util::u64 id = 1; id <= 20000; ++id) {
    EXPECT_FALSE(shadow_sampled(7, id, 0.0));
    EXPECT_FALSE(shadow_sampled(7, id, -1.0));
    EXPECT_TRUE(shadow_sampled(7, id, 1.0));
    EXPECT_TRUE(shadow_sampled(7, id, 2.0));
    if (shadow_sampled(7, id, 0.25)) ++hits;
  }
  const double frac = double(hits) / 20000.0;
  EXPECT_NEAR(frac, 0.25, 0.02) << "splitmix threshold must hit ~rate";
}

// --------------------------------------------------------- comparison

TEST(QualityCompare, IdenticalLogitsAgreeWithZeroError) {
  const std::vector<float> l{0.1f, 2.0f, -1.0f};
  const auto c = compare_logits(l, l);
  EXPECT_TRUE(c.agree);
  EXPECT_DOUBLE_EQ(c.mre, 0.0);
  EXPECT_DOUBLE_EQ(c.mae, 0.0);
  EXPECT_EQ(c.approx_top, 1);
  EXPECT_EQ(c.exact_top, 1);
}

TEST(QualityCompare, KnownDeltasAndFlip) {
  // exact = {1, 2}; approx = {2.5, 2} flips the argmax (0 vs 1) with
  // mae = (1.5 + 0)/2 and mre = (1.5/1 + 0/2)/2.
  const auto c = compare_logits({2.5f, 2.0f}, {1.0f, 2.0f});
  EXPECT_FALSE(c.agree);
  EXPECT_EQ(c.approx_top, 0);
  EXPECT_EQ(c.exact_top, 1);
  EXPECT_DOUBLE_EQ(c.mae, 0.75);
  EXPECT_DOUBLE_EQ(c.mre, 0.75);
}

TEST(QualityCompare, EmptyVectorsNeverAgree) {
  const auto c = compare_logits({}, {});
  EXPECT_FALSE(c.agree);
  EXPECT_EQ(c.approx_top, -1);
}

// --------------------------------------------------------------- SLO

QualityConfig slo_cfg() {
  QualityConfig cfg;
  cfg.slo_fast_window = 4;
  cfg.slo_slow_window = 10;
  cfg.slo_min_samples = 4;
  cfg.slo_fast_floor = 0.5;
  cfg.slo_slow_floor = 0.8;
  cfg.slo_recover_margin = 0.1;
  return cfg;
}

TEST(QualitySlo, NoVerdictBeforeMinSamples) {
  QualitySloTracker t(slo_cfg());
  for (int i = 0; i < 3; ++i) {
    const auto v = t.record(false);  // total disagreement
    EXPECT_FALSE(v.breached()) << "no judgement before min_samples";
  }
  EXPECT_TRUE(t.record(false).breached());
}

TEST(QualitySlo, FastWindowBreachesOnSharpCollapseAndRecovers) {
  QualitySloTracker t(slo_cfg());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(t.record(true).breached());
  // 4 straight flips: fast window (size 4) agreement hits 0 < 0.5.
  t.record(false);
  t.record(false);
  t.record(false);
  const auto v = t.record(false);
  EXPECT_TRUE(v.fast_breached);
  // Recovery needs agreement past floor + margin (hysteresis).
  t.record(true);
  t.record(true);
  EXPECT_TRUE(t.verdict().fast_breached) << "0.5 is not past 0.5+0.1";
  const auto r = t.record(true);
  EXPECT_FALSE(r.fast_breached) << "3/4 = 0.75 >= 0.6 recovers";
}

TEST(QualitySlo, SlowWindowBreachesOnSustainedErosion) {
  QualityConfig cfg = slo_cfg();
  QualitySloTracker t(cfg);
  // Alternate agree/flip: fast window sits at 0.5 (>= its floor), slow
  // window converges to 0.5 < 0.8 — only the slow channel breaches.
  QualitySloTracker::Verdict v;
  for (int i = 0; i < 20; ++i) v = t.record(i % 2 == 0);
  EXPECT_FALSE(v.fast_breached);
  EXPECT_TRUE(v.slow_breached);
  EXPECT_TRUE(v.breached());
  EXPECT_EQ(v.samples, 20u);
}

// -------------------------------------------------------- telemetry

TEST(QualityTelemetryJson, EmptyTierBinsReportNullAgreement) {
  obs::MetricsRegistry::instance().reset();
  auto& qt = QualityTelemetry::instance();
  qt.reset_slo();
  qt.ensure_tiers(2);
  qt.set_tier_operator(0, "configured");
  qt.set_tier_operator(2, "brownout.0");

  Comparison agree;
  agree.agree = true;
  agree.mre = 0.125;
  agree.mae = 0.5;
  qt.record_comparison(0, agree);
  Comparison flip;
  flip.agree = false;
  flip.mre = 1.5;
  flip.mae = 3.0;
  qt.record_comparison(0, flip);

  std::ostringstream ss;
  qt.write_json(ss);
  const std::string j = ss.str();
  // Touched bin: agreement 1/2.
  EXPECT_NE(j.find("\"0\":{\"operator\":\"configured\",\"compared\":2,"
                   "\"agree\":1,\"flips\":1,\"agreement\":0.5"),
            std::string::npos)
      << j;
  // Untouched bin: agreement null, never a fake number (the JSON-side
  // face of load::percentile's empty-sample NaN contract).
  EXPECT_NE(j.find("\"2\":{\"operator\":\"brownout.0\",\"compared\":0,"
                   "\"agree\":0,\"flips\":0,\"agreement\":null"),
            std::string::npos)
      << j;
  EXPECT_NE(j.find("\"flips\":1"), std::string::npos);
  // Balanced braces — cheap structural sanity for the section writer.
  int depth = 0;
  for (char ch : j) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << j;
}

TEST(QualityTelemetryJson, MetricsLandInRegistryFamilies) {
  obs::MetricsRegistry::instance().reset();
  auto& qt = QualityTelemetry::instance();
  qt.reset_slo();
  Comparison c;
  c.agree = false;
  c.mre = 0.25;
  c.mae = 1.0;
  qt.record_comparison(1, c);
  qt.record_attribution(1, "0.dense", 0.03125);

  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("quality.tier.1.compared").value(), 1u);
  EXPECT_EQ(reg.counter("quality.tier.1.flips").value(), 1u);
  EXPECT_EQ(reg.counter("quality.shadow.flips").value(), 1u);
  const auto s = reg.series("quality.tier.1.logit_mre").snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 0.25);
  const auto a = reg.series("quality.tier.1.layer.0.dense.mre").snapshot();
  EXPECT_EQ(a.count, 1u);
  EXPECT_DOUBLE_EQ(a.mean, 0.03125);
}

}  // namespace
}  // namespace nga::quality
