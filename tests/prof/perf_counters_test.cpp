// prof::PerfCounters contract: graceful degradation is the primary
// path. perf_event_open is a privileged syscall on most deployment
// kernels (perf_event_paranoid >= 2 in containers), so the tests pin
// down what MUST hold in every environment — clean unavailability with
// a named reason, never a crash, never fabricated numbers — and only
// conditionally exercise the counting path when the kernel allows it.
#include "prof/perf_counters.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nga::prof {
namespace {

TEST(ProfCounters, DisabledConfigIsCleanlyUnavailable) {
  PerfConfig cfg;
  cfg.enabled = false;
  PerfCounters pc(cfg);
  EXPECT_FALSE(pc.available());
  EXPECT_EQ(pc.unavailable_reason(), "disabled");

  const PerfSample s = pc.read();
  EXPECT_FALSE(s.available);
  EXPECT_EQ(s.cycles, 0u);
}

TEST(ProfCounters, ForcedEnosysShimDegradesLikeABlockedKernel) {
  // The test shim for "kernel refuses the syscall": the ctor must take
  // the identical degradation path a real ENOSYS/EACCES would.
  PerfConfig cfg;
  cfg.force_unavailable = true;
  PerfCounters pc(cfg);
  EXPECT_FALSE(pc.available());
  EXPECT_EQ(pc.unavailable_reason(), "forced-ENOSYS");
  EXPECT_FALSE(pc.has_instructions());
  EXPECT_FALSE(pc.has_cache());
  EXPECT_FALSE(pc.read().available);
}

TEST(ProfCounters, GarbageLeaderConfigFailsCleanlyWithErrnoReason) {
  // An invalid PERF_TYPE_HARDWARE config id: perf_event_open returns an
  // error, which must surface as a named reason — not a crash, not a
  // half-open group.
  PerfConfig cfg;
  cfg.leader_config = 0xdeadbeef;
  PerfCounters pc(cfg);
  EXPECT_FALSE(pc.available());
  EXPECT_FALSE(pc.unavailable_reason().empty());
  EXPECT_NE(pc.unavailable_reason(), "unopened");
  EXPECT_FALSE(pc.read().available);
}

TEST(ProfCounters, DefaultConfigEitherCountsOrNamesItsReason) {
  PerfCounters pc;
  if (!pc.available()) {
    // The expected container outcome: a human-readable reason naming
    // the failing call ("perf_event_open: Permission denied", ...).
    EXPECT_FALSE(pc.unavailable_reason().empty());
    EXPECT_NE(pc.unavailable_reason(), "unopened");
    return;
  }
  // Counters are live on this kernel: cycles must actually advance
  // across a busy loop, and be monotonic across reads.
  const PerfSample a = pc.read();
  ASSERT_TRUE(a.available);
  volatile double sink = 1.0;
  for (int i = 0; i < 200000; ++i) sink = sink * 1.0000001 + 0.5;
  const PerfSample b = pc.read();
  ASSERT_TRUE(b.available);
  EXPECT_GT(b.cycles, a.cycles);

  PerfSample delta;
  {
    PerfCounters::Scoped scope(pc, delta);
    for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.5;
  }
  EXPECT_TRUE(delta.available);
  EXPECT_GT(delta.cycles, 0u);
}

TEST(ProfCounters, SampleArithmeticSkipsUnavailableSources) {
  PerfSample acc;  // starts unavailable
  PerfSample unavailable;
  acc += unavailable;
  EXPECT_FALSE(acc.available);

  PerfSample live;
  live.available = true;
  live.cycles = 100;
  live.instructions = 250;
  acc += live;
  EXPECT_TRUE(acc.available);
  EXPECT_EQ(acc.cycles, 100u);
  acc += live;
  EXPECT_EQ(acc.cycles, 200u);
  EXPECT_EQ(acc.instructions, 500u);

  // A delta between two live snapshots is live; against an unavailable
  // endpoint it is not (no fabricated zeros downstream).
  PerfSample end = live;
  end.cycles = 160;
  const PerfSample d = end.delta_since(live);
  EXPECT_TRUE(d.available);
  EXPECT_EQ(d.cycles, 60u);
  EXPECT_FALSE(end.delta_since(unavailable).available);
}

}  // namespace
}  // namespace nga::prof
