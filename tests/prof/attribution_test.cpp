// LayerProfiler / ProfRegistry attribution contract: layer brackets in
// forward order, nominal-MAC and LUT-probe accounting, the modelled
// bytes, flush-merge semantics, and — satellite of the degradation
// story — that unavailable hardware counters surface as an explicit
// "unavailable" in the exported JSON, never as fabricated zeros.
#include "prof/attribution.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "nn/model.hpp"
#include "obs/obs.hpp"
#include "prof/prof.hpp"

namespace nga::prof {
namespace {

constexpr int kIn = 16, kHidden = 8, kOut = 4;

nn::Model make_model() {
  util::Xoshiro256 rng(11);
  nn::Model m("prof-test");
  m.add(std::make_unique<nn::Dense>(kIn, kHidden, rng));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::Dense>(kHidden, kOut, rng));
  return m;
}

nn::Tensor make_input() {
  nn::Tensor x(1, 1, kIn);
  for (std::size_t i = 0; i < x.v.size(); ++i)
    x.v[i] = float(i % 5) / 5.f - 0.4f;
  return x;
}

// Deterministic profiler: the forced-ENOSYS shim keeps these tests
// independent of the runner's perf_event permissions.
PerfConfig shimmed() {
  PerfConfig cfg;
  cfg.force_unavailable = true;
  return cfg;
}

void calibrate_once(nn::Model& m) {
  nn::Exec ex;
  ex.mode = nn::Mode::kFloat;
  ex.calibrate = true;
  m.forward(make_input(), ex);
}

TEST(ProfAttribution, BracketsEveryLayerInForwardOrder) {
#if !NGA_PROF
  GTEST_SKIP() << "NGA_PROF=OFF: forward-pass hooks are compiled out";
#endif
  nn::Model m = make_model();
  calibrate_once(m);

  LayerProfiler p("t", shimmed());
  EXPECT_FALSE(p.counters_available());
  EXPECT_EQ(p.counters_reason(), "forced-ENOSYS");

  const nn::MulTable exact;
  nn::Exec ex;
  ex.mode = nn::Mode::kQuantExact;
  ex.mul = &exact;
  ex.prof = &p;
  const int reps = 3;
  for (int r = 0; r < reps; ++r) m.forward(make_input(), ex);

  const auto& layers = p.layers();
  ASSERT_EQ(layers.size(), 3u);
  EXPECT_EQ(layers[0].first, "layer.0.dense");
  EXPECT_EQ(layers[1].first, "layer.1.relu");
  EXPECT_EQ(layers[2].first, "layer.2.dense");

  const KernelRecord& d0 = layers[0].second;
  EXPECT_EQ(d0.calls, u64(reps));
  EXPECT_EQ(d0.macs, u64(reps) * kIn * kHidden);
  // A dense layer has no padding skips: quantized MACs probe the
  // behavioural table exactly once per nominal MAC.
  EXPECT_EQ(d0.lut_probes, d0.macs);
  EXPECT_GT(d0.wall_ns, 0u);
  EXPECT_FALSE(d0.hw.available);
  // Modelled traffic: in + out activations + params, floats, per call.
  const u64 params = u64(kIn) * kHidden + kHidden;
  EXPECT_EQ(d0.bytes, u64(reps) * (kIn + kHidden + params) * sizeof(float));

  // The ReLU does no MACs and probes nothing — but is still attributed.
  EXPECT_EQ(layers[1].second.macs, 0u);
  EXPECT_EQ(layers[1].second.lut_probes, 0u);
  EXPECT_EQ(layers[1].second.calls, u64(reps));
}

TEST(ProfAttribution, FlushMergesIntoRegistryAndClearsTheWindow) {
#if !NGA_PROF
  GTEST_SKIP() << "NGA_PROF=OFF: forward-pass hooks are compiled out";
#endif
  ProfRegistry::instance().reset();
  nn::Model m = make_model();
  calibrate_once(m);

  LayerProfiler p("winA", shimmed());
  const nn::MulTable exact;
  nn::Exec ex;
  ex.mode = nn::Mode::kQuantExact;
  ex.mul = &exact;
  ex.prof = &p;
  m.forward(make_input(), ex);
  p.flush();

  auto snap = ProfRegistry::instance().snapshot();
  ASSERT_TRUE(snap.count("winA.layer.0.dense"));
  EXPECT_EQ(snap["winA.layer.0.dense"].calls, 1u);

  // The local window is cleared (slots survive for the next round) and
  // an empty flush adds nothing.
  EXPECT_EQ(p.layers()[0].second.calls, 0u);
  p.flush();
  snap = ProfRegistry::instance().snapshot();
  EXPECT_EQ(snap["winA.layer.0.dense"].calls, 1u);

  // A second window accumulates additively.
  m.forward(make_input(), ex);
  m.forward(make_input(), ex);
  p.flush();
  snap = ProfRegistry::instance().snapshot();
  EXPECT_EQ(snap["winA.layer.0.dense"].calls, 3u);

  // Derived rates are mirrored as obs gauges; the hw-derived families
  // stay absent when counters never opened (machine-dependent metrics
  // appear only on machines that have them).
  const auto gauges = obs::MetricsRegistry::instance().gauges_snapshot();
  EXPECT_TRUE(gauges.count("prof.winA.layer.0.dense.macs_per_s"));
  EXPECT_TRUE(gauges.count("prof.winA.layer.0.dense.arith_intensity"));
  EXPECT_FALSE(gauges.count("prof.winA.layer.0.dense.cycles_per_mac"));
  ProfRegistry::instance().reset();
}

TEST(ProfAttribution, UnavailableCountersExportAsExplicitDegradation) {
#if !NGA_PROF
  GTEST_SKIP() << "NGA_PROF=OFF: forward-pass hooks are compiled out";
#endif
  ProfRegistry::instance().reset();
  nn::Model m = make_model();
  calibrate_once(m);

  LayerProfiler p("deg", shimmed());
  const nn::MulTable exact;
  nn::Exec ex;
  ex.mode = nn::Mode::kQuantExact;
  ex.mul = &exact;
  ex.prof = &p;
  m.forward(make_input(), ex);
  p.flush();

  std::ostringstream os;
  ProfRegistry::instance().write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"counters\":\"unavailable\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"counters_reason\":\"forced-ENOSYS\""),
            std::string::npos)
      << j;
  // Wall-clock attribution still present...
  EXPECT_NE(j.find("\"deg.layer.0.dense\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"macs_per_s\""), std::string::npos) << j;
  // ...but no hardware block: unavailable counters are omitted, not
  // reported as zeros.
  EXPECT_EQ(j.find("\"cycles\""), std::string::npos) << j;
  EXPECT_EQ(j.find("\"cycles_per_mac\""), std::string::npos) << j;
  ProfRegistry::instance().reset();
}

TEST(ProfAttribution, ProfSectionRidesTheBenchJson) {
  // ProfRegistry self-registers the additive "prof" section of the
  // nga-bench-v1 document on first use; the schema gains the key
  // without any bench opting in.
  ProfRegistry::instance().reset();
  std::ostringstream os;
  obs::write_metrics_json(os, "attribution_test");
  const std::string j = os.str();
  EXPECT_NE(j.find("\"schema\":\"nga-bench-v1\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"prof\":{"), std::string::npos) << j;
  EXPECT_NE(j.find("\"kernels\":{"), std::string::npos) << j;
}

TEST(ProfAttribution, DerivedRatesHandleZeroDenominators) {
  KernelRecord r;
  EXPECT_EQ(r.macs_per_s(), 0.0);
  EXPECT_EQ(r.arith_intensity(), 0.0);
  EXPECT_EQ(r.cycles_per_mac(), 0.0);
  EXPECT_EQ(r.macs_per_cycle(), 0.0);

  r.macs = 2000;
  r.wall_ns = 1000;
  r.bytes = 500;
  EXPECT_DOUBLE_EQ(r.macs_per_s(), 2e9);
  EXPECT_DOUBLE_EQ(r.arith_intensity(), 4.0);
  // Hardware-derived rates stay 0 while hw is unavailable, even with a
  // (meaningless) cycles value in the struct.
  r.hw.cycles = 4000;
  EXPECT_EQ(r.cycles_per_mac(), 0.0);
  r.hw.available = true;
  EXPECT_DOUBLE_EQ(r.cycles_per_mac(), 2.0);
  EXPECT_DOUBLE_EQ(r.macs_per_cycle(), 0.5);
}

}  // namespace
}  // namespace nga::prof
