// prof::Sampler — the thread-list wall-clock profiler. Pinning down the
// parts that must not regress: scope stacks collapse root-to-leaf with
// ';' separators, samples actually accumulate while running, thread
// exit unregisters cleanly (no dangling stack reads), and the
// collapsed-stack dump is the one-line-per-stack format flamegraph
// tooling eats.
#include "prof/sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>

namespace nga::prof {
namespace {

using namespace std::chrono_literals;

TEST(ProfSampler, ScopeStackCollapsesRootToLeaf) {
  ScopeStack s;
  EXPECT_EQ(s.collapsed(), "");
  s.push("worker");
  s.push("process_batch");
  s.push("exec");
  EXPECT_EQ(s.collapsed(), "worker;process_batch;exec");
  s.pop();
  EXPECT_EQ(s.collapsed(), "worker;process_batch");
  s.pop();
  s.pop();
  EXPECT_EQ(s.collapsed(), "");
}

TEST(ProfSampler, RaiiScopesNestAndUnwind) {
  auto& stack = ScopeRegistry::instance().this_thread();
  {
    SamplerScope outer("outer");
    EXPECT_EQ(stack.collapsed(), "outer");
    {
      SamplerScope inner("inner");
      EXPECT_EQ(stack.collapsed(), "outer;inner");
    }
    EXPECT_EQ(stack.collapsed(), "outer");
  }
  EXPECT_EQ(stack.collapsed(), "");
}

TEST(ProfSampler, AccumulatesSamplesOfTheActiveStacks) {
  Sampler sampler;
  ASSERT_FALSE(sampler.running());
  {
    SamplerScope scope("hot_loop");
    sampler.start(500.0);  // 2ms period
    ASSERT_TRUE(sampler.running());
    std::this_thread::sleep_for(60ms);
    sampler.stop();
  }
  EXPECT_FALSE(sampler.running());
  EXPECT_GT(sampler.samples(), 0u);

  const auto collapsed = sampler.collapsed();
  u64 hot = 0;
  for (const auto& [stack, n] : collapsed)
    if (stack.find("hot_loop") != std::string::npos) hot += n;
  EXPECT_GT(hot, 0u);

  // write_collapsed: "stack count\n" lines, counts parseable.
  std::ostringstream os;
  sampler.write_collapsed(os);
  std::istringstream is(os.str());
  std::string line;
  bool saw_hot = false;
  while (std::getline(is, line)) {
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u) << line;
    saw_hot = saw_hot || line.rfind("hot_loop ", 0) == 0;
  }
  EXPECT_TRUE(saw_hot) << os.str();
}

TEST(ProfSampler, ThreadsOutsideAnyScopeCountAsIdle) {
  ScopeRegistry::instance().this_thread();  // registered, but no scope
  Sampler sampler;
  sampler.start(500.0);
  std::this_thread::sleep_for(30ms);
  sampler.stop();
  ASSERT_GT(sampler.samples(), 0u);
  u64 idle = 0;
  for (const auto& [stack, n] : sampler.collapsed())
    if (stack == "(idle)") idle += n;
  EXPECT_GT(idle, 0u);
}

TEST(ProfSampler, SurvivesScopedThreadsExiting) {
  // Threads register their stacks lazily and unregister on exit; a
  // sampler racing thread creation/destruction must neither crash nor
  // read a dead stack. (TSan runs this too — the Prof* regex in CI.)
  Sampler sampler;
  sampler.start(1000.0);
  for (int round = 0; round < 8; ++round) {
    std::thread t([] {
      SamplerScope scope("ephemeral");
      std::this_thread::sleep_for(2ms);
    });
    t.join();
  }
  std::this_thread::sleep_for(10ms);
  sampler.stop();
  SUCCEED();  // surviving (and TSan-clean) is the assertion
}

TEST(ProfSampler, StopIsIdempotentAndRestartable) {
  Sampler sampler;
  sampler.stop();  // stop before start: no-op
  sampler.start(200.0);
  sampler.start(200.0);  // double start: no second thread
  std::this_thread::sleep_for(20ms);
  sampler.stop();
  sampler.stop();
  const u64 n = sampler.samples();
  EXPECT_GT(n, 0u);

  sampler.start(200.0);
  std::this_thread::sleep_for(20ms);
  sampler.stop();
  EXPECT_GE(sampler.samples(), n);
}

}  // namespace
}  // namespace nga::prof
