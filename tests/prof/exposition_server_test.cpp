// prof::ExpositionServer — the live GET /metrics endpoint. Covers the
// whole protocol surface with a raw-socket client (the same thing curl
// or a Prometheus scraper would send): well-formed scrapes return valid
// text exposition with the registered nga_* families, malformed
// requests get 400/404/405 without taking the acceptor down, and —
// the integration satellite — a scrape against a LIVE nga::serve
// server mid-traffic sees the serve/guard/prof families.
#include "prof/exposition_server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "obs/obs.hpp"
#include "prof/prof.hpp"
#include "serve/serve.hpp"

namespace nga::prof {
namespace {

using std::chrono::milliseconds;

/// Raw one-shot HTTP exchange against 127.0.0.1:@p port: send @p req,
/// read to EOF (the server always closes), return the full response.
std::string http_exchange(int port, const std::string& req) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(uint16_t(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += std::size_t(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) resp.append(buf, std::size_t(n));
  ::close(fd);
  return resp;
}

std::string get(int port, const std::string& path) {
  return http_exchange(port, "GET " + path +
                                 " HTTP/1.1\r\nHost: localhost\r\n"
                                 "Connection: close\r\n\r\n");
}

TEST(ProfMetricsEndpoint, ServesTheLiveRegistryAsTextExposition) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("expotest.hits", "Scrape-visible test counter.").inc(7);

  ExpositionServer srv;  // loopback, ephemeral port
  ASSERT_TRUE(srv.start()) << srv.reason();
  ASSERT_TRUE(srv.running());
  ASSERT_GT(srv.port(), 0);

  const std::string resp = get(srv.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  // Registered family, with its HELP line ahead of its TYPE line.
  EXPECT_NE(resp.find("# HELP nga_expotest_hits_total "
                      "Scrape-visible test counter.\n"
                      "# TYPE nga_expotest_hits_total counter\n"
                      "nga_expotest_hits_total 7"),
            std::string::npos)
      << resp;
  // The endpoint's own traffic counters are part of the registry too
  // (counted before the body renders, so a scrape sees itself).
  EXPECT_EQ(srv.scrapes(), 1u);
  const std::string resp2 = get(srv.port(), "/metrics");
  EXPECT_NE(resp2.find("# TYPE nga_prof_metrics_scrapes_total counter"),
            std::string::npos)
      << resp2;
  EXPECT_EQ(srv.scrapes(), 2u);
  srv.stop();
  EXPECT_FALSE(srv.running());
}

TEST(ProfMetricsEndpoint, RejectsBadRequestsAndKeepsServing) {
  ExpositionServer srv;
  ASSERT_TRUE(srv.start()) << srv.reason();

  // Wrong path, wrong method, unparsable line — typed rejections.
  EXPECT_NE(get(srv.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_exchange(srv.port(),
                          "POST /metrics HTTP/1.1\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(http_exchange(srv.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_EQ(srv.bad_requests(), 3u);

  // The acceptor survived all three: a normal scrape still works.
  const std::string resp = get(srv.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(srv.scrapes(), 1u);
  srv.stop();
}

TEST(ProfMetricsEndpoint, StalledClientGets408AndCannotWedgeTheAcceptor) {
  ExpositionConfig cfg;
  cfg.recv_timeout_ms = 100;  // fast test; default is 2000
  ExpositionServer srv(cfg);
  ASSERT_TRUE(srv.start()) << srv.reason();

  // Connect and send NOTHING — pre-hardening this held the single
  // acceptor thread hostage forever (every later scrape, and stop(),
  // blocked behind it). Now the recv times out and answers 408.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(uint16_t(srv.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::string resp;
  char buf[256];
  ssize_t n;
  const auto t0 = std::chrono::steady_clock::now();
  while ((n = ::read(fd, buf, sizeof buf)) > 0) resp.append(buf, std::size_t(n));
  const auto waited = std::chrono::steady_clock::now() - t0;
  ::close(fd);
  EXPECT_NE(resp.find("408"), std::string::npos) << resp;
  EXPECT_LT(waited, std::chrono::seconds(5)) << "408 must come from the "
                                                "timeout, not test teardown";
  EXPECT_EQ(srv.bad_requests(), 1u);

  // A half-request that never completes times out the same way...
  EXPECT_NE(http_exchange(srv.port(), "GET /metr").find("408"),
            std::string::npos);
  // ...an unterminated head hitting the 8 KiB bound gets a 400 (8192
  // exactly, so no bytes sit unread at close to RST the response away)...
  EXPECT_NE(http_exchange(srv.port(), std::string(8192, 'A')).find("400"),
            std::string::npos);
  // ...and the acceptor survived all of it: scrapes still work.
  const std::string ok = get(srv.port(), "/metrics");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(srv.scrapes(), 1u);
  srv.stop();
}

TEST(ProfMetricsEndpoint, StopIsIdempotentAndStartReportsBindFailure) {
  ExpositionServer a;
  ASSERT_TRUE(a.start());
  const int taken = a.port();

  // Second server on the same fixed port: start() must fail with a
  // reason, not crash or wedge.
  ExpositionConfig cfg;
  cfg.port = taken;
  ExpositionServer b(cfg);
  EXPECT_FALSE(b.start());
  EXPECT_FALSE(b.reason().empty());
  EXPECT_FALSE(b.running());

  a.stop();
  a.stop();  // idempotent
  EXPECT_FALSE(a.running());
}

// ---- integration: scraping a live nga::serve server mid-traffic -----

constexpr int kC = 1, kH = 4, kW = 4;

std::unique_ptr<nn::Model> make_model() {
  util::Xoshiro256 rng(7);
  auto m = std::make_unique<nn::Model>("expo-test");
  m->add(std::make_unique<nn::Dense>(kC * kH * kW, 10, rng));
  return m;
}

nn::Tensor make_input(int i) {
  nn::Tensor x(kC, kH, kW);
  for (std::size_t j = 0; j < x.v.size(); ++j)
    x.v[j] = float((i * 31 + int(j) * 7) % 17) / 17.f;
  return x;
}

TEST(ProfMetricsEndpoint, ScrapesALiveServeServerMidTraffic) {
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  cfg.max_batch = 4;
  cfg.batch_linger = std::chrono::microseconds(100);
  cfg.in_c = kC;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.mode = nn::Mode::kFloat;
  cfg.model_factory = make_model;
  cfg.metrics_port = 0;       // ephemeral /metrics endpoint
  cfg.profile_kernels = true; // per-layer attribution on the workers

  serve::Server srv(cfg);
  srv.start();
  ASSERT_GT(srv.metrics_port(), 0);

  // Drive traffic and scrape between bursts — the endpoint must serve
  // while batches are in flight, not just at drain.
  std::string resp;
  for (int burst = 0; burst < 3; ++burst) {
    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < 8; ++i)
      futs.push_back(srv.submit(make_input(i), milliseconds(500)));
    resp = get(srv.metrics_port(), "/metrics");
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    for (auto& f : futs) f.get();
  }

  // One final scrape after all bursts resolved: every family of the
  // serving stack is visible — serve headline counters, nga::guard
  // supervision counters, and the prof attribution gauges the worker
  // profilers flushed per batch.
  resp = get(srv.metrics_port(), "/metrics");
  EXPECT_NE(resp.find("# TYPE nga_serve_submitted_total counter"),
            std::string::npos)
      << resp.substr(0, 2000);
  EXPECT_NE(resp.find("# HELP nga_serve_served_total "), std::string::npos);
  EXPECT_NE(resp.find("nga_serve_guard_hang_detected_total "),
            std::string::npos);
#if NGA_PROF
  // Worker-profiler gauges need the forward-pass hooks compiled in; an
  // NGA_PROF=OFF build still serves the endpoint and the families above.
  EXPECT_NE(resp.find("nga_prof_serve_layer_0_dense_macs_per_s "),
            std::string::npos)
      << resp.substr(0, 2000);
  EXPECT_NE(resp.find("nga_prof_counters_available "), std::string::npos);
#endif

  const int port = srv.metrics_port();
  srv.drain();
  EXPECT_EQ(srv.metrics_port(), -1);  // endpoint dies with the drain
  EXPECT_EQ(get(port, "/metrics"), "");
}

}  // namespace
}  // namespace nga::prof
