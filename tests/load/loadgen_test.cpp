#include "load/loadgen.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "load/frontier.hpp"

namespace nga::load {
namespace {

using std::chrono::microseconds;

// ---------------------------------------------------------------- Poisson

TEST(LoadGenPoisson, InterarrivalMeanAndCVWithinTolerance) {
  // Exp(rate) has mean 1/rate and CV exactly 1. With 40k draws the
  // sample mean and CV are within a few percent of that for any fixed
  // seed; 5% bounds keep the test deterministic, not flaky.
  const double rps = 1000.0;
  PoissonProcess p(rps, 42);
  const int n = 40000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double ms =
        std::chrono::duration<double, std::milli>(p.next()).count();
    sum += ms;
    sumsq += ms * ms;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  const double cv = std::sqrt(var) / mean;
  EXPECT_NEAR(mean, 1.0, 0.05) << "mean interarrival at 1000 rps is 1 ms";
  EXPECT_NEAR(cv, 1.0, 0.05) << "exponential interarrivals have CV 1";
}

TEST(LoadGenPoisson, DeterministicPerSeed) {
  PoissonProcess a(250.0, 7), b(250.0, 7), c(250.0, 8);
  bool any_differs = false;
  for (int i = 0; i < 1000; ++i) {
    const auto ga = a.next();
    EXPECT_EQ(ga.count(), b.next().count()) << "same seed, same schedule";
    any_differs = any_differs || ga.count() != c.next().count();
  }
  EXPECT_TRUE(any_differs) << "different seeds must differ somewhere";
}

TEST(LoadGenPoisson, GapsAreStrictlyPositive) {
  PoissonProcess p(1e9, 3);  // absurd rate: gaps round down toward zero
  for (int i = 0; i < 10000; ++i) EXPECT_GT(p.next().count(), 0);
}

// --------------------------------------------------------------- LoadGen

TEST(LoadGen, OpenLoopFiresEveryScheduledArrival) {
  LoadGenConfig cfg;
  cfg.rps = 20000.0;
  cfg.arrivals = 200;
  cfg.seed = 11;
  LoadGen gen(cfg);
  std::size_t fired = 0;
  const auto rep = gen.run([&](std::size_t i, Clock::time_point) {
    EXPECT_EQ(i, fired);
    ++fired;
  });
  EXPECT_EQ(fired, cfg.arrivals);
  EXPECT_EQ(rep.arrivals, cfg.arrivals);
  EXPECT_DOUBLE_EQ(rep.planned_rps, cfg.rps);
  EXPECT_GT(rep.achieved_rps, 0.0);
}

TEST(LoadGen, SlowSubmitDoesNotStretchTheSchedule) {
  // A submit path slower than the interarrival gap puts the generator
  // behind schedule. Open-loop contract: it reports the lag instead of
  // silently slowing down — the achieved rate falls and max_lag grows.
  LoadGenConfig cfg;
  cfg.rps = 50000.0;  // 20 µs mean gap, far below the submit cost
  cfg.arrivals = 50;
  cfg.seed = 5;
  LoadGen gen(cfg);
  const auto rep = gen.run([&](std::size_t, Clock::time_point) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  EXPECT_GT(rep.max_lag_ms, 0.0) << "the generator must notice it is behind";
  EXPECT_LT(rep.achieved_rps, cfg.rps);
}

// -------------------------------------------------------------- frontier

TEST(LoadGenFrontier, PercentileBasics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(double(i));
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 51.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 100.0);
}

TEST(LoadGenFrontier, PercentileOfEmptySampleIsNaN) {
  // Regression: this used to return 0.0, a fake quantile that poisoned
  // any aggregation over it. An empty sample (e.g. a per-tier quality
  // bin no traffic reached) has NO percentile — NaN propagates where a
  // silent zero would lie.
  EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
  EXPECT_TRUE(std::isnan(percentile({}, 0.0)));
  EXPECT_TRUE(std::isnan(percentile({}, 1.0)));
  // One sample is still a distribution.
  EXPECT_DOUBLE_EQ(percentile({3.5}, 0.99), 3.5);
}

TEST(LoadGenFrontier, KneeIsHighestNearLinearPoint) {
  // Classic frontier: scales to 400, collapses past it.
  std::vector<FrontierPoint> pts;
  pts.push_back({100, 99});    // 0.99 efficiency
  pts.push_back({200, 196});   // 0.98
  pts.push_back({400, 380});   // 0.95
  pts.push_back({800, 420});   // 0.53 — past the knee
  pts.push_back({1600, 180});  // collapse
  EXPECT_DOUBLE_EQ(knee_rps(pts), 400.0);
}

TEST(LoadGenFrontier, KneeUnorderedPointsAndFallback) {
  // Order must not matter.
  std::vector<FrontierPoint> pts;
  pts.push_back({800, 400});
  pts.push_back({200, 195});
  pts.push_back({400, 390});
  EXPECT_DOUBLE_EQ(knee_rps(pts), 400.0);
  // Every point past the knee: the best-goodput point is the estimate.
  std::vector<FrontierPoint> over;
  over.push_back({400, 200});
  over.push_back({800, 260});
  over.push_back({1600, 120});
  EXPECT_DOUBLE_EQ(knee_rps(over), 800.0);
  EXPECT_DOUBLE_EQ(knee_rps({}), 0.0);
}

}  // namespace
}  // namespace nga::load
