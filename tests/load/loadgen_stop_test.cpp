// LoadGen early-stop (ISSUE 10): chaos scripts end an episode from
// another thread; the report counts what actually fired.
#include <gtest/gtest.h>

#include <atomic>

#include "load/loadgen.hpp"

namespace nga::load {
namespace {

TEST(LoadGenStop, StopsEarlyAndReportsFiredArrivals) {
  std::atomic<bool> stop{false};
  LoadGenConfig cfg;
  cfg.rps = 2000.0;
  cfg.arrivals = 10000;
  cfg.seed = 3;
  cfg.stop = &stop;
  LoadGen gen(cfg);
  std::size_t fired = 0;
  const auto rep = gen.run([&](std::size_t, Clock::time_point) {
    if (++fired == 25) stop.store(true, std::memory_order_release);
  });
  EXPECT_EQ(fired, 25u);
  EXPECT_EQ(rep.arrivals, 25u) << "report must count fired, not planned";
  EXPECT_LT(rep.duration_s, 5.0);
}

TEST(LoadGenStop, NullStopRunsTheFullSchedule) {
  LoadGenConfig cfg;
  cfg.rps = 50000.0;
  cfg.arrivals = 100;
  cfg.seed = 3;
  LoadGen gen(cfg);
  std::size_t fired = 0;
  const auto rep = gen.run([&](std::size_t, Clock::time_point) { ++fired; });
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(rep.arrivals, 100u);
}

}  // namespace
}  // namespace nga::load
