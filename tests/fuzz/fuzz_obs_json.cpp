// obs::json::parse on arbitrary bytes.
//
// Properties:
//   * totality — any input parses or yields a non-empty positioned
//     error; adversarial nesting is cut off at kMaxParseDepth instead
//     of blowing the stack;
//   * determinism — parsing the same bytes twice gives the same verdict
//     and the same value kind;
//   * escape() always produces a string the parser accepts back.
#include "fuzz_driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace json = nga::obs::json;
  const std::string_view in(reinterpret_cast<const char*>(data), size);

  json::Value v1, v2;
  std::string e1, e2;
  const bool ok1 = json::parse(in, v1, &e1);
  const bool ok2 = json::parse(in, v2, &e2);
  if (ok1 != ok2 || (ok1 && v1.kind != v2.kind)) {
    std::fprintf(stderr, "parse is not deterministic\n");
    std::abort();
  }
  if (!ok1 && e1.empty()) {
    std::fprintf(stderr, "parse failed without an error message\n");
    std::abort();
  }

  // Whatever the bytes were, escape() must emit a valid string literal.
  const std::string lit = "\"" + json::escape(in) + "\"";
  json::Value s;
  std::string se;
  if (!json::parse(lit, s, &se) || !s.is_string()) {
    std::fprintf(stderr, "escape() emitted an unparsable literal (%s)\n",
                 se.c_str());
    std::abort();
  }
  return 0;
}
