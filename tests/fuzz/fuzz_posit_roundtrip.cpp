// Posit decode -> encode round-trip on arbitrary bit patterns.
//
// Properties, for posit8 (es=0), posit8_2 (es=2), and posit16 (es=1):
//   * unpack() of zero / NaR reports the matching flag;
//   * for every other pattern, round_pack(unpack(p)) reproduces the
//     exact bits — a posit already on the lattice must not move;
//   * from_double(to_double(p)) reproduces the bits too (every posit at
//     these widths is exactly representable as a double).
#include "fuzz_driver.hpp"

#include <cstdio>
#include <cstdlib>

#include "posit/posit.hpp"

namespace {

template <class P>
void check_pattern(nga::util::u64 bits, const char* what) {
  const P p = P::from_bits(typename P::storage_t(bits));
  const nga::ps::PositUnpacked u = p.unpack();
  if (p.is_zero() || p.is_nar()) {
    if (u.is_zero != p.is_zero() || u.is_nar != p.is_nar()) {
      std::fprintf(stderr, "%s: special-value flags wrong for 0x%llx\n", what,
                   (unsigned long long)bits);
      std::abort();
    }
    return;
  }
  const P repacked = P::round_pack(u.sign, u.scale, u.sig, false);
  if (repacked.bits() != p.bits()) {
    std::fprintf(stderr, "%s: unpack/round_pack moved 0x%llx to 0x%llx\n",
                 what, (unsigned long long)p.bits(),
                 (unsigned long long)repacked.bits());
    std::abort();
  }
  const P via_double = P::from_double(p.to_double());
  if (via_double.bits() != p.bits()) {
    std::fprintf(stderr, "%s: double round-trip moved 0x%llx to 0x%llx\n",
                 what, (unsigned long long)p.bits(),
                 (unsigned long long)via_double.bits());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    check_pattern<nga::ps::posit8>(data[i], "posit8");
    check_pattern<nga::ps::posit8_2>(data[i], "posit8_2");
    if (i + 1 < size) {
      const nga::util::u64 w =
          nga::util::u64(data[i]) | (nga::util::u64(data[i + 1]) << 8);
      check_pattern<nga::ps::posit16>(w, "posit16");
    }
  }
  return 0;
}
