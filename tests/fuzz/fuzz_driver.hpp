// Shared entry-point glue for the fuzz harnesses.
//
// Every harness defines the libFuzzer ABI:
//     extern "C" int LLVMFuzzerTestOneInput(const uint8_t*, size_t);
// and can be built two ways:
//   * NGA_FUZZ_LIBFUZZER (cmake -DNGA_FUZZ_LIBFUZZER=ON): no main() here,
//     clang's -fsanitize=fuzzer supplies the coverage-guided driver;
//   * default: the deterministic driver below replays the committed
//     seed corpus (NGA_FUZZ_CORPUS_DIR, baked in at compile time) and
//     then hammers the target with seeded structural mutations of those
//     seeds. Fully reproducible, no sanitizer runtime needed — this is
//     what runs as a plain ctest binary in CI.
//
// A property violation aborts (the harnesses print why first), so a
// failure looks the same under both drivers: a crashed process.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef NGA_FUZZ_LIBFUZZER

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace nga_fuzz {

inline uint64_t splitmix(uint64_t& s) {
  uint64_t x = (s += 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

using Bytes = std::vector<uint8_t>;

inline std::vector<Bytes> load_corpus(const char* dir) {
  std::vector<Bytes> corpus;
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec))
    if (e.is_regular_file()) paths.push_back(e.path());
  std::sort(paths.begin(), paths.end());  // deterministic replay order
  for (const auto& p : paths) {
    std::ifstream is(p, std::ios::binary);
    Bytes b((std::istreambuf_iterator<char>(is)),
            std::istreambuf_iterator<char>());
    corpus.push_back(std::move(b));
  }
  return corpus;
}

/// One seeded mutation step: flip, overwrite, insert, erase, or splice.
inline Bytes mutate(const Bytes& base, const std::vector<Bytes>& corpus,
                    uint64_t& rng) {
  Bytes out = base;
  const int steps = 1 + int(splitmix(rng) % 4);
  for (int s = 0; s < steps; ++s) {
    switch (splitmix(rng) % 5) {
      case 0:  // flip a random bit
        if (!out.empty())
          out[splitmix(rng) % out.size()] ^= uint8_t(1u << (splitmix(rng) % 8));
        break;
      case 1:  // overwrite a byte with an interesting value
        if (!out.empty()) {
          static const uint8_t kMagic[] = {0x00, 0xff, 0x80, 0x7f, ':',
                                           ',',  '(',  ')',  '.',  '-'};
          out[splitmix(rng) % out.size()] =
              kMagic[splitmix(rng) % sizeof kMagic];
        }
        break;
      case 2:  // insert a random byte
        out.insert(out.begin() + long(splitmix(rng) % (out.size() + 1)),
                   uint8_t(splitmix(rng)));
        break;
      case 3:  // erase a span
        if (!out.empty()) {
          const size_t at = splitmix(rng) % out.size();
          const size_t n = 1 + splitmix(rng) % (out.size() - at);
          out.erase(out.begin() + long(at), out.begin() + long(at + n));
        }
        break;
      case 4:  // splice a chunk of another corpus entry
        if (!corpus.empty()) {
          const Bytes& other = corpus[splitmix(rng) % corpus.size()];
          if (!other.empty()) {
            const size_t at = splitmix(rng) % other.size();
            const size_t n = 1 + splitmix(rng) % (other.size() - at);
            out.insert(out.begin() + long(splitmix(rng) % (out.size() + 1)),
                       other.begin() + long(at), other.begin() + long(at + n));
          }
        }
        break;
    }
  }
  if (out.size() > 1024) out.resize(1024);
  return out;
}

}  // namespace nga_fuzz

int main(int argc, char** argv) {
  const char* dir = argc > 1 ? argv[1] : NGA_FUZZ_CORPUS_DIR;
  long rounds = 4000;
  if (const char* env = std::getenv("NGA_FUZZ_ROUNDS")) rounds = atol(env);

  const auto corpus = nga_fuzz::load_corpus(dir);
  if (corpus.empty()) {
    std::fprintf(stderr, "fuzz: empty corpus at %s\n", dir);
    return 2;
  }
  for (const auto& seed : corpus)
    LLVMFuzzerTestOneInput(seed.data(), seed.size());

  uint64_t rng = 0x5eedf00dcafeull;
  for (long i = 0; i < rounds; ++i) {
    const nga_fuzz::Bytes base =
        (nga_fuzz::splitmix(rng) % 8 == 0)
            ? nga_fuzz::Bytes{}  // grow from nothing now and then
            : corpus[nga_fuzz::splitmix(rng) % corpus.size()];
    const auto input = nga_fuzz::mutate(base, corpus, rng);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("fuzz: %zu seeds + %ld mutated inputs, no property violated\n",
              corpus.size(), rounds);
  return 0;
}

#endif  // !NGA_FUZZ_LIBFUZZER
