// FaultPlan::parse on arbitrary bytes.
//
// Properties:
//   * totality — any input either parses or yields a non-empty error;
//     never a crash, hang, or UB;
//   * describe() is a round-trip fixpoint — for any successfully parsed
//     plan, parse(describe(p)) succeeds and describes identically.
#include "fuzz_driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fault/plan.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view in(reinterpret_cast<const char*>(data), size);
  nga::fault::FaultPlan plan;
  std::string err;
  if (!nga::fault::FaultPlan::parse(in, plan, &err)) {
    if (err.empty()) {
      std::fprintf(stderr, "parse failed without an error message\n");
      std::abort();
    }
    return 0;
  }
  const std::string d1 = plan.describe();
  nga::fault::FaultPlan reparsed;
  std::string err2;
  if (!nga::fault::FaultPlan::parse(d1, reparsed, &err2)) {
    std::fprintf(stderr, "describe() not reparsable: \"%s\" (%s)\n",
                 d1.c_str(), err2.c_str());
    std::abort();
  }
  const std::string d2 = reparsed.describe();
  if (d1 != d2) {
    std::fprintf(stderr, "describe() not a fixpoint: \"%s\" vs \"%s\"\n",
                 d1.c_str(), d2.c_str());
    std::abort();
  }
  return 0;
}
