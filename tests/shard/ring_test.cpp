// ConsistentHashRing contract (ISSUE 10 satellite):
//   * determinism under a fixed seed — placement is a pure function of
//     (seed, vnodes, member set);
//   * minimal key movement when a shard leaves (≤ ceil(keys/shards) +
//     slack) and EXACT mapping restoration when it rejoins;
//   * bounded distribution skew (< 15 %) across 8 shards.
#include "shard/ring.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace nga::shard {
namespace {

constexpr int kShards = 8;
constexpr int kVnodes = 256;
constexpr std::size_t kKeys = 50000;

ConsistentHashRing make_ring(u64 seed, int shards, int vnodes = kVnodes) {
  ConsistentHashRing r(seed, vnodes);
  for (int s = 0; s < shards; ++s) r.add(s);
  return r;
}

u64 key_at(std::size_t i) { return mix64(u64(i) * 0x2545F4914F6CDD1Dull); }

TEST(ShardRing, DeterministicUnderFixedSeed) {
  const auto a = make_ring(42, kShards);
  const auto b = make_ring(42, kShards);
  bool seed_differs = false;
  const auto c = make_ring(43, kShards);
  for (std::size_t i = 0; i < 10000; ++i) {
    const u64 k = key_at(i);
    ASSERT_EQ(a.route(k), b.route(k)) << "same seed must route the same";
    if (a.route(k) != c.route(k)) seed_differs = true;
  }
  EXPECT_TRUE(seed_differs) << "a different seed should move some keys";
}

TEST(ShardRing, EmptyRingRoutesNowhere) {
  ConsistentHashRing r(1, 64);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.route(12345), -1);
  r.add(0);
  EXPECT_EQ(r.route(12345), 0);
  r.remove(0);
  EXPECT_EQ(r.route(12345), -1);
}

TEST(ShardRing, TenantKeysAreStableAndDistinct) {
  const u64 a1 = ConsistentHashRing::tenant_key("tenant-a");
  const u64 a2 = ConsistentHashRing::tenant_key("tenant-a");
  const u64 b = ConsistentHashRing::tenant_key("tenant-b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  // spread=1 pins every request of a tenant to one key (affinity);
  // spread>1 fans requests over distinct keys.
  EXPECT_EQ(ConsistentHashRing::request_key("tenant-a", 0, 1),
            ConsistentHashRing::request_key("tenant-a", 99, 1));
  EXPECT_NE(ConsistentHashRing::request_key("tenant-a", 0, 8),
            ConsistentHashRing::request_key("tenant-a", 1, 8));
}

TEST(ShardRing, RemovalMovesOnlyTheVictimsKeysAndRejoinRestores) {
  auto ring = make_ring(7, kShards);
  std::vector<int> before(kKeys);
  std::size_t on_victim = 0;
  const int victim = 3;
  for (std::size_t i = 0; i < kKeys; ++i) {
    before[i] = ring.route(key_at(i));
    if (before[i] == victim) ++on_victim;
  }
  ring.remove(victim);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const int now = ring.route(key_at(i));
    if (now != before[i]) {
      ++moved;
      // Only keys the victim owned may move — survivors keep theirs.
      ASSERT_EQ(before[i], victim)
          << "key " << i << " moved from surviving shard " << before[i];
      ASSERT_NE(now, victim);
    }
  }
  EXPECT_EQ(moved, on_victim) << "every victim key must find a survivor";
  // Movement bound: ceil(keys/shards) + 20 % slack for hash skew.
  const auto bound = std::size_t(
      std::ceil(double(kKeys) / kShards) * 1.20);
  EXPECT_LE(moved, bound);
  // Rejoin restores the EXACT original mapping (determinism again).
  ring.add(victim);
  for (std::size_t i = 0; i < kKeys; ++i)
    ASSERT_EQ(ring.route(key_at(i)), before[i]) << "key " << i;
}

TEST(ShardRing, SkewUnder15PercentAcross8Shards) {
  const auto ring = make_ring(42, kShards);
  std::map<int, std::size_t> share;
  for (std::size_t i = 0; i < kKeys; ++i) ++share[ring.route(key_at(i))];
  ASSERT_EQ(share.size(), std::size_t(kShards)) << "every shard owns keys";
  const double mean = double(kKeys) / kShards;
  for (const auto& [shard, n] : share) {
    EXPECT_LT(double(n), mean * 1.15)
        << "shard " << shard << " holds " << n << " of " << kKeys;
    EXPECT_GT(double(n), mean * 0.85)
        << "shard " << shard << " holds " << n << " of " << kKeys;
  }
}

}  // namespace
}  // namespace nga::shard
