// ModelRegistry: named (model × MulTable × precision) variants and the
// ServerConfig prototypes shards are built from.
#include "shard/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/layers.hpp"

namespace nga::shard {
namespace {

std::unique_ptr<nn::Model> tiny_model() {
  util::Xoshiro256 rng(7);
  auto m = std::make_unique<nn::Model>("registry-test");
  m->add(std::make_unique<nn::Dense>(16, 4, rng));
  return m;
}

Variant float_variant(std::string name) {
  Variant v;
  v.name = std::move(name);
  v.mode = nn::Mode::kFloat;
  v.in_c = 1;
  v.in_h = 4;
  v.in_w = 4;
  v.model_factory = tiny_model;
  return v;
}

TEST(ShardRegistry, AddFindNamesAndConfigPrototype) {
  ModelRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  reg.add(float_variant("kws.float"));
  auto approx = float_variant("kws.mitchell");
  approx.mode = nn::Mode::kQuantApprox;
  static const nn::MulTable exact;
  approx.exact_fallback = &exact;
  approx.mul_factory = [] {
    return std::make_shared<const nn::MulTable>();
  };
  reg.add(std::move(approx));

  EXPECT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find("kws.float"), nullptr);
  EXPECT_EQ(reg.find("nope"), nullptr);
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "kws.float");
  EXPECT_EQ(names[1], "kws.mitchell");

  const auto cfg = reg.server_config("kws.mitchell");
  EXPECT_EQ(cfg.mode, nn::Mode::kQuantApprox);
  EXPECT_EQ(cfg.in_c, 1);
  EXPECT_EQ(cfg.in_h, 4);
  EXPECT_EQ(cfg.in_w, 4);
  EXPECT_EQ(cfg.exact_fallback, &exact);
  ASSERT_TRUE(static_cast<bool>(cfg.model_factory));
  ASSERT_TRUE(static_cast<bool>(cfg.mul_factory));
  EXPECT_NE(cfg.model_factory(), nullptr);
  EXPECT_NE(cfg.mul_factory(), nullptr);
}

TEST(ShardRegistry, DuplicateAndMissingVariantsThrow) {
  ModelRegistry reg;
  reg.add(float_variant("v"));
  EXPECT_THROW(reg.add(float_variant("v")), std::invalid_argument);
  Variant broken;
  broken.name = "no-factory";
  EXPECT_THROW(reg.add(std::move(broken)), std::invalid_argument);
  EXPECT_THROW(reg.server_config("missing"), std::out_of_range);
}

}  // namespace
}  // namespace nga::shard
