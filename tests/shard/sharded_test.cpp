// ShardedServer contract:
//   * deterministic tenant→shard routing, shared-nothing serving;
//   * per-tenant AIMD budgets refuse a storm with kTenantLimited while
//     a quiet tenant sails through;
//   * injected shard kill → failover: ring eviction, graceful victim
//     drain, reroute-under-spill-budget to survivors, restart brings
//     the keys home;
//   * the two-level drain invariant holds across all of it
//     (per shard incarnation AND globally);
//   * integrity scrub registrations are shard-scoped: the registry
//     returns to baseline after a shard kill/restart cycle (ISSUE 10
//     satellite regression).
#include "shard/shard.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "approx/multipliers.hpp"
#include "integrity/integrity.hpp"
#include "nn/layers.hpp"

namespace nga::shard {
namespace {

using serve::Outcome;
using serve::RejectReason;
using serve::Response;
using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr int kC = 1, kH = 4, kW = 4;

nn::Tensor make_input(int i) {
  nn::Tensor x(kC, kH, kW);
  for (std::size_t j = 0; j < x.v.size(); ++j)
    x.v[j] = float((i * 31 + int(j) * 7) % 17) / 17.f;
  return x;
}

// Burns wall time so per-tenant in-flight budgets bind deterministically.
class SleepLayer final : public nn::Layer {
 public:
  explicit SleepLayer(microseconds d) : d_(d) {}
  nn::Tensor forward(const nn::Tensor& x, const nn::Exec&) override {
    std::this_thread::sleep_for(d_);
    return x;
  }
  nn::Tensor backward(const nn::Tensor& dy) override { return dy; }
  std::string name() const override { return "sleep"; }

 private:
  microseconds d_;
};

std::unique_ptr<nn::Model> make_float_model(microseconds sleep) {
  util::Xoshiro256 rng(7);
  auto m = std::make_unique<nn::Model>("shard-test");
  if (sleep.count() > 0) m->add(std::make_unique<SleepLayer>(sleep));
  m->add(std::make_unique<nn::Dense>(kC * kH * kW, 10, rng));
  return m;
}

serve::ServerConfig float_config(microseconds sleep = microseconds(0)) {
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.max_batch = 4;
  cfg.batch_linger = microseconds(100);
  cfg.in_c = kC;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.mode = nn::Mode::kFloat;
  cfg.model_factory = [sleep] { return make_float_model(sleep); };
  return cfg;
}

ShardedConfig manual_sharded(int shards,
                             microseconds sleep = microseconds(0)) {
  ShardedConfig sc;
  sc.shards = shards;
  sc.vnodes = 64;
  sc.seed = 7;
  sc.shard_config = [sleep](int) { return float_config(sleep); };
  sc.failover.enabled = true;
  sc.failover.check_every = milliseconds(0);  // manual poll_health()
  sc.failover.restart_hold = milliseconds(0);
  return sc;
}

// First two tenant names whose primary shards differ.
std::pair<std::string, std::string> two_tenants(const ShardedServer& ss) {
  std::string a = "t0";
  const int sa = ss.shard_of(a);
  for (int i = 1; i < 256; ++i) {
    std::string b = "t" + std::to_string(i);
    if (ss.shard_of(b) != sa) return {a, b};
  }
  ADD_FAILURE() << "no tenant pair with distinct shards in 256 candidates";
  return {a, a};
}

void expect_accounting(const ShardedServer& ss) {
  const auto a = ss.accounting();
  EXPECT_TRUE(a.per_shard_ok)
      << "an incarnation broke served+rejected+shed == submitted";
  EXPECT_TRUE(a.global_ok)
      << "submitted=" << a.submitted << " layer_rejected=" << a.layer_rejected
      << " routed=" << a.routed << " shard_submitted=" << a.shard_submitted;
  EXPECT_EQ(a.shard_served + a.shard_rejected + a.shard_shed,
            a.shard_submitted);
}

TEST(ShardedServer, RoutesTenantsDeterministicallyAcrossShardNothingShards) {
  ModelRegistry reg;
  Variant v;
  v.name = "kws.float";
  v.mode = nn::Mode::kFloat;
  v.in_c = kC;
  v.in_h = kH;
  v.in_w = kW;
  v.model_factory = [] { return make_float_model(microseconds(0)); };
  reg.add(std::move(v));

  ShardedConfig sc;
  sc.shards = 2;
  sc.vnodes = 64;
  sc.seed = 7;
  sc.registry = &reg;
  sc.variant = "kws.float";
  sc.tune = [](int, serve::ServerConfig& c) {
    c.workers = 1;
    c.queue_capacity = 64;
  };
  sc.failover.check_every = milliseconds(0);
  ShardedServer ss(sc);
  ss.start();

  const auto [ta, tb] = two_tenants(ss);
  EXPECT_EQ(ss.shard_of(ta), ss.live_shard_of(ta));
  EXPECT_NE(ss.shard_of(ta), ss.shard_of(tb));

  for (int i = 0; i < 8; ++i) {
    auto ra = ss.submit(ta, make_input(i), milliseconds(5000)).get();
    auto rb = ss.submit(tb, make_input(i), milliseconds(5000)).get();
    ASSERT_EQ(ra.outcome, Outcome::kServed);
    ASSERT_EQ(rb.outcome, Outcome::kServed);
  }
  // Shared-nothing: each tenant's traffic landed only on its shard.
  EXPECT_EQ(ss.shard_stats(ss.shard_of(ta)).submitted, 8u);
  EXPECT_EQ(ss.shard_stats(ss.shard_of(tb)).submitted, 8u);
  ss.drain();
  expect_accounting(ss);
  const auto st = ss.stats();
  EXPECT_EQ(st.submitted, 16u);
  EXPECT_EQ(st.routed, 16u);
  EXPECT_EQ(st.rerouted, 0u);
  EXPECT_EQ(st.failovers, 0u);
}

TEST(ShardedServer, TenantBudgetShedsStormWithTypedReasonNotTheNeighbor) {
  auto sc = manual_sharded(1, microseconds(2000));
  sc.tenant.enabled = true;
  sc.tenant.admission.initial_limit = 2;
  sc.tenant.admission.min_limit = 2;
  sc.tenant.admission.max_limit = 2;
  ShardedServer ss(sc);
  ss.start();

  // Storm: 40 submits without waiting — at most the in-flight budget
  // (plus releases racing in) gets through; the rest are refused with
  // the ATTRIBUTABLE tenant reason, not a shard-level one.
  std::vector<std::future<Response>> storm;
  storm.reserve(40);
  for (int i = 0; i < 40; ++i)
    storm.push_back(ss.submit("noisy", make_input(i), milliseconds(5000)));
  // Quiet tenant, closed loop: never over its own budget.
  for (int i = 0; i < 5; ++i) {
    auto r = ss.submit("quiet", make_input(i), milliseconds(5000)).get();
    ASSERT_EQ(r.outcome, Outcome::kServed) << "quiet tenant starved";
  }
  std::size_t limited = 0, served = 0;
  for (auto& f : storm) {
    const auto r = f.get();
    if (r.outcome == Outcome::kServed) ++served;
    if (r.outcome == Outcome::kRejected) {
      ASSERT_EQ(r.reason, RejectReason::kTenantLimited);
      ++limited;
    }
  }
  EXPECT_GT(limited, 0u);
  EXPECT_GT(served, 0u);
  ss.drain();
  const auto st = ss.stats();
  EXPECT_EQ(st.tenant_limited, limited);
  bool saw_noisy = false;
  for (const auto& [name, ts] : ss.tenant_stats()) {
    if (name == "noisy") {
      saw_noisy = true;
      EXPECT_EQ(ts.limited, limited);
      EXPECT_EQ(ts.submitted, 40u);
    }
    if (name == "quiet") {
      EXPECT_EQ(ts.limited, 0u);
    }
  }
  EXPECT_TRUE(saw_noisy);
  expect_accounting(ss);
}

TEST(ShardedServer, KillReroutesToSurvivorsUnderSpillBudget) {
  auto sc = manual_sharded(2);
  sc.failover.restart = false;  // stay down: reroute path under test
  sc.failover.spill_burst = 5;
  sc.failover.spill_per_sec = 0.0;  // no refill: the bound is exact
  ShardedServer ss(sc);
  ss.start();
  const auto [ta, tb] = two_tenants(ss);
  const int victim = ss.shard_of(ta);

  ss.kill_shard(victim);
  ss.poll_health();  // drains the victim inline; no restart
  EXPECT_EQ(ss.shard_health(victim), ShardHealth::kDown);
  EXPECT_EQ(ss.live_shard_of(ta), ss.shard_of(tb));

  // 30 victim-tenant requests: exactly the spill burst crosses to the
  // survivor, the rest are refused — a dying shard's keys cannot
  // stampede the healthy one.
  std::size_t crossed = 0, refused = 0;
  for (int i = 0; i < 30; ++i) {
    const auto r = ss.submit(ta, make_input(i), milliseconds(5000)).get();
    if (r.outcome == Outcome::kServed) ++crossed;
    if (r.outcome == Outcome::kRejected &&
        r.reason == RejectReason::kOverloaded)
      ++refused;
  }
  EXPECT_EQ(crossed, 5u);
  EXPECT_EQ(refused, 25u);
  const auto st = ss.stats();
  EXPECT_EQ(st.failovers, 1u);
  EXPECT_EQ(st.kills, 1u);
  EXPECT_EQ(st.restarts, 0u);
  EXPECT_EQ(st.rerouted, 5u);
  EXPECT_EQ(st.spill_rejected, 25u);
  // The non-victim tenant is untouched by the spill budget.
  auto rb = ss.submit(tb, make_input(0), milliseconds(5000)).get();
  EXPECT_EQ(rb.outcome, Outcome::kServed);

  // Kill the survivor too: no shard up → typed layer reject.
  ss.kill_shard(ss.shard_of(tb));
  ss.poll_health();
  auto r = ss.submit(ta, make_input(0), milliseconds(5000)).get();
  EXPECT_EQ(r.outcome, Outcome::kRejected);
  EXPECT_EQ(r.reason, RejectReason::kNotServing);
  EXPECT_GE(ss.stats().no_shard, 1u);
  ss.drain();
  expect_accounting(ss);
}

TEST(ShardedServer, RestartBringsTheVictimsKeysHome) {
  auto sc = manual_sharded(2);
  ShardedServer ss(sc);
  ss.start();
  const auto [ta, tb] = two_tenants(ss);
  const int victim = ss.shard_of(ta);

  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(ss.submit(ta, make_input(i), milliseconds(5000)).get().outcome,
              Outcome::kServed);
  ss.kill_shard(victim);
  ss.poll_health();  // fail over AND restart inline (hold = 0)
  EXPECT_EQ(ss.shard_health(victim), ShardHealth::kUp);
  EXPECT_EQ(ss.live_shard_of(ta), victim) << "keys must come home";
  auto r = ss.submit(ta, make_input(9), milliseconds(5000)).get();
  EXPECT_EQ(r.outcome, Outcome::kServed);

  const auto st = ss.stats();
  EXPECT_EQ(st.failovers, 1u);
  EXPECT_EQ(st.restarts, 1u);
  // Pre-kill traffic lives in the retired incarnation, post-restart
  // traffic in the fresh one; shard_stats sums both.
  EXPECT_EQ(ss.shard_stats(victim).submitted, 5u);
  EXPECT_EQ(ss.shard_stats(ss.shard_of(tb)).submitted, 0u);
  ss.drain();
  expect_accounting(ss);
}

TEST(ShardedServer, MonitorThreadFailsOverWithoutPolling) {
  auto sc = manual_sharded(2);
  sc.failover.check_every = milliseconds(5);
  ShardedServer ss(sc);
  ss.start();
  const auto [ta, tb] = two_tenants(ss);
  (void)tb;
  const int victim = ss.shard_of(ta);
  ss.kill_shard(victim);
  // The monitor owns detection + drain + restart; just wait for it.
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(3000);
  while (ss.stats().restarts == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(5));
  EXPECT_EQ(ss.stats().failovers, 1u);
  EXPECT_EQ(ss.stats().restarts, 1u);
  EXPECT_EQ(ss.shard_health(victim), ShardHealth::kUp);
  ss.drain();
  expect_accounting(ss);
}

// ---- ISSUE 10 satellite: shard-scoped scrub deregistration ----------

TEST(ShardScrubScope, RegistryReturnsToBaselineAfterKillRestartAndDrain) {
  auto& scrubber = integrity::Scrubber::instance();
  const std::size_t baseline = scrubber.table_count();

  std::shared_ptr<const ax::ApproxMult8> gen =
      std::move(ax::table2_multipliers().front());
  static const nn::MulTable exact;

  auto sc = manual_sharded(2);
  sc.shard_config = [gen](int) {
    auto cfg = float_config();
    cfg.mode = nn::Mode::kQuantApprox;
    cfg.exact_fallback = &exact;
    cfg.mul_factory = [gen] {
      return std::make_shared<const nn::MulTable>(gen);
    };
    cfg.integrity.enabled = true;
    cfg.integrity.scrub_on_trip = false;
    return cfg;
  };
  ShardedServer ss(sc);
  ss.start();

  // Worker registration is asynchronous (it happens on the worker
  // thread); wait for both shards' single workers to appear.
  const auto wait_count = [&](std::size_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + milliseconds(3000);
    while (scrubber.table_count() != want &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(milliseconds(2));
    return scrubber.table_count();
  };
  ASSERT_EQ(wait_count(baseline + 2), baseline + 2);
  EXPECT_EQ(scrubber.scope_count("shard0"), 1u);
  EXPECT_EQ(scrubber.scope_count("shard1"), 1u);

  // Kill/restart cycle: the dead incarnation's registration is purged
  // (scope backstop on drain), the fresh incarnation re-registers —
  // no leak, no double-count.
  ss.kill_shard(0);
  ss.poll_health();
  ASSERT_EQ(wait_count(baseline + 2), baseline + 2)
      << "restarted shard must re-register exactly its own tables";
  EXPECT_EQ(scrubber.scope_count("shard0"), 1u);

  // Serve a little through the restarted topology, then drain: every
  // scoped registration is gone, the registry is back to baseline.
  for (int i = 0; i < 4; ++i)
    (void)ss.submit("t0", make_input(i), milliseconds(5000)).get();
  ss.drain();
  EXPECT_EQ(scrubber.table_count(), baseline);
  EXPECT_EQ(scrubber.scope_count("shard0"), 0u);
  EXPECT_EQ(scrubber.scope_count("shard1"), 0u);
  expect_accounting(ss);
}

}  // namespace
}  // namespace nga::shard
