#include "approx/multipliers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nga::ax {
namespace {

TEST(ApproxMult, ExactIsExact) {
  const auto m = make_exact();
  const auto e = measure_error(*m);
  EXPECT_EQ(e.mae, 0.0);
  EXPECT_EQ(e.mre_percent, 0.0);
  EXPECT_EQ(e.wce, 0.0);
}

/// Every multiplier's netlist must agree with its behavioural model on
/// ALL 65536 input pairs — the netlists drive the energy model, so a
/// mismatch would silently decouple Table II's error and energy columns.
void check_netlist_equivalence(const ApproxMult8& m) {
  const auto nl = m.netlist();
  ASSERT_EQ(nl.num_inputs(), 16u) << m.name();
  ASSERT_EQ(nl.num_outputs(), 16u) << m.name();
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      const util::u64 out = nl.eval_word(a | (b << 8));
      ASSERT_EQ(out, util::u64(m.multiply(util::u8(a), util::u8(b))))
          << m.name() << " a=" << a << " b=" << b;
    }
}

TEST(ApproxMult, ExactNetlistEquivalence) {
  check_netlist_equivalence(*make_exact());
}
TEST(ApproxMult, TruncatedNetlistEquivalence) {
  check_netlist_equivalence(*make_truncated(2));
  check_netlist_equivalence(*make_truncated(6));
  check_netlist_equivalence(*make_truncated(8));
}
TEST(ApproxMult, LoaNetlistEquivalence) {
  check_netlist_equivalence(*make_loa(5));
}
TEST(ApproxMult, BrokenArrayNetlistEquivalence) {
  check_netlist_equivalence(*make_broken_array(6));
}
TEST(ApproxMult, DrumNetlistEquivalence) {
  check_netlist_equivalence(*make_drum(3));
  check_netlist_equivalence(*make_drum(4));
}
TEST(ApproxMult, MitchellNetlistEquivalence) {
  check_netlist_equivalence(*make_mitchell());
  check_netlist_equivalence(*make_truncated_mitchell(3));
  check_netlist_equivalence(*make_truncated_mitchell(1));
}

TEST(ApproxMult, MitchellPropertiesMatchLiterature) {
  // Mitchell's log multiplier: always underestimates; exact on powers
  // of two; MRE ~3.8%, worst relative error ~11.1%.
  const auto m = make_mitchell();
  double worst_rel = 0.0;
  for (unsigned a = 1; a < 256; ++a)
    for (unsigned b = 1; b < 256; ++b) {
      const unsigned exact = a * b;
      const unsigned got = m->multiply(util::u8(a), util::u8(b));
      ASSERT_LE(got, exact) << a << "*" << b;  // never overestimates
      worst_rel = std::max(worst_rel, double(exact - got) / double(exact));
    }
  EXPECT_EQ(m->multiply(8, 16), 128u);  // powers of two exact
  EXPECT_EQ(m->multiply(128, 2), 256u);
  EXPECT_NEAR(worst_rel, 0.111, 0.015);
  const auto e = measure_error(*m);
  EXPECT_NEAR(e.mre_percent, 3.8, 0.8);
}

TEST(ApproxMult, DrumIsRoughlyUnbiased) {
  // DRUM's forced LSB makes over/under-estimation balance out: the
  // signed mean error is far smaller than the mean absolute error.
  const auto m = make_drum(4);
  double signed_sum = 0.0, abs_sum = 0.0;
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      const double d =
          double(m->multiply(util::u8(a), util::u8(b))) - double(a * b);
      signed_sum += d;
      abs_sum += std::fabs(d);
    }
  EXPECT_LT(std::fabs(signed_sum), abs_sum * 0.2);
}

TEST(ApproxMult, TruncationErrorGrowsWithDroppedColumns) {
  double last = -1.0;
  for (unsigned k : {1u, 2u, 4u, 6u, 8u}) {
    const auto e = measure_error(*make_truncated(k));
    EXPECT_GT(e.mre_percent, last) << k;
    last = e.mre_percent;
  }
}

TEST(ApproxMult, Table2SetSpansThePaperRange) {
  // Table II: MRE from 0.03% to 19.45%, monotone as listed; MAE grows
  // with MRE overall.
  const auto set = table2_multipliers();
  ASSERT_EQ(set.size(), 10u);
  std::vector<double> mre;
  for (const auto& m : set) mre.push_back(measure_error(*m).mre_percent);
  EXPECT_LT(mre.front(), 0.15);  // near-exact end
  EXPECT_GT(mre.back(), 12.0);   // aggressive end
  for (std::size_t i = 1; i < mre.size(); ++i)
    EXPECT_GT(mre[i], mre[i - 1] * 0.8) << i;  // roughly increasing
}

TEST(ApproxMult, EnergySavingsIncreaseWithAggressiveness) {
  // The Table II economics: more error, less switched capacitance.
  const double e_small = energy_saving_percent(*make_truncated(2), 400);
  const double e_large = energy_saving_percent(*make_truncated(8), 400);
  EXPECT_GT(e_small, -5.0);
  EXPECT_GT(e_large, e_small + 10.0);
  EXPECT_LT(e_large, 100.0);
  // The exact multiplier saves nothing.
  EXPECT_NEAR(energy_saving_percent(*make_exact(), 400), 0.0, 3.0);
}

TEST(ApproxMult, ZeroOperandGivesZero) {
  for (const auto& m : table2_multipliers()) {
    for (unsigned a = 0; a < 256; a += 17) {
      EXPECT_EQ(m->multiply(util::u8(a), 0), 0u) << m->name();
      EXPECT_EQ(m->multiply(0, util::u8(a)), 0u) << m->name();
    }
  }
}

}  // namespace
}  // namespace nga::ax
