#include "bitheap/bitheap.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nga::bh {
namespace {

using util::u64;

/// Sum-of-products harness: k products of wxw bits through one heap.
hw::Netlist build_sop(unsigned w, unsigned k, Strategy s,
                      CompressionStats* stats = nullptr) {
  hw::Netlist nl;
  BitHeap heap(nl);
  std::vector<std::vector<int>> as(k), bs(k);
  for (unsigned t = 0; t < k; ++t) {
    as[t].resize(w);
    bs[t].resize(w);
    for (auto& x : as[t]) x = nl.add_input();
    for (auto& x : bs[t]) x = nl.add_input();
  }
  for (unsigned t = 0; t < k; ++t) heap.add_product(0, as[t], bs[t]);
  auto sum = heap.compress(s);
  const unsigned out_bits = 2 * w + unsigned(util::msb_index(k)) + 1;
  sum.resize(out_bits, nl.constant(false));
  for (unsigned i = 0; i < out_bits; ++i) nl.mark_output(sum[i]);
  if (stats) *stats = heap.stats();
  return nl;
}

u64 sop_reference(u64 in, unsigned w, unsigned k) {
  u64 sum = 0;
  for (unsigned t = 0; t < k; ++t) {
    const u64 a = (in >> (2 * t * w)) & util::mask64(w);
    const u64 b = (in >> ((2 * t + 1) * w)) & util::mask64(w);
    sum += a * b;
  }
  return sum;
}

class BitHeapStrategyTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(BitHeapStrategyTest, SingleProductExhaustive4x4) {
  const auto nl = build_sop(4, 1, GetParam());
  for (u64 in = 0; in < 256; ++in)
    ASSERT_EQ(nl.eval_word(in), sop_reference(in, 4, 1)) << in;
}

TEST_P(BitHeapStrategyTest, TwoProductsExhaustive3x3) {
  const auto nl = build_sop(3, 2, GetParam());
  for (u64 in = 0; in < (u64{1} << 12); ++in)
    ASSERT_EQ(nl.eval_word(in), sop_reference(in, 3, 2)) << in;
}

TEST_P(BitHeapStrategyTest, FourProductsRandom5x5) {
  const auto nl = build_sop(5, 4, GetParam());
  util::Xoshiro256 rng(123);
  for (int i = 0; i < 20000; ++i) {
    const u64 in = rng() & util::mask64(40);
    ASSERT_EQ(nl.eval_word(in), sop_reference(in, 5, 4)) << in;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, BitHeapStrategyTest,
                         ::testing::Values(Strategy::kRippleTree,
                                           Strategy::kCompressorTree,
                                           Strategy::kLut6Tree));

TEST(BitHeap, NegativeWeightsFractionalBits) {
  hw::Netlist nl;
  BitHeap heap(nl);
  std::vector<int> a(4);
  for (auto& x : a) x = nl.add_input();
  heap.add_word(-4, a);          // Q0.4 word
  heap.add_constant_bit(-1);     // + 0.5
  auto sum = heap.compress(Strategy::kCompressorTree);
  for (int bit : sum) nl.mark_output(bit);
  EXPECT_EQ(heap.stats().final_adder_width, int(sum.size()));
  for (u64 x = 0; x < 16; ++x) {
    // result LSB has weight 2^-4: sum = x + 8.
    EXPECT_EQ(nl.eval_word(x) & util::mask64(5), x + 8);
  }
}

TEST(BitHeap, SignedWordTwosComplement) {
  hw::Netlist nl;
  BitHeap heap(nl);
  std::vector<int> a(4), b(4);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  heap.add_signed_word(0, a, 5);
  heap.add_signed_word(0, b, 5);
  auto sum = heap.compress(Strategy::kCompressorTree);
  sum.resize(6, nl.constant(false));
  for (int i = 0; i < 6; ++i) nl.mark_output(sum[i]);
  for (u64 x = 0; x < 16; ++x)
    for (u64 y = 0; y < 16; ++y) {
      const auto expect =
          (util::sign_extend(x, 4) + util::sign_extend(y, 4)) & 63;
      EXPECT_EQ(nl.eval_word(x | (y << 4)), u64(expect)) << x << " " << y;
    }
}

TEST(BitHeap, CompressorTreeHasLowerDepthThanRipple) {
  // Fig. 2's reason to exist: a compressor tree flattens the carry
  // structure. Depth must be much lower, at equal function.
  CompressionStats s1, s2;
  const auto ripple = build_sop(8, 4, Strategy::kRippleTree, &s1);
  const auto tree = build_sop(8, 4, Strategy::kCompressorTree, &s2);
  EXPECT_LT(tree.cost().depth, ripple.cost().depth);
  EXPECT_GT(s2.full_adders, 0);
  EXPECT_GT(s1.stages, 0);
  // And the tree pays for it with one wide final adder only.
  EXPECT_GT(s2.final_adder_width, 0);
}

TEST(BitHeap, Lut6ModeUsesParallelCounters) {
  CompressionStats s;
  build_sop(6, 6, Strategy::kLut6Tree, &s);
  EXPECT_GT(s.lut6_compressors, 0);
}

TEST(BitHeap, HeightAndWeightIntrospection) {
  hw::Netlist nl;
  BitHeap heap(nl);
  const int x = nl.add_input();
  heap.add_bit(3, x);
  heap.add_bit(3, x);
  heap.add_bit(-2, x);
  EXPECT_EQ(heap.min_weight(), -2);
  EXPECT_EQ(heap.max_weight(), 3);
  EXPECT_EQ(heap.column_height(3), 2u);
  EXPECT_EQ(heap.column_height(0), 0u);
  EXPECT_EQ(heap.max_height(), 2u);
}

}  // namespace
}  // namespace nga::bh
