// NaR and saturation edge behaviour: the two rules a posit robustness
// story leans on are (1) NaR is absorbing through every operation, and
// (2) out-of-range magnitudes saturate to maxpos/minpos — arithmetic
// itself NEVER manufactures a NaR from finite operands.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "posit/posit.hpp"

namespace nga::ps {
namespace {

template <typename P>
class NarEdge : public ::testing::Test {};

using Formats = ::testing::Types<posit<8, 0>, posit<8, 2>, posit<16, 1>,
                                 posit<32, 2>>;
TYPED_TEST_SUITE(NarEdge, Formats);

TYPED_TEST(NarEdge, NarIsAbsorbingThroughEveryOp) {
  using P = TypeParam;
  const P n = P::nar();
  const P vals[] = {P::zero(), P::one(), -P::one(), P::maxpos(),
                    P::minpos(), -P::maxpos()};
  for (const P v : vals) {
    EXPECT_TRUE((n + v).is_nar());
    EXPECT_TRUE((v + n).is_nar());
    EXPECT_TRUE((n - v).is_nar());
    EXPECT_TRUE((n * v).is_nar());
    EXPECT_TRUE((v * n).is_nar());
    EXPECT_TRUE((n / v).is_nar());
    EXPECT_TRUE((v / n).is_nar());
    EXPECT_TRUE(P::fma(n, v, v).is_nar());
    EXPECT_TRUE(P::fma(v, v, n).is_nar());
  }
  EXPECT_TRUE((-n).is_nar());  // NaR is its own negation
  EXPECT_EQ((-n).bits(), n.bits());
}

TYPED_TEST(NarEdge, DivByZeroAndSqrtOfNegativeAreTheOnlyNarSources) {
  using P = TypeParam;
  EXPECT_TRUE((P::one() / P::zero()).is_nar());
  EXPECT_TRUE(P::sqrt(-P::one()).is_nar());
  EXPECT_FALSE(P::sqrt(P::zero()).is_nar());
}

TYPED_TEST(NarEdge, OverflowSaturatesToMaxposNeverNar) {
  using P = TypeParam;
  const P big = P::maxpos();
  EXPECT_EQ((big * big).bits(), P::maxpos().bits());
  EXPECT_EQ((big + big).bits(), P::maxpos().bits());
  EXPECT_EQ(((-big) * big).bits(), (-P::maxpos()).bits());
  EXPECT_EQ(((-big) - big).bits(), (-P::maxpos()).bits());
  EXPECT_EQ((big / P::minpos()).bits(), P::maxpos().bits());
}

TYPED_TEST(NarEdge, UnderflowSaturatesToMinposNeverZero) {
  using P = TypeParam;
  const P tiny = P::minpos();
  // minpos^2 is below the lattice: saturates to minpos, not to zero —
  // a nonzero product never collapses to zero (no FTZ in posits).
  EXPECT_EQ((tiny * tiny).bits(), P::minpos().bits());
  EXPECT_EQ((tiny / P::maxpos()).bits(), P::minpos().bits());
  EXPECT_EQ(((-tiny) * tiny).bits(), (-P::minpos()).bits());
}

TYPED_TEST(NarEdge, RoundPackSaturationBoundaryIsExact) {
  using P = TypeParam;
  const util::u64 top = util::u64{1} << 63;
  EXPECT_EQ(P::round_pack(false, P::kMaxScale, top, false).bits(),
            P::maxpos().bits());
  // One scale below the ceiling is in range: rounds, never saturates
  // past maxpos, never produces NaR.
  const P below = P::round_pack(false, P::kMaxScale - 1, top, false);
  EXPECT_FALSE(below.is_nar());
  EXPECT_LE(below.bits(), P::maxpos().bits());
  EXPECT_EQ(P::round_pack(false, -P::kMaxScale, top, false).bits(),
            P::minpos().bits());
  EXPECT_EQ(P::round_pack(false, -P::kMaxScale - 1, top, false).bits(),
            P::minpos().bits());
  EXPECT_EQ(P::round_pack(true, P::kMaxScale + 5, top, true).bits(),
            (-P::maxpos()).bits());
}

TYPED_TEST(NarEdge, QuireNarPoisonIsStickyUntilClear) {
  using P = TypeParam;
  quire<P::kBits, P::kEs> q;
  q.add_product(P::one(), P::one());
  q.add_product(P::nar(), P::one());
  EXPECT_TRUE(q.is_nar());
  EXPECT_TRUE(q.to_posit().is_nar());
  // Further accumulation cannot un-poison it...
  q.add_product(P::one(), P::one());
  EXPECT_TRUE(q.to_posit().is_nar());
  // ...only clear() can.
  q.clear();
  EXPECT_TRUE(q.is_zero());
  q.add_product(P::one(), P::one());
  EXPECT_EQ(q.to_posit().bits(), P::one().bits());
}

TYPED_TEST(NarEdge, NarUnpacksAsNarNotGarbage) {
  using P = TypeParam;
  const auto u = P::nar().unpack();
  EXPECT_TRUE(u.is_nar);
  EXPECT_FALSE(u.is_zero);
  const auto z = P::zero().unpack();
  EXPECT_TRUE(z.is_zero);
  EXPECT_FALSE(z.is_nar);
}

TYPED_TEST(NarEdge, NarRoundTripsThroughDouble) {
  using P = TypeParam;
  EXPECT_TRUE(std::isnan(P::nar().to_double()));
  EXPECT_TRUE(P(std::numeric_limits<double>::quiet_NaN()).is_nar());
  EXPECT_TRUE(P(std::numeric_limits<double>::infinity()).is_nar());
  EXPECT_TRUE(P(-std::numeric_limits<double>::infinity()).is_nar());
}

}  // namespace
}  // namespace nga::ps
