// The quire: exact accumulation of posit products (Section V's fused
// dot-product machinery; width matches the standard's 16n-bit quire for
// ES=2 formats).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "posit/posit.hpp"
#include "posit_oracle.hpp"
#include "util/rng.hpp"

namespace nga::ps {
namespace {

using testing::check_rounded;
using testing::quad;

TEST(Quire, WidthMatchesStandardForEs2) {
  // posit standard: quire width = 16n for es=2.
  EXPECT_EQ((quire<16, 2>::kWords * 64), 256u);
  EXPECT_EQ((quire<32, 2>::kWords * 64), 512u);
  EXPECT_EQ((quire<8, 2>::kWords * 64), 128u);
}

TEST(Quire, SingleProductEqualsMul) {
  // With one product the quire must round exactly like mul.
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 50000; ++i) {
    const auto a = posit16::from_bits(util::u16(rng()));
    const auto b = posit16::from_bits(util::u16(rng()));
    if (a.is_nar() || b.is_nar()) continue;
    quire<16, 1> q;
    q.add_product(a, b);
    EXPECT_EQ(q.to_posit(), a * b)
        << a.to_double() << " * " << b.to_double();
  }
}

TEST(Quire, DotProductIsCorrectlyRoundedExactSum) {
  util::Xoshiro256 rng(6);
  for (int trial = 0; trial < 2000; ++trial) {
    const int n = 1 + int(rng.below(24));
    quire<16, 1> q;
    quad exact = 0;
    for (int i = 0; i < n; ++i) {
      const auto a = posit16::from_bits(util::u16(rng()));
      const auto b = posit16::from_bits(util::u16(rng()));
      if (a.is_nar() || b.is_nar()) continue;
      q.add_product(a, b);
      exact += quad(a.to_double()) * quad(b.to_double());
    }
    ASSERT_TRUE((check_rounded<16, 1>(exact, q.to_posit(), "quire-dot")));
  }
}

TEST(Quire, OrderIndependence) {
  // Exact accumulation must be independent of summation order; naive
  // posit accumulation is not.
  util::Xoshiro256 rng(7);
  std::vector<std::pair<posit16, posit16>> terms;
  for (int i = 0; i < 64; ++i) {
    auto a = posit16::from_bits(util::u16(rng()));
    auto b = posit16::from_bits(util::u16(rng()));
    if (a.is_nar()) a = posit16::one();
    if (b.is_nar()) b = posit16::one();
    terms.push_back({a, b});
  }
  quire<16, 1> q1;
  for (const auto& [a, b] : terms) q1.add_product(a, b);
  for (int shuffle = 0; shuffle < 10; ++shuffle) {
    for (std::size_t i = terms.size(); i > 1; --i)
      std::swap(terms[i - 1], terms[rng.below(i)]);
    quire<16, 1> q2;
    for (const auto& [a, b] : terms) q2.add_product(a, b);
    EXPECT_EQ(q1.to_posit(), q2.to_posit());
  }
}

TEST(Quire, CancellationThatNaiveAccumulationLoses) {
  // (big * big) + (3 * 2) - (big * big) == 6 exactly in the quire.
  const auto big = posit16::from_double(1 << 14);
  quire<16, 1> q;
  q.add_product(big, big);
  q.add_product(posit16(3.0), posit16(2.0));
  q.sub_product(big, big);
  EXPECT_EQ(q.to_posit().to_double(), 6.0);

  posit16 naive = big * big;
  naive = naive + posit16(3.0) * posit16(2.0);
  naive = naive - big * big;
  EXPECT_NE(naive.to_double(), 6.0);  // the rounding error the quire avoids
}

TEST(Quire, MinposSquaredIsRepresentedExactly) {
  // The window reaches down to minpos^2 = 2^-56. Accumulating 2^12 of
  // them gives 2^-44, which is below minpos (2^-28): conversion must
  // saturate to minpos (posits never round a nonzero sum to zero), and
  // subtracting the same terms must restore an exact zero.
  quire<16, 1> q;
  const auto mp = posit16::minpos();
  for (int i = 0; i < 1 << 12; ++i) q.add_product(mp, mp);
  EXPECT_EQ(q.to_posit(), posit16::minpos());
  for (int i = 0; i < 1 << 12; ++i) q.sub_product(mp, mp);
  EXPECT_TRUE(q.to_posit().is_zero());
}

TEST(Quire, MaxposSquaredAccumulatesWithoutOverflow) {
  // 30 carry-guard bits: maxpos^2 can be accumulated ~2^30 times. Probe
  // a modest 2^10 and verify against the exact value (saturates to
  // maxpos on conversion).
  quire<16, 1> q;
  const auto mp = posit16::maxpos();
  for (int i = 0; i < 1024; ++i) q.add_product(mp, mp);
  EXPECT_EQ(q.to_posit(), posit16::maxpos());
  for (int i = 0; i < 1024; ++i) q.sub_product(mp, mp);
  EXPECT_TRUE(q.to_posit().is_zero());
}

TEST(Quire, AddSubPositsDirectly) {
  util::Xoshiro256 rng(8);
  for (int trial = 0; trial < 5000; ++trial) {
    quire<16, 1> q;
    quad exact = 0;
    for (int i = 0; i < 8; ++i) {
      const auto a = posit16::from_bits(util::u16(rng()));
      if (a.is_nar()) continue;
      if (i % 2) {
        q.sub(a);
        exact -= quad(a.to_double());
      } else {
        q.add(a);
        exact += quad(a.to_double());
      }
    }
    ASSERT_TRUE((check_rounded<16, 1>(exact, q.to_posit(), "quire-sum")));
  }
}

TEST(Quire, NaRPoisonsUntilClear) {
  quire<16, 1> q;
  q.add(posit16(1.0));
  q.add(posit16::nar());
  EXPECT_TRUE(q.to_posit().is_nar());
  q.add(posit16(5.0));
  EXPECT_TRUE(q.to_posit().is_nar());
  q.clear();
  EXPECT_TRUE(q.to_posit().is_zero());
  q.add(posit16(5.0));
  EXPECT_EQ(q.to_posit().to_double(), 5.0);
}

TEST(Quire, Posit32Smoke) {
  quire<32, 2> q;
  const auto a = posit32(1.0 / 3.0);
  q.add_product(a, posit32(3.0));
  // round(1/3)*3 != 1 exactly, but must be very close.
  const double r = q.to_posit().to_double();
  EXPECT_NEAR(r, 1.0, 1e-7);
  // Exactness probe: 2^20 ladder of minpos^2-scaled values.
  quire<32, 2> q2;
  const auto tiny = posit32::from_double(std::ldexp(1.0, -60));
  for (int i = 0; i < 1024; ++i) q2.add_product(tiny, tiny);
  EXPECT_EQ(q2.to_posit().to_double(), std::ldexp(1.0, -110));
}

TEST(Quire, FixedWindowRoundTrip) {
  // Section V: a posit16 converts exactly to a 58-bit fixed window and
  // back; addition through the window equals posit addition.
  EXPECT_EQ(posit16::fixed_window_bits(), 58);
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 50000; ++i) {
    const auto a = posit16::from_bits(util::u16(rng()));
    const auto b = posit16::from_bits(util::u16(rng()));
    if (a.is_nar() || b.is_nar()) continue;
    EXPECT_EQ(posit16::from_fixed_window(a.to_fixed_window()), a);
    const auto sum_fixed =
        posit16::from_fixed_window(a.to_fixed_window() + b.to_fixed_window());
    EXPECT_EQ(sum_fixed, a + b)
        << a.to_double() << " + " << b.to_double();
  }
}

}  // namespace
}  // namespace nga::ps
