#include <gtest/gtest.h>

#include <cmath>

#include "posit/posit.hpp"
#include "posit_oracle.hpp"

namespace nga::ps {
namespace {

using testing::decode_value;

TEST(PositDecode, HandPickedPosit8Es0) {
  using P = posit<8, 0>;
  EXPECT_EQ(P::from_bits(0x40).to_double(), 1.0);   // 0100_0000
  EXPECT_EQ(P::from_bits(0x60).to_double(), 2.0);   // 0110_0000
  EXPECT_EQ(P::from_bits(0x50).to_double(), 1.5);   // 0101_0000
  EXPECT_EQ(P::from_bits(0x20).to_double(), 0.5);   // 0010_0000
  EXPECT_EQ(P::from_bits(0x7f).to_double(), 64.0);  // maxpos = 2^6
  EXPECT_EQ(P::from_bits(0x01).to_double(), 1.0 / 64.0);  // minpos
  EXPECT_EQ(P::from_bits(0xc0).to_double(), -1.0);  // two's complement of 1
  EXPECT_TRUE(P::from_bits(0x80).is_nar());
  EXPECT_TRUE(P::from_bits(0x00).is_zero());
}

TEST(PositDecode, HandPickedPosit16Es1) {
  using P = posit16;
  EXPECT_EQ(P::from_bits(0x4000).to_double(), 1.0);
  EXPECT_EQ(P::maxpos().to_double(), std::ldexp(1.0, 28));
  EXPECT_EQ(P::minpos().to_double(), std::ldexp(1.0, -28));
  EXPECT_EQ(P::one().next().to_double(), 1.0 + std::ldexp(1.0, -12));
  // 0101_0000_0000_0000: regime k=0, e=1 -> 2.0
  EXPECT_EQ(P::from_bits(0x5000).to_double(), 2.0);
}

template <unsigned N, unsigned ES>
void exhaustive_decode_matches_reference() {
  using P = posit<N, ES>;
  for (util::u64 b = 0; b < (util::u64{1} << N); ++b) {
    const P p = P::from_bits(typename P::storage_t(b));
    const double ref = decode_value<N, ES>(b);
    if (std::isnan(ref)) {
      EXPECT_TRUE(p.is_nar()) << "bits=" << b;
    } else {
      EXPECT_EQ(p.to_double(), ref) << "bits=" << b;
    }
  }
}

TEST(PositDecode, ExhaustivePosit8Es0) {
  exhaustive_decode_matches_reference<8, 0>();
}
TEST(PositDecode, ExhaustivePosit8Es1) {
  exhaustive_decode_matches_reference<8, 1>();
}
TEST(PositDecode, ExhaustivePosit8Es2) {
  exhaustive_decode_matches_reference<8, 2>();
}
TEST(PositDecode, ExhaustivePosit16Es1) {
  exhaustive_decode_matches_reference<16, 1>();
}
TEST(PositDecode, ExhaustivePosit16Es2) {
  exhaustive_decode_matches_reference<16, 2>();
}
TEST(PositDecode, ExhaustivePosit5Es0) {
  exhaustive_decode_matches_reference<5, 0>();
}
TEST(PositDecode, ExhaustivePosit3Es1) {
  exhaustive_decode_matches_reference<3, 1>();
}

template <unsigned N, unsigned ES>
void roundtrip_from_double() {
  using P = posit<N, ES>;
  for (util::u64 b = 0; b < (util::u64{1} << N); ++b) {
    const P p = P::from_bits(typename P::storage_t(b));
    if (p.is_nar()) continue;
    EXPECT_EQ(P::from_double(p.to_double()).bits(), p.bits()) << "bits=" << b;
  }
}

TEST(PositDecode, FromDoubleRoundTrip8) { roundtrip_from_double<8, 0>(); }
TEST(PositDecode, FromDoubleRoundTrip16) { roundtrip_from_double<16, 1>(); }
TEST(PositDecode, FromDoubleRoundTrip16Es2) { roundtrip_from_double<16, 2>(); }

TEST(PositDecode, FromDoubleSpecials) {
  EXPECT_TRUE(posit16::from_double(NAN).is_nar());
  EXPECT_TRUE(posit16::from_double(INFINITY).is_nar());
  EXPECT_TRUE(posit16::from_double(-INFINITY).is_nar());
  EXPECT_TRUE(posit16::from_double(0.0).is_zero());
  EXPECT_TRUE(posit16::from_double(-0.0).is_zero());
  // Saturation, never overflow/underflow:
  EXPECT_EQ(posit16::from_double(1e300), posit16::maxpos());
  EXPECT_EQ(posit16::from_double(-1e300), -posit16::maxpos());
  EXPECT_EQ(posit16::from_double(1e-300), posit16::minpos());
  EXPECT_EQ(posit16::from_double(-1e-300), -posit16::minpos());
}

// --- Ring properties the paper builds Section V on ---------------------

TEST(PositRing, ComparisonIsIntegerComparison16) {
  // Monotone around the ring: for all non-NaR neighbours, the signed
  // integer order equals the value order. (This is the "no separate
  // comparison unit" claim.)
  using P = posit16;
  for (util::u64 b = 0; b < (util::u64{1} << 16); ++b) {
    const P p = P::from_bits(P::storage_t(b));
    const P q = p.next();
    if (p.is_nar() || q.is_nar()) continue;
    EXPECT_LT(p, q) << "bits=" << b;
    EXPECT_LT(p.to_double(), q.to_double()) << "bits=" << b;
  }
}

TEST(PositRing, NaRComparesLeastAndEqualToItself) {
  const auto nar = posit16::nar();
  EXPECT_EQ(nar, nar);
  EXPECT_LT(nar, posit16::from_double(-1e30));
  EXPECT_LT(nar, posit16::zero());
  EXPECT_LT(nar, posit16::maxpos());
}

TEST(PositRing, NegationIsTwosComplement16) {
  using P = posit16;
  for (util::u64 b = 0; b < (util::u64{1} << 16); ++b) {
    const P p = P::from_bits(P::storage_t(b));
    if (p.is_nar()) {
      EXPECT_TRUE((-p).is_nar());
      continue;
    }
    EXPECT_EQ((-p).to_double(), -p.to_double()) << "bits=" << b;
    EXPECT_EQ(-(-p), p) << "bits=" << b;
  }
}

TEST(PositRing, ReciprocalOfPowersOfTwoIsExactSymmetry) {
  // Reciprocation is symmetric for posits on exact powers of useed/2:
  // 1/2^s is representable whenever 2^s is.
  using P = posit16;
  for (int s = -P::kMaxScale; s <= P::kMaxScale; ++s) {
    const P p = P::from_double(std::ldexp(1.0, s));
    if (p.to_double() != std::ldexp(1.0, s)) continue;  // not representable
    const P r = P::one() / p;
    EXPECT_EQ(r.to_double(), std::ldexp(1.0, -s)) << "s=" << s;
  }
}

TEST(PositRing, NoRedundantZero) {
  // Exactly one zero on the ring (unlike IEEE's +-0).
  int zeros = 0;
  for (util::u64 b = 0; b < (util::u64{1} << 16); ++b)
    if (posit16::from_bits(util::u16(b)).is_zero()) ++zeros;
  EXPECT_EQ(zeros, 1);
}

TEST(PositRing, NextPriorWalkTheWholeRing) {
  posit8 p = posit8::zero();
  int steps = 0;
  do {
    p = p.next();
    ++steps;
  } while (!p.is_zero() && steps <= 300);
  EXPECT_EQ(steps, 256);
}

}  // namespace
}  // namespace nga::ps
