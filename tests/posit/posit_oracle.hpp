// Shared oracle machinery for posit arithmetic tests.
//
// Independence from the library under test:
//   * values are decoded by a deliberately naive bit-walking decoder
//     (decode_value), written from the posit definition and sharing no
//     code with src/posit;
//   * rounding is *verified*, not recomputed: a result r is accepted iff
//     the exact result v lies inside r's rounding interval. The interval
//     endpoints are the posit standard's tie points — the value of the
//     encoding stream "body ++ guard=1 ++ zeros", i.e. the (N+1)-bit
//     posit (bits<<1)|1. (Across fraction boundaries this is the
//     arithmetic midpoint; across regime/exponent boundaries it is NOT,
//     which is precisely what a naive midpoint oracle would get wrong.)
//   * exact comparisons are injected as a comparator so that division
//     and square root can use cross-multiplication instead of inexact
//     quotients; direct values use __float128, which holds every
//     intermediate this suite produces exactly.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "posit/posit.hpp"

namespace nga::ps::testing {

using quad = __float128;

/// Naive reference decoder: walks bits per the posit definition.
/// Exact as long as the format's values fit a double (N <= 33 or so).
template <unsigned N, unsigned ES>
double decode_value(util::u64 bits) {
  bits &= util::mask64(N);
  if (bits == 0) return 0.0;
  if (bits == (util::u64{1} << (N - 1)))
    return std::numeric_limits<double>::quiet_NaN();
  const bool neg = (bits >> (N - 1)) & 1;
  const util::u64 mag = neg ? ((~bits + 1) & util::mask64(N)) : bits;
  std::vector<int> s;
  for (int i = int(N) - 2; i >= 0; --i) s.push_back(int((mag >> i) & 1));
  const int r0 = s[0];
  std::size_t i = 0;
  while (i < s.size() && s[i] == r0) ++i;
  const int k = r0 ? int(i) - 1 : -int(i);
  if (i < s.size()) ++i;  // terminator
  int e = 0;
  for (unsigned j = 0; j < ES; ++j) {
    e <<= 1;
    if (i < s.size()) e |= s[i++];
  }
  double frac = 1.0, w = 0.5;
  while (i < s.size()) {
    if (s[i++]) frac += w;
    w *= 0.5;
  }
  const double mag_v = std::ldexp(frac, k * (1 << ES) + e);
  return neg ? -mag_v : mag_v;
}

/// The posit-standard tie point just above positive posit p: the value of
/// the (N+1)-bit stream "p's body, guard = 1, zeros...".
template <unsigned N, unsigned ES>
double upper_tie(posit<N, ES> p) {
  static_assert(N + 1 <= 64);
  return decode_value<N + 1, ES>((util::u64(p.bits()) << 1) | 1);
}

/// Verify r == RNE-on-lattice(v) where cmp(t) returns the exact sign of
/// (v - t) for any posit-or-tie value t (these always fit a double).
template <unsigned N, unsigned ES, typename Cmp>
::testing::AssertionResult check_rounded_cmp(Cmp cmp, posit<N, ES> r,
                                             const char* what) {
  using P = posit<N, ES>;
  if (r.is_nar())
    return ::testing::AssertionFailure() << what << ": got NaR for a real";
  const int s0 = cmp(0.0);
  if (s0 == 0) {
    return r.is_zero() ? ::testing::AssertionSuccess()
                       : ::testing::AssertionFailure()
                             << what << ": expected exact zero, got "
                             << r.to_double();
  }
  // Mirror negative cases onto the positive half of the ring: posit
  // negation is an exact lattice symmetry that preserves encoding parity.
  auto pcmp = [&](double t) { return s0 > 0 ? cmp(t) : -cmp(-t); };
  const P pr = s0 > 0 ? r : -r;
  if (pr.is_zero() || pr.is_negative())
    return ::testing::AssertionFailure()
           << what << ": wrong sign/zero, got " << r.to_double();

  if (pcmp(P::maxpos().to_double()) >= 0)
    return pr == P::maxpos() ? ::testing::AssertionSuccess()
                             : ::testing::AssertionFailure()
                                   << what << ": expected saturation to "
                                   << "maxpos, got " << r.to_double();
  if (pcmp(P::minpos().to_double()) <= 0)
    return pr == P::minpos() ? ::testing::AssertionSuccess()
                             : ::testing::AssertionFailure()
                                   << what << ": expected saturation to "
                                   << "minpos, got " << r.to_double();

  // Interior: minpos < v < maxpos.
  const bool even = (util::u64(pr.bits()) & 1) == 0;
  if (pr != P::minpos()) {
    const int cl = pcmp(upper_tie(pr.prior()));
    if (cl < 0 || (cl == 0 && !even))
      return ::testing::AssertionFailure()
             << what << ": below lower tie; got " << r.to_double();
  }
  if (pr != P::maxpos()) {
    const int cu = pcmp(upper_tie(pr));
    if (cu > 0 || (cu == 0 && !even))
      return ::testing::AssertionFailure()
             << what << ": above upper tie; got " << r.to_double();
  }
  return ::testing::AssertionSuccess();
}

/// Convenience wrapper when the exact result is directly a quad value.
template <unsigned N, unsigned ES>
::testing::AssertionResult check_rounded(quad v, posit<N, ES> r,
                                         const char* what) {
  auto cmp = [v](double t) {
    const quad tq = t;
    return v < tq ? -1 : (v > tq ? 1 : 0);
  };
  return check_rounded_cmp<N, ES>(cmp, r, what);
}

/// Corner values that exercise regime/exponent/fraction boundaries.
template <unsigned N, unsigned ES>
std::vector<posit<N, ES>> corner_values() {
  using P = posit<N, ES>;
  std::vector<P> out;
  auto push_ring = [&](P p) {
    out.push_back(p.prior().prior());
    out.push_back(p.prior());
    out.push_back(p);
    out.push_back(p.next());
    out.push_back(p.next().next());
  };
  push_ring(P::zero());
  push_ring(P::one());
  push_ring(-P::one());
  push_ring(P::maxpos());
  push_ring(P::minpos());
  push_ring(-P::maxpos());
  push_ring(-P::minpos());
  for (int s = -P::kMaxScale; s <= P::kMaxScale; s += (1 << ES))
    push_ring(P::from_double(std::ldexp(1.0, s)));
  return out;
}

}  // namespace nga::ps::testing
