// Elementary functions and integer conversions (posit/math.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "posit/math.hpp"
#include "posit_oracle.hpp"
#include "util/rng.hpp"

namespace nga::ps {
namespace {

using testing::check_rounded;
using testing::quad;

TEST(PositMath, ExpLogIdentities) {
  EXPECT_EQ(exp(posit16::zero()), posit16::one());
  EXPECT_EQ(log(posit16::one()), posit16::zero());
  EXPECT_TRUE(log(posit16(-2.0)).is_nar());
  EXPECT_TRUE(log(posit16::zero()).is_nar());  // log 0 -> -inf -> NaR
  EXPECT_EQ(log2(posit16(8.0)).to_double(), 3.0);
  // Round trip within a couple of ulps.
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const posit16 x(rng.uniform(-5.0, 5.0));
    const double back = log(exp(x)).to_double();
    EXPECT_NEAR(back, x.to_double(), std::fabs(x.to_double()) * 4e-3 + 1e-3);
  }
}

TEST(PositMath, FunctionsAreFaithful16) {
  // Faithful = within 1 ulp of the exact value. Verified with the
  // rounding oracle relaxed by one lattice step.
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 20000; ++i) {
    const auto x = posit16::from_bits(util::u16(rng()));
    if (x.is_nar()) continue;
    const double xv = x.to_double();
    struct Case {
      posit16 got;
      double exact;
    };
    std::vector<Case> cases;
    if (std::fabs(xv) < 20) cases.push_back({exp(x), std::exp(xv)});
    if (xv > 0) cases.push_back({log(x), std::log(xv)});
    cases.push_back({tanh(x), std::tanh(xv)});
    cases.push_back({atan(x), std::atan(xv)});
    for (const auto& c : cases) {
      if (c.got.is_nar()) continue;
      // within one lattice step of the correctly rounded value
      const auto want = posit16::from_double(c.exact);
      const bool ok = c.got == want || c.got == want.next() ||
                      c.got == want.prior();
      ASSERT_TRUE(ok) << xv << " got " << c.got.to_double() << " want "
                      << want.to_double();
    }
  }
}

TEST(PositMath, SinCosRangeAndPythagoras) {
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const posit16 x(rng.uniform(-10.0, 10.0));
    const double s = sin(x).to_double();
    const double c = cos(x).to_double();
    ASSERT_LE(std::fabs(s), 1.0 + 1e-3);
    ASSERT_NEAR(s * s + c * c, 1.0, 2e-3);
  }
}

TEST(PositMath, RecipIsCorrectlyRounded) {
  for (util::u64 b = 1; b < (util::u64{1} << 16); b += 3) {
    const auto x = posit16::from_bits(util::u16(b));
    if (x.is_nar() || x.is_zero()) continue;
    const quad xv = quad(x.to_double());
    auto cmp = [&](double t) {
      const quad tx = quad(t) * xv;
      const int s = quad(1.0) < tx ? -1 : (quad(1.0) > tx ? 1 : 0);
      return xv > 0 ? s : -s;
    };
    ASSERT_TRUE((testing::check_rounded_cmp<16, 1>(cmp, recip(x), "recip")))
        << x.to_double();
  }
}

TEST(PositMath, PowBasics) {
  EXPECT_EQ(pow(posit16(2.0), posit16(10.0)).to_double(), 1024.0);
  EXPECT_TRUE(pow(posit16(-1.0), posit16(0.5)).is_nar());
  EXPECT_EQ(pow(posit16(9.0), posit16(0.5)).to_double(), 3.0);
}

TEST(PositMath, IntConversions) {
  EXPECT_EQ(to_int(posit16(42.4)), 42);
  EXPECT_EQ(to_int(posit16(42.5)), 42);   // RNE tie to even
  EXPECT_EQ(to_int(posit16(43.5)), 44);
  EXPECT_EQ(to_int(posit16(-7.9)), -8);
  EXPECT_EQ(to_int(posit16::nar()), std::numeric_limits<util::i64>::min());
  EXPECT_EQ((from_int<16, 1>(0)), posit16::zero());
  EXPECT_EQ((from_int<16, 1>(12345)).to_double(), 12288.0);  // rounded
  EXPECT_EQ((from_int<16, 1>(-3)).to_double(), -3.0);
  // Exhaustive small-integer round trip.
  for (util::i64 v = -4096; v <= 4096; ++v) {
    const auto p = from_int<16, 1>(v);
    ASSERT_TRUE((check_rounded<16, 1>(quad(double(v)), p, "from_int"))) << v;
  }
}

TEST(PositMath, RintMatchesNearbyint) {
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-1000.0, 1000.0);
    const posit16 x(v);
    EXPECT_EQ(rint(x).to_double(), std::nearbyint(x.to_double()));
  }
}

}  // namespace
}  // namespace nga::ps
