// Correct rounding of posit arithmetic, verified against the
// rounding-interval oracle (see posit_oracle.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "posit/posit.hpp"
#include "posit_oracle.hpp"
#include "util/rng.hpp"

namespace nga::ps {
namespace {

using testing::check_rounded;
using testing::check_rounded_cmp;
using testing::corner_values;
using testing::quad;

template <unsigned N, unsigned ES>
void check_pair(posit<N, ES> a, posit<N, ES> b) {
  using P = posit<N, ES>;
  const quad av = quad(a.to_double());
  const quad bv = quad(b.to_double());
  ASSERT_TRUE((check_rounded<N, ES>(av + bv, a + b, "add")))
      << a.to_double() << " + " << b.to_double();
  ASSERT_TRUE((check_rounded<N, ES>(av - bv, a - b, "sub")))
      << a.to_double() << " - " << b.to_double();
  ASSERT_TRUE((check_rounded<N, ES>(av * bv, a * b, "mul")))
      << a.to_double() << " * " << b.to_double();
  if (!b.is_zero()) {
    // v = a/b compared against t via cross-multiplication (exact).
    auto cmp = [&](double t) {
      const quad tb = quad(t) * bv;
      const int s = av < tb ? -1 : (av > tb ? 1 : 0);
      return bv > 0 ? s : -s;
    };
    ASSERT_TRUE((check_rounded_cmp<N, ES>(cmp, a / b, "div")))
        << a.to_double() << " / " << b.to_double();
  } else {
    EXPECT_TRUE((a / b).is_nar());
  }
}

template <unsigned N, unsigned ES>
void exhaustive_pairs() {
  using P = posit<N, ES>;
  for (util::u64 x = 0; x < (util::u64{1} << N); ++x) {
    const P a = P::from_bits(typename P::storage_t(x));
    if (a.is_nar()) continue;
    for (util::u64 y = 0; y < (util::u64{1} << N); ++y) {
      const P b = P::from_bits(typename P::storage_t(y));
      if (b.is_nar()) continue;
      check_pair<N, ES>(a, b);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(PositArith, ExhaustivePairsPosit8Es0) { exhaustive_pairs<8, 0>(); }
TEST(PositArith, ExhaustivePairsPosit8Es1) { exhaustive_pairs<8, 1>(); }
TEST(PositArith, ExhaustivePairsPosit8Es2) { exhaustive_pairs<8, 2>(); }
TEST(PositArith, ExhaustivePairsPosit6Es1) { exhaustive_pairs<6, 1>(); }

TEST(PositArith, CornerPairsPosit16) {
  const auto corners = corner_values<16, 1>();
  for (const auto a : corners) {
    if (a.is_nar()) continue;
    for (const auto b : corners) {
      if (b.is_nar()) continue;
      check_pair<16, 1>(a, b);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(PositArith, RandomPairsPosit16) {
  util::Xoshiro256 rng(2020);
  for (int i = 0; i < 300000; ++i) {
    const auto a = posit16::from_bits(util::u16(rng()));
    const auto b = posit16::from_bits(util::u16(rng()));
    if (a.is_nar() || b.is_nar()) continue;
    check_pair<16, 1>(a, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PositArith, RandomPairsPosit16Es2) {
  util::Xoshiro256 rng(2021);
  for (int i = 0; i < 100000; ++i) {
    const auto a = posit<16, 2>::from_bits(util::u16(rng()));
    const auto b = posit<16, 2>::from_bits(util::u16(rng()));
    if (a.is_nar() || b.is_nar()) continue;
    check_pair<16, 2>(a, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PositArith, RandomPairsPosit32RestrictedScale) {
  // posit32 values restricted to |scale| <= 40 keep every add/sub/mul
  // exact in quad (27-bit fractions, <= 80-bit alignment).
  util::Xoshiro256 rng(2022);
  for (int i = 0; i < 50000; ++i) {
    const double ea = rng.uniform(-40, 40);
    const double eb = rng.uniform(-40, 40);
    const auto a = posit32::from_double(
        std::ldexp(rng.uniform(1.0, 2.0), int(ea)) * (rng.below(2) ? 1 : -1));
    const auto b = posit32::from_double(
        std::ldexp(rng.uniform(1.0, 2.0), int(eb)) * (rng.below(2) ? 1 : -1));
    check_pair<32, 2>(a, b);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PositArith, SqrtExhaustive16) {
  // sqrt(a) vs tie t compared via a vs t^2 (exact in quad).
  for (util::u64 x = 0; x < (util::u64{1} << 16); ++x) {
    const auto a = posit16::from_bits(util::u16(x));
    if (a.is_nar() || a.is_negative()) {
      EXPECT_TRUE(posit16::sqrt(a).is_nar() || a.is_zero());
      continue;
    }
    const quad av = quad(a.to_double());
    auto cmp = [&](double t) {
      if (t <= 0) return av > 0 ? 1 : 0;
      const quad t2 = quad(t) * quad(t);
      return av < t2 ? -1 : (av > t2 ? 1 : 0);
    };
    ASSERT_TRUE((check_rounded_cmp<16, 1>(cmp, posit16::sqrt(a), "sqrt")))
        << a.to_double();
  }
}

TEST(PositArith, SqrtExhaustive8) {
  for (util::u64 x = 0; x < 256; ++x) {
    const auto a = posit8::from_bits(util::u8(x));
    if (a.is_nar() || a.is_negative()) continue;
    const quad av = quad(a.to_double());
    auto cmp = [&](double t) {
      if (t <= 0) return av > 0 ? 1 : 0;
      const quad t2 = quad(t) * quad(t);
      return av < t2 ? -1 : (av > t2 ? 1 : 0);
    };
    ASSERT_TRUE((check_rounded_cmp<8, 0>(cmp, posit8::sqrt(a), "sqrt")))
        << a.to_double();
  }
}

TEST(PositArith, NaRPropagation) {
  const auto nar = posit16::nar();
  const auto x = posit16(2.5);
  EXPECT_TRUE((nar + x).is_nar());
  EXPECT_TRUE((x - nar).is_nar());
  EXPECT_TRUE((nar * x).is_nar());
  EXPECT_TRUE((x / nar).is_nar());
  EXPECT_TRUE(posit16::sqrt(nar).is_nar());
  EXPECT_TRUE(posit16::sqrt(posit16(-1.0)).is_nar());
  EXPECT_TRUE(posit16::fma(nar, x, x).is_nar());
}

TEST(PositArith, NoOverflowNoUnderflow) {
  const auto mp = posit16::maxpos();
  EXPECT_EQ(mp + mp, mp);
  EXPECT_EQ(mp * mp, mp);
  EXPECT_EQ(-mp * mp, -mp);
  const auto tiny = posit16::minpos();
  EXPECT_EQ(tiny * tiny, tiny);      // saturates at minpos, not zero
  EXPECT_EQ(tiny / mp, tiny);
  EXPECT_EQ((-tiny) * tiny, -tiny);
}

TEST(PositArith, ExactIdentities) {
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 20000; ++i) {
    const auto a = posit16::from_bits(util::u16(rng()));
    if (a.is_nar()) continue;
    EXPECT_EQ(a + posit16::zero(), a);
    EXPECT_EQ(a * posit16::one(), a);
    EXPECT_TRUE((a - a).is_zero());
    if (!a.is_zero()) EXPECT_EQ(a / a, posit16::one());
    EXPECT_EQ(a + a, a * posit16(2.0));
  }
}

TEST(PositArith, FmaSingleRounding) {
  // fma(a,b,c) must equal the correctly rounded a*b+c, which differs
  // from round(round(a*b)+c) in general. Verified against the oracle.
  util::Xoshiro256 rng(88);
  int double_rounding_differs = 0;
  for (int i = 0; i < 100000; ++i) {
    const auto a = posit16::from_bits(util::u16(rng()));
    const auto b = posit16::from_bits(util::u16(rng()));
    const auto c = posit16::from_bits(util::u16(rng()));
    if (a.is_nar() || b.is_nar() || c.is_nar()) continue;
    const quad exact =
        quad(a.to_double()) * quad(b.to_double()) + quad(c.to_double());
    const auto f = posit16::fma(a, b, c);
    ASSERT_TRUE((check_rounded<16, 1>(exact, f, "fma")))
        << a.to_double() << "*" << b.to_double() << "+" << c.to_double();
    if (f != a * b + c) ++double_rounding_differs;
  }
  // The fused result must actually differ from the double-rounded one
  // on a nontrivial fraction of inputs, or fma would be pointless.
  EXPECT_GT(double_rounding_differs, 100);
}

}  // namespace
}  // namespace nga::ps
