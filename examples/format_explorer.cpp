// Example: choosing a 16-bit number format for an edge DSP kernel.
//
// Runs the same dot-product and FIR workloads through fixed16, float16,
// bfloat16 and posit16 (plus the posit quire), reporting relative
// errors — the "fixed vs float vs posit" decision of Section V made
// executable.
#include <cstdio>

#include "core/format_traits.hpp"
#include "posit/posit.hpp"
#include "util/rng.hpp"

using namespace nga;
using namespace nga::core;

int main() {
  std::printf("== 16-bit format shoot-out on DSP kernels ==\n\n");
  util::Xoshiro256 rng(11);

  // Workload 1: a well-scaled dot product (values near 1).
  std::vector<double> x(256), y(256);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);

  // Workload 2: a lowpass FIR over a mixed-amplitude signal.
  std::vector<double> taps = {0.02, 0.07, 0.12, 0.18, 0.22,
                              0.18, 0.12, 0.07, 0.02};
  std::vector<double> signal(512);
  for (std::size_t i = 0; i < signal.size(); ++i)
    signal[i] = std::sin(0.07 * double(i)) + 0.1 * rng.normal();

  using fixed16 = fx::fixed16;
  using half = sf::half;
  using bf16 = sf::bfloat16_t;
  using p16 = ps::posit16;

  std::printf("%-14s %18s %18s\n", "format", "dot rel. error",
              "FIR rel. RMS error");
  auto report = [&](auto tag) {
    using F = decltype(tag);
    std::printf("%-14s %18.3e %18.3e\n",
                format_traits<F>::name().c_str(), dot_error<F>(x, y),
                fir_error<F>(taps, signal));
  };
  report(fixed16{});
  report(half{});
  report(bf16{});
  report(p16{});

  // The posit killer feature: the quire makes the dot product exact.
  ps::quire<16, 1> q;
  double exact = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    q.add_product(p16::from_double(x[i]), p16::from_double(y[i]));
    exact += x[i] * y[i];
  }
  const double got = q.to_posit().to_double();
  std::printf("%-14s %18.3e %18s\n", "posit16+quire",
              std::fabs((got - exact) / exact), "(fused, 1 rounding)");

  std::printf(
      "\nReading: posits beat float16/bfloat16 on these near-1 workloads\n"
      "(the Fig. 9 accuracy hump); the quire removes accumulation error\n"
      "entirely; fixed16 is competitive only while the signal fits its\n"
      "4.8-decade window.\n");
  return 0;
}
