// Example: an edge keyword-spotting pipeline with approximate arithmetic.
//
// Trains a small KWS CNN in float, quantizes it to 8 bits, then swaps
// the MAC multiplier for progressively more aggressive approximate
// designs — reporting accuracy against estimated multiplier energy at
// each point, with one round of approximate retraining where it helps.
// This is the end-to-end workflow of Section IV in ~100 lines.
#include <cstdio>

#include "approx/multipliers.hpp"
#include "nn/data.hpp"
#include "nn/model.hpp"

using namespace nga;
using namespace nga::nn;

int main() {
  std::printf("== edge keyword spotting with approximate multipliers ==\n\n");
  const auto train_set = make_synth_kws(320, 16, 12, 1);
  const auto test_set = make_synth_kws(160, 16, 12, 2);

  Model model = make_kws_cnn1(16, 12, 3);
  std::printf("model: %s, %zu params\n", model.name().c_str(),
              model.param_count());

  TrainConfig cfg;
  cfg.epochs = 14;
  cfg.lr = 0.08f;
  cfg.lr_late = 0.03f;
  cfg.seed = 4;
  train(model, train_set, cfg);
  calibrate(model, train_set, 96);
  const auto snap = model.snapshot();

  const double float_acc = evaluate(model, test_set, Mode::kFloat).accuracy;
  MulTable exact;
  const double q8_acc =
      evaluate(model, test_set, Mode::kQuantExact, &exact).accuracy;
  std::printf("float accuracy : %.1f%%\n", 100 * float_acc);
  std::printf("8-bit accuracy : %.1f%%\n\n", 100 * q8_acc);

  std::printf("%-10s %8s %12s %12s %14s\n", "multiplier", "MRE[%]",
              "acc (drop-in)", "acc (retrain)", "energy saving");
  for (const auto& m : ax::table2_multipliers()) {
    const MulTable lut(*m);
    const double raw =
        evaluate(model, test_set, Mode::kQuantApprox, &lut).accuracy;
    // One short approximate-retraining pass (accurate gradients).
    Model r = make_kws_cnn1(16, 12, 3);
    r.restore(snap);
    calibrate(r, train_set, 96);
    TrainConfig rc;
    rc.epochs = 3;
    rc.lr = 0.02f;
    rc.seed = 7;
    rc.mode = Mode::kQuantApprox;
    rc.mul = &lut;
    train(r, train_set, rc);
    const double rt = evaluate(r, test_set, Mode::kQuantApprox, &lut).accuracy;
    const auto err = ax::measure_error(*m);
    const double save = ax::energy_saving_percent(*m, 400);
    std::printf("%-10s %8.2f %12.1f%% %12.1f%% %13.1f%%\n",
                m->name().c_str(), err.mre_percent, 100 * raw, 100 * rt,
                save);
  }
  std::printf(
      "\nReading: pick the most aggressive multiplier whose retrained\n"
      "accuracy stays inside your tolerance — that's the Fig. 5 recipe.\n");
  return 0;
}
