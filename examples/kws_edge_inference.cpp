// Example: an edge keyword-spotting pipeline with approximate arithmetic.
//
// Trains a small KWS CNN in float, quantizes it to 8 bits, then swaps
// the MAC multiplier for progressively more aggressive approximate
// designs — reporting accuracy against estimated multiplier energy at
// each point, with one round of approximate retraining where it helps.
// This is the end-to-end workflow of Section IV in ~100 lines.
//
// Part two puts the quantized model behind nga::serve: requests carry a
// deadline, transient faults (when NGA_FAULT is compiled in) are retried
// with exact-table failover, and the drain accounts for every request.
#include <cstdio>

#include "approx/multipliers.hpp"
#include "fault/fault.hpp"
#include "nn/data.hpp"
#include "nn/model.hpp"
#include "serve/serve.hpp"

using namespace nga;
using namespace nga::nn;

int main() {
  std::printf("== edge keyword spotting with approximate multipliers ==\n\n");
  const auto train_set = make_synth_kws(320, 16, 12, 1);
  const auto test_set = make_synth_kws(160, 16, 12, 2);

  Model model = make_kws_cnn1(16, 12, 3);
  std::printf("model: %s, %zu params\n", model.name().c_str(),
              model.param_count());

  TrainConfig cfg;
  cfg.epochs = 14;
  cfg.lr = 0.08f;
  cfg.lr_late = 0.03f;
  cfg.seed = 4;
  train(model, train_set, cfg);
  calibrate(model, train_set, 96);
  const auto snap = model.snapshot();

  const double float_acc = evaluate(model, test_set, Mode::kFloat).accuracy;
  MulTable exact;
  const double q8_acc =
      evaluate(model, test_set, Mode::kQuantExact, &exact).accuracy;
  std::printf("float accuracy : %.1f%%\n", 100 * float_acc);
  std::printf("8-bit accuracy : %.1f%%\n\n", 100 * q8_acc);

  std::printf("%-10s %8s %12s %12s %14s\n", "multiplier", "MRE[%]",
              "acc (drop-in)", "acc (retrain)", "energy saving");
  for (const auto& m : ax::table2_multipliers()) {
    const MulTable lut(*m);
    const double raw =
        evaluate(model, test_set, Mode::kQuantApprox, &lut).accuracy;
    // One short approximate-retraining pass (accurate gradients).
    Model r = make_kws_cnn1(16, 12, 3);
    r.restore(snap);
    calibrate(r, train_set, 96);
    TrainConfig rc;
    rc.epochs = 3;
    rc.lr = 0.02f;
    rc.seed = 7;
    rc.mode = Mode::kQuantApprox;
    rc.mul = &lut;
    train(r, train_set, rc);
    const double rt = evaluate(r, test_set, Mode::kQuantApprox, &lut).accuracy;
    const auto err = ax::measure_error(*m);
    const double save = ax::energy_saving_percent(*m, 400);
    std::printf("%-10s %8.2f %12.1f%% %12.1f%% %13.1f%%\n",
                m->name().c_str(), err.mre_percent, 100 * raw, 100 * rt,
                save);
  }
  std::printf(
      "\nReading: pick the most aggressive multiplier whose retrained\n"
      "accuracy stays inside your tolerance — that's the Fig. 5 recipe.\n");

  // --- Part two: the same model behind the serving layer ----------------
  std::printf("\n== serving mode: deadlines, retries, graceful drain ==\n");
  const auto mults = ax::table2_multipliers();
  const MulTable approx(*mults.front());

#if NGA_FAULT
  // Light chaos so the retry path has something to do.
  fault::FaultPlan plan;
  plan.inject(fault::Site::kNnMul, fault::Model::kBitFlip, 0.005);
  fault::Injector::instance().arm(plan, 99);
#endif

  serve::ServerConfig sc;
  sc.workers = 2;
  sc.queue_capacity = 64;  // covers the demo burst; smaller => backpressure
  sc.max_batch = 8;
  sc.in_c = 1;
  sc.in_h = 16;
  sc.in_w = 12;
  sc.mode = Mode::kQuantApprox;
  sc.mul = &approx;
  sc.exact_fallback = &exact;
  sc.max_attempts = 3;
  sc.retry_exact_failover = true;
  sc.model_factory = [&snap, &train_set] {
    auto m = std::make_unique<Model>(make_kws_cnn1(16, 12, 3));
    m->restore(snap);
    calibrate(*m, train_set, 96);
    return m;
  };

  serve::Server srv(sc);
  srv.start();
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 64; ++i)
    futs.push_back(srv.submit(test_set[i].x,
                              std::chrono::milliseconds(600)));
  std::size_t hit = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const serve::Response r = futs[i].get();
    if (r.outcome == serve::Outcome::kServed &&
        r.predicted == test_set[i].label)
      ++hit;
  }
  srv.drain();
#if NGA_FAULT
  fault::Injector::instance().disarm();
#endif

  const auto st = srv.stats();
  std::printf("submitted %llu | served %llu | rejected %llu | shed %llu | "
              "retries %llu\n",
              (unsigned long long)st.submitted, (unsigned long long)st.served,
              (unsigned long long)st.rejected, (unsigned long long)st.shed,
              (unsigned long long)st.retries);
  const std::string_view state = serve::state_name(srv.state());
  std::printf("served-and-correct: %zu/%zu  (drain state: %.*s)\n", hit,
              futs.size(), int(state.size()), state.data());
  std::printf("accounting: served + rejected + shed == submitted: %s\n",
              st.served + st.rejected + st.shed == st.submitted
                  ? "holds"
                  : "VIOLATED");
  return 0;
}
