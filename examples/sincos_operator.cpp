// Example: generating an application-specific operator (Section II).
//
// Asks the Fig. 1 generator for a faithful 12-bit fixed-point
// sine/cosine operator, prints the parameters it chose, and exercises
// the generated bit-exact datapath against libm.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "opgen/constmult.hpp"
#include "opgen/funcapprox.hpp"
#include "opgen/sincos.hpp"

using namespace nga;

int main() {
  std::printf("== generating a fixed-point sin/cos operator ==\n\n");
  const unsigned w = 12;
  const auto op = og::SinCosOperator::generate(w);
  const auto cost = op.cost();
  std::printf("requested : sin/cos of (pi/4)*x, x in [0,1), %u-bit output\n",
              w);
  std::printf("generated : table index a=%u bits, guard g=%u bits\n", op.a(),
              op.g());
  std::printf("cost      : %llu table bits, %d LUT6 total (%d in mults)\n",
              (unsigned long long)cost.table_bits, cost.lut6, cost.mult_lut6);
  std::printf("accuracy  : %.3f ulp worst case (exhaustive over 2^%u)\n\n",
              op.max_error_ulp(), w);

  std::printf("   x        sin (operator)   sin (libm)     cos (operator)\n");
  for (const double frac : {0.0, 0.125, 0.35, 0.62, 0.875, 0.999}) {
    const util::u64 x = util::u64(frac * double(1u << w));
    const auto r = op.evaluate(x);
    const double theta = std::numbers::pi / 4 * double(x) / double(1u << w);
    std::printf("  %5.3f     %12.6f   %12.6f   %12.6f\n", frac,
                double(r.sin_mant) / double(1u << w), std::sin(theta),
                double(r.cos_mant) / double(1u << w));
  }

  std::printf("\n== operator specialization: constants and tables ==\n\n");
  // Constant multiplication: CSD shift-add chain vs a generic multiplier.
  const og::ConstMult by_pi(12868, 16);  // round(pi * 2^12)
  std::printf("x * round(pi*2^12): %d adders (CSD), ~%d LUTs vs ~128 for a\n",
              by_pi.adders(), by_pi.lut_cost());
  std::printf("generic 16x16 soft multiplier; evaluate(100) = %llu\n\n",
              (unsigned long long)by_pi.evaluate(100));

  // Bipartite table for log2(1+x), chosen by exploration.
  const auto f = [](double x) { return std::log2(1.0 + x); };
  const nga::fx::FixFormat out{-1, -12, false};
  const auto bt = og::BipartiteTable::explore(f, 12, out);
  const auto plain_bits =
      og::PlainTable(f, 12, out).cost().table_bits;
  std::printf("log2(1+x) on 12 bits: bipartite split a=%u b=%u c=%u uses\n",
              bt.a(), bt.b(), bt.c());
  std::printf("%llu table bits vs %llu for plain tabulation (%.1fx), still\n",
              (unsigned long long)bt.cost().table_bits,
              (unsigned long long)plain_bits,
              double(plain_bits) / double(bt.cost().table_bits));
  std::printf("faithful: %.3f ulp worst case.\n", bt.max_error_ulp(f));
  return 0;
}
