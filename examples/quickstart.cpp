// Quickstart: the three number systems of the paper side by side.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "fixedpoint/fixed.hpp"
#include "posit/posit.hpp"
#include "softfloat/floatmp.hpp"

int main() {
  using nga::ps::posit16;
  using nga::ps::quire;
  using nga::sf::bfloat16_t;
  using nga::sf::half;

  std::printf("== posits vs floats vs fixed point (16-bit) ==\n\n");

  // 1. Basic arithmetic: posits round like floats, but never overflow to
  //    inf or underflow to zero — they saturate at maxpos/minpos.
  const posit16 a(3.25), b(-1.5);
  std::printf("posit16: 3.25 + (-1.5) = %s\n", (a + b).to_string().c_str());
  std::printf("posit16: 3.25 * (-1.5) = %s\n", (a * b).to_string().c_str());
  std::printf("posit16 maxpos = %g, minpos = %g\n",
              posit16::maxpos().to_double(), posit16::minpos().to_double());
  std::printf("posit16: maxpos * maxpos = %s (saturates, no overflow)\n",
              (posit16::maxpos() * posit16::maxpos()).to_string().c_str());

  // 2. The two exception values: 0 and NaR. 1/0 = NaR; NaR propagates.
  const posit16 nar = posit16::one() / posit16::zero();
  std::printf("posit16: 1/0 = %s; NaR == NaR is %s; NaR < everything: %s\n",
              nar.to_string().c_str(), nar == posit16::nar() ? "true" : "false",
              (nar < posit16(-1e8)) ? "true" : "false");

  // 3. Floats by contrast: half overflows to inf quickly.
  const half h(60000.0);
  std::printf("\nhalf: 60000 * 2 = %s (overflow to inf)\n",
              (h + h).to_string().c_str());
  std::printf("bfloat16: 60000 * 2 = %s (huge dynamic range, 8 frac bits)\n",
              (bfloat16_t(60000.0) + bfloat16_t(60000.0)).to_string().c_str());

  // 4. The quire: an exact dot product that a plain float/posit loop
  //    gets wrong. sum_{i} (x_i * y_i) with catastrophic cancellation.
  const double xs[] = {1e6, 3.0, -1e6};
  const double ys[] = {1e6, 2.0, 1e6};
  posit16 naive = posit16::zero();
  quire<16, 1> q;
  for (int i = 0; i < 3; ++i) {
    naive = naive + posit16(xs[i]) * posit16(ys[i]);
    q.add_product(posit16(xs[i]), posit16(ys[i]));
  }
  std::printf("\ndot([1e6,3,-1e6],[1e6,2,1e6]):\n");
  std::printf("  naive posit16 accumulation: %s\n", naive.to_string().c_str());
  std::printf("  quire (exact, one rounding): %s  <- correct answer is 6\n",
              q.to_posit().to_string().c_str());

  // 5. Fixed point: cheap and exact inside its narrow window.
  const nga::fx::fixed16 f(3.14159);
  std::printf("\nfixed16 (Q7.8): pi ~= %s (ulp = %g)\n", f.to_string().c_str(),
              nga::fx::fixed16::ulp().to_double());
  return 0;
}
