# Empty compiler generated dependencies file for table1_dnn_characteristics.
# This may be replaced when dependencies are built.
