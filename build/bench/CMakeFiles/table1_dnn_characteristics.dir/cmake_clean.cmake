file(REMOVE_RECURSE
  "CMakeFiles/table1_dnn_characteristics.dir/table1_dnn_characteristics.cpp.o"
  "CMakeFiles/table1_dnn_characteristics.dir/table1_dnn_characteristics.cpp.o.d"
  "table1_dnn_characteristics"
  "table1_dnn_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dnn_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
