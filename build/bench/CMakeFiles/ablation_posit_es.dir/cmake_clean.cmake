file(REMOVE_RECURSE
  "CMakeFiles/ablation_posit_es.dir/ablation_posit_es.cpp.o"
  "CMakeFiles/ablation_posit_es.dir/ablation_posit_es.cpp.o.d"
  "ablation_posit_es"
  "ablation_posit_es.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_posit_es.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
