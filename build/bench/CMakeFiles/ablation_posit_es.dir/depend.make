# Empty dependencies file for ablation_posit_es.
# This may be replaced when dependencies are built.
