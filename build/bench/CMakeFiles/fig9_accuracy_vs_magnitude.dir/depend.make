# Empty dependencies file for fig9_accuracy_vs_magnitude.
# This may be replaced when dependencies are built.
