file(REMOVE_RECURSE
  "CMakeFiles/fig9_accuracy_vs_magnitude.dir/fig9_accuracy_vs_magnitude.cpp.o"
  "CMakeFiles/fig9_accuracy_vs_magnitude.dir/fig9_accuracy_vs_magnitude.cpp.o.d"
  "fig9_accuracy_vs_magnitude"
  "fig9_accuracy_vs_magnitude.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_accuracy_vs_magnitude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
