# Empty dependencies file for fig8_posit_multiplier.
# This may be replaced when dependencies are built.
