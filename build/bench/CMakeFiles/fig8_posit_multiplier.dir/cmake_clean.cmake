file(REMOVE_RECURSE
  "CMakeFiles/fig8_posit_multiplier.dir/fig8_posit_multiplier.cpp.o"
  "CMakeFiles/fig8_posit_multiplier.dir/fig8_posit_multiplier.cpp.o.d"
  "fig8_posit_multiplier"
  "fig8_posit_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_posit_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
