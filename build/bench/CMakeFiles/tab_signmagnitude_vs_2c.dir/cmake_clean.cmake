file(REMOVE_RECURSE
  "CMakeFiles/tab_signmagnitude_vs_2c.dir/tab_signmagnitude_vs_2c.cpp.o"
  "CMakeFiles/tab_signmagnitude_vs_2c.dir/tab_signmagnitude_vs_2c.cpp.o.d"
  "tab_signmagnitude_vs_2c"
  "tab_signmagnitude_vs_2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_signmagnitude_vs_2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
