# Empty compiler generated dependencies file for tab_signmagnitude_vs_2c.
# This may be replaced when dependencies are built.
