file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_multiplier_regularization.dir/fig3_4_multiplier_regularization.cpp.o"
  "CMakeFiles/fig3_4_multiplier_regularization.dir/fig3_4_multiplier_regularization.cpp.o.d"
  "fig3_4_multiplier_regularization"
  "fig3_4_multiplier_regularization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_multiplier_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
