# Empty compiler generated dependencies file for fig3_4_multiplier_regularization.
# This may be replaced when dependencies are built.
