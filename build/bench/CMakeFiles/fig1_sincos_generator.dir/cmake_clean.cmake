file(REMOVE_RECURSE
  "CMakeFiles/fig1_sincos_generator.dir/fig1_sincos_generator.cpp.o"
  "CMakeFiles/fig1_sincos_generator.dir/fig1_sincos_generator.cpp.o.d"
  "fig1_sincos_generator"
  "fig1_sincos_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sincos_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
