# Empty compiler generated dependencies file for fig1_sincos_generator.
# This may be replaced when dependencies are built.
