file(REMOVE_RECURSE
  "CMakeFiles/fig2_bitheap.dir/fig2_bitheap.cpp.o"
  "CMakeFiles/fig2_bitheap.dir/fig2_bitheap.cpp.o.d"
  "fig2_bitheap"
  "fig2_bitheap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bitheap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
