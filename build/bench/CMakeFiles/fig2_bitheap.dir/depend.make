# Empty dependencies file for fig2_bitheap.
# This may be replaced when dependencies are built.
