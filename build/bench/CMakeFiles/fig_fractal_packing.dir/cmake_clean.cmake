file(REMOVE_RECURSE
  "CMakeFiles/fig_fractal_packing.dir/fig_fractal_packing.cpp.o"
  "CMakeFiles/fig_fractal_packing.dir/fig_fractal_packing.cpp.o.d"
  "fig_fractal_packing"
  "fig_fractal_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_fractal_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
