# Empty dependencies file for fig_fractal_packing.
# This may be replaced when dependencies are built.
