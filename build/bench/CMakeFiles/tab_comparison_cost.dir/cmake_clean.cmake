file(REMOVE_RECURSE
  "CMakeFiles/tab_comparison_cost.dir/tab_comparison_cost.cpp.o"
  "CMakeFiles/tab_comparison_cost.dir/tab_comparison_cost.cpp.o.d"
  "tab_comparison_cost"
  "tab_comparison_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_comparison_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
