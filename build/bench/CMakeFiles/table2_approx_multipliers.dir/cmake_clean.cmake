file(REMOVE_RECURSE
  "CMakeFiles/table2_approx_multipliers.dir/table2_approx_multipliers.cpp.o"
  "CMakeFiles/table2_approx_multipliers.dir/table2_approx_multipliers.cpp.o.d"
  "table2_approx_multipliers"
  "table2_approx_multipliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_approx_multipliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
