# Empty compiler generated dependencies file for table2_approx_multipliers.
# This may be replaced when dependencies are built.
