file(REMOVE_RECURSE
  "CMakeFiles/ablation_quire_vs_naive.dir/ablation_quire_vs_naive.cpp.o"
  "CMakeFiles/ablation_quire_vs_naive.dir/ablation_quire_vs_naive.cpp.o.d"
  "ablation_quire_vs_naive"
  "ablation_quire_vs_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quire_vs_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
