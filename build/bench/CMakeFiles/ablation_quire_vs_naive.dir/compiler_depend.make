# Empty compiler generated dependencies file for ablation_quire_vs_naive.
# This may be replaced when dependencies are built.
