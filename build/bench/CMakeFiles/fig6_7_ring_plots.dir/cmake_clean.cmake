file(REMOVE_RECURSE
  "CMakeFiles/fig6_7_ring_plots.dir/fig6_7_ring_plots.cpp.o"
  "CMakeFiles/fig6_7_ring_plots.dir/fig6_7_ring_plots.cpp.o.d"
  "fig6_7_ring_plots"
  "fig6_7_ring_plots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_7_ring_plots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
