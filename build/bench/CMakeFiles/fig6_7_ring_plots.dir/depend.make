# Empty dependencies file for fig6_7_ring_plots.
# This may be replaced when dependencies are built.
