# Empty dependencies file for fig10_accuracy_vs_bitstring.
# This may be replaced when dependencies are built.
