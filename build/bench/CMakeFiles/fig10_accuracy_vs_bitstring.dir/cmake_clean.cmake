file(REMOVE_RECURSE
  "CMakeFiles/fig10_accuracy_vs_bitstring.dir/fig10_accuracy_vs_bitstring.cpp.o"
  "CMakeFiles/fig10_accuracy_vs_bitstring.dir/fig10_accuracy_vs_bitstring.cpp.o.d"
  "fig10_accuracy_vs_bitstring"
  "fig10_accuracy_vs_bitstring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accuracy_vs_bitstring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
