file(REMOVE_RECURSE
  "CMakeFiles/tab_dsp_formats.dir/tab_dsp_formats.cpp.o"
  "CMakeFiles/tab_dsp_formats.dir/tab_dsp_formats.cpp.o.d"
  "tab_dsp_formats"
  "tab_dsp_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_dsp_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
