# Empty dependencies file for tab_dsp_formats.
# This may be replaced when dependencies are built.
