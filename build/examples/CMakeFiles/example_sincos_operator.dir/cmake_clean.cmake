file(REMOVE_RECURSE
  "CMakeFiles/example_sincos_operator.dir/sincos_operator.cpp.o"
  "CMakeFiles/example_sincos_operator.dir/sincos_operator.cpp.o.d"
  "example_sincos_operator"
  "example_sincos_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sincos_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
