# Empty dependencies file for example_sincos_operator.
# This may be replaced when dependencies are built.
