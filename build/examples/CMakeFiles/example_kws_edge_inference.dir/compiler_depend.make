# Empty compiler generated dependencies file for example_kws_edge_inference.
# This may be replaced when dependencies are built.
