file(REMOVE_RECURSE
  "CMakeFiles/example_kws_edge_inference.dir/kws_edge_inference.cpp.o"
  "CMakeFiles/example_kws_edge_inference.dir/kws_edge_inference.cpp.o.d"
  "example_kws_edge_inference"
  "example_kws_edge_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kws_edge_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
