# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_accuracy[1]_include.cmake")
include("/root/repo/build/tests/test_approx[1]_include.cmake")
include("/root/repo/build/tests/test_bitheap[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_fixedpoint[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_hwmodel[1]_include.cmake")
include("/root/repo/build/tests/test_intformats[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_opgen[1]_include.cmake")
include("/root/repo/build/tests/test_posit[1]_include.cmake")
include("/root/repo/build/tests/test_softfloat[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
