# Empty dependencies file for test_bitheap.
# This may be replaced when dependencies are built.
