file(REMOVE_RECURSE
  "CMakeFiles/test_bitheap.dir/bitheap/bitheap_test.cpp.o"
  "CMakeFiles/test_bitheap.dir/bitheap/bitheap_test.cpp.o.d"
  "test_bitheap"
  "test_bitheap.pdb"
  "test_bitheap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitheap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
