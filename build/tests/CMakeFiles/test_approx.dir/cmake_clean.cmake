file(REMOVE_RECURSE
  "CMakeFiles/test_approx.dir/approx/multipliers_test.cpp.o"
  "CMakeFiles/test_approx.dir/approx/multipliers_test.cpp.o.d"
  "test_approx"
  "test_approx.pdb"
  "test_approx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
