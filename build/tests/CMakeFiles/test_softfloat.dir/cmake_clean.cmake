file(REMOVE_RECURSE
  "CMakeFiles/test_softfloat.dir/softfloat/floatmp_test.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/floatmp_test.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/predicates_test.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/predicates_test.cpp.o.d"
  "test_softfloat"
  "test_softfloat.pdb"
  "test_softfloat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
