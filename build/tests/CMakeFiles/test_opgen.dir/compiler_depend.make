# Empty compiler generated dependencies file for test_opgen.
# This may be replaced when dependencies are built.
