file(REMOVE_RECURSE
  "CMakeFiles/test_opgen.dir/opgen/constmult_test.cpp.o"
  "CMakeFiles/test_opgen.dir/opgen/constmult_test.cpp.o.d"
  "CMakeFiles/test_opgen.dir/opgen/funcapprox_test.cpp.o"
  "CMakeFiles/test_opgen.dir/opgen/funcapprox_test.cpp.o.d"
  "CMakeFiles/test_opgen.dir/opgen/fusion_test.cpp.o"
  "CMakeFiles/test_opgen.dir/opgen/fusion_test.cpp.o.d"
  "CMakeFiles/test_opgen.dir/opgen/sincos_test.cpp.o"
  "CMakeFiles/test_opgen.dir/opgen/sincos_test.cpp.o.d"
  "test_opgen"
  "test_opgen.pdb"
  "test_opgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
