file(REMOVE_RECURSE
  "CMakeFiles/test_intformats.dir/intformats/intformats_test.cpp.o"
  "CMakeFiles/test_intformats.dir/intformats/intformats_test.cpp.o.d"
  "test_intformats"
  "test_intformats.pdb"
  "test_intformats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intformats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
