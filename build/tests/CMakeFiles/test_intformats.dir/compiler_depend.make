# Empty compiler generated dependencies file for test_intformats.
# This may be replaced when dependencies are built.
