
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/intformats/intformats_test.cpp" "tests/CMakeFiles/test_intformats.dir/intformats/intformats_test.cpp.o" "gcc" "tests/CMakeFiles/test_intformats.dir/intformats/intformats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nga_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_accuracy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_opgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_bitheap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_intformats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_hwmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
