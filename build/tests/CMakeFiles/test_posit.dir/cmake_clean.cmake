file(REMOVE_RECURSE
  "CMakeFiles/test_posit.dir/posit/posit_arith_test.cpp.o"
  "CMakeFiles/test_posit.dir/posit/posit_arith_test.cpp.o.d"
  "CMakeFiles/test_posit.dir/posit/posit_decode_test.cpp.o"
  "CMakeFiles/test_posit.dir/posit/posit_decode_test.cpp.o.d"
  "CMakeFiles/test_posit.dir/posit/posit_math_test.cpp.o"
  "CMakeFiles/test_posit.dir/posit/posit_math_test.cpp.o.d"
  "CMakeFiles/test_posit.dir/posit/quire_test.cpp.o"
  "CMakeFiles/test_posit.dir/posit/quire_test.cpp.o.d"
  "test_posit"
  "test_posit.pdb"
  "test_posit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
