# Empty compiler generated dependencies file for nga_bitheap.
# This may be replaced when dependencies are built.
