# Empty dependencies file for nga_bitheap.
# This may be replaced when dependencies are built.
