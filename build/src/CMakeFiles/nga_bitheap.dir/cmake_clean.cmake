file(REMOVE_RECURSE
  "CMakeFiles/nga_bitheap.dir/bitheap/bitheap.cpp.o"
  "CMakeFiles/nga_bitheap.dir/bitheap/bitheap.cpp.o.d"
  "libnga_bitheap.a"
  "libnga_bitheap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_bitheap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
