file(REMOVE_RECURSE
  "libnga_bitheap.a"
)
