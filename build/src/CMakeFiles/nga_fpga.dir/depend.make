# Empty dependencies file for nga_fpga.
# This may be replaced when dependencies are built.
