file(REMOVE_RECURSE
  "CMakeFiles/nga_fpga.dir/fpga/dsp.cpp.o"
  "CMakeFiles/nga_fpga.dir/fpga/dsp.cpp.o.d"
  "CMakeFiles/nga_fpga.dir/fpga/fractal.cpp.o"
  "CMakeFiles/nga_fpga.dir/fpga/fractal.cpp.o.d"
  "CMakeFiles/nga_fpga.dir/fpga/softmult.cpp.o"
  "CMakeFiles/nga_fpga.dir/fpga/softmult.cpp.o.d"
  "libnga_fpga.a"
  "libnga_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
