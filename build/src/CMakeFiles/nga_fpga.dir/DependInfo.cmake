
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/dsp.cpp" "src/CMakeFiles/nga_fpga.dir/fpga/dsp.cpp.o" "gcc" "src/CMakeFiles/nga_fpga.dir/fpga/dsp.cpp.o.d"
  "/root/repo/src/fpga/fractal.cpp" "src/CMakeFiles/nga_fpga.dir/fpga/fractal.cpp.o" "gcc" "src/CMakeFiles/nga_fpga.dir/fpga/fractal.cpp.o.d"
  "/root/repo/src/fpga/softmult.cpp" "src/CMakeFiles/nga_fpga.dir/fpga/softmult.cpp.o" "gcc" "src/CMakeFiles/nga_fpga.dir/fpga/softmult.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nga_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_bitheap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
