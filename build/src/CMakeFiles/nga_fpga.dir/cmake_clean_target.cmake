file(REMOVE_RECURSE
  "libnga_fpga.a"
)
