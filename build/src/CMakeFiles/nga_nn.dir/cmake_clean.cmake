file(REMOVE_RECURSE
  "CMakeFiles/nga_nn.dir/nn/data.cpp.o"
  "CMakeFiles/nga_nn.dir/nn/data.cpp.o.d"
  "CMakeFiles/nga_nn.dir/nn/layers.cpp.o"
  "CMakeFiles/nga_nn.dir/nn/layers.cpp.o.d"
  "CMakeFiles/nga_nn.dir/nn/model.cpp.o"
  "CMakeFiles/nga_nn.dir/nn/model.cpp.o.d"
  "CMakeFiles/nga_nn.dir/nn/quant.cpp.o"
  "CMakeFiles/nga_nn.dir/nn/quant.cpp.o.d"
  "libnga_nn.a"
  "libnga_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
