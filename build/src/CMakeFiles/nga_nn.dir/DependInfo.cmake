
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/data.cpp" "src/CMakeFiles/nga_nn.dir/nn/data.cpp.o" "gcc" "src/CMakeFiles/nga_nn.dir/nn/data.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/nga_nn.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/nga_nn.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/nga_nn.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/nga_nn.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/quant.cpp" "src/CMakeFiles/nga_nn.dir/nn/quant.cpp.o" "gcc" "src/CMakeFiles/nga_nn.dir/nn/quant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nga_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_bitheap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_hwmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
