# Empty dependencies file for nga_nn.
# This may be replaced when dependencies are built.
