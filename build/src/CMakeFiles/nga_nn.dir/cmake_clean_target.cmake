file(REMOVE_RECURSE
  "libnga_nn.a"
)
