file(REMOVE_RECURSE
  "libnga_hwmodel.a"
)
