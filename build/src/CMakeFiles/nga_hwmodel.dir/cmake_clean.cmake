file(REMOVE_RECURSE
  "CMakeFiles/nga_hwmodel.dir/hwmodel/netlist.cpp.o"
  "CMakeFiles/nga_hwmodel.dir/hwmodel/netlist.cpp.o.d"
  "libnga_hwmodel.a"
  "libnga_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
