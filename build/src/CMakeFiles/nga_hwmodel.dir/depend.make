# Empty dependencies file for nga_hwmodel.
# This may be replaced when dependencies are built.
