file(REMOVE_RECURSE
  "CMakeFiles/nga_softfloat.dir/softfloat/predicates.cpp.o"
  "CMakeFiles/nga_softfloat.dir/softfloat/predicates.cpp.o.d"
  "libnga_softfloat.a"
  "libnga_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
