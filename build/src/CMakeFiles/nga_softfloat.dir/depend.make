# Empty dependencies file for nga_softfloat.
# This may be replaced when dependencies are built.
