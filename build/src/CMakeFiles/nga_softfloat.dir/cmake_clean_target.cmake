file(REMOVE_RECURSE
  "libnga_softfloat.a"
)
