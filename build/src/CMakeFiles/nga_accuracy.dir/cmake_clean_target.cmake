file(REMOVE_RECURSE
  "libnga_accuracy.a"
)
