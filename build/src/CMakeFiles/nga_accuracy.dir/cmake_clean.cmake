file(REMOVE_RECURSE
  "CMakeFiles/nga_accuracy.dir/accuracy/accuracy.cpp.o"
  "CMakeFiles/nga_accuracy.dir/accuracy/accuracy.cpp.o.d"
  "libnga_accuracy.a"
  "libnga_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
