# Empty compiler generated dependencies file for nga_accuracy.
# This may be replaced when dependencies are built.
