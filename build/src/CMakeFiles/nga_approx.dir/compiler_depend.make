# Empty compiler generated dependencies file for nga_approx.
# This may be replaced when dependencies are built.
