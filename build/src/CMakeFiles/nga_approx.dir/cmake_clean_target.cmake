file(REMOVE_RECURSE
  "libnga_approx.a"
)
