file(REMOVE_RECURSE
  "CMakeFiles/nga_approx.dir/approx/multipliers.cpp.o"
  "CMakeFiles/nga_approx.dir/approx/multipliers.cpp.o.d"
  "libnga_approx.a"
  "libnga_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
