# Empty dependencies file for nga_core.
# This may be replaced when dependencies are built.
