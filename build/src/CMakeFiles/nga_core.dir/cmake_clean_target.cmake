file(REMOVE_RECURSE
  "libnga_core.a"
)
