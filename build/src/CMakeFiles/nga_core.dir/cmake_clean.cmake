file(REMOVE_RECURSE
  "CMakeFiles/nga_core.dir/core/hwmult.cpp.o"
  "CMakeFiles/nga_core.dir/core/hwmult.cpp.o.d"
  "libnga_core.a"
  "libnga_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
