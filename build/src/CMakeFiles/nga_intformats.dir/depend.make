# Empty dependencies file for nga_intformats.
# This may be replaced when dependencies are built.
