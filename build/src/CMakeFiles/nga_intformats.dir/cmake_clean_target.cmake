file(REMOVE_RECURSE
  "libnga_intformats.a"
)
