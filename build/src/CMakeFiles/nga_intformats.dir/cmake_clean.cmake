file(REMOVE_RECURSE
  "CMakeFiles/nga_intformats.dir/intformats/intformats.cpp.o"
  "CMakeFiles/nga_intformats.dir/intformats/intformats.cpp.o.d"
  "libnga_intformats.a"
  "libnga_intformats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_intformats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
