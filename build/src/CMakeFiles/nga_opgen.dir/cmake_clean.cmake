file(REMOVE_RECURSE
  "CMakeFiles/nga_opgen.dir/opgen/constmult.cpp.o"
  "CMakeFiles/nga_opgen.dir/opgen/constmult.cpp.o.d"
  "CMakeFiles/nga_opgen.dir/opgen/funcapprox.cpp.o"
  "CMakeFiles/nga_opgen.dir/opgen/funcapprox.cpp.o.d"
  "CMakeFiles/nga_opgen.dir/opgen/fusion.cpp.o"
  "CMakeFiles/nga_opgen.dir/opgen/fusion.cpp.o.d"
  "CMakeFiles/nga_opgen.dir/opgen/sincos.cpp.o"
  "CMakeFiles/nga_opgen.dir/opgen/sincos.cpp.o.d"
  "CMakeFiles/nga_opgen.dir/opgen/squarer.cpp.o"
  "CMakeFiles/nga_opgen.dir/opgen/squarer.cpp.o.d"
  "libnga_opgen.a"
  "libnga_opgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nga_opgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
