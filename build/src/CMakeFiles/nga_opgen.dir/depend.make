# Empty dependencies file for nga_opgen.
# This may be replaced when dependencies are built.
