
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opgen/constmult.cpp" "src/CMakeFiles/nga_opgen.dir/opgen/constmult.cpp.o" "gcc" "src/CMakeFiles/nga_opgen.dir/opgen/constmult.cpp.o.d"
  "/root/repo/src/opgen/funcapprox.cpp" "src/CMakeFiles/nga_opgen.dir/opgen/funcapprox.cpp.o" "gcc" "src/CMakeFiles/nga_opgen.dir/opgen/funcapprox.cpp.o.d"
  "/root/repo/src/opgen/fusion.cpp" "src/CMakeFiles/nga_opgen.dir/opgen/fusion.cpp.o" "gcc" "src/CMakeFiles/nga_opgen.dir/opgen/fusion.cpp.o.d"
  "/root/repo/src/opgen/sincos.cpp" "src/CMakeFiles/nga_opgen.dir/opgen/sincos.cpp.o" "gcc" "src/CMakeFiles/nga_opgen.dir/opgen/sincos.cpp.o.d"
  "/root/repo/src/opgen/squarer.cpp" "src/CMakeFiles/nga_opgen.dir/opgen/squarer.cpp.o" "gcc" "src/CMakeFiles/nga_opgen.dir/opgen/squarer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nga_bitheap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nga_hwmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
