file(REMOVE_RECURSE
  "libnga_opgen.a"
)
