#!/usr/bin/env python3
"""Compare a fresh `bench --json` output against a committed BENCH_*.json.

The committed files are full-run snapshots on some past machine; a fresh
run (often --quick, on different hardware) can never match them value for
value. What MUST hold regardless of machine or run size:

  * the nga-bench-v1 schema and the bench name;
  * key-family coverage — every metric family present in the committed
    snapshot still exists in the fresh run. Families are keys with
    run-size tokens normalized (soak.rate_0p0200.* and soak.rate_0p0050.*
    are one family, soak.rate_*.*), so a --quick run that sweeps fewer
    rates still covers the family. A vanished family means an
    instrumentation regression: a renamed counter, a dropped gauge, a
    stage that stopped reporting;
  * claim floors — committed success_rate-style gauges that held a >=99%
    floor must still hold it fresh (the robustness claim, which IS
    machine-independent), committed goodput_retention gauges that held
    the >=80% overload-graceful floor must still hold it, committed
    shadow-measured agreement gauges (configured_agreement >=90%,
    browned_agreement >=40%) that held their floors must still hold
    them, and committed invariant-ish gauges stay present.

Values of counters, wall times, and latency gauges are reported for the
human but never gated: they are run-size and machine dependent.

Exit codes: 0 comparable, 1 regression (missing families / broken
floors), 2 usage or unreadable input. `--self-test` exercises both
failure modes against synthetic documents and exits 0 iff the checker
itself still catches them.
"""

import argparse
import json
import re
import sys

# Run-size dependent key tokens, normalized into one family each.
_NORMALIZERS = [
    (re.compile(r"rate_[0-9]+p[0-9]+"), "rate_*"),
    (re.compile(r"\blayer\.[0-9]+\."), "layer.*."),
    # Per-multiplier prof scopes (mul_EXACT, mul_DRUM4, ...): one family
    # per layer across the whole multiplier sweep.
    (re.compile(r"\bmul_[A-Za-z0-9_]+"), "mul_*"),
    # serve_scale sweep points are keyed by absolute offered RPS, which
    # is machine-dependent by design (the bench self-calibrates).
    (re.compile(r"\boffered_[0-9]+"), "offered_*"),
    # Per-tier gauges (brownout mix, shadow-measured quality): which
    # ladder tiers a run visits depends on where escalation lands on
    # that machine, so tiers fold into one family per metric.
    (re.compile(r"\btier_[0-9]+"), "tier_*"),
    # Per-tenant shard counters (shard.tenant.<name>.submitted, ...):
    # tenant names are bench-script choices (the chaos bench picks its
    # bystander off the ring), so they fold into one family per metric.
    (re.compile(r"\btenant\.[A-Za-z0-9-]+\."), "tenant.*."),
    # Per-shard scopes, should any surface as flat metric names.
    (re.compile(r"\bshard_[0-9]+\b"), "shard_*"),
]

# Gauge families whose committed floor is a machine-independent claim:
# suffix -> floor. A committed instance below the floor made no claim
# there, so only families that HELD the floor are re-asserted fresh.
_FLOORS = {
    "success_rate": 0.99,          # served/submitted under chaos (soak)
    "goodput_retention": 0.80,     # goodput at 1.5x knee vs at the knee
    # Shadow-measured delivered accuracy (argmax agreement vs the golden
    # exact table). The configured operator must stay near-exact; the
    # brownout rungs trade accuracy for throughput by design, so their
    # floor only asserts "well above chance", matching serve_scale.
    "configured_agreement": 0.90,
    "browned_agreement": 0.40,
}

# Sparse families: per-layer health counters are only mirrored when an
# event actually fired, so individual signals (nar on layer 3, ...) come
# and go with the run's fault dice. Checked as a group, not per key.
_SPARSE = re.compile(r"serve\.layer\.")

# Machine-dependent families: hardware-counter-derived prof metrics only
# exist where perf_event_open works. Their presence/absence carries no
# regression signal across machines — logged, never failed.
_MACHINE_DEP = re.compile(
    r"prof\..*\.(cycles_per_mac|macs_per_cycle)$|prof\.counters_available$")

# Per-kernel prof record keys that every machine produces (the hw block
# — cycles, cache_misses, ... — is machine-dependent and not required).
_PROF_KERNEL_KEYS = ("calls", "macs", "lut_probes", "bytes", "wall_ns",
                     "macs_per_s", "arith_intensity")

_SECTIONS = ("counters", "gauges", "metrics", "wall_ns")


def family(key: str) -> str:
    for rx, repl in _NORMALIZERS:
        key = rx.sub(repl, key)
    return key


def families(d: dict) -> dict:
    """Map family -> list of (key, value) instances."""
    out = {}
    for k, v in d.items():
        out.setdefault(family(k), []).append((k, v))
    return out


def load(path: str, role: str) -> dict:
    try:
        with open(path) as f:
            d = json.load(f)
    except FileNotFoundError:
        print(f"bench_diff: {role} snapshot missing: {path}", file=sys.stderr)
        if role == "committed":
            print("bench_diff: regenerate it with the bench's --json flag "
                  "and commit the result alongside this change",
                  file=sys.stderr)
        sys.exit(2)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {role} snapshot {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if d.get("schema") != "nga-bench-v1":
        print(f"bench_diff: {path}: unexpected schema {d.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    return d


def compare(base: dict, fresh: dict, exempt=(), log=print):
    """Coverage + floor checks. Returns (failures, new_families)."""
    failures = []
    new_families = []

    if base["bench"] != fresh["bench"]:
        failures.append(
            f"bench name: committed {base['bench']!r} vs fresh "
            f"{fresh['bench']!r}")

    for section in _SECTIONS:
        bfam = families(base.get(section, {}))
        ffam = families(fresh.get(section, {}))
        sparse_missing = []
        for fam in sorted(bfam):
            if fam in ffam:
                continue
            if any(rx.search(fam) for rx in exempt):
                log(f"  [exempt] {section}: {fam}")
                continue
            if _MACHINE_DEP.search(fam):
                log(f"  [machine] {section}: {fam} (hw-counter metric, "
                    f"absent on this machine)")
                continue
            if _SPARSE.search(fam):
                sparse_missing.append(fam)
                continue
            failures.append(f"{section}: family vanished: {fam}")
        # Sparse group check: SOME per-layer attribution must survive.
        if sparse_missing and not any(_SPARSE.search(f) for f in ffam):
            failures.append(
                f"{section}: every sparse family vanished "
                f"({len(sparse_missing)} committed, e.g. {sparse_missing[0]})")
        elif sparse_missing:
            for fam in sparse_missing:
                log(f"  [sparse]  {section}: {fam} (absent this run)")
        new_families += [f"{section}: {f}" for f in sorted(set(ffam) - set(bfam))]

    # The additive trace key (recorded/dropped spans) must not regress
    # away once committed.
    if "trace" in base and "trace" not in fresh:
        failures.append("trace: committed snapshot has the trace key, "
                        "fresh run does not")

    # The additive "prof" section (per-kernel performance attribution):
    # presence and SHAPE are machine-independent — every committed
    # kernel family must still be attributed, with the wall-clock record
    # keys intact, and a non-empty committed kernel table must not come
    # back empty. Hardware-counter values and availability are not
    # compared: "counters":"unavailable" on a locked-down runner is a
    # valid fresh result against an "available" committed one.
    if "prof" in base:
        if "prof" not in fresh:
            failures.append("prof: committed snapshot has the prof section, "
                            "fresh run does not")
        else:
            bk = base["prof"].get("kernels", {})
            fk = fresh["prof"].get("kernels", {})
            if bk and not fk:
                failures.append("prof: committed kernel table is non-empty, "
                                "fresh run attributed nothing")
            bfam, ffam = families(bk), families(fk)
            for fam in sorted(bfam):
                if fam in ffam:
                    continue
                if any(rx.search(fam) for rx in exempt):
                    log(f"  [exempt] prof: {fam}")
                    continue
                failures.append(f"prof: kernel family vanished: {fam}")
            for key, rec in sorted(fk.items()):
                missing = [k for k in _PROF_KERNEL_KEYS if k not in rec]
                if missing:
                    failures.append(
                        f"prof: kernel {key} lacks {missing} "
                        f"(wall-clock attribution keys are not optional)")
            bavail = base["prof"].get("counters")
            favail = fresh["prof"].get("counters")
            if bavail != favail:
                log(f"  [machine] prof: counters {bavail} committed vs "
                    f"{favail} fresh (hw availability differs; not a "
                    f"regression)")

    # The additive "integrity" section (scrub telemetry): the scalar
    # totals are machine-independent shape and must survive; per-table
    # entries are keyed by lane name and run-dependent, so only the
    # presence of the tables map is checked, never its keys.
    if "integrity" in base:
        if "integrity" not in fresh:
            failures.append("integrity: committed snapshot has the "
                            "integrity section, fresh run does not")
        else:
            bi, fi = base["integrity"], fresh["integrity"]
            for k in sorted(bi):
                if k in ("tables", "running"):
                    continue
                if k not in fi:
                    failures.append(f"integrity: key vanished: {k}")
            if bi.get("tables") and "tables" not in fi:
                failures.append("integrity: committed snapshot attributes "
                                "per-table state, fresh run lost the "
                                "tables map")

    # The additive "overload" section (brownout-ladder telemetry): the
    # scalar keys are machine-independent shape and must survive;
    # per-tier entries are keyed by ladder depth and config-dependent,
    # so only the presence of the tiers map is checked, never its keys.
    if "overload" in base:
        if "overload" not in fresh:
            failures.append("overload: committed snapshot has the overload "
                            "section, fresh run does not")
        else:
            bo, fo = base["overload"], fresh["overload"]
            for k in sorted(bo):
                if k == "tiers":
                    continue
                if k not in fo:
                    failures.append(f"overload: key vanished: {k}")
            if bo.get("tiers") and "tiers" not in fo:
                failures.append("overload: committed snapshot attributes "
                                "per-tier traffic, fresh run lost the "
                                "tiers map")

    # The additive "quality" section (shadow-execution telemetry): the
    # scalar totals are machine-independent shape and must survive; the
    # per-tier bins are keyed by ladder depth and config-dependent and
    # the SLO verdict is run-dependent, so only the presence of those
    # two maps is checked, never their keys or values.
    if "quality" in base:
        if "quality" not in fresh:
            failures.append("quality: committed snapshot has the quality "
                            "section, fresh run does not")
        else:
            bq, fq = base["quality"], fresh["quality"]
            for k in sorted(bq):
                if k in ("tiers", "slo"):
                    continue
                if k not in fq:
                    failures.append(f"quality: key vanished: {k}")
            if bq.get("tiers") and "tiers" not in fq:
                failures.append("quality: committed snapshot attributes "
                                "per-tier accuracy, fresh run lost the "
                                "tiers map")
            if "slo" in bq and "slo" not in fq:
                failures.append("quality: committed snapshot carries the "
                                "SLO verdict, fresh run lost it")

    # The additive "shard" section (fault-domain telemetry): the scalar
    # totals are machine-independent shape and must survive; the
    # per-tenant and per-shard maps are keyed by bench-chosen tenant
    # names and topology-dependent shard indices, so only the presence
    # of each non-empty committed map is checked, never its keys.
    if "shard" in base:
        if "shard" not in fresh:
            failures.append("shard: committed snapshot has the shard "
                            "section, fresh run does not")
        else:
            bs, fs = base["shard"], fresh["shard"]
            for k in sorted(bs):
                if k in ("tenants", "per_shard"):
                    continue
                if k not in fs:
                    failures.append(f"shard: key vanished: {k}")
            if bs.get("tenants") and "tenants" not in fs:
                failures.append("shard: committed snapshot attributes "
                                "per-tenant admission, fresh run lost the "
                                "tenants map")
            if bs.get("per_shard") and "per_shard" not in fs:
                failures.append("shard: committed snapshot attributes "
                                "per-shard lifecycle, fresh run lost the "
                                "per_shard map")

    # Claim floors: a committed family that held its suffix's floor
    # must still clear it in the fresh run, for every instance swept.
    bg, fg = families(base.get("gauges", {})), families(fresh.get("gauges", {}))
    for fam, binst in sorted(bg.items()):
        floor = next((f for sfx, f in _FLOORS.items()
                      if fam.endswith(sfx)), None)
        if floor is None:
            continue
        if fam not in fg:
            continue  # already reported by the coverage check
        if min(v for _, v in binst) < floor:
            continue  # the committed run made no floor claim here
        for key, v in fg[fam]:
            if v < floor:
                failures.append(
                    f"floor broken: {key} = {v:.4f} < {floor} "
                    f"(committed family {fam} held it)")

    return failures, new_families


def check_required_sections(base, fresh, required):
    """--require-section verdicts, role-labelled.

    Returns (stale, failures): `stale` lists required additive sections
    the COMMITTED snapshot predates — a usage-class error (exit 2) with
    a regenerate-and-commit instruction, not a bare KeyError; `failures`
    lists sections the FRESH run dropped, which is a plain regression
    (exit 1)."""
    stale, failures = [], []
    for name in required:
        if name not in base:
            stale.append(
                f"committed snapshot predates the required additive "
                f"section {name!r} — regenerate the committed BENCH_*.json "
                f"with the bench's --json flag and commit it alongside "
                f"this change")
        elif name not in fresh:
            failures.append(
                f"{name}: required section present in the committed "
                f"snapshot but missing from the fresh run")
    return stale, failures


def self_test() -> int:
    """Feed the checker synthetic documents covering every verdict it can
    reach, so CI notices if a refactor stops it catching regressions."""
    def doc(gauges=None, counters=None, prof=None):
        d = {"schema": "nga-bench-v1", "bench": "t",
             "gauges": gauges or {}, "counters": counters or {}}
        if prof is not None:
            d["prof"] = prof
        return d

    def kernel(**extra):
        rec = {"calls": 2, "macs": 100, "lut_probes": 90, "bytes": 400,
               "wall_ns": 1000, "macs_per_s": 1e8, "arith_intensity": 0.25}
        rec.update(extra)
        return rec

    quiet = lambda *_: None
    base = doc(gauges={"a.success_rate": 0.995, "a.p99_ms": 12.0},
               counters={"soak.rate_0p0050.served": 100,
                         "soak.rate_0p0200.served": 400})
    prof_base = doc(prof={"counters": "available",
                          "kernels": {"mul_EXACT.layer.0.conv":
                                      kernel(cycles=900, cycles_per_mac=9.0),
                                      "mul_DRUM4.layer.0.conv": kernel()}})
    cases = [
        ("identical docs pass",
         base, base, (), 0),
        ("fewer swept rates still cover the family",
         base, doc(gauges=dict(base["gauges"]),
                   counters={"soak.rate_0p0100.served": 50}), (), 0),
        ("vanished family is a regression",
         base, doc(gauges=dict(base["gauges"])), (), 1),
        ("--allow-missing exempts the family",
         base, doc(gauges=dict(base["gauges"])),
         (re.compile(r"rate_\*"),), 0),
        ("broken floor is a regression",
         base, doc(gauges={"a.success_rate": 0.52, "a.p99_ms": 9.0},
                   counters=dict(base["counters"])), (), 1),
        ("no floor claim when the committed value is below it",
         doc(gauges={"b.success_rate": 0.60}),
         doc(gauges={"b.success_rate": 0.10}), (), 0),
        ("renamed bench is a regression",
         base, dict(base, bench="other"), (), 1),
        ("prof section absent on both sides passes",
         base, base, (), 0),
        ("vanished prof section is a regression",
         prof_base, doc(), (), 1),
        ("emptied prof kernel table is a regression",
         prof_base, doc(prof={"counters": "unavailable", "kernels": {}}),
         (), 1),
        ("hw counters going unavailable on this machine is fine",
         prof_base,
         doc(prof={"counters": "unavailable",
                   "counters_reason": "perf_event_open: EACCES",
                   "kernels": {"mul_EXACT.layer.0.conv": kernel()}}), (), 0),
        ("one multiplier scope covers the whole mul_* sweep",
         prof_base,
         doc(prof={"counters": "available",
                   "kernels": {"mul_LOA5.layer.2.conv": kernel()}}), (), 0),
        ("kernel record missing wall-clock keys is a regression",
         prof_base,
         doc(prof={"counters": "unavailable",
                   "kernels": {"mul_EXACT.layer.0.conv":
                               {"calls": 2, "macs": 100}}}), (), 1),
        ("hw-derived gauge families are machine-dependent",
         doc(gauges={"prof.mul_EXACT.layer.0.conv.cycles_per_mac": 9.0,
                     "prof.counters_available": 1.0}),
         doc(), (), 0),
        ("vanished integrity section is a regression",
         dict(base, integrity={"pages_scanned": 9, "tables": {}}),
         base, (), 1),
        ("vanished integrity scalar key is a regression",
         dict(base, integrity={"pages_scanned": 9, "pages_repaired": 1}),
         dict(base, integrity={"pages_scanned": 2}), (), 1),
        ("per-table lane names are run-dependent, only the map matters",
         dict(base, integrity={"pages_scanned": 9,
                               "tables": {"serve.worker.0": {"pages": 32}}}),
         dict(base, integrity={"pages_scanned": 2,
                               "tables": {"serve.worker.2.g1":
                                          {"pages": 32}}}), (), 0),
        ("held goodput-retention floor must hold fresh",
         doc(gauges={"scale.brownout_on.goodput_retention": 0.93}),
         doc(gauges={"scale.brownout_on.goodput_retention": 0.55}), (), 1),
        ("a committed retention below the floor claims nothing",
         doc(gauges={"scale.brownout_off.goodput_retention": 0.07}),
         doc(gauges={"scale.brownout_off.goodput_retention": 0.02}), (), 0),
        ("retention above the floor on both sides passes",
         doc(gauges={"scale.brownout_on.goodput_retention": 0.93}),
         doc(gauges={"scale.brownout_on.goodput_retention": 0.85}), (), 0),
        ("machine-dependent offered rates fold into one family",
         doc(gauges={"scale.off.offered_1053.goodput_rps": 998.0}),
         doc(gauges={"scale.off.offered_611.goodput_rps": 580.0}), (), 0),
        ("vanished overload section is a regression",
         dict(base, overload={"ladder_engaged": True, "escalations": 3,
                              "tiers": {"0": {"requests": 9}}}),
         base, (), 1),
        ("vanished overload scalar key is a regression",
         dict(base, overload={"ladder_engaged": True, "escalations": 3}),
         dict(base, overload={"ladder_engaged": True}), (), 1),
        ("per-tier keys are config-dependent, only the map matters",
         dict(base, overload={"escalations": 3,
                              "tiers": {"0": {"requests": 9},
                                        "4": {"requests": 2}}}),
         dict(base, overload={"escalations": 1,
                              "tiers": {"0": {"requests": 5}}}), (), 0),
        ("vanished quality section is a regression",
         dict(base, quality={"sampled": 40, "compared": 38, "tiers": {}}),
         base, (), 1),
        ("vanished quality scalar key is a regression",
         dict(base, quality={"sampled": 40, "dropped": 2}),
         dict(base, quality={"sampled": 7}), (), 1),
        ("quality tier bins and SLO verdict are run-dependent maps",
         dict(base, quality={"sampled": 40, "slo": {"breached": False},
                             "tiers": {"0": {"agreement": 1.0},
                                       "3": {"agreement": 0.8}}}),
         dict(base, quality={"sampled": 3, "slo": {"breached": True},
                             "tiers": {"1": {"agreement": 0.9}}}), (), 0),
        ("losing the quality tiers map is a regression",
         dict(base, quality={"sampled": 40,
                             "tiers": {"0": {"agreement": 1.0}}}),
         dict(base, quality={"sampled": 3}), (), 1),
        ("held configured-agreement floor must hold fresh",
         doc(gauges={"scale.quality.configured_agreement": 0.999}),
         doc(gauges={"scale.quality.configured_agreement": 0.71}), (), 1),
        ("held browned-agreement floor must hold fresh",
         doc(gauges={"scale.quality.browned_agreement": 0.83}),
         doc(gauges={"scale.quality.browned_agreement": 0.22}), (), 1),
        ("a committed browned agreement below its floor claims nothing",
         doc(gauges={"scale.quality.browned_agreement": 0.31}),
         doc(gauges={"scale.quality.browned_agreement": 0.05}), (), 0),
        ("visited ladder tiers differ by machine, one family per metric",
         doc(gauges={"scale.quality.on.knee.tier_3.agreement": 0.91,
                     "scale.quality.on.knee.tier_2.agreement": 0.94}),
         doc(gauges={"scale.quality.on.knee.tier_1.agreement": 1.0}), (), 0),
        ("vanished shard section is a regression",
         dict(base, shard={"submitted": 90, "failovers": 2, "tenants": {}}),
         base, (), 1),
        ("vanished shard scalar key is a regression",
         dict(base, shard={"submitted": 90, "failovers": 2}),
         dict(base, shard={"submitted": 12}), (), 1),
        ("shard tenant names and shard indices are run-dependent maps",
         dict(base, shard={"failovers": 2,
                           "tenants": {"tenant-blue": {"submitted": 40}},
                           "per_shard": {"0": {"kills": 1}}}),
         dict(base, shard={"failovers": 1,
                           "tenants": {"tenant-9": {"submitted": 3}},
                           "per_shard": {"1": {"kills": 1}}}), (), 0),
        ("losing the shard tenants map is a regression",
         dict(base, shard={"failovers": 2,
                           "tenants": {"tenant-blue": {"submitted": 40}}}),
         dict(base, shard={"failovers": 1}), (), 1),
        ("tenant-named counter families fold into one family",
         doc(counters={"shard.tenant.tenant-blue.limited": 3,
                       "shard.tenant.tenant-4.limited": 0}),
         doc(counters={"shard.tenant.tenant-noisy.limited": 9}), (), 0),
        ("held bystander success floor must hold fresh",
         doc(gauges={"chaos.iso_on.nonvictim.success_rate": 1.0}),
         doc(gauges={"chaos.iso_on.nonvictim.success_rate": 0.84}), (), 1),
        ("a committed victim rate below the floor claims nothing",
         doc(gauges={"chaos.iso_on.victim.success_rate": 0.90}),
         doc(gauges={"chaos.iso_on.victim.success_rate": 0.31}), (), 0),
    ]
    bad = 0
    for name, b, f, exempt, want in cases:
        failures, _ = compare(b, f, exempt, log=quiet)
        got = 1 if failures else 0
        status = "ok" if got == want else "FAIL"
        bad += got != want
        print(f"  [{status}] {name}" +
              (f" (want {want}, got {got}: {failures})" if got != want else ""))

    # --require-section verdicts, which split by ROLE rather than value.
    with_integrity = dict(base, integrity={"pages_scanned": 9})
    req_cases = [
        ("required section present on both sides",
         with_integrity, with_integrity, ["integrity"], 0),
        ("stale committed snapshot is a labelled usage error, not exit 1",
         base, with_integrity, ["integrity"], 2),
        ("fresh run dropping a required section is a regression",
         with_integrity, base, ["integrity"], 1),
        ("required quality section missing from both sides is stale",
         base, base, ["quality"], 2),
    ]
    for name, b, f, req, want in req_cases:
        stale, failures = check_required_sections(b, f, req)
        got = 2 if stale else (1 if failures else 0)
        ok = got == want and (not stale or "predates" in stale[0])
        status = "ok" if ok else "FAIL"
        bad += not ok
        print(f"  [{status}] {name}" +
              ("" if ok else f" (want {want}, got {got})"))

    total = len(cases) + len(req_cases)
    print(f"bench_diff --self-test: {total - bad}/{total} ok")
    return 1 if bad else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("committed", nargs="?",
                    help="committed BENCH_*.json snapshot")
    ap.add_argument("fresh", nargs="?", help="fresh bench --json output")
    ap.add_argument("--allow-missing", action="append", default=[],
                    help="family regex exempt from the coverage check "
                         "(e.g. a section gated off in this build)")
    ap.add_argument("--require-section", action="append", default=[],
                    help="additive top-level section that must exist in "
                         "BOTH snapshots; a committed snapshot that "
                         "predates it is reported as such (exit 2), a "
                         "fresh run that dropped it is a regression")
    ap.add_argument("--self-test", action="store_true",
                    help="run the checker against synthetic documents")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.committed or not args.fresh:
        ap.error("the committed and fresh snapshot paths are required")

    base = load(args.committed, "committed")
    fresh = load(args.fresh, "fresh")
    stale, required_failures = check_required_sections(
        base, fresh, args.require_section)
    if stale:
        for s in stale:
            print(f"bench_diff: {args.committed}: {s}", file=sys.stderr)
        return 2
    exempt = [re.compile(p) for p in args.allow_missing]
    failures, new_families = compare(base, fresh, exempt)
    failures = required_failures + failures

    print(f"bench_diff: {args.committed} vs {args.fresh}")
    print(f"  committed: {sum(len(base.get(s, {})) for s in ('counters', 'gauges', 'metrics'))} metrics"
          f", fresh: {sum(len(fresh.get(s, {})) for s in ('counters', 'gauges', 'metrics'))}")
    for nf in new_families:
        print(f"  [new]     {nf}")
    if failures:
        print(f"  {len(failures)} regression(s):")
        for f in failures:
            print(f"    FAIL {f}")
        return 1
    print("  coverage and claim floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
