// nga::integrity — umbrella header.
//
// State integrity for the behavioural LUTs the serving stack depends
// on: page-wise CRC32C verification (checksums live in nn::MulTable,
// computed at build), a budgeted background Scrubber that detects and
// repairs persistent corruption in place, and quarantine for tables
// whose generator can no longer reproduce the built contents. See
// scrubber.hpp for the full design notes and DESIGN.md ("State
// integrity & scrubbing") for how nga::serve turns a repair into a
// breaker reinstatement.
#pragma once

#include "integrity/scrubber.hpp"
