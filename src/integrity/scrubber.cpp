#include "integrity/scrubber.hpp"

#include <algorithm>
#include <ostream>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/timer.hpp"

namespace nga::integrity {

Scrubber& Scrubber::instance() {
  // Leaked on purpose: the background thread and the registered obs
  // JSON section may be touched during static destruction otherwise.
  static Scrubber* s = new Scrubber();
  return *s;
}

Scrubber::Scrubber() {
  auto& reg = obs::MetricsRegistry::instance();
  scanned_c_ = &reg.counter("integrity.pages_scanned",
                            "LUT pages CRC-verified by the scrubber");
  corrupt_c_ = &reg.counter("integrity.corrupt_pages",
                            "pages that failed CRC verification");
  repaired_c_ = &reg.counter(
      "integrity.pages_repaired",
      "corrupt pages regenerated in place and re-verified");
  unreproducible_c_ = &reg.counter(
      "integrity.unreproducible",
      "corrupt pages the generator could not reproduce (table quarantined)");
  deep_c_ = &reg.counter("integrity.deep_scrubs",
                         "on-demand full-table scrubs (breaker trips)");
  passes_c_ = &reg.counter("integrity.full_passes",
                           "completed background verification rotations");
  tables_g_ = &reg.gauge("integrity.tables", "tables registered for scrubbing");
  ttd_ms_ = &reg.series("integrity.time_to_detect_ms",
                        "corruption injection -> scrub detection latency");
  obs::register_json_section(
      "integrity", [](std::ostream& os) { instance().write_json(os); });
}

void Scrubber::register_table(std::shared_ptr<const nn::MulTable> table,
                              std::string name, std::string scope) {
  if (!table) return;
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& e : entries_)
    if (e.table.get() == table.get()) return;  // already registered
  Entry e;
  e.table = std::move(table);
  e.name = std::move(name);
  e.scope = std::move(scope);
  entries_.push_back(std::move(e));
  tables_g_->set(double(entries_.size()));
}

void Scrubber::register_unowned(const nn::MulTable* table, std::string name,
                                std::string scope) {
  if (!table) return;
  // Aliasing shared_ptr with a no-op deleter: the registry machinery
  // stays uniform, ownership stays with the caller.
  register_table(std::shared_ptr<const nn::MulTable>(table,
                                                     [](const nn::MulTable*) {}),
                 std::move(name), std::move(scope));
}

void Scrubber::unregister_table(const nn::MulTable* table) {
  std::lock_guard<std::mutex> lk(m_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return e.table.get() == table;
                                }),
                 entries_.end());
  if (rr_ >= entries_.size()) rr_ = 0;
  tables_g_->set(double(entries_.size()));
}

std::size_t Scrubber::unregister_scope(std::string_view scope) {
  if (scope.empty()) return 0;
  std::lock_guard<std::mutex> lk(m_);
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) {
                                  return e.scope == scope;
                                }),
                 entries_.end());
  if (rr_ >= entries_.size()) rr_ = 0;
  tables_g_->set(double(entries_.size()));
  return before - entries_.size();
}

std::size_t Scrubber::table_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return entries_.size();
}

std::size_t Scrubber::scope_count(std::string_view scope) const {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.scope == scope) ++n;
  return n;
}

void Scrubber::start(ScrubberConfig cfg) {
  std::unique_lock<std::mutex> lk(m_);
  cfg_ = cfg;
  if (running_) return;  // re-configured the pacing of the live thread
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { thread_main(); });
}

void Scrubber::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(m_);
  running_ = false;
}

bool Scrubber::running() const {
  std::lock_guard<std::mutex> lk(m_);
  return running_;
}

void Scrubber::note_detection(const nn::MulTable& t) {
  const u64 stamp = t.take_corruption_stamp();
  if (stamp == 0) return;
  const u64 now = obs::now_ns();
  if (now > stamp) ttd_ms_->add(double(now - stamp) * 1e-6);
}

void Scrubber::scrub_entry_page(Entry& e) {
  const auto r = e.table->scrub_page(e.cursor);
  ++stats_.pages_scanned;
  scanned_c_->inc();
  switch (r) {
    case nn::MulTable::PageScrub::kClean:
      break;
    case nn::MulTable::PageScrub::kRepaired:
      ++stats_.corrupt_pages;
      ++stats_.pages_repaired;
      ++e.corrupt_found;
      ++e.repaired;
      corrupt_c_->inc();
      repaired_c_->inc();
      note_detection(*e.table);
      break;
    case nn::MulTable::PageScrub::kUnreproducible:
    case nn::MulTable::PageScrub::kNoGenerator:
      ++stats_.corrupt_pages;
      ++stats_.unreproducible;
      ++e.corrupt_found;
      corrupt_c_->inc();
      unreproducible_c_->inc();
      note_detection(*e.table);
      e.quarantined = true;
      break;
  }
  if (++e.cursor >= nn::MulTable::kPages) {
    e.cursor = 0;
    // A completed rotation means every page was just verified (repaired
    // pages re-verify before storing) — unless one was unreproducible,
    // in which case the quarantine flag already overrides freshness.
    e.last_full_verify_ns = obs::now_ns();
    ++stats_.full_passes;
    passes_c_->inc();
  }
}

void Scrubber::scan_pages(std::size_t n) {
  std::lock_guard<std::mutex> lk(m_);
  if (entries_.empty()) return;
  // Quarantined tables drop out of the rotation: their storage no
  // longer matches the generator, so rescanning only re-counts the
  // same damage.
  std::size_t active = 0;
  for (const auto& e : entries_)
    if (!e.quarantined) ++active;
  if (active == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    while (entries_[rr_].quarantined) rr_ = (rr_ + 1) % entries_.size();
    scrub_entry_page(entries_[rr_]);
    rr_ = (rr_ + 1) % entries_.size();
    // A page may have just quarantined the last active table.
    if (entries_[rr_].quarantined) {
      active = 0;
      for (const auto& e : entries_)
        if (!e.quarantined) ++active;
      if (active == 0) return;
    }
  }
}

DeepScrubResult Scrubber::deep_scrub(const nn::MulTable& table) {
  DeepScrubResult r;
  std::lock_guard<std::mutex> lk(m_);
  for (std::size_t page = 0; page < nn::MulTable::kPages; ++page) {
    ++r.pages;
    switch (table.scrub_page(page)) {
      case nn::MulTable::PageScrub::kClean:
        break;
      case nn::MulTable::PageScrub::kRepaired:
        ++r.corrupt;
        ++r.repaired;
        break;
      case nn::MulTable::PageScrub::kUnreproducible:
      case nn::MulTable::PageScrub::kNoGenerator:
        ++r.corrupt;
        ++r.unreproducible;
        break;
    }
  }
  if (r.corrupt > 0) note_detection(table);
  stats_.pages_scanned += r.pages;
  stats_.corrupt_pages += r.corrupt;
  stats_.pages_repaired += r.repaired;
  stats_.unreproducible += r.unreproducible;
  ++stats_.deep_scrubs;
  scanned_c_->inc(r.pages);
  corrupt_c_->inc(r.corrupt);
  repaired_c_->inc(r.repaired);
  unreproducible_c_->inc(r.unreproducible);
  deep_c_->inc();
  for (auto& e : entries_) {
    if (e.table.get() != &table) continue;
    e.corrupt_found += r.corrupt;
    e.repaired += r.repaired;
    if (r.unreproducible > 0) e.quarantined = true;
    e.last_full_verify_ns = obs::now_ns();
    e.cursor = 0;  // the rotation restarts from freshly verified state
    break;
  }
  return r;
}

bool Scrubber::quarantined(const nn::MulTable* table) const {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& e : entries_)
    if (e.table.get() == table) return e.quarantined;
  return false;
}

double Scrubber::last_verified_age_ms(const nn::MulTable* table) const {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& e : entries_) {
    if (e.table.get() != table) continue;
    if (e.last_full_verify_ns == 0) return -1.0;
    return double(obs::now_ns() - e.last_full_verify_ns) * 1e-6;
  }
  return -1.0;
}

Scrubber::Stats Scrubber::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

void Scrubber::reset_stats() {
  std::lock_guard<std::mutex> lk(m_);
  stats_ = {};
  for (auto& e : entries_) {
    e.corrupt_found = 0;
    e.repaired = 0;
  }
}

void Scrubber::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  os << "{\"pages_scanned\":" << stats_.pages_scanned
     << ",\"corrupt_pages\":" << stats_.corrupt_pages
     << ",\"pages_repaired\":" << stats_.pages_repaired
     << ",\"unreproducible\":" << stats_.unreproducible
     << ",\"deep_scrubs\":" << stats_.deep_scrubs
     << ",\"full_passes\":" << stats_.full_passes
     << ",\"running\":" << (running_ ? "true" : "false") << ",\"tables\":{";
  const u64 now = obs::now_ns();
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::json::escape(e.name) << "\":{"
       << "\"pages\":" << nn::MulTable::kPages
       << ",\"regenerable\":" << (e.table->regenerable() ? "true" : "false")
       << ",\"quarantined\":" << (e.quarantined ? "true" : "false")
       << ",\"corrupt_found\":" << e.corrupt_found
       << ",\"repaired\":" << e.repaired << ",\"last_verified_age_ms\":";
    if (e.last_full_verify_ns == 0)
      os << -1;
    else
      os << double(now - e.last_full_verify_ns) * 1e-6;
    os << "}";
  }
  os << "}}";
}

void Scrubber::thread_main() {
  double budget = 0.0;
  std::unique_lock<std::mutex> lk(m_);
  while (!stop_requested_) {
    const auto tick = cfg_.tick;
    const double pps = cfg_.pages_per_sec;
    cv_.wait_for(lk, tick, [this] { return stop_requested_; });
    if (stop_requested_) break;
    budget += pps * std::chrono::duration<double>(tick).count();
    std::size_t pages = std::size_t(budget);
    if (pages == 0) continue;
    budget -= double(pages);
    // Reuse the synchronous path without re-taking the lock.
    lk.unlock();
    scan_pages(pages);
    lk.lock();
  }
}

}  // namespace nga::integrity
