// nga::integrity — background scrubbing and repair for checksummed LUT
// storage (nn::MulTable pages).
//
// The threat model is the edge-device one from the paper: the 128 KiB
// behavioural multiplier table IS the vulnerable state. SEUs and bit-rot
// flip bits in table memory and STAY flipped — a transient-fault
// failover strategy (nga::guard's exact fallback) contains the damage
// but can never reinstate the replica, because the corruption is still
// there when the golden probe runs. The scrubber closes that loop:
//
//   detect   page-wise CRC32C verification against build-time checksums,
//            paced by a pages/sec budget on a background thread;
//   repair   every table is function-generated, so the generator (exact
//            products or the owning ax::ApproxMult8) regenerates the
//            page in place — verify-after-repair checks the REGENERATED
//            bytes against the golden CRC before they are stored;
//   reinstate nga::serve runs a deep scrub when a breaker trips, so the
//            HalfOpen probe sees repaired storage and the replica
//            returns to service instead of retiring.
//
// Tables whose generator cannot reproduce the built page (or that
// retained no generator at all) are QUARANTINED: the scrubber stops
// scanning them and reports them so the serving layer keeps them on the
// exact path forever.
//
// Threading: page verify/repair is lock-free against concurrent mul()
// readers (relaxed atomics; repairs store exactly the clean build
// values). The scrubber's own registry/stats live under one mutex;
// deep_scrub() serialises on it, which also makes concurrent deep
// scrubs of the same table well-defined.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/quant.hpp"
#include "obs/registry.hpp"
#include "util/bits.hpp"

namespace nga::integrity {

using util::u64;

/// Background-thread pacing. The budget is deliberately in PAGES per
/// second, not bytes: a page is the unit of verification and repair.
struct ScrubberConfig {
  /// Pages verified per second across all registered tables (round-
  /// robin). 32768 pages/s re-verifies a full 32-page table every
  /// millisecond — cheap (one CRC32C over 4 KiB per page) but far above
  /// what an edge deployment needs; serve uses a much smaller budget.
  double pages_per_sec = 2048.0;
  /// Wakeup cadence of the scrub thread; the page budget accumulates
  /// fractionally across ticks so small budgets still make progress.
  std::chrono::milliseconds tick{5};
};

/// Outcome of one synchronous full-table verification (all pages).
struct DeepScrubResult {
  std::size_t pages = 0;           ///< pages examined
  std::size_t corrupt = 0;         ///< pages that failed verification
  std::size_t repaired = 0;        ///< corrupt pages regenerated + verified
  std::size_t unreproducible = 0;  ///< corrupt pages that could NOT be
                                   ///< restored (generator mismatch or no
                                   ///< generator) — quarantine the table
  bool clean() const { return unreproducible == 0; }
};

/// The process-wide scrubber (one per process, like Injector and the
/// metrics registry — background repair is a property of the process's
/// tables, not of any one server).
class Scrubber {
 public:
  static Scrubber& instance();

  /// Register @p table for background scanning under @p name (shown in
  /// telemetry). The scrubber shares ownership, so a table may outlive
  /// its registrant until unregister_table(). @p scope is an optional
  /// fault-domain tag (e.g. "shard3"): every registration a shard's
  /// workers make carries the shard's scope, and unregister_scope()
  /// purges them all at once when that shard drains — registrations can
  /// never outlive their fault domain, whatever order its worker
  /// threads died in.
  void register_table(std::shared_ptr<const nn::MulTable> table,
                      std::string name, std::string scope = "");
  /// Register a table the caller guarantees outlives the registration
  /// (stack-owned tables in tests and benches).
  void register_unowned(const nn::MulTable* table, std::string name,
                       std::string scope = "");
  void unregister_table(const nn::MulTable* table);
  /// Remove EVERY registration tagged with @p scope (no-op for "").
  /// Returns the number of entries removed.
  std::size_t unregister_scope(std::string_view scope);
  std::size_t table_count() const;
  /// Registrations currently tagged with @p scope.
  std::size_t scope_count(std::string_view scope) const;

  /// Start/stop the background thread. start() on a running scrubber
  /// re-configures the pacing; stop() joins and is idempotent.
  void start(ScrubberConfig cfg = {});
  void stop();
  bool running() const;

  /// Synchronously verify (and repair where possible) EVERY page of
  /// @p table. Works on unregistered tables too; registered tables get
  /// their quarantine flag and last-verified stamp updated. This is the
  /// on-demand entry nga::serve calls when a breaker trips.
  DeepScrubResult deep_scrub(const nn::MulTable& table);

  /// Drive @p n pages of the background rotation synchronously (what
  /// the scrub thread does per tick) — lets tests advance the scrubber
  /// deterministically without a thread.
  void scan_pages(std::size_t n);

  /// True when @p table was quarantined (an unreproducible page was
  /// found). Sticky for the registration's lifetime.
  bool quarantined(const nn::MulTable* table) const;

  /// Milliseconds since @p table last completed a full verified
  /// rotation (background or deep scrub); negative when it never has
  /// or is not registered.
  double last_verified_age_ms(const nn::MulTable* table) const;

  /// Process-lifetime totals (mirrored into obs counters; kept here so
  /// the scrubber works the same with NGA_OBS off).
  struct Stats {
    u64 pages_scanned = 0;
    u64 corrupt_pages = 0;    ///< pages that failed verification
    u64 pages_repaired = 0;   ///< regenerated + verified in place
    u64 unreproducible = 0;   ///< repair failed; table quarantined
    u64 deep_scrubs = 0;      ///< on-demand full-table scrubs
    u64 full_passes = 0;      ///< background rotations completed
  };
  Stats stats() const;
  void reset_stats();

  /// The "integrity" section of the bench/exposition JSON.
  void write_json(std::ostream& os) const;

 private:
  Scrubber();
  ~Scrubber() = delete;  // process-lifetime singleton, never destroyed

  struct Entry {
    std::shared_ptr<const nn::MulTable> table;
    std::string name;
    std::string scope;  ///< fault-domain tag; "" = unscoped
    std::size_t cursor = 0;         ///< next page in the rotation
    u64 last_full_verify_ns = 0;    ///< 0 = never completed a rotation
    bool quarantined = false;
    u64 corrupt_found = 0;
    u64 repaired = 0;
  };

  /// Verify/repair one page of @p e and account for the outcome.
  /// Caller holds m_.
  void scrub_entry_page(Entry& e);
  /// Harvest a corruption stamp into the time-to-detect series.
  void note_detection(const nn::MulTable& t);
  void thread_main();

  mutable std::mutex m_;
  std::vector<Entry> entries_;
  std::size_t rr_ = 0;  ///< round-robin index into entries_
  Stats stats_;
  ScrubberConfig cfg_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  std::condition_variable cv_;

  // Cached obs handles (registry references are stable forever).
  obs::Counter* scanned_c_ = nullptr;
  obs::Counter* corrupt_c_ = nullptr;
  obs::Counter* repaired_c_ = nullptr;
  obs::Counter* unreproducible_c_ = nullptr;
  obs::Counter* deep_c_ = nullptr;
  obs::Counter* passes_c_ = nullptr;
  obs::Gauge* tables_g_ = nullptr;
  obs::ValueSeries* ttd_ms_ = nullptr;
};

}  // namespace nga::integrity
