#include "hwmodel/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace nga::hw {

int Netlist::add_input(std::string) {
  gates_.push_back(Gate{GateOp::kInput, -1, -1, -1});
  inputs_.push_back(int(gates_.size()) - 1);
  return inputs_.back();
}

int Netlist::constant(bool value) {
  gates_.push_back(Gate{value ? GateOp::kConst1 : GateOp::kConst0, -1, -1, -1});
  return int(gates_.size()) - 1;
}

int Netlist::gate(GateOp op, int a, int b, int c) {
  const int next = int(gates_.size());
  if (a >= next || b >= next || c >= next)
    throw std::invalid_argument("netlist operand must precede gate");
  switch (op) {
    case GateOp::kInput:
    case GateOp::kConst0:
    case GateOp::kConst1:
      throw std::invalid_argument("use add_input/constant");
    case GateOp::kNot:
      if (a < 0) throw std::invalid_argument("NOT needs 1 operand");
      break;
    case GateOp::kMux:
    case GateOp::kMaj:
      if (a < 0 || b < 0 || c < 0)
        throw std::invalid_argument("3-input gate needs 3 operands");
      break;
    default:
      if (a < 0 || b < 0) throw std::invalid_argument("gate needs 2 operands");
      break;
  }
  gates_.push_back(Gate{op, a, b, c});
  return next;
}

Netlist::SumCarry Netlist::half_adder(int a, int b) {
  return {xor_(a, b), and_(a, b)};
}

Netlist::SumCarry Netlist::full_adder(int a, int b, int cin) {
  const int s = xor_(xor_(a, b), cin);
  const int co = maj(a, b, cin);
  return {s, co};
}

std::vector<int> Netlist::ripple_add(std::span<const int> a,
                                     std::span<const int> b, int cin,
                                     bool keep_carry_out) {
  assert(a.size() == b.size());
  std::vector<int> sum;
  sum.reserve(a.size() + 1);
  int carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (carry < 0) {
      auto [s, co] = half_adder(a[i], b[i]);
      sum.push_back(s);
      carry = co;
    } else {
      auto [s, co] = full_adder(a[i], b[i], carry);
      sum.push_back(s);
      carry = co;
    }
  }
  if (keep_carry_out) sum.push_back(carry < 0 ? constant(false) : carry);
  return sum;
}

std::vector<int> Netlist::negate(std::span<const int> a) {
  // ~a + 1 using the carry-in trick: invert and add with cin=1 against 0.
  std::vector<int> inv(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) inv[i] = not_(a[i]);
  std::vector<int> zero(a.size());
  const int z = constant(false);
  std::fill(zero.begin(), zero.end(), z);
  const int one = constant(true);
  auto s = ripple_add(inv, zero, one, false);
  return s;
}

std::vector<int> Netlist::array_multiply(std::span<const int> a,
                                         std::span<const int> b) {
  const std::size_t wa = a.size(), wb = b.size();
  std::vector<int> acc;  // running sum bits, little-endian
  for (std::size_t j = 0; j < wb; ++j) {
    std::vector<int> pp;
    pp.reserve(wa);
    for (std::size_t i = 0; i < wa; ++i) pp.push_back(and_(a[i], b[j]));
    if (acc.empty()) {
      acc = std::move(pp);
      continue;
    }
    // Add pp << j into acc. Bits below j of acc are final already.
    std::vector<int> hi(acc.begin() + long(j), acc.end());
    while (hi.size() < wa) hi.push_back(constant(false));
    while (pp.size() < hi.size()) pp.push_back(constant(false));
    auto sum = ripple_add(hi, pp, -1, true);
    acc.resize(j);
    acc.insert(acc.end(), sum.begin(), sum.end());
  }
  while (acc.size() < wa + wb) acc.push_back(constant(false));
  acc.resize(wa + wb);
  return acc;
}

void Netlist::mark_output(int id, std::string) {
  if (id < 0 || id >= int(gates_.size()))
    throw std::invalid_argument("bad output id");
  outputs_.push_back(id);
}

std::vector<bool> Netlist::node_values(const std::vector<bool>& in) const {
  if (in.size() != inputs_.size())
    throw std::invalid_argument("stimulus width mismatch");
  std::vector<bool> v(gates_.size(), false);
  std::size_t next_in = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.op) {
      case GateOp::kInput:
        v[i] = in[next_in++];
        break;
      case GateOp::kConst0:
        v[i] = false;
        break;
      case GateOp::kConst1:
        v[i] = true;
        break;
      case GateOp::kNot:
        v[i] = !v[std::size_t(g.a)];
        break;
      case GateOp::kAnd:
        v[i] = v[std::size_t(g.a)] && v[std::size_t(g.b)];
        break;
      case GateOp::kOr:
        v[i] = v[std::size_t(g.a)] || v[std::size_t(g.b)];
        break;
      case GateOp::kXor:
        v[i] = v[std::size_t(g.a)] != v[std::size_t(g.b)];
        break;
      case GateOp::kNand:
        v[i] = !(v[std::size_t(g.a)] && v[std::size_t(g.b)]);
        break;
      case GateOp::kNor:
        v[i] = !(v[std::size_t(g.a)] || v[std::size_t(g.b)]);
        break;
      case GateOp::kXnor:
        v[i] = v[std::size_t(g.a)] == v[std::size_t(g.b)];
        break;
      case GateOp::kAndNot:
        v[i] = v[std::size_t(g.a)] && !v[std::size_t(g.b)];
        break;
      case GateOp::kMux:
        v[i] = v[std::size_t(g.c)] ? v[std::size_t(g.b)] : v[std::size_t(g.a)];
        break;
      case GateOp::kMaj: {
        const int s = int(v[std::size_t(g.a)]) + int(v[std::size_t(g.b)]) +
                      int(v[std::size_t(g.c)]);
        v[i] = s >= 2;
        break;
      }
    }
  }
  return v;
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& in) const {
  const auto v = node_values(in);
  std::vector<bool> out(outputs_.size());
  for (std::size_t i = 0; i < outputs_.size(); ++i)
    out[i] = v[std::size_t(outputs_[i])];
  return out;
}

util::u64 Netlist::eval_word(util::u64 in) const {
  if (inputs_.size() > 64 || outputs_.size() > 64)
    throw std::logic_error("eval_word limited to 64 inputs/outputs");
  std::vector<bool> bits(inputs_.size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (in >> i) & 1;
  const auto out = evaluate(bits);
  util::u64 r = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    r |= util::u64{out[i] ? 1u : 0u} << i;
  return r;
}

double Netlist::gate_area(GateOp op) {
  // Typical NAND2-equivalent areas for a standard-cell library.
  switch (op) {
    case GateOp::kInput:
    case GateOp::kConst0:
    case GateOp::kConst1:
      return 0.0;
    case GateOp::kNot:
      return 0.67;
    case GateOp::kNand:
    case GateOp::kNor:
      return 1.0;
    case GateOp::kAnd:
    case GateOp::kOr:
    case GateOp::kAndNot:
      return 1.33;
    case GateOp::kXor:
    case GateOp::kXnor:
      return 2.33;
    case GateOp::kMux:
      return 2.33;
    case GateOp::kMaj:
      return 2.67;  // AOI-based majority
  }
  return 1.0;
}

CostReport Netlist::cost() const {
  CostReport r;
  r.input_count = inputs_.size();
  r.output_count = outputs_.size();
  std::vector<int> depth(gates_.size(), 0);
  int max_depth = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.op == GateOp::kInput || g.op == GateOp::kConst0 ||
        g.op == GateOp::kConst1) {
      depth[i] = 0;
      continue;
    }
    ++r.gate_count;
    r.nand2_area += gate_area(g.op);
    int d = 0;
    if (g.a >= 0) d = std::max(d, depth[std::size_t(g.a)]);
    if (g.b >= 0) d = std::max(d, depth[std::size_t(g.b)]);
    if (g.c >= 0) d = std::max(d, depth[std::size_t(g.c)]);
    depth[i] = d + 1;
    max_depth = std::max(max_depth, depth[i]);
  }
  r.depth = max_depth;
  return r;
}

double switching_energy(const Netlist& nl, std::size_t vector_pairs,
                        util::u64 seed) {
  util::Xoshiro256 rng(seed);
  const std::size_t n_in = nl.num_inputs();
  std::vector<bool> a(n_in), b(n_in);
  double total = 0.0;
  for (std::size_t p = 0; p < vector_pairs; ++p) {
    for (std::size_t i = 0; i < n_in; ++i) {
      a[i] = rng.below(2) != 0;
      b[i] = rng.below(2) != 0;
    }
    const auto va = nl.node_values(a);
    const auto vb = nl.node_values(b);
    // Toggle count weighted by the driving gate's capacitance proxy
    // (its area); inputs are free (driven externally).
    for (std::size_t i = 0; i < va.size(); ++i) {
      if (va[i] != vb[i]) total += 1.0;  // unit cap per toggling net
    }
  }
  return total / double(vector_pairs);
}

}  // namespace nga::hw
