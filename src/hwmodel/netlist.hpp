// Gate-level netlist model.
//
// Hardware claims in the paper (Fig. 4's regularized multiplier, Fig. 8's
// Yonemoto posit multiplier, the sign-magnitude vs two's-complement adder
// comparison, Table II's energy savings) are all backed by netlists built
// with this class: they are *evaluated exhaustively* against behavioural
// models in the test suite and *costed* with one shared NAND2-equivalent
// area / switching-energy model.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/bits.hpp"

namespace nga::hw {

using util::u64;

enum class GateOp : unsigned char {
  kInput,
  kConst0,
  kConst1,
  kNot,
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kXnor,
  kAndNot,  // a & ~b
  kMux,     // s ? b : a  (operands: a, b, s)
  kMaj,     // majority(a, b, c)
};

/// One gate; operands are indices of earlier gates (structural SSA form).
struct Gate {
  GateOp op = GateOp::kConst0;
  int a = -1;
  int b = -1;
  int c = -1;
};

struct CostReport {
  std::size_t gate_count = 0;      ///< all logic gates (excl. inputs/consts)
  double nand2_area = 0.0;         ///< NAND2-equivalent area
  int depth = 0;                   ///< longest input->output gate path
  std::size_t input_count = 0;
  std::size_t output_count = 0;
};

/// A combinational netlist in topological (construction) order.
///
/// Invariant: every operand index refers to a previously created node, so
/// a single forward pass evaluates the circuit.
class Netlist {
 public:
  int add_input(std::string name = {});
  int constant(bool value);

  int gate(GateOp op, int a, int b = -1, int c = -1);

  // Convenience builders ----------------------------------------------
  int not_(int a) { return gate(GateOp::kNot, a); }
  int and_(int a, int b) { return gate(GateOp::kAnd, a, b); }
  int or_(int a, int b) { return gate(GateOp::kOr, a, b); }
  int xor_(int a, int b) { return gate(GateOp::kXor, a, b); }
  int nand_(int a, int b) { return gate(GateOp::kNand, a, b); }
  int nor_(int a, int b) { return gate(GateOp::kNor, a, b); }
  int xnor_(int a, int b) { return gate(GateOp::kXnor, a, b); }
  int andnot_(int a, int b) { return gate(GateOp::kAndNot, a, b); }
  int mux(int a, int b, int s) { return gate(GateOp::kMux, a, b, s); }
  int maj(int a, int b, int c) { return gate(GateOp::kMaj, a, b, c); }

  struct SumCarry {
    int sum;
    int carry;
  };
  SumCarry half_adder(int a, int b);
  SumCarry full_adder(int a, int b, int cin);

  /// Ripple-carry adder over equal-width bit vectors; returns sum bits
  /// (width + 1 with carry-out when @p keep_carry_out).
  std::vector<int> ripple_add(std::span<const int> a, std::span<const int> b,
                              int cin = -1, bool keep_carry_out = true);

  /// Two's-complement negation of a bit vector (same width).
  std::vector<int> negate(std::span<const int> a);

  /// Exact unsigned array multiplier: wa x wb -> wa+wb product bits.
  std::vector<int> array_multiply(std::span<const int> a,
                                  std::span<const int> b);

  void mark_output(int id, std::string name = {});

  // Introspection ------------------------------------------------------
  std::size_t size() const { return gates_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  const std::vector<int>& outputs() const { return outputs_; }
  const std::vector<int>& inputs() const { return inputs_; }

  // Evaluation ---------------------------------------------------------
  /// Full evaluation; @p in has one bool per input in creation order.
  std::vector<bool> evaluate(const std::vector<bool>& in) const;

  /// Convenience for <= 64 inputs/outputs: bit i of @p in feeds input i,
  /// bit i of the result is output i.
  u64 eval_word(u64 in) const;

  /// Per-node values for a given stimulus (used by the energy model).
  std::vector<bool> node_values(const std::vector<bool>& in) const;

  // Costing --------------------------------------------------------------
  CostReport cost() const;

  /// NAND2-equivalent area of one gate type (shared by the energy model).
  static double gate_area(GateOp op);

 private:
  std::vector<Gate> gates_;
  std::vector<int> inputs_;
  std::vector<int> outputs_;
};

/// Average switching energy per operation, in NAND2-cap toggle units:
/// simulates consecutive random input vectors and accumulates
/// (toggles x gate capacitance). This is the energy proxy behind the
/// "Energy Saving %" column of Table II.
double switching_energy(const Netlist& nl, std::size_t vector_pairs,
                        util::u64 seed = 1);

}  // namespace nga::hw
