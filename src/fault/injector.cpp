#include "fault/injector.hpp"

#include <cmath>
#include <string>

namespace nga::fault {

namespace {

/// splitmix64 step — decorrelates the per-site streams from the seed.
u64 splitmix(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// rate in [0,1] -> 64-bit comparison threshold. rate >= 1 always
/// fires; tiny rates keep full 64-bit resolution.
u64 rate_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~u64{0};
  const double t = std::ldexp(rate, 64);
  return t >= 0x1p64 ? ~u64{0} : u64(t);
}

}  // namespace

Site site_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kSiteCount; ++i)
    if (site_name(Site(i)) == name) return Site(i);
  return Site::kCount;
}

Injector& Injector::instance() {
  static Injector inj;
  return inj;
}

Injector::Injector() {
  auto& reg = obs::MetricsRegistry::instance();
  injected_all_ = &reg.counter("fault.injected");
  masked_all_ = &reg.counter("fault.masked");
  detected_all_ = &reg.counter("fault.detected");
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const std::string base = "fault." + std::string(site_name(Site(i)));
    state_[i].injected_c = &reg.counter(base + ".injected");
    state_[i].masked_c = &reg.counter(base + ".masked");
    state_[i].detected_c = &reg.counter(base + ".detected");
  }
}

namespace {
// Per-thread detection tally for nga::serve batch attribution.
thread_local u64 tl_detected = 0;
}  // namespace

void Injector::arm(const FaultPlan& plan, u64 seed) {
  std::lock_guard<std::mutex> lk(m_);
  plan_ = plan;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    SiteState& st = state_[i];
    st.spec = plan.spec(Site(i));
    st.threshold = st.spec.enabled ? rate_threshold(st.spec.rate) : 0;
    // Site streams are independent of each other and of arm order.
    st.rng = util::Xoshiro256(splitmix(seed ^ splitmix(u64(i) + 1)));
    st.totals = {};
  }
  armed_.store(plan.any_enabled(), std::memory_order_relaxed);
}

void Injector::disarm() { armed_.store(false, std::memory_order_relaxed); }

FaultPlan Injector::plan() const {
  std::lock_guard<std::mutex> lk(m_);
  return plan_;
}

void Injector::reset_totals() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& st : state_) st.totals = {};
}

SiteTotals Injector::totals(Site site) const {
  std::lock_guard<std::mutex> lk(m_);
  return state_[std::size_t(site)].totals;
}

SiteTotals Injector::grand_totals() const {
  std::lock_guard<std::mutex> lk(m_);
  SiteTotals t;
  for (const auto& st : state_) {
    t.events += st.totals.events;
    t.injected += st.totals.injected;
    t.masked += st.totals.masked;
    t.detected += st.totals.detected;
  }
  return t;
}

u64 Injector::thread_detected() { return tl_detected; }

bool Injector::fire(SiteState& st) {
  ++st.totals.events;
  if (st.threshold == 0) return false;
  return st.rng() < st.threshold;
}

u64 Injector::corrupt(Site site, unsigned width, u64 bits) {
  std::lock_guard<std::mutex> lk(m_);
  SiteState& st = state_[std::size_t(site)];
  if (!st.spec.enabled || st.spec.model == Model::kOpSkip) return bits;
  if (!fire(st)) return bits;
  const u64 pick = u64{1} << st.rng.below(width);
  u64 out = bits;
  switch (st.spec.model) {
    case Model::kBitFlip:
      out ^= pick;
      break;
    case Model::kStuckAt0:
      out &= ~pick;
      break;
    case Model::kStuckAt1:
      out |= pick;
      break;
    case Model::kOpSkip:
      break;  // unreachable, screened above
  }
  ++st.totals.injected;
  injected_all_->inc();
  st.injected_c->inc();
  if (out == bits) {
    ++st.totals.masked;
    masked_all_->inc();
    st.masked_c->inc();
  }
  return out;
}

bool Injector::skip(Site site) {
  std::lock_guard<std::mutex> lk(m_);
  SiteState& st = state_[std::size_t(site)];
  if (!st.spec.enabled || st.spec.model != Model::kOpSkip) return false;
  if (!fire(st)) return false;
  ++st.totals.injected;
  injected_all_->inc();
  st.injected_c->inc();
  return true;
}

void Injector::note_detected(Site site) {
  ++tl_detected;
  std::lock_guard<std::mutex> lk(m_);
  SiteState& st = state_[std::size_t(site)];
  ++st.totals.detected;
  detected_all_->inc();
  st.detected_c->inc();
}

}  // namespace nga::fault
