#include "fault/injector.hpp"

#include <chrono>
#include <cmath>
#include <string>
#include <thread>

namespace nga::fault {

namespace {

/// splitmix64 step — decorrelates the per-site streams from the seed.
u64 splitmix(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// rate in [0,1] -> 64-bit comparison threshold. rate >= 1 always
/// fires; tiny rates keep full 64-bit resolution.
u64 rate_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~u64{0};
  const double t = std::ldexp(rate, 64);
  return t >= 0x1p64 ? ~u64{0} : u64(t);
}

}  // namespace

Site site_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kSiteCount; ++i)
    if (site_name(Site(i)) == name) return Site(i);
  return Site::kCount;
}

Injector& Injector::instance() {
  static Injector inj;
  return inj;
}

Injector::Injector() {
  auto& reg = obs::MetricsRegistry::instance();
  injected_all_ = &reg.counter("fault.injected");
  masked_all_ = &reg.counter("fault.masked");
  detected_all_ = &reg.counter("fault.detected");
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const std::string base = "fault." + std::string(site_name(Site(i)));
    state_[i].injected_c = &reg.counter(base + ".injected");
    state_[i].masked_c = &reg.counter(base + ".masked");
    state_[i].detected_c = &reg.counter(base + ".detected");
  }
}

namespace {
// Per-thread detection tally for nga::serve batch attribution.
thread_local u64 tl_detected = 0;

// Per-thread interrupt flag for injected delays (hang/latency models):
// registered by supervised serve workers so a watchdog cancellation
// cuts an in-flight stall short.
thread_local const std::atomic<bool>* tl_interrupt = nullptr;

// Sticky-victim thread identity: a process-unique tag per thread,
// assigned lazily on first use (thread ids recycle; tags don't).
std::atomic<u64> next_thread_tag{1};
u64 thread_tag() {
  thread_local u64 tag = next_thread_tag.fetch_add(1);
  return tag;
}

// Sleep ~ms at a time so an interrupt lands within a slice.
void interruptible_sleep(double ms, const std::atomic<bool>* interrupt) {
  using namespace std::chrono;
  const auto until = steady_clock::now() + duration<double, std::milli>(ms);
  while (steady_clock::now() < until) {
    if (interrupt && interrupt->load(std::memory_order_acquire)) return;
    const auto left =
        duration_cast<duration<double, std::milli>>(until - steady_clock::now());
    std::this_thread::sleep_for(
        left.count() > 1.0 ? milliseconds(1)
                           : duration_cast<nanoseconds>(left));
  }
}
}  // namespace

void Injector::set_thread_interrupt(const std::atomic<bool>* flag) {
  tl_interrupt = flag;
}

void Injector::arm(const FaultPlan& plan, u64 seed) {
  std::lock_guard<std::mutex> lk(m_);
  plan_ = plan;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    SiteState& st = state_[i];
    st.spec = plan.spec(Site(i));
    st.threshold = st.spec.enabled ? rate_threshold(st.spec.rate) : 0;
    st.sticky_threshold = st.spec.enabled && st.spec.sticky
                              ? rate_threshold(st.spec.sticky_rate)
                              : 0;
    st.victim_tag = 0;  // re-arming unlatches the sticky victim
    // Site streams are independent of each other and of arm order.
    st.rng = util::Xoshiro256(splitmix(seed ^ splitmix(u64(i) + 1)));
    st.totals = {};
    memflip_on_[i].store(st.spec.enabled && st.spec.model == Model::kMemFlip,
                         std::memory_order_relaxed);
    unsigned gate = 0;
    if (st.spec.enabled) {
      if (st.spec.model == Model::kOpSkip)
        gate = kGateSkip;
      else if (is_delay_model(st.spec.model))
        gate = kGateDelay;
      else if (st.spec.model != Model::kMemFlip)
        gate = kGateBits;
    }
    site_gate_[i].store(gate, std::memory_order_relaxed);
  }
  armed_.store(plan.any_enabled(), std::memory_order_relaxed);
}

void Injector::disarm() { armed_.store(false, std::memory_order_relaxed); }

FaultPlan Injector::plan() const {
  std::lock_guard<std::mutex> lk(m_);
  return plan_;
}

void Injector::reset_totals() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& st : state_) st.totals = {};
}

SiteTotals Injector::totals(Site site) const {
  std::lock_guard<std::mutex> lk(m_);
  return state_[std::size_t(site)].totals;
}

SiteTotals Injector::grand_totals() const {
  std::lock_guard<std::mutex> lk(m_);
  SiteTotals t;
  for (const auto& st : state_) {
    t.events += st.totals.events;
    t.injected += st.totals.injected;
    t.masked += st.totals.masked;
    t.detected += st.totals.detected;
  }
  return t;
}

u64 Injector::thread_detected() { return tl_detected; }

bool Injector::fire(SiteState& st) {
  ++st.totals.events;
  u64 threshold = st.threshold;
  if (st.spec.sticky) {
    // Latch the first thread to hit the armed site as the sticky
    // victim (in nga::serve: one persistently bad replica); the victim
    // fires at sticky_rate, everyone else at the base rate.
    const u64 tag = thread_tag();
    if (st.victim_tag == 0) st.victim_tag = tag;
    if (st.victim_tag == tag) threshold = st.sticky_threshold;
  }
  if (threshold == 0) return false;
  return st.rng() < threshold;
}

u64 Injector::corrupt(Site site, unsigned width, u64 bits) {
  std::lock_guard<std::mutex> lk(m_);
  SiteState& st = state_[std::size_t(site)];
  if (!st.spec.enabled || st.spec.model == Model::kOpSkip ||
      st.spec.model == Model::kMemFlip || is_delay_model(st.spec.model))
    return bits;
  if (!fire(st)) return bits;
  const u64 pick = u64{1} << st.rng.below(width);
  u64 out = bits;
  switch (st.spec.model) {
    case Model::kBitFlip:
      out ^= pick;
      break;
    case Model::kStuckAt0:
      out &= ~pick;
      break;
    case Model::kStuckAt1:
      out |= pick;
      break;
    case Model::kOpSkip:
    case Model::kHang:
    case Model::kLatency:
    case Model::kMemFlip:
      break;  // unreachable, screened above
  }
  ++st.totals.injected;
  injected_all_->inc();
  st.injected_c->inc();
  if (out == bits) {
    ++st.totals.masked;
    masked_all_->inc();
    st.masked_c->inc();
  }
  return out;
}

bool Injector::memflip_draw(Site site, std::size_t pages,
                            unsigned bits_per_page, std::size_t& page,
                            unsigned& bit) {
  std::lock_guard<std::mutex> lk(m_);
  SiteState& st = state_[std::size_t(site)];
  if (!st.spec.enabled || st.spec.model != Model::kMemFlip) return false;
  if (pages == 0 || bits_per_page == 0) return false;
  if (!fire(st)) return false;
  // Spec-pinned target (memflip(PAGE,BIT), a single stuck cell) or a
  // uniform draw per fire (scattered SEUs). Pinned coordinates wrap
  // into the target's real geometry so any plan fits any storage.
  page = st.spec.mem_page >= 0 ? std::size_t(st.spec.mem_page) % pages
                               : std::size_t(st.rng.below(pages));
  bit = st.spec.mem_bit >= 0 ? unsigned(st.spec.mem_bit) % bits_per_page
                             : unsigned(st.rng.below(bits_per_page));
  ++st.totals.injected;
  injected_all_->inc();
  st.injected_c->inc();
  return true;
}

bool Injector::skip(Site site) {
  std::lock_guard<std::mutex> lk(m_);
  SiteState& st = state_[std::size_t(site)];
  if (!st.spec.enabled || st.spec.model != Model::kOpSkip) return false;
  if (!fire(st)) return false;
  ++st.totals.injected;
  injected_all_->inc();
  st.injected_c->inc();
  return true;
}

void Injector::delay(Site site) {
  double stall_ms = 0.0;
  {
    std::lock_guard<std::mutex> lk(m_);
    SiteState& st = state_[std::size_t(site)];
    if (!st.spec.enabled || !is_delay_model(st.spec.model)) return;
    if (!fire(st)) return;
    stall_ms = st.spec.delay_ms;
    if (st.spec.model == Model::kLatency && st.spec.jitter_ms > 0.0) {
      // Uniform jitter in [-jitter, +jitter]; with_delay clamped
      // jitter <= delay, so the stall stays non-negative.
      const double u = double(st.rng() >> 11) * 0x1.0p-53;
      stall_ms += (2.0 * u - 1.0) * st.spec.jitter_ms;
    }
    ++st.totals.injected;
    injected_all_->inc();
    st.injected_c->inc();
  }
  // The stall happens OUTSIDE the injector mutex: other threads keep
  // injecting (and detecting) while this one is wedged, which is the
  // whole point of the hang model.
  if (stall_ms > 0.0) interruptible_sleep(stall_ms, tl_interrupt);
}

void Injector::note_detected(Site site) {
  ++tl_detected;
  std::lock_guard<std::mutex> lk(m_);
  SiteState& st = state_[std::size_t(site)];
  ++st.totals.detected;
  detected_all_->inc();
  st.detected_c->inc();
}

}  // namespace nga::fault
