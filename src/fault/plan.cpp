#include "fault/plan.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace nga::fault {

FaultPlan& FaultPlan::inject(Site site, Model model, double rate) {
  SiteSpec& s = specs_[std::size_t(site)];
  s.enabled = true;
  s.model = model;
  s.rate = std::clamp(rate, 0.0, 1.0);
  return *this;
}

FaultPlan& FaultPlan::with_delay(Site site, double delay_ms, double jitter_ms) {
  SiteSpec& s = specs_[std::size_t(site)];
  s.delay_ms = std::max(delay_ms, 0.0);
  s.jitter_ms = std::clamp(jitter_ms, 0.0, s.delay_ms);
  return *this;
}

FaultPlan& FaultPlan::with_sticky(Site site, double sticky_rate) {
  SiteSpec& s = specs_[std::size_t(site)];
  s.sticky = true;
  s.sticky_rate = std::clamp(sticky_rate, 0.0, 1.0);
  return *this;
}

FaultPlan& FaultPlan::with_memflip_target(Site site, int page, int bit) {
  SiteSpec& s = specs_[std::size_t(site)];
  if (page < 0 || bit < 0) page = bit = -1;
  s.mem_page = page;
  s.mem_bit = bit;
  return *this;
}

bool FaultPlan::any_enabled() const {
  for (const auto& s : specs_)
    if (s.enabled && (s.rate > 0.0 || (s.sticky && s.sticky_rate > 0.0)))
      return true;
  return false;
}

namespace {

// %g keeps the token short and from_chars-parseable (round-trip).
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string FaultPlan::describe() const {
  std::string out;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const SiteSpec& s = specs_[i];
    if (!s.enabled) continue;
    if (!out.empty()) out += ',';
    out += std::string(site_name(Site(i))) + ':' +
           std::string(model_name(s.model));
    if (is_delay_model(s.model)) {
      out += '(' + num(s.delay_ms);
      if (s.model == Model::kLatency && s.jitter_ms > 0.0)
        out += ',' + num(s.jitter_ms);
      out += ')';
    } else if (s.model == Model::kMemFlip && s.mem_page >= 0) {
      out += '(' + std::to_string(s.mem_page) + ',' +
             std::to_string(s.mem_bit) + ')';
    }
    out += ':' + num(s.rate);
    if (s.sticky) out += ":sticky:" + num(s.sticky_rate);
  }
  return out.empty() ? "(no faults)" : out;
}

namespace {

bool parse_number(std::string_view s, double& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

bool parse_int(std::string_view s, int& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

// Parse a model token: a bare name, name(MS[,JITTER]) for the delay
// models, or memflip[(PAGE,BIT)].
bool parse_model(std::string_view token, Model& out, double& delay_ms,
                 double& jitter_ms, int& mem_page, int& mem_bit) {
  delay_ms = jitter_ms = 0.0;
  mem_page = mem_bit = -1;
  std::string_view name = token;
  std::string_view args;
  const std::size_t open = token.find('(');
  if (open != std::string_view::npos) {
    if (token.back() != ')') return false;
    name = token.substr(0, open);
    args = token.substr(open + 1, token.size() - open - 2);
  }
  bool found = false;
  for (const Model m : {Model::kBitFlip, Model::kStuckAt0, Model::kStuckAt1,
                        Model::kOpSkip, Model::kHang, Model::kLatency,
                        Model::kMemFlip}) {
    if (model_name(m) == name) {
      out = m;
      found = true;
      break;
    }
  }
  if (!found) return false;
  if (out == Model::kMemFlip) {
    // Bare memflip draws a random page/bit per fire; memflip(PAGE,BIT)
    // pins the target. Exactly zero or two args.
    if (open == std::string_view::npos) return true;
    const std::size_t comma = args.find(',');
    if (comma == std::string_view::npos) return false;
    return parse_int(args.substr(0, comma), mem_page) && mem_page >= 0 &&
           parse_int(args.substr(comma + 1), mem_bit) && mem_bit >= 0;
  }
  if (!is_delay_model(out)) return open == std::string_view::npos;
  // hang/latency REQUIRE a duration argument.
  if (open == std::string_view::npos || args.empty()) return false;
  const std::size_t comma = args.find(',');
  if (comma == std::string_view::npos) {
    if (!parse_number(args, delay_ms) || delay_ms < 0.0) return false;
  } else {
    if (out != Model::kLatency) return false;  // hang takes one arg
    if (!parse_number(args.substr(0, comma), delay_ms) || delay_ms < 0.0)
      return false;
    if (!parse_number(args.substr(comma + 1), jitter_ms) || jitter_ms < 0.0)
      return false;
  }
  return true;
}

bool set_error(std::string* error, std::string_view spec, const char* msg) {
  if (error) *error = std::string(msg) + " in fault spec '" +
                      std::string(spec) + "'";
  return false;
}

// Next top-level item boundary: a comma not inside parentheses (the
// latency(MS,JITTER) token owns its inner comma).
std::size_t find_item_end(std::string_view s) {
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')' && depth > 0) --depth;
    else if (s[i] == ',' && depth == 0) return i;
  }
  return std::string_view::npos;
}

}  // namespace

bool FaultPlan::parse(std::string_view spec, FaultPlan& out,
                      std::string* error) {
  out = FaultPlan{};
  // describe() of an empty plan — accepted so parse(describe(p)) holds
  // for EVERY plan, not just non-empty ones (found by fuzz_fault_plan).
  if (spec == "(no faults)") return true;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = find_item_end(rest);
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    // Split the item on ':' outside parentheses: site, model, rate,
    // then an optional sticky suffix.
    std::string_view fields[5];
    std::size_t nfields = 0;
    {
      std::string_view it = item;
      int depth = 0;
      std::size_t start = 0;
      for (std::size_t i = 0; i <= it.size(); ++i) {
        if (i < it.size() && it[i] == '(') ++depth;
        else if (i < it.size() && it[i] == ')' && depth > 0) --depth;
        else if (i == it.size() || (it[i] == ':' && depth == 0)) {
          if (nfields >= 5)
            return set_error(error, item, "too many fields");
          fields[nfields++] = it.substr(start, i - start);
          start = i + 1;
        }
      }
    }
    if (nfields != 3 && nfields != 5)
      return set_error(error, item,
                       "expected site:model:rate[:sticky:rate]");
    const Site site = site_from_name(fields[0]);
    if (site == Site::kCount) return set_error(error, item, "unknown site");
    Model model{};
    double delay_ms = 0.0, jitter_ms = 0.0;
    int mem_page = -1, mem_bit = -1;
    if (!parse_model(fields[1], model, delay_ms, jitter_ms, mem_page,
                     mem_bit))
      return set_error(error, item, "unknown model");
    double rate = 0.0;
    if (!parse_number(fields[2], rate) || !(rate >= 0.0) || rate > 1.0)
      return set_error(error, item, "bad rate (want [0,1])");
    out.inject(site, model, rate);
    if (is_delay_model(model)) out.with_delay(site, delay_ms, jitter_ms);
    if (model == Model::kMemFlip && mem_page >= 0)
      out.with_memflip_target(site, mem_page, mem_bit);
    if (nfields == 5) {
      if (fields[3] != "sticky")
        return set_error(error, item, "expected ':sticky:<rate>' suffix");
      double srate = 0.0;
      if (!parse_number(fields[4], srate) || !(srate >= 0.0) || srate > 1.0)
        return set_error(error, item, "bad sticky rate (want [0,1])");
      out.with_sticky(site, srate);
    }
  }
  return true;
}

}  // namespace nga::fault
