#include "fault/plan.hpp"

#include <algorithm>
#include <charconv>

namespace nga::fault {

FaultPlan& FaultPlan::inject(Site site, Model model, double rate) {
  SiteSpec& s = specs_[std::size_t(site)];
  s.enabled = true;
  s.model = model;
  s.rate = std::clamp(rate, 0.0, 1.0);
  return *this;
}

bool FaultPlan::any_enabled() const {
  for (const auto& s : specs_)
    if (s.enabled && s.rate > 0.0) return true;
  return false;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const SiteSpec& s = specs_[i];
    if (!s.enabled) continue;
    if (!out.empty()) out += ',';
    out += std::string(site_name(Site(i))) + ':' +
           std::string(model_name(s.model)) + ':' + std::to_string(s.rate);
  }
  return out.empty() ? "(no faults)" : out;
}

namespace {

bool parse_model(std::string_view name, Model& out) {
  for (const Model m : {Model::kBitFlip, Model::kStuckAt0, Model::kStuckAt1,
                        Model::kOpSkip}) {
    if (model_name(m) == name) {
      out = m;
      return true;
    }
  }
  return false;
}

bool set_error(std::string* error, std::string_view spec, const char* msg) {
  if (error) *error = std::string(msg) + " in fault spec '" +
                      std::string(spec) + "'";
  return false;
}

}  // namespace

bool FaultPlan::parse(std::string_view spec, FaultPlan& out,
                      std::string* error) {
  out = FaultPlan{};
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t c1 = item.find(':');
    const std::size_t c2 =
        c1 == std::string_view::npos ? c1 : item.find(':', c1 + 1);
    if (c2 == std::string_view::npos)
      return set_error(error, item, "expected site:model:rate");
    const Site site = site_from_name(item.substr(0, c1));
    if (site == Site::kCount) return set_error(error, item, "unknown site");
    Model model{};
    if (!parse_model(item.substr(c1 + 1, c2 - c1 - 1), model))
      return set_error(error, item, "unknown model");
    const std::string_view rate_s = item.substr(c2 + 1);
    double rate = 0.0;
    const auto [p, ec] =
        std::from_chars(rate_s.data(), rate_s.data() + rate_s.size(), rate);
    if (ec != std::errc{} || p != rate_s.data() + rate_s.size() ||
        !(rate >= 0.0) || rate > 1.0)
      return set_error(error, item, "bad rate (want [0,1])");
    out.inject(site, model, rate);
  }
  return true;
}

}  // namespace nga::fault
