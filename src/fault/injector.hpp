// The process-wide fault injector.
//
// Disarmed (the default) the hot-path entry points reduce to one
// relaxed bool load and the NGA_FAULT_* macros that call them compile
// out entirely when the NGA_FAULT build option is OFF — instrumented
// kernels pay nothing in production builds.
//
// Armed, each enabled site runs an independent Bernoulli stream:
//   fire  <=>  rng_site() < rate * 2^64
// with rng_site seeded from splitmix64(seed, site). The sequence of
// (fire, corrupted-bit) decisions at a site is therefore a pure
// function of (seed, plan, number of events seen at that site) — the
// determinism contract tests/fault/ pins down.
//
// Arming, disarming, and injection are intended for the single-threaded
// experiment binaries; concurrent arm()/hot-path use is not supported
// (counters would stay correct, sequences would not be reproducible).
#pragma once

#include <array>

#include "fault/plan.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace nga::fault {

/// Running totals, kept by the injector itself (independent of the
/// NGA_OBS build setting) and mirrored into obs counters.
struct SiteTotals {
  u64 events = 0;    ///< filter calls seen while armed
  u64 injected = 0;  ///< faults that fired
  u64 masked = 0;    ///< fired but left the value unchanged (stuck-at hit)
  u64 detected = 0;  ///< flagged by a downstream detector
};

class Injector {
 public:
  static Injector& instance();

  /// Install @p plan and reset all site streams/totals. Deterministic:
  /// same (plan, seed) => same fault sequence.
  void arm(const FaultPlan& plan, u64 seed);
  void disarm();
  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Hot-path bits filter: possibly corrupt the low @p width bits of
  /// @p bits. Identity while disarmed or when the site is not enabled.
  u64 filter_bits(Site site, unsigned width, u64 bits) {
    if (!armed_) return bits;
    return corrupt(site, width, bits);
  }

  /// Hot-path op filter: true => the caller should drop the operation.
  bool filter_skip(Site site) {
    if (!armed_) return false;
    return skip(site);
  }

  /// Downstream detectors (range guards, NaR screens) report here.
  void note_detected(Site site);

  const SiteTotals& totals(Site site) const {
    return state_[std::size_t(site)].totals;
  }
  SiteTotals grand_totals() const;
  /// Zero totals without touching the RNG streams.
  void reset_totals();

 private:
  Injector();

  struct SiteState {
    SiteSpec spec;
    u64 threshold = 0;  ///< fire when rng() < threshold
    util::Xoshiro256 rng;
    SiteTotals totals;
    // Cached obs counters (registry references are stable forever).
    obs::Counter* injected_c = nullptr;
    obs::Counter* masked_c = nullptr;
    obs::Counter* detected_c = nullptr;
  };

  u64 corrupt(Site site, unsigned width, u64 bits);
  bool skip(Site site);
  bool fire(SiteState& st);

  std::array<SiteState, kSiteCount> state_;
  FaultPlan plan_;
  bool armed_ = false;
  // Aggregates across sites, also cached.
  obs::Counter* injected_all_ = nullptr;
  obs::Counter* masked_all_ = nullptr;
  obs::Counter* detected_all_ = nullptr;
};

}  // namespace nga::fault
