// The process-wide fault injector.
//
// Disarmed (the default) the hot-path entry points reduce to one
// relaxed bool load and the NGA_FAULT_* macros that call them compile
// out entirely when the NGA_FAULT build option is OFF — instrumented
// kernels pay nothing in production builds.
//
// Armed, each enabled site runs an independent Bernoulli stream:
//   fire  <=>  rng_site() < rate * 2^64
// with rng_site seeded from splitmix64(seed, site). The sequence of
// (fire, corrupted-bit) decisions at a site is therefore a pure
// function of (seed, plan, number of events seen at that site) — the
// determinism contract tests/fault/ pins down.
//
// Thread-safety contract (nga::serve workers inject concurrently):
//   * the disarmed fast path is one relaxed atomic bool load;
//   * the armed path (RNG draw + totals) runs under one injector mutex,
//     so counters are exact and each site's (fire, bit) stream is still
//     the deterministic function of (seed, plan, events-seen-at-site) —
//     but WHICH thread observes the k-th draw depends on scheduling.
//     Single-threaded runs keep full bit-for-bit reproducibility; the
//     multi-threaded guarantee is aggregate (totals, rates), and
//     per-thread attribution comes from thread_detected() below.
//   * arm()/disarm() may race hot-path calls: a call observes either
//     the old or the new plan, never a torn one.
#pragma once

#include <array>
#include <atomic>
#include <mutex>

#include "fault/plan.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace nga::fault {

/// Running totals, kept by the injector itself (independent of the
/// NGA_OBS build setting) and mirrored into obs counters.
struct SiteTotals {
  u64 events = 0;    ///< filter calls seen while armed
  u64 injected = 0;  ///< faults that fired
  u64 masked = 0;    ///< fired but left the value unchanged (stuck-at hit)
  u64 detected = 0;  ///< flagged by a downstream detector
};

class Injector {
 public:
  static Injector& instance();

  /// Install @p plan and reset all site streams/totals. Deterministic:
  /// same (plan, seed) => same fault sequence.
  void arm(const FaultPlan& plan, u64 seed);
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  FaultPlan plan() const;

  /// Hot-path bits filter: possibly corrupt the low @p width bits of
  /// @p bits. Identity while disarmed or when the site is not enabled.
  /// Like filter_memflip, each filter screens its site through a
  /// lock-free gate first: a plan that arms SOME sites must not make
  /// every other instrumented site pay the injector mutex — nn.mul
  /// runs once per MAC, and a per-MAC lock collapses serving
  /// throughput for every worker in the process.
  u64 filter_bits(Site site, unsigned width, u64 bits) {
    if (!armed()) return bits;
    if (!gate_open(site, kGateBits)) return bits;
    return corrupt(site, width, bits);
  }

  /// Hot-path op filter: true => the caller should drop the operation.
  bool filter_skip(Site site) {
    if (!armed()) return false;
    if (!gate_open(site, kGateSkip)) return false;
    return skip(site);
  }

  /// Hot-path persistent-corruption filter (Model::kMemFlip): when the
  /// armed site fires, flip one bit of the caller's backing storage —
  /// the flip is PERSISTENT (it lives in the storage, not the value
  /// stream) until an integrity scrub repairs the page. Duck-typed so
  /// the fault layer needs no dependency on the storage owner (nn):
  /// Storage provides flip_pages(), flip_bits_per_page(), and
  /// flip_bit(page, bit) const — nn::MulTable is the canonical target.
  /// The (fire, page, bit) stream is drawn under the injector mutex
  /// like every other model; the flip itself is one atomic xor.
  /// The disarmed/off-model fast path is two relaxed loads — a site
  /// armed with some OTHER model (the common chaos case) must not pay
  /// the injector mutex here on top of its own filter's.
  template <class Storage>
  void filter_memflip(Site site, const Storage& storage) {
    if (!armed()) return;
    if (!memflip_on_[std::size_t(site)].load(std::memory_order_relaxed))
      return;
    std::size_t page = 0;
    unsigned bit = 0;
    if (memflip_draw(site, storage.flip_pages(),
                     storage.flip_bits_per_page(), page, bit))
      storage.flip_bit(page, bit);
  }

  /// The locked half of filter_memflip: fire decision + target draw
  /// (spec-pinned or uniform). Exposed for tests pinning determinism.
  bool memflip_draw(Site site, std::size_t pages, unsigned bits_per_page,
                    std::size_t& page, unsigned& bit);

  /// Hot-path timing filter: possibly stall the calling thread (a site
  /// armed with a hang/latency model). The fire decision and duration
  /// are drawn under the injector mutex; the stall itself sleeps
  /// OUTSIDE it, in ~1 ms slices, and aborts early when the calling
  /// thread's registered interrupt flag (set_thread_interrupt) goes
  /// true — a hung worker wakes the moment its watchdog cancels it.
  void filter_delay(Site site) {
    if (!armed()) return;
    if (!gate_open(site, kGateDelay)) return;
    delay(site);
  }

  /// Register an interrupt flag for the CALLING thread's injected
  /// delays (nullptr to clear). The pointee must outlive the
  /// registration; nga::serve workers register their cancellation
  /// token for their own lifetime.
  static void set_thread_interrupt(const std::atomic<bool>* flag);

  /// Downstream detectors (range guards, NaR screens) report here.
  void note_detected(Site site);

  /// Detections reported BY THE CALLING THREAD since process start —
  /// monotone, lock-free, and unaffected by other threads. A serve
  /// worker brackets a batch with two reads to attribute detections to
  /// the work it ran itself (the global totals interleave all workers).
  static u64 thread_detected();

  SiteTotals totals(Site site) const;
  SiteTotals grand_totals() const;
  /// Zero totals without touching the RNG streams.
  void reset_totals();

 private:
  Injector();

  // One bit per filter family; a site's gate opens only for the family
  // its armed model belongs to (kMemFlip keeps its dedicated flag).
  enum : unsigned { kGateBits = 1u, kGateSkip = 2u, kGateDelay = 4u };
  bool gate_open(Site site, unsigned family) const {
    return (site_gate_[std::size_t(site)].load(std::memory_order_relaxed) &
            family) != 0;
  }

  struct SiteState {
    SiteSpec spec;
    u64 threshold = 0;         ///< fire when rng() < threshold
    u64 sticky_threshold = 0;  ///< the victim thread's threshold
    u64 victim_tag = 0;        ///< sticky victim thread tag (0 = unlatched)
    util::Xoshiro256 rng;
    SiteTotals totals;
    // Cached obs counters (registry references are stable forever).
    obs::Counter* injected_c = nullptr;
    obs::Counter* masked_c = nullptr;
    obs::Counter* detected_c = nullptr;
  };

  u64 corrupt(Site site, unsigned width, u64 bits);
  bool skip(Site site);
  void delay(Site site);
  bool fire(SiteState& st);

  // Guards site state, totals, and the plan on the armed path; the
  // disarmed path never takes it.
  mutable std::mutex m_;
  std::array<SiteState, kSiteCount> state_;
  FaultPlan plan_;
  std::atomic<bool> armed_{false};
  /// Per-site "armed with kMemFlip" flags, mirrored from the plan in
  /// arm(): the memflip filter's lock-free gate (see filter_memflip).
  std::array<std::atomic<bool>, kSiteCount> memflip_on_{};
  /// Per-site filter-family gates (kGate* bits), mirrored from the
  /// plan in arm() like memflip_on_: sites the plan leaves disabled —
  /// or armed with a model some other filter handles — early-out
  /// before the mutex. Near an arm() race a call may consult a gate
  /// from the adjacent plan; the locked screen re-checks, so the only
  /// effect is one filter call counted against old-plan semantics —
  /// the same contract arm() already documents.
  std::array<std::atomic<unsigned>, kSiteCount> site_gate_{};
  // Aggregates across sites, also cached.
  obs::Counter* injected_all_ = nullptr;
  obs::Counter* masked_all_ = nullptr;
  obs::Counter* detected_all_ = nullptr;
};

}  // namespace nga::fault
