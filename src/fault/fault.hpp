// nga::fault — umbrella header and the NGA_FAULT injection macros.
//
// Mirrors the nga::obs design (obs/obs.hpp): the *classes* (FaultPlan,
// Injector) are plain library code and always available — tests and the
// fault_sweep bench drive them directly. Only the hot-path hooks below
// are guarded by the NGA_FAULT build option:
//
//   NGA_FAULT=1  each hook costs one relaxed bool load while the
//                injector is disarmed; corruption happens only when an
//                armed plan enables the site.
//   NGA_FAULT=0  (default) every hook is the identity / a constant —
//                instrumented kernels compile exactly as before.
//
// Hook vocabulary:
//   NGA_FAULT_BITS(site, width, x)  value filter: yields x, possibly
//                                   with one of its low `width` bits
//                                   corrupted. An expression.
//   NGA_FAULT_SKIP(site)            op filter: true => drop the op.
//   NGA_FAULT_MEMFLIP(site, st)     storage filter: possibly flip one
//                                   bit of `st`'s PERSISTENT backing
//                                   pages (memflip model; stays flipped
//                                   until an integrity scrub repairs
//                                   it). `st` is a duck-typed flip
//                                   target — see Injector::
//                                   filter_memflip.
//   NGA_FAULT_DELAY(site)           timing filter: possibly stall the
//                                   calling thread (hang/latency
//                                   models; interruptible — see
//                                   Injector::set_thread_interrupt).
//   NGA_FAULT_DETECT(site, cond)    detector: report a downstream
//                                   plausibility check that fired.
//   NGA_FAULT_ACTIVE()              false constant when compiled out;
//                                   guards blocks of fault-only code.
#pragma once

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/sites.hpp"

#ifndef NGA_FAULT
#define NGA_FAULT 0
#endif

#if NGA_FAULT

#define NGA_FAULT_BITS(site, width, x) \
  (::nga::fault::Injector::instance().filter_bits((site), (width), (x)))

#define NGA_FAULT_SKIP(site) \
  (::nga::fault::Injector::instance().filter_skip((site)))

#define NGA_FAULT_MEMFLIP(site, storage) \
  (::nga::fault::Injector::instance().filter_memflip((site), (storage)))

#define NGA_FAULT_DELAY(site) \
  (::nga::fault::Injector::instance().filter_delay((site)))

#define NGA_FAULT_DETECT(site, cond)                           \
  do {                                                         \
    if (cond) ::nga::fault::Injector::instance().note_detected(site); \
  } while (0)

#define NGA_FAULT_ACTIVE() (::nga::fault::Injector::instance().armed())

#else  // !NGA_FAULT — hooks vanish; kernels compile as if uninstrumented.

#define NGA_FAULT_BITS(site, width, x) (x)
#define NGA_FAULT_SKIP(site) (false)
#define NGA_FAULT_MEMFLIP(site, storage) ((void)0)
#define NGA_FAULT_DELAY(site) ((void)0)
#define NGA_FAULT_DETECT(site, cond) ((void)0)
#define NGA_FAULT_ACTIVE() (false)

#endif  // NGA_FAULT
