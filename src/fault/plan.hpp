// FaultPlan: the value-semantic description of WHAT to inject WHERE.
//
// A plan maps each site to a fault model and a per-event rate. Arming
// the Injector with a plan plus a seed fully determines the fault
// sequence: each site draws from its own splitmix-derived RNG stream,
// so the faults seen at one site depend only on that site's event
// count, never on how events from different sites interleave.
#pragma once

#include <string>
#include <string_view>

#include "fault/sites.hpp"
#include "util/bits.hpp"

namespace nga::fault {

using util::u64;

/// How a firing fault corrupts the value — or the timing — at a site.
enum class Model : unsigned {
  kBitFlip,   ///< XOR one uniformly chosen bit of the value
  kStuckAt0,  ///< clear one uniformly chosen bit (masked if already 0)
  kStuckAt1,  ///< set one uniformly chosen bit (masked if already 1)
  kOpSkip,    ///< drop the operation (only meaningful at skip sites)
  kHang,      ///< stall the op for delay_ms (a wedged unit; interruptible)
  kLatency,   ///< stall for delay_ms +/- jitter_ms (a slow unit)
  kMemFlip,   ///< flip one bit of PERSISTENT backing storage (a LUT page);
              ///< stays flipped until a scrubber repairs it — SEU/bit-rot,
              ///< where bitflip above is a transient datapath glitch
};

constexpr std::string_view model_name(Model m) {
  switch (m) {
    case Model::kBitFlip:
      return "bitflip";
    case Model::kStuckAt0:
      return "stuck0";
    case Model::kStuckAt1:
      return "stuck1";
    case Model::kOpSkip:
      return "opskip";
    case Model::kHang:
      return "hang";
    case Model::kLatency:
      return "latency";
    case Model::kMemFlip:
      return "memflip";
  }
  return "?";
}

constexpr bool is_delay_model(Model m) {
  return m == Model::kHang || m == Model::kLatency;
}

/// Per-site fault configuration. rate is the Bernoulli probability per
/// event (per decode, per MAC, per dot, per sample ...), in [0, 1].
///
/// Sticky mode models ONE persistently bad unit among many: the first
/// thread to hit the armed site is latched as the victim and fires at
/// sticky_rate; every other thread keeps the base rate. In nga::serve,
/// where each worker thread owns one model replica, that is exactly
/// "one sticky-bad replica".
struct SiteSpec {
  bool enabled = false;
  Model model = Model::kBitFlip;
  double rate = 0.0;
  double delay_ms = 0.0;   ///< delay models: stall duration
  double jitter_ms = 0.0;  ///< kLatency: uniform +/- jitter on the stall
  bool sticky = false;
  double sticky_rate = 0.0;  ///< victim thread's rate when sticky
  // kMemFlip target: -1 (the default) draws a fresh page/bit per fire;
  // >= 0 pins every fire to the same location ("memflip(page,bit)" —
  // a single stuck cell). Both set or both -1, never mixed.
  int mem_page = -1;
  int mem_bit = -1;
};

class FaultPlan {
 public:
  /// Enable @p site with @p model at @p rate (clamped to [0,1]).
  FaultPlan& inject(Site site, Model model, double rate);

  /// Set the stall parameters of a delay-model site (negative values
  /// clamp to 0; jitter clamps to delay so stalls stay non-negative).
  FaultPlan& with_delay(Site site, double delay_ms, double jitter_ms = 0.0);

  /// Make @p site sticky: the first thread to hit it becomes the
  /// victim and fires at @p sticky_rate (clamped to [0,1]) instead of
  /// the base rate.
  FaultPlan& with_sticky(Site site, double sticky_rate);

  /// Pin a kMemFlip site to one storage location. Either value < 0
  /// resets BOTH to -1 (random page/bit per fire), keeping specs
  /// round-trippable through describe()/parse().
  FaultPlan& with_memflip_target(Site site, int page, int bit);

  const SiteSpec& spec(Site site) const {
    return specs_[std::size_t(site)];
  }
  bool any_enabled() const;

  /// Round-trippable one-liner, e.g.
  ///   "nn.mul:bitflip:0.001:sticky:0.35,nn.exec:hang(1200):0.03"
  /// (parse(describe()) reproduces the plan).
  std::string describe() const;

  /// Parse a describe()-shaped spec: comma-separated items
  ///   site:model:rate[:sticky:<rate>]
  /// where model is bitflip|stuck0|stuck1|opskip|hang(MS)|latency(MS)
  /// |latency(MS,JITTER)|memflip|memflip(PAGE,BIT). Top-level commas
  /// inside parentheses belong to the model token, not the item
  /// separator. Returns false and fills @p error on a malformed spec,
  /// unknown site, or unknown model.
  static bool parse(std::string_view spec, FaultPlan& out,
                    std::string* error = nullptr);

 private:
  SiteSpec specs_[kSiteCount]{};
};

}  // namespace nga::fault
