// FaultPlan: the value-semantic description of WHAT to inject WHERE.
//
// A plan maps each site to a fault model and a per-event rate. Arming
// the Injector with a plan plus a seed fully determines the fault
// sequence: each site draws from its own splitmix-derived RNG stream,
// so the faults seen at one site depend only on that site's event
// count, never on how events from different sites interleave.
#pragma once

#include <string>
#include <string_view>

#include "fault/sites.hpp"
#include "util/bits.hpp"

namespace nga::fault {

using util::u64;

/// How a firing fault corrupts the value at a site.
enum class Model : unsigned {
  kBitFlip,   ///< XOR one uniformly chosen bit of the value
  kStuckAt0,  ///< clear one uniformly chosen bit (masked if already 0)
  kStuckAt1,  ///< set one uniformly chosen bit (masked if already 1)
  kOpSkip,    ///< drop the operation (only meaningful at skip sites)
};

constexpr std::string_view model_name(Model m) {
  switch (m) {
    case Model::kBitFlip:
      return "bitflip";
    case Model::kStuckAt0:
      return "stuck0";
    case Model::kStuckAt1:
      return "stuck1";
    case Model::kOpSkip:
      return "opskip";
  }
  return "?";
}

/// Per-site fault configuration. rate is the Bernoulli probability per
/// event (per decode, per MAC, per dot, ...), in [0, 1].
struct SiteSpec {
  bool enabled = false;
  Model model = Model::kBitFlip;
  double rate = 0.0;
};

class FaultPlan {
 public:
  /// Enable @p site with @p model at @p rate (clamped to [0,1]).
  FaultPlan& inject(Site site, Model model, double rate);

  const SiteSpec& spec(Site site) const {
    return specs_[std::size_t(site)];
  }
  bool any_enabled() const;

  /// Human-readable one-liner: "nn.mul:bitflip:0.001,quire.accumulate:..."
  std::string describe() const;

  /// Parse a describe()-shaped spec: comma-separated
  /// `site:model:rate` triples. Returns false and fills @p error on a
  /// malformed spec, unknown site, or unknown model.
  static bool parse(std::string_view spec, FaultPlan& out,
                    std::string* error = nullptr);

 private:
  SiteSpec specs_[kSiteCount]{};
};

}  // namespace nga::fault
