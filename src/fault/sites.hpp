// Fault-injection site registry.
//
// A site is one named point in an arithmetic datapath where the
// injector may corrupt data in flight. The five datapaths of the
// library (Sections IV and V of the paper) each expose one site, plus
// one exec-level timing site (nn.exec, fired once per sample) for the
// hang/latency delay models; the set is a closed enum so per-site
// state lives in a flat array and the hot-path lookup is an index, not
// a map walk.
#pragma once

#include <cstddef>
#include <string_view>

namespace nga::fault {

enum class Site : unsigned {
  kPositDecode = 0,   ///< posit::unpack — raw encoding read from storage
  kPositEncode,       ///< posit::round_pack — encoding written to storage
  kQuireAccumulate,   ///< quire::fused — one exact product accumulation
  kSoftfloatPack,     ///< floatmp::pack — packed IEEE encoding
  kNnMul,             ///< MulTable::mul — approximate-multiplier product
  kBitheapCompress,   ///< BitHeap::compress — a partial-product dot
  kNnExec,            ///< Model::forward_batch — once per sample (timing site)
  kCount
};

inline constexpr std::size_t kSiteCount = std::size_t(Site::kCount);

constexpr std::string_view site_name(Site s) {
  switch (s) {
    case Site::kPositDecode:
      return "posit.decode";
    case Site::kPositEncode:
      return "posit.encode";
    case Site::kQuireAccumulate:
      return "quire.accumulate";
    case Site::kSoftfloatPack:
      return "softfloat.pack";
    case Site::kNnMul:
      return "nn.mul";
    case Site::kBitheapCompress:
      return "bitheap.compress";
    case Site::kNnExec:
      return "nn.exec";
    case Site::kCount:
      break;
  }
  return "?";
}

/// Inverse of site_name(); returns kCount for an unknown name.
Site site_from_name(std::string_view name);

}  // namespace nga::fault
