// Token-bucket retry budget: retries may only spend capacity that
// recent successes have earned.
//
// The decorrelated-jitter retry path used to retry unconditionally on
// transient detections. Under overload that is an amplifier: every
// failed batch re-executes, the re-execution steals capacity from
// fresh requests, more requests miss their deadline, more retries
// fire — a retry storm that multiplies effective queue depth exactly
// when the server can least afford it. The classic fix (SRE lore and
// AWS's "retry budgets") is to cap retries at a fraction of recent
// successes: each success deposits `tokens_per_success` into a bucket
// capped at `burst`; each retry withdraws one token. When the bucket
// is dry the retry is refused and the request fails fast with
// RetriesExhausted — at that point the server is doing no useful work,
// and retrying harder is the problem, not the cure.
//
// The bucket starts at `burst` so isolated transient faults on a cold
// or lightly-loaded server still get their retries; only a sustained
// failure rate (many retries, few successes) drains it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>

namespace nga::serve {

struct RetryBudgetConfig {
  bool enabled = true;
  /// Tokens earned per successfully served request. 0.1 means steady
  /// state allows one retry per ten successes — enough for transient
  /// blips, far too little to sustain a storm.
  double tokens_per_success = 0.1;
  /// Bucket capacity, and the initial fill: the burst of retries
  /// allowed before any success history exists.
  double burst = 16.0;
};

class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetConfig cfg)
      : cfg_(cfg), tokens_(cfg.burst) {}

  /// Spend one token for a retry attempt. False = budget exhausted;
  /// the caller must fail fast instead of retrying.
  bool try_spend() {
    if (!cfg_.enabled) return true;
    std::lock_guard<std::mutex> lk(m_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// @p n requests were served: deposit the earned fraction.
  void on_success(std::size_t n = 1) {
    if (!cfg_.enabled) return;
    std::lock_guard<std::mutex> lk(m_);
    tokens_ = std::min(cfg_.burst,
                       tokens_ + double(n) * cfg_.tokens_per_success);
  }

  double tokens() const {
    std::lock_guard<std::mutex> lk(m_);
    return tokens_;
  }

 private:
  const RetryBudgetConfig cfg_;
  mutable std::mutex m_;
  double tokens_;
};

}  // namespace nga::serve
