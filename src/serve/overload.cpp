#include "serve/overload.hpp"

#include <string>
#include <vector>

#include "obs/export.hpp"

namespace nga::serve {

namespace {

struct TierCounters {
  obs::Counter* requests = nullptr;
  obs::Counter* batches = nullptr;
};

// Node-stable per-tier counter cache (tier index -> registry refs).
// Guarded by OverloadTelemetry::m_; grows, never shrinks.
std::vector<TierCounters>& tier_counters() {
  static std::vector<TierCounters> v;
  return v;
}

TierCounters& tier_at(int tier) {
  auto& v = tier_counters();
  while (int(v.size()) <= tier) {
    const int k = int(v.size());
    auto& reg = obs::MetricsRegistry::instance();
    TierCounters tc;
    tc.requests =
        &reg.counter("serve.overload.tier." + std::to_string(k) + ".requests",
                     "requests executed while the ladder was on this tier");
    tc.batches =
        &reg.counter("serve.overload.tier." + std::to_string(k) + ".batches",
                     "batches executed while the ladder was on this tier");
    v.push_back(tc);
  }
  return v[std::size_t(tier)];
}

}  // namespace

OverloadTelemetry& OverloadTelemetry::instance() {
  static OverloadTelemetry t;
  return t;
}

OverloadTelemetry::OverloadTelemetry() {
  auto& reg = obs::MetricsRegistry::instance();
  escalations_ = &reg.counter("serve.overload.escalations",
                              "ladder moves toward cheaper tiers");
  deescalations_ = &reg.counter("serve.overload.deescalations",
                                "ladder moves back toward Normal");
  shed_ = &reg.counter("serve.overload.shed",
                       "requests shed at the door on the Shed rung");
  codel_dropped_ = &reg.counter(
      "serve.codel.dropped",
      "requests CoDel cut from the front of a standing queue");
  tier_gauge_ =
      &reg.gauge("serve.overload.tier", "current overload-ladder tier");
  obs::register_json_section(
      "overload", [](std::ostream& os) { instance().write_json(os); });
}

void OverloadTelemetry::ensure_tiers(int max_tier) {
  std::lock_guard<std::mutex> lk(m_);
  tier_at(max_tier);
  if (max_tier > max_tier_) max_tier_ = max_tier;
}

void OverloadTelemetry::record_batch(int tier, util::u64 n) {
  std::lock_guard<std::mutex> lk(m_);
  auto& tc = tier_at(tier);
  tc.requests->inc(n);
  tc.batches->inc();
}

void OverloadTelemetry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  os << "{\"ladder_engaged\":"
     << (escalations_->value() > 0 ? "true" : "false")
     << ",\"escalations\":" << escalations_->value()
     << ",\"deescalations\":" << deescalations_->value()
     << ",\"shed_rejected\":" << shed_->value()
     << ",\"codel_dropped\":" << codel_dropped_->value()
     << ",\"tier\":" << tier_gauge_->value() << ",\"tiers\":{";
  const auto& v = tier_counters();
  bool first = true;
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (!first) os << ",";
    first = false;
    os << "\"" << k << "\":{\"requests\":" << v[k].requests->value()
       << ",\"batches\":" << v[k].batches->value() << "}";
  }
  os << "}}";
}

}  // namespace nga::serve
