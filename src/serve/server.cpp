#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace nga::serve {

namespace {

// Registry references are stable for the process lifetime, so one
// lookup per metric is enough (the serve path is warm, not a MAC loop).
obs::Counter& c(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}
obs::Gauge& g(const char* name) {
  return obs::MetricsRegistry::instance().gauge(name);
}
obs::ValueSeries& s(const char* name) {
  return obs::MetricsRegistry::instance().series(name);
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

int argmax(const nn::Tensor& t) {
  if (t.v.empty()) return -1;
  return int(std::max_element(t.v.begin(), t.v.end()) - t.v.begin());
}

bool has_nonfinite(const nn::Tensor& t) {
  for (float v : t.v)
    if (!std::isfinite(v)) return true;
  return false;
}

// splitmix64 step, for decorrelating per-worker backoff streams.
util::u64 mix(util::u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity),
      health_(cfg_.health) {
  if (!cfg_.model_factory)
    throw std::invalid_argument("ServerConfig::model_factory is required");
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.max_attempts < 1) cfg_.max_attempts = 1;
  if (cfg_.mode != nn::Mode::kFloat && !cfg_.mul)
    throw std::invalid_argument("quantized serving needs a MulTable");
  if (cfg_.use_guard && !cfg_.exact_fallback)
    throw std::invalid_argument(
        "use_guard needs exact_fallback (a guard without a fallback "
        "reports recovery it cannot perform)");
  g("serve.state").set(double(State::kStarting));
}

Server::~Server() { drain(); }

void Server::start() {
  std::lock_guard<std::mutex> lk(drain_m_);
  if (!workers_.empty() || drained_.load()) return;
  workers_.reserve(std::size_t(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back(&Server::worker_main, this, i);
  accepting_.store(true, std::memory_order_release);
  State expect = State::kStarting;
  state_.compare_exchange_strong(expect, State::kServing);
  g("serve.state").set(double(state()));
}

std::future<Response> Server::submit(nn::Tensor x,
                                     std::chrono::microseconds budget) {
  return submit(std::move(x), Clock::now() + budget);
}

std::future<Response> Server::submit(nn::Tensor x, Clock::time_point deadline) {
  const auto t0 = Clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  c("serve.submitted").inc();

  Request rq;
  rq.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  rq.x = std::move(x);
  rq.submit_time = t0;
  rq.deadline = deadline;
  auto fut = rq.promise.get_future();

  if (!accepting_.load(std::memory_order_acquire)) {
    const State st = state();
    const RejectReason why = (st == State::kDraining || st == State::kStopped)
                                 ? RejectReason::kDraining
                                 : RejectReason::kNotServing;
    finish(rq, {Outcome::kRejected, why});
    return fut;
  }
  if (rq.x.c != cfg_.in_c || rq.x.h != cfg_.in_h || rq.x.w != cfg_.in_w ||
      rq.x.v.size() != std::size_t(cfg_.in_c * cfg_.in_h * cfg_.in_w)) {
    finish(rq, {Outcome::kRejected, RejectReason::kBadShape});
    return fut;
  }
  if (has_nonfinite(rq.x)) {
    finish(rq, {Outcome::kRejected, RejectReason::kNonFinite});
    return fut;
  }
  if (deadline <= t0) {
    finish(rq, {Outcome::kShed, RejectReason::kNone});
    return fut;
  }

  switch (queue_.try_push(std::move(rq))) {
    case BoundedQueue<Request>::Push::kOk:
      g("serve.queue.depth").set(double(queue_.size()));
      return fut;
    case BoundedQueue<Request>::Push::kFull:
      c("serve.overloaded").inc();
      finish(rq, {Outcome::kRejected, RejectReason::kOverloaded});
      return fut;
    case BoundedQueue<Request>::Push::kClosed:
      finish(rq, {Outcome::kRejected, RejectReason::kDraining});
      return fut;
  }
  return fut;  // unreachable
}

void Server::finish(Request& rq, Response r) {
  r.id = rq.id;
  r.latency_ms = ms_between(rq.submit_time, Clock::now());
  switch (r.outcome) {
    case Outcome::kServed:
      served_.fetch_add(1, std::memory_order_relaxed);
      c("serve.served").inc();
      s("serve.latency_ms").add(r.latency_ms);
      break;
    case Outcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      c("serve.rejected").inc();
      break;
    case Outcome::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      c("serve.shed").inc();
      break;
  }
  rq.promise.set_value(std::move(r));
}

void Server::worker_main(int worker_id) {
  auto model = cfg_.model_factory();
  std::unique_ptr<nn::ResilienceGuard> guard;
  if (cfg_.use_guard)
    guard = std::make_unique<nn::ResilienceGuard>(cfg_.exact_fallback);
  DecorrelatedBackoff backoff(cfg_.backoff,
                              mix(cfg_.seed ^ mix(util::u64(worker_id) + 1)));
  std::vector<Request> batch;
  while (queue_.pop_batch(cfg_.max_batch, cfg_.batch_linger, batch)) {
    g("serve.queue.depth").set(double(queue_.size()));
    process_batch(*model, guard.get(), backoff, batch);
    batch.clear();
  }
}

void Server::process_batch(nn::Model& model, nn::ResilienceGuard* guard,
                           DecorrelatedBackoff& backoff,
                           std::vector<Request>& batch) {
  // Shed before batching: a request whose deadline already passed must
  // not burn model time.
  std::vector<Request> live;
  live.reserve(batch.size());
  auto now = Clock::now();
  for (auto& rq : batch) {
    if (rq.deadline <= now)
      finish(rq, {Outcome::kShed, RejectReason::kNone});
    else
      live.push_back(std::move(rq));
  }
  if (live.empty()) return;
  s("serve.batch_size").add(double(live.size()));

  int attempt = 0;
  for (;;) {
    ++attempt;
    batches_.fetch_add(1, std::memory_order_relaxed);
    c("serve.batches").inc();

    const bool failover = cfg_.retry_exact_failover && cfg_.exact_fallback &&
                          attempt > 1 && attempt == cfg_.max_attempts;
    nn::Exec ex;
    ex.mode = cfg_.mode;
    ex.mul = failover ? cfg_.exact_fallback : cfg_.mul;
    ex.guard = guard;

    const util::u64 det0 = fault::Injector::thread_detected();
    const util::u64 trip0 = guard ? guard->report().trips : 0;
    const util::u64 rec0 = guard ? guard->report().recovered_layers : 0;

    std::vector<const nn::Tensor*> xs;
    xs.reserve(live.size());
    for (const auto& rq : live) xs.push_back(&rq.x);

    std::vector<nn::Tensor> ys;
    double exec_ms = 0;
    {
      obs::ScopedTimer t("serve.exec");
      ys = model.forward_batch(xs, ex);
      exec_ms = double(t.elapsed_ns()) * 1e-6;
    }

    // Transient-failure signal: this worker's own fault detections
    // (thread-local, so another worker's faults are not attributed
    // here), unrecovered guard trips, or non-finite logits.
    const util::u64 det = fault::Injector::thread_detected() - det0;
    bool nonfinite = false;
    for (const auto& y : ys) nonfinite = nonfinite || has_nonfinite(y);
    bool suspect = det > cfg_.suspect_detections || nonfinite;
    if (guard) {
      const util::u64 trips = guard->report().trips - trip0;
      const util::u64 rec = guard->report().recovered_layers - rec0;
      if (trips > rec)
        suspect = true;  // tripped and could not repair
      else if (trips > 0 && trips == rec && !nonfinite)
        suspect = false;  // layer-level recovery already fixed the batch
    }

    maybe_update_state(health_.record(!suspect, exec_ms));

    if (!suspect) {
      backoff.reset();
      now = Clock::now();
      for (std::size_t i = 0; i < live.size(); ++i) {
        Response r;
        r.attempts = attempt;
        if (live[i].deadline <= now) {
          // Shed after batching: computed too late to honour the SLO.
          r.outcome = Outcome::kShed;
        } else {
          r.outcome = Outcome::kServed;
          r.predicted = argmax(ys[i]);
        }
        finish(live[i], std::move(r));
      }
      return;
    }

    c("serve.suspect_batches").inc();
    if (attempt >= cfg_.max_attempts) {
      for (auto& rq : live) {
        Response r;
        r.outcome = Outcome::kRejected;
        r.reason = RejectReason::kRetriesExhausted;
        r.attempts = attempt;
        finish(rq, std::move(r));
      }
      return;
    }

    retries_.fetch_add(1, std::memory_order_relaxed);
    c("serve.retries").inc();
    {
      obs::ScopedTimer t("serve.backoff");
      std::this_thread::sleep_for(backoff.next());
    }
    // Shed whoever expired during the backoff before burning another
    // attempt on them.
    now = Clock::now();
    std::vector<Request> still;
    still.reserve(live.size());
    for (auto& rq : live) {
      if (rq.deadline <= now)
        finish(rq, {Outcome::kShed, RejectReason::kNone});
      else
        still.push_back(std::move(rq));
    }
    live = std::move(still);
    if (live.empty()) return;
  }
}

void Server::maybe_update_state(bool degraded_now) {
  State cur = state_.load(std::memory_order_acquire);
  if (cur == State::kServing && degraded_now) {
    if (state_.compare_exchange_strong(cur, State::kDegraded))
      c("serve.degraded_transitions").inc();
  } else if (cur == State::kDegraded && !degraded_now) {
    state_.compare_exchange_strong(cur, State::kServing);
  }
  g("serve.state").set(double(state()));
}

void Server::drain() {
  std::lock_guard<std::mutex> lk(drain_m_);
  if (drained_.load()) return;
  accepting_.store(false, std::memory_order_release);
  state_.store(State::kDraining, std::memory_order_release);
  g("serve.state").set(double(State::kDraining));
  queue_.close();
  for (auto& th : workers_)
    if (th.joinable()) th.join();
  workers_.clear();
  drained_.store(true);
  state_.store(State::kStopped, std::memory_order_release);
  g("serve.state").set(double(State::kStopped));
}

Server::Stats Server::stats() const {
  Stats st;
  st.submitted = submitted_.load(std::memory_order_relaxed);
  st.served = served_.load(std::memory_order_relaxed);
  st.rejected = rejected_.load(std::memory_order_relaxed);
  st.shed = shed_.load(std::memory_order_relaxed);
  st.retries = retries_.load(std::memory_order_relaxed);
  st.batches = batches_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace nga::serve
