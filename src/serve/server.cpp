#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace nga::serve {

namespace {

// Registry references are stable for the process lifetime, so one
// lookup per metric is enough (the serve path is warm, not a MAC loop).
obs::Counter& c(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}
obs::Gauge& g(const char* name) {
  return obs::MetricsRegistry::instance().gauge(name);
}
obs::ValueSeries& s(const char* name) {
  return obs::MetricsRegistry::instance().series(name);
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// Steady-clock time point -> the process-relative ns epoch the trace
// buffer uses (obs::now_ns reads the same clock).
util::u64 to_ns(Clock::time_point t) {
  return util::u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t.time_since_epoch())
                       .count());
}

// Record one child span of a sampled request's timeline.
void span(const obs::TraceContext& ctx, const char* name,
          Clock::time_point from, Clock::time_point to) {
  if (!ctx.sampled || to < from) return;
  obs::TraceBuffer::instance().record_span(ctx, name, to_ns(from),
                                           to_ns(to) - to_ns(from),
                                           ctx.root_span);
}

// Per-batch numeric error rate: bad arithmetic events per MAC. With
// NGA_OBS=0 the MAC counter is elided (macs == 0) and the rate
// degenerates to the raw fault-detection count — still monotone in
// badness, just unnormalized; thresholds are configured per build.
double numeric_rate_of(const nn::LayerHealthCounters& d) {
  const util::u64 bad = d.nar + d.saturation + d.fault_detected;
  return double(bad) / double(d.macs ? d.macs : 1);
}

int argmax(const nn::Tensor& t) {
  if (t.v.empty()) return -1;
  return int(std::max_element(t.v.begin(), t.v.end()) - t.v.begin());
}

bool has_nonfinite(const nn::Tensor& t) {
  for (float v : t.v)
    if (!std::isfinite(v)) return true;
  return false;
}

// splitmix64 step, for decorrelating per-worker backoff streams.
util::u64 mix(util::u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity),
      health_(cfg_.health) {
  if (!cfg_.model_factory)
    throw std::invalid_argument("ServerConfig::model_factory is required");
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.max_attempts < 1) cfg_.max_attempts = 1;
  if (cfg_.mode != nn::Mode::kFloat && !cfg_.mul)
    throw std::invalid_argument("quantized serving needs a MulTable");
  if (cfg_.use_guard && !cfg_.exact_fallback)
    throw std::invalid_argument(
        "use_guard needs exact_fallback (a guard without a fallback "
        "reports recovery it cannot perform)");
  g("serve.state").set(double(State::kStarting));
}

Server::~Server() { drain(); }

void Server::start() {
  std::lock_guard<std::mutex> lk(drain_m_);
  if (!workers_.empty() || drained_.load()) return;
  workers_.reserve(std::size_t(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back(&Server::worker_main, this, i);
  accepting_.store(true, std::memory_order_release);
  State expect = State::kStarting;
  state_.compare_exchange_strong(expect, State::kServing);
  g("serve.state").set(double(state()));
}

std::future<Response> Server::submit(nn::Tensor x,
                                     std::chrono::microseconds budget) {
  return submit(std::move(x), Clock::now() + budget);
}

std::future<Response> Server::submit(nn::Tensor x, Clock::time_point deadline) {
  const auto t0 = Clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  c("serve.submitted").inc();

  Request rq;
  rq.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  rq.x = std::move(x);
  rq.submit_time = t0;
  rq.deadline = deadline;
  rq.trace = obs::start_trace(cfg_.trace_sample_rate);
  auto fut = rq.promise.get_future();

  if (!accepting_.load(std::memory_order_acquire)) {
    const State st = state();
    const RejectReason why = (st == State::kDraining || st == State::kStopped)
                                 ? RejectReason::kDraining
                                 : RejectReason::kNotServing;
    finish(rq, {Outcome::kRejected, why});
    return fut;
  }
  if (rq.x.c != cfg_.in_c || rq.x.h != cfg_.in_h || rq.x.w != cfg_.in_w ||
      rq.x.v.size() != std::size_t(cfg_.in_c * cfg_.in_h * cfg_.in_w)) {
    finish(rq, {Outcome::kRejected, RejectReason::kBadShape});
    return fut;
  }
  if (has_nonfinite(rq.x)) {
    finish(rq, {Outcome::kRejected, RejectReason::kNonFinite});
    return fut;
  }
  if (deadline <= t0) {
    finish(rq, {Outcome::kShed, RejectReason::kNone});
    return fut;
  }

  switch (queue_.try_push(std::move(rq))) {
    case BoundedQueue<Request>::Push::kOk:
      g("serve.queue.depth").set(double(queue_.size()));
      return fut;
    case BoundedQueue<Request>::Push::kFull:
      c("serve.overloaded").inc();
      finish(rq, {Outcome::kRejected, RejectReason::kOverloaded});
      return fut;
    case BoundedQueue<Request>::Push::kClosed:
      finish(rq, {Outcome::kRejected, RejectReason::kDraining});
      return fut;
  }
  return fut;  // unreachable
}

void Server::finish(Request& rq, Response r) {
  const auto now = Clock::now();
  r.id = rq.id;
  r.latency_ms = ms_between(rq.submit_time, now);
  if (rq.trace.sampled) {
    r.trace_id = rq.trace.trace_id;
    // Root span: the whole submit -> resolution lifetime, closed with
    // the pre-allocated root id so the child spans' parent resolves.
    obs::TraceBuffer::instance().record_span(
        rq.trace, std::string("request.") + std::string(outcome_name(r.outcome)),
        to_ns(rq.submit_time), to_ns(now) - to_ns(rq.submit_time),
        /*parent_span=*/0, rq.trace.root_span);
  }
  switch (r.outcome) {
    case Outcome::kServed:
      served_.fetch_add(1, std::memory_order_relaxed);
      c("serve.served").inc();
      s("serve.latency_ms").add(r.latency_ms);
      break;
    case Outcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      c("serve.rejected").inc();
      break;
    case Outcome::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      c("serve.shed").inc();
      break;
  }
  rq.promise.set_value(std::move(r));
}

void Server::worker_main(int worker_id) {
  obs::TraceBuffer::instance().set_thread_name(
      "serve.worker." + std::to_string(worker_id));
  auto model = cfg_.model_factory();
  std::unique_ptr<nn::ResilienceGuard> guard;
  if (cfg_.use_guard)
    guard = std::make_unique<nn::ResilienceGuard>(cfg_.exact_fallback);
  DecorrelatedBackoff backoff(cfg_.backoff,
                              mix(cfg_.seed ^ mix(util::u64(worker_id) + 1)));
  nn::LayerHealthRecorder health_rec;
  std::vector<Request> batch;
  Clock::time_point first_at;
  while (queue_.pop_batch(cfg_.max_batch, cfg_.batch_linger, batch,
                          &first_at)) {
    g("serve.queue.depth").set(double(queue_.size()));
    process_batch(*model, guard.get(), backoff, health_rec, batch, first_at);
    batch.clear();
  }
}

void Server::process_batch(nn::Model& model, nn::ResilienceGuard* guard,
                           DecorrelatedBackoff& backoff,
                           nn::LayerHealthRecorder& health_rec,
                           std::vector<Request>& batch,
                           Clock::time_point first_at) {
  // Shed before batching: a request whose deadline already passed must
  // not burn model time.
  std::vector<Request> live;
  live.reserve(batch.size());
  auto now = Clock::now();
  for (auto& rq : batch) {
    if (rq.deadline <= now)
      finish(rq, {Outcome::kShed, RejectReason::kNone});
    else
      live.push_back(std::move(rq));
  }
  if (live.empty()) return;
  s("serve.batch_size").add(double(live.size()));

  // Stage attribution: queue_wait ends when the first batch item was in
  // the worker's hand; everything from there to dispatch (linger, the
  // shedding scan, marshalling) is batch coalescing.
  const auto dispatch_at = Clock::now();
  auto& queue_wait_s = s("serve.stage.queue_wait_ms");
  auto& batch_fill_s = s("serve.stage.batch_fill_ms");
  auto& exec_s = s("serve.stage.exec_ms");
  auto& backoff_s = s("serve.stage.retry_backoff_ms");
  for (const auto& rq : live) {
    // A request admitted during the linger window never queued: its
    // wait is zero and its fill stage starts at its own submit.
    const auto wait_end = std::max(rq.submit_time, first_at);
    queue_wait_s.add(ms_between(rq.submit_time, wait_end));
    batch_fill_s.add(ms_between(wait_end, dispatch_at));
    span(rq.trace, "queue_wait", rq.submit_time, wait_end);
    span(rq.trace, "batch_fill", wait_end, dispatch_at);
  }

  int attempt = 0;
  util::u64 failovers = 0;
  for (;;) {
    ++attempt;
    batches_.fetch_add(1, std::memory_order_relaxed);
    c("serve.batches").inc();

    const bool failover = cfg_.retry_exact_failover && cfg_.exact_fallback &&
                          attempt > 1 && attempt == cfg_.max_attempts;
    if (failover) {
      ++failovers;
      c("serve.failovers").inc();
    }
    nn::Exec ex;
    ex.mode = cfg_.mode;
    ex.mul = failover ? cfg_.exact_fallback : cfg_.mul;
    ex.guard = guard;
    ex.health = &health_rec;

    const nn::LayerHealthCounters health0 = health_rec.total();
    const util::u64 det0 = fault::Injector::thread_detected();
    const util::u64 trip0 = guard ? guard->report().trips : 0;
    const util::u64 rec0 = guard ? guard->report().recovered_layers : 0;

    std::vector<const nn::Tensor*> xs;
    xs.reserve(live.size());
    for (const auto& rq : live) xs.push_back(&rq.x);

    std::vector<nn::Tensor> ys;
    double exec_ms = 0;
    const auto exec_from = Clock::now();
    {
      obs::ScopedTimer t("serve.exec");
      ys = model.forward_batch(xs, ex);
      exec_ms = double(t.elapsed_ns()) * 1e-6;
    }
    const auto exec_to = Clock::now();
    for (const auto& rq : live) {
      exec_s.add(exec_ms);
      span(rq.trace, failover ? "exec.failover" : "exec", exec_from, exec_to);
    }

    // Transient-failure signal: this worker's own fault detections
    // (thread-local, so another worker's faults are not attributed
    // here), unrecovered guard trips, or non-finite logits.
    const util::u64 det = fault::Injector::thread_detected() - det0;
    bool nonfinite = false;
    for (const auto& y : ys) nonfinite = nonfinite || has_nonfinite(y);
    bool suspect = det > cfg_.suspect_detections || nonfinite;
    if (guard) {
      const util::u64 trips = guard->report().trips - trip0;
      const util::u64 rec = guard->report().recovered_layers - rec0;
      if (trips > rec)
        suspect = true;  // tripped and could not repair
      else if (trips > 0 && trips == rec && !nonfinite)
        suspect = false;  // layer-level recovery already fixed the batch
    }

    // Numeric-health channel: this attempt's bad-events-per-MAC rate
    // rides into the health window alongside the pass/fail verdict.
    nn::LayerHealthCounters hdelta = health_rec.total();
    hdelta.nar -= health0.nar;
    hdelta.saturation -= health0.saturation;
    hdelta.fault_detected -= health0.fault_detected;
    hdelta.requant_clips -= health0.requant_clips;
    hdelta.macs -= health0.macs;
    const double numeric_rate = numeric_rate_of(hdelta);
    s("serve.numeric.batch_rate").add(numeric_rate);

    maybe_update_state(health_.record(!suspect, exec_ms, numeric_rate));

    if (!suspect) {
      backoff.reset();
      merge_numeric(health_rec, attempt, failovers);
      now = Clock::now();
      for (std::size_t i = 0; i < live.size(); ++i) {
        Response r;
        r.attempts = attempt;
        if (live[i].deadline <= now) {
          // Shed after batching: computed too late to honour the SLO.
          r.outcome = Outcome::kShed;
        } else {
          r.outcome = Outcome::kServed;
          r.predicted = argmax(ys[i]);
        }
        finish(live[i], std::move(r));
      }
      return;
    }

    c("serve.suspect_batches").inc();
    if (attempt >= cfg_.max_attempts) {
      merge_numeric(health_rec, attempt, failovers);
      for (auto& rq : live) {
        Response r;
        r.outcome = Outcome::kRejected;
        r.reason = RejectReason::kRetriesExhausted;
        r.attempts = attempt;
        finish(rq, std::move(r));
      }
      return;
    }

    retries_.fetch_add(1, std::memory_order_relaxed);
    c("serve.retries").inc();
    const auto backoff_from = Clock::now();
    {
      obs::ScopedTimer t("serve.backoff");
      std::this_thread::sleep_for(backoff.next());
    }
    const auto backoff_to = Clock::now();
    for (const auto& rq : live) {
      backoff_s.add(ms_between(backoff_from, backoff_to));
      span(rq.trace, "retry_backoff", backoff_from, backoff_to);
    }
    // Shed whoever expired during the backoff before burning another
    // attempt on them.
    now = Clock::now();
    std::vector<Request> still;
    still.reserve(live.size());
    for (auto& rq : live) {
      if (rq.deadline <= now)
        finish(rq, {Outcome::kShed, RejectReason::kNone});
      else
        still.push_back(std::move(rq));
    }
    live = std::move(still);
    if (live.empty()) {
      merge_numeric(health_rec, attempt, failovers);
      return;
    }
  }
}

void Server::merge_numeric(nn::LayerHealthRecorder& rec, int attempts,
                           util::u64 failovers) {
  auto& reg = obs::MetricsRegistry::instance();
  {
    std::lock_guard<std::mutex> lk(numeric_m_);
    const auto& layers = rec.layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      if (i >= numeric_.layers.size())
        numeric_.layers.push_back({layers[i].first, {}});
      numeric_.layers[i].counts += layers[i].second;
    }
    numeric_.failovers += failovers;
    numeric_.batches += util::u64(attempts);
  }
  // Mirror per-layer counts into registry counters so the bench JSON
  // and the text exposition carry the per-layer breakdown. Registry
  // lookups are warm-path cheap (once per batch, not per MAC).
  for (const auto& [name, d] : rec.layers()) {
    const std::string base = "serve.layer." + name;
    if (d.nar) reg.counter(base + ".nar").inc(d.nar);
    if (d.saturation) reg.counter(base + ".saturation").inc(d.saturation);
    if (d.fault_detected)
      reg.counter(base + ".fault_detected").inc(d.fault_detected);
    if (d.requant_clips)
      reg.counter(base + ".requant_clips").inc(d.requant_clips);
    if (d.macs) reg.counter(base + ".macs").inc(d.macs);
  }
  rec.reset();
}

Server::NumericHealth Server::numeric_health() const {
  std::lock_guard<std::mutex> lk(numeric_m_);
  return numeric_;
}

void Server::maybe_update_state(bool degraded_now) {
  State cur = state_.load(std::memory_order_acquire);
  if (cur == State::kServing && degraded_now) {
    if (state_.compare_exchange_strong(cur, State::kDegraded))
      c("serve.degraded_transitions").inc();
  } else if (cur == State::kDegraded && !degraded_now) {
    state_.compare_exchange_strong(cur, State::kServing);
  }
  g("serve.state").set(double(state()));
}

void Server::drain() {
  std::lock_guard<std::mutex> lk(drain_m_);
  if (drained_.load()) return;
  accepting_.store(false, std::memory_order_release);
  state_.store(State::kDraining, std::memory_order_release);
  g("serve.state").set(double(State::kDraining));
  queue_.close();
  for (auto& th : workers_)
    if (th.joinable()) th.join();
  workers_.clear();
  drained_.store(true);
  state_.store(State::kStopped, std::memory_order_release);
  g("serve.state").set(double(State::kStopped));
  if (!cfg_.exposition_path.empty()) {
    std::ofstream os(cfg_.exposition_path);
    if (os)
      obs::write_text_exposition(os);
    else
      std::fprintf(stderr, "serve: cannot write exposition to '%s'\n",
                   cfg_.exposition_path.c_str());
  }
}

Server::Stats Server::stats() const {
  Stats st;
  st.submitted = submitted_.load(std::memory_order_relaxed);
  st.served = served_.load(std::memory_order_relaxed);
  st.rejected = rejected_.load(std::memory_order_relaxed);
  st.shed = shed_.load(std::memory_order_relaxed);
  st.retries = retries_.load(std::memory_order_relaxed);
  st.batches = batches_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace nga::serve
