#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "fault/fault.hpp"
#include "integrity/scrubber.hpp"
#include "obs/obs.hpp"

namespace nga::serve {

namespace {

// Registry references are stable for the process lifetime, so one
// lookup per metric is enough (the serve path is warm, not a MAC loop).
obs::Counter& c(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}
obs::Gauge& g(const char* name) {
  return obs::MetricsRegistry::instance().gauge(name);
}
obs::ValueSeries& s(const char* name) {
  return obs::MetricsRegistry::instance().series(name);
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// Steady-clock time point -> the process-relative ns epoch the trace
// buffer uses (obs::now_ns reads the same clock).
util::u64 to_ns(Clock::time_point t) {
  return util::u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t.time_since_epoch())
                       .count());
}

// Record one child span of a sampled request's timeline.
void span(const obs::TraceContext& ctx, const char* name,
          Clock::time_point from, Clock::time_point to) {
  if (!ctx.sampled || to < from) return;
  obs::TraceBuffer::instance().record_span(ctx, name, to_ns(from),
                                           to_ns(to) - to_ns(from),
                                           ctx.root_span);
}

// Per-batch numeric error rate: bad arithmetic events per MAC. With
// NGA_OBS=0 the MAC counter is elided (macs == 0) and the rate
// degenerates to the raw fault-detection count — still monotone in
// badness, just unnormalized; thresholds are configured per build.
double numeric_rate_of(const nn::LayerHealthCounters& d) {
  const util::u64 bad = d.nar + d.saturation + d.fault_detected;
  return double(bad) / double(d.macs ? d.macs : 1);
}

int argmax(const nn::Tensor& t) {
  if (t.v.empty()) return -1;
  return int(std::max_element(t.v.begin(), t.v.end()) - t.v.begin());
}

bool has_nonfinite(const nn::Tensor& t) {
  for (float v : t.v)
    if (!std::isfinite(v)) return true;
  return false;
}

// splitmix64 step, for decorrelating per-worker backoff streams.
util::u64 mix(util::u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity, cfg_.codel),
      health_(cfg_.health),
      overload_(cfg_.overload, int(cfg_.brownout_tables.size())),
      retry_budget_(cfg_.retry_budget) {
  if (!cfg_.model_factory)
    throw std::invalid_argument("ServerConfig::model_factory is required");
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.max_attempts < 1) cfg_.max_attempts = 1;
  if (cfg_.mode != nn::Mode::kFloat && !cfg_.mul &&
      !(cfg_.mul_factory && cfg_.mode == nn::Mode::kQuantApprox))
    throw std::invalid_argument("quantized serving needs a MulTable");
  if (cfg_.use_guard && !cfg_.exact_fallback)
    throw std::invalid_argument(
        "use_guard needs exact_fallback (a guard without a fallback "
        "reports recovery it cannot perform)");
  if (cfg_.quality.sample_rate > 0.0 &&
      (cfg_.mode != nn::Mode::kQuantApprox || !cfg_.exact_fallback))
    throw std::invalid_argument(
        "quality shadowing needs kQuantApprox mode and exact_fallback "
        "(the shadow compares the approximate path against the golden "
        "exact table)");

  const SupervisionConfig& sup = cfg_.supervision;
  // Breakers need the suspect/golden table split: quarantine means
  // "serve on exact", and probes compare approx against exact.
  breakers_enabled_ = sup.supervise && cfg_.exact_fallback &&
                      cfg_.mode == nn::Mode::kQuantApprox &&
                      sup.probe_samples > 0;
  if (sup.admission.enabled)
    limiter_ = std::make_unique<guard::AimdLimiter>(sup.admission);
  if (sup.supervise)
    watchdog_ = std::make_unique<guard::Watchdog>(
        sup.watchdog, [this](const std::shared_ptr<guard::WorkerSlot>& s) {
          hangs_detected_.fetch_add(1, std::memory_order_relaxed);
          c("serve.guard.hang_detected").inc();
          spawn_worker(s->id, s->generation + 1);
        });
  if (breakers_enabled_) {
    // Golden probe inputs: deterministic in the server seed, shape
    // correct, values in [0,1) like the normalized features the nets
    // train on.
    util::Xoshiro256 rng(mix(cfg_.seed ^ 0xA11CE5ull));
    golden_.reserve(std::size_t(sup.probe_samples));
    for (int i = 0; i < sup.probe_samples; ++i) {
      nn::Tensor t(cfg_.in_c, cfg_.in_h, cfg_.in_w);
      for (auto& v : t.v) v = float(double(rng() >> 11) * 0x1.0p-53);
      golden_.push_back(std::move(t));
    }
  }
  // Deadline-aware linger (queue.hpp): the queue can read each
  // request's deadline, so batch coalescing never out-waits the
  // tightest deadline it is holding.
  queue_.set_deadline_of([](const Request& rq) { return rq.deadline; });
  if (cfg_.overload.enabled) {
    // Bring up the process overload telemetry (counters, tier gauge,
    // the additive "overload" JSON section) and pre-register every
    // tier this ladder can reach — the metric schema must depend on
    // the config, never on whether traffic actually hit a tier.
    OverloadTelemetry::instance().ensure_tiers(overload_.max_tier());
    overload_.set_on_change([](int from, int to) {
      if (to > from)
        c("serve.overload.escalations").inc();
      else
        c("serve.overload.deescalations").inc();
      g("serve.overload.tier").set(double(to));
    });
  }
  if (cfg_.quality.sample_rate > 0.0) {
    // First touch of the quality telemetry in the process (rate 0 never
    // gets here — the quality.* schema stays absent, which CI asserts).
    // Pre-register every tier bin the ladder can reach and label each
    // with the multiplier it executes, so the schema and the operator
    // keys depend on the config, never on traffic.
    auto& qt = quality::QualityTelemetry::instance();
    const int max_tier = cfg_.overload.enabled ? overload_.max_tier() : 0;
    qt.ensure_tiers(max_tier);
    for (int t = 0; t <= max_tier; ++t) {
      const int bi = overload_.brownout_index(t);
      qt.set_tier_operator(
          t, bi >= 0 && bi < int(cfg_.brownout_tables.size())
                 ? "brownout." + std::to_string(bi)
                 : "configured");
    }
  }
  g("serve.state").set(double(State::kStarting));
  // Help text for the headline serving counters: rendered as # HELP
  // lines in the text exposition (drain dump and the live /metrics
  // endpoint), where a scraper without this codebase open reads them.
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("serve.submitted", "Requests handed to submit().");
  reg.counter("serve.served", "Requests served to completion.");
  reg.counter("serve.rejected",
              "Requests rejected (validation, overload, drain, limits).");
  reg.counter("serve.shed", "Requests shed on an expired deadline.");
  reg.counter("serve.retries",
              "Extra batch executions beyond each batch's first attempt.");
  reg.counter("serve.batches", "Batch executions, retries included.");
  // Pre-register the event-driven counters so every run exports the
  // full family at zero. Rare outcomes (a retired replica, an overload
  // burst) must not make the instrumentation schema run-dependent —
  // bench_diff treats a vanished counter family as a regression.
  for (const char* name :
       {"serve.overloaded", "serve.guard.hang_detected",
        "serve.guard.worker_replaced", "serve.guard.admission_rejected",
        "serve.guard.requeued", "serve.guard.redelivery_rejected",
        "serve.guard.quarantined_batches", "serve.guard.breaker.tripped",
        "serve.guard.breaker.probe", "serve.guard.breaker.probe_failed",
        "serve.guard.breaker.reinstated", "serve.guard.breaker.retired",
        "serve.guard.trip_scrub", "serve.guard.scrub_repaired",
        "serve.guard.scrub_unreproducible", "serve.codel.dropped",
        "serve.retry.budget_exhausted"})
    c(name);
  reg.describe("serve.retry.budget_exhausted",
               "Retries refused because the token-bucket retry budget "
               "was dry (the batch fails fast instead of storming).");
}

Server::~Server() { drain(); }

void Server::start() {
  std::lock_guard<std::mutex> lk(drain_m_);
  if (drained_.load()) return;
  {
    std::lock_guard<std::mutex> wlk(workers_m_);
    if (!workers_.empty()) return;
  }
  for (int i = 0; i < cfg_.workers; ++i) spawn_worker(i, 0);
  if (watchdog_) watchdog_->start();
  // Performance-attribution attachments come up with the pool: the
  // /metrics endpoint makes the registry scrapeable mid-soak and the
  // sampler profiles the workers' NGA_PROF_SCOPE frames. A failed bind
  // degrades to "no endpoint" (logged), never a failed start.
  if (cfg_.metrics_port >= 0) {
    prof::ExpositionConfig ec;
    ec.port = cfg_.metrics_port;
    metrics_server_ = std::make_unique<prof::ExpositionServer>(ec);
    if (!metrics_server_->start()) {
      std::fprintf(stderr, "serve: /metrics endpoint unavailable: %s\n",
                   metrics_server_->reason().c_str());
      metrics_server_.reset();
    }
  }
  if (cfg_.supervision.sampler_hz > 0.0) {
    sampler_ = std::make_unique<prof::Sampler>();
    sampler_->start(cfg_.supervision.sampler_hz);
  }
  // Quality shadow lane (nga::quality): its own model replica and its
  // own tier-table replicas, built off the serving path. Workers hand
  // it sampled (input, served logits, tier) snapshots after the reply
  // resolves; it re-executes them on the golden exact table.
  if (cfg_.quality.sample_rate > 0.0) {
    quality::ShadowLaneConfig lc;
    lc.quality = cfg_.quality;
    lc.mode = cfg_.mode;
    lc.model_factory = cfg_.model_factory;
    lc.exact = cfg_.exact_fallback;
    if (cfg_.quality.attribution_every > 0) {
      // Lane-owned replicas of the tier tables for the attribution
      // dual-run (same per-replica ownership story as the workers).
      const nn::MulTable* base = cfg_.mul;
      if (cfg_.mul_factory) {
        auto owned = cfg_.mul_factory();
        if (owned) {
          base = owned.get();
          lc.owned_tables.push_back(std::move(owned));
        }
      }
      std::vector<const nn::MulTable*> rungs;
      for (const auto& f : cfg_.brownout_tables) {
        auto owned = f ? f() : nullptr;
        rungs.push_back(owned ? owned.get() : nullptr);
        if (owned) lc.owned_tables.push_back(std::move(owned));
      }
      lc.tier_table = [this, base, rungs](int tier) -> const nn::MulTable* {
        const int bi = overload_.brownout_index(tier);
        if (bi >= 0 && bi < int(rungs.size()) && rungs[std::size_t(bi)])
          return rungs[std::size_t(bi)];
        return base;
      };
    }
    // In-flight probe: the lane defers shadow forwards while a request
    // is anywhere between submit and reply, scavenging idle gaps —
    // four relaxed atomic loads, no locks.
    lc.busy = [this] {
      const u64 done = served_.load(std::memory_order_relaxed) +
                       rejected_.load(std::memory_order_relaxed) +
                       shed_.load(std::memory_order_relaxed);
      return submitted_.load(std::memory_order_relaxed) > done;
    };
    shadow_ = std::make_unique<quality::ShadowLane>(std::move(lc));
    shadow_->start();
  }
  // Background scrubbing for the serving lifetime. The Scrubber is
  // process-wide; this server only claims the thread it started.
  if (cfg_.integrity.enabled && cfg_.integrity.pages_per_sec > 0.0) {
    integrity::ScrubberConfig sc;
    sc.pages_per_sec = cfg_.integrity.pages_per_sec;
    integrity::Scrubber::instance().start(sc);
    scrubber_started_ = true;
  }
  accepting_.store(true, std::memory_order_release);
  State expect = State::kStarting;
  state_.compare_exchange_strong(expect, State::kServing);
  g("serve.state").set(double(state()));
}

void Server::spawn_worker(int id, int generation) {
  std::shared_ptr<guard::WorkerSlot> slot;
  if (watchdog_) {
    slot = watchdog_->make_slot(id, generation);
  } else {
    // Unsupervised workers still get a slot (uniform worker_main); it
    // is simply never monitored or cancelled.
    slot = std::make_shared<guard::WorkerSlot>();
    slot->id = id;
    slot->generation = generation;
  }
  if (generation > 0) {
    workers_replaced_.fetch_add(1, std::memory_order_relaxed);
    c("serve.guard.worker_replaced").inc();
  }
  std::lock_guard<std::mutex> lk(workers_m_);
  WorkerHandle h;
  h.slot = slot;
  h.thread = std::thread(&Server::worker_main, this, slot);
  workers_.push_back(std::move(h));
}

std::future<Response> Server::submit(nn::Tensor x,
                                     std::chrono::microseconds budget) {
  return submit(std::move(x), Clock::now() + budget);
}

std::future<Response> Server::submit(nn::Tensor x, Clock::time_point deadline) {
  return submit(std::move(x), deadline, {});
}

std::future<Response> Server::submit(
    nn::Tensor x, Clock::time_point deadline,
    std::function<void(const Response&)> on_finish) {
  const auto t0 = Clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  c("serve.submitted").inc();

  Request rq;
  rq.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  rq.x = std::move(x);
  rq.submit_time = t0;
  rq.deadline = deadline;
  rq.trace = obs::start_trace(cfg_.trace_sample_rate);
  rq.on_finish = std::move(on_finish);
  auto fut = rq.promise.get_future();

  if (!accepting_.load(std::memory_order_acquire)) {
    const State st = state();
    const RejectReason why = (st == State::kDraining || st == State::kStopped)
                                 ? RejectReason::kDraining
                                 : RejectReason::kNotServing;
    finish(rq, {Outcome::kRejected, why});
    return fut;
  }
  if (rq.x.c != cfg_.in_c || rq.x.h != cfg_.in_h || rq.x.w != cfg_.in_w ||
      rq.x.v.size() != std::size_t(cfg_.in_c * cfg_.in_h * cfg_.in_w)) {
    finish(rq, {Outcome::kRejected, RejectReason::kBadShape});
    return fut;
  }
  if (has_nonfinite(rq.x)) {
    finish(rq, {Outcome::kRejected, RejectReason::kNonFinite});
    return fut;
  }
  if (deadline <= t0) {
    finish(rq, {Outcome::kShed, RejectReason::kNone});
    return fut;
  }
  // Last rung of the brownout ladder: shed a deterministic fraction at
  // the door, before the request costs an AIMD token or queue space.
  // Every accuracy trade has already been made by the time the ladder
  // stands here.
  if (cfg_.overload.enabled && overload_.at_shed() && overload_.shed_due()) {
    overload_shed_.fetch_add(1, std::memory_order_relaxed);
    c("serve.overload.shed").inc();
    finish(rq, {Outcome::kRejected, RejectReason::kBrownoutShed});
    return fut;
  }
  // Adaptive admission (nga::guard): refuse work beyond the AIMD
  // in-flight limit at the door, before it burns queue and exec time.
  if (limiter_) {
    if (!limiter_->try_acquire()) {
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      c("serve.guard.admission_rejected").inc();
      finish(rq, {Outcome::kRejected, RejectReason::kAdmissionLimited});
      return fut;
    }
    rq.admitted = true;
  }

  switch (queue_.try_push(std::move(rq))) {
    case BoundedQueue<Request>::Push::kOk:
      g("serve.queue.depth").set(double(queue_.size()));
      return fut;
    case BoundedQueue<Request>::Push::kFull:
      c("serve.overloaded").inc();
      finish(rq, {Outcome::kRejected, RejectReason::kOverloaded});
      return fut;
    case BoundedQueue<Request>::Push::kClosed:
      finish(rq, {Outcome::kRejected, RejectReason::kDraining});
      return fut;
  }
  return fut;  // unreachable
}

void Server::finish(Request& rq, Response r) {
  const auto now = Clock::now();
  r.id = rq.id;
  r.latency_ms = ms_between(rq.submit_time, now);
  if (rq.admitted) {
    // Return the AIMD token with this request's fate; the limiter
    // adapts on observed completion latency and shed rate.
    rq.admitted = false;
    limiter_->release(r.latency_ms, r.outcome == Outcome::kShed);
    g("serve.guard.admission.limit").set(double(limiter_->limit()));
  }
  if (rq.trace.sampled) {
    r.trace_id = rq.trace.trace_id;
    // Root span: the whole submit -> resolution lifetime, closed with
    // the pre-allocated root id so the child spans' parent resolves.
    obs::TraceBuffer::instance().record_span(
        rq.trace, std::string("request.") + std::string(outcome_name(r.outcome)),
        to_ns(rq.submit_time), to_ns(now) - to_ns(rq.submit_time),
        /*parent_span=*/0, rq.trace.root_span);
  }
  // Layer-above hook (nga::shard tenant budgets): the Response is
  // final here, and this is the one choke point every terminal path
  // funnels through — the hook sees door rejects and drains too.
  if (rq.on_finish) rq.on_finish(r);
  switch (r.outcome) {
    case Outcome::kServed:
      served_.fetch_add(1, std::memory_order_relaxed);
      c("serve.served").inc();
      s("serve.latency_ms").add(r.latency_ms);
      break;
    case Outcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      c("serve.rejected").inc();
      break;
    case Outcome::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      c("serve.shed").inc();
      break;
  }
  rq.promise.set_value(std::move(r));
}

void Server::worker_main(std::shared_ptr<guard::WorkerSlot> slot) {
  std::string lane = "serve.worker." + std::to_string(slot->id);
  if (slot->generation > 0) lane += ".g" + std::to_string(slot->generation);
  obs::TraceBuffer::instance().set_thread_name(lane);
  // Injected hangs on this thread abort the moment the watchdog
  // cancels us — replacement latency is detection time, not the full
  // injected stall.
  fault::Injector::set_thread_interrupt(slot->cancel.flag());

  NGA_PROF_SCOPE(lane);

  auto model = cfg_.model_factory();
  // Per-replica approximate table (nga::integrity): with mul_factory
  // every worker serves from its own copy, so persistent corruption
  // (memflip) damages ONE replica and the scrubber repairs replicas
  // independently — shared `mul` would make every breaker trip at once.
  std::shared_ptr<const nn::MulTable> own_table;
  const nn::MulTable* active_mul = cfg_.mul;
  if (cfg_.mul_factory && cfg_.mode == nn::Mode::kQuantApprox) {
    own_table = cfg_.mul_factory();
    if (own_table) active_mul = own_table.get();
  }
  auto& scrubber = integrity::Scrubber::instance();
  const bool scrub_registered = cfg_.integrity.enabled && own_table != nullptr;
  if (scrub_registered) {
    const std::string reg_name =
        cfg_.integrity.scope.empty() ? lane : cfg_.integrity.scope + "." + lane;
    scrubber.register_table(own_table, reg_name, cfg_.integrity.scope);
  }
  std::unique_ptr<nn::ResilienceGuard> guard;
  if (cfg_.use_guard)
    guard = std::make_unique<nn::ResilienceGuard>(cfg_.exact_fallback);
  DecorrelatedBackoff backoff(
      cfg_.backoff, mix(cfg_.seed ^ mix(util::u64(slot->id) * 131 +
                                        util::u64(slot->generation) + 1)));
  nn::LayerHealthRecorder health_rec;
  // Per-replica kernel attribution, like the health recorder: scoped
  // "serve" so every worker's layers merge into one per-kernel record.
  std::unique_ptr<prof::LayerProfiler> profiler;
  if (cfg_.profile_kernels)
    profiler = std::make_unique<prof::LayerProfiler>("serve");

  // Per-replica circuit breaker + the exact-table reference its
  // revalidation probes compare against. The exact table is the golden
  // unit (never fault-injected), so the reference is clean even when a
  // chaos plan is armed.
  std::unique_ptr<guard::CircuitBreaker> breaker;
  std::vector<int> golden_ref;
  if (breakers_enabled_) {
    breaker = std::make_unique<guard::CircuitBreaker>(cfg_.supervision.breaker);
    nn::Exec ex;
    ex.mode = cfg_.mode;
    // probe_self_reference: the reference is this replica's OWN clean
    // approximate path, captured now, before any fault plan can have
    // corrupted it (serving has not started). A repaired table then
    // probes back to exactly these predictions.
    ex.mul = cfg_.supervision.probe_self_reference ? active_mul
                                                   : cfg_.exact_fallback;
    golden_ref.reserve(golden_.size());
    for (const auto& x : golden_)
      golden_ref.push_back(argmax(model->forward(x, ex)));
  }

  // Lazily-built brownout replicas: one table per configured rung,
  // built the first time THIS worker enters the rung (same per-replica
  // ownership story as own_table above).
  std::vector<std::shared_ptr<const nn::MulTable>> brownout(
      cfg_.brownout_tables.size());

  std::vector<Request> batch;
  std::vector<Request> dropped;
  Clock::time_point first_at;
  for (;;) {
    // The ladder's first rung trades batching latency away: stop
    // holding requests to coalesce batches the moment sojourn says the
    // queue is standing.
    const int pre_tier = cfg_.overload.enabled ? overload_.tier() : 0;
    const auto linger =
        pre_tier >= 1 ? std::chrono::microseconds{0} : cfg_.batch_linger;
    double min_sojourn_ms = -1.0;
    dropped.clear();
    if (!queue_.pop_batch(cfg_.max_batch, linger, batch, &first_at, &dropped,
                          &min_sojourn_ms))
      break;
    g("serve.queue.depth").set(double(queue_.size()));
    // CoDel cut these from the front of a standing queue: their slack
    // was already gone — resolve them now as queue-delay rejections so
    // the capacity they would have burned serves the fresher requests
    // behind them.
    if (!dropped.empty()) {
      codel_dropped_.fetch_add(dropped.size(), std::memory_order_relaxed);
      c("serve.codel.dropped").inc(dropped.size());
      for (auto& rq : dropped)
        finish(rq, {Outcome::kRejected, RejectReason::kQueueDelay});
      dropped.clear();
    }
    if (cfg_.overload.enabled && min_sojourn_ms >= 0.0)
      overload_.observe(min_sojourn_ms, Clock::now());
    if (batch.empty()) continue;  // everything in hand was CoDel-cut
    if (slot->replaced.load(std::memory_order_acquire)) {
      // Cancelled in the window between finishing the previous batch
      // and popping this one: the successor owns the lane — hand the
      // work straight back.
      requeue_batch(batch);
      batch.clear();
      break;
    }
    // Quarantined replica + cooldown elapsed: revalidate under
    // traffic, before serving the popped batch.
    if (breaker && breaker->probe_due() && breaker->begin_probe()) {
      // Repair before reprobe (nga::integrity): deep-scrub this
      // replica's table so the probe revalidates RESTORED storage. A
      // trip caused purely by persistent LUT corruption then ends in
      // reinstatement; without the scrub the corruption is still there
      // and the probe loop can only retire the replica.
      bool scrub_ok = true;
      if (scrub_registered && cfg_.integrity.scrub_on_trip) {
        trip_scrubs_.fetch_add(1, std::memory_order_relaxed);
        c("serve.guard.trip_scrub").inc();
        const auto ds = scrubber.deep_scrub(*own_table);
        if (ds.repaired > 0) {
          scrub_repaired_.fetch_add(ds.repaired, std::memory_order_relaxed);
          c("serve.guard.scrub_repaired").inc(ds.repaired);
        }
        if (ds.unreproducible > 0) {
          scrub_unreproducible_.fetch_add(ds.unreproducible,
                                          std::memory_order_relaxed);
          c("serve.guard.scrub_unreproducible").inc(ds.unreproducible);
          // Storage cannot be restored; fail the probe so the breaker
          // walks its max_probe_failures path to retirement.
          scrub_ok = false;
        }
      }
      breaker_probes_.fetch_add(1, std::memory_order_relaxed);
      c("serve.guard.breaker.probe").inc();
      const bool pass = scrub_ok && run_probe(*model, golden_ref, active_mul);
      if (!pass) {
        breaker_probe_failures_.fetch_add(1, std::memory_order_relaxed);
        c("serve.guard.breaker.probe_failed").inc();
      }
      switch (breaker->end_probe(pass)) {
        case guard::CircuitBreaker::ProbeResult::kReinstated:
          breaker_reinstated_.fetch_add(1, std::memory_order_relaxed);
          c("serve.guard.breaker.reinstated").inc();
          break;
        case guard::CircuitBreaker::ProbeResult::kRetired:
          breaker_retired_.fetch_add(1, std::memory_order_relaxed);
          c("serve.guard.breaker.retired").inc();
          break;
        case guard::CircuitBreaker::ProbeResult::kReopened:
        case guard::CircuitBreaker::ProbeResult::kIgnored:
          break;
      }
    }
    // Brownout rung: swap THIS batch onto the tier's cheaper table.
    // Normal, LingerOff, and Shed all run the configured table (Shed
    // keeps the cheapest for what it still admits via brownout_index).
    const int tier = cfg_.overload.enabled ? overload_.tier() : 0;
    const nn::MulTable* tier_mul = active_mul;
    if (cfg_.mode == nn::Mode::kQuantApprox) {
      const int bi = overload_.brownout_index(tier);
      if (bi >= 0 && bi < int(brownout.size())) {
        if (!brownout[std::size_t(bi)])
          brownout[std::size_t(bi)] = cfg_.brownout_tables[std::size_t(bi)]();
        if (brownout[std::size_t(bi)])
          tier_mul = brownout[std::size_t(bi)].get();
      }
    }
    process_batch(*model, guard.get(), backoff, health_rec, profiler.get(),
                  batch, first_at, slot.get(), breaker.get(), tier_mul, tier);
    batch.clear();
    if (slot->replaced.load(std::memory_order_acquire)) break;
  }
  if (scrub_registered) scrubber.unregister_table(own_table.get());
  fault::Injector::set_thread_interrupt(nullptr);
}

bool Server::run_probe(nn::Model& model, const std::vector<int>& ref,
                       const nn::MulTable* mul) {
  // TimedSection: the probe lands as a section counter AND a
  // chrome-trace span on the worker's lane.
  obs::TimedSection ts("serve.guard.probe");
  nn::Exec ex;
  ex.mode = cfg_.mode;
  ex.mul = mul;  // the SUSPECT approximate path, not the fallback
  // Detection-aware: the plausibility screen (p > pmax) firing during
  // the golden replay proves the path is still numerically corrupt even
  // when every argmax happens to survive the perturbation — persistent
  // LUT corruption routinely masks this way. Such a probe must fail.
  const util::u64 det0 = fault::Injector::thread_detected();
  int mismatches = 0;
  for (std::size_t i = 0; i < golden_.size() && i < ref.size(); ++i)
    if (argmax(model.forward(golden_[i], ex)) != ref[i]) ++mismatches;
  if (fault::Injector::thread_detected() != det0) return false;
  return mismatches <= cfg_.supervision.probe_tolerance;
}

void Server::requeue_batch(std::vector<Request>& live) {
  const int max_rd = cfg_.supervision.watchdog.max_redeliveries;
  const auto now = Clock::now();
  for (auto& rq : live) {
    if (rq.deadline <= now) {
      finish(rq, {Outcome::kShed, RejectReason::kNone});
      continue;
    }
    if (rq.redeliveries >= max_rd) {
      // Poison-batch bound: this request already rode a replaced
      // worker max_redeliveries times; stop the loop.
      redelivery_rejects_.fetch_add(1, std::memory_order_relaxed);
      c("serve.guard.redelivery_rejected").inc();
      finish(rq, {Outcome::kRejected, RejectReason::kRedeliveryLimit});
      continue;
    }
    ++rq.redeliveries;
    requeues_.fetch_add(1, std::memory_order_relaxed);
    c("serve.guard.requeued").inc();
    // requeue() bypasses capacity and only fails when the queue is
    // closed — in which case rq was NOT consumed and must resolve
    // here to keep the drain invariant.
    if (queue_.requeue(std::move(rq)) != BoundedQueue<Request>::Push::kOk)
      finish(rq, {Outcome::kRejected, RejectReason::kDraining});
  }
  live.clear();
}

void Server::process_batch(nn::Model& model, nn::ResilienceGuard* guard,
                           DecorrelatedBackoff& backoff,
                           nn::LayerHealthRecorder& health_rec,
                           prof::LayerProfiler* prof,
                           std::vector<Request>& batch,
                           Clock::time_point first_at,
                           guard::WorkerSlot* slot,
                           guard::CircuitBreaker* breaker,
                           const nn::MulTable* active_mul, int tier) {
  NGA_PROF_SCOPE("process_batch");
  // Shed before batching: a request whose deadline already passed must
  // not burn model time.
  std::vector<Request> live;
  live.reserve(batch.size());
  auto now = Clock::now();
  for (auto& rq : batch) {
    if (rq.deadline <= now)
      finish(rq, {Outcome::kShed, RejectReason::kNone});
    else
      live.push_back(std::move(rq));
  }
  if (live.empty()) return;
  s("serve.batch_size").add(double(live.size()));
  // Per-tier traffic mix: how much of the served load ran on which
  // rung of the ladder — the auditable accuracy cost of a brownout.
  if (cfg_.overload.enabled)
    OverloadTelemetry::instance().record_batch(tier, util::u64(live.size()));

  // Stage attribution: queue_wait ends when the first batch item was in
  // the worker's hand; everything from there to dispatch (linger, the
  // shedding scan, marshalling) is batch coalescing.
  const auto dispatch_at = Clock::now();
  auto& queue_wait_s = s("serve.stage.queue_wait_ms");
  auto& batch_fill_s = s("serve.stage.batch_fill_ms");
  auto& exec_s = s("serve.stage.exec_ms");
  auto& backoff_s = s("serve.stage.retry_backoff_ms");
  for (const auto& rq : live) {
    // A request admitted during the linger window never queued: its
    // wait is zero and its fill stage starts at its own submit.
    const auto wait_end = std::max(rq.submit_time, first_at);
    queue_wait_s.add(ms_between(rq.submit_time, wait_end));
    batch_fill_s.add(ms_between(wait_end, dispatch_at));
    span(rq.trace, "queue_wait", rq.submit_time, wait_end);
    span(rq.trace, "batch_fill", wait_end, dispatch_at);
  }

  int attempt = 0;
  util::u64 failovers = 0;
  for (;;) {
    ++attempt;
    batches_.fetch_add(1, std::memory_order_relaxed);
    c("serve.batches").inc();

    const bool failover = cfg_.retry_exact_failover && cfg_.exact_fallback &&
                          attempt > 1 && attempt == cfg_.max_attempts;
    if (failover) {
      ++failovers;
      c("serve.failovers").inc();
    }
    // Quarantine (circuit breaker not Closed): this replica's
    // approximate path is suspect or retired — serve on the golden
    // exact table until a probe reinstates it.
    const bool quarantined =
        breaker && breaker->state() != guard::BreakerState::kClosed;
    if (quarantined) {
      quarantined_batches_.fetch_add(1, std::memory_order_relaxed);
      c("serve.guard.quarantined_batches").inc();
    }
    nn::Exec ex;
    ex.mode = cfg_.mode;
    ex.mul = (failover || quarantined) ? cfg_.exact_fallback : active_mul;
    ex.guard = guard;
    ex.health = &health_rec;
    ex.prof = prof;
    ex.cancel = slot->cancel.flag();
    ex.heartbeat = &slot->heartbeat;

    const nn::LayerHealthCounters health0 = health_rec.total();
    const util::u64 det0 = fault::Injector::thread_detected();
    const util::u64 trip0 = guard ? guard->report().trips : 0;
    const util::u64 rec0 = guard ? guard->report().recovered_layers : 0;

    std::vector<const nn::Tensor*> xs;
    xs.reserve(live.size());
    for (const auto& rq : live) xs.push_back(&rq.x);

    // Watchdog bookkeeping: mark this worker busy with the batch's own
    // latency budget (the most generous live deadline) for the exec
    // only — backoff sleeps are bounded and not hang-suspect.
    if (slot) {
      util::u64 budget = 0;
      const auto exec_start = Clock::now();
      for (const auto& rq : live)
        if (rq.deadline > exec_start)
          budget = std::max(budget, to_ns(rq.deadline) - to_ns(exec_start));
      slot->budget_ns.store(budget, std::memory_order_relaxed);
    }

    std::vector<nn::Tensor> ys;
    double exec_ms = 0;
    const auto exec_from = Clock::now();
    if (slot) slot->busy_since_ns.store(to_ns(exec_from),
                                        std::memory_order_release);
    {
      NGA_PROF_SCOPE("exec");
      obs::ScopedTimer t("serve.exec");
      ys = model.forward_batch(xs, ex);
      exec_ms = double(t.elapsed_ns()) * 1e-6;
    }
    if (slot) slot->busy_since_ns.store(0, std::memory_order_release);
    // Per-batch flush: the per-kernel window lands in the ProfRegistry
    // (and thus the live /metrics exposition) at batch granularity, so
    // a mid-soak scrape sees fresh MACs/s, not start-of-run zeros.
    if (prof) prof->flush();
    const auto exec_to = Clock::now();
    for (const auto& rq : live) {
      exec_s.add(exec_ms);
      span(rq.trace, failover ? "exec.failover" : "exec", exec_from, exec_to);
    }

    // Cancelled mid-exec (watchdog replacement): whatever came back is
    // partial/untrustworthy. Hand the live requests back to the queue
    // for a healthy worker and get out of the way.
    if (slot && slot->cancel.cancelled()) {
      merge_numeric(health_rec, attempt, failovers);
      requeue_batch(live);
      return;
    }

    // Transient-failure signal: this worker's own fault detections
    // (thread-local, so another worker's faults are not attributed
    // here), unrecovered guard trips, or non-finite logits.
    const util::u64 det = fault::Injector::thread_detected() - det0;
    bool nonfinite = false;
    for (const auto& y : ys) nonfinite = nonfinite || has_nonfinite(y);
    bool suspect = det > cfg_.suspect_detections || nonfinite;
    if (guard) {
      const util::u64 trips = guard->report().trips - trip0;
      const util::u64 rec = guard->report().recovered_layers - rec0;
      if (trips > rec)
        suspect = true;  // tripped and could not repair
      else if (trips > 0 && trips == rec && !nonfinite)
        suspect = false;  // layer-level recovery already fixed the batch
    }

    // Per-replica breaker verdict. Only attempts that ran the suspect
    // approximate path count: failover/quarantined attempts ran on the
    // golden table and say nothing about this replica's own unit.
    if (breaker && !failover && !quarantined && breaker->record(!suspect)) {
      breaker_trips_.fetch_add(1, std::memory_order_relaxed);
      c("serve.guard.breaker.tripped").inc();
    }

    // Numeric-health channel: this attempt's bad-events-per-MAC rate
    // rides into the health window alongside the pass/fail verdict.
    nn::LayerHealthCounters hdelta = health_rec.total();
    hdelta.nar -= health0.nar;
    hdelta.saturation -= health0.saturation;
    hdelta.fault_detected -= health0.fault_detected;
    hdelta.requant_clips -= health0.requant_clips;
    hdelta.macs -= health0.macs;
    const double numeric_rate = numeric_rate_of(hdelta);
    s("serve.numeric.batch_rate").add(numeric_rate);

    maybe_update_state(health_.record(!suspect, exec_ms, numeric_rate));

    if (!suspect) {
      backoff.reset();
      merge_numeric(health_rec, attempt, failovers);
      now = Clock::now();
      std::size_t served_n = 0;
      // This attempt ran on the golden exact table, not the tier's
      // approximate one: quality attribution must know (exact-vs-exact
      // shadows would inflate the tier's measured agreement).
      const bool exact_path = failover || quarantined;
      quality::ShadowLane* lane = shadow_.get();
      for (std::size_t i = 0; i < live.size(); ++i) {
        Response r;
        r.attempts = attempt;
        r.tier = tier;
        r.exact_path = exact_path;
        bool served_now = false;
        if (live[i].deadline <= now) {
          // Shed after batching: computed too late to honour the SLO.
          r.outcome = Outcome::kShed;
        } else {
          r.outcome = Outcome::kServed;
          r.predicted = argmax(ys[i]);
          served_now = true;
          ++served_n;
        }
        const u64 rq_id = live[i].id;
        finish(live[i], std::move(r));
        // Shadow sampling, AFTER the reply resolved: the lane gets a
        // snapshot (input moved out of the finished request, logits
        // moved out of ys) and the serving path moves on. With quality
        // off, lane is null and this whole block is one branch.
        if (lane && served_now &&
            quality::shadow_sampled(cfg_.quality.seed, rq_id,
                                    cfg_.quality.sample_rate)) {
          c("quality.shadow.sampled").inc();
          if (exact_path) {
            c("quality.shadow.skipped_exact").inc();
          } else {
            quality::ShadowJob job;
            job.id = rq_id;
            job.x = std::move(live[i].x);
            job.approx_logits = std::move(ys[i].v);
            job.tier = tier;
            lane->enqueue(std::move(job));
          }
        }
      }
      // Successes fund the retry budget: the bucket refills only while
      // the server is actually doing useful work.
      if (served_n > 0) retry_budget_.on_success(served_n);
      return;
    }

    c("serve.suspect_batches").inc();
    if (attempt >= cfg_.max_attempts) {
      merge_numeric(health_rec, attempt, failovers);
      for (auto& rq : live) {
        Response r;
        r.outcome = Outcome::kRejected;
        r.reason = RejectReason::kRetriesExhausted;
        r.attempts = attempt;
        finish(rq, std::move(r));
      }
      return;
    }

    // Retry budget (token bucket): a SPECULATIVE retry — re-executing
    // the same suspect path hoping the transient passed — may only
    // spend capacity recent successes earned. The final exact-table
    // failover is exempt: it switches to the known-good unit, which is
    // repair, not amplification. So a dry bucket stops the speculation:
    // jump straight to the failover when one is configured, fail fast
    // otherwise. Either way a fault storm can no longer multiply the
    // exec load by max_attempts.
    const bool next_is_failover = cfg_.retry_exact_failover &&
                                  cfg_.exact_fallback &&
                                  attempt + 1 == cfg_.max_attempts;
    if (!next_is_failover && !retry_budget_.try_spend()) {
      budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
      c("serve.retry.budget_exhausted").inc();
      if (cfg_.retry_exact_failover && cfg_.exact_fallback) {
        attempt = cfg_.max_attempts - 1;  // next loop runs the failover
      } else {
        merge_numeric(health_rec, attempt, failovers);
        for (auto& rq : live) {
          Response r;
          r.outcome = Outcome::kRejected;
          r.reason = RejectReason::kRetriesExhausted;
          r.attempts = attempt;
          finish(rq, std::move(r));
        }
        return;
      }
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    c("serve.retries").inc();
    const auto backoff_from = Clock::now();
    {
      obs::ScopedTimer t("serve.backoff");
      std::this_thread::sleep_for(backoff.next());
    }
    const auto backoff_to = Clock::now();
    for (const auto& rq : live) {
      backoff_s.add(ms_between(backoff_from, backoff_to));
      span(rq.trace, "retry_backoff", backoff_from, backoff_to);
    }
    // Shed whoever expired during the backoff before burning another
    // attempt on them.
    now = Clock::now();
    std::vector<Request> still;
    still.reserve(live.size());
    for (auto& rq : live) {
      if (rq.deadline <= now)
        finish(rq, {Outcome::kShed, RejectReason::kNone});
      else
        still.push_back(std::move(rq));
    }
    live = std::move(still);
    if (live.empty()) {
      merge_numeric(health_rec, attempt, failovers);
      return;
    }
  }
}

void Server::merge_numeric(nn::LayerHealthRecorder& rec, int attempts,
                           util::u64 failovers) {
  auto& reg = obs::MetricsRegistry::instance();
  {
    std::lock_guard<std::mutex> lk(numeric_m_);
    const auto& layers = rec.layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      if (i >= numeric_.layers.size())
        numeric_.layers.push_back({layers[i].first, {}});
      numeric_.layers[i].counts += layers[i].second;
    }
    numeric_.failovers += failovers;
    numeric_.batches += util::u64(attempts);
  }
  // Mirror per-layer counts into registry counters so the bench JSON
  // and the text exposition carry the per-layer breakdown. Registry
  // lookups are warm-path cheap (once per batch, not per MAC).
  for (const auto& [name, d] : rec.layers()) {
    const std::string base = "serve.layer." + name;
    if (d.nar) reg.counter(base + ".nar").inc(d.nar);
    if (d.saturation) reg.counter(base + ".saturation").inc(d.saturation);
    if (d.fault_detected)
      reg.counter(base + ".fault_detected").inc(d.fault_detected);
    if (d.requant_clips)
      reg.counter(base + ".requant_clips").inc(d.requant_clips);
    if (d.macs) reg.counter(base + ".macs").inc(d.macs);
  }
  rec.reset();
}

Server::NumericHealth Server::numeric_health() const {
  std::lock_guard<std::mutex> lk(numeric_m_);
  return numeric_;
}

void Server::maybe_update_state(bool degraded_now) {
  State cur = state_.load(std::memory_order_acquire);
  if (cur == State::kServing && degraded_now) {
    if (state_.compare_exchange_strong(cur, State::kDegraded))
      c("serve.degraded_transitions").inc();
  } else if (cur == State::kDegraded && !degraded_now) {
    state_.compare_exchange_strong(cur, State::kServing);
  }
  g("serve.state").set(double(state()));
}

void Server::drain() {
  std::lock_guard<std::mutex> lk(drain_m_);
  if (drained_.load()) return;
  accepting_.store(false, std::memory_order_release);
  state_.store(State::kDraining, std::memory_order_release);
  g("serve.state").set(double(State::kDraining));
  // Stop the watchdog monitor FIRST: after stop() returns no further
  // replacement can spawn, so the join loop below sees the final
  // worker set. Workers hung in an injected delay still terminate —
  // stalls are finite and cancelled workers wake early — so every
  // join completes.
  if (watchdog_) watchdog_->stop();
  queue_.close();
  std::vector<WorkerHandle> workers;
  {
    std::lock_guard<std::mutex> wlk(workers_m_);
    workers.swap(workers_);
  }
  for (auto& h : workers)
    if (h.thread.joinable()) h.thread.join();
  // Scope backstop (nga::shard): purge every scrub registration this
  // fault domain made. Workers unregister on clean exit, but a killed
  // shard's registrations must not outlive it regardless of how its
  // threads died.
  if (cfg_.integrity.enabled && !cfg_.integrity.scope.empty())
    integrity::Scrubber::instance().unregister_scope(cfg_.integrity.scope);
  // The scrub thread outlives the workers (tables may still be
  // registered by others), but this server only stops what it started.
  if (scrubber_started_) {
    integrity::Scrubber::instance().stop();
    scrubber_started_ = false;
  }
  // Shadow lane: the workers (its only producers) are joined, so the
  // queue is final — process every remaining job, then stop. The final
  // exposition and bench JSON below therefore carry the complete
  // shadow-measured quality of the run (and a fixed request stream
  // yields an identical "quality" section, which bench_diff relies on).
  if (shadow_) shadow_->drain_and_stop();
  drained_.store(true);
  state_.store(State::kStopped, std::memory_order_release);
  g("serve.state").set(double(State::kStopped));
  if (!cfg_.exposition_path.empty()) {
    std::ofstream os(cfg_.exposition_path);
    if (os)
      obs::write_text_exposition(os);
    else
      std::fprintf(stderr, "serve: cannot write exposition to '%s'\n",
                   cfg_.exposition_path.c_str());
  }
  // Tear down the prof attachments last: the final exposition above is
  // still scrapeable until here, and the sampler's histogram covers the
  // entire serving window including the drain itself.
  if (sampler_) {
    sampler_->stop();
    if (!cfg_.supervision.collapsed_path.empty()) {
      std::ofstream os(cfg_.supervision.collapsed_path);
      if (os)
        sampler_->write_collapsed(os);
      else
        std::fprintf(stderr, "serve: cannot write collapsed stacks to '%s'\n",
                     cfg_.supervision.collapsed_path.c_str());
    }
  }
  if (metrics_server_) metrics_server_->stop();
}

Server::GuardStats Server::guard_stats() const {
  GuardStats gs;
  gs.hangs_detected = hangs_detected_.load(std::memory_order_relaxed);
  gs.workers_replaced = workers_replaced_.load(std::memory_order_relaxed);
  gs.requeues = requeues_.load(std::memory_order_relaxed);
  gs.redelivery_rejects =
      redelivery_rejects_.load(std::memory_order_relaxed);
  gs.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  gs.quarantined_batches =
      quarantined_batches_.load(std::memory_order_relaxed);
  gs.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  gs.breaker_probes = breaker_probes_.load(std::memory_order_relaxed);
  gs.breaker_probe_failures =
      breaker_probe_failures_.load(std::memory_order_relaxed);
  gs.breaker_reinstated = breaker_reinstated_.load(std::memory_order_relaxed);
  gs.breaker_retired = breaker_retired_.load(std::memory_order_relaxed);
  gs.admission_limit = limiter_ ? limiter_->limit() : 0;
  gs.trip_scrubs = trip_scrubs_.load(std::memory_order_relaxed);
  gs.scrub_repaired = scrub_repaired_.load(std::memory_order_relaxed);
  gs.scrub_unreproducible =
      scrub_unreproducible_.load(std::memory_order_relaxed);
  return gs;
}

Server::Stats Server::stats() const {
  Stats st;
  st.submitted = submitted_.load(std::memory_order_relaxed);
  st.served = served_.load(std::memory_order_relaxed);
  st.rejected = rejected_.load(std::memory_order_relaxed);
  st.shed = shed_.load(std::memory_order_relaxed);
  st.retries = retries_.load(std::memory_order_relaxed);
  st.batches = batches_.load(std::memory_order_relaxed);
  st.codel_dropped = codel_dropped_.load(std::memory_order_relaxed);
  st.overload_shed = overload_shed_.load(std::memory_order_relaxed);
  st.budget_exhausted = budget_exhausted_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace nga::serve
