// Decorrelated-jitter exponential backoff for transient batch retries.
//
// The policy is the "decorrelated jitter" variant of capped exponential
// backoff:  sleep_{k+1} = min(cap, uniform(base, 3 * sleep_k)).
// Jitter decorrelates workers that trip on the same fault burst (no
// retry convoys); the cap bounds the worst added latency so a deadline
// budget can account for it. Deterministic per (seed): the tests pin
// the bounds and the reset behaviour.
#pragma once

#include <algorithm>
#include <chrono>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace nga::serve {

struct BackoffConfig {
  std::chrono::microseconds base{100};
  std::chrono::microseconds cap{10000};
};

class DecorrelatedBackoff {
 public:
  DecorrelatedBackoff(BackoffConfig cfg, util::u64 seed)
      : cfg_(cfg), rng_(seed), prev_(cfg.base) {}

  /// Next sleep. Always in [base, cap].
  std::chrono::microseconds next() {
    const util::u64 lo = util::u64(std::max<long long>(1, cfg_.base.count()));
    const util::u64 hi = std::max(lo + 1, util::u64(prev_.count()) * 3);
    const util::u64 draw = lo + rng_.below(hi - lo);
    prev_ = std::min(cfg_.cap,
                     std::chrono::microseconds(static_cast<long long>(draw)));
    prev_ = std::max(prev_, cfg_.base);
    return prev_;
  }

  /// Back to the base delay (call after a successful attempt).
  void reset() { prev_ = cfg_.base; }

 private:
  BackoffConfig cfg_;
  util::Xoshiro256 rng_;
  std::chrono::microseconds prev_;
};

}  // namespace nga::serve
