#include "serve/health.hpp"

#include <algorithm>
#include <cmath>

namespace nga::serve {

HealthTracker::HealthTracker(HealthConfig cfg) : cfg_(cfg) {
  if (cfg_.window == 0) cfg_.window = 1;
  if (cfg_.min_samples == 0) cfg_.min_samples = 1;
  ok_.assign(cfg_.window, true);
  lat_ms_.assign(cfg_.window, 0.0);
  numeric_.assign(cfg_.window, 0.0);
}

bool HealthTracker::record(bool ok, double latency_ms, double numeric_rate) {
  if (!(numeric_rate >= 0.0)) numeric_rate = 0.0;  // scrub NaN/negatives
  std::lock_guard<std::mutex> lk(m_);
  const bool full = count_ >= cfg_.window;
  if (full) {
    if (!ok_[next_]) --errors_in_window_;
    numeric_sum_in_window_ -= numeric_[next_];
  }
  ok_[next_] = ok;
  lat_ms_[next_] = latency_ms;
  numeric_[next_] = numeric_rate;
  if (!ok) ++errors_in_window_;
  numeric_sum_in_window_ += numeric_rate;
  next_ = (next_ + 1) % cfg_.window;
  if (!full) ++count_;

  const std::size_t n = std::min(count_, cfg_.window);
  if (n >= cfg_.min_samples) {
    const double err = double(errors_in_window_) / double(n);
    if (!error_degraded_ && err >= cfg_.degrade_error_rate)
      error_degraded_ = true;
    else if (error_degraded_ && err <= cfg_.recover_error_rate)
      error_degraded_ = false;

    if (cfg_.degrade_numeric_rate > 0.0) {
      const double num = numeric_sum_in_window_ / double(n);
      if (!numeric_degraded_ && num >= cfg_.degrade_numeric_rate)
        numeric_degraded_ = true;
      else if (numeric_degraded_ && num <= cfg_.recover_numeric_rate)
        numeric_degraded_ = false;
    }
  }
  return error_degraded_ || numeric_degraded_;
}

bool HealthTracker::degraded() const {
  std::lock_guard<std::mutex> lk(m_);
  return error_degraded_ || numeric_degraded_;
}

HealthTracker::Snapshot HealthTracker::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  Snapshot s;
  s.samples = std::min(count_, cfg_.window);
  s.error_degraded = error_degraded_;
  s.numeric_degraded = numeric_degraded_;
  if (s.samples == 0) return s;
  s.error_rate = double(errors_in_window_) / double(s.samples);
  s.numeric_rate = numeric_sum_in_window_ / double(s.samples);
  std::vector<double> lat(lat_ms_.begin(),
                          lat_ms_.begin() + long(s.samples));
  const std::size_t k =
      std::min(s.samples - 1, std::size_t(std::ceil(0.99 * double(s.samples))));
  std::nth_element(lat.begin(), lat.begin() + long(k), lat.end());
  s.latency_p99_ms = lat[k];
  return s;
}

}  // namespace nga::serve
