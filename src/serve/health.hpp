// Server health/readiness state and the sliding-window statistics that
// drive it.
//
// The state machine:
//   Starting --start()--> Serving <--> Degraded --drain()--> Draining
//                            |                                   |
//                            +---------drain()------------------>+--> Stopped
// Serving <-> Degraded transitions are automatic, driven by the
// error-rate of a sliding window over recent batch attempts, with
// hysteresis (degrade and recover thresholds differ) so the state does
// not flap on a single bad batch. Draining/Stopped are terminal and
// never overridden by the tracker.
#pragma once

#include <cstddef>
#include <mutex>
#include <string_view>
#include <vector>

namespace nga::serve {

enum class State { kStarting, kServing, kDegraded, kDraining, kStopped };

constexpr std::string_view state_name(State s) {
  switch (s) {
    case State::kStarting: return "starting";
    case State::kServing: return "serving";
    case State::kDegraded: return "degraded";
    case State::kDraining: return "draining";
    case State::kStopped: return "stopped";
  }
  return "?";
}

struct HealthConfig {
  std::size_t window = 128;      ///< attempts in the sliding window
  std::size_t min_samples = 16;  ///< no judgement before this many
  double degrade_error_rate = 0.10;  ///< enter Degraded at/above
  double recover_error_rate = 0.02;  ///< back to Serving at/below

  /// Numeric-health channel: each batch attempt also carries a numeric
  /// error rate (bad arithmetic events — NaR, saturation, fault
  /// detections — per MAC executed; see Server's numeric-health
  /// aggregation). The windowed MEAN of that rate drives a second
  /// degrade/recover pair with its own hysteresis, so sustained numeric
  /// degradation flips Serving -> Degraded even while every request
  /// still succeeds. 0 disables the channel (the default keeps the
  /// request-failure-only behaviour of PR 3).
  double degrade_numeric_rate = 0.0;  ///< enter Degraded at/above
  double recover_numeric_rate = 0.0;  ///< back to Serving at/below
};

/// Sliding window of recent batch-attempt outcomes; shared by all
/// workers, so every method is internally locked.
class HealthTracker {
 public:
  explicit HealthTracker(HealthConfig cfg);

  /// Record one batch attempt (ok = not transiently failed), its wall
  /// latency, and its numeric error rate; returns the degraded verdict
  /// after this sample. The verdict is the OR of the two channels.
  bool record(bool ok, double latency_ms, double numeric_rate = 0.0);

  bool degraded() const;

  struct Snapshot {
    std::size_t samples = 0;  ///< window fill (<= cfg.window)
    double error_rate = 0.0;
    double latency_p99_ms = 0.0;  ///< of the current window
    double numeric_rate = 0.0;    ///< window mean numeric error rate
    bool error_degraded = false;
    bool numeric_degraded = false;
  };
  Snapshot snapshot() const;

 private:
  HealthConfig cfg_;
  mutable std::mutex m_;
  std::vector<bool> ok_;
  std::vector<double> lat_ms_;
  std::vector<double> numeric_;
  std::size_t next_ = 0;   ///< ring cursor
  std::size_t count_ = 0;  ///< total recorded (saturates window fill)
  std::size_t errors_in_window_ = 0;
  double numeric_sum_in_window_ = 0.0;
  bool error_degraded_ = false;
  bool numeric_degraded_ = false;
};

}  // namespace nga::serve
