// Request/response vocabulary of nga::serve.
//
// Every request submitted to a Server terminates in exactly one of
// three outcomes — Served (logits computed before the deadline),
// Rejected (typed reason, from validation through retry exhaustion),
// or Shed (the deadline expired before a result could be delivered).
// There is no fourth, silent state: the drain invariant
//     served + rejected + shed == submitted
// is part of the API contract (tests/serve/server_test.cpp).
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <string_view>

#include "nn/tensor.hpp"
#include "obs/trace.hpp"
#include "util/bits.hpp"

namespace nga::serve {

using Clock = std::chrono::steady_clock;
using util::u64;

/// Why a request was rejected (never why it was shed — shedding is
/// always the deadline).
enum class RejectReason {
  kNone,              ///< not rejected
  kBadShape,          ///< input tensor shape != the model's input shape
  kNonFinite,         ///< input contains NaN/inf
  kNotServing,        ///< submitted before start()
  kDraining,          ///< submitted during/after drain()
  kOverloaded,        ///< admission queue full — explicit backpressure
  kRetriesExhausted,  ///< every attempt failed transiently
  kAdmissionLimited,  ///< over the adaptive AIMD in-flight limit (guard)
  kRedeliveryLimit,   ///< re-queued too often after worker replacement
  kQueueDelay,        ///< CoDel cut it from the front of a standing queue
  kBrownoutShed,      ///< overload ladder at its last rung: shed at the door
  kTenantLimited,     ///< over the caller tenant's AIMD budget (nga::shard);
                      ///< distinct from kAdmissionLimited (per-shard limit)
                      ///< so tenant-budget sheds are attributable per tenant
};

constexpr std::string_view reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kBadShape: return "bad_shape";
    case RejectReason::kNonFinite: return "non_finite";
    case RejectReason::kNotServing: return "not_serving";
    case RejectReason::kDraining: return "draining";
    case RejectReason::kOverloaded: return "overloaded";
    case RejectReason::kRetriesExhausted: return "retries_exhausted";
    case RejectReason::kAdmissionLimited: return "admission_limited";
    case RejectReason::kRedeliveryLimit: return "redelivery_limit";
    case RejectReason::kQueueDelay: return "queue_delay";
    case RejectReason::kBrownoutShed: return "brownout_shed";
    case RejectReason::kTenantLimited: return "tenant_limited";
  }
  return "?";
}

enum class Outcome { kServed, kRejected, kShed };

constexpr std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kRejected: return "rejected";
    case Outcome::kShed: return "shed";
  }
  return "?";
}

/// Terminal state of one request, delivered through the future that
/// submit() returned.
struct Response {
  Outcome outcome = Outcome::kRejected;
  RejectReason reason = RejectReason::kNone;
  u64 id = 0;
  int predicted = -1;     ///< argmax class when served
  int attempts = 0;       ///< batch executions this request rode in
  double latency_ms = 0;  ///< submit -> completion wall time
  /// Trace id of this request's sampled timeline (0 = not sampled):
  /// the tid of its lane under the "nga.requests" process in the
  /// chrome-trace export.
  u64 trace_id = 0;
  /// Overload-ladder tier this request executed under (0 = Normal,
  /// i.e. the configured multiplier; higher = browner). Set only for
  /// served requests.
  int tier = 0;
  /// True when the serving attempt actually ran on the golden exact
  /// table (retry-with-exact-failover or breaker quarantine) rather
  /// than the tier's approximate table. Such requests are excluded from
  /// per-tier quality bins — an exact-vs-exact shadow comparison would
  /// silently inflate a brownout tier's measured agreement.
  bool exact_path = false;
};

/// One admitted in-flight request (internal to Server and its queue).
/// Move-only: the promise is the single delivery obligation.
struct Request {
  u64 id = 0;
  nn::Tensor x;
  Clock::time_point submit_time{};
  Clock::time_point deadline{};
  obs::TraceContext trace;  ///< request-scoped trace identity
  /// Times this request was re-queued after its worker was replaced
  /// (nga::guard watchdog); bounded so a poison batch cannot loop.
  int redeliveries = 0;
  /// Holds an AIMD admission token that finish() must release.
  bool admitted = false;
  /// Layer-above completion hook (nga::shard uses it to release tenant
  /// budget tokens). Runs in finish() — the single accounting choke
  /// point — with the fully populated Response, BEFORE the promise is
  /// resolved, on every terminal path including door rejects. Must not
  /// call back into the Server.
  std::function<void(const Response&)> on_finish;
  std::promise<Response> promise;
};

}  // namespace nga::serve
