// Brownout ladder: trade accuracy for throughput BEFORE trading
// availability.
//
// The paper's premise gives the serving layer a degradation axis no
// ordinary server has. An approximate multiplier's error is a dial; a
// shed request is a cliff. So when the queue's sojourn time says the
// server is past its knee, the OverloadController walks a ladder of
// progressively cheaper configurations instead of jumping straight to
// rejection — the serve-time analogue of the dynamic-reconfiguration
// operators in Vakili et al. (PAPERS.md):
//
//      tier 0   Normal        configured multiplier, full batching
//      tier 1   LingerOff     batch coalescing linger forced to zero
//                             (latency for throughput bookkeeping —
//                             stop holding requests to build batches)
//      tier 2..(1+K)          brownout: workers swap onto the k-th
//                             cheaper approximate MulTable (replica
//                             per worker via the hot-swap factory
//                             machinery; per-tier traffic mix is
//                             reported so accuracy loss is auditable)
//      tier 2+K Shed          admission sheds a configured fraction at
//                             the door — the last rung, reached only
//                             when every accuracy trade is exhausted
//
// Escalation is driven by an EWMA of the queue's minimum batch sojourn
// (the same signal CoDel acts on), with two-threshold hysteresis
// (enter_ms > exit_ms) and a dwell time between tier changes so an
// oscillating load cannot flap the ladder — the controller moves one
// rung per dwell, in either direction, and the hysteresis gap makes
// "up" and "down" decisions disagree about the same sojourn level.
//
// The controller is deliberately signal-agnostic glue: Server feeds it
// sojourn samples (and its HealthTracker/AIMD signals keep their own
// independent authority — the AIMD limiter still clamps in-flight
// admission; the ladder composes with it rather than replacing it).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <ostream>

#include "obs/registry.hpp"
#include "util/bits.hpp"

namespace nga::serve {

struct OverloadConfig {
  bool enabled = false;
  /// EWMA min-sojourn (ms) above which the ladder escalates one rung.
  double enter_ms = 5.0;
  /// EWMA min-sojourn (ms) below which it de-escalates one rung. Must
  /// be < enter_ms: the gap is the hysteresis band.
  double exit_ms = 1.0;
  /// Minimum time between tier changes (either direction).
  std::chrono::milliseconds dwell{250};
  /// EWMA smoothing factor in (0,1]; higher = jumpier.
  double ewma_alpha = 0.2;
  /// Fraction of arrivals shed at the door while on the Shed rung.
  double shed_fraction = 0.5;
};

/// The ladder state machine. Hot readers (submit, workers) read tier()
/// lock-free; observe() serializes on a mutex (one call per batch, not
/// per request).
class OverloadController {
 public:
  using Clock = std::chrono::steady_clock;

  /// @p brownout_tiers = K, the number of cheaper tables configured
  /// (may be 0: the ladder is then Normal -> LingerOff -> Shed).
  OverloadController(OverloadConfig cfg, int brownout_tiers)
      : cfg_(cfg), brownout_tiers_(brownout_tiers < 0 ? 0 : brownout_tiers) {}

  /// Observer for tier changes (telemetry mirror). Runs under the
  /// controller mutex — keep it to atomic counter/gauge updates. Set
  /// before traffic starts.
  void set_on_change(std::function<void(int from, int to)> fn) {
    on_change_ = std::move(fn);
  }

  int tier() const { return tier_.load(std::memory_order_relaxed); }
  int max_tier() const { return 2 + brownout_tiers_; }
  int shed_tier() const { return max_tier(); }
  bool at_shed() const { return tier() >= shed_tier(); }

  /// True while the ladder is anywhere above Normal.
  bool engaged() const { return tier() > 0; }

  /// Map a tier to the brownout-table index it selects, or -1 when the
  /// tier runs the configured table (Normal/LingerOff/Shed all do:
  /// Shed keeps the cheapest table for what it still admits).
  int brownout_index(int tier) const {
    if (tier < 2) return -1;
    const int idx = tier - 2;
    return idx < brownout_tiers_ ? idx : brownout_tiers_ - 1;
  }

  /// Feed one min-sojourn sample (ms). Returns the tier in force after
  /// the sample. @p now is injectable for deterministic tests.
  int observe(double sojourn_ms, Clock::time_point now) {
    if (!cfg_.enabled) return 0;
    std::lock_guard<std::mutex> lk(m_);
    ewma_ = seeded_ ? cfg_.ewma_alpha * sojourn_ms +
                          (1.0 - cfg_.ewma_alpha) * ewma_
                    : sojourn_ms;
    seeded_ = true;
    const int t = tier_.load(std::memory_order_relaxed);
    const bool dwelt =
        last_change_ == Clock::time_point{} || now - last_change_ >= cfg_.dwell;
    if (!dwelt) return t;
    if (ewma_ > cfg_.enter_ms && t < max_tier()) {
      tier_.store(t + 1, std::memory_order_relaxed);
      last_change_ = now;
      ++escalations_;
      if (on_change_) on_change_(t, t + 1);
    } else if (ewma_ < cfg_.exit_ms && t > 0) {
      tier_.store(t - 1, std::memory_order_relaxed);
      last_change_ = now;
      ++deescalations_;
      if (on_change_) on_change_(t, t - 1);
    }
    return tier_.load(std::memory_order_relaxed);
  }

  /// Deterministic shed sampler for the Shed rung: a fixed-point
  /// accumulator that returns true for exactly shed_fraction of calls
  /// (no RNG — the brownout bench must be reproducible). Callers check
  /// at_shed() first.
  bool shed_due() {
    std::lock_guard<std::mutex> lk(m_);
    shed_acc_ += cfg_.shed_fraction;
    if (shed_acc_ >= 1.0) {
      shed_acc_ -= 1.0;
      return true;
    }
    return false;
  }

  struct Stats {
    util::u64 escalations = 0;
    util::u64 deescalations = 0;
    double ewma_ms = 0.0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lk(m_);
    return {escalations_, deescalations_, ewma_};
  }

 private:
  const OverloadConfig cfg_;
  const int brownout_tiers_;
  std::function<void(int, int)> on_change_;
  std::atomic<int> tier_{0};
  mutable std::mutex m_;
  double ewma_ = 0.0;
  bool seeded_ = false;
  double shed_acc_ = 0.0;
  Clock::time_point last_change_{};
  util::u64 escalations_ = 0;
  util::u64 deescalations_ = 0;
};

/// Process-wide overload telemetry: obs counters/gauges plus the
/// additive "overload" section of the nga-bench-v1 JSON (registered on
/// first use, like "prof" and "integrity" — benches that never build a
/// Server keep their exact schema). Per-tier traffic mix lives here so
/// the accuracy cost of every brownout episode is visible in /metrics
/// and in the committed bench JSON.
class OverloadTelemetry {
 public:
  static OverloadTelemetry& instance();

  /// Pre-register the per-tier request/batch counters for tiers
  /// 0..max_tier so the metric schema is config-dependent, never
  /// traffic-dependent (Server ctor calls this).
  void ensure_tiers(int max_tier);

  /// One batch of @p n requests executed on @p tier.
  void record_batch(int tier, util::u64 n);

  void write_json(std::ostream& os) const;

 private:
  OverloadTelemetry();

  obs::Counter* escalations_;
  obs::Counter* deescalations_;
  obs::Counter* shed_;
  obs::Counter* codel_dropped_;
  obs::Gauge* tier_gauge_;
  mutable std::mutex m_;
  int max_tier_ = -1;  ///< highest tier with registered counters
};

}  // namespace nga::serve
