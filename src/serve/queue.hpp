// Bounded MPMC admission queue with explicit backpressure and batch
// pops.
//
// Push never blocks: a full queue is an immediate kFull — the server
// turns that into a typed Overloaded rejection instead of buffering
// without bound (load shedding at admission is the backpressure story).
// Pop is the batching point: a consumer blocks for the first item, then
// lingers briefly to let a batch coalesce, and drains up to max_n.
//
// close() stops admission but NOT consumption — consumers keep draining
// what is queued and see `false` only when the queue is closed AND
// empty. That ordering is what makes Server::drain() graceful: every
// admitted request is still handed to a worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace nga::serve {

template <class T>
class BoundedQueue {
 public:
  enum class Push { kOk, kFull, kClosed };

  explicit BoundedQueue(std::size_t capacity) : cap_(capacity ? capacity : 1) {}

  Push try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (closed_) return Push::kClosed;
      if (q_.size() >= cap_) return Push::kFull;
      q_.push_back(std::move(item));
    }
    cv_.notify_one();
    return Push::kOk;
  }

  /// Redelivery path (nga::guard worker replacement): return an item
  /// that was already admitted once. Goes to the FRONT (it has waited
  /// its turn) and bypasses the capacity check — admission-level
  /// backpressure was already applied to it; bouncing it now would
  /// turn a worker replacement into a spurious rejection. Fails only
  /// when the queue is closed (never returns kFull).
  Push requeue(T&& item) {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (closed_) return Push::kClosed;
      q_.push_front(std::move(item));
    }
    cv_.notify_one();
    return Push::kOk;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained (then returns false: no work will ever come again). Once
  /// the first item is in hand, waits up to @p linger for the batch to
  /// fill, then moves up to @p max_n items into @p out.
  /// @p first_at (optional) receives the instant the first item was in
  /// hand — the boundary between a request's queue-wait and the batch
  /// coalescing (linger) it then waits through.
  bool pop_batch(std::size_t max_n, std::chrono::microseconds linger,
                 std::vector<T>& out,
                 std::chrono::steady_clock::time_point* first_at = nullptr) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    if (first_at) *first_at = std::chrono::steady_clock::now();
    if (linger.count() > 0 && q_.size() < max_n && !closed_)
      cv_.wait_for(lk, linger, [&] { return q_.size() >= max_n || closed_; });
    const std::size_t n = std::min(max_n ? max_n : 1, q_.size());
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    return true;
  }

  /// Stop admission; wake every consumer so they can drain and exit.
  void close() {
    {
      std::lock_guard<std::mutex> lk(m_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(m_);
    return q_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(m_);
    return closed_;
  }

 private:
  const std::size_t cap_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace nga::serve
