// Bounded MPMC admission queue with explicit backpressure, batch pops,
// and CoDel-style sojourn control.
//
// Push never blocks: a full queue is an immediate kFull — the server
// turns that into a typed Overloaded rejection instead of buffering
// without bound (load shedding at admission is the backpressure story).
// Pop is the batching point: a consumer blocks for the first item, then
// lingers briefly to let a batch coalesce, and drains up to max_n.
//
// A bounded queue alone does not prevent congestion collapse: under
// sustained overload the queue sits pinned at capacity, every request
// waits the full queue's worth of delay, and by the time a worker picks
// it up its deadline slack is gone — the server burns execution on
// requests that expire mid-flight. The CoDel discipline (Nichols &
// Jacobson, "Controlling Queue Delay") attacks the *standing* queue:
// when the minimum sojourn time stays above `target` for a full
// `interval`, the queue starts dropping from the FRONT — the oldest,
// most-doomed request — at a rate that increases with sqrt(count)
// until sojourn dips back under target. Bursts shorter than `interval`
// are never touched; only queues that refuse to drain get cut.
//
// close() stops admission but NOT consumption — consumers keep draining
// what is queued and see `false` only when the queue is closed AND
// empty. That ordering is what makes Server::drain() graceful: every
// admitted request is still handed to a worker. CoDel never fires on a
// closed queue (drain handles expiry itself), and "dropped" items are
// handed back to the consumer, never destroyed — the caller owns the
// accounting (the drain invariant requires every request finished).
#pragma once

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace nga::serve {

/// CoDel knobs. Defaults follow the paper's rule of thumb (target ≈
/// 5% of interval; interval ≈ a worst-case RTT — here, a worst-case
/// client deadline) scaled to a local inference queue.
struct CoDelConfig {
  bool enabled = false;
  /// Acceptable standing sojourn. Below this the queue is "good".
  std::chrono::microseconds target{5'000};
  /// How long min-sojourn must stay above target before dropping
  /// starts. Bursts shorter than this are never dropped.
  std::chrono::microseconds interval{100'000};
};

template <class T>
class BoundedQueue {
 public:
  enum class Push { kOk, kFull, kClosed };
  using Clock = std::chrono::steady_clock;

  explicit BoundedQueue(std::size_t capacity, CoDelConfig codel = {})
      : cap_(capacity ? capacity : 1), codel_(codel) {}

  /// Teach the queue to read an item's deadline so pop_batch can stop
  /// lingering early when the earliest deadline in the coalescing
  /// batch would expire inside the linger window (a full linger must
  /// never turn a servable request into a shed one). Set before
  /// consumers start; not synchronized against concurrent pops.
  void set_deadline_of(std::function<Clock::time_point(const T&)> fn) {
    deadline_of_ = std::move(fn);
  }

  Push try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (closed_) return Push::kClosed;
      if (q_.size() >= cap_) return Push::kFull;
      q_.push_back(Entry{std::move(item), Clock::now()});
    }
    cv_.notify_one();
    return Push::kOk;
  }

  /// Redelivery path (nga::guard worker replacement): return an item
  /// that was already admitted once. Goes to the FRONT (it has waited
  /// its turn) and bypasses the capacity check — admission-level
  /// backpressure was already applied to it; bouncing it now would
  /// turn a worker replacement into a spurious rejection. Fails only
  /// when the queue is closed (never returns kFull).
  Push requeue(T&& item) {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (closed_) return Push::kClosed;
      q_.push_front(Entry{std::move(item), Clock::now()});
    }
    cv_.notify_one();
    return Push::kOk;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained (then returns false: no work will ever come again). Once
  /// the first item is in hand, waits up to @p linger for the batch to
  /// fill — but no longer than the earliest deadline among the items
  /// already waiting allows (see set_deadline_of) — then moves up to
  /// @p max_n items into @p out.
  ///
  /// @p first_at (optional) receives the instant the first item was in
  /// hand — the boundary between a request's queue-wait and the batch
  /// coalescing (linger) it then waits through.
  /// @p dropped (optional) receives items the CoDel discipline cut
  /// from the front; the caller must still account for them (finish
  /// with a queue-delay rejection). Null disables dropping even when
  /// CoDel is configured.
  /// @p min_sojourn_ms (optional) receives the minimum queue sojourn
  /// across the items transferred this call (out + dropped), in ms —
  /// the congestion signal the overload controller feeds on. Left
  /// untouched when nothing was transferred.
  ///
  /// Returns true when any item was transferred (out and/or dropped);
  /// `out` may legitimately come back empty if the only item in hand
  /// was dropped.
  bool pop_batch(std::size_t max_n, std::chrono::microseconds linger,
                 std::vector<T>& out,
                 Clock::time_point* first_at = nullptr,
                 std::vector<T>* dropped = nullptr,
                 double* min_sojourn_ms = nullptr) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    if (first_at) *first_at = Clock::now();
    if (linger.count() > 0 && q_.size() < max_n && !closed_) {
      const auto wait = clamp_linger_to_deadlines(linger, max_n);
      if (wait.count() > 0)
        cv_.wait_for(lk, wait, [&] { return q_.size() >= max_n || closed_; });
    }
    out.clear();
    const std::size_t want = max_n ? max_n : 1;
    out.reserve(std::min(want, q_.size()));
    const auto now = Clock::now();
    double min_soj = -1.0;
    while (out.size() < want && !q_.empty()) {
      Entry e = std::move(q_.front());
      q_.pop_front();
      const double soj_ms =
          std::chrono::duration<double, std::milli>(now - e.enqueued).count();
      if (min_soj < 0.0 || soj_ms < min_soj) min_soj = soj_ms;
      if (dropped && codel_.enabled && !closed_ &&
          codel_should_drop(now, now - e.enqueued)) {
        dropped->push_back(std::move(e.item));
        continue;  // drop-from-front: the newer items behind it survive
      }
      out.push_back(std::move(e.item));
    }
    if (min_sojourn_ms && min_soj >= 0.0) *min_sojourn_ms = min_soj;
    return true;
  }

  /// Stop admission; wake every consumer so they can drain and exit.
  void close() {
    {
      std::lock_guard<std::mutex> lk(m_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(m_);
    return q_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(m_);
    return closed_;
  }

 private:
  struct Entry {
    T item;
    Clock::time_point enqueued;
  };

  /// Linger is for throughput; deadlines are for goodput. Cap the
  /// linger at the slack of the tightest deadline among the items that
  /// would form this batch, so coalescing never expires what it holds.
  std::chrono::microseconds clamp_linger_to_deadlines(
      std::chrono::microseconds linger, std::size_t max_n) const {
    if (!deadline_of_) return linger;
    const auto now = Clock::now();
    auto earliest = Clock::time_point::max();
    std::size_t scan = std::min(max_n ? max_n : 1, q_.size());
    for (std::size_t i = 0; i < scan; ++i) {
      const auto d = deadline_of_(q_[i].item);
      if (d < earliest) earliest = d;
    }
    if (earliest == Clock::time_point::max()) return linger;
    if (earliest <= now) return std::chrono::microseconds{0};
    const auto slack =
        std::chrono::duration_cast<std::chrono::microseconds>(earliest - now);
    return slack < linger ? slack : linger;
  }

  /// CoDel state machine, called once per dequeued item (m_ held).
  /// Tracks whether the MIN sojourn has stayed above target for a full
  /// interval; while it has, drops at interval/sqrt(count) spacing.
  bool codel_should_drop(Clock::time_point now,
                         Clock::duration sojourn) {
    if (sojourn < codel_.target || q_.size() <= 1) {
      // Min sojourn dipped under target (or queue is empty behind this
      // item): the queue is draining — leave dropping state.
      first_above_ = {};
      dropping_ = false;
      return false;
    }
    if (first_above_ == Clock::time_point{}) {
      first_above_ = now + codel_.interval;
      return false;
    }
    if (now < first_above_) return false;
    if (!dropping_) {
      dropping_ = true;
      // Re-entering soon after the last dropping episode: resume at a
      // higher drop rate instead of relearning from 1 (control law
      // memory, as in the reference implementation).
      count_ = (count_ > 2 && now - drop_next_ < 8 * codel_.interval)
                   ? count_ - 2
                   : 1;
      drop_next_ = now;
    }
    if (now < drop_next_) return false;
    ++count_;
    drop_next_ = now + std::chrono::duration_cast<Clock::duration>(
                           codel_.interval / std::sqrt(double(count_)));
    return true;
  }

  const std::size_t cap_;
  const CoDelConfig codel_;
  std::function<Clock::time_point(const T&)> deadline_of_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Entry> q_;
  bool closed_ = false;
  // CoDel state (guarded by m_).
  Clock::time_point first_above_{};
  Clock::time_point drop_next_{};
  unsigned count_ = 0;
  bool dropping_ = false;
};

}  // namespace nga::serve
