// nga::serve — umbrella header for the concurrent inference service
// core: request vocabulary, bounded admission queue, backoff policy,
// health state machine, and the Server itself. See DESIGN.md's
// "Serving layer" section for the architecture and the robustness
// guarantees (deadlines, backpressure, retry, graceful drain).
#pragma once

#include "serve/backoff.hpp"
#include "serve/health.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
