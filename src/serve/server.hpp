// nga::serve::Server — the concurrent inference service core.
//
// Data path: submit() validates (typed RejectReason), stamps a
// deadline, and admits into a bounded MPMC queue (full queue => an
// immediate Overloaded rejection: backpressure, not buffering). Worker
// threads coalesce admitted requests into batches and run them through
// a per-worker replica of the quantized nn::Model (layers cache
// forward state, so models are never shared across threads).
//
// Robustness machinery:
//   * deadlines — expired requests are shed before a batch executes
//     and again before results are delivered; a shed request still
//     resolves its future (outcome kShed), never silently vanishes;
//   * retry — a batch attempt is transiently failed when the worker's
//     own fault-injection detections exceed suspect_detections, when a
//     guard trips without recovering, or when the logits come back
//     non-finite. Failed attempts retry under decorrelated-jitter
//     exponential backoff; with retry_exact_failover the final attempt
//     runs on the golden exact multiplier (failover to the known-good
//     unit). Validation failures are permanent and never retried;
//   * health — a sliding window over batch attempts drives
//     Serving <-> Degraded with hysteresis; drain() moves to Draining
//     and then Stopped;
//   * graceful shutdown — drain() stops admission, lets the workers
//     finish every queued request, and joins them. The accounting
//     invariant  served + rejected + shed == submitted  holds at that
//     point by construction (every Request's promise resolves exactly
//     once through one choke point);
//   * supervision (nga::guard, opt-in via ServerConfig::supervision) —
//     a watchdog replaces hung workers (cooperative cancellation, the
//     in-flight batch re-queued under a bounded redelivery count),
//     per-replica circuit breakers quarantine persistently-bad
//     replicas onto the exact table and revalidate them against a
//     golden input set (reinstate or permanently retire), and an AIMD
//     limiter adapts the admitted in-flight count to observed p99
//     latency and shed rate.
//
// Observability (v2): obs counters serve.submitted/served/rejected/
// shed/retries/batches/failovers, the serve.queue.depth gauge,
// serve.latency_ms and serve.batch_size series, serve.exec/
// serve.backoff sections, and
//   * per-stage latency series serve.stage.{queue_wait,batch_fill,
//     exec,retry_backoff}_ms — one sample per request per stage, so
//     the bench JSON carries a full latency breakdown;
//   * request-scoped tracing: every submit allocates a TraceContext
//     (sampled at trace_sample_rate); sampled requests emit
//     queue_wait / batch_fill / exec / exec.failover / retry_backoff
//     spans plus a root request.<outcome> span, all on one lane per
//     request in the chrome-trace export (obs/trace.hpp);
//   * the numeric-health channel: each worker attributes NaR/
//     saturation/fault-detection/requant-clip counts per layer
//     (nn/health.hpp), the server aggregates them across workers
//     (numeric_health(), serve.layer.* counters) and feeds the
//     per-batch bad-events-per-MAC rate into HealthTracker, where it
//     can drive Serving <-> Degraded independently of request
//     failures (HealthConfig::degrade_numeric_rate);
//   * on drain, a Prometheus-style text exposition of the whole
//     registry is written to exposition_path when configured.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "guard/guard.hpp"
#include "nn/health.hpp"
#include "nn/model.hpp"
#include "nn/resilience.hpp"
#include "prof/prof.hpp"
#include "quality/shadow.hpp"
#include "serve/backoff.hpp"
#include "serve/health.hpp"
#include "serve/overload.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/retry_budget.hpp"

namespace nga::serve {

/// nga::guard supervision woven into the server (see guard/guard.hpp
/// and DESIGN.md "Supervision & self-healing"). All off by default;
/// existing configurations behave exactly as before.
struct SupervisionConfig {
  /// Master switch for the watchdog + per-replica circuit breakers.
  bool supervise = false;
  guard::WatchdogConfig watchdog;
  guard::BreakerConfig breaker;
  /// AIMD admission control; active when admission.enabled (usable
  /// with or without the watchdog/breakers).
  guard::AdmissionConfig admission;
  /// Golden inputs replayed by a breaker revalidation probe. The
  /// reference predictions come from the exact table at worker
  /// startup; the probe re-runs them down the suspect approximate
  /// path. Breakers need exact_fallback and kQuantApprox mode.
  int probe_samples = 6;
  /// Max prediction mismatches a passing probe may show.
  int probe_tolerance = 0;
  /// Where the probe's reference predictions come from. false (the
  /// default): the exact table — the probe then also flags legitimate
  /// approx-vs-exact drift on the golden inputs. true: the worker's
  /// OWN approximate path at startup, i.e. its clean-by-construction
  /// self — required for repair-driven reinstatement at
  /// probe_tolerance 0, where a fully repaired table must probe
  /// identical to its clean state even though it never agreed with the
  /// exact table on every argmax.
  bool probe_self_reference = false;

  /// Attach a wall-clock sampling profiler (prof::Sampler) to the
  /// server for its whole start()..drain() lifetime, ticking at this
  /// rate. The worker loop carries NGA_PROF_SCOPE frames, so samples
  /// resolve to worker/batch/exec stacks. 0 (the default) runs no
  /// sampler thread at all.
  double sampler_hz = 0.0;
  /// When non-empty (and sampler_hz > 0), drain() writes the sampler's
  /// collapsed-stack histogram here — flamegraph.pl / speedscope input.
  std::string collapsed_path;
};

/// nga::integrity wiring (see integrity/scrubber.hpp and DESIGN.md
/// "State integrity & scrubbing"). Only meaningful together with
/// ServerConfig::mul_factory: per-worker tables are the unit the
/// scrubber verifies, repairs, and — through the breaker probe flow —
/// reinstates. All off by default.
struct IntegrityConfig {
  /// Register each worker's own table with the process Scrubber (and
  /// unregister it when the worker exits).
  bool enabled = false;
  /// When a tripped breaker's probe comes due, deep-scrub the worker's
  /// table BEFORE the golden probe runs: persistent corruption is
  /// repaired in place, so the probe revalidates restored storage
  /// (repair -> reprobe -> reinstate). An unreproducible page forces
  /// the probe verdict to fail — the breaker retires the replica, which
  /// is correct because its storage cannot be restored.
  bool scrub_on_trip = true;
  /// > 0: start() launches the background scrub thread at this
  /// pages/sec budget and drain() stops it.
  double pages_per_sec = 0.0;
  /// Fault-domain tag for every scrub registration this server's
  /// workers make (nga::shard sets "shard<i>"). drain() purges the
  /// whole scope from the process Scrubber as a backstop, so a killed
  /// or failed-over shard can never leak registry entries — whatever
  /// order its worker threads exited in.
  std::string scope;
};

struct ServerConfig {
  int workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t max_batch = 8;
  /// How long a worker lingers for a batch to coalesce after the first
  /// request is in hand.
  std::chrono::microseconds batch_linger{200};

  /// Required input shape; submit() rejects anything else (kBadShape).
  int in_c = 0, in_h = 0, in_w = 0;

  nn::Mode mode = nn::Mode::kQuantExact;
  const nn::MulTable* mul = nullptr;  ///< active table (kQuantApprox)
  /// Builds one approximate table PER WORKER (kQuantApprox). When set,
  /// each worker serves from its own replica instead of the shared
  /// `mul` — persistent corruption (memflip) then damages one replica,
  /// not the fleet, and integrity scrubbing repairs replicas
  /// independently. The factory typically captures the owning
  /// ax::ApproxMult8 so the tables are regenerable (see nn::MulTable).
  std::function<std::shared_ptr<const nn::MulTable>()> mul_factory;
  /// Golden exact table: retry failover target and guard fallback.
  const nn::MulTable* exact_fallback = nullptr;
  /// Give each worker a ResilienceGuard over exact_fallback (layer-level
  /// recovery from PR 2, composing with the batch-level retry here).
  bool use_guard = false;

  /// CoDel-style sojourn control on the admission queue (queue.hpp):
  /// when the minimum queue delay stays above codel.target for a full
  /// codel.interval, the oldest requests are cut from the front
  /// (finished as kQueueDelay) so a standing queue cannot form. Off by
  /// default.
  CoDelConfig codel;

  /// Token-bucket retry budget: retries spend tokens that successes
  /// earn, so a retry storm cannot amplify overload (retry_budget.hpp).
  /// Enabled by default — the bucket's initial burst keeps isolated
  /// transient faults retryable exactly as before.
  RetryBudgetConfig retry_budget;

  /// Brownout ladder (overload.hpp). When overload.enabled, workers
  /// feed queue sojourn into an OverloadController and follow its tier:
  /// linger shrink, then progressively cheaper tables from
  /// brownout_tables, then fractional shed at the door.
  OverloadConfig overload;
  /// Cheaper approximate tables for the brownout rungs, one factory
  /// per rung, cheapest (highest-error) LAST. Same per-worker-replica
  /// contract as mul_factory; replicas are built lazily the first time
  /// a worker enters the rung.
  std::vector<std::function<std::shared_ptr<const nn::MulTable>()>>
      brownout_tables;

  /// Total batch executions a request may ride in; 1 disables retry.
  int max_attempts = 3;
  /// Run the last attempt on exact_fallback (when configured).
  bool retry_exact_failover = true;
  /// An attempt is transiently failed when this worker's fault
  /// detections during the batch exceed this count.
  util::u64 suspect_detections = 0;
  BackoffConfig backoff;
  util::u64 seed = 1;  ///< decorrelates the per-worker backoff jitter

  HealthConfig health;

  /// Fraction of requests traced end-to-end (head sampling at submit;
  /// see obs::start_trace). 0 disables request-scoped span recording —
  /// the stage-latency series and numeric-health channel stay on.
  double trace_sample_rate = 0.0;

  /// When non-empty, drain() writes a Prometheus-style text exposition
  /// of the metrics registry (obs::write_text_exposition) to this path.
  std::string exposition_path;

  /// Live scraping: when >= 0, start() brings up a prof::ExpositionServer
  /// on 127.0.0.1:<metrics_port> (0 = ephemeral; read the resolved port
  /// via Server::metrics_port()) serving GET /metrics for the whole
  /// serving lifetime; drain() tears it down. -1 (the default) runs no
  /// endpoint.
  int metrics_port = -1;

  /// Per-kernel performance attribution: give each worker a
  /// prof::LayerProfiler (scope "serve") and flush it per batch into
  /// the ProfRegistry — per-layer MACs/s and cycles/MAC land in the
  /// "prof" JSON section, prof.serve.* gauges, and the /metrics
  /// exposition. Requires an NGA_PROF=1 build to have any effect.
  bool profile_kernels = false;

  /// Builds one model replica per worker (trained weights restored,
  /// calibration done). Required.
  std::function<std::unique_ptr<nn::Model>()> model_factory;

  SupervisionConfig supervision;
  IntegrityConfig integrity;

  /// Shadow-execution quality telemetry (nga::quality). With
  /// quality.sample_rate > 0 (requires kQuantApprox + exact_fallback),
  /// a seeded fraction of served requests is re-executed on the golden
  /// exact table in a low-priority shadow lane AFTER their reply
  /// resolves, and per-tier delivered-accuracy bins land in quality.*
  /// metrics and the "quality" JSON section. Rate 0 (the default) is
  /// zero-cost: no lane, no sampling arithmetic, no quality.* metrics.
  quality::QualityConfig quality;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();  ///< drains if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spin up the worker pool and move Starting -> Serving.
  void start();

  /// Submit one sample with a latency budget (deadline = now + budget).
  /// The returned future ALWAYS resolves — immediately for rejections,
  /// otherwise when a worker delivers, sheds, or drain() completes.
  std::future<Response> submit(nn::Tensor x,
                               std::chrono::microseconds budget);
  std::future<Response> submit(nn::Tensor x, Clock::time_point deadline);
  /// As above, with a completion hook the layer above owns (see
  /// Request::on_finish): runs in finish() with the final Response on
  /// every terminal path, door rejects included. nga::shard uses it to
  /// release per-tenant budget tokens.
  std::future<Response> submit(nn::Tensor x, Clock::time_point deadline,
                               std::function<void(const Response&)> on_finish);

  /// Graceful shutdown: stop admission (further submits reject with
  /// kDraining), finish or shed every queued request, join the workers.
  /// Idempotent; after it returns, state() == kStopped and
  /// served + rejected + shed == submitted.
  void drain();

  State state() const { return state_.load(std::memory_order_acquire); }
  HealthTracker::Snapshot health() const { return health_.snapshot(); }

  struct Stats {
    util::u64 submitted = 0;
    util::u64 served = 0;
    util::u64 rejected = 0;
    util::u64 shed = 0;
    util::u64 retries = 0;  ///< extra batch executions beyond the first
    util::u64 batches = 0;  ///< batch executions, retries included
    util::u64 codel_dropped = 0;  ///< cut from the queue front (kQueueDelay)
    util::u64 overload_shed = 0;  ///< shed at the door on the Shed rung
    util::u64 budget_exhausted = 0;  ///< retries refused by the budget
  };
  Stats stats() const;

  /// Current overload-ladder tier (0 = Normal; see overload.hpp).
  int overload_tier() const { return overload_.tier(); }
  OverloadController::Stats overload_stats() const {
    return overload_.stats();
  }

  /// Shadow-lane accounting since start(); all zero with quality off.
  quality::ShadowLane::Stats quality_stats() const {
    return shadow_ ? shadow_->stats() : quality::ShadowLane::Stats{};
  }
  /// The quality-SLO verdict channel (observe-only: exported, never fed
  /// into the Serving <-> Degraded state machine this PR). The default
  /// verdict (no samples, nothing breached) when quality is off.
  quality::QualitySloTracker::Verdict quality_slo() const {
    return shadow_ ? shadow_->slo() : quality::QualitySloTracker::Verdict{};
  }

  /// Aggregated numeric-health accounting across all workers since
  /// start(): per-layer event counts (forward order, keyed
  /// "<index>.<layer name>") plus failover and batch totals. Mirrored
  /// into serve.layer.* / serve.failovers registry counters, so it also
  /// lands in the nga-bench-v1 JSON and the text exposition.
  struct NumericHealth {
    struct Layer {
      std::string name;
      nn::LayerHealthCounters counts;
    };
    std::vector<Layer> layers;
    util::u64 failovers = 0;  ///< exec attempts run on the exact table
    util::u64 batches = 0;    ///< batch attempts merged in
    nn::LayerHealthCounters total() const {
      nn::LayerHealthCounters t;
      for (const auto& l : layers) t += l.counts;
      return t;
    }
  };
  NumericHealth numeric_health() const;

  /// nga::guard supervision accounting since start(). All zero when
  /// supervision is off.
  struct GuardStats {
    util::u64 hangs_detected = 0;    ///< workers declared hung
    util::u64 workers_replaced = 0;  ///< successor workers spawned
    util::u64 requeues = 0;          ///< requests re-queued on replacement
    util::u64 redelivery_rejects = 0;  ///< over max_redeliveries
    util::u64 admission_rejects = 0;   ///< over the AIMD limit
    util::u64 quarantined_batches = 0;  ///< served on exact while not Closed
    util::u64 breaker_trips = 0;       ///< Closed -> Open
    util::u64 breaker_probes = 0;      ///< revalidation probes run
    util::u64 breaker_probe_failures = 0;
    util::u64 breaker_reinstated = 0;  ///< HalfOpen -> Closed
    util::u64 breaker_retired = 0;     ///< replicas permanently retired
    std::size_t admission_limit = 0;   ///< current AIMD limit (0 = off)
    // nga::integrity: the repair half of the probe flow.
    util::u64 trip_scrubs = 0;       ///< on-demand deep scrubs before probes
    util::u64 scrub_repaired = 0;    ///< pages repaired by trip scrubs
    util::u64 scrub_unreproducible = 0;  ///< pages that forced retirement
  };
  GuardStats guard_stats() const;

  std::size_t queue_depth() const { return queue_.size(); }

  /// Resolved /metrics port once start() brought the endpoint up
  /// (ServerConfig::metrics_port >= 0); -1 when the endpoint is off or
  /// failed to bind.
  int metrics_port() const {
    return metrics_server_ && metrics_server_->running()
               ? metrics_server_->port()
               : -1;
  }

 private:
  struct WorkerHandle {
    std::thread thread;
    std::shared_ptr<guard::WorkerSlot> slot;
  };

  void worker_main(std::shared_ptr<guard::WorkerSlot> slot);
  /// process_batch's @p prof may be null (profiling off / NGA_PROF=0).
  /// Spawn one worker (initial pool or watchdog replacement); appends
  /// to workers_ under workers_m_.
  void spawn_worker(int id, int generation);
  /// Replay the golden inputs down @p mul (the worker's suspect
  /// approximate path); true iff at most probe_tolerance predictions
  /// differ from @p ref AND the numeric-plausibility detector stayed
  /// silent during the replay (detections prove residual corruption
  /// even when every argmax survives it).
  bool run_probe(nn::Model& model, const std::vector<int>& ref,
                 const nn::MulTable* mul);
  /// @p tier is the overload-ladder tier this batch executes under;
  /// @p active_mul is already the tier's table (worker_main resolves
  /// the rung's replica before dispatch).
  void process_batch(nn::Model& model, nn::ResilienceGuard* guard,
                     DecorrelatedBackoff& backoff,
                     nn::LayerHealthRecorder& health_rec,
                     prof::LayerProfiler* prof, std::vector<Request>& batch,
                     Clock::time_point first_at, guard::WorkerSlot* slot,
                     guard::CircuitBreaker* breaker,
                     const nn::MulTable* active_mul, int tier = 0);
  /// Hand a cancelled batch's live requests back to the queue (bounded
  /// redelivery); called by a worker that is being replaced.
  void requeue_batch(std::vector<Request>& live);
  /// Fold one batch's per-layer health deltas into numeric_ and the
  /// serve.layer.* counters, then window-reset the recorder.
  void merge_numeric(nn::LayerHealthRecorder& rec, int attempts,
                     util::u64 failovers);
  /// The single accounting choke point: resolves the promise and bumps
  /// exactly one of served/rejected/shed.
  void finish(Request& rq, Response r);
  void maybe_update_state(bool degraded_now);

  ServerConfig cfg_;
  BoundedQueue<Request> queue_;
  HealthTracker health_;
  OverloadController overload_;
  RetryBudget retry_budget_;
  mutable std::mutex workers_m_;  ///< workers_ (watchdog replacement races drain)
  std::vector<WorkerHandle> workers_;
  std::unique_ptr<guard::Watchdog> watchdog_;
  std::unique_ptr<guard::AimdLimiter> limiter_;
  bool breakers_enabled_ = false;
  std::vector<nn::Tensor> golden_;  ///< probe input set (deterministic)
  std::atomic<State> state_{State::kStarting};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> drained_{false};
  std::atomic<u64> next_id_{1};
  std::atomic<u64> submitted_{0}, served_{0}, rejected_{0}, shed_{0},
      retries_{0}, batches_{0};
  std::atomic<u64> codel_dropped_{0}, overload_shed_{0}, budget_exhausted_{0};
  // Guard accounting (atomics: workers, monitor, and submitters race).
  std::atomic<u64> hangs_detected_{0}, workers_replaced_{0}, requeues_{0},
      redelivery_rejects_{0}, admission_rejects_{0}, quarantined_batches_{0},
      breaker_trips_{0}, breaker_probes_{0}, breaker_probe_failures_{0},
      breaker_reinstated_{0}, breaker_retired_{0}, trip_scrubs_{0},
      scrub_repaired_{0}, scrub_unreproducible_{0};
  bool scrubber_started_ = false;  ///< this server owns the scrub thread
  mutable std::mutex numeric_m_;
  NumericHealth numeric_;
  std::mutex drain_m_;
  // Performance-attribution attachments (nga::prof), both optional.
  std::unique_ptr<prof::ExpositionServer> metrics_server_;
  std::unique_ptr<prof::Sampler> sampler_;
  /// Shadow-execution quality lane (nga::quality); null at rate 0 — the
  /// null check is the serving path's entire quality cost.
  std::unique_ptr<quality::ShadowLane> shadow_;
};

}  // namespace nga::serve
