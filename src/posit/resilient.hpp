// Graceful degradation for quire accumulation.
//
// The quire's NaR poisoning is the standard's correct answer — one NaR
// term makes the exact sum meaningless — but a serving system wants an
// answer for the representable part of the dot product rather than a
// poisoned pipeline (Section V frames NaR as the robustness hook; this
// is the recovery half). resilient_dot() runs the fast exact path and,
// only if the quire comes back poisoned, degrades to naive
// one-rounding-per-term accumulation that skips the NaR terms.
#pragma once

#include <cstddef>
#include <span>

#include "obs/registry.hpp"
#include "posit/posit.hpp"

namespace nga::ps {

struct ResilientDotStats {
  bool fell_back = false;        ///< quire was poisoned; naive path ran
  std::size_t skipped = 0;       ///< NaR terms dropped in the fallback
};

/// Dot product of a and b (shorter length wins) via the quire; on NaR
/// poisoning, recompute with naive accumulation skipping NaR terms.
/// Counts recoveries in the "fault.recovered" obs counter (maintained
/// directly — available under any build flags).
template <unsigned N, unsigned ES>
posit<N, ES> resilient_dot(std::span<const posit<N, ES>> a,
                           std::span<const posit<N, ES>> b,
                           ResilientDotStats* stats = nullptr) {
  using P = posit<N, ES>;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  quire<N, ES> q;
  for (std::size_t i = 0; i < n; ++i) q.add_product(a[i], b[i]);
  if (!q.is_nar()) {
    if (stats) *stats = {};
    return q.to_posit();
  }
  static obs::Counter& recovered =
      obs::MetricsRegistry::instance().counter("fault.recovered");
  recovered.inc();
  ResilientDotStats st;
  st.fell_back = true;
  P sum = P::zero();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].is_nar() || b[i].is_nar()) {
      ++st.skipped;
      continue;
    }
    sum = sum + a[i] * b[i];
  }
  if (stats) *stats = st;
  return sum;
}

}  // namespace nga::ps
