// Posit arithmetic (Gustafson & Yonemoto, 2017) — the Section V format.
//
// `posit<N,ES>` is a tapered-precision number on a two's-complement ring:
//   * 0   encodes as 00...0, NaR (Not-a-Real) as 10...0 — the only two
//     exception values (Fig. 7 of the paper);
//   * a positive value has fields  0 | regime | exponent(ES) | fraction
//     where the regime is a run of identical bits encoding a power of
//     useed = 2^(2^ES);
//   * a negative value is the two's complement of its magnitude's
//     encoding, so integer compare IS posit compare and negation IS
//     two's-complement negation (both exploited by the paper and both
//     property-tested exhaustively in tests/posit/).
//
// Rounding follows the posit standard: round-to-nearest, ties-to-even on
// the encoding lattice; magnitudes above maxpos saturate to maxpos and
// magnitudes below minpos saturate to minpos — a posit operation never
// overflows to NaR and never underflows to zero.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "util/bits.hpp"
#include "util/wideint.hpp"

namespace nga::ps {

using util::i128;
using util::i64;
using util::u128;
using util::u64;

/// Decoded posit fields; value = (-1)^sign * (sig/2^63) * 2^scale with
/// sig normalized so bit 63 is the hidden bit.
struct PositUnpacked {
  bool sign = false;
  int scale = 0;
  u64 sig = 0;
  bool is_zero = false;
  bool is_nar = false;
};

template <unsigned N, unsigned ES>
class posit {
  static_assert(N >= 3 && N <= 64, "posit width 3..64 bits");
  static_assert(ES <= 4, "exponent size 0..4 bits");

 public:
  using storage_t = util::uint_least_t<N>;

  static constexpr unsigned kBits = N;
  static constexpr unsigned kEs = ES;
  /// useed = 2^(2^ES): the regime's radix.
  static constexpr int kUseedLog2 = 1 << ES;
  /// scale of maxpos = -scale of minpos.
  static constexpr int kMaxScale = int(N - 2) * kUseedLog2;

  constexpr posit() = default;
  explicit posit(double v) { *this = from_double(v); }

  static constexpr posit from_bits(storage_t bits) {
    posit p;
    p.bits_ = storage_t(u64(bits) & util::mask64(N));
    return p;
  }
  constexpr storage_t bits() const { return bits_; }

  // The ring's two exception values and the extremes -------------------
  static constexpr posit zero() { return from_bits(0); }
  static constexpr posit nar() {
    return from_bits(storage_t(u64{1} << (N - 1)));
  }
  static constexpr posit one() {
    return from_bits(storage_t(u64{1} << (N - 2)));
  }
  static constexpr posit maxpos() {
    return from_bits(storage_t(util::mask64(N - 1)));
  }
  static constexpr posit minpos() { return from_bits(1); }

  constexpr bool is_zero() const { return bits_ == 0; }
  constexpr bool is_nar() const { return u64(bits_) == (u64{1} << (N - 1)); }
  constexpr bool is_negative() const {
    return !is_nar() && ((u64(bits_) >> (N - 1)) & 1) != 0;
  }

  // Unpack / pack --------------------------------------------------------
  PositUnpacked unpack() const {
    PositUnpacked r;
    if (is_zero()) {
      r.is_zero = true;
      return r;
    }
    if (is_nar()) {
      r.is_nar = true;
      return r;
    }
    const u64 raw = NGA_FAULT_BITS(fault::Site::kPositDecode, N, u64(bits_));
    r.sign = ((raw >> (N - 1)) & 1) != 0;
    const u64 mag = r.sign ? util::twos_complement(raw, N) : raw;
    // Scan the regime starting below the sign bit.
    const unsigned top = N - 2;
    const unsigned r0 = util::bit_of(mag, top);
    unsigned run = 1;
    while (run <= top && util::bit_of(mag, top - run) == r0) ++run;
    const int k = r0 ? int(run) - 1 : -int(run);
    // Bits remaining below the terminator (terminator may be cut off).
    int rem = int(top) - int(run);
    if (rem < 0) rem = 0;
    unsigned e = 0;
    unsigned frac_bits = 0;
    u64 frac = 0;
    if (rem > 0) {
      const unsigned ebits = std::min<unsigned>(ES, unsigned(rem));
      e = unsigned((mag >> (unsigned(rem) - ebits)) & util::mask64(ebits));
      // Exponent bits cut off at the end are zeros (standard).
      e <<= (ES - ebits);
      frac_bits = unsigned(rem) - ebits;
      frac = mag & util::mask64(frac_bits);
    }
    r.scale = k * kUseedLog2 + int(e);
    r.sig = (u64{1} << 63) | (frac_bits ? frac << (63 - frac_bits) : 0);
    return r;
  }

  /// Round-and-pack onto the posit lattice. @p sig has the hidden bit at
  /// position 63 (sig != 0); @p sticky carries discarded information.
  static posit round_pack(bool sign, int scale, u64 sig, bool sticky) {
    NGA_OBS_COUNT("posit.round");
    if (scale >= kMaxScale) {
      NGA_OBS_COUNT("posit.round.saturate");
      return sign ? -maxpos() : maxpos();
    }
    if (scale < -kMaxScale) {
      NGA_OBS_COUNT("posit.round.saturate");
      return sign ? -minpos() : minpos();
    }

    const int k = scale >> ES;  // floor division (arithmetic shift)
    const unsigned e = unsigned(scale - (k << ES));
    // Emit the body stream MSB-first: regime, terminator, exponent,
    // fraction. Position 0..N-2 land in the body, N-1 is the guard,
    // beyond that ORs into sticky.
    u64 body = 0;
    bool guard = false;
    unsigned pos = 0;
    auto emit = [&](unsigned bit) {
      if (pos < N - 1)
        body = (body << 1) | bit;
      else if (pos == N - 1)
        guard = bit != 0;
      else
        sticky = sticky || bit != 0;
      ++pos;
    };
    if (k >= 0) {
      for (int i = 0; i <= k; ++i) emit(1);
      emit(0);
    } else {
      for (int i = 0; i < -k; ++i) emit(0);
      emit(1);
    }
    for (unsigned i = 0; i < ES; ++i) emit(unsigned(e >> (ES - 1 - i)) & 1u);
    for (int i = 62; i >= 0; --i) emit(unsigned(sig >> i) & 1u);
    // Left-justify if the stream was shorter than the body (cannot
    // happen: regime+exp+63 fraction bits always >= N-1 for N <= 64).
    if (pos < N - 1) body <<= (N - 1 - pos);

    if (guard || sticky) NGA_OBS_COUNT("posit.round.inexact");
    if (guard && (sticky || (body & 1))) ++body;
    // body is now the magnitude encoding in N-1 bits (carry to the sign
    // position is impossible: scale >= kMaxScale saturated above).
    const u64 enc = sign ? util::twos_complement(body, N) : body;
    return from_bits(
        storage_t(NGA_FAULT_BITS(fault::Site::kPositEncode, N, enc)));
  }

  // Arithmetic -----------------------------------------------------------
  static posit add(posit a, posit b) {
    if (a.is_nar() || b.is_nar()) {
      NGA_OBS_COUNT("posit.nar");
      return nar();
    }
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;
    PositUnpacked ua = a.unpack(), ub = b.unpack();
    if (ua.scale < ub.scale ||
        (ua.scale == ub.scale && ua.sig < ub.sig))
      std::swap(ua, ub);
    const unsigned d = unsigned(ua.scale - ub.scale);
    u128 big = u128(ua.sig) << 32;
    u128 small = u128(ub.sig) << 32;
    bool sticky = false;
    small = util::shr_sticky128(small, d, sticky);
    u128 sum;
    if (ua.sign == ub.sign) {
      sum = big + small;
    } else {
      sum = big - small;
      if (sticky) sum -= 1;  // borrow the truncated tail
      if (sum == 0) return zero();
    }
    const int top = util::msb_index128(sum);
    const int scale = ua.scale + (top - 95);
    u64 sig;
    if (top >= 63) {
      const unsigned sh = unsigned(top - 63);
      sig = u64(sum >> sh);
      sticky = sticky || (sum & util::mask128(sh)) != 0;
    } else {
      sig = u64(sum) << (63 - top);
    }
    return round_pack(ua.sign, scale, sig, sticky);
  }

  static posit sub(posit a, posit b) { return add(a, -b); }

  static posit mul(posit a, posit b) {
    if (a.is_nar() || b.is_nar()) {
      NGA_OBS_COUNT("posit.nar");
      return nar();
    }
    if (a.is_zero() || b.is_zero()) return zero();
    const PositUnpacked ua = a.unpack(), ub = b.unpack();
    const bool sign = ua.sign != ub.sign;
    const u128 p = u128(ua.sig) * ub.sig;
    int scale = ua.scale + ub.scale;
    u64 sig;
    bool sticky;
    if (p >> 127) {
      sig = u64(p >> 64);
      sticky = u64(p) != 0;
      ++scale;
    } else {
      sig = u64(p >> 63);
      sticky = (u64(p) & util::mask64(63)) != 0;
    }
    return round_pack(sign, scale, sig, sticky);
  }

  static posit div(posit a, posit b) {
    if (a.is_nar() || b.is_nar() || b.is_zero()) {
      NGA_OBS_COUNT("posit.nar");
      return nar();
    }
    if (a.is_zero()) return zero();
    const PositUnpacked ua = a.unpack(), ub = b.unpack();
    const bool sign = ua.sign != ub.sign;
    int scale = ua.scale - ub.scale;
    u128 num;
    if (ua.sig >= ub.sig) {
      num = u128(ua.sig) << 63;
    } else {
      num = u128(ua.sig) << 64;
      --scale;
    }
    const u64 q = u64(num / ub.sig);
    const bool sticky = (num % ub.sig) != 0;
    return round_pack(sign, scale, q, sticky);
  }

  static posit sqrt(posit a) {
    if (a.is_nar() || a.is_negative()) {
      NGA_OBS_COUNT("posit.nar");
      return nar();
    }
    if (a.is_zero()) return zero();
    const PositUnpacked ua = a.unpack();
    const bool odd = (ua.scale & 1) != 0;
    const u128 x = u128(ua.sig) << (odd ? 64 : 63);
    const int rscale = (ua.scale - (odd ? 1 : 0)) / 2;
    u64 s = 0;
    for (int b = 63; b >= 0; --b) {
      const u64 cand = s | (u64{1} << b);
      if (u128(cand) * cand <= x) s = cand;
    }
    const bool sticky = u128(s) * s != x;
    return round_pack(false, rscale, s, sticky);
  }

  /// Fused multiply-add with a single rounding (via an exact 256-bit
  /// window — a one-shot quire).
  static posit fma(posit a, posit b, posit c);

  // Operators ------------------------------------------------------------
  friend posit operator+(posit a, posit b) { return add(a, b); }
  friend posit operator-(posit a, posit b) { return sub(a, b); }
  friend posit operator*(posit a, posit b) { return mul(a, b); }
  friend posit operator/(posit a, posit b) { return div(a, b); }

  /// Negation is exactly two's-complement negation on the ring — no
  /// decode needed (Section V). NaR and zero map to themselves.
  constexpr posit operator-() const {
    return from_bits(storage_t(util::twos_complement(u64(bits_), N)));
  }

  /// |x|: NaR maps to itself.
  constexpr posit abs() const { return is_negative() ? -*this : *this; }

  /// The next value counterclockwise on the ring (toward +); wraps
  /// through NaR like the ring plot of Fig. 7.
  constexpr posit next() const {
    return from_bits(storage_t((u64(bits_) + 1) & util::mask64(N)));
  }
  constexpr posit prior() const {
    return from_bits(storage_t((u64(bits_) - 1) & util::mask64(N)));
  }

  // Comparison: identical to two's-complement integer comparison.
  // NaR compares equal to itself and less than all other values.
  constexpr bool operator==(const posit&) const = default;
  constexpr std::strong_ordering operator<=>(const posit& o) const {
    return util::sign_extend(u64(bits_), N) <=>
           util::sign_extend(u64(o.bits_), N);
  }

  // Conversions ----------------------------------------------------------
  double to_double() const {
    if (is_zero()) return 0.0;
    if (is_nar()) return std::numeric_limits<double>::quiet_NaN();
    const PositUnpacked u = unpack();
    const double mag = std::ldexp(double(u.sig), u.scale - 63);
    return u.sign ? -mag : mag;
  }

  static posit from_double(double v) {
    if (std::isnan(v) || std::isinf(v)) return nar();
    if (v == 0.0) return zero();
    const bool sign = std::signbit(v);
    int e = 0;
    const double m = std::frexp(std::fabs(v), &e);
    const u64 sig = u64(std::ldexp(m, 64));
    return round_pack(sign, e - 1, sig, false);
  }

  /// Exact conversion to a signed fixed-point window covering the whole
  /// dynamic range: bit i has weight 2^(i - kMaxScale); width is
  /// 2*kMaxScale + 2 bits (Section V: 58 bits for posit<16,1>).
  /// Precondition: the value is finite (not NaR).
  util::WideInt<4> to_fixed_window() const
    requires(kMaxScale <= 120)
  {
    util::WideInt<4> w;
    if (is_zero()) return w;
    const PositUnpacked u = unpack();
    // sig has the hidden bit at 63 with weight 2^scale; place the hidden
    // bit at index scale + kMaxScale.
    const int hidden_idx = u.scale + kMaxScale;
    for (int i = 0; i < 64; ++i) {
      const int idx = hidden_idx - 63 + i;
      if (idx >= 0 && util::bit_of(u.sig, unsigned(i)))
        w.set_bit(std::size_t(idx), true);
    }
    return u.sign ? -w : w;
  }

  /// Total width of the fixed-point window above (paper: 58 for 16-bit).
  static constexpr int fixed_window_bits() { return 2 * kMaxScale + 2; }

  /// Round a fixed-point window value (weights as in to_fixed_window)
  /// back onto the posit lattice.
  static posit from_fixed_window(util::WideInt<4> w)
    requires(kMaxScale <= 120)
  {
    if (w.is_zero()) return zero();
    const bool sign = w.is_negative();
    if (sign) w = -w;
    const int top = w.msb();
    const int scale = top - kMaxScale;
    u64 sig;
    bool sticky = false;
    if (top >= 63) {
      sig = w.extract64(std::size_t(top - 63));
      sticky = w.any_below(std::size_t(top - 63));
    } else {
      sig = w.extract64(0) << (63 - top);
    }
    return round_pack(sign, scale, sig, sticky);
  }

  std::string to_string() const {
    if (is_nar()) return "NaR";
    return std::to_string(to_double());
  }

 private:
  storage_t bits_ = 0;
};

// Standard-ish aliases used throughout the experiments.
using posit8 = posit<8, 0>;     ///< 8-bit posit es=0 (2017-paper flavour)
using posit16 = posit<16, 1>;   ///< 16-bit posit es=1 (dynamic range 2^±28)
using posit32 = posit<32, 2>;   ///< 32-bit posit es=2
using posit8_2 = posit<8, 2>;   ///< 8-bit posit es=2 (2022-standard flavour)

// ---------------------------------------------------------------------
// Quire: the exact fixed-point accumulator.
//
// Sums of products of posits accumulate with NO rounding; only the final
// conversion back to posit rounds. The window spans [minpos^2, maxpos^2]
// plus carry-guard bits, matching the standard's 16n-bit quire for ES=2.
// ---------------------------------------------------------------------

template <unsigned N, unsigned ES>
class quire {
 public:
  using posit_t = posit<N, ES>;
  /// LSB weight: minpos^2 = 2^(-2*kMaxScale).
  static constexpr int kLsbWeight = -2 * posit_t::kMaxScale;
  /// Bits: full product window + 30 carry-guard bits + sign, rounded to
  /// whole 64-bit words. (For posit<16,2> this is 256 = 16n, matching
  /// the posit standard's quire.)
  static constexpr int kValueBits = 4 * posit_t::kMaxScale + 2;
  static constexpr std::size_t kWords =
      std::size_t(kValueBits + 30 + 63) / 64;
  using word_t = util::WideInt<kWords>;

  constexpr quire() = default;

  void clear() {
    acc_ = word_t{};
    nar_ = false;
  }
  bool is_nar() const { return nar_; }
  bool is_zero() const { return !nar_ && acc_.is_zero(); }

  /// acc += a*b, exactly. NaR poisons the quire until clear().
  void add_product(posit_t a, posit_t b) { fused(a, b, /*negate=*/false); }
  /// acc -= a*b, exactly.
  void sub_product(posit_t a, posit_t b) { fused(a, b, /*negate=*/true); }
  /// acc += a, exactly.
  void add(posit_t a) { fused(a, posit_t::one(), false); }
  void sub(posit_t a) { fused(a, posit_t::one(), true); }

  /// Round the exact sum back onto the posit lattice.
  posit_t to_posit() const {
    if (nar_) return posit_t::nar();
    if (acc_.is_zero()) return posit_t::zero();
    word_t w = acc_;
    const bool sign = w.is_negative();
    if (sign) w = -w;
    const int top = w.msb();
    const int scale = top + kLsbWeight;
    u64 sig;
    bool sticky = false;
    if (top >= 63) {
      sig = w.extract64(std::size_t(top - 63));
      sticky = w.any_below(std::size_t(top - 63));
    } else {
      sig = w.extract64(0) << (63 - top);
    }
    return posit_t::round_pack(sign, scale, sig, sticky);
  }

 private:
  void fused(posit_t a, posit_t b, bool negate) {
    NGA_OBS_COUNT("posit.quire.accumulate");
    if (a.is_nar() || b.is_nar()) {
      NGA_OBS_COUNT("posit.nar");
      nar_ = true;
      return;
    }
    if (a.is_zero() || b.is_zero() || nar_) return;
    if (NGA_FAULT_SKIP(fault::Site::kQuireAccumulate)) return;
    const PositUnpacked ua = a.unpack(), ub = b.unpack();
    const u128 p = u128(ua.sig) * ub.sig;  // bit0 weight 2^(sa+sb-126)
    const int w0 = ua.scale + ub.scale - 126;
    int idx = w0 - kLsbWeight;
    u128 pp = p;
    if (idx < 0) {
      // The dropped bits are guaranteed zero: posit significands carry
      // at most the bits the window was sized for.
      pp >>= unsigned(-idx);
      idx = 0;
    }
    word_t term;
    term.set_word(0, u64(pp));
    if constexpr (kWords >= 2) term.set_word(1, u64(pp >> 64));
    term = term << std::size_t(idx);
    const bool neg = (ua.sign != ub.sign) != negate;
    acc_ = neg ? acc_ - term : acc_ + term;
  }

  word_t acc_{};
  bool nar_ = false;
};

template <unsigned N, unsigned ES>
posit<N, ES> posit<N, ES>::fma(posit a, posit b, posit c) {
  if (a.is_nar() || b.is_nar() || c.is_nar()) return nar();
  quire<N, ES> q;
  q.add_product(a, b);
  q.add(c);
  return q.to_posit();
}

}  // namespace nga::ps
