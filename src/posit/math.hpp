// Elementary functions and integer conversions for posits.
//
// Functions are computed through double intermediates and rounded onto
// the posit lattice once. For N <= 32 the double carries at least 23
// more significand bits than the posit, so results are faithful
// (< 1 ulp) and in practice correctly rounded except within a hair of
// a tie; tests bound the error against __float128 references. NaR
// propagates; domain errors (log of a negative, etc.) produce NaR.
#pragma once

#include <cmath>

#include "posit/posit.hpp"

namespace nga::ps {

namespace detail {
template <unsigned N, unsigned ES, class F>
posit<N, ES> lift(posit<N, ES> x, F&& f) {
  static_assert(N <= 32, "double intermediates need 21+ guard bits");
  if (x.is_nar()) return posit<N, ES>::nar();
  const double r = f(x.to_double());
  if (std::isnan(r) || std::isinf(r)) return posit<N, ES>::nar();
  return posit<N, ES>::from_double(r);
}
}  // namespace detail

template <unsigned N, unsigned ES>
posit<N, ES> exp(posit<N, ES> x) {
  return detail::lift(x, [](double v) { return std::exp(v); });
}
template <unsigned N, unsigned ES>
posit<N, ES> log(posit<N, ES> x) {
  return detail::lift(x, [](double v) { return std::log(v); });
}
template <unsigned N, unsigned ES>
posit<N, ES> log2(posit<N, ES> x) {
  return detail::lift(x, [](double v) { return std::log2(v); });
}
template <unsigned N, unsigned ES>
posit<N, ES> sin(posit<N, ES> x) {
  return detail::lift(x, [](double v) { return std::sin(v); });
}
template <unsigned N, unsigned ES>
posit<N, ES> cos(posit<N, ES> x) {
  return detail::lift(x, [](double v) { return std::cos(v); });
}
template <unsigned N, unsigned ES>
posit<N, ES> tanh(posit<N, ES> x) {
  return detail::lift(x, [](double v) { return std::tanh(v); });
}
template <unsigned N, unsigned ES>
posit<N, ES> atan(posit<N, ES> x) {
  return detail::lift(x, [](double v) { return std::atan(v); });
}
template <unsigned N, unsigned ES>
posit<N, ES> pow(posit<N, ES> x, posit<N, ES> y) {
  if (x.is_nar() || y.is_nar()) return posit<N, ES>::nar();
  const double r = std::pow(x.to_double(), y.to_double());
  if (std::isnan(r) || std::isinf(r)) return posit<N, ES>::nar();
  return posit<N, ES>::from_double(r);
}

/// Reciprocal: correctly rounded (via the division path, not double).
template <unsigned N, unsigned ES>
posit<N, ES> recip(posit<N, ES> x) {
  return posit<N, ES>::div(posit<N, ES>::one(), x);
}

/// Round to the nearest integer (ties to even), staying a posit.
template <unsigned N, unsigned ES>
posit<N, ES> rint(posit<N, ES> x) {
  if (x.is_nar()) return x;
  return posit<N, ES>::from_double(std::nearbyint(x.to_double()));
}

/// Convert to a signed 64-bit integer (RNE; saturates at the int64
/// range; NaR maps to the most negative integer, matching the posit
/// standard's convention).
template <unsigned N, unsigned ES>
util::i64 to_int(posit<N, ES> x) {
  if (x.is_nar()) return std::numeric_limits<util::i64>::min();
  const double v = std::nearbyint(x.to_double());
  if (v >= 9.2233720368547758e18) return std::numeric_limits<util::i64>::max();
  if (v <= -9.2233720368547758e18) return std::numeric_limits<util::i64>::min();
  return util::i64(v);
}

/// Convert from a signed integer with one rounding.
template <unsigned N, unsigned ES>
posit<N, ES> from_int(util::i64 v) {
  if (v == 0) return posit<N, ES>::zero();
  const bool neg = v < 0;
  const util::u64 mag = neg ? util::u64(-(v + 1)) + 1 : util::u64(v);
  const int top = util::msb_index(mag);
  util::u64 sig;
  bool sticky = false;
  if (top >= 63) {
    sig = mag;  // top == 63
  } else {
    sig = mag << (63 - top);
  }
  return posit<N, ES>::round_pack(neg, top, sig, sticky);
}

}  // namespace nga::ps
