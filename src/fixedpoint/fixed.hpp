// Signed two's-complement fixed-point arithmetic.
//
// `fixed<W,F>` is the compile-time user-facing type (W total bits including
// the sign, F fraction bits) used by the format-comparison experiments
// (Figs. 9/10) and by the posit add-via-fixed-point equivalence test the
// paper sketches in Section V. Overflow and rounding behaviour are policies.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "util/bits.hpp"

namespace nga::fx {

using util::i64;
using util::i128;
using util::u64;

enum class Overflow { kSaturate, kWrap };
enum class Rounding { kNearestEven, kTruncate };

/// @tparam W total width in bits (2..63), sign included
/// @tparam F fraction bits (0..W-1)
template <unsigned W, unsigned F, Overflow OV = Overflow::kSaturate,
          Rounding RD = Rounding::kNearestEven>
class fixed {
  static_assert(W >= 2 && W <= 63);
  static_assert(F < W);

 public:
  static constexpr unsigned kWidth = W;
  static constexpr unsigned kFraction = F;
  static constexpr i64 kRawMax = (i64{1} << (W - 1)) - 1;
  static constexpr i64 kRawMin = -(i64{1} << (W - 1));

  constexpr fixed() = default;

  /// Value-preserving construction from double, honouring the policies.
  explicit fixed(double v) : raw_(quantize(v)) {}

  static constexpr fixed from_raw(i64 raw) {
    fixed f;
    f.raw_ = clamp_raw(raw);
    return f;
  }

  constexpr i64 raw() const { return raw_; }
  constexpr double to_double() const {
    return double(raw_) * std::pow(2.0, -double(F));
  }

  static constexpr fixed max() { return from_raw(kRawMax); }
  static constexpr fixed min() { return from_raw(kRawMin); }
  /// Smallest positive representable value (one ULP).
  static constexpr fixed ulp() { return from_raw(1); }

  constexpr fixed operator+(fixed o) const {
    return from_overflowing(i128(raw_) + o.raw_);
  }
  constexpr fixed operator-(fixed o) const {
    return from_overflowing(i128(raw_) - o.raw_);
  }
  constexpr fixed operator-() const { return from_overflowing(-i128(raw_)); }

  /// Full-precision product rounded back to F fraction bits.
  constexpr fixed operator*(fixed o) const {
    const i128 p = i128(raw_) * o.raw_;  // 2F fraction bits
    return from_overflowing(round_shift(p, F));
  }

  /// Quotient rounded to F fraction bits. Division by zero saturates to
  /// the signed extreme matching the numerator (hardware-style behaviour).
  constexpr fixed operator/(fixed o) const {
    if (o.raw_ == 0) return raw_ < 0 ? min() : max();
    const i128 num = i128(raw_) << (F + 1);  // one guard bit
    i128 q = num / o.raw_;
    const bool neg = q < 0;
    if (neg) q = -q;
    // q has F+1 fraction... actually 1 guard bit: round to nearest away
    // from the guard, ties resolved to even via the sticky remainder.
    const bool guard = (q & 1) != 0;
    const bool sticky = (num % o.raw_) != 0;
    i128 r = q >> 1;
    if (guard && (sticky || (r & 1))) ++r;
    return from_overflowing(neg ? -r : r);
  }

  constexpr bool operator==(const fixed&) const = default;
  constexpr std::strong_ordering operator<=>(const fixed& o) const {
    return raw_ <=> o.raw_;
  }

  std::string to_string() const { return std::to_string(to_double()); }

 private:
  static constexpr i64 clamp_raw(i64 raw) {
    if constexpr (OV == Overflow::kSaturate) {
      if (raw > kRawMax) return kRawMax;
      if (raw < kRawMin) return kRawMin;
      return raw;
    } else {
      const u64 m = util::mask64(W);
      return util::sign_extend(u64(raw) & m, W);
    }
  }

  static constexpr fixed from_overflowing(i128 raw) {
    if constexpr (OV == Overflow::kSaturate) {
      if (raw > i128(kRawMax)) return from_raw(kRawMax);
      if (raw < i128(kRawMin)) return from_raw(kRawMin);
      return from_raw(i64(raw));
    } else {
      return from_raw(clamp_raw(i64(u64(static_cast<u128_t>(raw)))));
    }
  }

  using u128_t = util::u128;

  /// Shift right by @p s with the configured rounding.
  static constexpr i128 round_shift(i128 v, unsigned s) {
    if (s == 0) return v;
    if constexpr (RD == Rounding::kTruncate) {
      return v >> s;  // arithmetic: rounds toward -inf
    } else {
      const i128 floor_q = v >> s;
      const u128_t rem = static_cast<u128_t>(v) & util::mask128(s);
      const u128_t half = u128_t{1} << (s - 1);
      if (rem > half || (rem == half && (floor_q & 1))) return floor_q + 1;
      return floor_q;
    }
  }

  i64 quantize(double v) const {
    if (std::isnan(v)) return 0;
    const double scaled = std::ldexp(v, int(F));
    if constexpr (RD == Rounding::kNearestEven) {
      const double r = std::nearbyint(scaled);  // default mode: RNE
      if (r >= double(kRawMax)) return kRawMax;
      if (r <= double(kRawMin)) return kRawMin;
      return clamp_raw(i64(r));
    } else {
      const double r = std::trunc(scaled);
      if (r >= double(kRawMax)) return kRawMax;
      if (r <= double(kRawMin)) return kRawMin;
      return clamp_raw(i64(r));
    }
  }

  i64 raw_ = 0;
};

/// 16-bit Q7.8 (sign + 7 integer + 8 fraction) — the "fixed16" of Fig. 9.
using fixed16 = fixed<16, 8>;

// ---------------------------------------------------------------------
// Runtime fixed-point formats, FloPoCo style: a value is a signed or
// unsigned integer whose bit i has weight 2^(lsb + i). Operator
// generators (src/opgen) carry these descriptors through their error
// analyses instead of instantiating templates per candidate width.
// ---------------------------------------------------------------------

struct FixFormat {
  int msb = 0;          ///< weight of the most significant bit (sign bit if signed)
  int lsb = 0;          ///< weight of the least significant bit
  bool is_signed = true;

  int width() const { return msb - lsb + 1; }
  double ulp() const { return std::pow(2.0, lsb); }
  double max_value() const {
    return is_signed ? std::pow(2.0, msb) - ulp() : std::pow(2.0, msb + 1) - ulp();
  }
  double min_value() const { return is_signed ? -std::pow(2.0, msb) : 0.0; }
  bool operator==(const FixFormat&) const = default;
};

/// A runtime fixed-point value: integer mantissa + format.
struct FixValue {
  i64 mantissa = 0;
  FixFormat fmt;

  double to_double() const { return double(mantissa) * fmt.ulp(); }

  /// Round-to-nearest-even quantization of @p x into @p f.
  static FixValue quantize(double x, const FixFormat& f) {
    const double scaled = std::ldexp(x, -f.lsb);
    double r = std::nearbyint(scaled);
    const double hi = f.is_signed ? std::ldexp(1.0, f.width() - 1) - 1
                                  : std::ldexp(1.0, f.width()) - 1;
    const double lo = f.is_signed ? -std::ldexp(1.0, f.width() - 1) : 0.0;
    if (r > hi) r = hi;
    if (r < lo) r = lo;
    return FixValue{i64(r), f};
  }
};

}  // namespace nga::fx
