// Approximate 8x8 multipliers (Section IV, Table II).
//
// The paper samples 10 multipliers from the EvoApprox8B library; those
// evolved netlists are not redistributable here, so this module provides
// 10 hand-designed approximate multipliers spanning the same error range
// (MRE 0.03% .. ~19%, Table II) using the classic families the
// literature evolves from: partial-product truncation, lower-part OR
// adders (LOA), broken carry arrays, approximate 4:2 compression,
// dynamic-range segmentation (DRUM-like) and Mitchell's logarithmic
// multiplication. Every multiplier has BOTH a behavioural model and a
// gate-level netlist; the two are verified identical over all 65536
// input pairs, and the netlist drives the shared switching-energy model
// that produces Table II's "Energy Saving %" column.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hwmodel/netlist.hpp"
#include "util/bits.hpp"

namespace nga::ax {

using util::u16;
using util::u64;
using util::u8;

/// One unsigned 8x8 -> 16 approximate multiplier.
class ApproxMult8 {
 public:
  virtual ~ApproxMult8() = default;
  virtual std::string name() const = 0;
  /// Behavioural model.
  virtual u16 multiply(u8 a, u8 b) const = 0;
  /// Gate-level netlist (16 inputs a[0..7],b[0..7]; 16 outputs).
  virtual hw::Netlist netlist() const = 0;
};

/// Exhaustive error metrics over all 2^16 input pairs (the Table II
/// error columns).
struct ErrorMetrics {
  double mre_percent = 0.0;  ///< mean relative error (nonzero products)
  double mae = 0.0;          ///< mean absolute error
  double wce = 0.0;          ///< worst-case absolute error
  double error_rate = 0.0;   ///< fraction of pairs with any error
};
ErrorMetrics measure_error(const ApproxMult8& m);

/// Energy per operation relative to the exact array multiplier,
/// measured with the shared switching-energy model; saving% = 1 - ratio.
double energy_saving_percent(const ApproxMult8& m,
                             std::size_t vector_pairs = 2000);

/// The exact reference (energy baseline; zero error).
std::unique_ptr<ApproxMult8> make_exact();

// The ten Table II stand-ins, ordered roughly by increasing MRE.
std::unique_ptr<ApproxMult8> make_truncated(unsigned dropped_columns);
std::unique_ptr<ApproxMult8> make_loa(unsigned or_bits);
std::unique_ptr<ApproxMult8> make_broken_array(unsigned broken_depth);
std::unique_ptr<ApproxMult8> make_approx_compressor(unsigned low_columns);
std::unique_ptr<ApproxMult8> make_drum(unsigned segment_bits);
std::unique_ptr<ApproxMult8> make_mitchell();
std::unique_ptr<ApproxMult8> make_truncated_mitchell(unsigned kept_bits);

/// The curated set of 10 used by the Table II / Fig. 5 experiments,
/// ordered by increasing MRE like the paper's table.
std::vector<std::unique_ptr<ApproxMult8>> table2_multipliers();

}  // namespace nga::ax
