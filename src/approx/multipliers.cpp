#include "approx/multipliers.hpp"

#include <algorithm>
#include <cmath>

#include "bitheap/bitheap.hpp"

namespace nga::ax {

namespace {

using util::u32;

// --- shared netlist machinery -------------------------------------------

struct Operands {
  std::vector<int> a, b;
};

Operands add_operands(hw::Netlist& nl) {
  Operands ops;
  ops.a.resize(8);
  ops.b.resize(8);
  for (auto& x : ops.a) x = nl.add_input();
  for (auto& x : ops.b) x = nl.add_input();
  return ops;
}

void mark_product_outputs(hw::Netlist& nl, std::vector<int> bits) {
  bits.resize(16, nl.constant(false));
  for (int i = 0; i < 16; ++i) nl.mark_output(bits[i]);
}

/// OR-reduce a set of nodes (balanced tree).
int or_tree(hw::Netlist& nl, std::vector<int> bits) {
  if (bits.empty()) return nl.constant(false);
  while (bits.size() > 1) {
    std::vector<int> next;
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2)
      next.push_back(nl.or_(bits[i], bits[i + 1]));
    if (bits.size() % 2) next.push_back(bits.back());
    bits = std::move(next);
  }
  return bits[0];
}

int xor_tree(hw::Netlist& nl, std::vector<int> bits) {
  if (bits.empty()) return nl.constant(false);
  while (bits.size() > 1) {
    std::vector<int> next;
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2)
      next.push_back(nl.xor_(bits[i], bits[i + 1]));
    if (bits.size() % 2) next.push_back(bits.back());
    bits = std::move(next);
  }
  return bits[0];
}

/// Leading-one detector: returns (position bits[3], nonzero flag).
/// position = index of the most significant set bit of the 8-bit input.
struct Lod {
  std::vector<int> pos;  // 3 bits
  int nonzero;
};

Lod build_lod8(hw::Netlist& nl, const std::vector<int>& x) {
  // One-hot: h[i] = x[i] & ~(x[7] | ... | x[i+1]).
  std::vector<int> above(8);
  int acc = nl.constant(false);
  for (int i = 7; i >= 0; --i) {
    above[std::size_t(i)] = acc;
    acc = nl.or_(acc, x[std::size_t(i)]);
  }
  std::vector<int> hot(8);
  for (int i = 0; i < 8; ++i)
    hot[std::size_t(i)] = nl.andnot_(x[std::size_t(i)], above[std::size_t(i)]);
  Lod lod;
  lod.nonzero = acc;
  lod.pos.resize(3);
  for (int bit = 0; bit < 3; ++bit) {
    std::vector<int> sel;
    for (int i = 0; i < 8; ++i)
      if ((i >> bit) & 1) sel.push_back(hot[std::size_t(i)]);
    lod.pos[std::size_t(bit)] = or_tree(nl, sel);
  }
  return lod;
}

/// Barrel shifter: out = in << s (s given LSB-first), output width wout.
std::vector<int> barrel_shl(hw::Netlist& nl, std::vector<int> in,
                            const std::vector<int>& s, unsigned wout) {
  std::vector<int> cur = std::move(in);
  cur.resize(wout, nl.constant(false));
  const int zero = nl.constant(false);
  for (std::size_t stage = 0; stage < s.size(); ++stage) {
    const unsigned sh = 1u << stage;
    std::vector<int> next(wout);
    for (unsigned i = 0; i < wout; ++i) {
      const int shifted = i >= sh ? cur[i - sh] : zero;
      next[i] = nl.mux(cur[i], shifted, s[stage]);
    }
    cur = std::move(next);
  }
  return cur;
}

/// Barrel shifter: out = in >> s.
std::vector<int> barrel_shr(hw::Netlist& nl, std::vector<int> in,
                            const std::vector<int>& s, unsigned wout) {
  const int zero = nl.constant(false);
  std::vector<int> cur = std::move(in);
  for (std::size_t stage = 0; stage < s.size(); ++stage) {
    const unsigned sh = 1u << stage;
    std::vector<int> next(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const int shifted = i + sh < cur.size() ? cur[i + sh] : zero;
      next[i] = nl.mux(cur[i], shifted, s[stage]);
    }
    cur = std::move(next);
  }
  cur.resize(wout, zero);
  return cur;
}

// --- concrete multipliers -----------------------------------------------

class ExactMult final : public ApproxMult8 {
 public:
  std::string name() const override { return "EXACT"; }
  u16 multiply(u8 a, u8 b) const override { return u16(unsigned(a) * b); }
  hw::Netlist netlist() const override {
    // Same compressor-tree structure as the approximate variants so the
    // energy comparison isolates the *removed* logic, not adder style.
    hw::Netlist nl;
    auto ops = add_operands(nl);
    bh::BitHeap heap(nl);
    heap.add_product(0, ops.a, ops.b);
    mark_product_outputs(nl, heap.compress(bh::Strategy::kCompressorTree));
    return nl;
  }
};

/// Truncated array: partial products in columns < k are never generated;
/// the low k result bits are zero.
class TruncatedMult final : public ApproxMult8 {
 public:
  explicit TruncatedMult(unsigned k) : k_(k) {}
  std::string name() const override { return "TRUNC" + std::to_string(k_); }
  u16 multiply(u8 a, u8 b) const override {
    u32 sum = 0;
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        if (unsigned(i + j) >= k_ && ((a >> i) & 1) && ((b >> j) & 1))
          sum += u32(1) << (i + j);
    return u16(sum);
  }
  hw::Netlist netlist() const override {
    hw::Netlist nl;
    auto ops = add_operands(nl);
    bh::BitHeap heap(nl);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        if (unsigned(i + j) >= k_)
          heap.add_bit(i + j, nl.and_(ops.a[std::size_t(i)],
                                      ops.b[std::size_t(j)]));
    auto sum = heap.compress(bh::Strategy::kCompressorTree);
    std::vector<int> out(std::size_t(k_), nl.constant(false));
    out.insert(out.end(), sum.begin(), sum.end());
    mark_product_outputs(nl, std::move(out));
    return nl;
  }

 private:
  unsigned k_;
};

/// Lower-OR multiplier: low-k columns collapse to a carry-free OR of
/// their partial products; high part exact (no carries cross the break).
class LoaMult final : public ApproxMult8 {
 public:
  explicit LoaMult(unsigned k) : k_(k) {}
  std::string name() const override { return "LOA" + std::to_string(k_); }
  u16 multiply(u8 a, u8 b) const override {
    u32 sum = 0;
    for (unsigned c = 0; c < k_; ++c) {
      bool any = false;
      for (int i = 0; i < 8; ++i) {
        const int j = int(c) - i;
        if (j < 0 || j > 7) continue;
        any = any || (((a >> i) & 1) && ((b >> j) & 1));
      }
      if (any) sum |= u32(1) << c;
    }
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        if (unsigned(i + j) >= k_ && ((a >> i) & 1) && ((b >> j) & 1))
          sum += u32(1) << (i + j);
    return u16(sum);
  }
  hw::Netlist netlist() const override {
    hw::Netlist nl;
    auto ops = add_operands(nl);
    std::vector<int> low;
    for (unsigned c = 0; c < k_; ++c) {
      std::vector<int> col;
      for (int i = 0; i < 8; ++i) {
        const int j = int(c) - i;
        if (j < 0 || j > 7) continue;
        col.push_back(nl.and_(ops.a[std::size_t(i)], ops.b[std::size_t(j)]));
      }
      low.push_back(or_tree(nl, col));
    }
    bh::BitHeap heap(nl);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        if (unsigned(i + j) >= k_)
          heap.add_bit(i + j, nl.and_(ops.a[std::size_t(i)],
                                      ops.b[std::size_t(j)]));
    auto sum = heap.compress(bh::Strategy::kCompressorTree);
    low.insert(low.end(), sum.begin(), sum.end());
    mark_product_outputs(nl, std::move(low));
    return nl;
  }

 private:
  unsigned k_;
};

/// Broken-array multiplier: low-k columns keep only the carry-free XOR
/// of their partial products (all carry cells below the break removed).
class BrokenArrayMult final : public ApproxMult8 {
 public:
  explicit BrokenArrayMult(unsigned k) : k_(k) {}
  std::string name() const override { return "BAM" + std::to_string(k_); }
  u16 multiply(u8 a, u8 b) const override {
    u32 sum = 0;
    for (unsigned c = 0; c < k_; ++c) {
      int parity = 0;
      for (int i = 0; i < 8; ++i) {
        const int j = int(c) - i;
        if (j < 0 || j > 7) continue;
        parity ^= int(((a >> i) & 1) && ((b >> j) & 1));
      }
      if (parity) sum |= u32(1) << c;
    }
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        if (unsigned(i + j) >= k_ && ((a >> i) & 1) && ((b >> j) & 1))
          sum += u32(1) << (i + j);
    return u16(sum);
  }
  hw::Netlist netlist() const override {
    hw::Netlist nl;
    auto ops = add_operands(nl);
    std::vector<int> low;
    for (unsigned c = 0; c < k_; ++c) {
      std::vector<int> col;
      for (int i = 0; i < 8; ++i) {
        const int j = int(c) - i;
        if (j < 0 || j > 7) continue;
        col.push_back(nl.and_(ops.a[std::size_t(i)], ops.b[std::size_t(j)]));
      }
      low.push_back(xor_tree(nl, col));
    }
    bh::BitHeap heap(nl);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        if (unsigned(i + j) >= k_)
          heap.add_bit(i + j, nl.and_(ops.a[std::size_t(i)],
                                      ops.b[std::size_t(j)]));
    auto sum = heap.compress(bh::Strategy::kCompressorTree);
    low.insert(low.end(), sum.begin(), sum.end());
    mark_product_outputs(nl, std::move(low));
    return nl;
  }

 private:
  unsigned k_;
};

/// DRUM-style dynamic-range segmented multiplier: each operand is
/// reduced to a k-bit segment starting at its leading one (segment LSB
/// forced to 1 for unbiasedness), multiplied exactly, then shifted back.
class DrumMult final : public ApproxMult8 {
 public:
  explicit DrumMult(unsigned k) : k_(k) {}
  std::string name() const override { return "DRUM" + std::to_string(k_); }

  u16 multiply(u8 a, u8 b) const override {
    if (a == 0 || b == 0) return 0;
    const int pa = util::msb_index(a), pb = util::msb_index(b);
    const int sa = std::max(0, pa - int(k_) + 1);
    const int sb = std::max(0, pb - int(k_) + 1);
    u32 seg_a = u32(a) >> sa;
    u32 seg_b = u32(b) >> sb;
    if (sa > 0) seg_a |= 1;  // unbiasing LSB
    if (sb > 0) seg_b |= 1;
    return u16((seg_a * seg_b) << (sa + sb));
  }

  hw::Netlist netlist() const override {
    hw::Netlist nl;
    auto ops = add_operands(nl);
    auto segment = [&](const std::vector<int>& x) {
      const Lod lod = build_lod8(nl, x);
      // shift amount s = max(0, pos - (k-1)) as 3 bits: pos - (k-1) when
      // pos >= k-1 else 0. Compute via: s = (pos >= k-1) ? pos-(k-1) : 0.
      // Implemented with a constant subtract on 3 bits.
      std::vector<int> s(3);
      // pos + (8-(k-1)) and take carry as the comparison: simpler: mux
      // over all 8 positions (small, constant).
      std::vector<int> shifted = x;
      // seg = x >> s with s in [0, 8-k]: use barrel_shr on mux-decoded s.
      // Build s bits from pos arithmetic: s = pos - (k-1) clamped at 0.
      // 3-bit subtract with borrow -> clamp.
      const unsigned km1 = k_ - 1;
      // t = pos + (8 - km1) (4-bit); ge = t bit3 (pos >= km1);
      std::vector<int> pos4 = lod.pos;
      pos4.push_back(nl.constant(false));
      std::vector<int> cst(4);
      const unsigned addend = 8 - km1;
      for (int i = 0; i < 4; ++i)
        cst[std::size_t(i)] = nl.constant((addend >> i) & 1);
      auto t = nl.ripple_add(pos4, cst, -1, true);
      const int ge = t[4 - 1 + 1 - 1];  // bit 3 of the 4-bit sum+carry? see below
      // t = pos + 8 - km1; pos >= km1  <=>  t >= 8  <=> bit3 of t set.
      std::vector<int> sraw{t[0], t[1], t[2]};
      for (int i = 0; i < 3; ++i)
        s[std::size_t(i)] = nl.and_(sraw[std::size_t(i)], ge);
      auto seg = barrel_shr(nl, shifted, s, 8);
      // Force the unbias LSB when s > 0.
      const int snz = nl.or_(nl.or_(s[0], s[1]), s[2]);
      seg[0] = nl.or_(seg[0], snz);
      return std::pair<std::vector<int>, std::vector<int>>{seg, s};
    };
    auto [seg_a, s_a] = segment(ops.a);
    auto [seg_b, s_b] = segment(ops.b);
    seg_a.resize(k_);
    seg_b.resize(k_);
    auto prod = nl.array_multiply(seg_a, seg_b);  // 2k bits
    // shift = s_a + s_b (4 bits, <= 2*(8-k)).
    std::vector<int> sa4 = s_a, sb4 = s_b;
    sa4.push_back(nl.constant(false));
    sb4.push_back(nl.constant(false));
    auto sh = nl.ripple_add(sa4, sb4, -1, false);
    auto out = barrel_shl(nl, prod, sh, 16);
    mark_product_outputs(nl, std::move(out));
    return nl;
  }

 private:
  unsigned k_;
};

/// Mitchell's logarithmic multiplier with @p frac_bits fraction bits
/// kept in the log domain (7 = classic Mitchell; fewer = rougher).
class MitchellMult final : public ApproxMult8 {
 public:
  explicit MitchellMult(unsigned frac_bits)
      : f_(frac_bits) {}
  std::string name() const override {
    return f_ == 7 ? "MITCH" : "MITCH-T" + std::to_string(f_);
  }

  u16 multiply(u8 a, u8 b) const override {
    if (a == 0 || b == 0) return 0;
    const int pa = util::msb_index(a), pb = util::msb_index(b);
    // Q7 fractions, then truncated to f_ bits.
    u32 fa = (u32(a) << (7 - pa)) & 0x7f;
    u32 fb = (u32(b) << (7 - pb)) & 0x7f;
    const u32 keep = ~util::u64{0} << (7 - f_) & 0x7f;
    fa &= keep;
    fb &= keep;
    const u32 fsum = fa + fb;              // Q7, < 2.0
    const int exp = pa + pb + (fsum >= 128 ? 1 : 0);
    const u32 mant = 128 | (fsum & 0x7f);  // 1.frac in Q7
    // value = mant * 2^(exp-7)
    if (exp >= 7) return u16(mant << (exp - 7));
    return u16(mant >> (7 - exp));
  }

  hw::Netlist netlist() const override {
    hw::Netlist nl;
    auto ops = add_operands(nl);
    const int zero = nl.constant(false);
    auto logof = [&](const std::vector<int>& x) {
      const Lod lod = build_lod8(nl, x);
      // Normalize: frac = (x << (7-pos)) low 7 bits == x >> pos, bits
      // below the leading one, MSB-aligned: shift left by (7-pos) =
      // shift left by ~pos (3-bit complement).
      std::vector<int> ns(3);
      for (int i = 0; i < 3; ++i) ns[std::size_t(i)] = nl.not_(lod.pos[std::size_t(i)]);
      auto norm = barrel_shl(nl, x, ns, 8);  // leading one at bit 7
      std::vector<int> frac(norm.begin(), norm.begin() + 7);
      // Truncate to f_ bits.
      for (unsigned i = 0; i + f_ < 7; ++i) frac[i] = zero;
      return std::pair<std::vector<int>, Lod>{frac, lod};
    };
    auto [fa, lodA] = logof(ops.a);
    auto [fb, lodB] = logof(ops.b);
    auto fsum = nl.ripple_add(fa, fb, -1, true);  // 8 bits, carry at [7]
    // exp = pa + pb + carry (4 bits).
    std::vector<int> pa4 = lodA.pos, pb4 = lodB.pos;
    pa4.push_back(zero);
    pb4.push_back(zero);
    auto exp = nl.ripple_add(pa4, pb4, fsum[7], false);  // 4 bits
    // mant = {1, fsum[6:0]} -> place at bit 7 of a 24-bit frame, then
    // shift left by exp and take bits [7..22] (i.e. mant << (exp-7)).
    std::vector<int> frame(24, zero);
    for (int i = 0; i < 7; ++i) frame[std::size_t(i)] = fsum[std::size_t(i)];
    frame[7] = nl.constant(true);
    auto shifted = barrel_shl(nl, frame, exp, 24);
    std::vector<int> out(16);
    const int both = nl.and_(lodA.nonzero, lodB.nonzero);
    for (int i = 0; i < 16; ++i)
      out[std::size_t(i)] = nl.and_(shifted[std::size_t(i + 7)], both);
    mark_product_outputs(nl, std::move(out));
    return nl;
  }

 private:
  unsigned f_;
};

}  // namespace

ErrorMetrics measure_error(const ApproxMult8& m) {
  ErrorMetrics e;
  double sum_rel = 0.0, sum_abs = 0.0;
  std::size_t nonzero = 0, wrong = 0;
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      const double exact = double(a * b);
      const double got = double(m.multiply(u8(a), u8(b)));
      const double err = std::fabs(got - exact);
      sum_abs += err;
      if (err > 0) ++wrong;
      e.wce = std::max(e.wce, err);
      if (exact != 0.0) {
        sum_rel += err / exact;
        ++nonzero;
      }
    }
  e.mae = sum_abs / 65536.0;
  e.mre_percent = 100.0 * sum_rel / double(nonzero);
  e.error_rate = double(wrong) / 65536.0;
  return e;
}

double energy_saving_percent(const ApproxMult8& m, std::size_t vector_pairs) {
  static const double exact_energy = [] {
    return hw::switching_energy(ExactMult{}.netlist(), 4000);
  }();
  const double e = hw::switching_energy(m.netlist(), vector_pairs);
  return 100.0 * (1.0 - e / exact_energy);
}

std::unique_ptr<ApproxMult8> make_exact() {
  return std::make_unique<ExactMult>();
}
std::unique_ptr<ApproxMult8> make_truncated(unsigned k) {
  return std::make_unique<TruncatedMult>(k);
}
std::unique_ptr<ApproxMult8> make_loa(unsigned k) {
  return std::make_unique<LoaMult>(k);
}
std::unique_ptr<ApproxMult8> make_broken_array(unsigned k) {
  return std::make_unique<BrokenArrayMult>(k);
}
std::unique_ptr<ApproxMult8> make_approx_compressor(unsigned k) {
  // The LOA family with a deep break behaves like the approximate-
  // compressor designs (carry-free OR compression); kept as an alias
  // with its own factory for API stability.
  return std::make_unique<LoaMult>(k);
}
std::unique_ptr<ApproxMult8> make_drum(unsigned k) {
  return std::make_unique<DrumMult>(k);
}
std::unique_ptr<ApproxMult8> make_mitchell() {
  return std::make_unique<MitchellMult>(7);
}
std::unique_ptr<ApproxMult8> make_truncated_mitchell(unsigned kept) {
  return std::make_unique<MitchellMult>(kept);
}

std::vector<std::unique_ptr<ApproxMult8>> table2_multipliers() {
  // Ten designs ordered by increasing MRE, mirroring Table II's spread
  // (0.03% .. ~19% MRE).
  std::vector<std::unique_ptr<ApproxMult8>> v;
  v.push_back(make_truncated(1));            // ~0.02% MRE
  v.push_back(make_loa(5));                  // ~0.3%
  v.push_back(make_broken_array(6));         // ~1.1%
  v.push_back(make_truncated(6));            // ~2.6%
  v.push_back(make_mitchell());              // ~3.8%
  v.push_back(make_drum(4));                 // ~5.9%
  v.push_back(make_truncated(8));            // ~9.8%
  v.push_back(make_truncated_mitchell(3));   // ~10.4%
  v.push_back(make_drum(3));                 // ~12.1%
  v.push_back(make_truncated_mitchell(2));   // ~17%
  return v;
}

}  // namespace nga::ax
