// Sign-magnitude vs two's-complement integer representations.
//
// Section V motivates posits with the historical transition from
// sign-magnitude to two's-complement integers: the branchy SM addition
// algorithm (reproduced verbatim from the paper in sm_add) collapses to
// "k = i + j" in 2C, the redundant +-0 disappears, and comparison becomes
// trivial. This module makes those claims executable: behavioural models
// of both formats plus gate-level adder/comparator generators costed with
// the shared hwmodel.
#pragma once

#include <optional>
#include <string>

#include "hwmodel/netlist.hpp"
#include "util/bits.hpp"

namespace nga::intf {

using util::i64;
using util::u64;

/// An n-bit sign-magnitude integer: top bit sign, low n-1 bits magnitude.
struct SignMagnitude {
  u64 bits = 0;
  unsigned n = 8;

  bool sign() const { return ((bits >> (n - 1)) & 1) != 0; }
  u64 magnitude() const { return bits & util::mask64(n - 1); }
  i64 value() const {
    return sign() ? -i64(magnitude()) : i64(magnitude());
  }
  bool is_negative_zero() const { return sign() && magnitude() == 0; }

  static SignMagnitude encode(i64 v, unsigned n) {
    const bool neg = v < 0;
    const u64 mag = u64(neg ? -v : v) & util::mask64(n - 1);
    return {mag | (u64(neg) << (n - 1)), n};
  }
};

/// Result of a sign-magnitude add, with the number of branch decisions
/// the hardware had to take (the paper's complexity argument).
struct SmAddResult {
  SignMagnitude sum;
  int branches_taken = 0;
  bool overflow = false;
};

/// The paper's Section V sign-magnitude addition algorithm, verbatim:
/// compare signs, then compare magnitudes, then add or subtract and pick
/// the result sign. Counts every data-dependent branch it takes.
SmAddResult sm_add(SignMagnitude i, SignMagnitude j);

/// Two's-complement addition: the single line "k = i + j" on unsigned
/// words. No branches.
inline u64 tc_add(u64 i, u64 j, unsigned n) {
  return (i + j) & util::mask64(n);
}

/// Comparison anomalies of sign-magnitude: equality must special-case
/// +-0; ordering must decode the sign. Returns true iff equal as values.
bool sm_equal(SignMagnitude a, SignMagnitude b);
bool sm_less(SignMagnitude a, SignMagnitude b);

/// Number of distinct values an n-bit format represents (2C: 2^n,
/// SM: 2^n - 1 because of the redundant zero).
u64 sm_distinct_values(unsigned n);
u64 tc_distinct_values(unsigned n);

// --- Gate-level generators ------------------------------------------------

/// Two's-complement n-bit adder: one ripple-carry chain.
/// Inputs: a[0..n-1], b[0..n-1]; outputs: sum[0..n-1].
hw::Netlist build_tc_adder(unsigned n);

/// Sign-magnitude n-bit adder implementing the paper's algorithm in
/// logic: magnitude comparator + conditional add/sub + sign select.
/// Inputs: a, b as SM words; output: SM sum (canonical +0 for zero).
hw::Netlist build_sm_adder(unsigned n);

/// Two's-complement "a < b" comparator (signed).
hw::Netlist build_tc_less(unsigned n);

/// Sign-magnitude "a < b" comparator with the +-0 special case.
hw::Netlist build_sm_less(unsigned n);

}  // namespace nga::intf
