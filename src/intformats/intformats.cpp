#include "intformats/intformats.hpp"

#include <cassert>
#include <stdexcept>

namespace nga::intf {

SmAddResult sm_add(SignMagnitude i, SignMagnitude j) {
  assert(i.n == j.n);
  const unsigned n = i.n;
  SmAddResult r;
  r.sum.n = n;
  // The paper's algorithm, including its branch structure.
  ++r.branches_taken;
  if (i.sign() == j.sign()) {
    const u64 mag = i.magnitude() + j.magnitude();
    r.overflow = mag > util::mask64(n - 1);
    r.sum.bits = (mag & util::mask64(n - 1)) | (u64(i.sign()) << (n - 1));
  } else {
    ++r.branches_taken;
    if (i.magnitude() > j.magnitude()) {
      r.sum.bits =
          (i.magnitude() - j.magnitude()) | (u64(i.sign()) << (n - 1));
    } else {
      r.sum.bits =
          (j.magnitude() - i.magnitude()) | (u64(j.sign()) << (n - 1));
    }
  }
  return r;
}

bool sm_equal(SignMagnitude a, SignMagnitude b) {
  // The exception the paper highlights: +0 == -0 despite different bits.
  if (a.magnitude() == 0 && b.magnitude() == 0) return true;
  return a.bits == b.bits;
}

bool sm_less(SignMagnitude a, SignMagnitude b) {
  return a.value() < b.value();
}

u64 sm_distinct_values(unsigned n) { return (u64{1} << n) - 1; }
u64 tc_distinct_values(unsigned n) { return u64{1} << n; }

hw::Netlist build_tc_adder(unsigned n) {
  hw::Netlist nl;
  std::vector<int> a(n), b(n);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  auto sum = nl.ripple_add(a, b, -1, /*keep_carry_out=*/false);
  for (int bit : sum) nl.mark_output(bit);
  return nl;
}

namespace {

/// a >= b over equal-width unsigned bit vectors (MSB-first compare chain).
int build_geq(hw::Netlist& nl, const std::vector<int>& a,
              const std::vector<int>& b) {
  // geq = (a_i > b_i) OR (a_i == b_i AND geq_below); base case geq = 1.
  int geq = nl.constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {  // LSB to MSB
    const int gt = nl.andnot_(a[i], b[i]);
    const int eq = nl.xnor_(a[i], b[i]);
    geq = nl.or_(gt, nl.and_(eq, geq));
  }
  return geq;
}

/// Conditional two's-complement subtract-or-add of magnitudes:
/// out = sel ? (x - y) : (x + y), built from one adder with XOR-inverted
/// second operand and carry-in = sel.
std::vector<int> add_or_sub(hw::Netlist& nl, const std::vector<int>& x,
                            const std::vector<int>& y, int sel) {
  std::vector<int> y2(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y2[i] = nl.xor_(y[i], sel);
  return nl.ripple_add(x, y2, sel, /*keep_carry_out=*/true);
}

}  // namespace

hw::Netlist build_sm_adder(unsigned n) {
  if (n < 2) throw std::invalid_argument("need sign + magnitude");
  hw::Netlist nl;
  std::vector<int> a(n), b(n);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  const int sa = a[n - 1], sb = b[n - 1];
  const std::vector<int> ma(a.begin(), a.end() - 1);
  const std::vector<int> mb(b.begin(), b.end() - 1);

  const int same_sign = nl.xnor_(sa, sb);
  const int a_geq_b = build_geq(nl, ma, mb);

  // Big/small operand steering when signs differ.
  std::vector<int> big(n - 1), small(n - 1);
  for (unsigned i = 0; i < n - 1; ++i) {
    big[i] = nl.mux(mb[i], ma[i], a_geq_b);
    small[i] = nl.mux(ma[i], mb[i], a_geq_b);
  }
  const int sub = nl.not_(same_sign);
  auto sum = add_or_sub(nl, big, small, sub);  // n bits incl carry

  // Magnitude: low n-1 bits (for same-sign adds the carry-out is the
  // overflow the paper ignores; we expose it as a separate output).
  // Result sign: same-sign -> sa; else sign of the larger magnitude;
  // canonicalize -0 to +0.
  const int rsign_raw =
      nl.mux(nl.mux(sb, sa, a_geq_b), sa, same_sign);
  int any = nl.constant(false);
  for (unsigned i = 0; i < n - 1; ++i) any = nl.or_(any, sum[i]);
  const int rsign = nl.and_(rsign_raw, any);

  for (unsigned i = 0; i < n - 1; ++i) nl.mark_output(sum[i]);
  nl.mark_output(rsign);
  nl.mark_output(nl.and_(sum[n - 1], same_sign));  // overflow flag
  return nl;
}

hw::Netlist build_tc_less(unsigned n) {
  hw::Netlist nl;
  std::vector<int> a(n), b(n);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  // Signed a < b: compare with sign bits inverted (bias trick), then
  // unsigned less = NOT geq.
  std::vector<int> ax = a, bx = b;
  ax[n - 1] = nl.not_(a[n - 1]);
  bx[n - 1] = nl.not_(b[n - 1]);
  nl.mark_output(nl.not_(build_geq(nl, ax, bx)));
  return nl;
}

hw::Netlist build_sm_less(unsigned n) {
  hw::Netlist nl;
  std::vector<int> a(n), b(n);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  const int sa = a[n - 1], sb = b[n - 1];
  const std::vector<int> ma(a.begin(), a.end() - 1);
  const std::vector<int> mb(b.begin(), b.end() - 1);
  const int a_geq_b = build_geq(nl, ma, mb);
  const int a_eq_b_mag = [&] {
    int eq = nl.constant(true);
    for (unsigned i = 0; i < n - 1; ++i)
      eq = nl.and_(eq, nl.xnor_(ma[i], mb[i]));
    return eq;
  }();
  int a_zero = nl.constant(true), b_zero = nl.constant(true);
  for (unsigned i = 0; i < n - 1; ++i) {
    a_zero = nl.and_(a_zero, nl.not_(ma[i]));
    b_zero = nl.and_(b_zero, nl.not_(mb[i]));
  }
  const int both_zero = nl.and_(a_zero, b_zero);  // -0 vs +0: not less
  // Cases: signs differ -> less iff a negative (unless both zero).
  //        both positive -> less iff !(a >= b).
  //        both negative -> less iff a > b in magnitude.
  const int mag_lt = nl.not_(a_geq_b);
  const int mag_gt = nl.andnot_(a_geq_b, a_eq_b_mag);
  const int same_sign = nl.xnor_(sa, sb);
  const int less_same = nl.mux(mag_lt, mag_gt, sa);
  const int less_diff = nl.andnot_(sa, both_zero);
  nl.mark_output(nl.mux(less_diff, less_same, same_sign));
  return nl;
}

}  // namespace nga::intf
