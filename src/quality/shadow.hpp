// The shadow lane: low-priority re-execution of sampled requests on
// the golden exact MulTable, strictly OFF the serving path.
//
// Data flow (see DESIGN.md "Quality observability"):
//
//   worker (process_batch, reply already resolved)
//      └─ enqueue {input, served logits, tier}     <- bounded, lock
//             │     full => drop OLDEST job          held O(1), never
//             ▼                                      blocks, never
//   ShadowLane thread ("quality.shadow")             allocates beyond
//      ├─ forward(input) on the EXACT table          the job itself
//      ├─ compare_logits -> per-tier bins + SLO
//      └─ every Nth: dual-run attribution
//         (tier table + exact, activation capture)
//
// The lane owns its own model replica and its own tier-table replicas
// (same per-replica contract as the workers), so it shares no mutable
// state with the serving path. Enqueue works before start(): jobs pile
// up to capacity and are processed once the lane runs — tests use this
// for deterministic drop-oldest coverage.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/model.hpp"
#include "quality/quality.hpp"

namespace nga::quality {

/// One sampled request, snapshot at reply time.
struct ShadowJob {
  u64 id = 0;
  nn::Tensor x;                      ///< the request input (moved in)
  std::vector<float> approx_logits;  ///< what the serving path returned
  int tier = 0;                      ///< Response::tier stamp
};

struct ShadowLaneConfig {
  QualityConfig quality;
  nn::Mode mode = nn::Mode::kQuantApprox;
  /// Builds the lane's own model replica (required).
  std::function<std::unique_ptr<nn::Model>()> model_factory;
  /// The golden exact table the shadow runs on (required unless mode
  /// is kFloat, where the forward needs no table).
  const nn::MulTable* exact = nullptr;
  /// tier -> the approximate table that tier executes, for the
  /// attribution dual-run. Null disables attribution regardless of
  /// attribution_every. Must stay valid for the lane lifetime
  /// (owned_tables below keeps lane-owned replicas alive).
  std::function<const nn::MulTable*(int tier)> tier_table;
  /// Keep-alive for the replicas tier_table points into.
  std::vector<std::shared_ptr<const nn::MulTable>> owned_tables;
  /// Optional "serving path has in-flight work" probe. When set, the
  /// lane scavenges idle cycles: it holds queued jobs while the probe
  /// reports busy and runs them in the gaps, so on a core-starved host
  /// shadow forwards never time-share with a live request. Bounded by
  /// the drop-oldest queue — a saturated server sheds shadow coverage,
  /// never latency. Ignored during drain (the backlog always runs).
  std::function<bool()> busy;
};

class ShadowLane {
 public:
  /// Validates the config and configures QualityTelemetry's SLO
  /// windows. Throws std::invalid_argument on a config that cannot
  /// shadow (no model factory; no exact table in a quantized mode).
  explicit ShadowLane(ShadowLaneConfig cfg);
  ~ShadowLane();  ///< drain_and_stop() if still running

  ShadowLane(const ShadowLane&) = delete;
  ShadowLane& operator=(const ShadowLane&) = delete;

  /// Launch the lane thread (builds the model replica there — model
  /// construction cost lands on the lane, not the caller).
  void start();

  /// Hand one job to the lane. Never blocks: when the queue is at
  /// capacity the OLDEST job is dropped (quality.shadow.dropped) to
  /// make room — under pressure the lane keeps the freshest traffic.
  /// Returns false only after close (drain_and_stop began).
  bool enqueue(ShadowJob job);

  /// Process every queued job, then stop and join. Bounded work: the
  /// queue holds at most queue_capacity jobs and enqueue() is refused
  /// from the first moment of the drain. Idempotent.
  void drain_and_stop();

  struct Stats {
    u64 enqueued = 0;
    u64 dropped = 0;
    u64 compared = 0;
    u64 attribution_runs = 0;
    std::size_t queue_depth = 0;
  };
  Stats stats() const;

  QualitySloTracker::Verdict slo() const {
    return QualityTelemetry::instance().slo();
  }

 private:
  void run();
  void wait_for_idle();  ///< block while cfg_.busy reports in-flight work
  void process(ShadowJob& job, nn::Model& model);
  void attribute(const ShadowJob& job, nn::Model& model);

  ShadowLaneConfig cfg_;
  mutable std::mutex m_;
  std::deque<ShadowJob> q_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::thread thread_;
  std::atomic<u64> enqueued_{0}, dropped_{0}, compared_{0}, attributions_{0};
};

}  // namespace nga::quality
