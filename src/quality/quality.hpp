// nga::quality — shadow-execution quality observatory for nga::serve.
//
// The serving stack spends accuracy to buy throughput (brownout ladder,
// approximate multipliers), but delivered accuracy was never a
// production signal: offline accuracy lives in src/accuracy, and the
// numeric-health channel sees NaR/saturation pressure, not error
// magnitude. This module measures delivered quality on live traffic:
//
//   * a seeded head-sampler (shadow_sampled) marks a configurable
//     fraction of requests for shadowing. The decision is a PURE
//     function of (seed, request id) — unlike the thread-local RNG the
//     trace sampler uses, the shadowed set is identical across runs and
//     worker interleavings, which the bench_diff contract depends on;
//   * after the approximate reply has resolved, the request is
//     re-executed on the golden exact MulTable in a low-priority shadow
//     lane (shadow.hpp) — never on the serving path;
//   * each shadow comparison produces end-to-end deltas (logit MRE/MAE,
//     argmax agreement, top-1 flips) binned per overload tier, keyed
//     off the Response::tier stamp, plus — for a deterministic
//     sub-sample — per-layer error attribution via dual-run activation
//     capture (nn::Exec::capture);
//   * a windowed quality-SLO tracker (QualitySloTracker) keeps rolling
//     argmax agreement over fast/slow burn-rate windows and yields a
//     HealthTracker-compatible verdict — observe-only this PR: it is
//     exported as telemetry, it never drives Serving <-> Degraded.
//
// Everything surfaces through the existing pipeline: quality.* registry
// counters/gauges/series, the additive "quality" nga-bench-v1 section
// (register_json_section), the Prometheus text exposition, and
// chrome-trace shadow-lane spans.
//
// Zero-cost contract: with QualityConfig::sample_rate == 0 nothing in
// this module runs — no QualityTelemetry instance, no quality.* metric
// is ever registered, no allocation happens on the serving path. CI
// asserts the absence of quality.* families on a rate-0 run.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "util/bits.hpp"

namespace nga::quality {

using util::u64;

struct QualityConfig {
  /// Fraction of SERVED requests shadow-re-executed on the exact table.
  /// 0 disables the whole subsystem (provably zero-cost: no shadow
  /// lane, no quality.* metrics, no per-request sampling arithmetic).
  double sample_rate = 0.0;
  /// Seeds the shadow head-sampler. Same seed + same request-id stream
  /// => the same shadowed set, regardless of worker interleavings.
  u64 seed = 1;
  /// Bounded shadow-queue capacity. On pressure the OLDEST queued job
  /// is dropped (quality.shadow.dropped) — the lane lags, it never
  /// backpressures the serving path.
  std::size_t queue_capacity = 256;
  /// Every Nth compared shadow also dual-runs the request (approximate
  /// tier table vs exact) with per-layer activation capture, charging
  /// error to the layer where it arises. 0 disables attribution.
  int attribution_every = 8;

  // --- quality SLO (rolling argmax agreement over shadowed requests) —
  // two windows in the burn-rate style: the fast window pages on a
  // sharp quality collapse, the slow window on sustained erosion.
  std::size_t slo_fast_window = 32;
  std::size_t slo_slow_window = 256;
  /// No verdict before this many shadowed comparisons.
  std::size_t slo_min_samples = 16;
  /// Window breaches when its agreement falls BELOW the floor...
  double slo_fast_floor = 0.50;
  double slo_slow_floor = 0.80;
  /// ...and recovers once agreement climbs back above floor + margin
  /// (hysteresis, like HealthTracker's degrade/recover pairs).
  double slo_recover_margin = 0.05;
};

/// Seeded head-sampling decision for one request. Pure splitmix64
/// threshold test — no RNG state, so the shadowed set is a function of
/// (seed, id) alone and two runs over the same id stream shadow
/// exactly the same requests.
inline bool shadow_sampled(u64 seed, u64 request_id, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  u64 x = seed + request_id * 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return double(x >> 11) * 0x1.0p-53 < rate;
}

/// End-to-end delta between the served (approximate) logits and the
/// shadow (exact) logits.
struct Comparison {
  double mre = 0.0;  ///< mean over classes of |a-e| / max(|e|, eps)
  double mae = 0.0;  ///< mean over classes of |a-e|
  bool agree = false;  ///< argmax(approx) == argmax(exact)
  int approx_top = -1;
  int exact_top = -1;
};

/// Compare logit vectors; empty/mismatched sizes compare over the
/// common prefix (and agree==false when either argmax is undefined).
Comparison compare_logits(const std::vector<float>& approx,
                          const std::vector<float>& exact);

/// Rolling argmax-agreement SLO over the shadowed sub-stream. Two ring
/// windows (fast/slow) with hysteresis, shaped like one HealthTracker
/// channel: record() returns the verdict after the sample, breached
/// verdicts are sticky until agreement recovers past floor + margin.
/// Observe-only: callers export the verdict, nothing acts on it yet.
/// Not internally locked — QualityTelemetry serializes access.
class QualitySloTracker {
 public:
  explicit QualitySloTracker(const QualityConfig& cfg);

  struct Verdict {
    std::size_t samples = 0;  ///< comparisons recorded (monotone)
    double fast_agreement = 1.0;  ///< window mean; 1.0 before min_samples
    double slow_agreement = 1.0;
    bool fast_breached = false;
    bool slow_breached = false;
    /// The channel verdict, OR of the windows (HealthTracker style).
    bool breached() const { return fast_breached || slow_breached; }
  };

  Verdict record(bool agree);
  Verdict verdict() const { return verdict_; }

 private:
  struct Window {
    std::vector<char> ring;
    std::size_t next = 0, fill = 0, agree_in_window = 0;
    double agreement() const {
      return fill ? double(agree_in_window) / double(fill) : 1.0;
    }
    void add(bool agree);
  };

  QualityConfig cfg_;
  Window fast_, slow_;
  Verdict verdict_;
};

/// Process-wide quality telemetry: quality.* registry metrics plus the
/// additive "quality" JSON section, modeled on OverloadTelemetry.
/// Instantiated on FIRST USE — a process that never enables shadowing
/// (sample_rate 0) never constructs it and keeps its exact metric
/// schema. Counter/gauge/series values live in the MetricsRegistry, so
/// registry reset() zeroes them; reset_slo() restarts the tracker
/// (tests and multi-run benches).
class QualityTelemetry {
 public:
  static QualityTelemetry& instance();

  /// Adopt the SLO windows/floors of @p cfg (ShadowLane calls this; the
  /// last configured lane wins — one serving stack per process).
  void configure(const QualityConfig& cfg);

  /// Pre-register the per-tier comparison metrics for tiers
  /// 0..max_tier, so the schema depends on the ladder config, never on
  /// which tiers traffic actually reached.
  void ensure_tiers(int max_tier);

  /// Label the multiplier a tier executes ("configured", "brownout.0",
  /// ...); lands in the per-tier JSON so bins are self-describing.
  void set_tier_operator(int tier, std::string op);

  void record_comparison(int tier, const Comparison& c);
  /// Per-layer attribution sample: activation MRE of @p layer under
  /// @p tier's table vs exact.
  void record_attribution(int tier, const std::string& layer, double mre);

  QualitySloTracker::Verdict slo() const;
  void reset_slo();

  void write_json(std::ostream& os) const;

 private:
  QualityTelemetry();

  struct TierMetrics {
    obs::Counter* compared = nullptr;
    obs::Counter* agree = nullptr;
    obs::Counter* flips = nullptr;
    obs::ValueSeries* mre = nullptr;
    obs::ValueSeries* mae = nullptr;
    std::string op;  ///< multiplier label, "" until set_tier_operator
    /// layer name -> activation-MRE series (attribution sub-sample).
    std::map<std::string, obs::ValueSeries*> layers;
  };
  TierMetrics& tier_at(int tier);  ///< callers hold m_

  obs::Counter* flips_ = nullptr;  ///< total top-1 flips, all tiers
  obs::Gauge* slo_fast_g_ = nullptr;
  obs::Gauge* slo_slow_g_ = nullptr;
  obs::Gauge* slo_breached_g_ = nullptr;
  obs::Counter* slo_fast_breaches_ = nullptr;
  obs::Counter* slo_slow_breaches_ = nullptr;

  mutable std::mutex m_;
  std::vector<TierMetrics> tiers_;
  QualitySloTracker slo_;
};

}  // namespace nga::quality
