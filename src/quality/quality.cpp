#include "quality/quality.hpp"

#include <algorithm>
#include <cmath>

#include "obs/export.hpp"

namespace nga::quality {

Comparison compare_logits(const std::vector<float>& approx,
                          const std::vector<float>& exact) {
  Comparison c;
  const std::size_t n = std::min(approx.size(), exact.size());
  if (n == 0) return c;
  constexpr double kEps = 1e-6;
  double sum_rel = 0.0, sum_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = double(approx[i]), e = double(exact[i]);
    const double d = std::abs(a - e);
    sum_abs += d;
    sum_rel += d / std::max(std::abs(e), kEps);
  }
  c.mre = sum_rel / double(n);
  c.mae = sum_abs / double(n);
  c.approx_top = int(std::max_element(approx.begin(), approx.begin() + long(n)) -
                     approx.begin());
  c.exact_top = int(std::max_element(exact.begin(), exact.begin() + long(n)) -
                    exact.begin());
  c.agree = c.approx_top == c.exact_top;
  return c;
}

// ------------------------------------------------------- SLO tracker

QualitySloTracker::QualitySloTracker(const QualityConfig& cfg) : cfg_(cfg) {
  fast_.ring.assign(std::max<std::size_t>(1, cfg_.slo_fast_window), 0);
  slow_.ring.assign(std::max<std::size_t>(1, cfg_.slo_slow_window), 0);
}

void QualitySloTracker::Window::add(bool agree) {
  if (fill == ring.size()) {
    agree_in_window -= std::size_t(ring[next]);
  } else {
    ++fill;
  }
  ring[next] = char(agree);
  agree_in_window += std::size_t(agree);
  next = (next + 1) % ring.size();
}

QualitySloTracker::Verdict QualitySloTracker::record(bool agree) {
  fast_.add(agree);
  slow_.add(agree);
  ++verdict_.samples;
  verdict_.fast_agreement = fast_.agreement();
  verdict_.slow_agreement = slow_.agreement();
  if (verdict_.samples >= cfg_.slo_min_samples) {
    // Hysteresis per window: breach below the floor, recover only once
    // agreement climbs back past floor + margin — a window hovering at
    // the floor cannot flap the verdict.
    if (!verdict_.fast_breached &&
        verdict_.fast_agreement < cfg_.slo_fast_floor)
      verdict_.fast_breached = true;
    else if (verdict_.fast_breached &&
             verdict_.fast_agreement >=
                 cfg_.slo_fast_floor + cfg_.slo_recover_margin)
      verdict_.fast_breached = false;
    if (!verdict_.slow_breached &&
        verdict_.slow_agreement < cfg_.slo_slow_floor)
      verdict_.slow_breached = true;
    else if (verdict_.slow_breached &&
             verdict_.slow_agreement >=
                 cfg_.slo_slow_floor + cfg_.slo_recover_margin)
      verdict_.slow_breached = false;
  }
  return verdict_;
}

// --------------------------------------------------------- telemetry

namespace {

obs::MetricsRegistry& reg() { return obs::MetricsRegistry::instance(); }

// One JSON number that tolerates empty bins: non-finite (an empty
// series' mean, load::percentile of an empty sample) emits null, so
// low-load runs with empty per-tier bins stay valid JSON.
void jnum(std::ostream& os, double v) {
  if (std::isfinite(v))
    os << v;
  else
    os << "null";
}

void jseries(std::ostream& os, const obs::ValueSeries* s) {
  const auto sn = s->snapshot();
  os << "{\"count\":" << sn.count << ",\"mean\":";
  jnum(os, sn.count ? sn.mean : std::nan(""));
  os << ",\"max\":";
  jnum(os, sn.count ? sn.max : std::nan(""));
  os << "}";
}

}  // namespace

QualityTelemetry& QualityTelemetry::instance() {
  static QualityTelemetry t;
  return t;
}

QualityTelemetry::QualityTelemetry() : slo_(QualityConfig{}) {
  auto& r = reg();
  r.counter("quality.shadow.sampled",
            "served requests the seeded head-sampler marked for shadow "
            "re-execution");
  r.counter("quality.shadow.enqueued",
            "shadow jobs accepted by the bounded shadow queue");
  r.counter("quality.shadow.dropped",
            "oldest shadow jobs dropped on queue pressure (the lane "
            "lags; it never backpressures serving)");
  r.counter("quality.shadow.compared",
            "shadow re-executions compared against the served logits");
  r.counter("quality.shadow.skipped_exact",
            "sampled requests served by the golden exact path "
            "(failover/quarantine) — excluded from approx-vs-exact bins");
  r.counter("quality.attribution.runs",
            "shadow comparisons that also dual-ran per-layer "
            "activation capture");
  r.gauge("quality.shadow.queue_depth", "shadow jobs currently queued");
  flips_ = &r.counter("quality.shadow.flips",
                      "shadow comparisons whose top-1 class flipped "
                      "(argmax disagreement), all tiers");
  slo_fast_g_ = &r.gauge("quality.slo.fast_agreement",
                         "rolling argmax agreement, fast window");
  slo_slow_g_ = &r.gauge("quality.slo.slow_agreement",
                         "rolling argmax agreement, slow window");
  slo_breached_g_ =
      &r.gauge("quality.slo.breached",
               "1 while either SLO window is breached (observe-only "
               "verdict channel; nothing acts on it yet)");
  slo_fast_breaches_ = &r.counter(
      "quality.slo.fast_breaches", "fast-window breach transitions");
  slo_slow_breaches_ = &r.counter(
      "quality.slo.slow_breaches", "slow-window breach transitions");
  obs::register_json_section(
      "quality", [](std::ostream& os) { instance().write_json(os); });
}

QualityTelemetry::TierMetrics& QualityTelemetry::tier_at(int tier) {
  if (tier < 0) tier = 0;
  while (int(tiers_.size()) <= tier) {
    const std::string base =
        "quality.tier." + std::to_string(tiers_.size()) + ".";
    TierMetrics tm;
    tm.compared = &reg().counter(
        base + "compared", "shadow comparisons attributed to this tier");
    tm.agree = &reg().counter(base + "agree",
                              "comparisons whose argmax agreed with exact");
    tm.flips =
        &reg().counter(base + "flips", "comparisons whose top-1 flipped");
    tm.mre = &reg().series(base + "logit_mre",
                           "per-request mean relative logit error vs exact");
    tm.mae = &reg().series(base + "logit_mae",
                           "per-request mean absolute logit error vs exact");
    tiers_.push_back(std::move(tm));
  }
  return tiers_[std::size_t(tier)];
}

void QualityTelemetry::configure(const QualityConfig& cfg) {
  std::lock_guard<std::mutex> lk(m_);
  slo_ = QualitySloTracker(cfg);
}

void QualityTelemetry::ensure_tiers(int max_tier) {
  std::lock_guard<std::mutex> lk(m_);
  tier_at(max_tier);
}

void QualityTelemetry::set_tier_operator(int tier, std::string op) {
  std::lock_guard<std::mutex> lk(m_);
  tier_at(tier).op = std::move(op);
}

void QualityTelemetry::record_comparison(int tier, const Comparison& c) {
  std::lock_guard<std::mutex> lk(m_);
  auto& tm = tier_at(tier);
  tm.compared->inc();
  tm.mre->add(c.mre);
  tm.mae->add(c.mae);
  if (c.agree) {
    tm.agree->inc();
  } else {
    tm.flips->inc();
    flips_->inc();
  }
  const auto before = slo_.verdict();
  const auto v = slo_.record(c.agree);
  slo_fast_g_->set(v.fast_agreement);
  slo_slow_g_->set(v.slow_agreement);
  slo_breached_g_->set(v.breached() ? 1.0 : 0.0);
  if (v.fast_breached && !before.fast_breached) slo_fast_breaches_->inc();
  if (v.slow_breached && !before.slow_breached) slo_slow_breaches_->inc();
}

void QualityTelemetry::record_attribution(int tier, const std::string& layer,
                                          double mre) {
  std::lock_guard<std::mutex> lk(m_);
  auto& tm = tier_at(tier);
  auto it = tm.layers.find(layer);
  if (it == tm.layers.end()) {
    auto* s = &reg().series(
        "quality.tier." + std::to_string(tier) + ".layer." + layer + ".mre",
        "activation MRE of this layer under the tier's table vs exact");
    it = tm.layers.emplace(layer, s).first;
  }
  it->second->add(mre);
}

QualitySloTracker::Verdict QualityTelemetry::slo() const {
  std::lock_guard<std::mutex> lk(m_);
  return slo_.verdict();
}

void QualityTelemetry::reset_slo() {
  std::lock_guard<std::mutex> lk(m_);
  slo_ = QualitySloTracker(QualityConfig{});
  slo_breached_g_->set(0.0);
  slo_fast_g_->set(0.0);
  slo_slow_g_->set(0.0);
}

void QualityTelemetry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  auto& r = reg();
  const auto v = slo_.verdict();
  os << "{\"sampled\":" << r.counter("quality.shadow.sampled").value()
     << ",\"enqueued\":" << r.counter("quality.shadow.enqueued").value()
     << ",\"dropped\":" << r.counter("quality.shadow.dropped").value()
     << ",\"compared\":" << r.counter("quality.shadow.compared").value()
     << ",\"skipped_exact\":"
     << r.counter("quality.shadow.skipped_exact").value()
     << ",\"flips\":" << flips_->value()
     << ",\"attribution_runs\":"
     << r.counter("quality.attribution.runs").value() << ",\"slo\":{"
     << "\"samples\":" << v.samples << ",\"fast_agreement\":";
  jnum(os, v.samples ? v.fast_agreement : std::nan(""));
  os << ",\"slow_agreement\":";
  jnum(os, v.samples ? v.slow_agreement : std::nan(""));
  os << ",\"breached\":" << (v.breached() ? "true" : "false")
     << ",\"fast_breaches\":" << slo_fast_breaches_->value()
     << ",\"slow_breaches\":" << slo_slow_breaches_->value()
     << "},\"tiers\":{";
  for (std::size_t k = 0; k < tiers_.size(); ++k) {
    const auto& tm = tiers_[k];
    if (k) os << ",";
    const auto compared = tm.compared->value();
    os << "\"" << k << "\":{\"operator\":\"" << tm.op
       << "\",\"compared\":" << compared << ",\"agree\":"
       << tm.agree->value() << ",\"flips\":" << tm.flips->value()
       << ",\"agreement\":";
    // An empty bin (tier never reached at this offered load) reports
    // null, never a fake 1.0 or 0.0.
    jnum(os, compared ? double(tm.agree->value()) / double(compared)
                      : std::nan(""));
    os << ",\"logit_mre\":";
    jseries(os, tm.mre);
    os << ",\"logit_mae\":";
    jseries(os, tm.mae);
    os << ",\"layers\":{";
    bool first = true;
    for (const auto& [name, series] : tm.layers) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":";
      jseries(os, series);
    }
    os << "}}";
  }
  os << "}}";
}

}  // namespace nga::quality
