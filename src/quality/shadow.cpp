#include "quality/shadow.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "obs/obs.hpp"

namespace nga::quality {

namespace {

obs::Counter& c(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}

// Best-effort low scheduling priority for the calling thread. On Linux
// nice is per-thread and a thread may always lower its own priority, so
// on a core-starved host the serving workers preempt the shadow lane
// instead of sharing timeslices with it. Elsewhere this is a no-op and
// the bounded drop-oldest queue remains the isolation mechanism.
void lower_thread_priority() {
#if defined(__linux__)
  setpriority(PRIO_PROCESS, static_cast<id_t>(::syscall(SYS_gettid)), 19);
#endif
}
obs::Gauge& depth_gauge() {
  return obs::MetricsRegistry::instance().gauge("quality.shadow.queue_depth");
}

// Mean relative error between two activation tensors (element-wise,
// exact as the reference).
double activation_mre(const nn::Tensor& a, const nn::Tensor& e) {
  const std::size_t n = std::min(a.v.size(), e.v.size());
  if (n == 0) return 0.0;
  constexpr double kEps = 1e-6;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    sum += std::abs(double(a.v[i]) - double(e.v[i])) /
           std::max(std::abs(double(e.v[i])), kEps);
  return sum / double(n);
}

}  // namespace

ShadowLane::ShadowLane(ShadowLaneConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.model_factory)
    throw std::invalid_argument("ShadowLane needs a model_factory");
  if (cfg_.mode != nn::Mode::kFloat && !cfg_.exact)
    throw std::invalid_argument(
        "ShadowLane needs the golden exact table in a quantized mode "
        "(shadowing against nothing would measure nothing)");
  if (cfg_.quality.queue_capacity < 1) cfg_.quality.queue_capacity = 1;
  // First touch of QualityTelemetry in the process: registers the
  // quality.* metric families and the "quality" JSON section. A rate-0
  // server never constructs a lane, so never gets here.
  QualityTelemetry::instance().configure(cfg_.quality);
}

ShadowLane::~ShadowLane() { drain_and_stop(); }

void ShadowLane::start() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (closed_ || thread_.joinable()) return;
  }
  thread_ = std::thread(&ShadowLane::run, this);
}

bool ShadowLane::enqueue(ShadowJob job) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (closed_) return false;
    if (q_.size() >= cfg_.quality.queue_capacity) {
      // Drop-oldest: under pressure the lane keeps the freshest
      // traffic; the serving path never waits for shadow capacity.
      q_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
      c("quality.shadow.dropped").inc();
    }
    q_.push_back(std::move(job));
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    c("quality.shadow.enqueued").inc();
    depth_gauge().set(double(q_.size()));
  }
  cv_.notify_one();
  return true;
}

void ShadowLane::drain_and_stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (closed_) return;
    closed_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Never started: the queued jobs are dead weight, not data — a lane
  // that never ran compared nothing.
  std::lock_guard<std::mutex> lk(m_);
  q_.clear();
  depth_gauge().set(0.0);
}

void ShadowLane::run() {
  lower_thread_priority();
  obs::TraceBuffer::instance().set_thread_name("quality.shadow");
  auto model = cfg_.model_factory();
  for (;;) {
    ShadowJob job;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
      if (q_.empty()) break;  // closed and fully drained
      // Scavenge: with a busy probe, start a shadow forward only when
      // the serving path is idle. Re-checked before every forward (see
      // wait_for_idle); during drain the backlog runs unconditionally.
      while (!closed_ && cfg_.busy && cfg_.busy())
        cv_.wait_for(lk, std::chrono::microseconds(500));
      if (closed_ && q_.empty()) break;
      if (q_.empty()) continue;
      job = std::move(q_.front());
      q_.pop_front();
      depth_gauge().set(double(q_.size()));
    }
    process(job, *model);
    // Best-effort low priority: the lane gives the scheduler every
    // chance to run serving threads first. Its real isolation is the
    // bounded drop-oldest queue, not the yield.
    std::this_thread::yield();
  }
}

void ShadowLane::wait_for_idle() {
  if (!cfg_.busy) return;
  std::unique_lock<std::mutex> lk(m_);
  while (!closed_ && cfg_.busy())
    cv_.wait_for(lk, std::chrono::microseconds(500));
}

void ShadowLane::process(ShadowJob& job, nn::Model& model) {
  // TimedSection: wall time accumulates into the quality.shadow.exec
  // section AND each shadow re-execution lands as a span on the
  // "quality.shadow" lane of the chrome-trace export.
  obs::TimedSection ts("quality.shadow.exec");
  nn::Exec ex;
  ex.mode = cfg_.mode;
  ex.mul = cfg_.exact;
  const nn::Tensor exact_logits = model.forward(job.x, ex);
  const Comparison cmp = compare_logits(job.approx_logits, exact_logits.v);
  QualityTelemetry::instance().record_comparison(job.tier, cmp);
  const u64 n = compared_.fetch_add(1, std::memory_order_relaxed) + 1;
  c("quality.shadow.compared").inc();
  const int every = cfg_.quality.attribution_every;
  if (every > 0 && cfg_.tier_table && (n - 1) % u64(every) == 0)
    attribute(job, model);
}

void ShadowLane::attribute(const ShadowJob& job, nn::Model& model) {
  const nn::MulTable* tier_mul = cfg_.tier_table(job.tier);
  if (!tier_mul && cfg_.mode != nn::Mode::kFloat) return;
  // Each of the two capture runs waits for a serving-path idle gap of
  // its own — an attribution spanning a burst boundary would otherwise
  // time-share its second forward with live requests. The second wait
  // lands inside the timed section, so quality.shadow.attribution wall
  // time includes any mid-attribution stall (which is what the lane
  // actually spent).
  wait_for_idle();
  obs::TimedSection ts("quality.shadow.attribution");
  // Dual run with activation capture: the same input down the tier's
  // approximate table and down the exact table, diffed layer by layer,
  // so end-to-end error is charged to the layer where it arises.
  std::vector<nn::Tensor> approx_acts, exact_acts;
  nn::Exec ex;
  ex.mode = cfg_.mode;
  ex.mul = tier_mul;
  ex.capture = &approx_acts;
  model.forward(job.x, ex);
  wait_for_idle();
  ex.mul = cfg_.exact;
  ex.capture = &exact_acts;
  model.forward(job.x, ex);
  attributions_.fetch_add(1, std::memory_order_relaxed);
  c("quality.attribution.runs").inc();
  const auto names = model.layer_names();
  const std::size_t layers =
      std::min({approx_acts.size(), exact_acts.size(), names.size()});
  auto& telemetry = QualityTelemetry::instance();
  for (std::size_t i = 0; i < layers; ++i)
    telemetry.record_attribution(
        job.tier, std::to_string(i) + "." + names[i],
        activation_mre(approx_acts[i], exact_acts[i]));
}

ShadowLane::Stats ShadowLane::stats() const {
  Stats st;
  st.enqueued = enqueued_.load(std::memory_order_relaxed);
  st.dropped = dropped_.load(std::memory_order_relaxed);
  st.compared = compared_.load(std::memory_order_relaxed);
  st.attribution_runs = attributions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(m_);
  st.queue_depth = q_.size();
  return st;
}

}  // namespace nga::quality
