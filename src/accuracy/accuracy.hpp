// Decimal-accuracy analysis and ring-plot censuses (Figs. 6, 7, 9, 10).
//
// "Decimal accuracy" follows Gustafson: between two adjacent
// representable values a < b the format can distinguish decades at
// granularity log10(b/a), so its accuracy there is -log10(log10(b/a))
// decimal digits. Plotting this per representable value gives the
// trapezoid (floats), ramp (fixed point) and isosceles triangle (posits)
// of Fig. 9, and the bit-string-indexed view of Fig. 10.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "fixedpoint/fixed.hpp"
#include "posit/posit.hpp"
#include "softfloat/floatmp.hpp"
#include "util/bits.hpp"

namespace nga::acc {

/// Decimal digits of agreement between adjacent representable values.
double decimal_accuracy_between(double lo, double hi);

/// Decimal accuracy of representing @p x_true by @p x_repr (Gustafson's
/// pairwise definition): -log10(|log10(x_repr / x_true)|).
double decimal_accuracy(double x_repr, double x_true);

/// One sample of an accuracy curve.
struct AccuracyPoint {
  util::u64 code = 0;   ///< positive-code index (Fig. 10 x-axis)
  double value = 0.0;   ///< representable value (Fig. 9 uses log10 of it)
  double accuracy = 0;  ///< decimal accuracy at this value
};

/// Accuracy per positive finite code of a float format, ascending.
template <unsigned E, unsigned M>
std::vector<AccuracyPoint> accuracy_curve_float() {
  using F = sf::floatmp<E, M>;
  std::vector<AccuracyPoint> out;
  const util::u64 last = F::max_normal().bits();  // largest finite code
  auto value = [](util::u64 c) {
    return F::from_bits(typename F::storage_t(c)).to_double();
  };
  for (util::u64 c = 1; c <= last; ++c) {
    const double acc = c < last
                           ? decimal_accuracy_between(value(c), value(c + 1))
                           : decimal_accuracy_between(value(c - 1), value(c));
    out.push_back({c, value(c), acc});
  }
  return out;
}

/// Accuracy per positive code of a posit format, ascending.
template <unsigned N, unsigned ES>
std::vector<AccuracyPoint> accuracy_curve_posit() {
  using P = ps::posit<N, ES>;
  std::vector<AccuracyPoint> out;
  const util::u64 top = (util::u64{1} << (N - 1)) - 1;  // maxpos code
  for (util::u64 c = 1; c <= top; ++c) {
    const double v = P::from_bits(typename P::storage_t(c)).to_double();
    const double w =
        c == top ? v : P::from_bits(typename P::storage_t(c + 1)).to_double();
    const double lo =
        c == top ? P::from_bits(typename P::storage_t(c - 1)).to_double() : v;
    out.push_back(
        {c, v, decimal_accuracy_between(c == top ? lo : v, c == top ? v : w)});
  }
  return out;
}

/// Accuracy per positive code of W-bit fixed point with F fraction bits.
std::vector<AccuracyPoint> accuracy_curve_fixed(unsigned width,
                                                unsigned frac_bits);

/// log10(largest positive / smallest positive) — the "orders of
/// magnitude of dynamic range" quoted in Section V.
double dynamic_range_orders(const std::vector<AccuracyPoint>& curve);

// --- Ring censuses (Figs. 6 and 7) -------------------------------------

/// A labelled slice of the 2^N-code ring.
struct RingRegion {
  std::string name;
  util::u64 codes = 0;
  double fraction = 0.0;  ///< codes / 2^N
};

/// Fig. 6: the IEEE float ring. Regions: +-zero, subnormal traps,
/// inf/NaN traps, normals, and the "theorems are valid" arc (magnitudes
/// in [sqrt(min normal), sqrt(max normal)] where x*y can neither
/// overflow nor underflow).
template <unsigned E, unsigned M>
std::vector<RingRegion> float_ring_census() {
  using F = sf::floatmp<E, M>;
  util::u64 zero = 0, sub = 0, inf_nan = 0, normal = 0, theorem = 0;
  const double lo_t = std::sqrt(F::min_normal().to_double());
  const double hi_t = std::sqrt(F::max_normal().to_double());
  const util::u64 total = util::u64{1} << (1 + E + M);
  for (util::u64 c = 0; c < total; ++c) {
    const F f = F::from_bits(typename F::storage_t(c));
    if (f.is_zero())
      ++zero;
    else if (f.is_subnormal())
      ++sub;
    else if (f.is_inf() || f.is_nan())
      ++inf_nan;
    else {
      ++normal;
      const double m = std::fabs(f.to_double());
      if (m >= lo_t && m <= hi_t) ++theorem;
    }
  }
  auto frac = [&](util::u64 c) { return double(c) / double(total); };
  return {
      {"zero (+-0)", zero, frac(zero)},
      {"subnormal trap", sub, frac(sub)},
      {"inf/NaN trap", inf_nan, frac(inf_nan)},
      {"normals", normal, frac(normal)},
      {"trap total (exp all-0s/1s)", zero + sub + inf_nan,
       frac(zero + sub + inf_nan)},
      {"theorems-valid arc", theorem, frac(theorem)},
  };
}

/// Fig. 7: the posit ring. Regions: the two exception values, the
/// fixed-field arcs (exactly two regime bits: decodable as easily as a
/// float, no leading-run count needed), and the tapered remainder.
template <unsigned N, unsigned ES>
std::vector<RingRegion> posit_ring_census() {
  using P = ps::posit<N, ES>;
  util::u64 exceptions = 0, fixed_field = 0, tapered = 0, theorem = 0;
  const util::u64 total = util::u64{1} << N;
  for (util::u64 c = 0; c < total; ++c) {
    const P p = P::from_bits(typename P::storage_t(c));
    if (p.is_zero() || p.is_nar()) {
      ++exceptions;
      continue;
    }
    // Magnitude pattern; exactly two regime bits means bits N-2 and N-3
    // differ (run length 1 with terminator present).
    const util::u64 mag = p.is_negative()
                              ? util::twos_complement(util::u64(p.bits()), N)
                              : util::u64(p.bits());
    const unsigned b1 = util::bit_of(mag, N - 2);
    const unsigned b2 = util::bit_of(mag, N - 3);
    if (b1 != b2)
      ++fixed_field;
    else
      ++tapered;
    ++theorem;  // every non-exception product stays on the ring (no
                // overflow/underflow): the whole real arc is "valid"
  }
  auto frac = [&](util::u64 c) { return double(c) / double(total); };
  return {
      {"exceptions (0, NaR)", exceptions, frac(exceptions)},
      {"fixed-field arcs (2 regime bits)", fixed_field, frac(fixed_field)},
      {"tapered regimes", tapered, frac(tapered)},
      {"theorems-valid arc", theorem, frac(theorem)},
  };
}

}  // namespace nga::acc
