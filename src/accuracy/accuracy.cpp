#include "accuracy/accuracy.hpp"

#include <cmath>
#include <limits>

namespace nga::acc {

double decimal_accuracy_between(double lo, double hi) {
  if (!(hi > lo) || lo <= 0.0) return 0.0;
  return -std::log10(std::log10(hi / lo));
}

double decimal_accuracy(double x_repr, double x_true) {
  if (x_repr == x_true) return std::numeric_limits<double>::infinity();
  if (x_repr <= 0.0 || x_true <= 0.0) return 0.0;
  return -std::log10(std::fabs(std::log10(x_repr / x_true)));
}

std::vector<AccuracyPoint> accuracy_curve_fixed(unsigned width,
                                                unsigned frac_bits) {
  std::vector<AccuracyPoint> out;
  const util::u64 top = (util::u64{1} << (width - 1)) - 1;
  const double ulp = std::ldexp(1.0, -int(frac_bits));
  out.reserve(top);
  for (util::u64 c = 1; c <= top; ++c) {
    const double v = double(c) * ulp;
    const double acc = c < top
                           ? decimal_accuracy_between(v, double(c + 1) * ulp)
                           : decimal_accuracy_between(double(c - 1) * ulp, v);
    out.push_back({c, v, acc});
  }
  return out;
}

double dynamic_range_orders(const std::vector<AccuracyPoint>& curve) {
  if (curve.empty()) return 0.0;
  return std::log10(curve.back().value / curve.front().value);
}

}  // namespace nga::acc
