#include "shard/registry.hpp"

#include <stdexcept>

namespace nga::shard {

void ModelRegistry::add(Variant v) {
  if (!v.model_factory)
    throw std::invalid_argument("shard: variant '" + v.name +
                                "' has no model_factory");
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& e : variants_)
    if (e->name == v.name)
      throw std::invalid_argument("shard: duplicate variant '" + v.name + "'");
  variants_.push_back(std::make_unique<Variant>(std::move(v)));
}

const Variant* ModelRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& e : variants_)
    if (e->name == name) return e.get();
  return nullptr;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::string> out;
  out.reserve(variants_.size());
  for (const auto& e : variants_) out.push_back(e->name);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return variants_.size();
}

serve::ServerConfig ModelRegistry::server_config(std::string_view name) const {
  const Variant* v = find(name);
  if (!v)
    throw std::out_of_range("shard: unknown variant '" + std::string(name) +
                            "'");
  serve::ServerConfig c;
  c.mode = v->mode;
  c.in_c = v->in_c;
  c.in_h = v->in_h;
  c.in_w = v->in_w;
  c.model_factory = v->model_factory;
  c.mul_factory = v->mul_factory;
  c.exact_fallback = v->exact_fallback;
  return c;
}

}  // namespace nga::shard
