#include "shard/sharded.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace nga::shard {

using serve::Outcome;
using serve::RejectReason;
using serve::Response;

namespace {

obs::Counter& c(std::string_view name) {
  return obs::MetricsRegistry::instance().counter(name);
}
obs::Gauge& g(std::string_view name) {
  return obs::MetricsRegistry::instance().gauge(name);
}

void add_stats(serve::Server::Stats& into, const serve::Server::Stats& s) {
  into.submitted += s.submitted;
  into.served += s.served;
  into.rejected += s.rejected;
  into.shed += s.shed;
  into.retries += s.retries;
  into.batches += s.batches;
  into.codel_dropped += s.codel_dropped;
  into.overload_shed += s.overload_shed;
  into.budget_exhausted += s.budget_exhausted;
}

}  // namespace

// ---------------------------------------------------------------- telemetry

ShardTelemetry& ShardTelemetry::instance() {
  // Leaked on purpose: the registered JSON section may run during
  // static destruction (same lifetime discipline as the Scrubber).
  static ShardTelemetry* t = new ShardTelemetry();
  return *t;
}

ShardTelemetry::ShardTelemetry() {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("shard.submitted", "Requests entering the sharding layer.");
  reg.counter("shard.routed", "Requests handed to a shard incarnation.");
  reg.counter("shard.rerouted",
              "Requests served by a non-primary shard (failover spill).");
  reg.counter("shard.spill_rejected",
              "Rerouted requests refused past the spill token budget.");
  reg.counter("shard.tenant_limited",
              "Requests refused over their tenant's AIMD budget.");
  reg.counter("shard.no_shard", "Requests arriving while no shard was up.");
  reg.counter("shard.failovers", "Shard failovers (ring eviction + drain).");
  reg.counter("shard.restarts", "Fresh shard incarnations after failover.");
  reg.counter("shard.kills", "Injected shard kills (chaos hook).");
  reg.gauge("shard.shards", "Configured shard count of the live topology.");
  reg.gauge("shard.up", "Shards currently Up in the live ring.");
  obs::register_json_section(
      "shard", [](std::ostream& os) { instance().write_json(os); });
}

void ShardTelemetry::on_submit(std::string_view tenant) {
  c("shard.submitted").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++submitted_;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(std::string(tenant), TenantRow{}).first;
    // Per-tenant attribution counters, registered on first sight so
    // the exposition carries them even for tenants that were never
    // limited.
    auto& reg = obs::MetricsRegistry::instance();
    const std::string base = "shard.tenant." + it->first;
    reg.counter(base + ".submitted", "Requests submitted by this tenant.");
    reg.counter(base + ".limited",
                "Requests refused over this tenant's AIMD budget.");
  }
  ++it->second.submitted;
  c("shard.tenant." + it->first + ".submitted").inc();
}

void ShardTelemetry::on_tenant_limited(std::string_view tenant) {
  c("shard.tenant_limited").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++tenant_limited_;
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) {
    ++it->second.limited;
    c("shard.tenant." + it->first + ".limited").inc();
  }
}

void ShardTelemetry::on_routed() {
  c("shard.routed").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++routed_;
}

void ShardTelemetry::on_rerouted() {
  c("shard.rerouted").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++rerouted_;
}

void ShardTelemetry::on_spill_rejected() {
  c("shard.spill_rejected").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++spill_rejected_;
}

void ShardTelemetry::on_no_shard() {
  c("shard.no_shard").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++no_shard_;
}

void ShardTelemetry::on_failover(int shard) {
  c("shard.failovers").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++failovers_;
  ++shards_[shard].failovers;
}

void ShardTelemetry::on_restart(int shard) {
  c("shard.restarts").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++restarts_;
  ++shards_[shard].restarts;
}

void ShardTelemetry::on_kill(int shard) {
  c("shard.kills").inc();
  std::lock_guard<std::mutex> lk(m_);
  ++kills_;
  ++shards_[shard].kills;
}

void ShardTelemetry::set_topology(int shards, int up) {
  g("shard.shards").set(double(shards));
  g("shard.up").set(double(up));
  std::lock_guard<std::mutex> lk(m_);
  topo_shards_ = shards;
  topo_up_ = up;
}

void ShardTelemetry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  os << "{\"shards\":" << topo_shards_ << ",\"up\":" << topo_up_
     << ",\"submitted\":" << submitted_
     << ",\"tenant_limited\":" << tenant_limited_ << ",\"routed\":" << routed_
     << ",\"rerouted\":" << rerouted_
     << ",\"spill_rejected\":" << spill_rejected_
     << ",\"no_shard\":" << no_shard_ << ",\"failovers\":" << failovers_
     << ",\"restarts\":" << restarts_ << ",\"kills\":" << kills_
     << ",\"tenants\":{";
  bool first = true;
  for (const auto& [name, row] : tenants_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::json::escape(name) << "\":{\"submitted\":"
       << row.submitted << ",\"limited\":" << row.limited << "}";
  }
  os << "},\"per_shard\":{";
  first = true;
  for (const auto& [id, row] : shards_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << id << "\":{\"failovers\":" << row.failovers
       << ",\"restarts\":" << row.restarts << ",\"kills\":" << row.kills
       << "}";
  }
  os << "}}";
}

// ------------------------------------------------------------ ShardedServer

ShardedServer::ShardedServer(ShardedConfig cfg) : cfg_(std::move(cfg)) {}

ShardedServer::~ShardedServer() { drain(); }

serve::ServerConfig ShardedServer::make_config(int shard) const {
  serve::ServerConfig c;
  if (cfg_.shard_config)
    c = cfg_.shard_config(shard);
  else
    c = cfg_.registry->server_config(cfg_.variant);
  if (cfg_.tune) cfg_.tune(shard, c);
  // Decorrelate per-shard randomness (backoff jitter, trace sampling)
  // deterministically from the topology seed.
  c.seed = mix64(cfg_.seed ^ mix64(u64(shard) + 0x51AB'1EDu)) | 1u;
  // Every scrub registration this shard's workers make carries the
  // shard's fault-domain scope, so failover can purge them wholesale.
  if (c.integrity.scope.empty())
    c.integrity.scope = "shard" + std::to_string(shard);
  return c;
}

void ShardedServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (cfg_.shards < 1)
    throw std::invalid_argument("shard: need at least one shard");
  if (!cfg_.shard_config && !(cfg_.registry && !cfg_.variant.empty()))
    throw std::invalid_argument(
        "shard: need registry+variant or a shard_config factory");
  {
    std::lock_guard<std::mutex> lk(m_);
    full_ring_ = ConsistentHashRing(cfg_.seed, cfg_.vnodes);
    live_ring_ = ConsistentHashRing(cfg_.seed, cfg_.vnodes);
    slots_.clear();
    slots_.reserve(std::size_t(cfg_.shards));
    for (int i = 0; i < cfg_.shards; ++i) {
      Slot s;
      s.id = i;
      s.proto = make_config(i);
      s.server = std::make_shared<serve::Server>(s.proto);
      slots_.push_back(std::move(s));
    }
    for (auto& s : slots_) {
      s.server->start();
      full_ring_.add(s.id);
      live_ring_.add(s.id);
    }
    spill_tokens_ = cfg_.failover.spill_burst;
    spill_refill_at_ = Clock::now();
  }
  running_.store(true, std::memory_order_release);
  ShardTelemetry::instance().set_topology(cfg_.shards, cfg_.shards);
  if (cfg_.failover.enabled && cfg_.failover.check_every.count() > 0)
    monitor_ = std::thread(&ShardedServer::monitor_main, this);
}

std::future<Response> ShardedServer::submit(std::string_view tenant,
                                            nn::Tensor x,
                                            std::chrono::microseconds budget) {
  return submit(tenant, std::move(x), Clock::now() + budget);
}

std::future<Response> ShardedServer::submit(std::string_view tenant,
                                            nn::Tensor x,
                                            Clock::time_point deadline) {
  const u64 seq = submitted_.fetch_add(1, std::memory_order_relaxed);
  auto& tel = ShardTelemetry::instance();
  tel.on_submit(tenant);
  TenantState* ts = tenant_state(tenant);
  if (ts) ts->submitted.fetch_add(1, std::memory_order_relaxed);
  if (draining_.load(std::memory_order_acquire))
    return reject(RejectReason::kDraining);
  if (!running_.load(std::memory_order_acquire))
    return reject(RejectReason::kNotServing);
  // Per-tenant budget FIRST: a storming tenant is refused before it
  // can touch any shard's queue or another tenant's capacity.
  guard::AimdLimiter* lim = ts ? &ts->limiter : nullptr;
  if (lim && !lim->try_acquire()) {
    ts->limited.fetch_add(1, std::memory_order_relaxed);
    tenant_limited_.fetch_add(1, std::memory_order_relaxed);
    tel.on_tenant_limited(tenant);
    return reject(RejectReason::kTenantLimited);
  }
  const u64 key =
      ConsistentHashRing::request_key(tenant, seq, cfg_.tenant_spread);
  std::shared_ptr<serve::Server> target;
  bool spilled = false;
  {
    std::lock_guard<std::mutex> lk(m_);
    const int primary = full_ring_.route(key);
    const int live = live_ring_.route(key);
    if (live < 0) {
      no_shard_.fetch_add(1, std::memory_order_relaxed);
      tel.on_no_shard();
      if (lim) lim->release(0.0, false);
      return reject(RejectReason::kNotServing);
    }
    spilled = (live != primary);
    if (spilled && !spill_take_locked(Clock::now())) {
      spill_rejected_.fetch_add(1, std::memory_order_relaxed);
      tel.on_spill_rejected();
      if (lim) lim->release(0.0, false);
      return reject(RejectReason::kOverloaded);
    }
    target = slots_[std::size_t(live)].server;
  }
  if (spilled) {
    rerouted_.fetch_add(1, std::memory_order_relaxed);
    tel.on_rerouted();
  }
  routed_.fetch_add(1, std::memory_order_relaxed);
  tel.on_routed();
  std::function<void(const Response&)> hook;
  if (lim)
    hook = [lim](const Response& r) {
      lim->release(r.latency_ms, r.outcome == Outcome::kShed);
    };
  // From here the request is the shard incarnation's: its drain
  // invariant accounts for it, whatever happens next (the incarnation
  // is preserved in the retired list across failover).
  return target->submit(std::move(x), deadline, std::move(hook));
}

std::future<Response> ShardedServer::reject(RejectReason why) {
  layer_rejected_.fetch_add(1, std::memory_order_relaxed);
  std::promise<Response> p;
  auto fut = p.get_future();
  Response r;
  r.outcome = Outcome::kRejected;
  r.reason = why;
  p.set_value(std::move(r));
  return fut;
}

ShardedServer::TenantState* ShardedServer::tenant_state(
    std::string_view tenant) {
  if (!cfg_.tenant.enabled) return nullptr;
  std::lock_guard<std::mutex> lk(tenants_m_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    auto acfg = cfg_.tenant.admission;
    acfg.enabled = true;
    it = tenants_
             .emplace(std::string(tenant), std::make_unique<TenantState>(acfg))
             .first;
  }
  return it->second.get();
}

bool ShardedServer::spill_take_locked(Clock::time_point now) {
  if (cfg_.failover.spill_burst <= 0.0) return true;  // unbounded spill
  const double dt =
      std::chrono::duration<double>(now - spill_refill_at_).count();
  spill_refill_at_ = now;
  spill_tokens_ = std::min(cfg_.failover.spill_burst,
                           spill_tokens_ + dt * cfg_.failover.spill_per_sec);
  if (spill_tokens_ >= 1.0) {
    spill_tokens_ -= 1.0;
    return true;
  }
  return false;
}

int ShardedServer::shard_of(std::string_view tenant) const {
  std::lock_guard<std::mutex> lk(m_);
  return full_ring_.route(ConsistentHashRing::tenant_key(tenant));
}

int ShardedServer::live_shard_of(std::string_view tenant) const {
  std::lock_guard<std::mutex> lk(m_);
  return live_ring_.route(ConsistentHashRing::tenant_key(tenant));
}

void ShardedServer::kill_shard(int shard) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (shard < 0 || std::size_t(shard) >= slots_.size()) return;
    slots_[std::size_t(shard)].kill_requested = true;
    ++slots_[std::size_t(shard)].kills;
  }
  kills_.fetch_add(1, std::memory_order_relaxed);
  ShardTelemetry::instance().on_kill(shard);
}

void ShardedServer::poll_health() { health_pass(); }

void ShardedServer::health_pass() {
  if (!cfg_.failover.enabled) return;
  if (!running_.load(std::memory_order_acquire) ||
      draining_.load(std::memory_order_acquire))
    return;
  std::vector<int> due;
  {
    std::lock_guard<std::mutex> lk(m_);
    for (auto& s : slots_) {
      if (s.health != ShardHealth::kUp || s.failing_over || !s.server)
        continue;
      bool fail = s.kill_requested;
      if (s.server->state() == serve::State::kDegraded) {
        if (++s.degraded_streak >= cfg_.failover.degraded_polls) fail = true;
      } else {
        s.degraded_streak = 0;
      }
      if (!fail) {
        const auto gs = s.server->guard_stats();
        if (cfg_.failover.all_retired_fails && s.proto.workers > 0 &&
            gs.breaker_retired >= u64(s.proto.workers))
          fail = true;
        if (cfg_.failover.max_worker_replacements > 0 &&
            gs.workers_replaced >= cfg_.failover.max_worker_replacements)
          fail = true;
      }
      if (fail) {
        s.failing_over = true;
        due.push_back(s.id);
      }
    }
  }
  for (int idx : due) fail_over(idx);
}

void ShardedServer::fail_over(int idx) {
  auto& tel = ShardTelemetry::instance();
  std::shared_ptr<serve::Server> victim;
  {
    std::lock_guard<std::mutex> lk(m_);
    Slot& s = slots_[std::size_t(idx)];
    s.kill_requested = false;
    s.degraded_streak = 0;
    s.health = ShardHealth::kDown;
    victim = s.server;
    live_ring_.remove(idx);
    ++s.failovers;
    tel.set_topology(cfg_.shards, up_shards_locked());
  }
  failovers_.fetch_add(1, std::memory_order_relaxed);
  tel.on_failover(idx);
  // Graceful victim teardown OUTSIDE the routing lock: the ring
  // already evicted it, so new traffic spills to survivors while every
  // request the victim had accepted still resolves (drain invariant).
  if (victim) victim->drain();
  {
    std::lock_guard<std::mutex> lk(m_);
    Slot& s = slots_[std::size_t(idx)];
    if (victim) s.retired.push_back(std::move(victim));
    s.server.reset();
  }
  bool restarted = false;
  if (cfg_.failover.restart && !draining_.load(std::memory_order_acquire)) {
    if (cfg_.failover.restart_hold.count() > 0) {
      // Interruptible hold: drain() must not wait out a long reboot.
      std::unique_lock<std::mutex> mlk(monitor_m_);
      monitor_cv_.wait_for(mlk, cfg_.failover.restart_hold,
                           [this] { return monitor_stop_; });
    }
    if (!draining_.load(std::memory_order_acquire)) {
      auto fresh =
          std::make_shared<serve::Server>(slots_[std::size_t(idx)].proto);
      fresh->start();
      {
        std::lock_guard<std::mutex> lk(m_);
        Slot& s = slots_[std::size_t(idx)];
        s.server = std::move(fresh);
        s.health = ShardHealth::kUp;
        live_ring_.add(idx);
        ++s.restarts;
      }
      restarts_.fetch_add(1, std::memory_order_relaxed);
      tel.on_restart(idx);
      restarted = true;
    }
  }
  (void)restarted;
  {
    std::lock_guard<std::mutex> lk(m_);
    slots_[std::size_t(idx)].failing_over = false;
    tel.set_topology(cfg_.shards, up_shards_locked());
  }
}

void ShardedServer::monitor_main() {
  std::unique_lock<std::mutex> mlk(monitor_m_);
  while (!monitor_stop_) {
    monitor_cv_.wait_for(mlk, cfg_.failover.check_every,
                         [this] { return monitor_stop_; });
    if (monitor_stop_) break;
    mlk.unlock();
    health_pass();
    mlk.lock();
  }
}

int ShardedServer::up_shards_locked() const {
  int up = 0;
  for (const auto& s : slots_)
    if (s.health == ShardHealth::kUp) ++up;
  return up;
}

void ShardedServer::drain() {
  std::lock_guard<std::mutex> dlk(drain_m_);
  if (drained_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  if (monitor_.joinable()) {
    {
      std::lock_guard<std::mutex> mlk(monitor_m_);
      monitor_stop_ = true;
    }
    monitor_cv_.notify_all();
    monitor_.join();
  }
  std::vector<std::shared_ptr<serve::Server>> live;
  {
    std::lock_guard<std::mutex> lk(m_);
    for (auto& s : slots_)
      if (s.server) live.push_back(s.server);
  }
  for (auto& sv : live) sv->drain();
  running_.store(false, std::memory_order_release);
  drained_.store(true, std::memory_order_release);
  ShardTelemetry::instance().set_topology(cfg_.shards, 0);
}

ShardHealth ShardedServer::shard_health(int shard) const {
  std::lock_guard<std::mutex> lk(m_);
  if (shard < 0 || std::size_t(shard) >= slots_.size())
    return ShardHealth::kDown;
  return slots_[std::size_t(shard)].health;
}

serve::Server::Stats ShardedServer::shard_stats(int shard) const {
  serve::Server::Stats total{};
  std::lock_guard<std::mutex> lk(m_);
  if (shard < 0 || std::size_t(shard) >= slots_.size()) return total;
  const Slot& s = slots_[std::size_t(shard)];
  for (const auto& r : s.retired) add_stats(total, r->stats());
  if (s.server) add_stats(total, s.server->stats());
  return total;
}

serve::Server::GuardStats ShardedServer::shard_guard_stats(int shard) const {
  std::lock_guard<std::mutex> lk(m_);
  if (shard < 0 || std::size_t(shard) >= slots_.size()) return {};
  const Slot& s = slots_[std::size_t(shard)];
  if (!s.server) return {};
  return s.server->guard_stats();
}

ShardedServer::Stats ShardedServer::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.routed = routed_.load(std::memory_order_relaxed);
  s.layer_rejected = layer_rejected_.load(std::memory_order_relaxed);
  s.tenant_limited = tenant_limited_.load(std::memory_order_relaxed);
  s.spill_rejected = spill_rejected_.load(std::memory_order_relaxed);
  s.no_shard = no_shard_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.restarts = restarts_.load(std::memory_order_relaxed);
  s.kills = kills_.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::pair<std::string, ShardedServer::TenantStats>>
ShardedServer::tenant_stats() const {
  std::vector<std::pair<std::string, TenantStats>> out;
  std::lock_guard<std::mutex> lk(tenants_m_);
  for (const auto& [name, st] : tenants_) {
    TenantStats row;
    row.submitted = st->submitted.load(std::memory_order_relaxed);
    row.limited = st->limited.load(std::memory_order_relaxed);
    out.emplace_back(name, row);
  }
  return out;
}

ShardedServer::Accounting ShardedServer::accounting() const {
  Accounting a;
  a.submitted = submitted_.load(std::memory_order_relaxed);
  a.layer_rejected = layer_rejected_.load(std::memory_order_relaxed);
  a.routed = routed_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& s : slots_) {
    auto check = [&](const serve::Server& sv) {
      const auto st = sv.stats();
      a.shard_submitted += st.submitted;
      a.shard_served += st.served;
      a.shard_rejected += st.rejected;
      a.shard_shed += st.shed;
      if (st.served + st.rejected + st.shed != st.submitted)
        a.per_shard_ok = false;
    };
    for (const auto& r : s.retired) check(*r);
    if (s.server) check(*s.server);
  }
  a.global_ok = (a.submitted == a.layer_rejected + a.routed) &&
                (a.routed == a.shard_submitted);
  return a;
}

}  // namespace nga::shard
