// nga::shard — umbrella header: multi-tenant fault-domain sharding.
//
//   ring.hpp      seeded consistent-hash ring (routing + failover math)
//   registry.hpp  ModelRegistry of named (model × MulTable × precision)
//                 serving variants
//   sharded.hpp   ShardedServer: shared-nothing shards, per-tenant AIMD
//                 budgets, shard failover under a bounded spill budget
#pragma once

#include "shard/registry.hpp"
#include "shard/ring.hpp"
#include "shard/sharded.hpp"
