// nga::shard — ShardedServer: shared-nothing fault-domain sharding
// over nga::serve.
//
// One serve::Server is already a complete fault domain: it owns its
// admission queue, worker pool with per-worker model + MulTable
// replicas, watchdog, circuit breakers, overload ladder, and integrity
// scrub registrations. ShardedServer composes N of them into one
// multi-tenant service:
//
//   routing    a seeded consistent-hash ring maps (tenant, request)
//              keys to shards; tenants are affine to "their" shard so
//              a blast stays inside one domain;
//   tenants    per-tenant AIMD budgets (guard::AimdLimiter) sit ABOVE
//              the ring: a tenant over its adaptive in-flight budget
//              is refused at the door with kTenantLimited — one
//              tenant's storm cannot occupy another tenant's shard
//              capacity. Tokens return through Request::on_finish at
//              the Server's single accounting choke point;
//   failover   a monitor (or manual poll_health()) watches each
//              shard: an injected kill, a Degraded health streak,
//              every replica breaker-retired, or watchdog worker
//              replacements past a cap marks the shard Down. Its keys
//              reroute to the survivors under a bounded spill token
//              budget (so a dying shard cannot stampede the healthy
//              ones) while the victim drains — every queued request
//              still resolves — and restarts fresh; on rejoin its
//              keys come home (ring minimal-movement property).
//
// Accounting: the Server drain invariant holds per shard incarnation
// by construction; this layer adds its own — every submit either
// resolves here (typed layer reject) or is handed to exactly one
// shard incarnation, so
//   submitted == layer_rejected + sum(incarnation.submitted)
// and accounting() checks both after drain().
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "guard/admission.hpp"
#include "serve/server.hpp"
#include "shard/registry.hpp"
#include "shard/ring.hpp"

namespace nga::shard {

enum class ShardHealth { kUp, kDown };

constexpr std::string_view shard_health_name(ShardHealth h) {
  switch (h) {
    case ShardHealth::kUp: return "up";
    case ShardHealth::kDown: return "down";
  }
  return "?";
}

struct FailoverConfig {
  bool enabled = true;
  /// Monitor cadence; 0 = no monitor thread, callers drive
  /// poll_health() themselves (tests).
  std::chrono::milliseconds check_every{10};
  /// Consecutive polls observing serve::State::kDegraded before the
  /// shard fails over (hysteresis against a transient dip).
  int degraded_polls = 3;
  /// Fail over when every replica's breaker has permanently retired
  /// (the shard can only serve on the exact path, or not at all).
  bool all_retired_fails = true;
  /// > 0: fail over after this many watchdog worker replacements in
  /// one incarnation (the pool is churning, not healing).
  util::u64 max_worker_replacements = 0;
  /// Restart a failed-over shard with a fresh incarnation (after
  /// restart_hold); false leaves it Down until restart_shard().
  bool restart = true;
  /// Injected downtime between drain and restart — models the real
  /// cost of a reboot and is what the shared-everything baseline pays
  /// across ALL tenants in the chaos bench.
  std::chrono::milliseconds restart_hold{0};
  /// Spill token bucket bounding rerouted traffic: a failed shard's
  /// keys may land on survivors at this burst/refill budget; beyond
  /// it they are rejected (kOverloaded) instead of stampeding the
  /// healthy shards.
  double spill_burst = 256.0;
  double spill_per_sec = 128.0;
};

struct TenantConfig {
  bool enabled = false;
  /// Per-tenant AIMD budget parameters (one independent AimdLimiter
  /// per tenant name; the `enabled` field inside is ignored).
  guard::AdmissionConfig admission;
};

struct ShardedConfig {
  int shards = 2;
  int vnodes = 128;
  util::u64 seed = 1;

  /// WHAT to serve: a registry variant...
  const ModelRegistry* registry = nullptr;
  std::string variant;
  /// ...or a per-shard config factory (takes precedence when set).
  std::function<serve::ServerConfig(int shard)> shard_config;
  /// Decorates the per-shard ServerConfig (capacity, guard, integrity
  /// knobs) after the prototype is built, before the shard starts.
  std::function<void(int shard, serve::ServerConfig&)> tune;

  /// Requests of one tenant fan over up to this many ring keys;
  /// 1 = pure tenant affinity (the default, and what the blast-radius
  /// story wants: a tenant lives in one fault domain).
  util::u64 tenant_spread = 1;

  TenantConfig tenant;
  FailoverConfig failover;
};

/// Process-wide sharding telemetry (obs counters + the "shard" bench
/// JSON section), cumulative across ShardedServer instances like the
/// other nga telemetry singletons.
class ShardTelemetry {
 public:
  static ShardTelemetry& instance();

  void on_submit(std::string_view tenant);
  void on_tenant_limited(std::string_view tenant);
  void on_routed();
  void on_rerouted();
  void on_spill_rejected();
  void on_no_shard();
  void on_failover(int shard);
  void on_restart(int shard);
  void on_kill(int shard);
  void set_topology(int shards, int up);

  void write_json(std::ostream& os) const;

 private:
  ShardTelemetry();
  ~ShardTelemetry() = delete;  // process-lifetime singleton

  struct TenantRow {
    util::u64 submitted = 0, limited = 0;
  };
  struct ShardRow {
    util::u64 failovers = 0, restarts = 0, kills = 0;
  };

  mutable std::mutex m_;
  std::map<std::string, TenantRow, std::less<>> tenants_;
  std::map<int, ShardRow> shards_;
  util::u64 submitted_ = 0, tenant_limited_ = 0, routed_ = 0, rerouted_ = 0,
            spill_rejected_ = 0, no_shard_ = 0, failovers_ = 0, restarts_ = 0,
            kills_ = 0;
  int topo_shards_ = 0, topo_up_ = 0;
};

class ShardedServer {
 public:
  using Clock = serve::Clock;

  explicit ShardedServer(ShardedConfig cfg);
  ~ShardedServer();  // drains

  /// Build and start every shard, the rings, and (with a failover
  /// cadence) the health monitor.
  void start();

  std::future<serve::Response> submit(std::string_view tenant, nn::Tensor x,
                                      std::chrono::microseconds budget);
  std::future<serve::Response> submit(std::string_view tenant, nn::Tensor x,
                                      Clock::time_point deadline);

  /// Stop the monitor, drain every shard incarnation. Idempotent.
  void drain();

  /// Primary shard assignment of @p tenant (full ring — where the
  /// tenant lives when every shard is up).
  int shard_of(std::string_view tenant) const;
  /// Where @p tenant routes RIGHT NOW (live ring); -1 when no shard
  /// is up.
  int live_shard_of(std::string_view tenant) const;

  /// Inject a shard kill: the next health pass fails the shard over
  /// (chaos hook; also the operator's "restart that shard" button).
  void kill_shard(int shard);
  /// One synchronous health pass (what the monitor runs each tick) —
  /// lets tests drive failover deterministically.
  void poll_health();

  ShardHealth shard_health(int shard) const;
  /// Totals across ALL incarnations of @p shard (retired + live).
  serve::Server::Stats shard_stats(int shard) const;
  /// Guard stats of the LIVE incarnation ({} while Down).
  serve::Server::GuardStats shard_guard_stats(int shard) const;

  struct Stats {
    util::u64 submitted = 0;
    util::u64 routed = 0;          ///< handed to a shard incarnation
    util::u64 layer_rejected = 0;  ///< resolved here, typed below:
    util::u64 tenant_limited = 0;  ///< kTenantLimited (per-tenant AIMD)
    util::u64 spill_rejected = 0;  ///< reroute past the spill budget
    util::u64 no_shard = 0;        ///< live ring empty
    util::u64 rerouted = 0;        ///< served by a non-primary shard
    util::u64 failovers = 0;
    util::u64 restarts = 0;
    util::u64 kills = 0;
  };
  Stats stats() const;

  struct TenantStats {
    util::u64 submitted = 0, limited = 0;
  };
  std::vector<std::pair<std::string, TenantStats>> tenant_stats() const;

  /// The two-level drain invariant, checked after drain():
  ///   per shard incarnation: served + rejected + shed == submitted
  ///   globally: submitted == layer_rejected + sum(incarnation.submitted)
  struct Accounting {
    util::u64 submitted = 0, layer_rejected = 0, routed = 0;
    util::u64 shard_submitted = 0, shard_served = 0, shard_rejected = 0,
              shard_shed = 0;
    bool per_shard_ok = true;
    bool global_ok = true;
    bool ok() const { return per_shard_ok && global_ok; }
  };
  Accounting accounting() const;

  int shards() const { return cfg_.shards; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct TenantState {
    explicit TenantState(const guard::AdmissionConfig& cfg) : limiter(cfg) {}
    guard::AimdLimiter limiter;
    std::atomic<util::u64> submitted{0}, limited{0};
  };

  struct Slot {
    int id = 0;
    serve::ServerConfig proto;  ///< rebuilt identically on restart
    std::shared_ptr<serve::Server> server;  ///< live incarnation
    /// Drained incarnations, kept so accounting() can sum the stats
    /// of every request this shard ever accepted.
    std::vector<std::shared_ptr<serve::Server>> retired;
    ShardHealth health = ShardHealth::kUp;
    bool kill_requested = false;
    bool failing_over = false;  ///< monitor owns the slot right now
    int degraded_streak = 0;
    util::u64 failovers = 0, restarts = 0, kills = 0;
  };

  serve::ServerConfig make_config(int shard) const;
  std::future<serve::Response> reject(serve::RejectReason why);
  TenantState* tenant_state(std::string_view tenant);
  bool spill_take_locked(Clock::time_point now);
  /// Decide + execute failover for due shards; called by the monitor
  /// thread and poll_health().
  void health_pass();
  void fail_over(int idx);
  void monitor_main();
  int up_shards_locked() const;

  ShardedConfig cfg_;

  mutable std::mutex m_;  ///< slots_, rings, spill bucket
  std::vector<Slot> slots_;
  ConsistentHashRing full_ring_;  ///< all shards; fixed after start()
  ConsistentHashRing live_ring_;  ///< Up shards only
  double spill_tokens_ = 0.0;
  Clock::time_point spill_refill_at_{};

  mutable std::mutex tenants_m_;
  std::map<std::string, std::unique_ptr<TenantState>, std::less<>> tenants_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<util::u64> submitted_{0}, routed_{0}, rerouted_{0},
      layer_rejected_{0}, tenant_limited_{0}, spill_rejected_{0}, no_shard_{0},
      failovers_{0}, restarts_{0}, kills_{0};

  std::thread monitor_;
  std::mutex monitor_m_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;
  std::mutex drain_m_;
  std::atomic<bool> drained_{false};
};

}  // namespace nga::shard
