// nga::shard — ModelRegistry: named (model × MulTable × precision)
// serving variants.
//
// The paper's edge premise has many model/multiplier/precision
// combinations co-resident on one box (and the Dynamic-Reconfiguration
// line of work hosts several multiplier configurations side by side).
// A Variant captures everything a shard needs to build independent
// replicas of one such combination: the input shape, the numeric mode,
// a model factory (trained weights restored, calibration done), a
// per-worker approximate-table factory, and the golden exact fallback.
// ShardedServer asks the registry for a ServerConfig prototype and
// decorates it with per-shard capacity/guard knobs — the registry owns
// WHAT is served, the shard layer owns HOW.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/server.hpp"

namespace nga::shard {

/// One named serving variant. The factories must be thread-safe and
/// callable many times: every worker of every shard incarnation builds
/// its own replica through them (restarts included).
struct Variant {
  std::string name;
  nn::Mode mode = nn::Mode::kQuantApprox;
  int in_c = 0, in_h = 0, in_w = 0;
  /// Builds one model replica (required).
  std::function<std::unique_ptr<nn::Model>()> model_factory;
  /// Builds one approximate table per worker (kQuantApprox); captured
  /// generator makes the tables regenerable for integrity scrubbing.
  std::function<std::shared_ptr<const nn::MulTable>()> mul_factory;
  /// Golden exact table: retry failover and breaker quarantine target.
  const nn::MulTable* exact_fallback = nullptr;
};

class ModelRegistry {
 public:
  /// Register a variant. Throws std::invalid_argument on a duplicate
  /// name or a variant without a model factory.
  void add(Variant v);

  /// nullptr when @p name is not registered.
  const Variant* find(std::string_view name) const;

  std::vector<std::string> names() const;
  std::size_t size() const;

  /// ServerConfig prototype for @p name: shape, mode, factories and
  /// fallback filled in; capacity/guard/integrity knobs left at their
  /// defaults for the caller to decorate. Throws std::out_of_range on
  /// an unknown name.
  serve::ServerConfig server_config(std::string_view name) const;

 private:
  mutable std::mutex m_;
  // Deque-like stability is not needed: find() returns pointers into
  // a vector that only grows, and add() is a setup-time operation.
  std::vector<std::unique_ptr<Variant>> variants_;
};

}  // namespace nga::shard
