// nga::shard — seeded consistent-hash ring.
//
// Routes (tenant, request) keys onto shard ids with the classic
// virtual-node construction: every member shard contributes `vnodes`
// points hashed from (seed, shard, vnode) onto a u64 circle, and a key
// routes to the first point clockwise from its own hash. Properties
// the sharding layer leans on (tests/shard/ring_test.cpp):
//
//   * determinism — the ring is a pure function of (seed, vnodes,
//     member set); two rings built the same way route every key the
//     same, across processes and runs;
//   * minimal movement — removing a shard only moves the keys that
//     shard owned (everyone else's points are untouched), ≈ keys/n of
//     the space; re-adding it restores the exact original mapping.
//     That is what makes failover cheap: the survivors keep their
//     keys, the victim's keys spill, and they come home on restart;
//   * bounded skew — with enough vnodes the per-shard share
//     concentrates around 1/n (skew shrinks ~1/sqrt(vnodes)).
//
// This is a plain value type with no locking; ShardedServer guards its
// rings with its own mutex.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string_view>
#include <vector>

#include "util/bits.hpp"

namespace nga::shard {

using util::u64;

/// splitmix64 finalizer: cheap, well-distributed, and constexpr — the
/// same mix everywhere keeps ring placement reproducible by seed.
constexpr u64 mix64(u64 z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(u64 seed = 1, int vnodes = 128)
      : seed_(seed), vnodes_(vnodes < 1 ? 1 : vnodes) {}

  /// Stable 64-bit identity of a tenant name (FNV-1a, then mixed):
  /// the routing key for tenant-affine placement.
  static constexpr u64 tenant_key(std::string_view tenant) {
    u64 h = 0xCBF29CE484222325ull;
    for (char ch : tenant) {
      h ^= u64(static_cast<unsigned char>(ch));
      h *= 0x100000001B3ull;
    }
    return mix64(h);
  }

  /// Key for one request. spread <= 1 gives pure tenant affinity
  /// (every request of a tenant lands on one shard); larger spreads
  /// fan a tenant's requests over up to `spread` distinct keys.
  static constexpr u64 request_key(std::string_view tenant, u64 request_id,
                                   u64 spread = 1) {
    const u64 base = tenant_key(tenant);
    if (spread <= 1) return base;
    return mix64(base + request_id % spread);
  }

  void add(int shard) {
    if (contains(shard)) return;
    members_.push_back(shard);
    for (int v = 0; v < vnodes_; ++v)
      points_.push_back({point_hash(shard, v), shard});
    std::sort(points_.begin(), points_.end());
  }

  void remove(int shard) {
    members_.erase(std::remove(members_.begin(), members_.end(), shard),
                   members_.end());
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&](const Point& p) {
                                   return p.shard == shard;
                                 }),
                  points_.end());
  }

  bool contains(int shard) const {
    return std::find(members_.begin(), members_.end(), shard) !=
           members_.end();
  }

  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// Shard owning @p key; -1 on an empty ring.
  int route(u64 key) const {
    if (points_.empty()) return -1;
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               Point{key, -1});
    if (it == points_.end()) it = points_.begin();  // wrap the circle
    return it->shard;
  }

 private:
  struct Point {
    u64 hash;
    int shard;
    bool operator<(const Point& o) const {
      return hash != o.hash ? hash < o.hash : shard < o.shard;
    }
  };

  u64 point_hash(int shard, int vnode) const {
    return mix64(seed_ ^ mix64(u64(shard) * 0x10001ull + u64(vnode)));
  }

  std::vector<Point> points_;  ///< sorted by hash
  std::vector<int> members_;
  u64 seed_;
  int vnodes_;
};

}  // namespace nga::shard
