// Throughput/latency frontier bookkeeping for open-loop sweeps.
//
// A sweep offers a ladder of arrival rates and records, per point, the
// goodput (requests served within their deadline per second) and the
// latency distribution of the served requests. The KNEE is where the
// frontier stops scaling: the highest offered rate the server still
// serves near-linearly. Past the knee an open-loop server is in
// overload — what happens to goodput THERE is the whole point of the
// serve_scale bench (a well-controlled server holds its plateau; an
// uncontrolled one burns its capacity on requests that are already
// doomed and collapses).
#pragma once

#include <cstddef>
#include <vector>

namespace nga::load {

/// One point of the offered-load sweep.
struct FrontierPoint {
  double offered_rps = 0.0;  ///< achieved open-loop arrival rate
  double goodput_rps = 0.0;  ///< served-within-deadline per second
  double p50_ms = 0.0;       ///< latency of served requests
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

/// Quantile of @p v (q in [0,1]; 0.99 = p99). Non-destructive copy,
/// nth_element underneath; NaN for an empty sample — there is no
/// quantile to report, and a fake 0 would corrupt whatever aggregates
/// it (empty per-tier quality bins at low offered load are normal).
double percentile(std::vector<double> v, double q);

/// Knee of the frontier: the highest offered rate whose goodput is
/// still >= efficiency * offered (near-linear scaling). Points may
/// arrive in any order. When even the lowest point is past the knee
/// (nothing scales linearly) the point with the best goodput wins —
/// the least-bad estimate of capacity.
double knee_rps(const std::vector<FrontierPoint>& points,
                double efficiency = 0.9);

}  // namespace nga::load
