// nga::load — open-loop load generation for the serving layer.
//
// The chaos soak drives the server CLOSED-loop: each burst waits for
// the previous one's futures before pumping more, so offered load can
// never exceed service capacity and queueing collapse is structurally
// invisible (ROADMAP item 2). An open-loop generator is the opposite
// contract: arrivals follow a Poisson process whose schedule is fixed
// up front and never waits for the server. When the server falls
// behind, requests keep arriving — exactly like real traffic from
// millions of independent users, where one user's pending request does
// not stop the others from clicking.
//
// PoissonProcess draws exponential interarrival gaps (seeded, fully
// deterministic: the same seed yields the same arrival schedule on any
// machine — only the wall-clock realization differs). LoadGen walks
// the schedule with sleep_until, firing the submit callback once per
// arrival; when the generator itself is behind schedule (a slow submit
// path, a descheduled thread) it fires immediately and STAYS behind
// rather than silently stretching the schedule — the lag is reported,
// never absorbed.
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <thread>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace nga::load {

using Clock = std::chrono::steady_clock;
using util::u64;

/// Exponential interarrival gaps at a fixed mean rate: the arrival
/// process of `rps` independent users per second. Deterministic per
/// (rps, seed).
class PoissonProcess {
 public:
  PoissonProcess(double rps, u64 seed) : rate_(rps), rng_(seed) {}

  /// Next interarrival gap, Exp(rate). Mean 1/rate, CV 1 (the fixture
  /// tests pin both). Never returns a negative or zero-length gap.
  std::chrono::nanoseconds next() {
    // u in [0,1) => 1-u in (0,1], so the log argument never hits 0.
    const double u = rng_.uniform();
    const double sec = -std::log(1.0 - u) / rate_;
    const double ns = std::ceil(sec * 1e9);
    return std::chrono::nanoseconds(
        ns < 1.0 ? 1 : static_cast<long long>(ns));
  }

  double rate() const { return rate_; }

 private:
  double rate_;
  util::Xoshiro256 rng_;
};

struct LoadGenConfig {
  double rps = 100.0;        ///< offered arrival rate
  std::size_t arrivals = 0;  ///< total arrivals to schedule
  u64 seed = 1;              ///< arrival-schedule seed
  /// Optional early-stop flag (chaos scripts end an episode from
  /// another thread). Checked before each arrival; the report's
  /// `arrivals` then counts what actually fired, not the plan.
  const std::atomic<bool>* stop = nullptr;
};

/// What the generator actually achieved, against what it planned.
struct LoadGenReport {
  double planned_rps = 0.0;
  double achieved_rps = 0.0;  ///< arrivals / wall duration
  std::size_t arrivals = 0;
  double duration_s = 0.0;
  /// Worst schedule lag (how late an arrival fired, ms). Persistent
  /// lag means the GENERATOR could not keep up — the sweep point is
  /// then reporting generator saturation, not server saturation.
  double max_lag_ms = 0.0;
};

/// Open-loop driver: fires `submit(i, scheduled)` once per scheduled
/// arrival. Single-threaded by design — the schedule is the load.
class LoadGen {
 public:
  explicit LoadGen(LoadGenConfig cfg) : cfg_(cfg) {}

  template <class SubmitFn>
  LoadGenReport run(SubmitFn&& submit) {
    PoissonProcess arrivals(cfg_.rps, cfg_.seed);
    const auto start = Clock::now();
    auto due = start;
    double max_lag_ms = 0.0;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < cfg_.arrivals; ++i) {
      if (cfg_.stop && cfg_.stop->load(std::memory_order_acquire)) break;
      due += arrivals.next();
      const auto now = Clock::now();
      if (due > now) {
        std::this_thread::sleep_until(due);
      } else {
        const double lag =
            std::chrono::duration<double, std::milli>(now - due).count();
        if (lag > max_lag_ms) max_lag_ms = lag;
      }
      submit(i, due);
      ++fired;
    }
    const auto end = Clock::now();
    LoadGenReport r;
    r.planned_rps = cfg_.rps;
    r.arrivals = fired;
    r.duration_s = std::chrono::duration<double>(end - start).count();
    r.achieved_rps = r.duration_s > 0.0 ? double(fired) / r.duration_s : 0.0;
    r.max_lag_ms = max_lag_ms;
    return r;
  }

 private:
  LoadGenConfig cfg_;
};

}  // namespace nga::load
