#include "load/frontier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nga::load {

double percentile(std::vector<double> v, double q) {
  // NaN, not 0.0: an empty sample has no quantiles, and a fake zero
  // silently poisons downstream aggregation (a per-tier quality bin at
  // low offered load can legitimately be empty). NaN propagates and the
  // JSON writers render non-finite as null/0 explicitly.
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::size_t k =
      std::min(v.size() - 1, std::size_t(std::ceil(q * double(v.size()))));
  std::nth_element(v.begin(), v.begin() + long(k), v.end());
  return v[k];
}

double knee_rps(const std::vector<FrontierPoint>& points, double efficiency) {
  double knee = 0.0;
  bool found = false;
  for (const auto& p : points) {
    if (p.offered_rps <= 0.0) continue;
    if (p.goodput_rps >= efficiency * p.offered_rps &&
        p.offered_rps > knee) {
      knee = p.offered_rps;
      found = true;
    }
  }
  if (found) return knee;
  // Every point is past the knee: fall back to the best goodput seen.
  double best_goodput = -1.0;
  for (const auto& p : points)
    if (p.goodput_rps > best_goodput) {
      best_goodput = p.goodput_rps;
      knee = p.offered_rps;
    }
  return knee;
}

}  // namespace nga::load
