#include "opgen/sincos.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "opgen/funcapprox.hpp"

namespace nga::og {

namespace {
constexpr double kPi4 = std::numbers::pi / 4.0;
}

SinCosOperator::SinCosOperator(unsigned w, unsigned a, unsigned g)
    : w_(w), a_(a), g_(g), p_(w + g) {
  if (a >= w || w > 20) throw std::invalid_argument("bad parameters");
  kpi_ = i64(std::nearbyint(kPi4 * std::ldexp(1.0, int(p_ + kKg - w_))));
  const u64 na = u64{1} << a;
  sin_table_.resize(na);
  cos_table_.resize(na);
  const double scale = std::ldexp(1.0, int(p_));
  for (u64 i = 0; i < na; ++i) {
    const double theta = kPi4 * double(i) / double(na);
    sin_table_[i] = i64(std::nearbyint(std::sin(theta) * scale));
    cos_table_[i] = i64(std::nearbyint(std::cos(theta) * scale));
  }
}

SinCosResult SinCosOperator::evaluate(u64 x) const {
  const unsigned ybits = w_ - a_;
  const u64 ia = x >> ybits;
  const u64 y = x & util::mask64(ybits);
  const i64 sin_a = sin_table_[ia];
  const i64 cos_a = cos_table_[ia];

  // theta_Y = (pi/4) * y * 2^-w, as a Q0.p mantissa via the constant
  // multiplier (truncating the kKg guard bits of the pi constant).
  const i64 theta = i64((u64(y) * u64(kpi_)) >> kKg);

  // sin(theta_Y) ~= theta - theta^3/6; cos ~= 1 - theta^2/2.
  // theta < (pi/4) 2^-a * 2^p, so theta^2 >> p stays well in range.
  const i64 th2 = i64((__int128(theta) * theta) >> p_);
  const i64 th3 = i64((__int128(th2) * theta) >> p_);
  const i64 sin_y = theta - th3 / 6;
  const i64 one = i64{1} << p_;
  const i64 cos_y = one - (th2 >> 1);

  // Angle addition with truncated multipliers (keep p fraction bits).
  auto tmul = [&](i64 u, i64 v) { return i64((__int128(u) * v) >> p_); };
  const i64 s = tmul(sin_a, cos_y) + tmul(cos_a, sin_y);
  const i64 c = tmul(cos_a, cos_y) - tmul(sin_a, sin_y);

  // Round from p to w fraction bits.
  const i64 half = i64{1} << (g_ - 1);
  SinCosResult r;
  r.sin_mant = (s + half) >> g_;
  r.cos_mant = (c + half) >> g_;
  // cos(0)=1 needs w+1 bits; clamp to the inclusive top code (the
  // operator's documented output format is Q0.w with saturation at 1-ulp,
  // matching the usual "scaled" FloPoCo convention).
  const i64 top = (i64{1} << w_) - 1;
  if (r.cos_mant > top) r.cos_mant = top;
  if (r.sin_mant > top) r.sin_mant = top;
  return r;
}

double SinCosOperator::max_error_ulp() const {
  double worst = 0.0;
  const double ulp = std::ldexp(1.0, -int(w_));
  for (u64 x = 0; x < (u64{1} << w_); ++x) {
    const double theta = kPi4 * double(x) * ulp;
    const auto r = evaluate(x);
    const double es = std::fabs(double(r.sin_mant) * ulp - std::sin(theta));
    double ec = std::fabs(double(r.cos_mant) * ulp - std::cos(theta));
    // The clamped cos(0)~1 code is allowed its half-ulp saturation.
    if (x == 0) ec = 0.0;
    worst = std::max({worst, es / ulp, ec / ulp});
  }
  return worst;
}

SinCosCost SinCosOperator::cost() const {
  SinCosCost c;
  c.table_bits = 2 * (u64{1} << a_) * p_;
  c.lut6 = 2 * rom_lut6_cost(a_, p_);
  c.multipliers = 4;  // the angle-addition products
  const unsigned ybits = w_ - a_;
  // Truncated multiplier LUT model ~ w1*w2/2, plus the small residual
  // polynomial (squarer + cuber on theta_Y widths) and the constant mult.
  c.mult_lut6 = int(4 * (p_ * p_) / 2 + 2 * (ybits * ybits) / 2 +
                    (ybits * (p_ + kKg - w_)));
  c.lut6 += c.mult_lut6 + 2 * int(p_);  // final adders
  return c;
}

SinCosOperator SinCosOperator::generate(unsigned w) {
  // Explore the table/multiplier trade-off; pick the cheapest faithful
  // instance (error < 1 ulp on both channels, exhaustively measured).
  double best_cost = 0;
  bool have = false;
  unsigned best_a = 0, best_g = 0;
  const unsigned a_lo = w >= 12 ? 4u : 2u;
  for (unsigned a = a_lo; a + 2 <= w && a <= 12; ++a) {
    for (unsigned g = 2; g <= 6; ++g) {
      const SinCosOperator cand(w, a, g);
      if (cand.max_error_ulp() >= 1.0) continue;
      const auto cc = cand.cost();
      const double cost = double(cc.lut6);
      if (!have || cost < best_cost) {
        have = true;
        best_cost = cost;
        best_a = a;
        best_g = g;
      }
      break;  // larger g only costs more at this a
    }
  }
  if (!have) throw std::runtime_error("no faithful sincos instance found");
  return SinCosOperator(w, best_a, best_g);
}

}  // namespace nga::og
