#include "opgen/fusion.hpp"

#include <algorithm>
#include <cmath>

namespace nga::og {

double FusedNorm::max_error_ulp(bool fused) const {
  const i64 lim = i64{1} << w_;
  const i64 stride = w_ <= 8 ? 1 : (i64{1} << (w_ - 8));
  const double ulp = std::ldexp(1.0, -int(w_));
  double worst = 0.0;
  for (i64 x = -lim + 1; x < lim; x += stride)
    for (i64 y = -lim + 1; y < lim; y += stride) {
      if (x == 0 && y == 0) continue;
      const double xd = double(x) * ulp, yd = double(y) * ulp;
      const double exact = xd / std::hypot(xd, yd);
      const i64 got = fused ? evaluate(x, y) : evaluate_composed(x, y);
      worst = std::max(worst, std::fabs(double(got) * ulp - exact) / ulp);
    }
  return worst;
}

}  // namespace nga::og
