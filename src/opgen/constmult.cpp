#include "opgen/constmult.hpp"

#include <algorithm>
#include <stdexcept>

namespace nga::og {

std::vector<CsdDigit> csd_recode(u64 c) {
  if (c == 0) return {};
  // Classic CSD, LSB-first: a digit is -1 when the local pattern is a
  // run of ones (x mod 4 == 3), which inserts a carry; +1 otherwise.
  std::vector<CsdDigit> digits;
  u64 x = c;
  int pos = 0;
  while (x != 0) {
    if (x & 1) {
      // digit is +1 if x mod 4 == 1, -1 if x mod 4 == 3
      if ((x & 3) == 3) {
        digits.push_back({pos, true});
        x += 1;  // carry
      } else {
        digits.push_back({pos, false});
        x -= 1;
      }
    }
    x >>= 1;
    ++pos;
  }
  std::reverse(digits.begin(), digits.end());  // MSB-first
  return digits;
}

int csd_adder_count(u64 c) {
  if (c == 0) return 0;
  const auto d = csd_recode(c);
  return std::max(0, int(d.size()) - 1);
}

namespace {
i64 csd_value(const std::vector<CsdDigit>& digits) {
  i64 v = 0;
  for (const auto& d : digits)
    v += d.negative ? -(i64{1} << d.shift) : (i64{1} << d.shift);
  return v;
}
}  // namespace

ConstMult::ConstMult(u64 constant, unsigned input_width)
    : c_(constant), in_width_(input_width), digits_(csd_recode(constant)) {
  if (constant == 0) throw std::invalid_argument("constant must be nonzero");
  adders_ = std::max(0, int(digits_.size()) - 1);
  result_width_ = input_width + unsigned(util::msb_index(constant)) + 1;
}

u64 ConstMult::evaluate(u64 x) const {
  // Walk the CSD chain exactly as hardware would: shift-add/sub.
  i64 acc = 0;
  for (const auto& d : digits_) {
    const i64 term = i64(x) << d.shift;
    acc += d.negative ? -term : term;
  }
  return u64(acc);
}

int ConstMult::lut_cost() const {
  // Each shift-add is a ripple adder of ~result_width bits; an ALM packs
  // two adder bits, so a chain of k adders costs ~k*w/2 ALMs.
  return adders_ * int(result_width_) / 2;
}

MultiConstMult::MultiConstMult(std::vector<u64> constants,
                               unsigned input_width)
    : constants_(std::move(constants)), in_width_(input_width) {
  (void)in_width_;
  have_[1] = true;
  for (const u64 c : constants_) {
    if (c == 0) continue;
    build_term(c >> util::ctz64(c));
  }
}

u64 MultiConstMult::build_term(u64 odd_term) {
  if (have_.count(odd_term)) return odd_term;
  const auto digits = csd_recode(odd_term);
  if (digits.size() < 2) {
    have_[odd_term] = true;  // power of two: free
    return odd_term;
  }
  // Split the CSD digits in half; each half is a sub-sum we can build
  // recursively and (by memoization) share across constants.
  const std::size_t mid = digits.size() / 2;
  std::vector<CsdDigit> dhi(digits.begin(), digits.begin() + long(mid));
  std::vector<CsdDigit> dlo(digits.begin() + long(mid), digits.end());
  i64 hi = csd_value(dhi);  // leading digit positive => hi > 0
  i64 lo = csd_value(dlo);
  const bool subtract = lo < 0;
  if (subtract) lo = -lo;
  if (lo == 0 || hi == 0)
    throw std::logic_error("degenerate CSD split");
  const int hsh = util::ctz64(u64(hi));
  const int lsh = util::ctz64(u64(lo));
  const u64 hodd = u64(hi) >> hsh;
  const u64 lodd = u64(lo) >> lsh;
  build_term(hodd);
  build_term(lodd);
  nodes_.push_back(Node{odd_term, hodd, lodd, hsh, lsh, subtract});
  have_[odd_term] = true;
  return odd_term;
}

std::vector<u64> MultiConstMult::evaluate(u64 x) const {
  std::map<u64, u64> value;
  value[1] = x;
  // Power-of-two fundamentals registered without nodes evaluate to x.
  for (const auto& n : nodes_) {
    const i64 hterm = i64(value.at(n.lhs)) << n.lshift;
    const i64 lterm = i64(value.at(n.rhs)) << n.rshift;
    value[n.term] = u64(n.subtract ? hterm - lterm : hterm + lterm);
  }
  std::vector<u64> out;
  out.reserve(constants_.size());
  for (const u64 c : constants_) {
    if (c == 0) {
      out.push_back(0);
      continue;
    }
    const int sh = util::ctz64(c);
    out.push_back(value.at(c >> sh) << sh);
  }
  return out;
}

int MultiConstMult::unshared_adders() const {
  int total = 0;
  for (const u64 c : constants_)
    if (c) total += csd_adder_count(c >> util::ctz64(c));
  return total;
}

}  // namespace nga::og
