// Parametric fixed-point sine+cosine operator (Fig. 1).
//
// Computes sin(theta) and cos(theta) for theta = (pi/4) * x, x a w-bit
// unsigned fixed-point in [0,1). The architecture follows the paper's
// figure: the input splits into a table-indexing sub-word A and a
// residual Y; sin/cos of the A angle come from tables, sin/cos of the
// small Y angle from a short polynomial, and four truncated multipliers
// combine them through the angle-addition formulas. Every internal
// bit-width is set by the generator ("computing just right"): the
// sub-word size A trades table size against multiplier size, and the
// guard-bit count is chosen so the *exhaustively measured* error stays
// faithful (< 1 output ulp).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bits.hpp"

namespace nga::og {

using util::i64;
using util::u64;

struct SinCosResult {
  i64 sin_mant = 0;  ///< Q0.w unsigned mantissa of sin((pi/4)x)
  i64 cos_mant = 0;  ///< Q0.w unsigned mantissa of cos((pi/4)x)
};

struct SinCosCost {
  u64 table_bits = 0;
  int lut6 = 0;
  int multipliers = 0;     ///< truncated soft multipliers in the datapath
  int mult_lut6 = 0;       ///< their LUT share
};

/// One generated operator instance with fixed parameters (a = table
/// index bits, g = guard bits).
class SinCosOperator {
 public:
  SinCosOperator(unsigned w, unsigned a, unsigned g);

  /// Bit-exact datapath evaluation for input mantissa x (w bits).
  SinCosResult evaluate(u64 x) const;

  /// Exhaustive worst-case error over all 2^w inputs, in output ulps
  /// (max over the sin and cos channels).
  double max_error_ulp() const;

  SinCosCost cost() const;
  unsigned w() const { return w_; }
  unsigned a() const { return a_; }
  unsigned g() const { return g_; }

  /// Parameter-space exploration: scans (a, g) and returns the
  /// cheapest faithful instance — the generator's "choose the value of
  /// all these parameters" step.
  static SinCosOperator generate(unsigned w);

 private:
  unsigned w_, a_, g_;
  unsigned p_;  ///< internal fraction bits = w + g
  i64 kpi_;     ///< round(pi/4 * 2^(p+kg)) constant-multiplier value
  static constexpr unsigned kKg = 6;  ///< guard bits of the pi constant
  std::vector<i64> sin_table_;  // Q0.p entries for the A angles
  std::vector<i64> cos_table_;
};

}  // namespace nga::og
