// Operator fusion (Section II.A): the paper's own example expression
//     f(x, y) = x / sqrt(x^2 + y^2)
// treated as ONE operator to implement.
//
// The fused datapath squares, sums, roots and divides in a single
// guarded fixed-point pipeline and rounds ONCE at the output; the
// composed baseline chains four discretely rounded w-bit operators
// (square, add, sqrt, divide), which is what a compiler gets from a
// generic operator library. Fusion wins on both accuracy (one rounding
// instead of four) and hardware (the internal squarers share the input,
// no intermediate normalization) — measured by the tests and the
// sincos example's companion bench.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/bits.hpp"

namespace nga::og {

using util::i64;
using util::u128;
using util::u64;

/// Fused x/sqrt(x^2+y^2) on signed Q1.w fixed-point inputs in [-1, 1);
/// output is signed Q1.w in [-1, 1].
class FusedNorm {
 public:
  /// @param w fraction bits of inputs and output (2..20)
  /// @param g internal guard bits carried through the pipeline
  FusedNorm(unsigned w, unsigned g) : w_(w), g_(g) {}

  /// Fused datapath: block-normalize (the result depends only on the
  /// x:y ratio, so the common shift is exact), exact square-sum,
  /// guarded root, single rounding.
  i64 evaluate(i64 xm, i64 ym) const {
    if (xm == 0 && ym == 0) return 0;  // defined as 0 at the origin
    normalize(xm, ym);
    // s2 = x^2 + y^2 exactly, 2w fraction bits.
    const u128 s2 = u128(i128_abs(xm)) * u128(i128_abs(xm)) +
                    u128(i128_abs(ym)) * u128(i128_abs(ym));
    // r = sqrt(s2) with w+g fraction bits: isqrt(s2 << 2g).
    const u64 r = isqrt(u128(s2) << (2 * g_));
    // q = x / r, rounded (round-half-up on magnitude) to w fraction bits.
    const bool neg = xm < 0;
    const u64 xa = u64(neg ? -xm : xm);
    // x has w frac bits, r has w+g: (x << (w+2g+1)) / r has w+g+... :
    // choose numerator shift so the quotient carries w+1 frac bits.
    const u128 num = (u128(xa) << (w_ + g_ + 1));
    const u64 q1 = u64(num / r);              // w+1 fraction bits
    u64 q = (q1 + 1) >> 1;                    // round to w bits
    const u64 one = u64{1} << w_;
    if (q > one) q = one;                     // |x|/||v|| <= 1
    return neg ? -i64(q) : i64(q);
  }

  /// Composed baseline: the same normalization, but every intermediate
  /// operator rounds to w fraction bits (a chain of generic blocks).
  i64 evaluate_composed(i64 xm, i64 ym) const {
    if (xm == 0 && ym == 0) return 0;
    normalize(xm, ym);
    auto round_to_w = [&](u128 v, unsigned frac_bits) {
      // RNE-ish (half-up) from frac_bits to w_ fraction bits.
      if (frac_bits <= w_) return u64(v) << (w_ - frac_bits);
      const unsigned d = frac_bits - w_;
      return u64((v + (u128(1) << (d - 1))) >> d);
    };
    const u64 x2 = round_to_w(u128(i128_abs(xm)) * u128(i128_abs(xm)),
                              2 * w_);  // rounded square
    const u64 y2 = round_to_w(u128(i128_abs(ym)) * u128(i128_abs(ym)),
                              2 * w_);
    u64 s = x2 + y2;                              // w-bit add (exact here)
    const u64 r = round_to_w(u128(isqrt(u128(s) << w_)), w_);  // w-bit sqrt
    if (r == 0) return 0;
    const bool neg = xm < 0;
    const u64 xa = u64(neg ? -xm : xm);
    const u64 q1 = u64((u128(xa) << (w_ + 1)) / r);  // w-bit divide
    u64 q = (q1 + 1) >> 1;
    const u64 one = u64{1} << w_;
    if (q > one) q = one;
    return neg ? -i64(q) : i64(q);
  }

  /// Worst-case error in output ulps over the full input square,
  /// exhaustive for w <= 8, strided above.
  double max_error_ulp(bool fused = true) const;

  unsigned w() const { return w_; }
  unsigned g() const { return g_; }

 private:
  static u64 i128_abs(i64 v) { return u64(v < 0 ? -v : v); }

  /// Shift both operands left until the larger magnitude has w bits.
  void normalize(i64& xm, i64& ym) const {
    const u64 mx = std::max(i128_abs(xm), i128_abs(ym));
    const int top = util::msb_index(mx);
    const int sh = int(w_) - 1 - top;
    if (sh > 0) {
      xm <<= sh;
      ym <<= sh;
    }
  }
  static u64 isqrt(u128 x) {
    u64 r = 0;
    for (int b = 63; b >= 0; --b) {
      const u64 cand = r | (u64{1} << b);
      if (u128(cand) * cand <= x) r = cand;
    }
    return r;
  }

  unsigned w_;
  unsigned g_;
};

}  // namespace nga::og
