// Operator specialization: the squarer (Section II.A).
//
// x*x has a symmetric partial-product array: p_ij == p_ji fold into one
// bit of weight 2^(i+j+1), and the diagonal p_ii = x_i (AND of a bit
// with itself). Roughly half the partial products of a generic
// multiplier disappear before compression even starts.
#pragma once

#include "bitheap/bitheap.hpp"
#include "hwmodel/netlist.hpp"

namespace nga::og {

/// Gate-level n-bit squarer built on a bit heap; inputs x[0..n-1],
/// outputs the 2n product bits.
hw::Netlist build_squarer(unsigned n, bh::Strategy strategy);

/// Generic multiplier of the same width for comparison (also heap-based
/// so the comparison isolates the specialization, not the adder style).
hw::Netlist build_heap_multiplier(unsigned n, bh::Strategy strategy);

}  // namespace nga::og
