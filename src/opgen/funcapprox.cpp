#include "opgen/funcapprox.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nga::og {

int rom_lut6_cost(unsigned abits, unsigned wbits) {
  // A 6-LUT holds 64 bits: a 2^a x w ROM costs w * 2^(a-6) LUTs for
  // a >= 6; below that one LUT per output bit (fractional LUT use).
  const u64 per_bit = abits >= 6 ? (u64{1} << (abits - 6)) : 1;
  return int(per_bit * wbits);
}

// --- PlainTable ---------------------------------------------------------

PlainTable::PlainTable(const std::function<double(double)>& f, unsigned win,
                       fx::FixFormat out)
    : win_(win), out_(out) {
  if (win > 24) throw std::invalid_argument("table too large");
  table_.resize(std::size_t(1) << win);
  const double step = std::ldexp(1.0, -int(win));
  for (u64 i = 0; i < table_.size(); ++i)
    table_[i] = fx::FixValue::quantize(f(double(i) * step), out_).mantissa;
}

double PlainTable::max_error_ulp(
    const std::function<double(double)>& f) const {
  const double step = std::ldexp(1.0, -int(win_));
  double worst = 0.0;
  for (u64 i = 0; i < table_.size(); ++i) {
    const double err =
        std::fabs(double(table_[i]) * out_.ulp() - f(double(i) * step));
    worst = std::max(worst, err / out_.ulp());
  }
  return worst;
}

TableCost PlainTable::cost() const {
  TableCost c;
  c.table_bits = (u64{1} << win_) * unsigned(out_.width());
  c.lut6 = rom_lut6_cost(win_, unsigned(out_.width()));
  return c;
}

// --- BipartiteTable -----------------------------------------------------

BipartiteTable::BipartiteTable(const std::function<double(double)>& f,
                               unsigned win, fx::FixFormat out, unsigned a,
                               unsigned b, unsigned c)
    : win_(win), a_(a), b_(b), c_(c), out_(out) {
  if (a + b + c != win) throw std::invalid_argument("split must cover input");
  const double step = std::ldexp(1.0, -int(win));
  const u64 nb = u64{1} << b, nc = u64{1} << c;
  // Both tables carry kGuard extra fraction bits so their rounding
  // errors stay well under the final output ulp ("computing just
  // right": the guard bits exist only where the error analysis needs
  // them, and the final rounding removes them).
  fx::FixFormat tiv_fmt = out_;
  tiv_fmt.lsb -= int(kGuard);
  // TIV[xh|xm]: f at the centre of the xl range.
  tiv_.resize(std::size_t(1) << (a + b));
  for (u64 hm = 0; hm < tiv_.size(); ++hm) {
    const double x = double((hm << c) + nc / 2) * step;
    tiv_[hm] = fx::FixValue::quantize(f(x), tiv_fmt).mantissa;
  }
  // TO[xh|xl]: xm-averaged residual (signed, small magnitude).
  to_fmt_ = out_;
  to_fmt_.lsb -= int(kGuard);
  to_fmt_.msb = out_.lsb + 9;  // residuals are small...
  to_fmt_.is_signed = true;    // ...and signed (negative for decreasing f)
  to_.resize(std::size_t(1) << (a + c));
  for (u64 h = 0; h < (u64{1} << a); ++h) {
    for (u64 l = 0; l < nc; ++l) {
      double acc = 0.0;
      for (u64 m = 0; m < nb; ++m) {
        const u64 idx = (h << (b + c)) | (m << c) | l;
        const u64 mid = (h << (b + c)) | (m << c) | (nc / 2);
        acc += f(double(idx) * step) - f(double(mid) * step);
      }
      to_[(h << c) | l] =
          fx::FixValue::quantize(acc / double(nb), to_fmt_).mantissa;
    }
  }
}

i64 BipartiteTable::lookup(u64 index) const {
  const u64 l = index & util::mask64(c_);
  const u64 m = (index >> c_) & util::mask64(b_);
  const u64 h = index >> (b_ + c_);
  const i64 tiv = tiv_[(h << b_) | m];
  const i64 to = to_[(h << c_) | l];
  // Round the guarded sum to the output grid (round-to-nearest).
  const i64 sum = tiv + to;  // both in out.lsb - kGuard units
  return (sum + (i64{1} << (kGuard - 1))) >> kGuard;
}

double BipartiteTable::max_error_ulp(
    const std::function<double(double)>& f) const {
  const double step = std::ldexp(1.0, -int(win_));
  double worst = 0.0;
  for (u64 i = 0; i < (u64{1} << win_); ++i) {
    const double err =
        std::fabs(double(lookup(i)) * out_.ulp() - f(double(i) * step));
    worst = std::max(worst, err / out_.ulp());
  }
  return worst;
}

TableCost BipartiteTable::cost() const {
  TableCost t;
  t.table_bits = (u64{1} << (a_ + b_)) * unsigned(out_.width() + int(kGuard)) +
                 (u64{1} << (a_ + c_)) * unsigned(to_fmt_.width());
  t.lut6 = rom_lut6_cost(a_ + b_, unsigned(out_.width() + int(kGuard))) +
           rom_lut6_cost(a_ + c_, unsigned(to_fmt_.width())) +
           out_.width();  // the adder
  t.adders = 1;
  return t;
}

BipartiteTable BipartiteTable::explore(const std::function<double(double)>& f,
                                       unsigned win, fx::FixFormat out,
                                       double max_ulp) {
  // Enumerate (a,b,c) splits; keep the cheapest faithful one. The plain
  // table is the fallback encoded as (win, 0, 0).
  double best_cost = std::numeric_limits<double>::infinity();
  unsigned best_a = win, best_b = 0, best_c = 0;
  for (unsigned a = 1; a + 2 <= win; ++a)
    for (unsigned b = 1; a + b + 1 <= win; ++b) {
      const unsigned c = win - a - b;
      const BipartiteTable cand(f, win, out, a, b, c);
      if (cand.max_error_ulp(f) >= max_ulp) continue;
      const double cost = double(cand.cost().table_bits);
      if (cost < best_cost) {
        best_cost = cost;
        best_a = a;
        best_b = b;
        best_c = c;
      }
    }
  if (best_b == 0) {
    // Degenerate fallback: behave like a plain table via b=win-a-c with
    // c=0 is not allowed by the ctor, so pick the largest-b split even
    // if unfaithful — callers should check max_error_ulp. In practice
    // smooth functions always admit a faithful split.
    return BipartiteTable(f, win, out, 1, win - 2, 1);
  }
  return BipartiteTable(f, win, out, best_a, best_b, best_c);
}

// --- PiecewisePoly ------------------------------------------------------

PiecewisePoly::PiecewisePoly(const std::function<double(double)>& f,
                             unsigned win, fx::FixFormat out,
                             unsigned seg_bits, unsigned coeff_frac)
    : win_(win), seg_bits_(seg_bits), coeff_frac_(coeff_frac), out_(out) {
  if (seg_bits >= win) throw std::invalid_argument("segment bits too large");
  const u64 nseg = u64{1} << seg_bits;
  const double seg_w = std::ldexp(1.0, -int(seg_bits));
  segs_.resize(nseg);
  const double q = std::ldexp(1.0, int(coeff_frac));
  for (u64 s = 0; s < nseg; ++s) {
    // Fit through three points of the segment (t = 0, 1/2, 1): a simple
    // exact-interpolation quadratic, then quantize coefficients.
    const double x0 = double(s) * seg_w;
    const double y0 = f(x0);
    const double ym = f(x0 + seg_w * 0.5);
    const double y1 = f(x0 + seg_w * (1.0 - std::ldexp(1.0, -8)));
    const double c2 = 2.0 * (y1 - 2.0 * ym + y0);
    const double c1 = -y1 + 4.0 * ym - 3.0 * y0;
    const double c0 = y0;
    segs_[s] = {i64(std::nearbyint(c0 * q)), i64(std::nearbyint(c1 * q)),
                i64(std::nearbyint(c2 * q))};
  }
}

i64 PiecewisePoly::lookup(u64 index) const {
  const unsigned tbits = win_ - seg_bits_;
  const u64 s = index >> tbits;
  const u64 t = index & util::mask64(tbits);  // in [0, 2^tbits)
  const auto& cf = segs_[s];
  // Horner in fixed point: t as Q0.tbits; coefficients Q*.coeff_frac.
  // acc = c2*t (keep coeff_frac fraction bits after each step)
  i64 acc = (cf.c2 * i64(t)) >> tbits;
  acc = cf.c1 + acc;
  acc = (acc * i64(t)) >> tbits;
  acc = cf.c0 + acc;
  // Convert from coeff_frac to the output lsb with RNE-ish rounding.
  const int shift = int(coeff_frac_) + out_.lsb;  // out.lsb negative
  if (shift <= 0) return acc << -shift;
  return (acc + (i64{1} << (shift - 1))) >> shift;
}

double PiecewisePoly::max_error_ulp(
    const std::function<double(double)>& f) const {
  const double step = std::ldexp(1.0, -int(win_));
  double worst = 0.0;
  for (u64 i = 0; i < (u64{1} << win_); ++i) {
    const double err =
        std::fabs(double(lookup(i)) * out_.ulp() - f(double(i) * step));
    worst = std::max(worst, err / out_.ulp());
  }
  return worst;
}

TableCost PiecewisePoly::cost() const {
  TableCost t;
  const unsigned cw = coeff_frac_ + 4;  // coefficient width estimate
  t.table_bits = (u64{1} << seg_bits_) * 3 * cw;
  const unsigned tbits = win_ - seg_bits_;
  t.lut6 = rom_lut6_cost(seg_bits_, 3 * cw) +
           int(cw * tbits) +  // two truncated multipliers, ~w1*w2/2 each
           int(cw * tbits) / 2 + 2 * int(out_.width());
  t.adders = 2;
  return t;
}

}  // namespace nga::og
