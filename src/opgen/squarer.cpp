#include "opgen/squarer.hpp"

#include <vector>

namespace nga::og {

hw::Netlist build_squarer(unsigned n, bh::Strategy strategy) {
  hw::Netlist nl;
  std::vector<int> x(n);
  for (auto& b : x) b = nl.add_input();
  bh::BitHeap heap(nl);
  for (unsigned i = 0; i < n; ++i) {
    heap.add_bit(int(2 * i), x[i]);  // diagonal: x_i * x_i = x_i
    for (unsigned j = i + 1; j < n; ++j)
      heap.add_bit(int(i + j + 1), nl.and_(x[i], x[j]));  // folded pair
  }
  auto sum = heap.compress(strategy);
  sum.resize(2 * n, nl.constant(false));
  for (unsigned i = 0; i < 2 * n; ++i) nl.mark_output(sum[i]);
  return nl;
}

hw::Netlist build_heap_multiplier(unsigned n, bh::Strategy strategy) {
  hw::Netlist nl;
  std::vector<int> a(n), b(n);
  for (auto& x : a) x = nl.add_input();
  for (auto& x : b) x = nl.add_input();
  bh::BitHeap heap(nl);
  heap.add_product(0, a, b);
  auto sum = heap.compress(strategy);
  sum.resize(2 * n, nl.constant(false));
  for (unsigned i = 0; i < 2 * n; ++i) nl.mark_output(sum[i]);
  return nl;
}

}  // namespace nga::og
