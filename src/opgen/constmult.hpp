// Operator specialization: multiplication by a constant (Section II.A).
//
// A constant multiplier needs no general multiplier: the constant's
// canonical signed digit (CSD) recoding turns it into a short chain of
// shift-and-add/subtract operations. The multiple-constant case (MCM)
// shares intermediate terms across constants — the paper's "operator
// sharing" opportunity.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bits.hpp"

namespace nga::og {

using util::i64;
using util::u64;

/// One signed digit of a CSD recoding: value +-1 at bit position `shift`.
struct CsdDigit {
  int shift = 0;
  bool negative = false;
};

/// Canonical signed digit recoding of @p c (c > 0): no two adjacent
/// nonzero digits; minimal number of nonzero digits among radix-2
/// signed-digit representations.
std::vector<CsdDigit> csd_recode(u64 c);

/// Number of adders a shift-add chain needs for constant @p c
/// (= nonzero CSD digits - 1; 0 for powers of two).
int csd_adder_count(u64 c);

/// Single-constant multiplier: evaluates x*c through the CSD chain
/// (bit-exact, for verification) and reports its cost.
class ConstMult {
 public:
  ConstMult(u64 constant, unsigned input_width);

  u64 constant() const { return c_; }
  /// Evaluate through the chain (must equal x * c exactly).
  u64 evaluate(u64 x) const;
  int adders() const { return adders_; }
  /// LUT-level cost estimate: each adder is result_width LUTs/ALMs.
  int lut_cost() const;
  unsigned result_width() const { return result_width_; }

 private:
  u64 c_;
  unsigned in_width_;
  unsigned result_width_;
  int adders_;
  std::vector<CsdDigit> digits_;
};

/// Multiple-constant multiplication with common-subexpression sharing:
/// builds a DAG of "fundamental" odd terms; identical intermediate
/// terms are created once and shared (the paper's operator-sharing
/// example, after Kumm's ILP-based MCM line of work, here with a greedy
/// common-subexpression heuristic).
class MultiConstMult {
 public:
  MultiConstMult(std::vector<u64> constants, unsigned input_width);

  /// x*c for each constant (bit-exact through the shared DAG).
  std::vector<u64> evaluate(u64 x) const;
  /// Total adders with sharing.
  int shared_adders() const { return int(nodes_.size()); }
  /// Total adders if each constant were built independently.
  int unshared_adders() const;
  const std::vector<u64>& constants() const { return constants_; }

 private:
  struct Node {  // term = (lhs << lshift) +- (rhs << rshift)
    u64 term;    // odd positive fundamental this node produces
    u64 lhs, rhs;
    int lshift, rshift;
    bool subtract;
  };
  /// Ensure an odd fundamental term exists in the DAG; returns its value.
  u64 build_term(u64 odd_term);

  std::vector<u64> constants_;
  unsigned in_width_;
  std::vector<Node> nodes_;
  std::map<u64, bool> have_;  // odd fundamentals already built (1 is free)
};

}  // namespace nga::og
