// Function approximation generators (Section II.A):
//   * PlainTable    — full tabulation (the FPGA-friendly baseline);
//   * BipartiteTable— table-and-addition method: two smaller tables whose
//                     sum faithfully approximates f, with a parameter-
//                     space exploration picking the cheapest faithful
//                     split ("computing just right");
//   * PiecewisePoly — degree-2 polynomial segments with quantized
//                     coefficients and a Horner datapath.
//
// All generators approximate y = f(x) for x in [0,1) on a win-bit input
// grid, producing mantissas in an output FixFormat. Every generator can
// report its exhaustive worst-case error in output ulps — the error
// analysis the FloPoCo methodology requires — and an FPGA cost estimate.
#pragma once

#include <functional>
#include <vector>

#include "fixedpoint/fixed.hpp"
#include "util/bits.hpp"

namespace nga::og {

using util::i64;
using util::u64;

/// Cost of a table-based operator on a 6-LUT FPGA target.
struct TableCost {
  u64 table_bits = 0;   ///< total ROM bits
  int lut6 = 0;         ///< 6-LUT estimate (ROM + adders)
  int adders = 0;       ///< word-level additions in the datapath
};

/// FPGA 6-LUT count for a (2^abits x wbits) ROM.
int rom_lut6_cost(unsigned abits, unsigned wbits);

/// Full tabulation of f on a win-bit input, correctly rounded per entry
/// (error <= 0.5 ulp by construction).
class PlainTable {
 public:
  PlainTable(const std::function<double(double)>& f, unsigned win,
             fx::FixFormat out);

  i64 lookup(u64 index) const { return table_[index]; }
  unsigned input_bits() const { return win_; }
  const fx::FixFormat& out_format() const { return out_; }
  double max_error_ulp(const std::function<double(double)>& f) const;
  TableCost cost() const;

 private:
  unsigned win_;
  fx::FixFormat out_;
  std::vector<i64> table_;
};

/// Bipartite (table + addition) approximation:
///   x = (xh | xm | xl) with a+b+c = win bits,
///   f(x) ~= TIV[xh,xm] + TO[xh,xl].
/// TIV samples f at the centre of each xl-range; TO stores the
/// xm-averaged residual. Faithfulness is *verified exhaustively*, not
/// assumed.
class BipartiteTable {
 public:
  BipartiteTable(const std::function<double(double)>& f, unsigned win,
                 fx::FixFormat out, unsigned a, unsigned b, unsigned c);

  i64 lookup(u64 index) const;
  double max_error_ulp(const std::function<double(double)>& f) const;
  TableCost cost() const;
  unsigned a() const { return a_; }
  unsigned b() const { return b_; }
  unsigned c() const { return c_; }

  /// Parameter-space exploration: the cheapest (a,b,c) split whose
  /// exhaustive error stays below @p max_ulp output ulps. Returns
  /// nullopt-like empty vector if none beats plain tabulation.
  static BipartiteTable explore(const std::function<double(double)>& f,
                                unsigned win, fx::FixFormat out,
                                double max_ulp = 1.0);

 private:
  static constexpr unsigned kGuard = 2;  ///< extra fraction bits in ROM
  unsigned win_, a_, b_, c_;
  fx::FixFormat out_;
  fx::FixFormat to_fmt_;
  std::vector<i64> tiv_;  // indexed by (xh|xm)
  std::vector<i64> to_;   // indexed by (xh|xl)
};

/// Degree-2 piecewise polynomial: the input's top s bits select a
/// segment; the remainder t in [0,1) evaluates c0 + t*(c1 + t*c2) with
/// quantized coefficients (Horner, two multipliers — the "polynomial
/// approximation thanks to multipliers" point of Section II).
class PiecewisePoly {
 public:
  PiecewisePoly(const std::function<double(double)>& f, unsigned win,
                fx::FixFormat out, unsigned seg_bits, unsigned coeff_frac);

  i64 lookup(u64 index) const;
  double max_error_ulp(const std::function<double(double)>& f) const;
  TableCost cost() const;
  unsigned segments() const { return 1u << seg_bits_; }

 private:
  unsigned win_, seg_bits_, coeff_frac_;
  fx::FixFormat out_;
  struct Coeffs {
    i64 c0, c1, c2;
  };
  std::vector<Coeffs> segs_;
};

}  // namespace nga::og
