#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace nga::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", unsigned(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value& Value::operator[](std::string_view key) const {
  static const Value null_value{};
  if (!is_object()) return null_value;
  const auto it = object.find(std::string(key));
  return it == object.end() ? null_value : it->second;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Value& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_)
      *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.str);
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    if (++depth_ > kMaxParseDepth) return fail("nesting too deep");
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail(pos_ >= text_.size() ? "truncated object"
                                         : "expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) {
        --depth_;
        return true;
      }
      if (!consume(',')) {
        return fail(pos_ >= text_.size() ? "truncated object"
                                         : "expected ',' or '}'");
      }
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    if (++depth_ > kMaxParseDepth) return fail("nesting too deep");
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(']')) {
        --depth_;
        return true;
      }
      if (!consume(',')) {
        return fail(pos_ >= text_.size() ? "truncated array"
                                         : "expected ',' or ']'");
      }
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + std::size_t(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9')
                cp |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= unsigned(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            pos_ += 4;
            // Encode the code point as UTF-8 (no surrogate pairing).
            if (cp < 0x80) {
              out += char(cp);
            } else if (cp < 0x800) {
              out += char(0xC0 | (cp >> 6));
              out += char(0x80 | (cp & 0x3F));
            } else {
              out += char(0xE0 | (cp >> 12));
              out += char(0x80 | ((cp >> 6) & 0x3F));
              out += char(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc{} || ptr != text_.data() + pos_)
      return fail("bad number");
    out.kind = Value::Kind::kNumber;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* error) {
  out = Value{};
  return Parser(text, error).run(out);
}

}  // namespace nga::obs::json
