// Span trace buffer with a chrome://tracing ("trace_event" JSON)
// exporter. TimedSection (timer.hpp) records one complete span per
// scope; nesting falls out of the chrome "X" (complete) event model —
// the viewer stacks overlapping spans of one thread by time inclusion.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/bits.hpp"

namespace nga::obs {

using util::u32;
using util::u64;

/// One completed span. Timestamps are steady-clock nanoseconds
/// (process-relative, see timer.hpp's now_ns()).
struct TraceEvent {
  std::string name;
  u64 start_ns = 0;
  u64 dur_ns = 0;
  u32 tid = 0;
};

/// Small sequential id per thread — chrome's tid field wants something
/// stable and readable, not a hashed std::thread::id.
inline u32 this_thread_trace_id() {
  static std::atomic<u32> next{1};
  thread_local const u32 id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Process-wide bounded span buffer. Appends are mutex-guarded: spans
/// close at most once per timed scope, so contention is negligible
/// compared to the work being timed.
class TraceBuffer {
 public:
  /// Hard cap on retained spans; beyond it events are counted as
  /// dropped rather than growing without bound.
  static constexpr std::size_t kMaxEvents = 1 << 20;

  static TraceBuffer& instance() {
    static TraceBuffer b;
    return b;
  }

  void record(TraceEvent ev) {
    std::lock_guard<std::mutex> lk(m_);
    if (events_.size() >= kMaxEvents) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(ev));
  }

  std::vector<TraceEvent> snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    return events_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(m_);
    return events_.size();
  }

  std::size_t dropped() const {
    std::lock_guard<std::mutex> lk(m_);
    return dropped_;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(m_);
    events_.clear();
    dropped_ = 0;
  }

  /// Emit the buffer as a chrome://tracing JSON document:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":us,"dur":us,
  ///                  "pid":1,"tid":...}, ...]}.
  /// Timestamps convert to the microseconds chrome expects, keeping
  /// fractional-ns precision as a decimal.
  void write_chrome_trace(std::ostream& os) const;

 private:
  TraceBuffer() = default;

  mutable std::mutex m_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace nga::obs
