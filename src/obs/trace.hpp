// Span tracing with a chrome://tracing ("trace_event" JSON) exporter.
//
// Two kinds of spans:
//   * thread-scoped (trace_id == 0): TimedSection (timer.hpp) records
//     one complete span per scope; nesting falls out of the chrome "X"
//     (complete) event model — the viewer stacks overlapping spans of
//     one thread lane by time inclusion. Exported under pid 1 on the
//     recording thread's lane.
//   * request-scoped (trace_id != 0): a TraceContext allocated at
//     admission propagates through a request's whole lifetime (queue
//     wait, batch coalescing, every exec attempt, retry backoff,
//     failover, reply). Exported under pid 2 with tid == trace_id, so
//     chrome://tracing shows ONE stacked timeline per request, with
//     span/parent ids in the event args.
//
// Recording is sharded: each thread owns a fixed-size SPSC ring
// (producer: the owning thread; consumer: whoever drains, serialized by
// the buffer mutex), so the hot path is two relaxed/acquire loads, a
// slot write, and a release store — no lock, no allocation beyond the
// span name itself. Rings overflow into a per-shard dropped counter
// (reported in both export formats) rather than blocking or growing.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/bits.hpp"

namespace nga::obs {

using util::u32;
using util::u64;

/// One completed span — or, when is_counter is set, one sample on a
/// named counter track (chrome "C" event: the viewer draws a stepped
/// graph of `value` over time; dur/span fields are ignored). Timestamps
/// are steady-clock nanoseconds (process-relative, see timer.hpp's
/// now_ns()).
struct TraceEvent {
  std::string name;
  u64 start_ns = 0;
  u64 dur_ns = 0;
  u32 tid = 0;
  u64 trace_id = 0;     ///< request-scoped when nonzero
  u64 span_id = 0;      ///< unique per span within a trace
  u64 parent_span = 0;  ///< 0 = root span of its trace
  bool is_counter = false;  ///< counter-track sample, not a span
  double value = 0.0;       ///< sampled value when is_counter
};

/// Small sequential id per thread — chrome's tid field wants something
/// stable and readable, not a hashed std::thread::id.
inline u32 this_thread_trace_id() {
  static std::atomic<u32> next{1};
  thread_local const u32 id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Request-scoped trace identity, allocated at admission (start_trace)
/// and carried by value through the serving pipeline. A non-sampled
/// context is inert: record_span() on it is a no-op, so the sampling
/// decision is made once per request, not once per span.
struct TraceContext {
  u64 trace_id = 0;
  u64 root_span = 0;  ///< pre-allocated id the reply span closes with
  bool sampled = false;
  explicit operator bool() const { return sampled; }
};

/// Fresh process-unique span id (never 0).
u64 next_span_id();

/// Allocate a trace context. @p sample_rate in [0,1] is the probability
/// the request is traced end-to-end (head sampling: whole timelines or
/// nothing, so sampled traces are always complete). Rates <= 0 skip the
/// RNG draw entirely — the "sampling off" fast path is two relaxed
/// atomic increments and a bool store.
TraceContext start_trace(double sample_rate);

/// One thread's span ring. SPSC: only the owning thread pushes, only
/// one drainer (under the TraceBuffer mutex) pops.
class TraceShard {
 public:
  static constexpr std::size_t kCapacity = 2048;  // power of two

  explicit TraceShard(u32 tid) : tid_(tid) {}

  /// Producer side (owning thread only).
  void push(TraceEvent ev) {
    const u64 h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_acquire) >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring_[h % kCapacity] = std::move(ev);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Consumer side (serialized by the owning TraceBuffer).
  void drain(std::vector<TraceEvent>& out) {
    const u64 h = head_.load(std::memory_order_acquire);
    u64 t = tail_.load(std::memory_order_relaxed);
    for (; t != h; ++t) out.push_back(std::move(ring_[t % kCapacity]));
    tail_.store(t, std::memory_order_release);
  }

  u64 dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Consumer side; an increment racing the reset may be lost, which is
  /// the documented clear() semantics.
  void reset_dropped() { dropped_.store(0, std::memory_order_relaxed); }
  u32 tid() const { return tid_; }

 private:
  std::array<TraceEvent, kCapacity> ring_;
  std::atomic<u64> head_{0};  ///< written by the producer
  std::atomic<u64> tail_{0};  ///< written by the drainer
  std::atomic<u64> dropped_{0};
  const u32 tid_;
};

/// Process-wide span store: per-thread SPSC ring shards, drained into a
/// bounded retained vector by the snapshot/export path. record() never
/// takes the mutex; shard registration (once per thread) and draining
/// do. Shards live for the process lifetime, so a drain can always
/// collect spans from threads that have since exited.
class TraceBuffer {
 public:
  /// Hard cap on retained (drained) spans; beyond it events are counted
  /// as dropped rather than growing without bound.
  static constexpr std::size_t kMaxEvents = 1 << 20;

  static TraceBuffer& instance() {
    static TraceBuffer b;
    return b;
  }

  /// Record one completed span into the calling thread's shard.
  void record(TraceEvent ev) { shard().push(std::move(ev)); }

  /// Record a request-scoped span; no-op when @p ctx is not sampled.
  void record_span(const TraceContext& ctx, std::string name, u64 start_ns,
                   u64 dur_ns, u64 parent_span, u64 span_id = 0) {
    if (!ctx.sampled) return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.start_ns = start_ns;
    ev.dur_ns = dur_ns;
    ev.tid = this_thread_trace_id();
    ev.trace_id = ctx.trace_id;
    ev.span_id = span_id ? span_id : next_span_id();
    ev.parent_span = parent_span;
    record(std::move(ev));
  }

  /// Label the calling thread's lane in the chrome export (emitted as a
  /// thread_name metadata event).
  void set_thread_name(std::string name);

  /// Drain every shard and return all retained spans. Per-shard record
  /// order is preserved (single-threaded runs see exact record order);
  /// cross-shard interleaving is by shard registration order.
  std::vector<TraceEvent> snapshot() const;

  std::size_t size() const;

  /// Spans lost to ring overflow or the retained cap, total.
  std::size_t dropped() const;

  /// Drop all retained and in-flight spans and zero the dropped count.
  /// Spans recorded concurrently with clear() may survive it.
  void clear();

  /// Emit the buffer as a chrome://tracing JSON document:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":us,"dur":us,
  ///                  "pid":...,"tid":...}, ...]}.
  /// Thread-scoped spans land on pid 1 (one lane per thread, named by
  /// set_thread_name); request-scoped spans land on pid 2 with
  /// tid == trace_id (one lane per sampled request) and carry
  /// trace/span/parent ids in args. Metadata events name the two
  /// processes, the labelled threads, and report the dropped-span count.
  void write_chrome_trace(std::ostream& os) const;

 private:
  TraceBuffer() = default;

  TraceShard& shard();
  void drain_locked() const;  ///< caller holds m_

  mutable std::mutex m_;
  mutable std::vector<std::unique_ptr<TraceShard>> shards_;
  mutable std::vector<TraceEvent> events_;   ///< drained + retained
  mutable std::size_t overflow_dropped_ = 0; ///< lost to the retained cap
  std::map<u32, std::string> thread_names_;
};

}  // namespace nga::obs
