// Minimal JSON support for the observability layer: string escaping for
// the writers (export.cpp, trace.cpp) and a small recursive-descent
// parser used by tests and CI tooling to validate what we emit.
//
// The parser accepts strict JSON (RFC 8259) minus some exotica nobody
// emits here: no \u surrogate-pair recombination (the escape is decoded
// as-is into UTF-8) and numbers are parsed as double.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nga::obs::json {

/// Escape @p s for inclusion inside a JSON string literal (no quotes).
std::string escape(std::string_view s);

/// A parsed JSON value (small DOM, value-semantic).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  bool has(std::string_view key) const {
    return is_object() && object.find(std::string(key)) != object.end();
  }
  /// Object member access; returns a shared null value for misses so
  /// chained lookups (`v["a"]["b"]`) are safe on absent paths.
  const Value& operator[](std::string_view key) const;
};

/// Maximum container nesting the parser accepts. Inputs nested deeper
/// fail cleanly ("nesting too deep") instead of exhausting the stack —
/// the parser recurses per level, so the bound is what makes adversarial
/// `[[[[...` inputs safe.
inline constexpr std::size_t kMaxParseDepth = 64;

/// Parse @p text into @p out. On failure returns false and, if
/// @p error is non-null, stores a message with the byte offset.
/// Total on arbitrary bytes: any input either parses or produces an
/// error; no crash, hang, or UB (regression-tested in tests/obs/).
bool parse(std::string_view text, Value& out, std::string* error = nullptr);

}  // namespace nga::obs::json
