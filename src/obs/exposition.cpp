#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>

#include "obs/registry.hpp"

namespace nga::obs {

namespace {

bool name_char_ok(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

std::string num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Escaping for `# HELP` text per the Prometheus text format: backslash
// and line feed; everything else passes through.
std::string help_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out.push_back(c);
  }
  return out;
}

// One family: optional `# HELP`, then `# TYPE`, then the sample. HELP
// must precede TYPE (Prometheus text-format convention; scrapers that
// parse metadata expect this order).
void line(std::ostream& os, const std::string& metric, const char* type,
          const std::string& value, const std::string& help = {}) {
  if (!help.empty()) os << "# HELP " << metric << " " << help_escape(help) << "\n";
  os << "# TYPE " << metric << " " << type << "\n"
     << metric << " " << value << "\n";
}

}  // namespace

std::string exposition_name(std::string_view name) {
  std::string out = "nga_";
  for (char c : name) out.push_back(name_char_ok(c, false) ? c : '_');
  // "nga_" guarantees a valid first character; nothing else to fix.
  return out;
}

void write_text_exposition(std::ostream& os) {
  const auto& reg = MetricsRegistry::instance();
  const auto help = reg.help_snapshot();
  const auto help_of = [&](const std::string& k) -> std::string {
    const auto it = help.find(k);
    return it == help.end() ? std::string{} : it->second;
  };
  for (const auto& [k, v] : reg.counters_snapshot())
    line(os, exposition_name(k) + "_total", "counter", std::to_string(v),
         help_of(k));
  for (const auto& [k, v] : reg.sections_snapshot())
    line(os, exposition_name(k) + "_ns_total", "counter", std::to_string(v),
         help_of(k));
  for (const auto& [k, v] : reg.gauges_snapshot())
    line(os, exposition_name(k), "gauge", num(v), help_of(k));
  for (const auto& [k, s] : reg.series_snapshot()) {
    const std::string base = exposition_name(k);
    // The five derived families share the series' help text.
    line(os, base + "_count", "gauge", std::to_string(s.count), help_of(k));
    line(os, base + "_mean", "gauge", num(s.mean), help_of(k));
    line(os, base + "_stddev", "gauge", num(s.stddev), help_of(k));
    line(os, base + "_min", "gauge", num(s.min), help_of(k));
    line(os, base + "_max", "gauge", num(s.max), help_of(k));
  }
}

}  // namespace nga::obs
