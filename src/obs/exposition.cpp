#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>

#include "obs/registry.hpp"

namespace nga::obs {

namespace {

bool name_char_ok(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

std::string num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void line(std::ostream& os, const std::string& metric, const char* type,
          const std::string& value) {
  os << "# TYPE " << metric << " " << type << "\n"
     << metric << " " << value << "\n";
}

}  // namespace

std::string exposition_name(std::string_view name) {
  std::string out = "nga_";
  for (char c : name) out.push_back(name_char_ok(c, false) ? c : '_');
  // "nga_" guarantees a valid first character; nothing else to fix.
  return out;
}

void write_text_exposition(std::ostream& os) {
  const auto& reg = MetricsRegistry::instance();
  for (const auto& [k, v] : reg.counters_snapshot())
    line(os, exposition_name(k) + "_total", "counter", std::to_string(v));
  for (const auto& [k, v] : reg.sections_snapshot())
    line(os, exposition_name(k) + "_ns_total", "counter", std::to_string(v));
  for (const auto& [k, v] : reg.gauges_snapshot())
    line(os, exposition_name(k), "gauge", num(v));
  for (const auto& [k, s] : reg.series_snapshot()) {
    const std::string base = exposition_name(k);
    line(os, base + "_count", "gauge", std::to_string(s.count));
    line(os, base + "_mean", "gauge", num(s.mean));
    line(os, base + "_stddev", "gauge", num(s.stddev));
    line(os, base + "_min", "gauge", num(s.min));
    line(os, base + "_max", "gauge", num(s.max));
  }
}

}  // namespace nga::obs
