// RAII wall-clock timers on the steady clock, nanosecond resolution.
//
//   ScopedTimer  — accumulates elapsed ns into a registry "section"
//                  counter (cheap: two clock reads + one atomic add).
//   TimedSection — ScopedTimer plus a chrome-trace span in the process
//                  TraceBuffer; use for the coarse phases a bench or
//                  experiment wants to see in the JSON/trace output.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace nga::obs {

/// Steady-clock nanoseconds since an arbitrary process-local epoch.
inline u64 now_ns() {
  return u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count());
}

/// Accumulates this scope's wall time into a named section counter.
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter& sink) : sink_(&sink), t0_(now_ns()) {}
  explicit ScopedTimer(std::string_view section)
      : ScopedTimer(MetricsRegistry::instance().section(section)) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_->inc(elapsed_ns()); }

  u64 elapsed_ns() const { return now_ns() - t0_; }

 private:
  Counter* sink_;
  u64 t0_;
};

/// A section timer that also records a trace span, so nested
/// TimedSections reconstruct the call structure in chrome://tracing.
class TimedSection {
 public:
  explicit TimedSection(std::string name)
      : name_(std::move(name)),
        sink_(&MetricsRegistry::instance().section(name_)),
        t0_(now_ns()) {}
  TimedSection(const TimedSection&) = delete;
  TimedSection& operator=(const TimedSection&) = delete;
  ~TimedSection() {
    const u64 dur = now_ns() - t0_;
    sink_->inc(dur);
    TraceBuffer::instance().record(
        {std::move(name_), t0_, dur, this_thread_trace_id()});
  }

  u64 elapsed_ns() const { return now_ns() - t0_; }

 private:
  std::string name_;
  Counter* sink_;
  u64 t0_;
};

}  // namespace nga::obs
