// Process-wide metrics registry: named counters, gauges, and running
// value series, shared by the instrumented arithmetic hot paths and the
// bench harness (bench/bench_main.hpp).
//
// Design constraints, in order:
//   1. A hot-path increment must cost one relaxed atomic add. Call
//      sites cache a `Counter&` in a function-local static (see the
//      NGA_OBS_COUNT macro in obs.hpp), so the registry lookup happens
//      once per call site, not once per event.
//   2. References handed out by the registry stay valid forever —
//      entries are stored in node-stable std::map and reset() zeroes
//      values instead of erasing nodes.
//   3. Everything is thread-safe: counters/gauges are atomics, series
//      take a mutex per sample (series are for warm paths, not MACs).
//
// Concurrency contract (relied on by the nga::serve worker pool and
// enforced by tests/obs/registry_hammer_test.cpp under TSan):
//   * counter(), gauge(), series(), section() may be called from any
//     thread, concurrently with each other and with mutation — the
//     registry map is guarded by one mutex and nodes are never erased,
//     so a returned reference stays valid for the process lifetime;
//   * Counter::inc / Gauge::set are single relaxed atomic ops — exact
//     under any interleaving, no ordering is promised between metrics;
//   * ValueSeries::add serialises on a per-registry-entry mutex;
//   * reset() and the *_snapshot() accessors may race writers: a
//     snapshot is internally consistent per metric, not a cross-metric
//     atomic cut.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/bits.hpp"
#include "util/stats.hpp"

namespace nga::obs {

using util::u64;

/// Monotonic event counter. inc() is a single relaxed fetch_add.
class Counter {
 public:
  void inc(u64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Last-write-wins instantaneous value (e.g. "current model bytes").
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Plain-data snapshot of a value series, safe to read lock-free.
struct SeriesSnapshot {
  std::size_t count = 0;
  double mean = 0, stddev = 0, min = 0, max = 0;
};

/// Streaming distribution of a sampled quantity (latency, error, ...),
/// backed by util::RunningStats under a mutex.
class ValueSeries {
 public:
  void add(double x) {
    std::lock_guard<std::mutex> lk(m_);
    s_.add(x);
  }
  SeriesSnapshot snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    return {s_.count(), s_.mean(), s_.stddev(), s_.min(), s_.max()};
  }
  void reset() {
    std::lock_guard<std::mutex> lk(m_);
    s_ = util::RunningStats{};
  }

 private:
  mutable std::mutex m_;
  util::RunningStats s_;
};

/// The process-wide registry. Four independent namespaces: counters
/// (event counts), sections (accumulated wall-clock ns, fed by the RAII
/// timers in timer.hpp), gauges, and value series.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance() {
    static MetricsRegistry r;
    return r;
  }

  Counter& counter(std::string_view name) { return get(counters_, name); }
  Counter& section(std::string_view name) { return get(sections_, name); }
  Gauge& gauge(std::string_view name) { return get(gauges_, name); }
  ValueSeries& series(std::string_view name) { return get(series_, name); }

  // Registration with help text: same lookup, plus the description the
  // text exposition renders as a `# HELP` line (exposition.cpp). Help
  // is keyed by REGISTRY name — every exposition family derived from
  // the entry (the _total/_ns_total/_count/... suffixed metrics)
  // inherits it. Last writer wins; empty help registers nothing.
  Counter& counter(std::string_view name, std::string_view help) {
    describe(name, help);
    return get(counters_, name);
  }
  Counter& section(std::string_view name, std::string_view help) {
    describe(name, help);
    return get(sections_, name);
  }
  Gauge& gauge(std::string_view name, std::string_view help) {
    describe(name, help);
    return get(gauges_, name);
  }
  ValueSeries& series(std::string_view name, std::string_view help) {
    describe(name, help);
    return get(series_, name);
  }

  /// Attach (or replace) help text for a registry name.
  void describe(std::string_view name, std::string_view help) {
    if (help.empty()) return;
    std::lock_guard<std::mutex> lk(m_);
    help_[std::string(name)] = std::string(help);
  }

  /// Registry-name -> help text, for the exposition writer. Help
  /// survives reset() — it describes the metric, not its value.
  std::map<std::string, std::string> help_snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    return help_;
  }

  /// Zero every registered value. Registered objects survive (cached
  /// references at call sites must stay valid), only their state clears.
  void reset() {
    std::lock_guard<std::mutex> lk(m_);
    for (auto& [k, v] : counters_) v.reset();
    for (auto& [k, v] : sections_) v.reset();
    for (auto& [k, v] : gauges_) v.reset();
    for (auto& [k, v] : series_) v.reset();
  }

  // Snapshots for export; sorted by name (std::map order).
  std::map<std::string, u64> counters_snapshot() const {
    return snap_u64(counters_);
  }
  std::map<std::string, u64> sections_snapshot() const {
    return snap_u64(sections_);
  }
  std::map<std::string, double> gauges_snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    std::map<std::string, double> out;
    for (const auto& [k, v] : gauges_) out[k] = v.value();
    return out;
  }
  std::map<std::string, SeriesSnapshot> series_snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    std::map<std::string, SeriesSnapshot> out;
    for (const auto& [k, v] : series_) out[k] = v.snapshot();
    return out;
  }

 private:
  MetricsRegistry() = default;

  template <class T>
  T& get(std::map<std::string, T, std::less<>>& m, std::string_view name) {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = m.find(name);
    if (it != m.end()) return it->second;
    return m.try_emplace(std::string(name)).first->second;
  }

  template <class T>
  std::map<std::string, u64> snap_u64(
      const std::map<std::string, T, std::less<>>& m) const {
    std::lock_guard<std::mutex> lk(m_);
    std::map<std::string, u64> out;
    for (const auto& [k, v] : m) out[k] = v.value();
    return out;
  }

  mutable std::mutex m_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Counter, std::less<>> sections_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, ValueSeries, std::less<>> series_;
  std::map<std::string, std::string> help_;  ///< name -> # HELP text
};

}  // namespace nga::obs
