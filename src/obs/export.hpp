// Machine-readable export of the metrics registry: the stable
// "nga-bench-v1" JSON schema CI diffs across PRs (BENCH_*.json).
//
// Schema (all maps sorted by key, so diffs are stable):
//   {
//     "schema":   "nga-bench-v1",
//     "bench":    "<bench name>",
//     "wall_ns":  { "<section>": <u64 ns>, ... },
//     "counters": { "<counter>": <u64>, ... },
//     "gauges":   { "<gauge>": <double>, ... },
//     "metrics":  { "<series>": { "count": <u64>, "mean": <double>,
//                                 "stddev": <double>, "min": <double>,
//                                 "max": <double> }, ... },
//     "trace":    { "recorded_spans": <u64>, "dropped_spans": <u64> },
//     ...registered sections (e.g. "prof": {...})
//   }
// "trace" reports the span buffer's fill and loss so a truncated trace
// shows up in the diffed JSON, not just in the trace file (additive
// key; the schema string is unchanged). Further additive top-level keys
// come from register_json_section(): subsystems layered ABOVE obs (the
// prof attribution registry) plug their section in at startup, so obs
// never grows an upward dependency and benches that don't touch the
// subsystem keep their exact schema.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace nga::obs {

inline constexpr std::string_view kBenchSchema = "nga-bench-v1";

/// Serialize the current registry state in the schema above.
void write_metrics_json(std::ostream& os, std::string_view bench_name);

/// Register an additive top-level section emitted after "trace". The
/// writer must emit ONE valid JSON value (typically an object). Keys
/// are emitted in registration order; re-registering a key replaces its
/// writer. @p key must not collide with the core schema keys above.
/// Thread-safe; writers run under the section lock, so they must not
/// recursively register.
void register_json_section(std::string key,
                           std::function<void(std::ostream&)> writer);

}  // namespace nga::obs
