// Machine-readable export of the metrics registry: the stable
// "nga-bench-v1" JSON schema CI diffs across PRs (BENCH_*.json).
//
// Schema (all maps sorted by key, so diffs are stable):
//   {
//     "schema":   "nga-bench-v1",
//     "bench":    "<bench name>",
//     "wall_ns":  { "<section>": <u64 ns>, ... },
//     "counters": { "<counter>": <u64>, ... },
//     "gauges":   { "<gauge>": <double>, ... },
//     "metrics":  { "<series>": { "count": <u64>, "mean": <double>,
//                                 "stddev": <double>, "min": <double>,
//                                 "max": <double> }, ... },
//     "trace":    { "recorded_spans": <u64>, "dropped_spans": <u64> }
//   }
// "trace" reports the span buffer's fill and loss so a truncated trace
// shows up in the diffed JSON, not just in the trace file (additive
// key; the schema string is unchanged).
#pragma once

#include <ostream>
#include <string_view>

namespace nga::obs {

inline constexpr std::string_view kBenchSchema = "nga-bench-v1";

/// Serialize the current registry state in the schema above.
void write_metrics_json(std::ostream& os, std::string_view bench_name);

}  // namespace nga::obs
