// Machine-readable export of the metrics registry: the stable
// "nga-bench-v1" JSON schema CI diffs across PRs (BENCH_*.json).
//
// Schema (all maps sorted by key, so diffs are stable):
//   {
//     "schema":   "nga-bench-v1",
//     "bench":    "<bench name>",
//     "wall_ns":  { "<section>": <u64 ns>, ... },
//     "counters": { "<counter>": <u64>, ... },
//     "gauges":   { "<gauge>": <double>, ... },
//     "metrics":  { "<series>": { "count": <u64>, "mean": <double>,
//                                 "stddev": <double>, "min": <double>,
//                                 "max": <double> }, ... }
//   }
#pragma once

#include <ostream>
#include <string_view>

namespace nga::obs {

inline constexpr std::string_view kBenchSchema = "nga-bench-v1";

/// Serialize the current registry state in the schema above.
void write_metrics_json(std::ostream& os, std::string_view bench_name);

}  // namespace nga::obs
