// nga::obs — umbrella header and the NGA_OBS instrumentation macros.
//
// The library's arithmetic hot paths (posit rounding, softfloat packing,
// bit-heap compression, quantized MACs) emit events through the macros
// below. With NGA_OBS=1 (the default, and what the CMake option NGA_OBS
// controls) each event costs one relaxed atomic increment through a
// call-site-cached Counter reference. With NGA_OBS=0 every macro
// expands to `((void)0)`: instrumented modules compile with the obs
// calls fully elided, so library users pay nothing.
//
// The obs *classes* (MetricsRegistry, ScopedTimer, TraceBuffer, the
// JSON exporter) are plain library code and remain available either
// way — only the hot-path event macros are guarded.
#pragma once

#include "obs/export.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

#ifndef NGA_OBS
#define NGA_OBS 1
#endif

#if NGA_OBS

/// Count one event. @p name is a string literal; the registry lookup
/// happens once per call site (function-local static reference).
#define NGA_OBS_COUNT(name) NGA_OBS_COUNT_N(name, 1)

/// Count @p n events at once.
#define NGA_OBS_COUNT_N(name, n)                                     \
  do {                                                               \
    static ::nga::obs::Counter& nga_obs_counter_ =                   \
        ::nga::obs::MetricsRegistry::instance().counter(name);       \
    nga_obs_counter_.inc(::nga::obs::u64(n));                        \
  } while (0)

/// Record a sample into a value series (mean/stddev/min/max).
#define NGA_OBS_VALUE(name, v)                                       \
  do {                                                               \
    static ::nga::obs::ValueSeries& nga_obs_series_ =                \
        ::nga::obs::MetricsRegistry::instance().series(name);        \
    nga_obs_series_.add(static_cast<double>(v));                     \
  } while (0)

/// Set a gauge to an instantaneous value.
#define NGA_OBS_GAUGE(name, v)                                       \
  do {                                                               \
    static ::nga::obs::Gauge& nga_obs_gauge_ =                       \
        ::nga::obs::MetricsRegistry::instance().gauge(name);         \
    nga_obs_gauge_.set(static_cast<double>(v));                      \
  } while (0)

/// Time the rest of the enclosing scope as a named section + trace span.
#define NGA_OBS_TIMED(name) \
  ::nga::obs::TimedSection NGA_OBS_CAT_(nga_obs_timed_, __LINE__) { name }
#define NGA_OBS_CAT_(a, b) NGA_OBS_CAT2_(a, b)
#define NGA_OBS_CAT2_(a, b) a##b

#else  // !NGA_OBS — every event macro vanishes.

#define NGA_OBS_COUNT(name) ((void)0)
#define NGA_OBS_COUNT_N(name, n) ((void)0)
#define NGA_OBS_VALUE(name, v) ((void)0)
#define NGA_OBS_GAUGE(name, v) ((void)0)
#define NGA_OBS_TIMED(name) ((void)0)

#endif  // NGA_OBS
