#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace nga::obs {

namespace {

std::string num(double v) {
  // JSON has no NaN/Inf; clamp to null-free sentinels (empty series
  // report 0s upstream, so this is belt-and-braces).
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

template <class Map, class Fn>
void write_map(std::ostream& os, const char* key, const Map& m, Fn value) {
  os << "\"" << key << "\":{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json::escape(k) << "\":" << value(v);
  }
  os << "}";
}

// Registered additive sections (key -> writer), in registration order.
// Function-local so first use from any static initializer is safe.
struct ExtraSections {
  std::mutex m;
  std::vector<std::pair<std::string, std::function<void(std::ostream&)>>> v;
  static ExtraSections& instance() {
    static ExtraSections s;
    return s;
  }
};

}  // namespace

void register_json_section(std::string key,
                           std::function<void(std::ostream&)> writer) {
  auto& s = ExtraSections::instance();
  std::lock_guard<std::mutex> lk(s.m);
  for (auto& [k, w] : s.v) {
    if (k == key) {
      w = std::move(writer);
      return;
    }
  }
  s.v.emplace_back(std::move(key), std::move(writer));
}

void write_metrics_json(std::ostream& os, std::string_view bench_name) {
  const auto& reg = MetricsRegistry::instance();
  os << "{\"schema\":\"" << kBenchSchema << "\",";
  os << "\"bench\":\"" << json::escape(bench_name) << "\",";
  write_map(os, "wall_ns", reg.sections_snapshot(),
            [](u64 v) { return std::to_string(v); });
  os << ",";
  write_map(os, "counters", reg.counters_snapshot(),
            [](u64 v) { return std::to_string(v); });
  os << ",";
  write_map(os, "gauges", reg.gauges_snapshot(),
            [](double v) { return num(v); });
  os << ",";
  write_map(os, "metrics", reg.series_snapshot(), [](const SeriesSnapshot& s) {
    std::string o = "{\"count\":" + std::to_string(s.count);
    o += ",\"mean\":" + num(s.mean);
    o += ",\"stddev\":" + num(s.stddev);
    o += ",\"min\":" + num(s.min);
    o += ",\"max\":" + num(s.max);
    o += "}";
    return o;
  });
  const auto& trace = TraceBuffer::instance();
  os << ",\"trace\":{\"recorded_spans\":" << trace.size()
     << ",\"dropped_spans\":" << trace.dropped() << "}";
  {
    auto& extra = ExtraSections::instance();
    std::lock_guard<std::mutex> lk(extra.m);
    for (const auto& [key, writer] : extra.v) {
      os << ",\"" << json::escape(key) << "\":";
      writer(os);
    }
  }
  os << "}\n";
}

}  // namespace nga::obs
