// Prometheus-style text exposition of the metrics registry — the
// "scrape me" complement to the nga-bench-v1 JSON (export.hpp). Meant
// for eyeballs and standard tooling rather than CI diffs: every
// registered counter, section, gauge, and value series is rendered as
//
//   # HELP nga_serve_served_total Requests served to completion.
//   # TYPE nga_serve_served_total counter
//   nga_serve_served_total 720
//
// The `# HELP` line appears (before `# TYPE`, as the Prometheus text
// format requires) for every entry registered with help text
// (MetricsRegistry::describe or the two-argument counter/gauge/series
// overloads); entries without help render TYPE + sample only.
//
// Metric names are the registry names sanitized to the Prometheus
// grammar ([a-zA-Z_:][a-zA-Z0-9_:]*; every other byte becomes '_').
// Suffix conventions:
//   counters  -> nga_<name>_total            (counter)
//   sections  -> nga_<name>_ns_total         (counter, wall-clock ns)
//   gauges    -> nga_<name>                  (gauge)
//   series    -> nga_<name>_{count,mean,stddev,min,max}  (gauges)
//
// nga::serve::Server dumps this on drain when configured
// (ServerConfig::exposition_path); anything else can call it on demand.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace nga::obs {

/// Sanitize one registry name into a Prometheus metric-name fragment.
std::string exposition_name(std::string_view name);

/// Render the whole registry in the format above.
void write_text_exposition(std::ostream& os);

}  // namespace nga::obs
