#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/json.hpp"
#include "util/rng.hpp"

namespace nga::obs {

u64 next_span_id() {
  static std::atomic<u64> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceContext start_trace(double sample_rate) {
  static std::atomic<u64> next_trace{1};
  TraceContext ctx;
  ctx.trace_id = next_trace.fetch_add(1, std::memory_order_relaxed);
  if (sample_rate <= 0.0) return ctx;  // sampling off: no RNG draw
  if (sample_rate >= 1.0) {
    ctx.sampled = true;
  } else {
    // Per-thread stream: no shared state on the sampling decision.
    thread_local util::Xoshiro256 rng(0x9e3779b97f4a7c15ull ^
                                      (u64(this_thread_trace_id()) << 32));
    ctx.sampled =
        double(rng()) < sample_rate * 18446744073709551616.0 /*2^64*/;
  }
  if (ctx.sampled) ctx.root_span = next_span_id();
  return ctx;
}

TraceShard& TraceBuffer::shard() {
  thread_local TraceShard* cached = nullptr;
  if (!cached) {
    std::lock_guard<std::mutex> lk(m_);
    shards_.push_back(std::make_unique<TraceShard>(this_thread_trace_id()));
    cached = shards_.back().get();
  }
  return *cached;
}

void TraceBuffer::set_thread_name(std::string name) {
  std::lock_guard<std::mutex> lk(m_);
  thread_names_[this_thread_trace_id()] = std::move(name);
}

void TraceBuffer::drain_locked() const {
  std::vector<TraceEvent> fresh;
  for (const auto& sh : shards_) sh->drain(fresh);
  for (auto& ev : fresh) {
    if (events_.size() >= kMaxEvents)
      ++overflow_dropped_;
    else
      events_.push_back(std::move(ev));
  }
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  drain_locked();
  return events_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lk(m_);
  drain_locked();
  return events_.size();
}

std::size_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lk(m_);
  drain_locked();
  std::size_t n = overflow_dropped_;
  for (const auto& sh : shards_) n += sh->dropped();
  return n;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<TraceEvent> discard;
  for (const auto& sh : shards_) {
    sh->drain(discard);
    sh->reset_dropped();
  }
  events_.clear();
  overflow_dropped_ = 0;
}

void TraceBuffer::write_chrome_trace(std::ostream& os) const {
  const auto events = snapshot();
  const std::size_t dropped_spans = dropped();
  std::map<u32, std::string> names;
  {
    std::lock_guard<std::mutex> lk(m_);
    names = thread_names_;
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  char buf[224];
  for (const auto& ev : events) {
    sep();
    if (ev.is_counter) {
      // Counter track: chrome draws args values as a stepped graph on
      // its own lane (pid 1, one lane per counter name).
      std::snprintf(buf, sizeof buf,
                    "\"ph\":\"C\",\"ts\":%" PRIu64
                    ".%03u,\"pid\":1,\"args\":{\"value\":%.17g}",
                    ev.start_ns / 1000, unsigned(ev.start_ns % 1000),
                    ev.value);
    } else if (ev.trace_id == 0) {
      // chrome wants microseconds; keep ns precision as fractional us.
      std::snprintf(buf, sizeof buf,
                    "\"ph\":\"X\",\"ts\":%" PRIu64 ".%03u,\"dur\":%" PRIu64
                    ".%03u,\"pid\":1,\"tid\":%u",
                    ev.start_ns / 1000, unsigned(ev.start_ns % 1000),
                    ev.dur_ns / 1000, unsigned(ev.dur_ns % 1000), ev.tid);
    } else {
      // Request lane: tid is the trace id, span ancestry goes in args.
      std::snprintf(buf, sizeof buf,
                    "\"ph\":\"X\",\"ts\":%" PRIu64 ".%03u,\"dur\":%" PRIu64
                    ".%03u,\"pid\":2,\"tid\":%" PRIu64
                    ",\"args\":{\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
                    ",\"parent_span_id\":%" PRIu64 "}",
                    ev.start_ns / 1000, unsigned(ev.start_ns % 1000),
                    ev.dur_ns / 1000, unsigned(ev.dur_ns % 1000), ev.trace_id,
                    ev.trace_id, ev.span_id, ev.parent_span);
    }
    os << "{\"name\":\"" << json::escape(ev.name) << "\"," << buf << "}";
  }
  // Metadata: process/thread labels and the dropped-span count, so a
  // truncated trace is visibly truncated instead of silently partial.
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"nga\"}}";
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
        "\"args\":{\"name\":\"nga.requests\"}}";
  for (const auto& [tid, name] : names) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json::escape(name) << "\"}}";
  }
  sep();
  os << "{\"name\":\"nga_trace_dropped\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"dropped_spans\":"
     << dropped_spans << "}}";
  os << "],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace nga::obs
