#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/json.hpp"

namespace nga::obs {

void TraceBuffer::write_chrome_trace(std::ostream& os) const {
  const auto events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const auto& ev : events) {
    if (!first) os << ",";
    first = false;
    // chrome wants microseconds; keep ns precision as fractional us.
    std::snprintf(buf, sizeof buf,
                  "\"ph\":\"X\",\"ts\":%" PRIu64 ".%03u,\"dur\":%" PRIu64
                  ".%03u,\"pid\":1,\"tid\":%u",
                  ev.start_ns / 1000, unsigned(ev.start_ns % 1000),
                  ev.dur_ns / 1000, unsigned(ev.dur_ns % 1000), ev.tid);
    os << "{\"name\":\"" << json::escape(ev.name) << "\"," << buf << "}";
  }
  os << "],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace nga::obs
