// Linux hardware performance counters via perf_event_open, with
// graceful degradation everywhere the syscall is unavailable.
//
// One PerfCounters owns one counter GROUP scheduled together on the
// calling thread: cycles (leader) + instructions, cache-references,
// cache-misses, branch-misses (siblings). Reads return a coherent
// multiplex-scaled sample of the whole group in one syscall.
//
// Degradation contract (the part callers rely on):
//   * construction NEVER throws for environment reasons. On non-Linux
//     builds, in containers that seccomp the syscall away, under
//     perf_event_paranoid lockdown, or on PMU-less VMs, the object
//     simply reports available() == false with a human-readable
//     unavailable_reason(), and every read returns a sample whose
//     `available` flag is false (never fabricated zeros presented as
//     measurements);
//   * individual SIBLING events that the PMU lacks are dropped from the
//     group rather than failing the whole thing — only the cycles
//     leader is mandatory;
//   * the attribution layer (prof/attribution.hpp) checks `available`
//     and falls back to wall-clock-only accounting, and the exported
//     "prof" JSON section marks counters "unavailable" rather than
//     emitting zeros.
//
// The group counts user-space only (exclude_kernel, exclude_hv): that
// is what perf_event_paranoid=2 permits without privileges, and kernel
// time is noise for MAC-kernel attribution anyway.
#pragma once

#include <string>

#include "util/bits.hpp"

namespace nga::prof {

using util::u64;

struct PerfConfig {
  /// Master switch; false behaves exactly like an unavailable syscall
  /// (reason "disabled").
  bool enabled = true;
  /// Test shim: pretend perf_event_open returned ENOSYS without making
  /// the syscall. Deterministic on every platform — the degradation
  /// tests use it so they do not depend on the runner's kernel config.
  bool force_unavailable = false;
  /// Leader event config within PERF_TYPE_HARDWARE. The default is
  /// PERF_COUNT_HW_CPU_CYCLES; tests pass a garbage value to exercise
  /// the real EINVAL failure path of the syscall.
  u64 leader_config = u64(-1);  ///< -1 = PERF_COUNT_HW_CPU_CYCLES
};

/// One multiplex-scaled reading of the group. `available` is false when
/// the group never opened — the counter fields are then meaningless and
/// MUST NOT be reported as zeros (check the flag first).
struct PerfSample {
  bool available = false;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 cache_refs = 0;
  u64 cache_misses = 0;
  u64 branch_misses = 0;

  PerfSample& operator+=(const PerfSample& o);
  /// Counter-wise delta (this - o); available iff both sides are.
  PerfSample delta_since(const PerfSample& o) const;
};

class PerfCounters {
 public:
  explicit PerfCounters(PerfConfig cfg = {});
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True iff the cycles leader opened and the group is counting.
  bool available() const { return leader_fd_ >= 0; }
  /// Why not, when !available(): "disabled", "forced-ENOSYS",
  /// "not-linux", or the errno name the syscall failed with.
  const std::string& unavailable_reason() const { return reason_; }

  /// Which sibling events actually opened (cycles implies available()).
  bool has_instructions() const { return fd_instructions_ >= 0; }
  bool has_cache() const { return fd_cache_refs_ >= 0; }
  bool has_branch_misses() const { return fd_branch_misses_ >= 0; }

  /// Read the group now (running counters; one read() syscall). On an
  /// unavailable group returns {available: false}.
  PerfSample read() const;

  /// Zero the whole group (ioctl RESET); no-op when unavailable.
  void reset();

  /// RAII delta: reads at construction and adds (end - start) into
  /// @p sink at destruction. On an unavailable group the sink's
  /// `available` flag is left untouched (wall-clock-only fallback).
  class Scoped {
   public:
    Scoped(const PerfCounters& pc, PerfSample& sink)
        : pc_(pc), sink_(sink), t0_(pc.read()) {}
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    ~Scoped() {
      if (t0_.available) sink_ += pc_.read().delta_since(t0_);
    }

   private:
    const PerfCounters& pc_;
    PerfSample& sink_;
    PerfSample t0_;
  };

 private:
  int open_event(u64 type, u64 config, int group_fd);
  void close_all();

  int leader_fd_ = -1;  ///< cycles
  int fd_instructions_ = -1;
  int fd_cache_refs_ = -1;
  int fd_cache_misses_ = -1;
  int fd_branch_misses_ = -1;
  std::string reason_ = "unopened";
};

}  // namespace nga::prof
