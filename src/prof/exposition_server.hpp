// Minimal blocking HTTP endpoint serving the Prometheus text exposition
// of the live metrics registry: `GET /metrics` on one acceptor thread,
// one connection at a time, Connection: close. This is deliberately not
// a web server — it exists so a soaking nga::serve process can be
// scraped MID-RUN (curl, Prometheus, a watch loop) instead of only
// dumping metrics at drain.
//
// Protocol surface, all covered by tests/prof/exposition_server_test:
//   GET /metrics        -> 200 text/plain; version=0.0.4, full registry
//   GET <anything else> -> 404
//   non-GET method      -> 405
//   unparsable request  -> 400
//   head > 8 KiB        -> 400 (bounded read; the rest is never read)
//   stalled client      -> 408 after recv_timeout_ms (SO_RCVTIMEO)
// Every response closes the connection; a malformed or stalled request
// never takes the acceptor down (scrapes keep working after it). Scrape
// traffic is itself counted (prof.metrics.scrapes /
// prof.metrics.bad_requests).
//
// Binding: loopback only by default — this exposes process internals
// and has no auth; binding a routable address is the caller's explicit
// choice. Port 0 picks an ephemeral port, readable via port() once
// start() returns (tests and parallel CI jobs need this).
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "obs/registry.hpp"
#include "util/bits.hpp"

namespace nga::prof {

using util::u64;

struct ExpositionConfig {
  std::string bind_addr = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; see port()
  /// SO_RCVTIMEO on every accepted connection. The endpoint is one
  /// acceptor thread handling one connection at a time, so a client
  /// that connects and then sends nothing would otherwise wedge ALL
  /// scraping (and stall drain) for as long as it pleases; with the
  /// timeout a stalled request gets a 408 and the acceptor moves on.
  /// <= 0 disables the timeout (the pre-hardening blocking behaviour).
  int recv_timeout_ms = 2000;
};

class ExpositionServer {
 public:
  explicit ExpositionServer(ExpositionConfig cfg = {});
  ~ExpositionServer();
  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Bind + listen + spawn the acceptor. Returns false (with reason())
  /// when the socket can't be set up; the object is then inert.
  bool start();
  /// Stop accepting, close the socket, join the acceptor. Idempotent.
  void stop();
  bool running() const { return thread_.joinable(); }

  /// Actual bound port once start() succeeded (resolves port 0).
  int port() const { return port_; }
  const std::string& reason() const { return reason_; }

  u64 scrapes() const { return scrapes_.load(std::memory_order_relaxed); }
  u64 bad_requests() const {
    return bad_requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle(int fd);

  ExpositionConfig cfg_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::string reason_;
  std::atomic<bool> stop_{false};
  std::atomic<u64> scrapes_{0};
  std::atomic<u64> bad_requests_{0};
  obs::Counter& scrapes_c_;  ///< obs mirrors of the two atomics, so
  obs::Counter& bad_c_;      ///< scrape traffic shows up in scrapes
  std::thread thread_;
};

}  // namespace nga::prof
