#include "prof/sampler.hpp"

#include <algorithm>
#include <chrono>

namespace nga::prof {

ScopeRegistry& ScopeRegistry::instance() {
  static ScopeRegistry r;
  return r;
}

namespace {

// Thread-exit hook: drops this thread's stack out of the registry so a
// sampler never snapshots a dead thread's (empty, but pointless) stack.
struct ThreadStackHolder {
  std::shared_ptr<ScopeStack> stack;
  ~ThreadStackHolder() {
    if (stack) ScopeRegistry::instance().unregister(stack);
  }
};

}  // namespace

ScopeStack& ScopeRegistry::this_thread() {
  thread_local ThreadStackHolder holder;
  if (!holder.stack) {
    holder.stack = std::make_shared<ScopeStack>();
    std::lock_guard<std::mutex> lk(m_);
    stacks_.push_back(holder.stack);
  }
  return *holder.stack;
}

std::vector<std::shared_ptr<ScopeStack>> ScopeRegistry::stacks() const {
  std::lock_guard<std::mutex> lk(m_);
  return stacks_;
}

void ScopeRegistry::unregister(const std::shared_ptr<ScopeStack>& s) {
  std::lock_guard<std::mutex> lk(m_);
  stacks_.erase(std::remove(stacks_.begin(), stacks_.end(), s),
                stacks_.end());
}

void Sampler::start(double hz) {
  if (hz <= 0.0 || thread_.joinable()) return;
  hz = std::clamp(hz, 1.0, 10000.0);
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = false;
  }
  thread_ = std::thread([this, hz] { run(hz); });
}

void Sampler::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Sampler::run(double hz) {
  const auto period = std::chrono::nanoseconds(u64(1e9 / hz));
  std::unique_lock<std::mutex> lk(m_);
  while (!stop_) {
    // Snapshot outside the sampler's own lock would let collapsed()
    // race counts_; instead drop the lock only around the stack copies
    // (the slow part), then re-take it to account the tick.
    lk.unlock();
    const auto stacks = ScopeRegistry::instance().stacks();
    std::vector<std::string> lines;
    lines.reserve(stacks.size());
    for (const auto& s : stacks) {
      std::string c = s->collapsed();
      lines.push_back(c.empty() ? "(idle)" : std::move(c));
    }
    lk.lock();
    ++samples_;
    for (auto& l : lines) ++counts_[std::move(l)];
    if (cv_.wait_for(lk, period, [this] { return stop_; })) break;
  }
}

u64 Sampler::samples() const {
  std::lock_guard<std::mutex> lk(m_);
  return samples_;
}

std::map<std::string, u64> Sampler::collapsed() const {
  std::lock_guard<std::mutex> lk(m_);
  return counts_;
}

void Sampler::write_collapsed(std::ostream& os) const {
  for (const auto& [stack, n] : collapsed()) os << stack << " " << n << "\n";
}

}  // namespace nga::prof
