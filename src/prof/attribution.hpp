// Per-layer / per-kernel performance attribution — the roofline-style
// companion to nn/health.hpp's numeric-health recorder.
//
// A LayerProfiler brackets every layer of a forward pass
// (Model::forward with Exec::prof set, via the NGA_PROF_* hooks in
// prof/prof.hpp) and attributes to each layer:
//   * macs        — nominal multiply-adds (Layer::macs(), the roofline
//                   work axis)
//   * lut_probes  — behavioural-table lookups actually executed
//                   ("nn.mac" counter delta: 0 in float mode, ==macs in
//                   the quantized paths — the divergence is itself a
//                   useful signal)
//   * bytes       — approximate traffic: input + output activations +
//                   parameters, each touched once per forward (a MODEL,
//                   not a measurement; documented in DESIGN.md)
//   * wall_ns     — steady-clock nanoseconds
//   * hw          — a PerfSample delta (cycles, instructions, cache,
//                   branch misses) when perf counters are available;
//                   wall-clock-only otherwise, never fabricated zeros
//
// Like the health recorder it is single-threaded by design — one per
// model replica; nga::serve gives each worker its own. flush() folds
// the accumulated records into the process-wide ProfRegistry keyed
// "<scope>.layer.<idx>.<name>", which
//   * mirrors derived rates (macs_per_s, cycles_per_mac, ...) into obs
//     gauges so they ride the existing exposition/JSON paths,
//   * emits chrome-trace counter events (ph "C" tracks),
//   * serializes the additive "prof" section of nga-bench-v1 JSON.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "prof/perf_counters.hpp"

namespace nga::prof {

/// Accumulated cost of one kernel (one layer under one scope).
struct KernelRecord {
  u64 calls = 0;
  u64 macs = 0;        ///< nominal MACs (Layer::macs() x calls)
  u64 lut_probes = 0;  ///< "nn.mac" counter delta (actual table probes)
  u64 bytes = 0;       ///< modelled activation + parameter traffic
  u64 wall_ns = 0;
  PerfSample hw;       ///< hw.available == false => wall-clock only

  KernelRecord& operator+=(const KernelRecord& o);

  // Roofline-style derived quantities (0 when undefined).
  double macs_per_s() const {
    return wall_ns ? double(macs) * 1e9 / double(wall_ns) : 0.0;
  }
  double arith_intensity() const {  ///< MACs per byte (work / traffic)
    return bytes ? double(macs) / double(bytes) : 0.0;
  }
  double cycles_per_mac() const {
    return hw.available && macs ? double(hw.cycles) / double(macs) : 0.0;
  }
  double macs_per_cycle() const {  ///< achieved, vs ~1 scalar peak
    return hw.available && hw.cycles ? double(macs) / double(hw.cycles) : 0.0;
  }
};

/// Single-threaded per-replica recorder; see file comment.
class LayerProfiler {
 public:
  /// @p scope prefixes every kernel key ("mul_EXACT", "serve", ...).
  explicit LayerProfiler(std::string scope, PerfConfig cfg = {});

  bool counters_available() const { return pc_.available(); }
  const std::string& counters_reason() const {
    return pc_.unavailable_reason();
  }

  // Bracket protocol, driven by Model::forward via the NGA_PROF hooks --
  void begin_forward();  ///< rewind the layer cursor
  void begin_layer();    ///< snapshot wall clock, hw group, "nn.mac"
  /// Attribute the deltas since begin_layer(). @p macs is the layer's
  /// nominal MAC count, @p bytes the modelled traffic of this call.
  void end_layer(std::string_view name, u64 macs, u64 bytes);

  /// Per-layer accumulation since construction / the last flush(),
  /// keyed "layer.<idx>.<name>" in forward order.
  const std::vector<std::pair<std::string, KernelRecord>>& layers() const {
    return layers_;
  }

  /// Fold the accumulated records into the global ProfRegistry under
  /// "<scope>.<layer key>" and clear the local accumulation (layer
  /// slots survive; a window flush, not a topology reset).
  void flush();

 private:
  std::string scope_;
  PerfCounters pc_;
  obs::Counter& mac_c_;  ///< "nn.mac" — the LUT-probe channel
  u64 t0_ns_ = 0;
  u64 snap_mac_ = 0;
  PerfSample snap_hw_;
  std::size_t cursor_ = 0;  ///< layer index within the current forward
  std::vector<std::pair<std::string, KernelRecord>> layers_;
};

/// Process-wide kernel-record store behind the additive "prof" JSON
/// section. Thread-safe: concurrent flushes from serve workers merge
/// under one mutex.
class ProfRegistry {
 public:
  static ProfRegistry& instance();

  /// Merge one profiler's window. @p available / @p reason describe the
  /// hw-counter state of the flushing profiler (sticky: any available
  /// window marks the process-level section "available").
  void merge(std::string_view scope,
             const std::vector<std::pair<std::string, KernelRecord>>& layers,
             bool available, const std::string& reason);

  bool counters_available() const;
  std::map<std::string, KernelRecord> snapshot() const;

  /// Serialize the "prof" JSON object:
  ///   {"counters":"available"|"unavailable",
  ///    "counters_reason":"...",            // only when unavailable
  ///    "kernels":{"<key>":{"calls":..,"macs":..,"lut_probes":..,
  ///               "bytes":..,"wall_ns":..,"macs_per_s":..,
  ///               "arith_intensity":..,
  ///               // hw block only when counters are available:
  ///               "cycles":..,"instructions":..,"cache_refs":..,
  ///               "cache_misses":..,"branch_misses":..,
  ///               "cycles_per_mac":..,"macs_per_cycle":..}, ...}}
  void write_json(std::ostream& os) const;

  /// Drop all records and reset the availability latch (tests).
  void reset();

 private:
  ProfRegistry();

  mutable std::mutex m_;
  std::map<std::string, KernelRecord> kernels_;
  bool available_ = false;
  std::string reason_ = "no profiler flushed yet";
};

}  // namespace nga::prof
