// nga::prof — umbrella header and the NGA_PROF attribution hooks.
//
// Mirrors the NGA_OBS pattern (obs/obs.hpp): with NGA_PROF=1 (the
// default, controlled by the CMake option NGA_PROF) the hooks below
// bracket each layer of an instrumented forward pass when the Exec
// carries a LayerProfiler; with NGA_PROF=0 every hook expands to
// `((void)0)` and the instrumented modules compile with attribution
// fully elided — a build that doesn't want profiling pays nothing, not
// even the null check.
//
// The prof *classes* (PerfCounters, LayerProfiler, Sampler,
// ExpositionServer) are plain library code and remain available either
// way — only the hot-path hooks are guarded.
#pragma once

#include "prof/attribution.hpp"
#include "prof/exposition_server.hpp"
#include "prof/perf_counters.hpp"
#include "prof/sampler.hpp"

#ifndef NGA_PROF
#define NGA_PROF 1
#endif

#if NGA_PROF

/// Rewind the profiler's layer cursor at the top of a forward pass.
#define NGA_PROF_FWD_BEGIN(ex)                          \
  do {                                                  \
    if ((ex).prof) (ex).prof->begin_forward();          \
  } while (0)

/// Snapshot clocks/counters before a layer runs.
#define NGA_PROF_LAYER_BEGIN(ex)                        \
  do {                                                  \
    if ((ex).prof) (ex).prof->begin_layer();            \
  } while (0)

/// Attribute the layer that just ran. @p in_elems / @p out_elems are
/// activation element counts; together with the layer's parameters they
/// model the bytes touched (each float read or written once).
#define NGA_PROF_LAYER_END(ex, l, in_elems, out_elems)                       \
  do {                                                                       \
    if ((ex).prof)                                                           \
      (ex).prof->end_layer(                                                  \
          (l)->name(), (l)->macs(),                                          \
          ::nga::util::u64((in_elems) + (out_elems) + (l)->param_count()) *  \
              sizeof(float));                                                \
  } while (0)

/// RAII flamegraph frame on the calling thread (prof/sampler.hpp).
#define NGA_PROF_SCOPE(name) \
  ::nga::prof::SamplerScope NGA_PROF_CAT_(nga_prof_scope_, __LINE__) { name }
#define NGA_PROF_CAT_(a, b) NGA_PROF_CAT2_(a, b)
#define NGA_PROF_CAT2_(a, b) a##b

#else  // !NGA_PROF — every attribution hook vanishes.

#define NGA_PROF_FWD_BEGIN(ex) ((void)0)
#define NGA_PROF_LAYER_BEGIN(ex) ((void)0)
#define NGA_PROF_LAYER_END(ex, l, in_elems, out_elems) ((void)0)
#define NGA_PROF_SCOPE(name) ((void)0)

#endif  // NGA_PROF
