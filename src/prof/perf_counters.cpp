#include "prof/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define NGA_PROF_HAVE_PERF 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define NGA_PROF_HAVE_PERF 0
#endif

namespace nga::prof {

PerfSample& PerfSample::operator+=(const PerfSample& o) {
  if (!o.available) return *this;
  available = true;
  cycles += o.cycles;
  instructions += o.instructions;
  cache_refs += o.cache_refs;
  cache_misses += o.cache_misses;
  branch_misses += o.branch_misses;
  return *this;
}

PerfSample PerfSample::delta_since(const PerfSample& o) const {
  PerfSample d;
  if (!available || !o.available) return d;
  d.available = true;
  d.cycles = cycles - o.cycles;
  d.instructions = instructions - o.instructions;
  d.cache_refs = cache_refs - o.cache_refs;
  d.cache_misses = cache_misses - o.cache_misses;
  d.branch_misses = branch_misses - o.branch_misses;
  return d;
}

#if NGA_PROF_HAVE_PERF

namespace {

// Group read layout with PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED |
// TOTAL_TIME_RUNNING | ID: header then one {value, id} pair per member.
struct GroupRead {
  u64 nr;
  u64 time_enabled;
  u64 time_running;
  struct {
    u64 value;
    u64 id;
  } v[8];
};

int sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                        int group_fd, unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

}  // namespace

int PerfCounters::open_event(u64 type, u64 config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = static_cast<unsigned>(type);
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // group starts via leader enable
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING | PERF_FORMAT_ID;
  return sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, group_fd,
                             PERF_FLAG_FD_CLOEXEC);
}

PerfCounters::PerfCounters(PerfConfig cfg) {
  if (!cfg.enabled) {
    reason_ = "disabled";
    return;
  }
  if (cfg.force_unavailable) {
    reason_ = "forced-ENOSYS";
    return;
  }
  const u64 leader = cfg.leader_config == u64(-1)
                         ? u64(PERF_COUNT_HW_CPU_CYCLES)
                         : cfg.leader_config;
  leader_fd_ = open_event(PERF_TYPE_HARDWARE, leader, -1);
  if (leader_fd_ < 0) {
    // errno names keep the degradation reason greppable in the "prof"
    // JSON: EACCES = perf_event_paranoid, ENOSYS = seccomp'd container,
    // ENOENT = no PMU (common in VMs), EINVAL = bad config.
    const int e = errno;
    reason_ = std::string("perf_event_open: ") +
              (std::strerror(e) ? std::strerror(e) : "unknown error");
    return;
  }
  reason_.clear();
  // Siblings are best-effort: a PMU without branch-miss counting still
  // yields cycles/MAC, the headline number.
  fd_instructions_ =
      open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, leader_fd_);
  fd_cache_refs_ = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES,
                              leader_fd_);
  fd_cache_misses_ =
      open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, leader_fd_);
  fd_branch_misses_ =
      open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, leader_fd_);
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounters::read() const {
  PerfSample s;
  if (leader_fd_ < 0) return s;
  GroupRead g;
  std::memset(&g, 0, sizeof g);
  const ssize_t n = ::read(leader_fd_, &g, sizeof g);
  if (n < ssize_t(3 * sizeof(u64))) return s;
  // Multiplex scaling: with more groups than PMU slots the kernel
  // time-slices; scale observed counts up to the full enabled window.
  double scale = 1.0;
  if (g.time_running > 0 && g.time_running < g.time_enabled)
    scale = double(g.time_enabled) / double(g.time_running);
  const auto scaled = [&](u64 v) { return u64(double(v) * scale); };

  // Member order matches open order: leader first, then each sibling
  // that opened (failed siblings were never in the group).
  u64 idx = 0;
  s.available = true;
  s.cycles = scaled(g.v[idx++].value);
  if (fd_instructions_ >= 0) s.instructions = scaled(g.v[idx++].value);
  if (fd_cache_refs_ >= 0) s.cache_refs = scaled(g.v[idx++].value);
  if (fd_cache_misses_ >= 0) s.cache_misses = scaled(g.v[idx++].value);
  if (fd_branch_misses_ >= 0) s.branch_misses = scaled(g.v[idx++].value);
  return s;
}

void PerfCounters::reset() {
  if (leader_fd_ < 0) return;
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
}

void PerfCounters::close_all() {
  for (int* fd : {&fd_instructions_, &fd_cache_refs_, &fd_cache_misses_,
                  &fd_branch_misses_, &leader_fd_}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

#else  // !NGA_PROF_HAVE_PERF

int PerfCounters::open_event(u64, u64, int) { return -1; }

PerfCounters::PerfCounters(PerfConfig cfg) {
  reason_ = !cfg.enabled          ? "disabled"
            : cfg.force_unavailable ? "forced-ENOSYS"
                                    : "not-linux";
}

PerfSample PerfCounters::read() const { return {}; }
void PerfCounters::reset() {}
void PerfCounters::close_all() {}

#endif

PerfCounters::~PerfCounters() { close_all(); }

}  // namespace nga::prof
