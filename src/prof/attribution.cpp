#include "prof/attribution.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace nga::prof {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

KernelRecord& KernelRecord::operator+=(const KernelRecord& o) {
  calls += o.calls;
  macs += o.macs;
  lut_probes += o.lut_probes;
  bytes += o.bytes;
  wall_ns += o.wall_ns;
  hw += o.hw;
  return *this;
}

LayerProfiler::LayerProfiler(std::string scope, PerfConfig cfg)
    : scope_(std::move(scope)),
      pc_(cfg),
      mac_c_(obs::MetricsRegistry::instance().counter("nn.mac")) {}

void LayerProfiler::begin_forward() { cursor_ = 0; }

void LayerProfiler::begin_layer() {
  snap_mac_ = mac_c_.value();
  snap_hw_ = pc_.read();
  t0_ns_ = obs::now_ns();  // wall clock last: tightest bracket
}

void LayerProfiler::end_layer(std::string_view name, u64 macs, u64 bytes) {
  const u64 dur = obs::now_ns() - t0_ns_;
  const PerfSample hw_now = pc_.read();
  if (cursor_ == layers_.size())
    layers_.emplace_back(
        "layer." + std::to_string(cursor_) + "." + std::string(name),
        KernelRecord{});
  KernelRecord& r = layers_[cursor_].second;
  ++cursor_;
  r.calls += 1;
  r.macs += macs;
  r.lut_probes += mac_c_.value() - snap_mac_;
  r.bytes += bytes;
  r.wall_ns += dur;
  if (hw_now.available) r.hw += hw_now.delta_since(snap_hw_);
}

void LayerProfiler::flush() {
  ProfRegistry::instance().merge(scope_, layers_, pc_.available(),
                                 pc_.unavailable_reason());
  for (auto& [k, r] : layers_) r = KernelRecord{};
}

ProfRegistry& ProfRegistry::instance() {
  static ProfRegistry r;
  return r;
}

ProfRegistry::ProfRegistry() {
  // Additive "prof" key in nga-bench-v1 JSON: registered on first use,
  // so benches that never touch the profiler keep their exact schema.
  obs::register_json_section(
      "prof", [](std::ostream& os) { instance().write_json(os); });
  obs::MetricsRegistry::instance().gauge("prof.counters_available");
}

void ProfRegistry::merge(
    std::string_view scope,
    const std::vector<std::pair<std::string, KernelRecord>>& layers,
    bool available, const std::string& reason) {
  auto& obs_reg = obs::MetricsRegistry::instance();
  auto& trace = obs::TraceBuffer::instance();
  const u64 now = obs::now_ns();
  std::lock_guard<std::mutex> lk(m_);
  if (available)
    available_ = true;  // sticky: any counting window proves access
  else if (!available_)
    reason_ = reason;
  for (const auto& [key, rec] : layers) {
    if (rec.calls == 0) continue;
    const std::string full = std::string(scope) + "." + key;
    KernelRecord& k = kernels_[full];
    k += rec;
    // Mirror the derived rates as gauges so they ride the existing
    // exposition / bench-JSON paths; hw-derived gauges only exist when
    // counters do (bench_diff treats their values as machine noise).
    obs_reg.gauge("prof." + full + ".macs_per_s").set(k.macs_per_s());
    obs_reg.gauge("prof." + full + ".arith_intensity")
        .set(k.arith_intensity());
    if (k.hw.available) {
      obs_reg.gauge("prof." + full + ".cycles_per_mac")
          .set(k.cycles_per_mac());
      obs_reg.gauge("prof." + full + ".macs_per_cycle")
          .set(k.macs_per_cycle());
    }
    // Chrome counter track: one "C" event per flush draws MACs/s over
    // time in the trace viewer, alongside the span lanes.
    obs::TraceEvent ev;
    ev.name = "prof." + full + ".macs_per_s";
    ev.start_ns = now;
    ev.tid = obs::this_thread_trace_id();
    ev.is_counter = true;
    ev.value = k.macs_per_s();
    trace.record(std::move(ev));
  }
  obs_reg.gauge("prof.counters_available").set(available_ ? 1.0 : 0.0);
}

bool ProfRegistry::counters_available() const {
  std::lock_guard<std::mutex> lk(m_);
  return available_;
}

std::map<std::string, KernelRecord> ProfRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  return kernels_;
}

void ProfRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(m_);
  os << "{\"counters\":\"" << (available_ ? "available" : "unavailable")
     << "\"";
  if (!available_)
    os << ",\"counters_reason\":\"" << obs::json::escape(reason_) << "\"";
  os << ",\"kernels\":{";
  bool first = true;
  for (const auto& [key, r] : kernels_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::json::escape(key) << "\":{"
       << "\"calls\":" << r.calls << ",\"macs\":" << r.macs
       << ",\"lut_probes\":" << r.lut_probes << ",\"bytes\":" << r.bytes
       << ",\"wall_ns\":" << r.wall_ns
       << ",\"macs_per_s\":" << num(r.macs_per_s())
       << ",\"arith_intensity\":" << num(r.arith_intensity());
    if (r.hw.available) {
      os << ",\"cycles\":" << r.hw.cycles
         << ",\"instructions\":" << r.hw.instructions
         << ",\"cache_refs\":" << r.hw.cache_refs
         << ",\"cache_misses\":" << r.hw.cache_misses
         << ",\"branch_misses\":" << r.hw.branch_misses
         << ",\"cycles_per_mac\":" << num(r.cycles_per_mac())
         << ",\"macs_per_cycle\":" << num(r.macs_per_cycle());
    }
    os << "}";
  }
  os << "}}";
}

void ProfRegistry::reset() {
  std::lock_guard<std::mutex> lk(m_);
  kernels_.clear();
  available_ = false;
  reason_ = "no profiler flushed yet";
}

}  // namespace nga::prof
