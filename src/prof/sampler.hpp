// Sampling wall-clock profiler producing collapsed-stack output for
// flamegraph tooling (flamegraph.pl / speedscope / inferno read the
// "frame;frame;frame count" lines directly).
//
// Deliberately THREAD-based, not signal-based: a SIGPROF handler may
// only touch async-signal-safe state, which rules out walking any
// structure another thread could be mutating under a lock — and the
// repo's worker stacks are exactly that. Instead, instrumented scopes
// (SamplerScope) maintain an explicit per-thread frame stack guarded by
// a tiny mutex, and one sampler thread wakes at the configured Hz,
// locks each registered stack in turn, and copies the frame names out.
// Cost model: scope push/pop is a mutex op on the WARM path (per batch
// / per request, never per MAC); sampling perturbs a worker only for
// the microseconds the copy holds its stack lock. The tradeoff vs
// signals is honest skew — a sample reflects the stack a lock-grab
// later than the tick — which is fine at the 10-1000 Hz this is for
// (see DESIGN.md "Performance attribution").
//
// Name lifetimes: the stack COPIES names on push (std::string), so a
// sample can never observe a dangling pointer, no matter when the
// owning scope exits. Thread exit unregisters the stack via the
// thread_local holder's destructor; the shared_ptr keeps a stack alive
// through a concurrent sample racing the exit.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/bits.hpp"

namespace nga::prof {

using util::u64;

/// One thread's instrumented frame stack. push/pop from the owning
/// thread; snapshot from the sampler thread.
class ScopeStack {
 public:
  void push(std::string_view name) {
    std::lock_guard<std::mutex> lk(m_);
    frames_.emplace_back(name);
  }
  void pop() {
    std::lock_guard<std::mutex> lk(m_);
    if (!frames_.empty()) frames_.pop_back();
  }
  /// Frames joined root-first with ';' (collapsed-stack convention);
  /// empty string when the thread is outside any instrumented scope.
  std::string collapsed() const {
    std::lock_guard<std::mutex> lk(m_);
    std::string out;
    for (const auto& f : frames_) {
      if (!out.empty()) out.push_back(';');
      out += f;
    }
    return out;
  }

 private:
  mutable std::mutex m_;
  std::vector<std::string> frames_;
};

/// Process-wide registry of live thread stacks. Registration is
/// automatic on a thread's first SamplerScope; unregistration happens
/// on thread exit.
class ScopeRegistry {
 public:
  static ScopeRegistry& instance();

  /// The calling thread's stack (created + registered on first use).
  ScopeStack& this_thread();

  /// Stable references to every live stack (for the sampler thread).
  std::vector<std::shared_ptr<ScopeStack>> stacks() const;

  /// Called by the thread-exit holder; a sampler holding the shared_ptr
  /// finishes its in-flight snapshot safely after removal.
  void unregister(const std::shared_ptr<ScopeStack>& s);

 private:
  mutable std::mutex m_;
  std::vector<std::shared_ptr<ScopeStack>> stacks_;
};

/// RAII frame on the calling thread's stack.
class SamplerScope {
 public:
  explicit SamplerScope(std::string_view name)
      : stack_(ScopeRegistry::instance().this_thread()) {
    stack_.push(name);
  }
  SamplerScope(const SamplerScope&) = delete;
  SamplerScope& operator=(const SamplerScope&) = delete;
  ~SamplerScope() { stack_.pop(); }

 private:
  ScopeStack& stack_;
};

/// The sampler proper: one background thread ticking at @p hz,
/// accumulating collapsed-stack counts. Multiple instances may run
/// (they share the ScopeRegistry but keep independent counts).
class Sampler {
 public:
  Sampler() = default;
  ~Sampler() { stop(); }
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Start sampling at @p hz (clamped to [1, 10000]). No-op if already
  /// running or hz <= 0.
  void start(double hz);
  /// Stop and join the sampler thread; counts are retained.
  void stop();
  bool running() const { return thread_.joinable(); }

  u64 samples() const;  ///< ticks taken (incl. all-idle ones)

  /// Collapsed-stack histogram: "a;b;c" -> count. Threads outside any
  /// instrumented scope at a tick are counted under "(idle)".
  std::map<std::string, u64> collapsed() const;

  /// Write "stack count\n" lines, sorted by stack (flamegraph input).
  void write_collapsed(std::ostream& os) const;

 private:
  void run(double hz);

  mutable std::mutex m_;
  std::condition_variable cv_;
  bool stop_ = false;
  u64 samples_ = 0;
  std::map<std::string, u64> counts_;
  std::thread thread_;
};

}  // namespace nga::prof
