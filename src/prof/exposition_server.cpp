#include "prof/exposition_server.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#define NGA_PROF_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#else
#define NGA_PROF_HAVE_SOCKETS 0
#endif

#include "obs/exposition.hpp"
#include "obs/registry.hpp"

namespace nga::prof {

namespace {

#if NGA_PROF_HAVE_SOCKETS
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                          MSG_NOSIGNAL
#else
                          0
#endif
    );
    if (n <= 0) return;  // peer went away mid-response; nothing to do
    off += std::size_t(n);
  }
}

std::string http_response(int code, const char* status,
                          const std::string& body,
                          const char* content_type = "text/plain") {
  std::ostringstream os;
  os << "HTTP/1.1 " << code << " " << status << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}
#endif

}  // namespace

ExpositionServer::ExpositionServer(ExpositionConfig cfg)
    // Pre-registered with help text so the families exist (and are
    // HELP-annotated) from the very first scrape, not the second.
    : cfg_(std::move(cfg)),
      scrapes_c_(obs::MetricsRegistry::instance().counter(
          "prof.metrics.scrapes",
          "Successful GET /metrics responses served.")),
      bad_c_(obs::MetricsRegistry::instance().counter(
          "prof.metrics.bad_requests",
          "Rejected /metrics endpoint requests (400/404/405).")) {}

ExpositionServer::~ExpositionServer() { stop(); }

#if NGA_PROF_HAVE_SOCKETS

bool ExpositionServer::start() {
  if (thread_.joinable()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    reason_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(uint16_t(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    reason_ = "bad bind address: " + cfg_.bind_addr;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 8) < 0) {
    reason_ = std::string("bind/listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = int(ntohs(addr.sin_port));
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void ExpositionServer::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  // Wake the blocking accept with a self-connection; shutdown() on the
  // listening socket is not portable enough to rely on.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(fd);
  }
  thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void ExpositionServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket gone; shut down
    }
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    handle(fd);
    ::close(fd);
  }
}

void ExpositionServer::handle(int fd) {
  // One acceptor thread serves one connection at a time, so a client
  // that stalls mid-request would wedge every other scraper (and a
  // draining server) indefinitely. SO_RCVTIMEO bounds each recv; a
  // timeout turns into a 408 instead of an eternal block.
  if (cfg_.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = cfg_.recv_timeout_ms / 1000;
    tv.tv_usec = (cfg_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  // Read until the end of the request head or the 8 KiB bound — the
  // only requests this endpoint accepts fit comfortably in one packet,
  // so anything larger is garbage and is never drained further.
  constexpr std::size_t kMaxHead = 8192;
  std::string req;
  char buf[1024];
  bool timed_out = false;
  while (req.size() < kMaxHead &&
         req.find("\r\n\r\n") == std::string::npos &&
         req.find('\n') == std::string::npos) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      timed_out = true;
      break;
    }
    if (n <= 0) break;
    req.append(buf, std::size_t(n));
  }
  if (timed_out) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    bad_c_.inc();
    send_all(fd, http_response(408, "Request Timeout", "request timeout\n"));
    return;
  }
  if (req.size() >= kMaxHead && req.find("\r\n\r\n") == std::string::npos &&
      req.find('\n') == std::string::npos) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    bad_c_.inc();
    send_all(fd, http_response(400, "Bad Request", "request too large\n"));
    return;
  }
  // Parse "<METHOD> <PATH> HTTP/..." from the request line.
  const auto eol = req.find_first_of("\r\n");
  const std::string first = req.substr(0, eol);
  const auto sp1 = first.find(' ');
  const auto sp2 = first.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      first.compare(sp2 + 1, 5, "HTTP/") != 0) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    bad_c_.inc();
    send_all(fd, http_response(400, "Bad Request", "bad request\n"));
    return;
  }
  const std::string method = first.substr(0, sp1);
  const std::string path = first.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    bad_c_.inc();
    send_all(fd, http_response(405, "Method Not Allowed",
                               "only GET is supported\n"));
    return;
  }
  if (path != "/metrics") {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    bad_c_.inc();
    send_all(fd, http_response(404, "Not Found", "try /metrics\n"));
    return;
  }
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  scrapes_c_.inc();
  std::ostringstream body;
  obs::write_text_exposition(body);
  send_all(fd, http_response(200, "OK", body.str(),
                             "text/plain; version=0.0.4; charset=utf-8"));
}

#else  // !NGA_PROF_HAVE_SOCKETS

bool ExpositionServer::start() {
  reason_ = "sockets unavailable on this platform";
  return false;
}
void ExpositionServer::stop() {}
void ExpositionServer::accept_loop() {}
void ExpositionServer::handle(int) {}

#endif

}  // namespace nga::prof
