#include "bitheap/bitheap.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace nga::bh {

void BitHeap::add_bit(int w, int node) { columns_[w].push_back(node); }

void BitHeap::add_constant_bit(int w, bool value) {
  if (value) columns_[w].push_back(nl_->constant(true));
  // A zero constant contributes nothing.
}

void BitHeap::add_word(int w0, std::span<const int> bits) {
  for (std::size_t i = 0; i < bits.size(); ++i)
    add_bit(w0 + int(i), bits[i]);
}

void BitHeap::add_product(int w0, std::span<const int> a,
                          std::span<const int> b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      add_bit(w0 + int(i + j), nl_->and_(a[i], b[j]));
}

void BitHeap::add_signed_word(int w0, std::span<const int> bits,
                              int result_msb) {
  if (bits.empty()) return;
  // Two's complement: value = -2^(n-1) s + sum_i<n-1 2^i b_i.
  // Standard heap trick: add inverted sign bit and low bits, plus the
  // constant 2^(n-1); sign-extension constants up to result_msb fold
  // into constant ones at each higher column (all-ones run).
  const std::size_t n = bits.size();
  for (std::size_t i = 0; i + 1 < n; ++i) add_bit(w0 + int(i), bits[i]);
  add_bit(w0 + int(n) - 1, nl_->not_(bits[n - 1]));
  for (int w = w0 + int(n) - 1; w <= result_msb; ++w) add_constant_bit(w);
}

int BitHeap::min_weight() const {
  if (columns_.empty()) throw std::logic_error("empty heap");
  return columns_.begin()->first;
}

int BitHeap::max_weight() const {
  if (columns_.empty()) throw std::logic_error("empty heap");
  return columns_.rbegin()->first;
}

std::size_t BitHeap::column_height(int w) const {
  const auto it = columns_.find(w);
  return it == columns_.end() ? 0 : it->second.size();
}

std::size_t BitHeap::max_height() const {
  std::size_t h = 0;
  for (const auto& [w, bits] : columns_) h = std::max(h, bits.size());
  return h;
}

std::vector<int> BitHeap::compress(Strategy strategy) {
  if (columns_.empty()) return {};
  NGA_OBS_COUNT("bitheap.compress");
  NGA_OBS_TIMED("bitheap.compress");
  if (NGA_FAULT_ACTIVE()) {
    // Op-skip faults here model a dot dropped on its way into the
    // compressor tree — a stuck-at-0 partial-product bit.
    for (auto& [w, bits] : columns_) {
      std::erase_if(bits, [](int) {
        return NGA_FAULT_SKIP(fault::Site::kBitheapCompress);
      });
    }
  }
  std::vector<int> sum;
  switch (strategy) {
    case Strategy::kRippleTree:
      sum = compress_ripple_tree();
      break;
    case Strategy::kCompressorTree:
      sum = compress_compressor_tree(false);
      break;
    case Strategy::kLut6Tree:
      sum = compress_compressor_tree(true);
      break;
  }
  NGA_OBS_COUNT_N("bitheap.compress.rounds", stats_.stages);
  NGA_OBS_COUNT_N("bitheap.compress.full_adders", stats_.full_adders);
  NGA_OBS_COUNT_N("bitheap.compress.half_adders", stats_.half_adders);
  NGA_OBS_COUNT_N("bitheap.compress.lut6", stats_.lut6_compressors);
  NGA_OBS_VALUE("bitheap.final_adder_width", stats_.final_adder_width);
  return sum;
}

std::vector<int> BitHeap::final_add(std::map<int, std::vector<int>>& cols) {
  // Every column has <= 2 bits: split into two aligned rows and ripple.
  const int lo = cols.begin()->first;
  const int hi = cols.rbegin()->first;
  const int width = hi - lo + 2;  // room for the final carry out
  std::vector<int> row0(std::size_t(width), -1), row1(std::size_t(width), -1);
  for (auto& [w, bits] : cols) {
    if (bits.size() > 2) throw std::logic_error("column not compressed");
    if (!bits.empty()) row0[std::size_t(w - lo)] = bits[0];
    if (bits.size() == 2) row1[std::size_t(w - lo)] = bits[1];
  }
  const int zero = nl_->constant(false);
  for (auto& x : row0)
    if (x < 0) x = zero;
  for (auto& x : row1)
    if (x < 0) x = zero;
  stats_.final_adder_width = width;
  auto sum = nl_->ripple_add(row0, row1, -1, /*keep_carry_out=*/false);
  return sum;
}

std::vector<int> BitHeap::compress_compressor_tree(bool use_lut6) {
  auto cols = std::move(columns_);
  columns_.clear();
  stats_ = {};
  // Dadda-flavoured reduction: per stage, take the current bits of each
  // column and cover them with compressors whose outputs land in the
  // NEXT stage, until all columns have height <= 2.
  while (true) {
    std::size_t maxh = 0;
    for (const auto& [w, bits] : cols) maxh = std::max(maxh, bits.size());
    if (maxh <= 2) break;
    ++stats_.stages;
    std::map<int, std::vector<int>> next;
    for (auto& [w, bits] : cols) {
      std::size_t i = 0;
      // 6:3 generalized parallel counters first (FPGA mode).
      while (use_lut6 && bits.size() - i >= 6) {
        auto fa1 = nl_->full_adder(bits[i], bits[i + 1], bits[i + 2]);
        auto fa2 = nl_->full_adder(bits[i + 3], bits[i + 4], bits[i + 5]);
        auto ha = nl_->half_adder(fa1.sum, fa2.sum);
        auto fa3 = nl_->full_adder(fa1.carry, fa2.carry, ha.carry);
        next[w].push_back(ha.sum);
        next[w + 1].push_back(fa3.sum);
        next[w + 2].push_back(fa3.carry);
        ++stats_.lut6_compressors;
        i += 6;
      }
      while (bits.size() - i >= 3) {
        auto fa = nl_->full_adder(bits[i], bits[i + 1], bits[i + 2]);
        next[w].push_back(fa.sum);
        next[w + 1].push_back(fa.carry);
        ++stats_.full_adders;
        i += 3;
      }
      if (bits.size() - i == 2) {
        // Half-adder only when this column is still too tall overall;
        // otherwise just carry the two bits forward (Dadda laziness).
        if (bits.size() > 3) {
          auto ha = nl_->half_adder(bits[i], bits[i + 1]);
          next[w].push_back(ha.sum);
          next[w + 1].push_back(ha.carry);
          ++stats_.half_adders;
          i += 2;
        }
      }
      for (; i < bits.size(); ++i) next[w].push_back(bits[i]);
    }
    cols = std::move(next);
  }
  return final_add(cols);
}

std::vector<int> BitHeap::compress_ripple_tree() {
  // Baseline "no bit heap" datapath: greedily pack the dots into rows
  // (each row has at most one bit per column), then add the rows one
  // after another with full-width ripple adders.
  auto cols = std::move(columns_);
  columns_.clear();
  stats_ = {};
  const int lo = cols.begin()->first;
  const int hi = cols.rbegin()->first;
  std::vector<std::vector<int>> rows;
  for (auto& [w, bits] : cols) {
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (i >= rows.size())
        rows.emplace_back(std::size_t(hi - lo + 1), -1);
      rows[i][std::size_t(w - lo)] = bits[i];
    }
  }
  const int zero = nl_->constant(false);
  for (auto& row : rows)
    for (auto& x : row)
      if (x < 0) x = zero;

  std::vector<int> acc = rows[0];
  for (std::size_t r = 1; r < rows.size(); ++r) {
    ++stats_.stages;
    auto sum = nl_->ripple_add(acc, rows[r], -1, /*keep_carry_out=*/true);
    // Keep width bounded: the final result needs hi-lo+2 bits at most
    // only if the true sum fits; conservatively grow by one per add and
    // trim later.
    acc.assign(sum.begin(), sum.end());
    rows[r].clear();
    for (std::size_t q = r + 1; q < rows.size(); ++q)
      rows[q].resize(acc.size(), zero);
    stats_.final_adder_width = int(acc.size());
  }
  return acc;
}

}  // namespace nga::bh
