// The bit heap: an arbitrary sum of weighted bits (Fig. 2).
//
// FloPoCo's central abstraction decouples *what* is summed (bits at
// two-power weights, contributed by partial products, table outputs,
// constants...) from *how* the sum is computed (a compressor tree tuned
// to the target). This implementation is executable: the heap lives on a
// hw::Netlist, compression instantiates real gate-level compressors, and
// the result can be simulated exhaustively and costed with the shared
// NAND2/LUT models.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "hwmodel/netlist.hpp"
#include "util/bits.hpp"

namespace nga::bh {

using util::u64;

/// How the final summation network is synthesized.
enum class Strategy {
  kRippleTree,      ///< baseline: rows added one by one with ripple adders
  kCompressorTree,  ///< Dadda-style 3:2/2:2 compression, then one adder
  kLut6Tree,        ///< FPGA-style: greedy 6:3 compressors, then 3:2, adder
};

struct CompressionStats {
  int full_adders = 0;
  int half_adders = 0;
  int lut6_compressors = 0;  ///< 6:3 generalized parallel counters
  int stages = 0;            ///< compression rounds before the final adder
  int final_adder_width = 0;
};

/// A bit heap bound to a netlist. Weights may be negative (fraction
/// bits); the result is returned LSB-first starting at min_weight().
class BitHeap {
 public:
  explicit BitHeap(hw::Netlist& nl) : nl_(&nl) {}

  /// Add a single bit of weight 2^w.
  void add_bit(int w, int node);
  /// Add a constant bit (folded into the heap as a netlist constant).
  void add_constant_bit(int w, bool value = true);
  /// Add an unsigned word whose bit i has weight 2^(w0 + i).
  void add_word(int w0, std::span<const int> bits);
  /// Add all partial products of an unsigned multiplication a*b with
  /// LSB weight 2^w0 — the classic use of a bit heap.
  void add_product(int w0, std::span<const int> a, std::span<const int> b);
  /// Add a two's-complement word (sign bit replicated via the standard
  /// "invert sign, add constant" Baugh-Wooley style trick).
  void add_signed_word(int w0, std::span<const int> bits, int result_msb);

  bool empty() const { return columns_.empty(); }
  int min_weight() const;
  int max_weight() const;
  /// Bits currently in column w.
  std::size_t column_height(int w) const;
  /// Largest column height (the "depth" of Fig. 2's dot diagram).
  std::size_t max_height() const;

  /// Synthesize the summation; returns sum bits LSB-first, bit 0 having
  /// weight 2^min_weight(). The heap is consumed.
  std::vector<int> compress(Strategy strategy);

  const CompressionStats& stats() const { return stats_; }

 private:
  std::vector<int> compress_compressor_tree(bool use_lut6);
  std::vector<int> compress_ripple_tree();
  std::vector<int> final_add(std::map<int, std::vector<int>>& cols);

  hw::Netlist* nl_;
  std::map<int, std::vector<int>> columns_;  // weight -> node ids
  CompressionStats stats_;
};

}  // namespace nga::bh
