// 8-bit linear quantization and the ProxSim-style approximate
// multiplication hook (Section IV.A).
//
// Activations in these (all-ReLU, non-negative-input) nets quantize to
// unsigned 8-bit with zero point 0; weights quantize symmetrically to
// sign + 7-bit magnitude. A quantized MAC then becomes
//     acc += sign(w) * mul(a_u8, |w|_u8)
// where `mul` is either the exact product or an approximate multiplier
// behavioural model compiled into a 64K lookup table — exactly the
// behavioural-simulation semantics of ProxSim.
#pragma once

#include <array>
#include <memory>

#include "approx/multipliers.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace nga::nn {

using util::u16;
using util::u8;

/// 64K-entry product table: the behavioural simulation of one
/// approximate multiplier (fast enough for retraining on a laptop).
class MulTable {
 public:
  /// Exact products.
  MulTable();
  /// Compiled from an approximate multiplier.
  explicit MulTable(const ax::ApproxMult8& m);

  u16 mul(u8 a, u8 b) const {
    NGA_OBS_COUNT("nn.mac");
    const u16 p = t_[(std::size_t(a) << 8) | b];
#if NGA_FAULT
    // The fault site models the approximate-multiplier hardware unit;
    // the exact table is the separate golden unit ResilienceGuard falls
    // back to, so it stays fault-free. A hang/latency plan at this site
    // stalls the MAC itself (a wedged multiplier unit).
    if (!exact_) {
      NGA_FAULT_DELAY(fault::Site::kNnMul);
      return u16(NGA_FAULT_BITS(fault::Site::kNnMul, 16, util::u64(p)));
    }
#endif
    return p;
  }
  bool is_exact() const { return exact_; }

  /// Largest product this table yields for a weight magnitude <= 127 —
  /// the plausibility bound the MAC fault detector checks against.
  u16 weight_range_max() const { return wmax_; }

 private:
  std::array<u16, 65536> t_{};
  u16 wmax_ = 0;
  bool exact_ = true;
};

/// Per-tensor activation range observed during float calibration.
struct ActRange {
  float max_abs = 1e-6f;
  void observe(float v) {
    const float a = v < 0 ? -v : v;
    if (a > max_abs) max_abs = a;
  }
};

/// Quantize a non-negative activation to u8 against a calibrated range.
inline u8 quantize_act(float v, float scale_inv) {
  NGA_OBS_COUNT("nn.requant");
  const float q = v * scale_inv + 0.5f;
  if (q <= 0.f) return 0;
  if (q >= 255.f) {
    NGA_OBS_COUNT("nn.requant.clip");
    return 255;
  }
  return u8(q);
}

}  // namespace nga::nn
