// 8-bit linear quantization and the ProxSim-style approximate
// multiplication hook (Section IV.A).
//
// Activations in these (all-ReLU, non-negative-input) nets quantize to
// unsigned 8-bit with zero point 0; weights quantize symmetrically to
// sign + 7-bit magnitude. A quantized MAC then becomes
//     acc += sign(w) * mul(a_u8, |w|_u8)
// where `mul` is either the exact product or an approximate multiplier
// behavioural model compiled into a 64K lookup table — exactly the
// behavioural-simulation semantics of ProxSim.
//
// Integrity (nga::integrity): on the edge devices the paper targets the
// 128 KiB table IS the vulnerable state — SEUs and bit-rot corrupt LUT
// memory, not the generator code. The table therefore carries CRC32C
// checksums over 4 KiB pages, computed once at build time, and exposes
// a verify/repair surface: every table is function-generated, so the
// golden source for a repair is the generator itself (exact products,
// or the owning ax::ApproxMult8 behavioural model). Storage is an array
// of relaxed atomics so a scrubber may verify/repair pages while MAC
// loops read them — each entry is independently coherent and repairs
// write exactly the values a clean build holds.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>

#include "approx/multipliers.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace nga::nn {

using util::u16;
using util::u32;
using util::u64;
using util::u8;

/// 64K-entry product table: the behavioural simulation of one
/// approximate multiplier (fast enough for retraining on a laptop).
class MulTable {
 public:
  static constexpr std::size_t kEntries = 65536;
  static constexpr std::size_t kPageBytes = 4096;  ///< CRC32C page size
  static constexpr std::size_t kPageEntries = kPageBytes / sizeof(u16);
  static constexpr std::size_t kPages = kEntries / kPageEntries;  // 32
  static constexpr unsigned kPageBits = unsigned(kPageBytes) * 8u;

  /// Exact products. Always repairable (the generator is `a * b`).
  MulTable();
  /// Compiled from a borrowed approximate multiplier. The table does
  /// NOT retain @p m, so it stays valid when m dies — but without a
  /// generator a corrupted page cannot be regenerated (scrub_page
  /// yields kNoGenerator and the table can only be quarantined).
  explicit MulTable(const ax::ApproxMult8& m);
  /// Compiled from an owned approximate multiplier: the generator is
  /// retained, so corrupted pages regenerate in place. Preferred for
  /// serving, where repair-driven reinstatement is the point.
  explicit MulTable(std::shared_ptr<const ax::ApproxMult8> m);

  // Storage is atomic; the table is shared by pointer, never copied.
  MulTable(const MulTable&) = delete;
  MulTable& operator=(const MulTable&) = delete;

  u16 mul(u8 a, u8 b) const {
    NGA_OBS_COUNT("nn.mac");
#if NGA_FAULT
    // The fault site models the approximate-multiplier hardware unit;
    // the exact table is the separate golden unit ResilienceGuard falls
    // back to, so it stays fault-free. A hang/latency plan at this site
    // stalls the MAC itself (a wedged multiplier unit); a memflip plan
    // corrupts the LIVE table storage before the probe below, and the
    // flip persists until a scrubber repairs the page.
    if (!exact_) {
      NGA_FAULT_MEMFLIP(fault::Site::kNnMul, *this);
      NGA_FAULT_DELAY(fault::Site::kNnMul);
      const u16 p =
          t_[(std::size_t(a) << 8) | b].load(std::memory_order_relaxed);
      return u16(NGA_FAULT_BITS(fault::Site::kNnMul, 16, util::u64(p)));
    }
#endif
    return t_[(std::size_t(a) << 8) | b].load(std::memory_order_relaxed);
  }
  bool is_exact() const { return exact_; }

  /// Largest product this table yields for a weight magnitude <= 127 —
  /// the plausibility bound the MAC fault detector checks against.
  u16 weight_range_max() const { return wmax_; }

  // --- integrity surface (nga::integrity) ----------------------------
  //
  // All const: tables flow through the serving stack as const*, and
  // verify/repair/corrupt act on the mutable atomic storage. Safe
  // against concurrent mul() readers by construction (relaxed atomics;
  // a repair stores exactly the clean build values).

  /// True when a generator is retained and corrupted pages can be
  /// regenerated in place.
  bool regenerable() const { return bool(gen_); }

  /// Build-time golden CRC32C of @p page (immutable after build).
  u32 page_checksum(std::size_t page) const { return page_crc_[page]; }

  /// Recompute @p page's CRC32C over live storage and compare against
  /// the build-time checksum.
  bool verify_page(std::size_t page) const;

  enum class PageScrub {
    kClean,           ///< checksum verified; nothing to do
    kRepaired,        ///< regenerated in place, verified against the CRC
    kUnreproducible,  ///< generator output no longer matches the CRC
    kNoGenerator,     ///< corrupt, and no generator was retained
  };
  /// Verify @p page and repair it from the generator when corrupt. The
  /// verify-after-repair pass checksums the REGENERATED values before
  /// they are stored: on a mismatch (the generator cannot reproduce the
  /// built table) storage is left untouched and the caller must
  /// quarantine the table.
  PageScrub scrub_page(std::size_t page) const;

  /// Flip one bit of live table storage (fault injection and tests);
  /// persistent until a scrub repairs the page. Also stamps the
  /// corruption time for the scrubber's time-to-detect histogram.
  void corrupt_bit(std::size_t page, unsigned bit) const;

  /// Steal the oldest outstanding corruption stamp (obs::now_ns epoch;
  /// 0 when none) — the scrubber turns it into detection latency.
  u64 take_corruption_stamp() const {
    return corrupted_since_ns_.exchange(0, std::memory_order_relaxed);
  }

  // Fault-injection target surface (Injector::filter_memflip duck
  // typing; the fault layer cannot depend on nn).
  std::size_t flip_pages() const { return kPages; }
  unsigned flip_bits_per_page() const { return kPageBits; }
  void flip_bit(std::size_t page, unsigned bit) const {
    corrupt_bit(page, bit);
  }

 private:
  /// Fill storage + page CRCs from @p gen (retained iff @p retain).
  void build(const std::function<u16(u8, u8)>& gen, bool retain);

  mutable std::array<std::atomic<u16>, kEntries> t_{};
  std::array<u32, kPages> page_crc_{};
  std::function<u16(u8, u8)> gen_;
  mutable std::atomic<u64> corrupted_since_ns_{0};
  u16 wmax_ = 0;
  bool exact_ = true;
};

/// Per-tensor activation range observed during float calibration.
struct ActRange {
  float max_abs = 1e-6f;
  void observe(float v) {
    const float a = v < 0 ? -v : v;
    if (a > max_abs) max_abs = a;
  }
};

/// Quantize a non-negative activation to u8 against a calibrated range.
inline u8 quantize_act(float v, float scale_inv) {
  NGA_OBS_COUNT("nn.requant");
  const float q = v * scale_inv + 0.5f;
  if (q <= 0.f) return 0;
  if (q >= 255.f) {
    NGA_OBS_COUNT("nn.requant.clip");
    return 255;
  }
  return u8(q);
}

}  // namespace nga::nn
