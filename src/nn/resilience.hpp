// ResilienceGuard — graceful degradation for quantized inference.
//
// The guard brackets every layer of a guarded forward pass
// (Model::forward with Exec::guard set) and watches the obs counters
// the arithmetic stack already maintains:
//   * posit.nar                  — NaR poisonings (posit paths)
//   * posit.round.saturate and
//     softfloat.pack.overflow    — saturation/overflow storms
//   * fault.detected             — MAC plausibility-check hits (products
//                                  above the multiplier table's
//                                  physical maximum; see MulTable)
// When a layer's counter deltas cross the configured thresholds, the
// guard declares the approximate multiplier unit bad, switches the run
// to the exact fallback table, re-runs the affected layer, and stays
// degraded for the rest of the run (a real deployment would page and
// swap the unit out; we keep serving at exact-arithmetic speed).
//
// The NaR/saturation counters tick only in NGA_OBS=1 builds; the
// fault.detected counter is maintained by the injector directly and
// works under any build flags.
#pragma once

#include <string>
#include <string_view>

#include "nn/quant.hpp"
#include "obs/registry.hpp"

namespace nga::nn {

/// Per-layer counter-delta thresholds; a layer trips the guard when ANY
/// threshold is reached. 0 disables that signal.
struct GuardThresholds {
  util::u64 detected = 1;     ///< MAC fault detections
  util::u64 nar = 4;          ///< NaR poisonings
  util::u64 saturation = 4096;  ///< posit saturations + softfloat overflows
};

class ResilienceGuard {
 public:
  /// @p exact_fallback is the golden MulTable to degrade onto (may be
  /// null: the guard then only reports, Model::forward cannot swap).
  explicit ResilienceGuard(const MulTable* exact_fallback,
                           GuardThresholds thresholds = {});

  /// Forget degradation and trip statistics (start a fresh run).
  void reset();

  bool degraded() const { return degraded_; }
  const MulTable* fallback() const { return fallback_; }

  // Layer bracket, driven by Model::forward ---------------------------
  void begin_layer();
  /// Deltas since begin_layer() crossed a threshold?
  bool layer_tripped() const;
  /// Degrade; called with the name of the layer being re-run.
  void enter_degraded(std::string_view layer_name);

  struct Report {
    util::u64 trips = 0;             ///< layers that crossed a threshold
    util::u64 recovered_layers = 0;  ///< layers re-run on the fallback
    bool degraded = false;
    std::string first_tripped_layer;
  };
  const Report& report() const { return report_; }

 private:
  util::u64 nar_now() const { return nar_c_.value(); }
  util::u64 sat_now() const { return sat_c_.value() + ovf_c_.value(); }
  util::u64 det_now() const { return det_c_.value(); }

  const MulTable* fallback_;
  GuardThresholds thr_;
  obs::Counter& nar_c_;
  obs::Counter& sat_c_;
  obs::Counter& ovf_c_;
  obs::Counter& det_c_;
  obs::Counter& recovered_c_;
  util::u64 snap_nar_ = 0, snap_sat_ = 0, snap_det_ = 0;
  bool degraded_ = false;
  Report report_;
};

}  // namespace nga::nn
