#include "nn/health.hpp"

#include "fault/injector.hpp"

namespace nga::nn {

namespace {

obs::Counter& counter(std::string_view name) {
  return obs::MetricsRegistry::instance().counter(name);
}

}  // namespace

LayerHealthRecorder::LayerHealthRecorder()
    : nar_c_(counter("posit.nar")),
      sat_c_(counter("posit.round.saturate")),
      ovf_c_(counter("softfloat.pack.overflow")),
      clip_c_(counter("nn.requant.clip")),
      mac_c_(counter("nn.mac")) {}

void LayerHealthRecorder::begin_forward() { cursor_ = 0; }

void LayerHealthRecorder::begin_layer() {
  snap_nar_ = nar_c_.value();
  snap_sat_ = sat_c_.value() + ovf_c_.value();
  snap_det_ = fault::Injector::thread_detected();
  snap_clip_ = clip_c_.value();
  snap_mac_ = mac_c_.value();
}

void LayerHealthRecorder::end_layer(std::string_view name) {
  if (cursor_ >= layers_.size())
    layers_.emplace_back(
        std::to_string(cursor_) + "." + std::string(name),
        LayerHealthCounters{});
  LayerHealthCounters& at = layers_[cursor_].second;
  at.nar += nar_c_.value() - snap_nar_;
  at.saturation += sat_c_.value() + ovf_c_.value() - snap_sat_;
  at.fault_detected += fault::Injector::thread_detected() - snap_det_;
  at.requant_clips += clip_c_.value() - snap_clip_;
  at.macs += mac_c_.value() - snap_mac_;
  ++cursor_;
}

LayerHealthCounters LayerHealthRecorder::total() const {
  LayerHealthCounters t;
  for (const auto& [name, c] : layers_) t += c;
  return t;
}

void LayerHealthRecorder::reset() {
  for (auto& [name, c] : layers_) c = {};
}

}  // namespace nga::nn
