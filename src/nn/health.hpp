// Per-layer numeric-health attribution — the serving-side counterpart
// of the obs hot-path counters (AxOSyn-style operator-level error
// accounting, scoped to one model replica).
//
// A LayerHealthRecorder brackets every layer of a forward pass
// (Model::forward with Exec::health set) and attributes deltas of the
// numeric-health signals to the layer that produced them:
//   * nar              — posit NaR poisonings        ("posit.nar")
//   * saturation       — posit round saturations + softfloat pack
//                        overflows
//   * requant_clips    — quantizer range clips       ("nn.requant.clip")
//   * macs             — MACs executed               ("nn.mac")
//   * fault_detected   — MAC plausibility-check hits, via the
//                        injector's THREAD-LOCAL tally (exact per
//                        worker even when other workers inject
//                        concurrently)
//
// The obs counters are process-global atomics, so in a multi-worker
// server the nar/saturation/clip/mac deltas of concurrent forwards
// interleave: attribution is exact for single-threaded runs and
// aggregate (correct totals, approximate per-layer split) across
// workers. fault_detected is exact either way. With NGA_OBS=0 only the
// fault channel ticks (the counter macros are compiled out).
//
// The recorder is single-threaded by design — one per model replica,
// like the replica itself. nga::serve gives each worker its own and
// merges windows at batch granularity.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.hpp"

namespace nga::nn {

/// Health-event totals for one layer (or a whole model when summed).
struct LayerHealthCounters {
  util::u64 nar = 0;
  util::u64 saturation = 0;
  util::u64 fault_detected = 0;
  util::u64 requant_clips = 0;
  util::u64 macs = 0;

  LayerHealthCounters& operator+=(const LayerHealthCounters& o) {
    nar += o.nar;
    saturation += o.saturation;
    fault_detected += o.fault_detected;
    requant_clips += o.requant_clips;
    macs += o.macs;
    return *this;
  }
};

class LayerHealthRecorder {
 public:
  LayerHealthRecorder();

  // Bracket protocol, driven by Model::forward --------------------------
  void begin_forward();  ///< rewind the layer cursor
  void begin_layer();    ///< snapshot the counters
  void end_layer(std::string_view name);  ///< attribute deltas

  /// Per-layer accumulation since the last reset(), keyed
  /// "<index>.<layer name>" in forward order.
  const std::vector<std::pair<std::string, LayerHealthCounters>>& layers()
      const {
    return layers_;
  }
  LayerHealthCounters total() const;

  /// Zero the accumulated counts (layer slots survive — a window reset,
  /// not a topology reset).
  void reset();

 private:
  obs::Counter& nar_c_;
  obs::Counter& sat_c_;
  obs::Counter& ovf_c_;
  obs::Counter& clip_c_;
  obs::Counter& mac_c_;
  util::u64 snap_nar_ = 0, snap_sat_ = 0, snap_det_ = 0, snap_clip_ = 0,
            snap_mac_ = 0;
  std::size_t cursor_ = 0;  ///< layer index within the current forward
  std::vector<std::pair<std::string, LayerHealthCounters>> layers_;
};

}  // namespace nga::nn
