// Synthetic datasets standing in for CIFAR-10 and the Speech Commands
// Dataset (see DESIGN.md's substitution table): the approximate-
// computing experiments only need inputs that exercise the quantized
// conv/dense code paths and are learnable to high accuracy, so that
// quantization/approximation-induced degradation is measurable.
#pragma once

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace nga::nn {

/// 10-class 3x`hw`x`hw` "shapes + texture" images (CIFAR stand-in):
/// each class has a characteristic oriented texture + blob; samples
/// vary in phase, position, amplitude and noise.
Dataset make_synth_images(int n, int hw, util::u64 seed);

/// 10-class 1x`t`x`mel` MFCC-like keyword patterns (SCD stand-in):
/// class-specific formant trajectories over time with per-sample time
/// shift, amplitude and noise.
Dataset make_synth_kws(int n, int t, int mel, util::u64 seed);

/// CIFAR-style augmentation: random horizontal flip.
void augment_flip(Tensor& x, util::Xoshiro256& rng);

/// KWS augmentation: add background noise with 10% volume (the paper's
/// setting for keyword spotting).
void augment_background_noise(Tensor& x, util::Xoshiro256& rng);

}  // namespace nga::nn
