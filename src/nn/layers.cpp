#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

namespace nga::nn {

namespace {

/// He-style initialization.
float init_scale(int fan_in) { return std::sqrt(2.0f / float(fan_in)); }

/// Quantize a weight vector symmetrically to sign+magnitude u8.
struct QuantWeights {
  std::vector<u8> mag;
  std::vector<signed char> sign;
  float scale = 1.f;
};

QuantWeights quantize_weights(const std::vector<float>& w) {
  QuantWeights q;
  float maxabs = 1e-9f;
  for (float x : w) maxabs = std::max(maxabs, std::fabs(x));
  q.scale = maxabs / 127.f;
  q.mag.resize(w.size());
  q.sign.resize(w.size());
  const float inv = 127.f / maxabs;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const float a = std::fabs(w[i]) * inv + 0.5f;
    q.mag[i] = u8(std::min(a, 127.f));
    q.sign[i] = w[i] < 0 ? -1 : 1;
  }
  return q;
}

}  // namespace

// --- Conv2D ---------------------------------------------------------------

Conv2D::Conv2D(int in_c, int out_c, int k, int stride, util::Xoshiro256& rng)
    : in_c_(in_c), out_c_(out_c), k_(k), stride_(stride) {
  const std::size_t n = std::size_t(out_c * in_c * k * k);
  w_.resize(n);
  const float s = init_scale(in_c * k * k);
  for (auto& x : w_) x = float(rng.normal()) * s;
  b_.assign(std::size_t(out_c), 0.f);
  gw_.assign(n, 0.f);
  gb_.assign(std::size_t(out_c), 0.f);
  mw_.assign(n, 0.f);
  mb_.assign(std::size_t(out_c), 0.f);
}

Tensor Conv2D::forward(const Tensor& x, const Exec& ex) {
  const int pad = k_ / 2;
  const int oh = (x.h + stride_ - 1) / stride_;
  const int ow = (x.w + stride_ - 1) / stride_;
  Tensor y(out_c_, oh, ow);
  macs_ = u64(out_c_) * u64(oh) * u64(ow) * u64(in_c_) * u64(k_) * u64(k_);

  if (ex.mode == Mode::kFloat) {
    if (ex.calibrate)
      for (float v : x.v) in_range_.observe(v);
    x_ = x;
    for (int oc = 0; oc < out_c_; ++oc)
      for (int yo = 0; yo < oh; ++yo)
        for (int xo = 0; xo < ow; ++xo) {
          float acc = b_[std::size_t(oc)];
          for (int ic = 0; ic < in_c_; ++ic)
            for (int ky = 0; ky < k_; ++ky) {
              const int yi = yo * stride_ + ky - pad;
              if (yi < 0 || yi >= x.h) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int xi = xo * stride_ + kx - pad;
                if (xi < 0 || xi >= x.w) continue;
                acc += wt(oc, ic, ky, kx) * x.at(ic, yi, xi);
              }
            }
          y.at(oc, yo, xo) = acc;
        }
    return y;
  }

  // Quantized path (exact or approximate MACs).
  const QuantWeights qw = quantize_weights(w_);
  const float sa = in_range_.max_abs / 255.f;
  const float sa_inv = 255.f / in_range_.max_abs;
  // Quantize the input once; keep the dequantized view for STE backward.
  std::vector<u8> xq(x.size());
  x_ = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    xq[i] = quantize_act(x.v[i], sa_inv);
    x_.v[i] = float(xq[i]) * sa;
  }
  const MulTable* mul = ex.mul;
  const float out_scale = sa * qw.scale;
#if NGA_FAULT
  const u16 pmax = mul->weight_range_max();
#endif
  auto xq_at = [&](int ci, int hi, int wi) {
    return xq[std::size_t((ci * x.h + hi) * x.w + wi)];
  };
  for (int oc = 0; oc < out_c_; ++oc)
    for (int yo = 0; yo < oh; ++yo)
      for (int xo = 0; xo < ow; ++xo) {
        long acc = 0;
        for (int ic = 0; ic < in_c_; ++ic)
          for (int ky = 0; ky < k_; ++ky) {
            const int yi = yo * stride_ + ky - pad;
            if (yi < 0 || yi >= x.h) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int xi = xo * stride_ + kx - pad;
              if (xi < 0 || xi >= x.w) continue;
              const std::size_t wi =
                  std::size_t(((oc * in_c_ + ic) * k_ + ky) * k_ + kx);
              const u16 p = mul->mul(xq_at(ic, yi, xi), qw.mag[wi]);
              NGA_FAULT_DETECT(fault::Site::kNnMul, p > pmax);
              acc += qw.sign[wi] > 0 ? long(p) : -long(p);
            }
          }
        y.at(oc, yo, xo) = float(acc) * out_scale + b_[std::size_t(oc)];
      }
  return y;
}

Tensor Conv2D::backward(const Tensor& dy) {
  const int pad = k_ / 2;
  Tensor dx(in_c_, x_.h, x_.w);
  for (int oc = 0; oc < out_c_; ++oc)
    for (int yo = 0; yo < dy.h; ++yo)
      for (int xo = 0; xo < dy.w; ++xo) {
        const float g = dy.at(oc, yo, xo);
        if (g == 0.f) continue;
        gb_[std::size_t(oc)] += g;
        for (int ic = 0; ic < in_c_; ++ic)
          for (int ky = 0; ky < k_; ++ky) {
            const int yi = yo * stride_ + ky - pad;
            if (yi < 0 || yi >= x_.h) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int xi = xo * stride_ + kx - pad;
              if (xi < 0 || xi >= x_.w) continue;
              const std::size_t wi =
                  std::size_t(((oc * in_c_ + ic) * k_ + ky) * k_ + kx);
              gw_[wi] += g * x_.at(ic, yi, xi);
              dx.at(ic, yi, xi) += g * w_[wi];
            }
          }
      }
  return dx;
}

void Conv2D::step(float lr, float momentum, float batch_inv) {
  for (std::size_t i = 0; i < w_.size(); ++i) {
    mw_[i] = momentum * mw_[i] - lr * gw_[i] * batch_inv;
    w_[i] += mw_[i];
    gw_[i] = 0.f;
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    mb_[i] = momentum * mb_[i] - lr * gb_[i] * batch_inv;
    b_[i] += mb_[i];
    gb_[i] = 0.f;
  }
}

// --- Dense ------------------------------------------------------------------

Dense::Dense(int in, int out, util::Xoshiro256& rng) : in_(in), out_(out) {
  w_.resize(std::size_t(in * out));
  const float s = init_scale(in);
  for (auto& x : w_) x = float(rng.normal()) * s;
  b_.assign(std::size_t(out), 0.f);
  gw_.assign(w_.size(), 0.f);
  gb_.assign(b_.size(), 0.f);
  mw_.assign(w_.size(), 0.f);
  mb_.assign(b_.size(), 0.f);
}

Tensor Dense::forward(const Tensor& x, const Exec& ex) {
  Tensor y(out_, 1, 1);
  if (ex.mode == Mode::kFloat) {
    if (ex.calibrate)
      for (float v : x.v) in_range_.observe(v);
    x_ = x;
    for (int o = 0; o < out_; ++o) {
      float acc = b_[std::size_t(o)];
      for (int i = 0; i < in_; ++i)
        acc += w_[std::size_t(o * in_ + i)] * x.v[std::size_t(i)];
      y.v[std::size_t(o)] = acc;
    }
    return y;
  }
  const QuantWeights qw = quantize_weights(w_);
  const float sa = in_range_.max_abs / 255.f;
  const float sa_inv = 255.f / in_range_.max_abs;
  std::vector<u8> xq(x.size());
  x_ = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    xq[i] = quantize_act(x.v[i], sa_inv);
    x_.v[i] = float(xq[i]) * sa;
  }
  const float out_scale = sa * qw.scale;
#if NGA_FAULT
  const u16 pmax = ex.mul->weight_range_max();
#endif
  for (int o = 0; o < out_; ++o) {
    long acc = 0;
    for (int i = 0; i < in_; ++i) {
      const std::size_t wi = std::size_t(o * in_ + i);
      const u16 p = ex.mul->mul(xq[std::size_t(i)], qw.mag[wi]);
      NGA_FAULT_DETECT(fault::Site::kNnMul, p > pmax);
      acc += qw.sign[wi] > 0 ? long(p) : -long(p);
    }
    y.v[std::size_t(o)] = float(acc) * out_scale + b_[std::size_t(o)];
  }
  return y;
}

Tensor Dense::backward(const Tensor& dy) {
  Tensor dx(x_.c, x_.h, x_.w);
  for (int o = 0; o < out_; ++o) {
    const float g = dy.v[std::size_t(o)];
    gb_[std::size_t(o)] += g;
    for (int i = 0; i < in_; ++i) {
      gw_[std::size_t(o * in_ + i)] += g * x_.v[std::size_t(i)];
      dx.v[std::size_t(i)] += g * w_[std::size_t(o * in_ + i)];
    }
  }
  return dx;
}

void Dense::step(float lr, float momentum, float batch_inv) {
  for (std::size_t i = 0; i < w_.size(); ++i) {
    mw_[i] = momentum * mw_[i] - lr * gw_[i] * batch_inv;
    w_[i] += mw_[i];
    gw_[i] = 0.f;
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    mb_[i] = momentum * mb_[i] - lr * gb_[i] * batch_inv;
    b_[i] += mb_[i];
    gb_[i] = 0.f;
  }
}

// --- ReLU / pools -----------------------------------------------------------

Tensor ReLU::forward(const Tensor& x, const Exec&) {
  y_ = x;
  for (auto& v : y_.v) v = v > 0.f ? v : 0.f;
  return y_;
}

Tensor ReLU::backward(const Tensor& dy) {
  Tensor dx = dy;
  for (std::size_t i = 0; i < dx.v.size(); ++i)
    if (y_.v[i] <= 0.f) dx.v[i] = 0.f;
  return dx;
}

Tensor MaxPool2::forward(const Tensor& x, const Exec&) {
  x_ = x;
  Tensor y(x.c, x.h / 2, x.w / 2);
  argmax_.assign(y.size(), 0);
  for (int c = 0; c < x.c; ++c)
    for (int yo = 0; yo < y.h; ++yo)
      for (int xo = 0; xo < y.w; ++xo) {
        float best = -1e30f;
        int best_idx = 0;
        for (int dy2 = 0; dy2 < 2; ++dy2)
          for (int dx2 = 0; dx2 < 2; ++dx2) {
            const int yi = yo * 2 + dy2, xi = xo * 2 + dx2;
            const float v = x.at(c, yi, xi);
            if (v > best) {
              best = v;
              best_idx = (c * x.h + yi) * x.w + xi;
            }
          }
        y.at(c, yo, xo) = best;
        argmax_[std::size_t((c * y.h + yo) * y.w + xo)] = best_idx;
      }
  return y;
}

Tensor MaxPool2::backward(const Tensor& dy) {
  Tensor dx(x_.c, x_.h, x_.w);
  for (std::size_t i = 0; i < dy.v.size(); ++i)
    dx.v[std::size_t(argmax_[i])] += dy.v[i];
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x, const Exec&) {
  c_ = x.c;
  h_ = x.h;
  w_ = x.w;
  Tensor y(x.c, 1, 1);
  const float inv = 1.0f / float(x.h * x.w);
  for (int c = 0; c < x.c; ++c) {
    float acc = 0.f;
    for (int yi = 0; yi < x.h; ++yi)
      for (int xi = 0; xi < x.w; ++xi) acc += x.at(c, yi, xi);
    y.v[std::size_t(c)] = acc * inv;
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  Tensor dx(c_, h_, w_);
  const float inv = 1.0f / float(h_ * w_);
  for (int c = 0; c < c_; ++c) {
    const float g = dy.v[std::size_t(c)] * inv;
    for (int yi = 0; yi < h_; ++yi)
      for (int xi = 0; xi < w_; ++xi) dx.at(c, yi, xi) = g;
  }
  return dx;
}

// --- ResidualBlock ----------------------------------------------------------

ResidualBlock::ResidualBlock(int in_c, int out_c, int stride,
                             util::Xoshiro256& rng)
    : conv1_(in_c, out_c, 3, stride, rng), conv2_(out_c, out_c, 3, 1, rng) {
  if (in_c != out_c || stride != 1)
    proj_ = std::make_unique<Conv2D>(in_c, out_c, 1, stride, rng);
}

Tensor ResidualBlock::forward(const Tensor& x, const Exec& ex) {
  Tensor y = relu1_.forward(conv1_.forward(x, ex), ex);
  y = conv2_.forward(y, ex);
  skip_ = proj_ ? proj_->forward(x, ex) : x;
  sum_ = y;
  for (std::size_t i = 0; i < sum_.v.size(); ++i) sum_.v[i] += skip_.v[i];
  Tensor out = sum_;
  for (auto& v : out.v) v = v > 0.f ? v : 0.f;
  return out;
}

Tensor ResidualBlock::backward(const Tensor& dy) {
  Tensor dsum = dy;
  for (std::size_t i = 0; i < dsum.v.size(); ++i)
    if (sum_.v[i] <= 0.f) dsum.v[i] = 0.f;
  Tensor dx = conv1_.backward(relu1_.backward(conv2_.backward(dsum)));
  if (proj_) {
    const Tensor dskip = proj_->backward(dsum);
    for (std::size_t i = 0; i < dx.v.size(); ++i) dx.v[i] += dskip.v[i];
  } else {
    for (std::size_t i = 0; i < dx.v.size(); ++i) dx.v[i] += dsum.v[i];
  }
  return dx;
}

void ResidualBlock::step(float lr, float momentum, float batch_inv) {
  conv1_.step(lr, momentum, batch_inv);
  conv2_.step(lr, momentum, batch_inv);
  if (proj_) proj_->step(lr, momentum, batch_inv);
}

std::size_t ResidualBlock::param_count() const {
  return conv1_.param_count() + conv2_.param_count() +
         (proj_ ? proj_->param_count() : 0);
}

u64 ResidualBlock::macs() const {
  return conv1_.macs() + conv2_.macs() + (proj_ ? proj_->macs() : 0);
}

}  // namespace nga::nn
