#include "nn/quant.hpp"

#include <algorithm>

namespace nga::nn {

namespace {

/// Max product over weight magnitudes 0..127 (the sign+7-bit weight
/// range every quantized MAC uses) — products above it are physically
/// impossible and flag an in-flight fault.
u16 weight_range_max_of(const std::array<u16, 65536>& t) {
  u16 m = 0;
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 128; ++b)
      m = std::max(m, t[(std::size_t(a) << 8) | b]);
  return m;
}

}  // namespace

MulTable::MulTable() {
  NGA_OBS_TIMED("nn.multable.build");
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      t_[(std::size_t(a) << 8) | b] = u16(a * b);
  exact_ = true;
  wmax_ = weight_range_max_of(t_);
  NGA_OBS_COUNT("nn.multable.build.exact");
}

MulTable::MulTable(const ax::ApproxMult8& m) {
  NGA_OBS_TIMED("nn.multable.build");
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      t_[(std::size_t(a) << 8) | b] = m.multiply(u8(a), u8(b));
  exact_ = false;
  wmax_ = weight_range_max_of(t_);
  NGA_OBS_COUNT("nn.multable.build.approx");
}

}  // namespace nga::nn
