#include "nn/quant.hpp"

#include <algorithm>

#include "util/crc32c.hpp"

namespace nga::nn {

namespace {

/// Max product over weight magnitudes 0..127 (the sign+7-bit weight
/// range every quantized MAC uses) — products above it are physically
/// impossible and flag an in-flight fault.
u16 weight_range_max_of(const std::array<std::atomic<u16>, 65536>& t) {
  u16 m = 0;
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 128; ++b)
      m = std::max(
          m, t[(std::size_t(a) << 8) | b].load(std::memory_order_relaxed));
  return m;
}

}  // namespace

void MulTable::build(const std::function<u16(u8, u8)>& gen, bool retain) {
  NGA_OBS_TIMED("nn.multable.build");
  std::array<u16, kPageEntries> buf;
  for (std::size_t page = 0; page < kPages; ++page) {
    const std::size_t base = page * kPageEntries;
    for (std::size_t i = 0; i < kPageEntries; ++i) {
      const std::size_t idx = base + i;
      buf[i] = gen(u8(idx >> 8), u8(idx & 0xFF));
      t_[idx].store(buf[i], std::memory_order_relaxed);
    }
    page_crc_[page] = util::crc32c(buf.data(), kPageBytes);
  }
  wmax_ = weight_range_max_of(t_);
  if (retain) gen_ = gen;
}

MulTable::MulTable() {
  build([](u8 a, u8 b) { return u16(unsigned(a) * unsigned(b)); },
        /*retain=*/true);
  exact_ = true;
  NGA_OBS_COUNT("nn.multable.build.exact");
}

MulTable::MulTable(const ax::ApproxMult8& m) {
  // Borrowed multiplier: generate through it but do NOT retain it (the
  // reference may dangle after construction), so the table is
  // verify-only.
  build([&m](u8 a, u8 b) { return m.multiply(a, b); }, /*retain=*/false);
  exact_ = false;
  NGA_OBS_COUNT("nn.multable.build.approx");
}

MulTable::MulTable(std::shared_ptr<const ax::ApproxMult8> m) {
  build([m = std::move(m)](u8 a, u8 b) { return m->multiply(a, b); },
        /*retain=*/true);
  exact_ = false;
  NGA_OBS_COUNT("nn.multable.build.approx");
}

bool MulTable::verify_page(std::size_t page) const {
  std::array<u16, kPageEntries> buf;
  const std::size_t base = page * kPageEntries;
  for (std::size_t i = 0; i < kPageEntries; ++i)
    buf[i] = t_[base + i].load(std::memory_order_relaxed);
  return util::crc32c(buf.data(), kPageBytes) == page_crc_[page];
}

MulTable::PageScrub MulTable::scrub_page(std::size_t page) const {
  if (verify_page(page)) return PageScrub::kClean;
  if (!gen_) return PageScrub::kNoGenerator;
  // Regenerate into a local buffer and run the verify-after-repair pass
  // BEFORE storing: checksum the regenerated values against the
  // build-time CRC. A mismatch means the golden source itself no longer
  // reproduces the built table — storage stays untouched and the caller
  // quarantines.
  std::array<u16, kPageEntries> buf;
  const std::size_t base = page * kPageEntries;
  for (std::size_t i = 0; i < kPageEntries; ++i) {
    const std::size_t idx = base + i;
    buf[i] = gen_(u8(idx >> 8), u8(idx & 0xFF));
  }
  if (util::crc32c(buf.data(), kPageBytes) != page_crc_[page])
    return PageScrub::kUnreproducible;
  for (std::size_t i = 0; i < kPageEntries; ++i)
    t_[base + i].store(buf[i], std::memory_order_relaxed);
  return PageScrub::kRepaired;
}

void MulTable::corrupt_bit(std::size_t page, unsigned bit) const {
  page %= kPages;
  bit %= kPageBits;
  const std::size_t idx = page * kPageEntries + bit / 16;
  t_[idx].fetch_xor(u16(1u << (bit % 16)), std::memory_order_relaxed);
  // Stamp the OLDEST outstanding corruption (first flip since the last
  // detection) for the scrubber's time-to-detect accounting.
  u64 expected = 0;
  corrupted_since_ns_.compare_exchange_strong(expected, obs::now_ns(),
                                              std::memory_order_relaxed);
}

}  // namespace nga::nn
