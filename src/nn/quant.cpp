#include "nn/quant.hpp"

namespace nga::nn {

MulTable::MulTable() {
  NGA_OBS_TIMED("nn.multable.build");
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      t_[(std::size_t(a) << 8) | b] = u16(a * b);
  exact_ = true;
  NGA_OBS_COUNT("nn.multable.build.exact");
}

MulTable::MulTable(const ax::ApproxMult8& m) {
  NGA_OBS_TIMED("nn.multable.build");
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      t_[(std::size_t(a) << 8) | b] = m.multiply(u8(a), u8(b));
  exact_ = false;
  NGA_OBS_COUNT("nn.multable.build.approx");
}

}  // namespace nga::nn
