#include "nn/data.hpp"

#include <cmath>

namespace nga::nn {

namespace {
constexpr double kTau = 6.283185307179586;
}

Dataset make_synth_images(int n, int hw, util::u64 seed) {
  util::Xoshiro256 rng(seed);
  Dataset out;
  out.reserve(std::size_t(n));
  for (int s = 0; s < n; ++s) {
    const int cls = int(rng.below(10));
    Sample sm;
    sm.label = cls;
    sm.x = Tensor(3, hw, hw);
    // Class signature: orientation + frequency + colour balance.
    const double angle = double(cls) * kTau / 10.0;
    const double freq = 1.2 + 0.25 * double(cls);
    const double phase = rng.uniform(0.0, kTau);
    const double amp = rng.uniform(0.7, 1.0);
    const double cx = rng.uniform(0.3, 0.7), cy = rng.uniform(0.3, 0.7);
    const double ca = std::cos(angle), sa = std::sin(angle);
    for (int y = 0; y < hw; ++y)
      for (int x = 0; x < hw; ++x) {
        const double u = double(x) / hw, v = double(y) / hw;
        const double t = u * ca + v * sa;
        const double wave = std::sin(kTau * freq * t + phase);
        const double d2 = (u - cx) * (u - cx) + (v - cy) * (v - cy);
        const double blob = std::exp(-d2 * 20.0);
        // Colour signature rotates with the class.
        const double rgb[3] = {
            0.5 + 0.5 * wave * std::cos(angle),
            0.5 + 0.5 * wave * std::sin(angle + 1.0),
            0.5 + 0.5 * blob * ((cls & 1) ? 1.0 : -1.0)};
        for (int c = 0; c < 3; ++c) {
          double px = amp * rgb[c] + 0.08 * rng.normal();
          px = std::min(1.0, std::max(0.0, px));
          sm.x.at(c, y, x) = float(px);
        }
      }
    out.push_back(std::move(sm));
  }
  return out;
}

Dataset make_synth_kws(int n, int t, int mel, util::u64 seed) {
  util::Xoshiro256 rng(seed);
  Dataset out;
  out.reserve(std::size_t(n));
  for (int s = 0; s < n; ++s) {
    const int cls = int(rng.below(10));
    Sample sm;
    sm.label = cls;
    sm.x = Tensor(1, t, mel);
    // Keyword signature: a formant sweeping across mel bins with a
    // class-specific start, slope and curvature, plus one harmonic.
    const double start = 1.0 + double(cls % 5) * (double(mel) - 4.0) / 5.0;
    const double slope = (cls < 5 ? 1.0 : -1.0) * (0.15 + 0.07 * (cls % 3));
    const double curve = 0.02 * double(cls % 4) - 0.03;
    const double amp = rng.uniform(0.7, 1.0);
    const double tshift = rng.uniform(-2.0, 2.0);
    for (int ti = 0; ti < t; ++ti) {
      const double tt = double(ti) + tshift;
      const double center =
          start + slope * tt * double(mel) / double(t) + curve * tt * tt;
      for (int m = 0; m < mel; ++m) {
        const double d = double(m) - center;
        const double d2 = double(m) - (center + 4.0);  // harmonic
        double e = amp * (std::exp(-d * d / 1.8) + 0.5 * std::exp(-d2 * d2 / 2.5));
        e += 0.08 * std::fabs(rng.normal());
        sm.x.at(0, ti, m) = float(std::min(1.0, e));
      }
    }
    out.push_back(std::move(sm));
  }
  return out;
}

void augment_flip(Tensor& x, util::Xoshiro256& rng) {
  if (rng.below(2) == 0) return;
  for (int c = 0; c < x.c; ++c)
    for (int y = 0; y < x.h; ++y)
      for (int xl = 0; xl < x.w / 2; ++xl)
        std::swap(x.at(c, y, xl), x.at(c, y, x.w - 1 - xl));
}

void augment_background_noise(Tensor& x, util::Xoshiro256& rng) {
  // "background noise with a volume of 10% of the initial time series"
  float peak = 0.f;
  for (float v : x.v) peak = std::max(peak, std::fabs(v));
  const float vol = 0.10f * peak;
  // Smooth noise: random walk over time bins.
  float walk = 0.f;
  for (auto& v : x.v) {
    walk = 0.7f * walk + 0.3f * float(rng.normal());
    v = std::max(0.f, std::min(1.f, v + vol * walk));
  }
}

}  // namespace nga::nn
