#include "nn/model.hpp"

#include <algorithm>
#include <stdexcept>
#include <cmath>
#include <numeric>

#include "fault/fault.hpp"
#include "nn/health.hpp"
#include "nn/resilience.hpp"
#include "prof/prof.hpp"

namespace nga::nn {

namespace {

// Cooperative cancellation (nga::guard): polled between layers and
// samples. Acquire pairs with the watchdog's release store.
bool cancelled(const Exec& ex) {
  return ex.cancel && ex.cancel->load(std::memory_order_acquire);
}

void tick(const Exec& ex) {
  if (ex.heartbeat) ex.heartbeat->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tensor Model::forward(const Tensor& x, const Exec& ex) {
  if (ex.health) ex.health->begin_forward();
  NGA_PROF_FWD_BEGIN(ex);
  if (!ex.guard) {
    Tensor t = x;
    for (auto& l : layers_) {
      if (cancelled(ex)) return t;  // partial — caller must discard
      if (ex.health) ex.health->begin_layer();
      [[maybe_unused]] const std::size_t in_elems = t.v.size();
      NGA_PROF_LAYER_BEGIN(ex);
      t = l->forward(t, ex);
      NGA_PROF_LAYER_END(ex, l, in_elems, t.v.size());
      tick(ex);
      if (ex.capture) ex.capture->push_back(t);
      if (ex.health) ex.health->end_layer(l->name());
    }
    return t;
  }
  // Guarded inference: bracket each layer with the guard's counter
  // snapshot; on a trip, swap in the exact fallback table and re-run
  // the poisoned layer. Degradation is sticky across samples — the
  // guard object carries it until reset().
  Exec cur = ex;
  if (cur.guard->degraded() && cur.guard->fallback() &&
      cur.mode == Mode::kQuantApprox)
    cur.mul = cur.guard->fallback();
  Tensor t = x;
  for (auto& l : layers_) {
    if (cancelled(cur)) return t;  // partial — caller must discard
    cur.guard->begin_layer();
    if (cur.health) cur.health->begin_layer();
    [[maybe_unused]] const std::size_t in_elems = t.v.size();
    NGA_PROF_LAYER_BEGIN(cur);
    Tensor y = l->forward(t, cur);
    if (cur.guard->layer_tripped()) {
      cur.guard->enter_degraded(l->name());
      if (cur.guard->fallback() && cur.mode == Mode::kQuantApprox) {
        cur.mul = cur.guard->fallback();
        y = l->forward(t, cur);  // redo the affected layer exactly
      }
    }
    // The guard's exact re-run counts into the same layer: the health
    // and prof channels see what the layer actually cost, recovery
    // included (nominal MACs count once; the redo shows up as extra
    // wall time and LUT probes — the degradation is visible, not
    // hidden).
    NGA_PROF_LAYER_END(cur, l, in_elems, y.v.size());
    tick(cur);
    if (cur.capture) cur.capture->push_back(y);
    if (cur.health) cur.health->end_layer(l->name());
    t = std::move(y);
  }
  return t;
}

std::vector<Tensor> Model::forward_batch(const std::vector<const Tensor*>& xs,
                                         const Exec& ex) {
  std::vector<Tensor> out;
  out.reserve(xs.size());
  for (const Tensor* x : xs) {
    // A cancelled batch stops producing: the serving layer discards
    // whatever was computed and re-queues the live requests.
    if (cancelled(ex)) break;
    // Exec-level timing site: a hang/latency plan here stalls whole
    // samples (a wedged core rather than a wedged multiplier).
    if (x) NGA_FAULT_DELAY(fault::Site::kNnExec);
    out.push_back(x ? forward(*x, ex) : Tensor{});
  }
  return out;
}

void Model::backward(const Tensor& dlogits) {
  Tensor g = dlogits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
}

void Model::step(float lr, float momentum, float batch_inv) {
  for (auto& l : layers_) l->step(lr, momentum, batch_inv);
}

std::vector<std::string> Model::layer_names() const {
  std::vector<std::string> out;
  out.reserve(layers_.size());
  for (const auto& l : layers_) out.push_back(l->name());
  return out;
}

std::size_t Model::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->param_count();
  return n;
}

std::vector<std::vector<float>> Model::snapshot() {
  std::vector<std::vector<float>*> ptrs;
  for (const auto& l : layers_) l->collect_state(ptrs);
  std::vector<std::vector<float>> out;
  out.reserve(ptrs.size());
  for (auto* p : ptrs) out.push_back(*p);
  return out;
}

void Model::restore(const std::vector<std::vector<float>>& state) {
  // Validate the whole snapshot before touching any weights, naming the
  // layer and buffer that mismatched — a corrupted snapshot must not
  // leave the model half-restored or silently resize a weight tensor.
  std::vector<std::vector<float>*> ptrs;
  std::vector<std::string> owner;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    std::vector<std::vector<float>*> lp;
    layers_[li]->collect_state(lp);
    for (std::size_t bi = 0; bi < lp.size(); ++bi) {
      ptrs.push_back(lp[bi]);
      owner.push_back("layer " + std::to_string(li) + " (" +
                      layers_[li]->name() + ") buffer " +
                      std::to_string(bi));
    }
  }
  if (ptrs.size() != state.size())
    throw std::invalid_argument(
        "snapshot/model mismatch: model '" + name_ + "' expects " +
        std::to_string(ptrs.size()) + " state buffers, snapshot has " +
        std::to_string(state.size()));
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    if (state[i].size() != ptrs[i]->size())
      throw std::invalid_argument(
          "snapshot/model mismatch at " + owner[i] + " of model '" + name_ +
          "': expected " + std::to_string(ptrs[i]->size()) +
          " floats, snapshot has " + std::to_string(state[i].size()));
  }
  for (std::size_t i = 0; i < ptrs.size(); ++i) *ptrs[i] = state[i];
}

util::u64 Model::macs() const {
  util::u64 n = 0;
  for (const auto& l : layers_) n += l->macs();
  return n;
}

float softmax_xent(const Tensor& logits, int label, Tensor* dlogits) {
  const int n = int(logits.v.size());
  float mx = logits.v[0];
  for (float v : logits.v) mx = std::max(mx, v);
  float denom = 0.f;
  std::vector<float> e(static_cast<std::size_t>(n), 0.f);
  for (int i = 0; i < n; ++i) {
    e[std::size_t(i)] = std::exp(logits.v[std::size_t(i)] - mx);
    denom += e[std::size_t(i)];
  }
  const float p_label = e[std::size_t(label)] / denom;
  if (dlogits) {
    *dlogits = logits;
    for (int i = 0; i < n; ++i) {
      const float p = e[std::size_t(i)] / denom;
      dlogits->v[std::size_t(i)] = p - (i == label ? 1.f : 0.f);
    }
  }
  return -std::log(std::max(p_label, 1e-12f));
}

void train(Model& model, const Dataset& data, const TrainConfig& cfg) {
  util::Xoshiro256 rng(cfg.seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  Exec ex;
  ex.mode = cfg.mode;
  ex.mul = cfg.mul;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const bool late = cfg.lr_late > 0.f && epoch >= (cfg.epochs * 3) / 5;
    const float lr = late ? cfg.lr_late : cfg.lr;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    int in_batch = 0;
    for (const std::size_t idx : order) {
      const Sample& s = data[idx];
      Tensor x = s.x;
      if (cfg.augment && cfg.augment_fn) cfg.augment_fn(x, rng);
      const Tensor logits = model.forward(x, ex);
      Tensor dlogits;
      softmax_xent(logits, s.label, &dlogits);
      model.backward(dlogits);
      if (++in_batch == cfg.batch) {
        model.step(lr, cfg.momentum, 1.f / float(in_batch));
        in_batch = 0;
      }
    }
    if (in_batch) model.step(lr, cfg.momentum, 1.f / float(in_batch));
  }
}

void calibrate(Model& model, const Dataset& data, int max_samples) {
  Exec ex;
  ex.mode = Mode::kFloat;
  ex.calibrate = true;
  const int n = std::min<int>(max_samples, int(data.size()));
  for (int i = 0; i < n; ++i) model.forward(data[std::size_t(i)].x, ex);
}

EvalResult evaluate(Model& model, const Dataset& data, Mode mode,
                    const MulTable* mul, ResilienceGuard* guard) {
  Exec ex;
  ex.mode = mode;
  ex.mul = mul;
  ex.guard = guard;
  EvalResult r;
  for (const auto& s : data) {
    const Tensor logits = model.forward(s.x, ex);
    r.loss += softmax_xent(logits, s.label, nullptr);
    const auto it = std::max_element(logits.v.begin(), logits.v.end());
    if (int(it - logits.v.begin()) == s.label) r.accuracy += 1.0;
  }
  r.accuracy /= double(data.size());
  r.loss /= double(data.size());
  return r;
}

Model make_resnet_mini(int in_hw, util::u64 seed) {
  util::Xoshiro256 rng(seed);
  (void)in_hw;
  Model m("ResNet20-mini");
  m.add(std::make_unique<Conv2D>(3, 8, 3, 1, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<ResidualBlock>(8, 8, 1, rng));
  m.add(std::make_unique<ResidualBlock>(8, 12, 2, rng));
  m.add(std::make_unique<ResidualBlock>(12, 16, 2, rng));
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Dense>(16, 10, rng));
  return m;
}

Model make_kws_cnn1(int t, int mel, util::u64 seed) {
  util::Xoshiro256 rng(seed);
  Model m("KWS-CNN1");
  m.add(std::make_unique<Conv2D>(1, 8, 3, 1, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2>());
  m.add(std::make_unique<Conv2D>(8, 16, 3, 1, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Dense>(16, 10, rng));
  (void)t;
  (void)mel;
  return m;
}

Model make_kws_cnn2(int t, int mel, util::u64 seed) {
  util::Xoshiro256 rng(seed);
  Model m("KWS-CNN2");
  m.add(std::make_unique<Conv2D>(1, 8, 3, 1, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2>());
  m.add(std::make_unique<Conv2D>(8, 16, 3, 1, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Conv2D>(16, 16, 3, 1, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Dense>(16, 10, rng));
  (void)t;
  (void)mel;
  return m;
}

}  // namespace nga::nn
