#include "nn/resilience.hpp"

namespace nga::nn {

namespace {

obs::Counter& counter(std::string_view name) {
  return obs::MetricsRegistry::instance().counter(name);
}

}  // namespace

ResilienceGuard::ResilienceGuard(const MulTable* exact_fallback,
                                 GuardThresholds thresholds)
    : fallback_(exact_fallback),
      thr_(thresholds),
      nar_c_(counter("posit.nar")),
      sat_c_(counter("posit.round.saturate")),
      ovf_c_(counter("softfloat.pack.overflow")),
      det_c_(counter("fault.detected")),
      recovered_c_(counter("fault.recovered")) {}

void ResilienceGuard::reset() {
  degraded_ = false;
  report_ = {};
}

void ResilienceGuard::begin_layer() {
  if (degraded_) return;  // already on the fallback; nothing to watch
  snap_nar_ = nar_now();
  snap_sat_ = sat_now();
  snap_det_ = det_now();
}

bool ResilienceGuard::layer_tripped() const {
  if (degraded_) return false;
  if (thr_.detected && det_now() - snap_det_ >= thr_.detected) return true;
  if (thr_.nar && nar_now() - snap_nar_ >= thr_.nar) return true;
  if (thr_.saturation && sat_now() - snap_sat_ >= thr_.saturation)
    return true;
  return false;
}

void ResilienceGuard::enter_degraded(std::string_view layer_name) {
  ++report_.trips;
  ++report_.recovered_layers;
  recovered_c_.inc();
  if (report_.first_tripped_layer.empty())
    report_.first_tripped_layer = std::string(layer_name);
  degraded_ = true;
  report_.degraded = true;
}

}  // namespace nga::nn
